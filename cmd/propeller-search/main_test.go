package main

import (
	"context"
	"net"
	"testing"
	"time"

	"propeller/internal/indexnode"
	"propeller/internal/master"
	"propeller/internal/pagestore"
	"propeller/internal/proto"
	"propeller/internal/rpc"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

// startTestCluster boots a real master + index node over loopback TCP and
// returns the master's address.
func startTestCluster(t *testing.T) string {
	t.Helper()
	m := master.New(master.Config{})
	masterSrv := rpc.NewServer()
	m.RegisterRPC(masterSrv)
	masterLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go masterSrv.Serve(masterLn)

	clk := vclock.New()
	disk := simdisk.New(simdisk.Barracuda7200(), clk)
	store, err := pagestore.New(disk, 4096)
	if err != nil {
		t.Fatal(err)
	}
	masterConn, err := rpc.Dial(masterLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	node, err := indexnode.New(indexnode.Config{
		ID: "in-cli", Store: store, Disk: disk, Clock: clk, Master: masterConn,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodeSrv := rpc.NewServer()
	node.RegisterRPC(nodeSrv)
	nodeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go nodeSrv.Serve(nodeLn)
	if _, err := m.RegisterNode(context.Background(), proto.RegisterNodeReq{
		Node: "in-cli", Addr: "tcp:" + nodeLn.Addr().String(), CapacityFiles: 1 << 30,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = masterConn.Close()
		_ = masterSrv.Close()
		_ = nodeSrv.Close()
	})
	return masterLn.Addr().String()
}

func TestCLIEndToEnd(t *testing.T) {
	addr := startTestCluster(t)
	steps := [][]string{
		{"-master", addr, "create-index", "size", "btree", "size"},
		{"-master", addr, "index", "size", "1=1048576", "2=33554432", "3=1073741824"},
		{"-master", addr, "search", "size", "size>16m"},
		{"-master", addr, "stats"},
	}
	for _, args := range steps {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
	// Give background RPC teardown a beat before cleanup closes servers.
	time.Sleep(10 * time.Millisecond)
}

func TestCLIHashAndKDIndexes(t *testing.T) {
	addr := startTestCluster(t)
	if err := run([]string{"-master", addr, "create-index", "kw", "hash", "keyword"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-master", addr, "create-index", "pt", "kd", "x,y"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-master", addr, "index", "kw", "1=firefox"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-master", addr, "search", "kw", "keyword:firefox"}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIErrors(t *testing.T) {
	addr := startTestCluster(t)
	cases := [][]string{
		{"-master", addr},                                  // missing subcommand
		{"-master", addr, "bogus"},                         // unknown subcommand
		{"-master", addr, "create-index", "x"},             // too few args
		{"-master", addr, "create-index", "x", "wat", "f"}, // bad type
		{"-master", addr, "index", "x"},                    // too few args
		{"-master", addr, "index", "x", "notanupdate"},     // bad kv
		{"-master", addr, "index", "x", "abc=1"},           // bad file id
		{"-master", addr, "search", "x"},                   // too few args
		{"-master", addr, "search", "ghost", "size>1"},     // unknown index
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
