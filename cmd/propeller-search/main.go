// Command propeller-search is the CLI client: create indices, submit
// indexing requests and run searches against a running Propeller cluster.
//
// Usage:
//
//	propeller-search -master host:7070 create-index size btree size
//	propeller-search -master host:7070 index size 42=1073741824
//	propeller-search -master host:7070 search size 'size>16m'
//	propeller-search -master host:7070 -limit 100 search size 'size>16m'
//	propeller-search -master host:7070 -limit 100 -after 512 search size 'size>16m'
//	propeller-search -master host:7070 -stream search size 'size>16m'
//	propeller-search -master host:7070 stats
//
// Searches honor -timeout (a context deadline that travels with every
// RPC), -limit/-after (cursor pagination; the printed "next after=N" value
// resumes the following page), -lazy (skip commit-on-search) and -stream
// (print per-node batches as index nodes respond instead of waiting for
// the slowest node).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"propeller/internal/attr"
	"propeller/internal/client"
	"propeller/internal/index"
	"propeller/internal/proto"
	"propeller/internal/rpc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "propeller-search:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("propeller-search", flag.ContinueOnError)
	masterAddr := fs.String("master", "127.0.0.1:7070", "master node address")
	timeout := fs.Duration("timeout", 0, "request deadline (0 = none)")
	limit := fs.Int("limit", 0, "max files per search page (0 = unlimited)")
	after := fs.Int64("after", -1, "resume cursor: only files with id > after (-1 = from the top)")
	lazy := fs.Bool("lazy", false, "lazy reads: skip commit-on-search (may miss very recent updates)")
	stream := fs.Bool("stream", false, "stream per-node batches as they arrive")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return errors.New("missing subcommand: create-index | index | search | stats")
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	masterConn, err := rpc.Dial(*masterAddr)
	if err != nil {
		return fmt.Errorf("dial master: %w", err)
	}
	defer masterConn.Close() //nolint:errcheck // process exit path
	cl, err := client.New(client.Config{
		Master: masterConn,
		Dial: func(ctx context.Context, addr string) (*rpc.Client, error) {
			return rpc.DialContext(ctx, strings.TrimPrefix(addr, "tcp:"))
		},
		Now: time.Now,
	})
	if err != nil {
		return err
	}
	defer cl.Close() //nolint:errcheck // process exit path

	switch rest[0] {
	case "create-index":
		if len(rest) < 4 {
			return errors.New("usage: create-index <name> <btree|hash|kd> <field>[,field...]")
		}
		spec := proto.IndexSpec{Name: rest[1]}
		fields := strings.Split(rest[3], ",")
		switch rest[2] {
		case "btree":
			spec.Type, spec.Field = proto.IndexBTree, fields[0]
		case "hash":
			spec.Type, spec.Field = proto.IndexHash, fields[0]
		case "kd":
			spec.Type, spec.Fields = proto.IndexKD, fields
		default:
			return fmt.Errorf("unknown index type %q", rest[2])
		}
		if err := cl.CreateIndex(ctx, spec); err != nil {
			return err
		}
		fmt.Printf("created index %q (%s on %s)\n", spec.Name, rest[2], rest[3])
		return nil

	case "index":
		if len(rest) < 3 {
			return errors.New("usage: index <name> <fileID>=<value> [...]")
		}
		var updates []client.FileUpdate
		for _, kv := range rest[2:] {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad update %q, want fileID=value", kv)
			}
			id, err := strconv.ParseUint(parts[0], 10, 64)
			if err != nil {
				return fmt.Errorf("bad file id %q: %w", parts[0], err)
			}
			u := client.FileUpdate{File: index.FileID(id)}
			if n, err := strconv.ParseInt(parts[1], 10, 64); err == nil {
				u.Value = attr.Int(n)
			} else {
				u.Value = attr.Str(parts[1])
			}
			updates = append(updates, u)
		}
		if err := cl.Index(ctx, rest[1], updates); err != nil {
			return err
		}
		fmt.Printf("indexed %d updates into %q\n", len(updates), rest[1])
		return nil

	case "search":
		if len(rest) != 3 {
			return errors.New("usage: search <index> <query>")
		}
		q := client.Query{Index: rest[1], Text: rest[2], Limit: *limit}
		if *lazy {
			q.Consistency = proto.ConsistencyLazy
		}
		if *after >= 0 {
			q.After, q.AfterSet = index.FileID(*after), true
		}
		start := time.Now()
		if *stream {
			st, err := cl.SearchStream(ctx, q)
			if err != nil {
				return err
			}
			total := 0
			for b, ok := st.Next(); ok; b, ok = st.Next() {
				fmt.Printf("batch from %s: %d files (%s)\n", b.Node, len(b.Files), time.Since(start).Round(time.Microsecond))
				for _, f := range b.Files {
					fmt.Println(f)
				}
				total += len(b.Files)
				if b.More {
					fmt.Printf("node %s has more (raise -limit or page with -after)\n", b.Node)
				}
			}
			if err := st.Err(); err != nil {
				return err
			}
			fmt.Printf("%d files streamed in %s\n", total, time.Since(start).Round(time.Microsecond))
			return nil
		}
		res, err := cl.Search(ctx, q)
		if err != nil {
			return err
		}
		fmt.Printf("%d files from %d nodes in %s\n", len(res.Files), res.Nodes, time.Since(start).Round(time.Microsecond))
		for _, f := range res.Files {
			fmt.Println(f)
		}
		if res.More {
			fmt.Printf("more results: next after=%d\n", res.Next)
		}
		return nil

	case "stats":
		st, err := cl.ClusterStats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("files=%d acgs=%d nodes=%d replicated=%d promotions=%d\n",
			st.Files, st.ACGs, len(st.Nodes), st.ReplicatedGroups, st.Promotions)
		for _, n := range st.Nodes {
			fmt.Printf("  %-8s %-24s acgs=%-5d files=%-8d followers=%-4d lag=%-4d promotions=%d\n",
				n.Node, n.Addr, n.ACGs, n.Files, n.FollowerGroups, n.ReplicaLagFrames, n.Promotions)
		}
		for _, spec := range st.Indexes {
			fmt.Printf("  index %-12s %s\n", spec.Name, spec.Type)
		}
		return nil

	default:
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
}
