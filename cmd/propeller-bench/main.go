// Command propeller-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	propeller-bench -list
//	propeller-bench -exp tab3
//	propeller-bench -exp all -scale 2.0
//
// Scale multiplies the harness's default dataset sizes (see EXPERIMENTS.md
// for the default-vs-paper mapping).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"propeller/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "propeller-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expID = flag.String("exp", "all", "experiment id (or 'all')")
		scale = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed  = flag.Int64("seed", 42, "random seed")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return nil
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed}
	var toRun []experiments.Experiment
	if *expID == "all" {
		toRun = experiments.All()
	} else {
		e, err := experiments.ByID(*expID)
		if err != nil {
			return err
		}
		toRun = []experiments.Experiment{e}
	}

	for _, e := range toRun {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		res, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Print(res.Text)
		if len(res.Metrics) > 0 {
			keys := make([]string, 0, len(res.Metrics))
			for k := range res.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Println("headline metrics:")
			for _, k := range keys {
				fmt.Printf("  %-32s %.4g\n", k, res.Metrics[k])
			}
		}
		fmt.Println()
	}
	return nil
}
