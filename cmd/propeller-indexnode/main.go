// Command propeller-indexnode runs a Propeller Index Node serving RPC over
// TCP: it registers with the Master, houses per-ACG file indices, and runs
// the heartbeat and lazy-cache commit loops.
//
// Usage:
//
//	propeller-indexnode -id in-00 -listen 0.0.0.0:7071 -master host:7070
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"propeller/internal/indexnode"
	"propeller/internal/pagestore"
	"propeller/internal/proto"
	"propeller/internal/rpc"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "propeller-indexnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id            = flag.String("id", "in-00", "node id (unique per cluster)")
		listen        = flag.String("listen", "127.0.0.1:7071", "TCP listen address")
		masterAddr    = flag.String("master", "127.0.0.1:7070", "master node address")
		poolPages     = flag.Int("pool-pages", 32768, "buffer pool pages (8 KiB each)")
		commitTimeout = flag.Duration("commit-timeout", 5*time.Second, "lazy index-cache timeout")
		heartbeat     = flag.Duration("heartbeat", 5*time.Second, "heartbeat interval")
	)
	flag.Parse()

	masterConn, err := rpc.Dial(*masterAddr)
	if err != nil {
		return fmt.Errorf("dial master: %w", err)
	}
	defer masterConn.Close() //nolint:errcheck // process exit path

	clk := vclock.New()
	disk := simdisk.New(simdisk.Barracuda7200(), clk)
	store, err := pagestore.New(disk, *poolPages)
	if err != nil {
		return err
	}
	node, err := indexnode.New(indexnode.Config{
		ID:            proto.NodeID(*id),
		Store:         store,
		Disk:          disk,
		Clock:         clk,
		CommitTimeout: *commitTimeout,
		Master:        masterConn,
		Dial:          func(ctx context.Context, addr string) (*rpc.Client, error) { return rpc.DialContext(ctx, addr) },
	})
	if err != nil {
		return err
	}

	srv := rpc.NewServer()
	node.RegisterRPC(srv)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if _, err := rpc.Call[proto.RegisterNodeReq, proto.RegisterNodeResp](
		context.Background(), masterConn, proto.MethodRegisterNode, proto.RegisterNodeReq{
			Node: proto.NodeID(*id), Addr: "tcp:" + ln.Addr().String(), CapacityFiles: 1 << 40,
		}); err != nil {
		return fmt.Errorf("register with master: %w", err)
	}
	log.Printf("index node %s listening on %s (master %s)", *id, ln.Addr(), *masterAddr)

	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			// The virtual clock tracks wall time in live deployments so
			// the commit timeout fires.
			clk.Advance(*heartbeat)
			if err := node.Tick(); err != nil {
				log.Printf("tick: %v", err)
			}
			if err := node.Heartbeat(context.Background()); err != nil {
				log.Printf("heartbeat: %v", err)
			}
		case <-stop:
			log.Printf("shutting down")
			if err := srv.Close(); err != nil {
				return err
			}
			<-done
			return nil
		}
	}
}
