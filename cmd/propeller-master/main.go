// Command propeller-master runs a Propeller Master Node serving RPC over
// TCP: index metadata, file→ACG mapping, request routing, and split
// coordination for a cluster of Index Nodes.
//
// Usage:
//
//	propeller-master -listen 0.0.0.0:7070 -split-threshold 50000
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"propeller/internal/master"
	"propeller/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "propeller-master:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen         = flag.String("listen", "127.0.0.1:7070", "TCP listen address")
		splitThreshold = flag.Int64("split-threshold", 50000, "ACG size that triggers a split")
		snapshotEvery  = flag.Duration("snapshot-every", time.Minute, "metadata snapshot interval")
		snapshotPath   = flag.String("snapshot", "", "metadata snapshot file on shared storage (empty = disabled)")
	)
	flag.Parse()

	m := master.New(master.Config{SplitThreshold: *splitThreshold})
	if *snapshotPath != "" {
		if img, err := os.ReadFile(*snapshotPath); err == nil {
			if err := m.LoadMetadata(img); err != nil {
				return fmt.Errorf("restore snapshot: %w", err)
			}
			log.Printf("restored metadata from %s", *snapshotPath)
		}
	}

	srv := rpc.NewServer()
	m.RegisterRPC(srv)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("master listening on %s", ln.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()

	ticker := time.NewTicker(*snapshotEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if *snapshotPath == "" {
				continue
			}
			img, err := m.SnapshotMetadata()
			if err != nil {
				log.Printf("snapshot: %v", err)
				continue
			}
			if err := os.WriteFile(*snapshotPath, img, 0o644); err != nil {
				log.Printf("snapshot write: %v", err)
			}
		case <-stop:
			log.Printf("shutting down")
			if err := srv.Close(); err != nil {
				return err
			}
			<-done
			return nil
		}
	}
}
