package propeller_test

import (
	"fmt"
	"log"

	"propeller"
)

// Example shows the full public-API flow: boot a local deployment, declare
// an index, ingest postings, and search with strong consistency.
func Example() {
	svc, err := propeller.StartLocal(propeller.Options{IndexNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close() //nolint:errcheck // example teardown

	cl, err := svc.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck // example teardown

	if err := cl.CreateIndex(propeller.BTreeIndex("size", "size")); err != nil {
		log.Fatal(err)
	}
	updates := []propeller.Update{
		{File: 1, Int: 4 << 20, Group: 1},   // 4 MiB
		{File: 2, Int: 64 << 20, Group: 1},  // 64 MiB
		{File: 3, Int: 512 << 20, Group: 1}, // 512 MiB
	}
	if err := cl.Index("size", updates); err != nil {
		log.Fatal(err)
	}
	res, err := cl.Search("size", "size>16m")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matches:", res.Files)
	// Output: matches: [2 3]
}
