package propeller_test

import (
	"context"
	"fmt"
	"log"

	"propeller"
)

// Example shows the full public-API flow: boot a local deployment, declare
// an index, ingest postings, and search with strong consistency through
// the context-first Query API.
func Example() {
	ctx := context.Background()
	svc, err := propeller.StartLocal(ctx, propeller.Options{IndexNodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close() //nolint:errcheck // example teardown

	cl, err := svc.NewClient(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck // example teardown

	if err := cl.CreateIndex(ctx, propeller.BTreeIndex("size", "size")); err != nil {
		log.Fatal(err)
	}
	updates := []propeller.Update{
		{File: 1, Kind: propeller.KindInt, Int: 4 << 20, Group: 1},   // 4 MiB
		{File: 2, Kind: propeller.KindInt, Int: 64 << 20, Group: 1},  // 64 MiB
		{File: 3, Kind: propeller.KindInt, Int: 512 << 20, Group: 1}, // 512 MiB
	}
	if err := cl.Index(ctx, "size", updates); err != nil {
		log.Fatal(err)
	}
	res, err := cl.Search(ctx, propeller.Query{Index: "size", Text: "size>16m"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matches:", res.Files)
	// Output: matches: [2 3]
}

// ExampleClient_Search_typed searches with the composable typed predicate
// builder instead of query-string formatting.
func ExampleClient_Search_typed() {
	ctx := context.Background()
	svc, err := propeller.StartLocal(ctx, propeller.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close() //nolint:errcheck // example teardown
	cl, err := svc.NewClient(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck // example teardown

	if err := cl.CreateIndex(ctx, propeller.BTreeIndex("size", "size")); err != nil {
		log.Fatal(err)
	}
	if err := cl.Index(ctx, "size", []propeller.Update{
		{File: 10, Kind: propeller.KindInt, Int: 8 << 20, Group: 1},
		{File: 11, Kind: propeller.KindInt, Int: 100 << 20, Group: 1},
	}); err != nil {
		log.Fatal(err)
	}

	res, err := cl.Search(ctx, propeller.Query{
		Index: "size",
		Where: propeller.And(propeller.Gt("size", 16<<20), propeller.Lt("size", 1<<30)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matches:", res.Files)
	// Output: matches: [11]
}
