// Log analytics: the paper's motivating workload (§I) — a pipeline indexes
// log files in real time as they rotate, and analysts issue rare ad-hoc
// queries that must reflect every log written so far. Inline indexing makes
// the answers exact; a crawling engine would be minutes stale.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"propeller"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	epoch := time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)
	svc, err := propeller.StartLocal(ctx, propeller.Options{
		IndexNodes: 4,
		Now:        func() time.Time { return epoch },
	})
	if err != nil {
		return err
	}
	defer svc.Close() //nolint:errcheck // process exit path
	cl, err := svc.NewClient(ctx)
	if err != nil {
		return err
	}
	defer cl.Close() //nolint:errcheck // process exit path

	// Attribute indices over the log namespace: size and age as B-trees
	// (range queries), service name as a hash (exact match).
	for _, spec := range []propeller.IndexSpec{
		propeller.BTreeIndex("size", "size"),
		propeller.BTreeIndex("mtime", "mtime"),
		propeller.HashIndex("service", "service"),
	} {
		if err := cl.CreateIndex(ctx, spec); err != nil {
			return err
		}
	}

	// Simulated log rotation: each service produces a stream of log
	// segments. A service's segments are access-causal (the collector
	// reads the previous segment while writing the next), so each service
	// maps naturally onto its own group.
	services := []string{"api", "web", "db", "batch"}
	nextFile := propeller.FileID(0)
	write := func(svcIdx int, hour int, sizeMB int64) error {
		f := nextFile
		nextFile++
		group := uint64(svcIdx) + 1
		mtime := epoch.Add(-time.Duration(hour) * time.Hour)
		if err := cl.Index(ctx, "size", []propeller.Update{{File: f, Kind: propeller.KindInt, Int: sizeMB << 20, Group: group}}); err != nil {
			return err
		}
		if err := cl.Index(ctx, "mtime", []propeller.Update{{File: f, Kind: propeller.KindTime, Time: mtime, Group: group}}); err != nil {
			return err
		}
		return cl.Index(ctx, "service", []propeller.Update{{File: f, Kind: propeller.KindStr, Str: services[svcIdx], Group: group}})
	}

	// 72 hours of rotation across four services.
	for hour := 72; hour >= 1; hour-- {
		for si := range services {
			sizeMB := int64(8 + (hour*7+si*13)%120)
			if err := write(si, hour, sizeMB); err != nil {
				return err
			}
		}
	}
	fmt.Printf("ingested %d log segments across %d services\n", nextFile, len(services))

	// Ad-hoc query #1: which recent segments are big enough to matter?
	res, err := cl.Search(ctx, propeller.Query{Index: "size", Text: "size>100m & mtime<1day"})
	if err != nil {
		return err
	}
	fmt.Printf("segments >100 MiB modified in the last day: %d\n", len(res.Files))

	// Ad-hoc query #2: everything the db service wrote this week.
	res, err = cl.Search(ctx, propeller.Query{Index: "service", Text: "service:db & mtime<1week"})
	if err != nil {
		return err
	}
	fmt.Printf("db segments from the last week: %d\n", len(res.Files))

	// A new segment arrives — and is searchable immediately (the real-time
	// guarantee analytics pipelines need).
	if err := write(0, 0, 999); err != nil {
		return err
	}
	res, err = cl.Search(ctx, propeller.Query{Index: "size", Where: propeller.Gt("size", 900<<20)})
	if err != nil {
		return err
	}
	fmt.Printf("freshly written >900 MiB segments visible immediately: %d\n", len(res.Files))
	return nil
}
