// Quickstart: boot a local Propeller deployment, create an index, ingest a
// few files, and search — the minimal end-to-end flow on the v2 Query API
// (context, typed predicates, cursor pagination).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"propeller"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Every call takes a context: deadlines travel with each RPC and
	// cancellation aborts in-flight fan-outs.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// One Master Node plus two Index Nodes, in this process.
	svc, err := propeller.StartLocal(ctx, propeller.Options{IndexNodes: 2})
	if err != nil {
		return err
	}
	defer svc.Close() //nolint:errcheck // process exit path

	cl, err := svc.NewClient(ctx)
	if err != nil {
		return err
	}
	defer cl.Close() //nolint:errcheck // process exit path

	// A user-defined index with a globally unique name (§IV workflow).
	if err := cl.CreateIndex(ctx, propeller.BTreeIndex("size", "size")); err != nil {
		return err
	}

	// Inline indexing: every update is visible to the very next search.
	// Kind states which value field is set — no zero-value guessing.
	var updates []propeller.Update
	for i := 0; i < 1000; i++ {
		updates = append(updates, propeller.Update{
			File: propeller.FileID(i),
			Kind: propeller.KindInt,
			Int:  int64(i) << 20, // i MiB
			// Files accessed together share a group: updates stay local to
			// one small index partition.
			Group: uint64(i/250) + 1,
		})
	}
	if err := cl.Index(ctx, "size", updates); err != nil {
		return err
	}

	// One Query type for every search: textual or typed predicate, paged
	// with a cursor so no node ever ships more than a page of postings.
	res, err := cl.Search(ctx, propeller.Query{
		Index: "size",
		Where: propeller.Gt("size", 900<<20),
		Limit: 50,
	})
	if err != nil {
		return err
	}
	fmt.Printf("files larger than 900 MiB: %d this page (served by %d index nodes, more=%v)\n",
		len(res.Files), res.Nodes, res.More)
	fmt.Printf("first few: %v\n", res.Files[:5])

	// Follow the cursor for the rest.
	total := len(res.Files)
	for res.More {
		res, err = cl.Search(ctx, propeller.Query{
			Index:  "size",
			Where:  propeller.Gt("size", 900<<20),
			Limit:  50,
			Cursor: res.Next,
		})
		if err != nil {
			return err
		}
		total += len(res.Files)
	}
	fmt.Printf("all pages: %d files\n", total)

	st, err := svc.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %d files in %d access-causality groups on %d nodes\n",
		st.Files, st.Groups, st.IndexNodes)
	return nil
}
