// Quickstart: boot a local Propeller deployment, create an index, ingest a
// few files, and search — the minimal end-to-end flow.
package main

import (
	"fmt"
	"log"

	"propeller"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One Master Node plus two Index Nodes, in this process.
	svc, err := propeller.StartLocal(propeller.Options{IndexNodes: 2})
	if err != nil {
		return err
	}
	defer svc.Close() //nolint:errcheck // process exit path

	cl, err := svc.NewClient()
	if err != nil {
		return err
	}
	defer cl.Close() //nolint:errcheck // process exit path

	// A user-defined index with a globally unique name (§IV workflow).
	if err := cl.CreateIndex(propeller.BTreeIndex("size", "size")); err != nil {
		return err
	}

	// Inline indexing: every update is visible to the very next search.
	var updates []propeller.Update
	for i := 0; i < 1000; i++ {
		updates = append(updates, propeller.Update{
			File: propeller.FileID(i),
			Int:  int64(i) << 20, // i MiB
			// Files accessed together share a group: updates stay local to
			// one small index partition.
			Group: uint64(i/250) + 1,
		})
	}
	if err := cl.Index("size", updates); err != nil {
		return err
	}

	res, err := cl.Search("size", "size>900m")
	if err != nil {
		return err
	}
	fmt.Printf("files larger than 900 MiB: %d (served by %d index nodes)\n",
		len(res.Files), res.Nodes)
	fmt.Printf("first few: %v\n", res.Files[:5])

	st, err := svc.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %d files in %d access-causality groups on %d nodes\n",
		st.Files, st.Groups, st.IndexNodes)
	return nil
}
