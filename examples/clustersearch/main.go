// Cluster search: capture access causality with the File Access Management
// API, let the Master split an oversized group along the captured graph,
// and watch the search fan out across Index Nodes — the distributed flow
// of Figures 5 and 6.
package main

import (
	"context"
	"fmt"
	"log"

	"propeller"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	svc, err := propeller.StartLocal(ctx, propeller.Options{
		IndexNodes:     4,
		SplitThreshold: 400, // small threshold so the demo splits
	})
	if err != nil {
		return err
	}
	defer svc.Close() //nolint:errcheck // process exit path
	cl, err := svc.NewClient(ctx)
	if err != nil {
		return err
	}
	defer cl.Close() //nolint:errcheck // process exit path

	if err := cl.CreateIndex(ctx, propeller.BTreeIndex("size", "size")); err != nil {
		return err
	}

	// Two applications, each touching its own file universe — but all
	// ingested under one group to start with. The capture layer records
	// who produces what.
	proc := propeller.PID(1)
	var updates []propeller.Update
	for app := 0; app < 2; app++ {
		base := propeller.FileID(app * 300)
		for i := propeller.FileID(0); i < 300; i++ {
			// Each build step reads one file and writes the next:
			// a dense causal chain inside the app, nothing across apps.
			cl.Open(proc, base+i, "r")
			cl.Open(proc, base+(i+1)%300, "w")
			cl.EndProcess(proc)
			proc++
			updates = append(updates, propeller.Update{
				File:  base + i,
				Int:   int64(base+i+1) << 16,
				Group: 1, // everything starts in one group
			})
		}
	}
	if err := cl.Index(ctx, "size", updates); err != nil {
		return err
	}
	if err := cl.FlushCapture(ctx); err != nil {
		return err
	}

	before, err := svc.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("before rebalance: %d files in %d group(s)\n", before.Files, before.Groups)

	// Heartbeat round: the Master notices the oversized group, the owning
	// node partitions it along the captured ACG (min-cut = the app
	// boundary) and migrates one half to the least-loaded node.
	if err := svc.Rebalance(ctx); err != nil {
		return err
	}
	after, err := svc.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("after rebalance:  %d files in %d group(s)\n", after.Files, after.Groups)

	res, err := cl.Search(ctx, propeller.Query{Index: "size", Text: "size>0"})
	if err != nil {
		return err
	}
	fmt.Printf("search fan-out: %d files from %d index nodes (no postings lost in migration)\n",
		len(res.Files), res.Nodes)

	// Streaming fan-out: batches arrive per node as each responds, so the
	// first results land before the slowest node finishes.
	st, err := cl.SearchStream(ctx, propeller.Query{Index: "size", Text: "size>0"})
	if err != nil {
		return err
	}
	for b, ok := st.Next(); ok; b, ok = st.Next() {
		fmt.Printf("  streamed batch: %d files from node %s\n", len(b.Files), b.Node)
	}
	return st.Err()
}
