// Drug discovery: the paper's Molegro-Virtual-Docker scenario (§II). A
// docking application stores one protein structure per file with hundreds
// of computed attributes; after every computation round it refines the
// candidate set by searching for proteins whose attributes resemble the
// current best hits. The K-D index answers those multi-attribute range
// queries without scanning the 10^7-file dataset.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"propeller"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	svc, err := propeller.StartLocal(ctx, propeller.Options{IndexNodes: 2})
	if err != nil {
		return err
	}
	defer svc.Close() //nolint:errcheck // process exit path
	cl, err := svc.NewClient(ctx)
	if err != nil {
		return err
	}
	defer cl.Close() //nolint:errcheck // process exit path

	// Two energy characteristics per protein; the docking code filters on
	// both at once, so a 2-d K-D index fits.
	if err := cl.CreateIndex(ctx, propeller.KDIndex("energy", "binding", "torsion")); err != nil {
		return err
	}

	// Ingest a protein library. Protein files produced by the same docking
	// batch are causally grouped.
	rng := rand.New(rand.NewSource(7))
	const proteins = 20000
	const batchSize = 500
	var batch []propeller.Update
	for i := 0; i < proteins; i++ {
		binding := -12 + rng.Float64()*10 // kcal/mol, lower is better
		torsion := rng.Float64() * 8
		batch = append(batch, propeller.Update{
			File:   propeller.FileID(i),
			Coords: []float64{binding, torsion},
			Group:  uint64(i/batchSize) + 1,
		})
		if len(batch) == batchSize {
			if err := cl.Index(ctx, "energy", batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	fmt.Printf("indexed %d protein structure files\n", proteins)

	// Round 1: strong binders.
	res, err := cl.Search(ctx, propeller.Query{Index: "energy", Where: propeller.Lt("binding", -9.0)})
	if err != nil {
		return err
	}
	fmt.Printf("round 1: %d strong binders (binding < -9 kcal/mol)\n", len(res.Files))

	// Round 2: refine — strong binders with low torsional strain. The
	// docking run recomputes only this filtered set.
	res, err = cl.Search(ctx, propeller.Query{
		Index: "energy",
		Where: propeller.And(propeller.Lt("binding", -9.0), propeller.Lt("torsion", 1.5)),
	})
	if err != nil {
		return err
	}
	fmt.Printf("round 2: %d candidates after refinement (torsion < 1.5)\n", len(res.Files))

	// New computation results update attributes in place; the next search
	// sees them immediately.
	if len(res.Files) > 0 {
		f := res.Files[0]
		if err := cl.Index(ctx, "energy", []propeller.Update{{
			File: f, Kind: propeller.KindCoords, Coords: []float64{-13.5, 0.2}, Group: uint64(int(f)/batchSize) + 1,
		}}); err != nil {
			return err
		}
		res, err = cl.Search(ctx, propeller.Query{Index: "energy", Where: propeller.Lt("binding", -13.0)})
		if err != nil {
			return err
		}
		fmt.Printf("after re-dock: %d proteins below -13 kcal/mol (fresh result, no crawl delay)\n", len(res.Files))
	}
	return nil
}
