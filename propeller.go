// Package propeller is the public API of the Propeller distributed
// real-time file-search service (Xu, Jiang, Tian, Huang — ICDCS 2014).
//
// Propeller keeps file indices always up to date by indexing *inline*: an
// indexing request is acknowledged after a write-ahead-log append and a
// cache insert, and every search commits the relevant caches first, so
// search results are strongly consistent with acknowledged updates. Index
// scale is kept small by partitioning along Access-Causality Graphs: files
// an application reads and writes together share a partition, so updates
// never fan out across the cluster.
//
// Quick start:
//
//	svc, _ := propeller.StartLocal(propeller.Options{IndexNodes: 2})
//	defer svc.Close()
//	cl, _ := svc.NewClient()
//	defer cl.Close()
//	cl.CreateIndex(propeller.BTreeIndex("size", "size"))
//	cl.Index("size", []propeller.Update{{File: 1, Int: 64 << 20, Group: 1}})
//	res, _ := cl.Search("size", "size>16m")
package propeller

import (
	"errors"
	"fmt"
	"time"

	"propeller/internal/acg"
	"propeller/internal/attr"
	"propeller/internal/client"
	"propeller/internal/cluster"
	"propeller/internal/index"
	"propeller/internal/proto"
	"propeller/internal/rpc"
)

// FileID identifies a file (an inode number).
type FileID = index.FileID

// PID identifies a process in access-capture calls.
type PID = acg.PID

// IndexSpec declares a named index. Build specs with BTreeIndex, HashIndex
// or KDIndex.
type IndexSpec = proto.IndexSpec

// BTreeIndex declares an ordered index over one attribute (range queries).
func BTreeIndex(name, field string) IndexSpec {
	return IndexSpec{Name: name, Type: proto.IndexBTree, Field: field}
}

// HashIndex declares an exact-match index over one attribute.
func HashIndex(name, field string) IndexSpec {
	return IndexSpec{Name: name, Type: proto.IndexHash, Field: field}
}

// KDIndex declares a multi-dimensional index over the given attributes.
func KDIndex(name string, fields ...string) IndexSpec {
	return IndexSpec{Name: name, Type: proto.IndexKD, Fields: fields}
}

// Options configures an in-process deployment.
type Options struct {
	// IndexNodes is the number of Index Nodes (default 1).
	IndexNodes int
	// UseTCP runs all node transports over loopback TCP instead of
	// in-memory pipes.
	UseTCP bool
	// CommitTimeout is the lazy index-cache timeout (default 5 s).
	CommitTimeout time.Duration
	// SplitThreshold is the ACG size that triggers a background split
	// (default 50,000 files).
	SplitThreshold int
	// Now anchors relative query predicates such as "mtime<1day"
	// (default time.Now).
	Now func() time.Time
}

// Service is a running Propeller deployment (one Master Node plus Index
// Nodes) inside this process.
type Service struct {
	c   *cluster.Cluster
	now func() time.Time
}

// StartLocal boots a Propeller deployment.
func StartLocal(opts Options) (*Service, error) {
	c, err := cluster.New(cluster.Config{
		IndexNodes:     opts.IndexNodes,
		UseTCP:         opts.UseTCP,
		CommitTimeout:  opts.CommitTimeout,
		SplitThreshold: opts.SplitThreshold,
		NetProfile:     rpc.NetProfile{},
	})
	if err != nil {
		return nil, fmt.Errorf("propeller: start: %w", err)
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	return &Service{c: c, now: now}, nil
}

// MasterAddr returns the Master Node's dialable address.
func (s *Service) MasterAddr() string { return s.c.MasterAddr() }

// Tick runs the lazy-cache timeout check on every node. Long-running
// deployments call this from a ticker; short programs may ignore it
// (searches commit caches on demand anyway).
func (s *Service) Tick() error { return s.c.Tick() }

// Rebalance runs one heartbeat round: nodes report group sizes to the
// Master, and oversized Access-Causality groups are split and migrated.
func (s *Service) Rebalance() error { return s.c.Heartbeat() }

// Compact merges index groups smaller than minFiles on each node to undo
// fragmentation from many tiny capture sessions. It returns the number of
// merges performed.
func (s *Service) Compact(minFiles int) (int, error) { return s.c.Compact(minFiles) }

// Stats summarizes the cluster.
type Stats struct {
	Files      int64
	Groups     int
	IndexNodes int
	Indexes    []string
}

// Stats fetches a cluster summary.
func (s *Service) Stats() (Stats, error) {
	cl, err := s.NewClient()
	if err != nil {
		return Stats{}, err
	}
	defer cl.Close() //nolint:errcheck // read-only throwaway client
	raw, err := cl.c.ClusterStats()
	if err != nil {
		return Stats{}, err
	}
	st := Stats{Files: raw.Files, Groups: raw.ACGs, IndexNodes: len(raw.Nodes)}
	for _, spec := range raw.Indexes {
		st.Indexes = append(st.Indexes, spec.Name)
	}
	return st, nil
}

// Close shuts the deployment down.
func (s *Service) Close() error { return s.c.Close() }

// NewClient returns a client bound to this deployment.
func (s *Service) NewClient() (*Client, error) {
	cl, err := s.c.NewClient(s.now)
	if err != nil {
		return nil, fmt.Errorf("propeller: new client: %w", err)
	}
	return &Client{c: cl}, nil
}

// Client is a Propeller client: the File Query Engine plus the File Access
// Management capture interface. Safe for concurrent use.
type Client struct {
	c *client.Client
}

// Close releases the client's node connections.
func (c *Client) Close() error { return c.c.Close() }

// CreateIndex registers a named index cluster-wide. Names are globally
// unique.
func (c *Client) CreateIndex(spec IndexSpec) error { return c.c.CreateIndex(spec) }

// Update is one indexing request. Exactly one of Int, Float, Str, Time or
// Coords should be set (matching the index type); Delete removes the
// posting.
type Update struct {
	File FileID
	// Group co-locates files that are accessed together (0 = let the
	// captured access-causality decide). Files sharing a Group land in the
	// same index partition.
	Group uint64

	Int    int64
	Float  float64
	Str    string
	Time   time.Time
	Coords []float64

	// Which holds the kind of value set; the zero value auto-detects in
	// the order Coords, Str, Time, Float, Int.
	Delete bool
}

// value converts the update payload to an attribute value.
func (u Update) value() (attr.Value, []float64, error) {
	switch {
	case u.Coords != nil:
		return attr.Value{}, u.Coords, nil
	case u.Str != "":
		return attr.Str(u.Str), nil, nil
	case !u.Time.IsZero():
		return attr.Time(u.Time), nil, nil
	case u.Float != 0:
		return attr.Float(u.Float), nil, nil
	default:
		return attr.Int(u.Int), nil, nil
	}
}

// Index sends a batch of indexing requests to the named index. The batch is
// routed through the Master and delivered to the owning Index Nodes in
// parallel; it is acknowledged once every node has logged and cached the
// entries, after which searches are guaranteed to see them.
func (c *Client) Index(indexName string, updates []Update) error {
	if len(updates) == 0 {
		return nil
	}
	converted := make([]client.FileUpdate, 0, len(updates))
	for _, u := range updates {
		v, coords, err := u.value()
		if err != nil {
			return err
		}
		converted = append(converted, client.FileUpdate{
			File: u.File, Value: v, KDCoords: coords,
			Delete: u.Delete, GroupHint: u.Group,
		})
	}
	return c.c.Index(indexName, converted)
}

// Result is the outcome of a search.
type Result struct {
	// Files are the matching file ids, ascending, de-duplicated.
	Files []FileID
	// Nodes is how many Index Nodes served the query in parallel.
	Nodes int
}

// Search runs a query (package query syntax, e.g. "size>16m &
// mtime<1day") against the named index across the whole cluster.
func (c *Client) Search(indexName, queryStr string) (Result, error) {
	res, err := c.c.Search(indexName, queryStr)
	if err != nil {
		if errors.Is(err, client.ErrNoTargets) {
			return Result{}, nil // empty cluster: no matches
		}
		return Result{}, err
	}
	return Result{Files: res.Files, Nodes: res.Nodes}, nil
}

// SearchPath evaluates a dynamic query-directory path (the paper's
// "/foo/bar/?size>1m" namespace syntax) against the named index. Scoping a
// non-root directory requires a B-tree index over the "path" attribute
// whose postings hold each file's path.
func (c *Client) SearchPath(indexName, pathQuery string) (Result, error) {
	res, err := c.c.SearchDir(indexName, pathQuery)
	if err != nil {
		if errors.Is(err, client.ErrNoTargets) {
			return Result{}, nil
		}
		return Result{}, err
	}
	return Result{Files: res.Files, Nodes: res.Nodes}, nil
}

// Open records a file open in the access-capture layer (the FUSE
// interception point). mode "r" is a read open; "w" a write open.
func (c *Client) Open(proc PID, file FileID, mode string) {
	m := acg.OpenRead
	if mode == "w" {
		m = acg.OpenWrite
	}
	c.c.Open(proc, file, m)
}

// CloseFile records a file close.
func (c *Client) CloseFile(proc PID, file FileID) { c.c.CloseFile(proc, file) }

// EndProcess ends a capture session.
func (c *Client) EndProcess(proc PID) { c.c.EndProcess(proc) }

// FlushCapture ships the captured access-causality graph to the cluster,
// where it guides index partitioning.
func (c *Client) FlushCapture() error { return c.c.FlushACG() }
