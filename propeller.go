// Package propeller is the public API of the Propeller distributed
// real-time file-search service (Xu, Jiang, Tian, Huang — ICDCS 2014).
//
// Propeller keeps file indices always up to date by indexing *inline*: an
// indexing request is acknowledged after a write-ahead-log append and a
// cache insert, and every search commits the relevant caches first, so
// search results are strongly consistent with acknowledged updates. Index
// scale is kept small by partitioning along Access-Causality Graphs: files
// an application reads and writes together share a partition, so updates
// never fan out across the cluster.
//
// Quick start:
//
//	ctx := context.Background()
//	svc, _ := propeller.StartLocal(ctx, propeller.Options{IndexNodes: 2})
//	defer svc.Close()
//	cl, _ := svc.NewClient(ctx)
//	defer cl.Close()
//	cl.CreateIndex(ctx, propeller.BTreeIndex("size", "size"))
//	cl.Index(ctx, "size", []propeller.Update{{File: 1, Kind: propeller.KindInt, Int: 64 << 20, Group: 1}})
//	res, _ := cl.Search(ctx, propeller.Query{Index: "size", Text: "size>16m", Limit: 100})
//
// Every network-touching method takes a context.Context: deadlines travel
// with each RPC down to the Index Nodes and cancellation aborts in-flight
// fan-outs. Searches go through a single Query type supporting textual or
// typed predicates, query-directory path scoping, cursor pagination and a
// consistency knob; SearchStream yields per-node batches as they arrive.
package propeller

import (
	"context"
	"fmt"
	"time"

	"propeller/internal/acg"
	"propeller/internal/attr"
	"propeller/internal/client"
	"propeller/internal/cluster"
	"propeller/internal/index"
	"propeller/internal/proto"
	"propeller/internal/query"
	"propeller/internal/rpc"
)

// FileID identifies a file (an inode number).
type FileID = index.FileID

// PID identifies a process in access-capture calls.
type PID = acg.PID

// IndexSpec declares a named index. Build specs with BTreeIndex, HashIndex
// or KDIndex.
type IndexSpec = proto.IndexSpec

// BTreeIndex declares an ordered index over one attribute (range queries).
func BTreeIndex(name, field string) IndexSpec {
	return IndexSpec{Name: name, Type: proto.IndexBTree, Field: field}
}

// HashIndex declares an exact-match index over one attribute.
func HashIndex(name, field string) IndexSpec {
	return IndexSpec{Name: name, Type: proto.IndexHash, Field: field}
}

// KDIndex declares a multi-dimensional index over the given attributes.
func KDIndex(name string, fields ...string) IndexSpec {
	return IndexSpec{Name: name, Type: proto.IndexKD, Fields: fields}
}

// Options configures an in-process deployment.
type Options struct {
	// IndexNodes is the number of Index Nodes (default 1).
	IndexNodes int
	// UseTCP runs all node transports over loopback TCP instead of
	// in-memory pipes.
	UseTCP bool
	// CommitTimeout is the lazy index-cache timeout (default 5 s).
	CommitTimeout time.Duration
	// SplitThreshold is the ACG size that triggers a background split
	// (default 50,000 files).
	SplitThreshold int
	// Now anchors relative query predicates such as "mtime<1day"
	// (default time.Now).
	Now func() time.Time
}

// Service is a running Propeller deployment (one Master Node plus Index
// Nodes) inside this process.
type Service struct {
	c   *cluster.Cluster
	now func() time.Time
}

// StartLocal boots a Propeller deployment. The context gates entry (a
// cancelled context refuses to boot); the boot itself is in-process —
// loopback listeners and pipe dials — and does not block on external
// resources.
func StartLocal(ctx context.Context, opts Options) (*Service, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("propeller: start: %w", err)
	}
	c, err := cluster.New(cluster.Config{
		IndexNodes:     opts.IndexNodes,
		UseTCP:         opts.UseTCP,
		CommitTimeout:  opts.CommitTimeout,
		SplitThreshold: opts.SplitThreshold,
		NetProfile:     rpc.NetProfile{},
	})
	if err != nil {
		return nil, fmt.Errorf("propeller: start: %w", err)
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	return &Service{c: c, now: now}, nil
}

// MasterAddr returns the Master Node's dialable address.
func (s *Service) MasterAddr() string { return s.c.MasterAddr() }

// Tick runs the lazy-cache timeout check on every node. Long-running
// deployments call this from a ticker; short programs may ignore it
// (searches commit caches on demand anyway).
func (s *Service) Tick(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.c.Tick()
}

// Rebalance runs one heartbeat round: nodes report group sizes to the
// Master, and oversized Access-Causality groups are split and migrated.
func (s *Service) Rebalance(ctx context.Context) error { return s.c.Heartbeat(ctx) }

// Compact merges index groups smaller than minFiles on each node to undo
// fragmentation from many tiny capture sessions. It returns the number of
// merges performed.
func (s *Service) Compact(ctx context.Context, minFiles int) (int, error) {
	return s.c.Compact(ctx, minFiles)
}

// Stats summarizes the cluster.
type Stats struct {
	Files      int64
	Groups     int
	IndexNodes int
	Indexes    []string
}

// Stats fetches a cluster summary.
func (s *Service) Stats(ctx context.Context) (Stats, error) {
	cl, err := s.NewClient(ctx)
	if err != nil {
		return Stats{}, err
	}
	defer cl.Close() //nolint:errcheck // read-only throwaway client
	raw, err := cl.c.ClusterStats(ctx)
	if err != nil {
		return Stats{}, err
	}
	st := Stats{Files: raw.Files, Groups: raw.ACGs, IndexNodes: len(raw.Nodes)}
	for _, spec := range raw.Indexes {
		st.Indexes = append(st.Indexes, spec.Name)
	}
	return st, nil
}

// Close shuts the deployment down.
func (s *Service) Close() error { return s.c.Close() }

// NewClient returns a client bound to this deployment.
func (s *Service) NewClient(ctx context.Context) (*Client, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("propeller: new client: %w", err)
	}
	cl, err := s.c.NewClient(s.now)
	if err != nil {
		return nil, fmt.Errorf("propeller: new client: %w", err)
	}
	return &Client{c: cl}, nil
}

// Client is a Propeller client: the File Query Engine plus the File Access
// Management capture interface. Safe for concurrent use.
type Client struct {
	c *client.Client
}

// Close releases the client's node connections.
func (c *Client) Close() error { return c.c.Close() }

// CreateIndex registers a named index cluster-wide. Names are globally
// unique.
func (c *Client) CreateIndex(ctx context.Context, spec IndexSpec) error {
	return c.c.CreateIndex(ctx, spec)
}

// ValueKind selects which payload field of an Update carries the value.
type ValueKind uint8

// Update value kinds.
const (
	// KindAuto detects the kind from the set fields in the order Coords,
	// Str, Time, Float, Int. Ambiguous for the zero values Float(0) and
	// Str(""): both fall through to Int. Set an explicit kind to index
	// those.
	KindAuto ValueKind = iota
	KindInt
	KindFloat
	KindStr
	KindTime
	KindCoords
)

// Update is one indexing request. Kind selects the value field; KindAuto
// (the zero value) detects it from whichever field is set. Delete removes
// the posting.
type Update struct {
	File FileID
	// Group co-locates files that are accessed together (0 = let the
	// captured access-causality decide). Files sharing a Group land in the
	// same index partition.
	Group uint64

	// Kind selects the value field explicitly, fixing KindAuto's
	// zero-value ambiguity (Float: 0 or Str: "" are indexable only with an
	// explicit Kind).
	Kind ValueKind

	Int    int64
	Float  float64
	Str    string
	Time   time.Time
	Coords []float64

	Delete bool
}

// value converts the update payload to an attribute value.
func (u Update) value() (attr.Value, []float64, error) {
	switch u.Kind {
	case KindAuto:
		switch {
		case u.Coords != nil:
			return attr.Value{}, u.Coords, nil
		case u.Str != "":
			return attr.Str(u.Str), nil, nil
		case !u.Time.IsZero():
			return attr.Time(u.Time), nil, nil
		case u.Float != 0:
			return attr.Float(u.Float), nil, nil
		default:
			return attr.Int(u.Int), nil, nil
		}
	case KindInt:
		return attr.Int(u.Int), nil, nil
	case KindFloat:
		return attr.Float(u.Float), nil, nil
	case KindStr:
		return attr.Str(u.Str), nil, nil
	case KindTime:
		return attr.Time(u.Time), nil, nil
	case KindCoords:
		return attr.Value{}, u.Coords, nil
	default:
		return attr.Value{}, nil, fmt.Errorf("propeller: update for file %d has unknown value kind %d", u.File, u.Kind)
	}
}

// Index sends a batch of indexing requests to the named index. The batch is
// routed through the Master and delivered to the owning Index Nodes in
// parallel; it is acknowledged once every node has logged and cached the
// entries, after which searches are guaranteed to see them.
func (c *Client) Index(ctx context.Context, indexName string, updates []Update) error {
	if len(updates) == 0 {
		return nil
	}
	converted := make([]client.FileUpdate, 0, len(updates))
	for _, u := range updates {
		v, coords, err := u.value()
		if err != nil {
			return err
		}
		converted = append(converted, client.FileUpdate{
			File: u.File, Value: v, KDCoords: coords,
			Delete: u.Delete, GroupHint: u.Group,
		})
	}
	return c.c.Index(ctx, indexName, converted)
}

// Search runs q against the cluster: the Master supplies the fan-out, all
// owning Index Nodes are queried in parallel, and their (ascending) result
// streams are merged. With q.Limit set the result is one page and each
// node ships at most Limit postings; resume with q.Cursor = res.Next.
//
// An empty cluster yields an empty result. An unknown index yields
// ErrIndexNotFound; malformed predicates yield ErrBadQuery; an expired
// context deadline yields ErrTimeout.
func (c *Client) Search(ctx context.Context, q Query) (Result, error) {
	iq, err := q.toInternal()
	if err != nil {
		return Result{}, err
	}
	res, err := c.c.Search(ctx, iq)
	if err != nil {
		return Result{}, err
	}
	out := Result{Files: res.Files, Nodes: res.Nodes, More: res.More}
	if res.NextSet {
		out.Next = Cursor{After: res.Next, Set: true, Anchor: res.Anchor}
	}
	return out, nil
}

// SearchStream runs q like Search but returns each Index Node's batch as
// soon as that node responds instead of waiting for the slowest node:
//
//	st, err := cl.SearchStream(ctx, q)
//	for b, ok := st.Next(); ok; b, ok = st.Next() {
//		... // b.Files from b.Node
//	}
//	err = st.Err()
//
// Files are de-duplicated within a batch but not across batches (distinct
// nodes hold distinct partitions, so cross-node duplicates only appear
// transiently around group migrations). Cancelling the context aborts
// outstanding node calls; abandoning the stream leaks nothing.
func (c *Client) SearchStream(ctx context.Context, q Query) (*Stream, error) {
	iq, err := q.toInternal()
	if err != nil {
		return nil, err
	}
	st, err := c.c.SearchStream(ctx, iq)
	if err != nil {
		return nil, err
	}
	return &Stream{s: st}, nil
}

// SearchString runs a textual query against the named index.
//
// Deprecated: use Search with a Query — it adds context cancellation,
// pagination, path scoping and typed predicates. This wrapper delegates to
// Search with an unbounded context.
func (c *Client) SearchString(indexName, queryStr string) (Result, error) {
	return c.Search(context.Background(), Query{Index: indexName, Text: queryStr})
}

// SearchPath evaluates a dynamic query-directory path (the paper's
// "/foo/bar/?size>1m" namespace syntax) against the named index. Scoping a
// non-root directory requires a B-tree index over the "path" attribute
// whose postings hold each file's path.
//
// Deprecated: use Search with Query{Path: dir, Text: predicate} — the
// Path field subsumes the "/dir/?query" syntax and composes with
// pagination and streaming. This wrapper delegates to Search with an
// unbounded context.
func (c *Client) SearchPath(indexName, pathQuery string) (Result, error) {
	dir, raw, err := query.SplitQueryPath(pathQuery)
	if err != nil {
		return Result{}, err
	}
	return c.Search(context.Background(), Query{Index: indexName, Text: raw, Path: dir})
}

// Open records a file open in the access-capture layer (the FUSE
// interception point). mode "r" is a read open; "w" a write open.
func (c *Client) Open(proc PID, file FileID, mode string) {
	m := acg.OpenRead
	if mode == "w" {
		m = acg.OpenWrite
	}
	c.c.Open(proc, file, m)
}

// CloseFile records a file close.
func (c *Client) CloseFile(proc PID, file FileID) { c.c.CloseFile(proc, file) }

// EndProcess ends a capture session.
func (c *Client) EndProcess(proc PID) { c.c.EndProcess(proc) }

// FlushCapture ships the captured access-causality graph to the cluster,
// where it guides index partitioning.
func (c *Client) FlushCapture(ctx context.Context) error { return c.c.FlushACG(ctx) }
