package wirebench

import (
	"bytes"
	"reflect"
	"testing"

	"propeller/internal/rpc"
)

// TestScenarioCodecsAgree round-trips every scenario through both codecs
// and checks the binary encoding is strictly smaller — the fixture-level
// form of the ratio gate benchjson enforces on the committed baseline.
func TestScenarioCodecsAgree(t *testing.T) {
	for _, s := range Scenarios() {
		raw := s.Msg.MarshalWire(nil)
		got := s.New()
		if err := got.UnmarshalWire(raw); err != nil {
			t.Fatalf("%s: binary round trip: %v", s.Name, err)
		}
		if !reflect.DeepEqual(got, s.Msg) {
			t.Errorf("%s: binary round trip mismatch", s.Name)
		}

		var buf bytes.Buffer
		if err := EncodeGob(&buf, s.Msg); err != nil {
			t.Fatalf("%s: gob encode: %v", s.Name, err)
		}
		gotGob := s.New()
		if err := DecodeGob(buf.Bytes(), gotGob); err != nil {
			t.Fatalf("%s: gob decode: %v", s.Name, err)
		}
		if !reflect.DeepEqual(gotGob, s.Msg) {
			t.Errorf("%s: gob round trip mismatch", s.Name)
		}
		if len(raw) >= buf.Len() {
			t.Errorf("%s: binary %d bytes is not smaller than gob %d bytes", s.Name, len(raw), buf.Len())
		}
	}
}

// TestRunMigration runs the streamed-transfer measurement once and holds
// it to the same invariants -wire-check gates: the image dwarfs the
// window, the receiver never buffered more than the window, and every
// file arrived.
func TestRunMigration(t *testing.T) {
	r, err := RunMigration()
	if err != nil {
		t.Fatal(err)
	}
	if r.WindowBytes != rpc.StreamWindow {
		t.Fatalf("window = %d, want %d", r.WindowBytes, rpc.StreamWindow)
	}
	if r.ImageBytes < 3*r.WindowBytes {
		t.Fatalf("image = %d bytes, want >= 3x window %d to make the ceiling meaningful", r.ImageBytes, r.WindowBytes)
	}
	if r.ReceiverPeakBytes == 0 || r.ReceiverPeakBytes > r.WindowBytes {
		t.Fatalf("receiver peak = %d bytes, want in (0, %d]", r.ReceiverPeakBytes, r.WindowBytes)
	}
	if want := MigrationBatch * MigrationBatches; r.FilesMoved != want {
		t.Fatalf("files moved = %d, want %d", r.FilesMoved, want)
	}
}
