// Package wirebench builds the fixtures behind the wire-transport
// benchmarks, shared by the root bench suite and tools/benchjson (which
// emits BENCH_wire.json in CI). It mirrors internal/updatebench for the
// commit path: keeping the payloads in one place makes the committed
// JSON baseline and any ad-hoc measurement the same experiment.
//
// Two questions are measured. First, the codec question: for the hot
// RPC frames (Update and Search), how do the hand-rolled binary
// encoders compare against gob as the rpc layer actually uses gob — a
// fresh encoder per message, so every frame re-pays type descriptors?
// Second, the transfer question: when a multi-megabyte ACG image is
// migrated as a chunked stream, how much does the receiving server ever
// buffer relative to the flow-control window? The first is a throughput
// claim (bytes/op and ns/op ratios); the second is a memory-ceiling
// claim (peak ≤ window regardless of image size).
package wirebench

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"strings"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/indexnode"
	"propeller/internal/master"
	"propeller/internal/pagestore"
	"propeller/internal/proto"
	"propeller/internal/query"
	"propeller/internal/rpc"
	"propeller/internal/sharedstore"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

// Standard fixture sizes. The codec payloads are one commit window of
// acknowledged updates and one page-sized result set — the frame shapes
// the data path sends constantly, not toy single-entry messages.
const (
	// UpdateEntries is the entry count in the benchmarked UpdateReq: a
	// full client batch with mixed values, deletes and K-D coordinates.
	UpdateEntries = 256
	// SearchFiles is the result count in the benchmarked SearchResp.
	SearchFiles = 1024
	// MigrationBatch/MigrationBatches size the migrated group: ~128
	// bytes of value per entry, so the image is several times the
	// 1 MiB flow-control window.
	MigrationBatch   = 256
	MigrationBatches = 120
)

// Message is the marshal/unmarshal pair every hot-path frame implements
// (rpc.WireMarshaler + rpc.WireUnmarshaler, restated so callers don't
// need the rpc interfaces to drive a codec measurement).
type Message interface {
	MarshalWire(dst []byte) []byte
	UnmarshalWire(data []byte) error
}

// Scenario is one benchmarked message shape: a populated fixture plus a
// constructor for fresh decode targets.
type Scenario struct {
	Name string
	Msg  Message
	New  func() Message
}

// Scenarios returns the codec scenarios in a fixed order: the Update
// request (write path), the Search request (read path, parsed
// predicates included) and the Search response (result page).
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "update_req", Msg: updateFixture(), New: func() Message { return &proto.UpdateReq{} }},
		{Name: "search_req", Msg: searchReqFixture(), New: func() Message { return &proto.SearchReq{} }},
		{Name: "search_resp", Msg: searchRespFixture(), New: func() Message { return &proto.SearchResp{} }},
	}
}

// updateFixture is one commit window: UpdateEntries entries with string
// and integer values, a sprinkling of deletes and K-D points — the
// mixture the binary entry codec has flag bits for.
func updateFixture() Message {
	req := &proto.UpdateReq{ACG: 7, IndexName: "size", Client: "tenant-3"}
	req.Entries = make([]proto.IndexEntry, UpdateEntries)
	for i := range req.Entries {
		e := proto.IndexEntry{File: index.FileID(100_000 + i*17)}
		switch {
		case i%16 == 15:
			e.Delete = true
		case i%8 == 7:
			e.KDCoords = []float64{float64(i) * 1.5, float64(-i) * 0.25}
		case i%2 == 0:
			e.Value = attr.Int(int64(i) << 20)
		default:
			e.Value = attr.Str(fmt.Sprintf("path/to/file-%04d.log", i))
		}
		req.Entries[i] = e
	}
	return req
}

// searchReqFixture is a strict-consistency multi-predicate query fanned
// over several groups — the widest SearchReq the planner emits.
func searchReqFixture() Message {
	return &proto.SearchReq{
		ACGs:      []proto.ACGID{3, 19, 127, 4096},
		IndexName: "size",
		Query:     "size>8m & mtime<1week & name=build.log",
		Preds: []query.Predicate{
			{Field: "size", Op: query.OpGt, Value: attr.Int(8 << 20)},
			{Field: "mtime", Op: query.OpLt, Value: attr.Int(604_800)},
			{Field: "name", Op: query.OpEq, Value: attr.Str("build.log")},
		},
		NowUnixNano: 1_402_617_600_000_000_000,
		Limit:       SearchFiles, After: 99, AfterSet: true,
		Consistency: proto.ConsistencyStrict, Client: "tenant-3",
	}
}

// searchRespFixture is a full result page: SearchFiles ascending file
// IDs (the shape delta coding in future versions would exploit; today
// they are plain uvarints).
func searchRespFixture() Message {
	resp := &proto.SearchResp{CommitLatencyNanos: 1_234_567, More: true, MaxRetained: SearchFiles, Epoch: 12}
	resp.Files = make([]index.FileID, SearchFiles)
	for i := range resp.Files {
		resp.Files[i] = index.FileID(1000 + i*3)
	}
	return resp
}

// EncodeGob encodes msg the way the rpc layer's gob path does: a fresh
// encoder per message. Gob streams are stateful, so per-frame encoders
// re-send type descriptors on every message — overhead the binary codec
// exists to remove; benchmarking a long-lived shared encoder would
// measure a configuration the transport never runs.
func EncodeGob(buf *bytes.Buffer, msg Message) error {
	buf.Reset()
	return gob.NewEncoder(buf).Encode(msg)
}

// DecodeGob decodes one gob message with a fresh decoder, mirroring
// EncodeGob.
func DecodeGob(raw []byte, out Message) error {
	return gob.NewDecoder(bytes.NewReader(raw)).Decode(out)
}

// MigrationResult reports the chunk-streamed transfer measurement.
type MigrationResult struct {
	// ImageBytes is the full serialized group image (read back from the
	// shared-store checkpoint the transfer writes), the amount a
	// whole-image receiver would have buffered.
	ImageBytes int64 `json:"image_bytes"`
	// ReceiverPeakBytes is the receiving rpc server's peak buffered
	// stream payload during the migration.
	ReceiverPeakBytes int64 `json:"receiver_peak_bytes"`
	// WindowBytes is the per-stream flow-control window — the ceiling
	// ReceiverPeakBytes is gated against.
	WindowBytes int64 `json:"window_bytes"`
	// FilesMoved is the post-migration search count on the destination,
	// proving the bounded-memory path installed the whole group.
	FilesMoved int `json:"files_moved"`
}

// RunMigration migrates one multi-megabyte ACG between two live index
// nodes over in-process pipes and reports the receiver's peak stream
// buffering against the flow-control window. The rig is the same shape
// the transfer tests use: one master, two nodes, one shared store, one
// virtual clock.
func RunMigration() (MigrationResult, error) {
	ctx := context.Background()
	clk := vclock.New()
	shared := sharedstore.New()
	m := master.New(master.Config{Clock: clk})
	masterSrv := rpc.NewServer()
	m.RegisterRPC(masterSrv)

	servers := map[string]*rpc.Server{"pipe:master": masterSrv}
	dial := func(_ context.Context, addr string) (*rpc.Client, error) {
		srv, ok := servers[addr]
		if !ok {
			return nil, errors.New("unknown addr " + addr)
		}
		cc, sc := rpc.Pipe()
		srv.ServeConn(sc)
		return rpc.NewClient(cc), nil
	}

	mkNode := func(id proto.NodeID) (*indexnode.Node, error) {
		disk := simdisk.New(simdisk.Barracuda7200(), clk)
		store, err := pagestore.New(disk, 4096)
		if err != nil {
			return nil, err
		}
		mc, err := dial(ctx, "pipe:master")
		if err != nil {
			return nil, err
		}
		n, err := indexnode.New(indexnode.Config{
			ID: id, Store: store, Disk: disk, Clock: clk,
			CacheLimit: 1 << 20, Master: mc, Dial: dial, Shared: shared,
		})
		if err != nil {
			return nil, err
		}
		srv := rpc.NewServer()
		n.RegisterRPC(srv)
		servers["pipe:"+string(id)] = srv
		if _, err := m.RegisterNode(ctx, proto.RegisterNodeReq{
			Node: id, Addr: "pipe:" + string(id), CapacityFiles: 1 << 30,
		}); err != nil {
			return nil, err
		}
		return n, nil
	}

	a, err := mkNode("wire-a")
	if err != nil {
		return MigrationResult{}, err
	}
	b, err := mkNode("wire-b")
	if err != nil {
		return MigrationResult{}, err
	}

	a.DeclareIndex(proto.IndexSpec{Name: "tag", Type: proto.IndexBTree, Field: "tag"})
	b.DeclareIndex(proto.IndexSpec{Name: "tag", Type: proto.IndexBTree, Field: "tag"})
	pad := strings.Repeat("v", 120)
	for batch := 0; batch < MigrationBatches; batch++ {
		entries := make([]proto.IndexEntry, MigrationBatch)
		for i := range entries {
			f := index.FileID(batch*MigrationBatch + i)
			entries[i] = proto.IndexEntry{File: f, Value: attr.Str(pad + string(rune('a'+batch%26)))}
		}
		if _, err := a.Update(ctx, proto.UpdateReq{ACG: 1, IndexName: "tag", Entries: entries}); err != nil {
			return MigrationResult{}, err
		}
	}
	if err := a.Heartbeat(ctx); err != nil {
		return MigrationResult{}, err
	}

	if err := a.TransferACG(ctx, proto.MigrateOrder{ACG: 1, Dest: "wire-b", Addr: "pipe:wire-b"}); err != nil {
		return MigrationResult{}, err
	}

	// The transfer checkpoints the image to the shared store before
	// shipping, so the checkpoint length is the exact serialized size a
	// single-frame receiver would have held in memory at once.
	checkpoint, _, ok := shared.Load(1)
	if !ok {
		return MigrationResult{}, errors.New("migration left no shared-store checkpoint to size the image")
	}
	resp, err := b.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "tag", Query: `tag>=""`})
	if err != nil {
		return MigrationResult{}, err
	}
	return MigrationResult{
		ImageBytes:        int64(len(checkpoint)),
		ReceiverPeakBytes: servers["pipe:wire-b"].StreamBufferedPeak(),
		WindowBytes:       rpc.StreamWindow,
		FilesMoved:        len(resp.Files),
	}, nil
}
