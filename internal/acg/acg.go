// Package acg implements the Access-Causality Graph, the paper's core
// contribution (§III).
//
// Two files fA and fB are access-causal (fA → fB) when a process opens fA
// for reading or writing at time t0 and the same process opens fB for
// writing at a later time t1: fA is a content producer of fB. The ACG is a
// directed graph whose vertices are files and whose edge weights count how
// often the causal pair was observed. Propeller partitions file indices
// along the connected components of this graph; oversized components are
// split with a balanced min-cut (package partition).
package acg

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"propeller/internal/index"
)

// Graph is a directed weighted access-causality graph. Methods are safe for
// concurrent use (clients update ACGs from interleaved process events).
type Graph struct {
	mu  sync.RWMutex
	adj map[index.FileID]map[index.FileID]int64 // src -> dst -> weight
	in  map[index.FileID]int                    // in-degree counts for vertex tracking
}

// NewGraph returns an empty ACG.
func NewGraph() *Graph {
	return &Graph{
		adj: make(map[index.FileID]map[index.FileID]int64),
		in:  make(map[index.FileID]int),
	}
}

// AddVertex ensures file is present even with no edges (an isolated file is
// its own component and still needs an index home).
func (g *Graph) AddVertex(f index.FileID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ensureVertex(f)
}

func (g *Graph) ensureVertex(f index.FileID) {
	if _, ok := g.adj[f]; !ok {
		g.adj[f] = make(map[index.FileID]int64)
	}
	if _, ok := g.in[f]; !ok {
		g.in[f] = 0
	}
}

// AddEdge increments the weight of src → dst by w (w <= 0 is ignored;
// self-edges are ignored: a file is trivially causal with itself).
func (g *Graph) AddEdge(src, dst index.FileID, w int64) {
	if w <= 0 || src == dst {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ensureVertex(src)
	g.ensureVertex(dst)
	if g.adj[src][dst] == 0 {
		g.in[dst]++
	}
	g.adj[src][dst] += w
}

// EdgeWeight returns the weight of src → dst (0 if absent).
func (g *Graph) EdgeWeight(src, dst index.FileID) int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.adj[src][dst]
}

// NumVertices returns the number of files in the graph.
func (g *Graph) NumVertices() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.adj)
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, m := range g.adj {
		n += len(m)
	}
	return n
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var w int64
	for _, m := range g.adj {
		for _, ew := range m {
			w += ew
		}
	}
	return w
}

// Vertices returns all files in the graph in ascending order.
func (g *Graph) Vertices() []index.FileID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]index.FileID, 0, len(g.adj))
	for f := range g.adj {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForEachEdge streams every directed edge to fn in deterministic order; fn
// returns false to stop early.
func (g *Graph) ForEachEdge(fn func(src, dst index.FileID, w int64) bool) {
	g.mu.RLock()
	type edge struct {
		src, dst index.FileID
		w        int64
	}
	edges := make([]edge, 0, 64)
	for src, m := range g.adj {
		for dst, w := range m {
			edges = append(edges, edge{src, dst, w})
		}
	}
	g.mu.RUnlock()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].src != edges[j].src {
			return edges[i].src < edges[j].src
		}
		return edges[i].dst < edges[j].dst
	})
	for _, e := range edges {
		if !fn(e.src, e.dst, e.w) {
			return
		}
	}
}

// Merge folds other into g (used when a client flushes its cached ACG to an
// Index Node's authoritative graph). ACGs are weakly consistent by design:
// lost or duplicated merges degrade partition quality, never search results.
func (g *Graph) Merge(other *Graph) {
	other.mu.RLock()
	type edge struct {
		src, dst index.FileID
		w        int64
	}
	edges := make([]edge, 0, 64)
	verts := make([]index.FileID, 0, len(other.adj))
	for src, m := range other.adj {
		verts = append(verts, src)
		for dst, w := range m {
			edges = append(edges, edge{src, dst, w})
		}
	}
	other.mu.RUnlock()
	for _, v := range verts {
		g.AddVertex(v)
	}
	for _, e := range edges {
		g.AddEdge(e.src, e.dst, e.w)
	}
}

// Undirected returns a symmetric adjacency view with weights summed across
// both directions. Partitioning treats the ACG as undirected: an index
// co-access is costly whichever direction caused it.
func (g *Graph) Undirected() map[index.FileID]map[index.FileID]int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	u := make(map[index.FileID]map[index.FileID]int64, len(g.adj))
	add := func(a, b index.FileID, w int64) {
		if u[a] == nil {
			u[a] = make(map[index.FileID]int64)
		}
		u[a][b] += w
	}
	for src := range g.adj {
		if u[src] == nil {
			u[src] = make(map[index.FileID]int64)
		}
	}
	for src, m := range g.adj {
		for dst, w := range m {
			add(src, dst, w)
			add(dst, src, w)
		}
	}
	return u
}

// ConnectedComponents returns the weakly connected components, each sorted
// by file id, ordered by descending size then by smallest member.
func (g *Graph) ConnectedComponents() [][]index.FileID {
	u := g.Undirected()
	seen := make(map[index.FileID]bool, len(u))
	var comps [][]index.FileID
	// Deterministic iteration order.
	verts := make([]index.FileID, 0, len(u))
	for v := range u {
		verts = append(verts, v)
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	for _, start := range verts {
		if seen[start] {
			continue
		}
		var comp []index.FileID
		stack := []index.FileID{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for n := range u[v] {
				if !seen[n] {
					seen[n] = true
					stack = append(stack, n)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// Subgraph returns the induced directed subgraph over the given files.
func (g *Graph) Subgraph(files []index.FileID) *Graph {
	in := make(map[index.FileID]bool, len(files))
	for _, f := range files {
		in[f] = true
	}
	sub := NewGraph()
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, f := range files {
		if _, ok := g.adj[f]; ok {
			sub.ensureVertex(f)
		}
	}
	for src, m := range g.adj {
		if !in[src] {
			continue
		}
		for dst, w := range m {
			if in[dst] {
				sub.AddEdge(src, dst, w)
			}
		}
	}
	return sub
}

// DOT renders the graph in Graphviz format (used to regenerate Figure 7).
func (g *Graph) DOT(name string) string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	srcs := make([]index.FileID, 0, len(g.adj))
	for s := range g.adj {
		srcs = append(srcs, s)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, s := range srcs {
		if len(g.adj[s]) == 0 && g.in[s] == 0 {
			fmt.Fprintf(&b, "  f%d;\n", s)
			continue
		}
		dsts := make([]index.FileID, 0, len(g.adj[s]))
		for d := range g.adj[s] {
			dsts = append(dsts, d)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		for _, d := range dsts {
			fmt.Fprintf(&b, "  f%d -> f%d [weight=%d];\n", s, d, g.adj[s][d])
		}
	}
	b.WriteString("}\n")
	return b.String()
}
