package acg

import (
	"sort"

	"propeller/internal/index"
)

// DefaultGroupThreshold is the component-size threshold above which
// Propeller splits an ACG into sub-graphs (the paper suggests 50,000 files).
const DefaultGroupThreshold = 50000

// ClusterComponents packs connected components into index groups: small
// components from the same application are clustered together to avoid
// index fragmentation (§III), while components larger than threshold are
// passed through alone (the caller splits them with package partition).
//
// Packing is first-fit-decreasing, deterministic for a given graph.
func ClusterComponents(comps [][]index.FileID, threshold int) [][]index.FileID {
	if threshold < 1 {
		threshold = DefaultGroupThreshold
	}
	// Sort descending by size (stable by first member).
	sorted := make([][]index.FileID, len(comps))
	copy(sorted, comps)
	sort.SliceStable(sorted, func(i, j int) bool {
		if len(sorted[i]) != len(sorted[j]) {
			return len(sorted[i]) > len(sorted[j])
		}
		if len(sorted[i]) == 0 || len(sorted[j]) == 0 {
			return len(sorted[i]) != 0
		}
		return sorted[i][0] < sorted[j][0]
	})

	type bin struct {
		files []index.FileID
		size  int
	}
	var bins []*bin
	for _, comp := range sorted {
		if len(comp) == 0 {
			continue
		}
		if len(comp) >= threshold {
			// Oversized component: its own group (caller will split it).
			files := make([]index.FileID, len(comp))
			copy(files, comp)
			bins = append(bins, &bin{files: files, size: len(comp)})
			continue
		}
		placed := false
		for _, b := range bins {
			if b.size < threshold && b.size+len(comp) <= threshold {
				b.files = append(b.files, comp...)
				b.size += len(comp)
				placed = true
				break
			}
		}
		if !placed {
			files := make([]index.FileID, 0, len(comp))
			files = append(files, comp...)
			bins = append(bins, &bin{files: files, size: len(comp)})
		}
	}
	out := make([][]index.FileID, 0, len(bins))
	for _, b := range bins {
		sort.Slice(b.files, func(i, j int) bool { return b.files[i] < b.files[j] })
		out = append(out, b.files)
	}
	return out
}
