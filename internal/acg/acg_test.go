package acg

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"propeller/internal/index"
)

func TestAddEdgeAndWeights(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 2, 4)
	g.AddEdge(2, 1, 2)
	if w := g.EdgeWeight(1, 2); w != 5 {
		t.Errorf("weight(1->2) = %d, want 5", w)
	}
	if w := g.EdgeWeight(2, 1); w != 2 {
		t.Errorf("weight(2->1) = %d, want 2", w)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 2 || g.TotalWeight() != 7 {
		t.Errorf("V=%d E=%d W=%d, want 2/2/7", g.NumVertices(), g.NumEdges(), g.TotalWeight())
	}
}

func TestSelfAndNonPositiveEdgesIgnored(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 1, 5)
	g.AddEdge(1, 2, 0)
	g.AddEdge(1, 2, -3)
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d, want 0", g.NumEdges())
	}
}

func TestAddVertexIsolated(t *testing.T) {
	g := NewGraph()
	g.AddVertex(9)
	if g.NumVertices() != 1 {
		t.Errorf("NumVertices = %d, want 1", g.NumVertices())
	}
	comps := g.ConnectedComponents()
	if len(comps) != 1 || len(comps[0]) != 1 || comps[0][0] != 9 {
		t.Errorf("components = %v", comps)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewGraph()
	// Component A: 1-2-3 (via directed edges both ways).
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 2, 1)
	// Component B: 10-11.
	g.AddEdge(10, 11, 7)
	// Component C: isolated 20.
	g.AddVertex(20)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3: %v", len(comps), comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 1 {
		t.Errorf("largest component = %v, want [1 2 3]", comps[0])
	}
	if len(comps[1]) != 2 || comps[1][0] != 10 {
		t.Errorf("second component = %v, want [10 11]", comps[1])
	}
	if len(comps[2]) != 1 || comps[2][0] != 20 {
		t.Errorf("third component = %v, want [20]", comps[2])
	}
}

func TestUndirectedSymmetric(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 1, 4)
	u := g.Undirected()
	if u[1][2] != 7 || u[2][1] != 7 {
		t.Errorf("undirected weights = %d/%d, want 7/7", u[1][2], u[2][1])
	}
}

func TestMerge(t *testing.T) {
	a, b := NewGraph(), NewGraph()
	a.AddEdge(1, 2, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(3, 4, 5)
	b.AddVertex(9)
	a.Merge(b)
	if a.EdgeWeight(1, 2) != 3 {
		t.Errorf("merged weight = %d, want 3", a.EdgeWeight(1, 2))
	}
	if a.EdgeWeight(3, 4) != 5 {
		t.Errorf("merged new edge = %d, want 5", a.EdgeWeight(3, 4))
	}
	if a.NumVertices() != 5 {
		t.Errorf("merged vertices = %d, want 5", a.NumVertices())
	}
}

func TestSubgraph(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	sub := g.Subgraph([]index.FileID{1, 2, 3})
	if sub.NumVertices() != 3 {
		t.Errorf("subgraph vertices = %d, want 3", sub.NumVertices())
	}
	if sub.EdgeWeight(1, 2) != 1 || sub.EdgeWeight(2, 3) != 1 {
		t.Error("subgraph should keep internal edges")
	}
	if sub.EdgeWeight(3, 4) != 0 {
		t.Error("subgraph must drop edges crossing the cut")
	}
}

func TestDOT(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 2, 3)
	g.AddVertex(5)
	dot := g.DOT("thrift")
	for _, want := range []string{"digraph \"thrift\"", "f1 -> f2 [weight=3];", "f5;"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestConcurrentAddEdge(t *testing.T) {
	g := NewGraph()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				g.AddEdge(index.FileID(rng.Intn(50)), index.FileID(rng.Intn(50)), 1)
			}
		}(int64(w))
	}
	wg.Wait()
	// 8*500 additions minus ignored self-edges equals total weight.
	if g.TotalWeight() <= 0 || g.TotalWeight() > 4000 {
		t.Errorf("total weight = %d out of range", g.TotalWeight())
	}
}

// Property: connected components partition the vertex set.
func TestComponentsPartitionVertices(t *testing.T) {
	f := func(edges [][2]uint8) bool {
		g := NewGraph()
		for _, e := range edges {
			g.AddEdge(index.FileID(e[0]), index.FileID(e[1]), 1)
			g.AddVertex(index.FileID(e[0]))
		}
		comps := g.ConnectedComponents()
		seen := map[index.FileID]int{}
		total := 0
		for _, c := range comps {
			for _, v := range c {
				seen[v]++
				total++
			}
		}
		if total != g.NumVertices() {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBuilderCausality(t *testing.T) {
	b := NewBuilder()
	// Process 1 reads i0, i1, then writes o0: edges i0->o0, i1->o0.
	b.Open(1, 100, OpenRead)
	b.Open(1, 101, OpenRead)
	b.Open(1, 200, OpenWrite)
	g := b.Graph()
	if g.EdgeWeight(100, 200) != 1 || g.EdgeWeight(101, 200) != 1 {
		t.Errorf("missing causal edges: %d/%d", g.EdgeWeight(100, 200), g.EdgeWeight(101, 200))
	}
	if g.EdgeWeight(100, 101) != 0 {
		t.Error("read-read pairs must not be causal")
	}
	if g.EdgeWeight(200, 100) != 0 {
		t.Error("causality must be directed producer->consumer")
	}
}

func TestBuilderWriteThenWrite(t *testing.T) {
	b := NewBuilder()
	// A write-open is itself a producer for later writes.
	b.Open(1, 1, OpenWrite)
	b.Open(1, 2, OpenWrite)
	if b.Graph().EdgeWeight(1, 2) != 1 {
		t.Error("earlier write should produce later write")
	}
}

func TestBuilderProcessIsolation(t *testing.T) {
	b := NewBuilder()
	b.Open(1, 10, OpenRead)
	b.Open(2, 20, OpenWrite)
	if b.Graph().EdgeWeight(10, 20) != 0 {
		t.Error("causality must not cross processes")
	}
}

func TestBuilderRepeatedRunsAccumulateWeight(t *testing.T) {
	b := NewBuilder()
	for run := 0; run < 5; run++ {
		p := PID(run + 1)
		b.Open(p, 1, OpenRead)
		b.Open(p, 2, OpenWrite)
		b.Close(p, 1)
		b.Close(p, 2)
		b.EndProcess(p)
	}
	if w := b.Graph().EdgeWeight(1, 2); w != 5 {
		t.Errorf("edge weight = %d, want 5 (Fig. 4 accumulation)", w)
	}
}

func TestBuilderReopenNoDoubleCount(t *testing.T) {
	b := NewBuilder()
	b.Open(1, 1, OpenRead)
	b.Open(1, 1, OpenRead) // re-open same file
	b.Open(1, 2, OpenWrite)
	if w := b.Graph().EdgeWeight(1, 2); w != 1 {
		t.Errorf("edge weight = %d, want 1 (file opened once in session list)", w)
	}
}

func TestBuilderTakeGraph(t *testing.T) {
	b := NewBuilder()
	b.Open(1, 1, OpenRead)
	b.Open(1, 2, OpenWrite)
	g1 := b.TakeGraph()
	if g1.EdgeWeight(1, 2) != 1 {
		t.Error("taken graph should hold accumulated edges")
	}
	if b.Graph().NumVertices() != 0 {
		t.Error("builder graph should be fresh after TakeGraph")
	}
	// Session survives the flush: a new write still sees old producers.
	b.Open(1, 3, OpenWrite)
	if b.Graph().EdgeWeight(1, 3) != 1 || b.Graph().EdgeWeight(2, 3) != 1 {
		t.Error("sessions must survive TakeGraph")
	}
}

func TestClusterComponents(t *testing.T) {
	comps := [][]index.FileID{
		{1, 2, 3},        // 3
		{10, 11},         // 2
		{20},             // 1
		{30, 31, 32, 33}, // 4
	}
	groups := ClusterComponents(comps, 5)
	total := 0
	for _, g := range groups {
		if len(g) > 5 {
			// only allowed if a single component exceeds the threshold
			t.Errorf("group %v exceeds threshold without being one component", g)
		}
		total += len(g)
	}
	if total != 10 {
		t.Errorf("clustered %d files, want 10", total)
	}
	if len(groups) > 3 {
		t.Errorf("FFD should pack into <= 3 groups, got %d", len(groups))
	}
}

func TestClusterOversizedComponentPassesThrough(t *testing.T) {
	big := make([]index.FileID, 10)
	for i := range big {
		big[i] = index.FileID(i)
	}
	groups := ClusterComponents([][]index.FileID{big, {100}}, 5)
	found := false
	for _, g := range groups {
		if len(g) == 10 {
			found = true
		}
	}
	if !found {
		t.Error("oversized component should pass through as its own group")
	}
}

func TestClusterDefaultThreshold(t *testing.T) {
	groups := ClusterComponents([][]index.FileID{{1}, {2}}, 0)
	if len(groups) != 1 {
		t.Errorf("default threshold should pack tiny components together, got %d groups", len(groups))
	}
}

// Property: clustering preserves the exact multiset of files.
func TestClusterPreservesFiles(t *testing.T) {
	f := func(sizes []uint8, threshold uint8) bool {
		var comps [][]index.FileID
		next := index.FileID(0)
		want := map[index.FileID]bool{}
		for _, s := range sizes {
			n := int(s%50) + 1
			var c []index.FileID
			for i := 0; i < n; i++ {
				c = append(c, next)
				want[next] = true
				next++
			}
			comps = append(comps, c)
		}
		groups := ClusterComponents(comps, int(threshold%64)+1)
		got := map[index.FileID]bool{}
		for _, g := range groups {
			for _, f := range g {
				if got[f] {
					return false // duplicate
				}
				got[f] = true
			}
		}
		return len(got) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
