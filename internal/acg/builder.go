package acg

import (
	"sync"

	"propeller/internal/index"
)

// PID identifies a process observed by the File Access Management module.
type PID uint64

// OpenMode distinguishes read opens from write opens.
type OpenMode uint8

// Open modes. A write open makes the file a causal *consumer*: every file
// the process opened earlier becomes its producer.
const (
	OpenRead OpenMode = iota + 1
	OpenWrite
)

// Builder constructs an ACG from intercepted open/close events, implementing
// the update algorithm of Figure 4: when process P opens file fB for writing
// at time t1, an edge fA → fB is added for every file fA that P opened
// (read or write) at some t0 < t1 within the same process session.
//
// The builder runs in client RAM; the finished (or periodically flushed)
// graph is merged into the authoritative ACG on the Index Nodes with a weak
// consistency model.
type Builder struct {
	mu       sync.Mutex
	graph    *Graph
	sessions map[PID]*session
}

type session struct {
	// opened preserves the order in which files were first opened.
	opened []index.FileID
	seen   map[index.FileID]bool
}

// NewBuilder returns a Builder accumulating into a fresh graph.
func NewBuilder() *Builder {
	return &Builder{
		graph:    NewGraph(),
		sessions: make(map[PID]*session),
	}
}

// Open records that proc opened file with the given mode.
func (b *Builder) Open(proc PID, file index.FileID, mode OpenMode) {
	b.mu.Lock()
	s := b.sessions[proc]
	if s == nil {
		s = &session{seen: make(map[index.FileID]bool)}
		b.sessions[proc] = s
	}
	var producers []index.FileID
	if mode == OpenWrite {
		producers = make([]index.FileID, len(s.opened))
		copy(producers, s.opened)
	}
	if !s.seen[file] {
		s.seen[file] = true
		s.opened = append(s.opened, file)
	}
	b.mu.Unlock()

	b.graph.AddVertex(file)
	for _, p := range producers {
		b.graph.AddEdge(p, file, 1)
	}
}

// Close records that proc closed file. Close does not alter causality (the
// definition is in terms of opens) but keeps the API symmetrical with the
// FUSE interception points.
func (b *Builder) Close(proc PID, file index.FileID) {
	// Intentionally a no-op for the graph; the session retains history so a
	// re-open after close still carries causality, matching the paper's
	// per-execution semantics.
	_ = proc
	_ = file
}

// EndProcess discards the session state of proc (called when the process
// exits; its contribution is already in the graph).
func (b *Builder) EndProcess(proc PID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.sessions, proc)
}

// Graph returns the graph under construction. The caller may Merge it into
// an authoritative graph and continue building.
func (b *Builder) Graph() *Graph { return b.graph }

// TakeGraph returns the accumulated graph and resets the builder to a fresh
// one, preserving open sessions. This is the client "flush ACG to Index
// Node" operation.
func (b *Builder) TakeGraph() *Graph {
	b.mu.Lock()
	defer b.mu.Unlock()
	g := b.graph
	b.graph = NewGraph()
	return g
}
