package acg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"propeller/internal/index"
)

// The paper stores ACGs (and their metadata) as regular files in the
// underlying shared file system (§IV). This file implements the on-disk
// format: a small header, the vertex list, the weighted edge list, and a
// trailing CRC so partially written images are detected.

// ErrBadImage is returned for malformed serialized graphs.
var ErrBadImage = errors.New("acg: malformed graph image")

const graphMagic = uint32(0x41434701) // "ACG" + version 1

// Serialize encodes the graph to its shared-storage image.
func (g *Graph) Serialize() []byte {
	g.mu.RLock()
	defer g.mu.RUnlock()

	verts := make([]index.FileID, 0, len(g.adj))
	for v := range g.adj {
		verts = append(verts, v)
	}
	sortFileIDs(verts)
	nEdges := 0
	for _, m := range g.adj {
		nEdges += len(m)
	}

	buf := make([]byte, 0, 16+8*len(verts)+24*nEdges+4)
	var u32 [4]byte
	var u64 [8]byte
	binary.BigEndian.PutUint32(u32[:], graphMagic)
	buf = append(buf, u32[:]...)
	binary.BigEndian.PutUint32(u32[:], uint32(len(verts)))
	buf = append(buf, u32[:]...)
	binary.BigEndian.PutUint32(u32[:], uint32(nEdges))
	buf = append(buf, u32[:]...)
	for _, v := range verts {
		binary.BigEndian.PutUint64(u64[:], uint64(v))
		buf = append(buf, u64[:]...)
	}
	for _, src := range verts {
		dsts := make([]index.FileID, 0, len(g.adj[src]))
		for d := range g.adj[src] {
			dsts = append(dsts, d)
		}
		sortFileIDs(dsts)
		for _, dst := range dsts {
			binary.BigEndian.PutUint64(u64[:], uint64(src))
			buf = append(buf, u64[:]...)
			binary.BigEndian.PutUint64(u64[:], uint64(dst))
			buf = append(buf, u64[:]...)
			binary.BigEndian.PutUint64(u64[:], uint64(g.adj[src][dst]))
			buf = append(buf, u64[:]...)
		}
	}
	binary.BigEndian.PutUint32(u32[:], crc32.ChecksumIEEE(buf))
	buf = append(buf, u32[:]...)
	return buf
}

// Deserialize reconstructs a graph from its shared-storage image.
func Deserialize(img []byte) (*Graph, error) {
	if len(img) < 16 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadImage, len(img))
	}
	body, trailer := img[:len(img)-4], img[len(img)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadImage)
	}
	if binary.BigEndian.Uint32(body[0:4]) != graphMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	nVerts := int(binary.BigEndian.Uint32(body[4:8]))
	nEdges := int(binary.BigEndian.Uint32(body[8:12]))
	need := 12 + 8*nVerts + 24*nEdges
	if len(body) != need {
		return nil, fmt.Errorf("%w: %d bytes, want %d", ErrBadImage, len(body), need)
	}
	g := NewGraph()
	off := 12
	for i := 0; i < nVerts; i++ {
		g.AddVertex(index.FileID(binary.BigEndian.Uint64(body[off : off+8])))
		off += 8
	}
	for i := 0; i < nEdges; i++ {
		src := index.FileID(binary.BigEndian.Uint64(body[off : off+8]))
		dst := index.FileID(binary.BigEndian.Uint64(body[off+8 : off+16]))
		w := int64(binary.BigEndian.Uint64(body[off+16 : off+24]))
		off += 24
		if w <= 0 || src == dst {
			return nil, fmt.Errorf("%w: invalid edge %d->%d (%d)", ErrBadImage, src, dst, w)
		}
		g.AddEdge(src, dst, w)
	}
	return g, nil
}

func sortFileIDs(s []index.FileID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
