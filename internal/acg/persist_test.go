package acg

import (
	"errors"
	"testing"
	"testing/quick"

	"propeller/internal/index"
)

func TestSerializeRoundTrip(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 2, 5)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 1, 9)
	g.AddVertex(42)

	back, err := Deserialize(g.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			back.NumVertices(), back.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	if back.EdgeWeight(1, 2) != 5 || back.EdgeWeight(3, 1) != 9 {
		t.Error("weights lost")
	}
	comps := back.ConnectedComponents()
	if len(comps) != 2 { // {1,2,3} and {42}
		t.Errorf("components = %d, want 2", len(comps))
	}
}

func TestSerializeEmptyGraph(t *testing.T) {
	back, err := Deserialize(NewGraph().Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != 0 {
		t.Errorf("vertices = %d", back.NumVertices())
	}
}

func TestDeserializeRejectsCorruption(t *testing.T) {
	g := NewGraph()
	g.AddEdge(1, 2, 3)
	img := g.Serialize()

	cases := map[string][]byte{
		"empty":     {},
		"short":     img[:8],
		"truncated": img[:len(img)-6],
	}
	flipped := make([]byte, len(img))
	copy(flipped, img)
	flipped[7] ^= 0xFF
	cases["bitflip"] = flipped
	badMagic := make([]byte, len(img))
	copy(badMagic, img)
	badMagic[0] = 0x99
	cases["magic"] = badMagic // CRC catches this too

	for name, c := range cases {
		if _, err := Deserialize(c); !errors.Is(err, ErrBadImage) {
			t.Errorf("%s: err = %v, want ErrBadImage", name, err)
		}
	}
}

// Property: serialize/deserialize is the identity on arbitrary graphs.
func TestSerializeRoundTripProperty(t *testing.T) {
	f := func(edges [][3]uint8) bool {
		g := NewGraph()
		for _, e := range edges {
			g.AddEdge(index.FileID(e[0]), index.FileID(e[1]), int64(e[2]%7)+1)
		}
		back, err := Deserialize(g.Serialize())
		if err != nil {
			return false
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			return false
		}
		if back.TotalWeight() != g.TotalWeight() {
			return false
		}
		for _, src := range g.Vertices() {
			for _, dst := range g.Vertices() {
				if g.EdgeWeight(src, dst) != back.EdgeWeight(src, dst) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
