// Package metrics provides the latency recorders and time series the
// experiment harness uses to report the paper's tables and figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Recorder accumulates latency samples. Safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record adds one sample.
func (r *Recorder) Record(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = append(r.samples, d)
}

// Count returns the number of samples.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Summary is a latency distribution digest.
type Summary struct {
	Count          int
	Mean, Min, Max time.Duration
	P50, P95, P99  time.Duration
	Total          time.Duration
}

// Summarize digests the samples.
func (r *Recorder) Summarize() Summary {
	r.mu.Lock()
	s := make([]time.Duration, len(r.samples))
	copy(s, r.samples)
	r.mu.Unlock()
	if len(s) == 0 {
		return Summary{}
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var total time.Duration
	for _, d := range s {
		total += d
	}
	pct := func(p float64) time.Duration {
		i := int(math.Ceil(p*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return Summary{
		Count: len(s),
		Mean:  total / time.Duration(len(s)),
		Min:   s[0],
		Max:   s[len(s)-1],
		P50:   pct(0.50),
		P95:   pct(0.95),
		P99:   pct(0.99),
		Total: total,
	}
}

// Reset discards all samples.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = r.samples[:0]
}

// Series is a labelled (x, y) sequence for figure output.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table formats experiment output rows with aligned columns.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// FormatSeries renders series as aligned columns (x then one y per series).
func FormatSeries(xLabel string, series ...*Series) string {
	if len(series) == 0 {
		return ""
	}
	t := &Table{Header: append([]string{xLabel}, names(series)...)}
	for i := range series[0].X {
		row := []string{fmt.Sprintf("%g", series[0].X[i])}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.4g", s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

func names(series []*Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}
