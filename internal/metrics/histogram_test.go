package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsAreContiguousAndMonotone(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<14; v++ {
		b := histBucket(v)
		if b < prev {
			t.Fatalf("bucket(%d) = %d < previous %d", v, b, prev)
		}
		if b > prev+1 {
			t.Fatalf("bucket(%d) = %d skipped from %d", v, b, prev)
		}
		if hi := histValue(b); hi < v {
			t.Fatalf("bucket %d upper bound %d < member %d", b, hi, v)
		}
		prev = b
	}
	// The largest representable value must stay in range.
	if b := histBucket(1<<63 - 1); b >= histBuckets {
		t.Fatalf("max value bucket %d out of range %d", b, histBuckets)
	}
}

func TestHistogramQuantilesTrackExactRecorder(t *testing.T) {
	h := NewHistogram()
	r := NewRecorder()
	rng := rand.New(rand.NewSource(7))
	var samples []time.Duration
	for i := 0; i < 20000; i++ {
		// Log-uniform latencies: 1µs .. ~1s, the range a traffic run sees.
		d := time.Duration(float64(time.Microsecond) * float64(int64(1)<<uint(rng.Intn(20))) * (1 + rng.Float64()))
		h.Record(d)
		r.Record(d)
		samples = append(samples, d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	exact := r.Summarize()
	got := h.Summarize()
	if got.Count != int64(exact.Count) {
		t.Fatalf("count = %d, want %d", got.Count, exact.Count)
	}
	if got.Min != exact.Min || got.Max != exact.Max {
		t.Errorf("min/max = %v/%v, want exact %v/%v", got.Min, got.Max, exact.Min, exact.Max)
	}
	check := func(name string, got, want time.Duration) {
		// The histogram may round a value up to its bucket's upper bound
		// (≤ 2^-5 relative) and rank rounding can shift one sample either
		// way; 7% headroom covers both without masking real breakage.
		lo, hi := float64(want)*0.93, float64(want)*1.07
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("%s = %v, want within 7%% of %v", name, got, want)
		}
	}
	check("p50", got.P50, exact.P50)
	check("p95", got.P95, exact.P95)
	check("p99", got.P99, exact.P99)
	check("p999", got.P999, samples[len(samples)*999/1000])
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		a.Record(time.Duration(i) * time.Millisecond)
	}
	for i := 101; i <= 200; i++ {
		b.Record(time.Duration(i) * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	s := a.Summarize()
	if s.Min != time.Millisecond || s.Max != 200*time.Millisecond {
		t.Errorf("min/max = %v/%v, want 1ms/200ms", s.Min, s.Max)
	}
	p50 := float64(s.P50)
	if p50 < float64(95*time.Millisecond) || p50 > float64(110*time.Millisecond) {
		t.Errorf("merged p50 = %v, want ~100ms", s.P50)
	}
	// Merging an empty histogram is a no-op; self-merge is too.
	a.Merge(NewHistogram())
	a.Merge(a)
	a.Merge(nil)
	if a.Count() != 200 {
		t.Fatalf("count after no-op merges = %d, want 200", a.Count())
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(g*1000+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Summarize().Count != 0 {
		t.Fatal("empty histogram must read as zero")
	}
	h.Record(-time.Second)
	if h.Quantile(1) != 0 {
		t.Fatal("negative samples clamp to zero")
	}
}
