package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderSummary(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	s := r.Summarize()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 50*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P99 != 99*time.Millisecond {
		t.Errorf("p99 = %v", s.P99)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Errorf("mean = %v", s.Mean)
	}
	r.Reset()
	if r.Count() != 0 {
		t.Error("reset failed")
	}
}

func TestRecorderEmpty(t *testing.T) {
	if s := NewRecorder().Summarize(); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 800 {
		t.Errorf("count = %d", r.Count())
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"name", "value"}}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b", "22222")
	out := tbl.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "22222") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Errorf("got %d lines", len(lines))
	}
}

func TestSeriesFormatting(t *testing.T) {
	a := &Series{Name: "propeller"}
	b := &Series{Name: "mysql"}
	a.Add(1, 0.5)
	a.Add(2, 0.25)
	b.Add(1, 10)
	out := FormatSeries("nodes", a, b)
	if !strings.Contains(out, "propeller") || !strings.Contains(out, "mysql") {
		t.Errorf("series output:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Error("missing y should render as -")
	}
	if FormatSeries("x") != "" {
		t.Error("no series should render empty")
	}
}
