package metrics

import (
	"math/bits"
	"sync"
	"time"
)

// Histogram is an HDR-style log-bucketed latency histogram: constant memory
// regardless of sample count, ~3% relative value error (32 linear
// sub-buckets per power of two), O(buckets) quantile queries. Unlike
// Recorder it never stores samples, so an open-loop load generator can feed
// it millions of completions without the measurement perturbing the run.
// Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	count  uint64
	sum    int64
	min    int64 // valid when count > 0
	max    int64
}

// histSubBits sets the linear resolution within each power of two:
// 2^histSubBits sub-buckets, so the relative error of a reconstructed value
// is at most 2^-histSubBits.
const (
	histSubBits = 5
	histSubCnt  = 1 << histSubBits
	// histBuckets covers every non-negative int64 nanosecond value: buckets
	// 0..2*histSubCnt-1 are exact, then histSubCnt per additional bit.
	histBuckets = (64 - histSubBits - 1 + 2) * histSubCnt
)

// histBucket maps a non-negative value to its bucket index. Buckets are
// contiguous and monotone in value.
func histBucket(v int64) int {
	u := uint64(v)
	b := bits.Len64(u)
	if b <= histSubBits+1 {
		return int(u) // exact below 2*histSubCnt
	}
	top := b - (histSubBits + 1)
	return top*histSubCnt + int(u>>uint(top))
}

// histValue returns the upper bound of bucket i (the largest value that
// maps to it), matching HDR's highest-equivalent-value convention so
// quantiles never under-report.
func histValue(i int) int64 {
	if i < 2*histSubCnt {
		return int64(i)
	}
	top := i/histSubCnt - 1
	base := uint64(i - top*histSubCnt)
	return int64((base+1)<<uint(top) - 1)
}

// NewHistogram returns an empty Histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one sample. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts[histBucket(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int64(h.count)
}

// Quantile returns the latency at quantile q in [0, 1]. Exact min and max
// are returned at the extremes; interior quantiles carry the bucket's
// resolution error (≤ ~3%). Zero samples yields zero.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(h.min)
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			v := histValue(i)
			if v > h.max {
				v = h.max // bucket upper bound can overshoot the true max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Merge folds o's samples into h (o is left unchanged).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || h == o {
		return
	}
	o.mu.Lock()
	counts, count, sum, mn, mx := o.counts, o.count, o.sum, o.min, o.max
	o.mu.Unlock()
	if count == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range counts {
		h.counts[i] += c
	}
	if h.count == 0 || mn < h.min {
		h.min = mn
	}
	if h.count == 0 || mx > h.max {
		h.max = mx
	}
	h.count += count
	h.sum += sum
}

// HistSummary is a latency digest with the tail the overload gates watch.
type HistSummary struct {
	Count               int64
	Min, Max, Mean      time.Duration
	P50, P95, P99, P999 time.Duration
}

// Summarize digests the histogram.
func (h *Histogram) Summarize() HistSummary {
	h.mu.Lock()
	count, sum := h.count, h.sum
	h.mu.Unlock()
	if count == 0 {
		return HistSummary{}
	}
	return HistSummary{
		Count: int64(count),
		Min:   h.Quantile(0),
		Max:   h.Quantile(1),
		Mean:  time.Duration(sum / int64(count)),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}
