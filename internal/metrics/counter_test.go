package metrics

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("value = %d, want 5", got)
	}
}

func TestCounterConcurrentAdds(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers = 8
	const per = 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("value = %d, want %d", got, workers*per)
	}
}

func TestCounterSetFold(t *testing.T) {
	var s CounterSet
	dst := s.Get("dst")
	dst.Add(5)
	s.Get("src").Add(7)
	s.Fold("dst", "src")
	if got := s.Get("dst").Value(); got != 12 {
		t.Fatalf("dst after fold = %d, want 12", got)
	}
	// The previously obtained dst handle observes the fold (handles
	// cached by callers stay valid), and src is retired.
	if dst.Value() != 12 {
		t.Fatalf("cached dst handle = %d, want 12", dst.Value())
	}
	if labels := s.Labels(); len(labels) != 1 || labels[0] != "dst" {
		t.Fatalf("labels after fold = %v, want [dst]", labels)
	}
	// Folding an absent src is a no-op.
	s.Fold("dst", "ghost")
	if got := s.Get("dst").Value(); got != 12 {
		t.Fatalf("dst after ghost fold = %d, want 12", got)
	}
}

func TestCounterSetConcurrentGet(t *testing.T) {
	var s CounterSet
	var wg sync.WaitGroup
	const workers = 8
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Get(fmt.Sprintf("acg-%d", i%4)).Inc()
			}
		}(i)
	}
	wg.Wait()
	snap := s.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("labels = %d, want 4", len(snap))
	}
	var total int64
	for _, v := range snap {
		total += v
	}
	if total != workers*100 {
		t.Errorf("total = %d, want %d", total, workers*100)
	}
	labels := s.Labels()
	if len(labels) != 4 || labels[0] != "acg-0" || labels[3] != "acg-3" {
		t.Errorf("labels = %v", labels)
	}
}
