package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter safe for concurrent use
// without external locking (lock-free adds on the hot path).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (negative deltas are ignored; counters never decrease).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterSet is a labelled family of counters — e.g. commits per ACG or
// batch sizes per node. Get is cheap enough for per-operation use; Snapshot
// serves reporting.
type CounterSet struct {
	mu       sync.RWMutex
	counters map[string]*Counter
}

// Get returns the counter for label, creating it on first use.
func (s *CounterSet) Get(label string) *Counter {
	s.mu.RLock()
	c := s.counters[label]
	s.mu.RUnlock()
	if c != nil {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.counters == nil {
		s.counters = make(map[string]*Counter)
	}
	if c = s.counters[label]; c == nil {
		c = &Counter{}
		s.counters[label] = c
	}
	return c
}

// Remove deletes the counter for label and returns its final value (0 if
// absent). Callers fold the value elsewhere to keep set totals stable —
// e.g. an ACG merge folds the retired group's counts into its destination.
func (s *CounterSet) Remove(label string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counters[label]
	if c == nil {
		return 0
	}
	delete(s.counters, label)
	return c.Value()
}

// Fold retires the src counter and adds its final value into dst, so set
// totals survive label retirement — e.g. an ACG merge folds the retired
// group's counts into its merge destination. Counter handles previously
// obtained for dst stay valid (dst's counter object is reused); handles
// for src must be dropped.
func (s *CounterSet) Fold(dst, src string) {
	s.Get(dst).Add(s.Remove(src))
}

// Snapshot returns the current value of every counter in the set.
func (s *CounterSet) Snapshot() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(s.counters))
	for label, c := range s.counters {
		out[label] = c.Value()
	}
	return out
}

// Labels returns the sorted label names in the set.
func (s *CounterSet) Labels() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.counters))
	for label := range s.counters {
		out = append(out, label)
	}
	sort.Strings(out)
	return out
}
