package indexnode

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"propeller/internal/index"
	"propeller/internal/proto"
)

// This file defines the record-stream form of a group image: the chunked
// wire format ACG transfers ship (MethodReceiveACGChunked) and the bytes
// writeCheckpointLocked stores in shared storage. The image is a flat
// sequence of self-framed records, so a sender can emit it in bounded
// batches and a receiver can apply it incrementally from arbitrary chunk
// boundaries — a multi-GB group never exists as one contiguous buffer on
// either side. Legacy gob images (pre-record checkpoints) are recognized
// by their first byte and decoded through the old path.
//
// Layout:
//
//	image   := magic(0xA7) record*
//	record  := type(1B) uvarint(bodyLen) body
//
// Record types (unknown types are an error — the image is written and read
// by the same codebase; version drift is handled by the magic byte):
//
//	recHeader  acg, epoch, flags(bit0=follower), replSeq   (uvarints)
//	recFiles   count, then delta-coded sorted file ids
//	recEdges   count, then (src, dst, weight) uvarint triples
//	recIndex   index spec; subsequent recEntries belong to it
//	recEntries count, then proto.IndexEntry wire encodings
//	recWAL     raw framed WAL bytes (appended across records)
//
// gob's wire format length-prefixes every message with either a single
// byte < 0x80 or a 0xF8..0xFF multi-byte marker, so 0xA7 can never open a
// gob stream — the magic byte is an unambiguous format discriminator.
const (
	imageMagic = 0xA7

	recHeader  = 1
	recFiles   = 2
	recEdges   = 3
	recIndex   = 4
	recEntries = 5
	recWAL     = 6

	// imageBatchTarget is the flush threshold for the writer's record
	// buffer: emit() sees batches of roughly this size (a record can
	// overshoot it; the rpc layer re-splits into ≤ maxChunk frames).
	imageBatchTarget = 64 << 10
	// entriesPerRecord bounds one recEntries record (and one bulk apply
	// run on the receiver).
	entriesPerRecord = 512
)

var errImageTruncated = errors.New("indexnode: truncated group image")

// imageHeader carries the non-payload fields of a group image — what the
// gob format kept in ReceiveACGReq next to the data slices.
type imageHeader struct {
	acg      proto.ACGID
	epoch    proto.Epoch
	follower bool
	replSeq  uint64
}

// imageWriter batches records and hands them to emit in ~imageBatchTarget
// slices. The slice passed to emit is reused; emit must not retain it.
type imageWriter struct {
	buf  []byte
	emit func([]byte) error
}

func (w *imageWriter) record(typ byte, body []byte) error {
	w.buf = append(w.buf, typ)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(body)))
	w.buf = append(w.buf, body...)
	if len(w.buf) >= imageBatchTarget {
		return w.flush()
	}
	return nil
}

func (w *imageWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	err := w.emit(w.buf)
	w.buf = w.buf[:0]
	return err
}

func appendImageString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendImageSpec(dst []byte, spec proto.IndexSpec) []byte {
	dst = appendImageString(dst, spec.Name)
	dst = append(dst, byte(spec.Type))
	dst = appendImageString(dst, spec.Field)
	dst = binary.AppendUvarint(dst, uint64(len(spec.Fields)))
	for _, f := range spec.Fields {
		dst = appendImageString(dst, f)
	}
	return dst
}

// streamImageLocked serializes the group's durable state — membership,
// causality edges, committed postings per index — as a record stream,
// keeping only files accepted by filter (nil = all), delivered through
// emit in bounded batches. The record-stream twin of imageLocked; callers
// that need one contiguous buffer use imageBytesLocked. Caller holds g.mu
// and must have committed the group if the image is meant to include every
// acknowledged entry.
func (n *Node) streamImageLocked(g *group, filter func(index.FileID) bool, hdr imageHeader, emit func([]byte) error) error {
	w := &imageWriter{emit: emit}
	var scratch []byte

	scratch = binary.AppendUvarint(scratch, uint64(hdr.acg))
	scratch = binary.AppendUvarint(scratch, uint64(hdr.epoch))
	var flags byte
	if hdr.follower {
		flags |= 1
	}
	scratch = append(scratch, flags)
	scratch = binary.AppendUvarint(scratch, hdr.replSeq)
	// The magic byte rides in front of the first batch.
	w.buf = append(w.buf, imageMagic)
	if err := w.record(recHeader, scratch); err != nil {
		return err
	}

	files := make([]index.FileID, 0, len(g.files))
	for _, f := range g.groupFilesSorted() {
		if filter == nil || filter(f) {
			files = append(files, f)
		}
	}
	if len(files) > 0 {
		scratch = scratch[:0]
		scratch = binary.AppendUvarint(scratch, uint64(len(files)))
		prev := index.FileID(0)
		for _, f := range files { // sorted: delta-coded
			scratch = binary.AppendUvarint(scratch, uint64(f-prev))
			prev = f
		}
		if err := w.record(recFiles, scratch); err != nil {
			return err
		}
	}

	srcs := make([]index.FileID, 0, len(g.graph.adj))
	for src := range g.graph.adj {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	scratch = scratch[:0]
	edges := 0
	var edgeBody []byte
	for _, src := range srcs {
		if filter != nil && !filter(src) {
			continue
		}
		m := g.graph.adj[src]
		dsts := make([]index.FileID, 0, len(m))
		for dst := range m {
			dsts = append(dsts, dst)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		for _, dst := range dsts {
			if filter != nil && !filter(dst) {
				continue
			}
			edgeBody = binary.AppendUvarint(edgeBody, uint64(src))
			edgeBody = binary.AppendUvarint(edgeBody, uint64(dst))
			edgeBody = binary.AppendUvarint(edgeBody, uint64(m[dst]))
			edges++
			if edges == entriesPerRecord {
				if err := flushEdges(w, &scratch, edgeBody, edges); err != nil {
					return err
				}
				edgeBody, edges = edgeBody[:0], 0
			}
		}
	}
	if edges > 0 {
		if err := flushEdges(w, &scratch, edgeBody, edges); err != nil {
			return err
		}
	}

	names := make([]string, 0, len(g.postings))
	for name := range g.postings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		post := g.postings[name]
		ids := make([]index.FileID, 0, len(post))
		for f := range post {
			if filter == nil || filter(f) {
				ids = append(ids, f)
			}
		}
		if len(ids) == 0 {
			continue
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		spec, _ := n.lookupSpec(name)
		if err := w.record(recIndex, appendImageSpec(scratch[:0], spec)); err != nil {
			return err
		}
		for start := 0; start < len(ids); start += entriesPerRecord {
			run := ids[start:min(start+entriesPerRecord, len(ids))]
			scratch = binary.AppendUvarint(scratch[:0], uint64(len(run)))
			for _, f := range run {
				scratch = post[f].AppendWire(scratch)
			}
			if err := w.record(recEntries, scratch); err != nil {
				return err
			}
		}
	}
	return w.flush()
}

func flushEdges(w *imageWriter, scratch *[]byte, body []byte, count int) error {
	*scratch = binary.AppendUvarint((*scratch)[:0], uint64(count))
	*scratch = append(*scratch, body...)
	return w.record(recEdges, *scratch)
}

// imageBytesLocked renders the record-stream image into one buffer — the
// shared-storage checkpoint form. Caller holds g.mu.
func (n *Node) imageBytesLocked(g *group, hdr imageHeader) ([]byte, error) {
	var out []byte
	err := n.streamImageLocked(g, nil, hdr, func(b []byte) error {
		out = append(out, b...)
		return nil
	})
	return out, err
}

// imageApplier applies a record-stream image to a locked group, fed one
// chunk at a time with no alignment between chunk and record boundaries.
// Records apply as soon as they complete, so the applier's footprint is
// one partial record plus accumulated WAL bytes — never the whole image.
// Caller holds g.mu across every feed and the finish.
type imageApplier struct {
	n     *Node
	g     *group
	known map[string]map[index.FileID]bool

	buf      []byte // partial record carried across chunks
	sawMagic bool
	hdr      imageHeader

	curName  string
	curInst  *inst
	haveSpec bool
	// touched collects KD instances that received entries: their disk
	// images re-serialize once at finish, mirroring installImageLocked.
	touched map[string]*inst
	walBuf  []byte
}

func newImageApplier(n *Node, g *group, known map[string]map[index.FileID]bool) *imageApplier {
	return &imageApplier{n: n, g: g, known: known, touched: make(map[string]*inst)}
}

// feed consumes one chunk of the record stream, applying every record that
// completes within it.
func (a *imageApplier) feed(chunk []byte) error {
	b := chunk
	if len(a.buf) > 0 {
		a.buf = append(a.buf, chunk...)
		b = a.buf
	}
	if !a.sawMagic {
		if len(b) == 0 {
			return nil
		}
		if b[0] != imageMagic {
			return fmt.Errorf("indexnode: group image: bad magic 0x%02x", b[0])
		}
		a.sawMagic = true
		b = b[1:]
	}
	for {
		rest, done, err := a.applyOne(b)
		if err != nil {
			return err
		}
		if done {
			// Keep the partial record in an owned buffer: the chunk's
			// backing array belongs to the rpc layer.
			a.buf = append(a.buf[:0], b...)
			return nil
		}
		b = rest
	}
}

// applyOne parses and applies one record from b. done=true means b holds
// only a record prefix (or nothing) and the caller should wait for more.
func (a *imageApplier) applyOne(b []byte) (rest []byte, done bool, err error) {
	if len(b) == 0 {
		return nil, true, nil
	}
	typ := b[0]
	size, k := binary.Uvarint(b[1:])
	if k <= 0 {
		if len(b) < 1+binary.MaxVarintLen64 {
			return nil, true, nil // length bytes still in flight
		}
		return nil, false, errors.New("indexnode: group image: bad record length")
	}
	if size > uint64(len(b)) { // cheap pre-check before the exact one
		return nil, true, nil
	}
	body := b[1+k:]
	if uint64(len(body)) < size {
		return nil, true, nil
	}
	rest = body[size:]
	body = body[:size]
	switch typ {
	case recHeader:
		err = a.applyHeader(body)
	case recFiles:
		err = a.applyFiles(body)
	case recEdges:
		err = a.applyEdges(body)
	case recIndex:
		err = a.applyIndex(body)
	case recEntries:
		err = a.applyEntries(body)
	case recWAL:
		a.walBuf = append(a.walBuf, body...)
	default:
		err = fmt.Errorf("indexnode: group image: unknown record type %d", typ)
	}
	return rest, false, err
}

func imageUvarint(b []byte) (uint64, []byte, error) {
	v, k := binary.Uvarint(b)
	if k <= 0 {
		return 0, nil, errImageTruncated
	}
	return v, b[k:], nil
}

func imageString(b []byte) (string, []byte, error) {
	ln, b, err := imageUvarint(b)
	if err != nil || ln > uint64(len(b)) {
		return "", nil, errImageTruncated
	}
	return string(b[:ln]), b[ln:], nil
}

func (a *imageApplier) applyHeader(b []byte) error {
	acg, b, err := imageUvarint(b)
	if err != nil {
		return err
	}
	epoch, b, err := imageUvarint(b)
	if err != nil {
		return err
	}
	if len(b) == 0 {
		return errImageTruncated
	}
	flags := b[0]
	seq, _, err := imageUvarint(b[1:])
	if err != nil {
		return err
	}
	a.hdr = imageHeader{
		acg: proto.ACGID(acg), epoch: proto.Epoch(epoch),
		follower: flags&1 != 0, replSeq: seq,
	}
	return nil
}

func (a *imageApplier) applyFiles(b []byte) error {
	count, b, err := imageUvarint(b)
	if err != nil {
		return err
	}
	if count > uint64(len(b)) { // ≥1 byte per delta
		return errImageTruncated
	}
	f := index.FileID(0)
	for i := uint64(0); i < count; i++ {
		d, rest, err := imageUvarint(b)
		if err != nil {
			return err
		}
		b = rest
		f += index.FileID(d)
		a.g.files[f] = true
		delete(a.g.movedOut, f) // an authoritative install re-homes the file
	}
	return nil
}

func (a *imageApplier) applyEdges(b []byte) error {
	count, b, err := imageUvarint(b)
	if err != nil {
		return err
	}
	if count > uint64(len(b)) {
		return errImageTruncated
	}
	for i := uint64(0); i < count; i++ {
		var src, dst, w uint64
		if src, b, err = imageUvarint(b); err != nil {
			return err
		}
		if dst, b, err = imageUvarint(b); err != nil {
			return err
		}
		if w, b, err = imageUvarint(b); err != nil {
			return err
		}
		a.g.graph.addEdge(index.FileID(src), index.FileID(dst), int64(w))
	}
	return nil
}

func (a *imageApplier) applyIndex(b []byte) error {
	var spec proto.IndexSpec
	var err error
	if spec.Name, b, err = imageString(b); err != nil {
		return err
	}
	if len(b) == 0 {
		return errImageTruncated
	}
	spec.Type = proto.IndexType(b[0])
	if spec.Field, b, err = imageString(b[1:]); err != nil {
		return err
	}
	nf, b, err := imageUvarint(b)
	if err != nil || nf > uint64(len(b)) {
		return errImageTruncated
	}
	for i := uint64(0); i < nf; i++ {
		var f string
		if f, b, err = imageString(b); err != nil {
			return err
		}
		spec.Fields = append(spec.Fields, f)
	}
	a.n.DeclareIndex(spec)
	in, err := a.n.instFor(a.g, spec.Name)
	if err != nil {
		return err
	}
	a.curName, a.curInst, a.haveSpec = spec.Name, in, true
	a.touched[spec.Name] = in
	return nil
}

func (a *imageApplier) applyEntries(b []byte) error {
	if !a.haveSpec {
		return errors.New("indexnode: group image: entries before index spec")
	}
	count, b, err := imageUvarint(b)
	if err != nil {
		return err
	}
	if count > uint64(len(b)) {
		return errImageTruncated
	}
	run := make(map[index.FileID]pendingEntry, count)
	for i := uint64(0); i < count; i++ {
		var e proto.IndexEntry
		if e, b, err = proto.DecodeIndexEntryWire(b); err != nil {
			return fmt.Errorf("indexnode: group image: %w", err)
		}
		if a.known[a.curName][e.File] {
			continue
		}
		run[e.File] = pendingEntry{e: e}
	}
	if len(run) == 0 {
		return nil
	}
	// The commit engine's bulk path — sorted index mutations, postings
	// advance only after index success — applies each completed record as
	// it arrives, so a transfer's memory cost is one record, not the image.
	return a.n.applyRunLocked(a.g, a.curInst, a.curName, run)
}

// finish completes the install: rejects a torn stream, re-serializes the
// KD images entries landed in, and replays any shipped WAL into the lazy
// cache. Returns the number of WAL entries restored.
func (a *imageApplier) finish() (int, error) {
	if !a.sawMagic {
		return 0, errImageTruncated
	}
	if len(a.buf) > 0 {
		return 0, errImageTruncated
	}
	for _, in := range a.touched {
		if in.kd != nil {
			in.kdImage = in.kd.Serialize()
			in.kdResident = true
		}
	}
	if len(a.walBuf) == 0 {
		return 0, nil
	}
	return a.n.replayWALLocked(a.g, a.walBuf, a.known)
}

// installImageBytesLocked applies a stored group image — record-stream or
// legacy gob, discriminated by the magic byte — to a locked group,
// skipping (index, file) pairs in known. The recovery and promotion read
// path. Caller holds g.mu.
func (n *Node) installImageBytesLocked(g *group, raw []byte, known map[string]map[index.FileID]bool) error {
	if len(raw) == 0 {
		return nil
	}
	if raw[0] != imageMagic {
		img, err := decodeGroupImage(raw)
		if err != nil {
			return err
		}
		return n.installImageLocked(g, img, known)
	}
	a := newImageApplier(n, g, known)
	if err := a.feed(raw); err != nil {
		return err
	}
	_, err := a.finish()
	return err
}
