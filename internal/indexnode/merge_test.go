package indexnode

import (
	"context"
	"testing"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/proto"
)

func seedGroup(t *testing.T, n *Node, g proto.ACGID, lo, hi int) {
	t.Helper()
	var entries []proto.IndexEntry
	for i := lo; i < hi; i++ {
		entries = append(entries, proto.IndexEntry{File: index.FileID(i), Value: attr.Int(int64(i) << 20)})
	}
	if _, err := n.Update(context.Background(), proto.UpdateReq{ACG: g, IndexName: "size", Entries: entries}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeACGs(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(sizeSpec)
	seedGroup(t, n, 1, 0, 10)
	seedGroup(t, n, 2, 10, 20)
	if err := n.MergeACGs(context.Background(), 1, 2); err != nil {
		t.Fatal(err)
	}
	st, err := n.NodeStats(context.Background(), proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ACGs != 1 || st.Files != 20 {
		t.Fatalf("after merge: groups=%d files=%d, want 1/20", st.ACGs, st.Files)
	}
	// All postings live in the surviving group.
	resp, err := n.Search(context.Background(), proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 19 { // file 0 has size 0
		t.Errorf("post-merge search = %d files, want 19", len(resp.Files))
	}
	// The retired group returns nothing.
	resp, err = n.Search(context.Background(), proto.SearchReq{ACGs: []proto.ACGID{2}, IndexName: "size", Query: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 0 {
		t.Errorf("retired group returned %v", resp.Files)
	}
}

func TestMergeACGsErrors(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(sizeSpec)
	seedGroup(t, n, 1, 0, 5)
	if err := n.MergeACGs(context.Background(), 1, 1); err == nil {
		t.Error("self merge should fail")
	}
	if err := n.MergeACGs(context.Background(), 1, 99); err == nil {
		t.Error("unknown src should fail")
	}
	if err := n.MergeACGs(context.Background(), 99, 1); err == nil {
		t.Error("unknown dst should fail")
	}
}

func TestMergePreservesCausality(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(sizeSpec)
	seedGroup(t, n, 1, 0, 5)
	seedGroup(t, n, 2, 5, 10)
	if _, err := n.FlushACG(context.Background(), proto.FlushACGReq{
		ACG: 2, Edges: []proto.ACGEdge{{Src: 5, Dst: 6, Weight: 3}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.MergeACGs(context.Background(), 1, 2); err != nil {
		t.Fatal(err)
	}
	n.mu.Lock()
	w := n.groups[1].graph.adj[5][6]
	n.mu.Unlock()
	if w != 3 {
		t.Errorf("merged edge weight = %d, want 3", w)
	}
}

func TestCompactGroups(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(sizeSpec)
	// Five tiny groups of 4 files each.
	for g := 0; g < 5; g++ {
		seedGroup(t, n, proto.ACGID(g+1), g*4, g*4+4)
	}
	merges, err := n.CompactGroups(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if merges == 0 {
		t.Fatal("expected merges")
	}
	st, err := n.NodeStats(context.Background(), proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 20 {
		t.Errorf("files = %d, want 20", st.Files)
	}
	// At most one group below the floor may remain.
	n.mu.Lock()
	below := 0
	for _, g := range n.groups {
		if len(g.files) < 10 {
			below++
		}
	}
	n.mu.Unlock()
	if below > 1 {
		t.Errorf("%d groups below the floor after compaction", below)
	}
	// No-op cases.
	if m, err := n.CompactGroups(context.Background(), 0); err != nil || m != 0 {
		t.Errorf("minFiles 0 should be a no-op, got %d/%v", m, err)
	}
}

func TestCompactAllSearchable(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(sizeSpec)
	for g := 0; g < 4; g++ {
		seedGroup(t, n, proto.ACGID(g+1), g*5, g*5+5)
	}
	if _, err := n.CompactGroups(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	// Search across all original group ids still finds everything (stale
	// ids return empty, the survivor returns all).
	resp, err := n.Search(context.Background(), proto.SearchReq{
		ACGs: []proto.ACGID{1, 2, 3, 4}, IndexName: "size", Query: "size>0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 19 {
		t.Errorf("post-compact search = %d files, want 19", len(resp.Files))
	}
}
