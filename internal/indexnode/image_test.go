package indexnode

import (
	"context"
	"errors"
	"strings"
	"testing"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/proto"
	"propeller/internal/rpc"
)

// seedMixedGroup populates one ACG on n with a B-tree index, a KD index
// and causality edges — every record type an image carries.
func seedMixedGroup(t *testing.T, n *Node, acg proto.ACGID, files int) {
	t.Helper()
	ctx := context.Background()
	n.DeclareIndex(proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"})
	n.DeclareIndex(proto.IndexSpec{Name: "loc", Type: proto.IndexKD, Fields: []string{"x", "y"}})
	for i := 0; i < files; i++ {
		if _, err := n.Update(ctx, proto.UpdateReq{
			ACG: acg, IndexName: "size",
			Entries: []proto.IndexEntry{{File: index.FileID(i), Value: attr.Int(int64(i))}},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Update(ctx, proto.UpdateReq{
			ACG: acg, IndexName: "loc",
			Entries: []proto.IndexEntry{{File: index.FileID(i), KDCoords: []float64{float64(i), float64(-i)}}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.FlushACG(ctx, proto.FlushACGReq{ACG: acg, Edges: []proto.ACGEdge{
		{Src: 0, Dst: 1, Weight: 7}, {Src: 1, Dst: 2, Weight: 3},
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestImageRecordStreamRoundTrip checkpoints a group in the record-stream
// format and re-installs it on a second node by feeding the applier tiny
// chunks — record boundaries never align with chunk boundaries, the
// condition a real chunked transfer produces.
func TestImageRecordStreamRoundTrip(t *testing.T) {
	r := newTransferRig(t)
	ctx := context.Background()
	seedMixedGroup(t, r.a, 1, 30)

	g := r.a.lockGroup(1)
	if g == nil {
		t.Fatal("group 1 missing on source")
	}
	if err := r.a.commitGroupLocked(g); err != nil {
		g.mu.Unlock()
		t.Fatal(err)
	}
	raw, err := r.a.imageBytesLocked(g, imageHeader{acg: 1, replSeq: g.replSeq})
	g.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] != imageMagic {
		t.Fatalf("image starts with 0x%02x, want magic 0x%02x", raw[0], imageMagic)
	}

	dst, err := r.b.lockOrCreateGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	a := newImageApplier(r.b, dst, nil)
	for off := 0; off < len(raw); off += 7 {
		end := off + 7
		if end > len(raw) {
			end = len(raw)
		}
		if err := a.feed(raw[off:end]); err != nil {
			dst.mu.Unlock()
			t.Fatalf("feed at offset %d: %v", off, err)
		}
	}
	if _, err := a.finish(); err != nil {
		dst.mu.Unlock()
		t.Fatal(err)
	}
	if got := a.hdr; got.acg != 1 {
		dst.mu.Unlock()
		t.Fatalf("applied header acg = %d, want 1", got.acg)
	}
	if w := dst.graph.adj[0][1]; w != 7 {
		dst.mu.Unlock()
		t.Fatalf("edge 0->1 weight = %d, want 7", w)
	}
	dst.mu.Unlock()

	resp, err := r.b.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{2}, IndexName: "size", Query: "size>=0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 30 {
		t.Fatalf("b-tree search after install = %d files, want 30", len(resp.Files))
	}
	resp, err = r.b.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{2}, IndexName: "loc", Query: "x>=5 & x<=9 & y<=0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 5 {
		t.Fatalf("kd search after install = %d files, want 5", len(resp.Files))
	}
}

// TestImageApplierRejectsTornStream cuts the record stream mid-record: the
// install must fail instead of silently keeping the prefix — the guard that
// makes a half-shipped migration harmless.
func TestImageApplierRejectsTornStream(t *testing.T) {
	r := newTransferRig(t)
	seedMixedGroup(t, r.a, 1, 10)
	g := r.a.lockGroup(1)
	if err := r.a.commitGroupLocked(g); err != nil {
		g.mu.Unlock()
		t.Fatal(err)
	}
	raw, err := r.a.imageBytesLocked(g, imageHeader{acg: 1})
	g.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}

	dst, err := r.b.lockOrCreateGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.mu.Unlock()
	a := newImageApplier(r.b, dst, nil)
	if err := a.feed(raw[:len(raw)-3]); err != nil {
		t.Fatalf("feeding a clean prefix should buffer, got %v", err)
	}
	if _, err := a.finish(); !errors.Is(err, errImageTruncated) {
		t.Fatalf("finish on torn stream = %v, want errImageTruncated", err)
	}
}

// TestLegacyGobImageStillInstalls writes a gob-format checkpoint (what
// older builds stored) into the shared store and recovers from it: the
// magic-byte fallback keeps mixed-version clusters recoverable.
func TestLegacyGobImageStillInstalls(t *testing.T) {
	r := newTransferRig(t)
	ctx := context.Background()
	seedMixedGroup(t, r.a, 1, 20)

	g := r.a.lockGroup(1)
	if err := r.a.commitGroupLocked(g); err != nil {
		g.mu.Unlock()
		t.Fatal(err)
	}
	legacy, err := encodeGroupImage(r.a.imageLocked(g, nil))
	g.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	r.shared.Checkpoint(1, legacy)

	r.b.DeclareIndex(proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"})
	if err := r.b.RecoverFromShared(ctx, 1); err != nil {
		t.Fatal(err)
	}
	resp, err := r.b.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>=0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 20 {
		t.Fatalf("recovered from gob image = %d files, want 20", len(resp.Files))
	}
}

// TestStreamedTransferReceiverMemoryBounded migrates a group whose image is
// several times the flow-control window and asserts the receiving server
// never buffered more than the window for the stream: the receiver applies
// incrementally, so its transient footprint is set by rpc geometry, not by
// group size.
func TestStreamedTransferReceiverMemoryBounded(t *testing.T) {
	r := newTransferRig(t)
	ctx := context.Background()
	r.a.DeclareIndex(proto.IndexSpec{Name: "tag", Type: proto.IndexBTree, Field: "tag"})
	// ~128 bytes of value per entry, 24k entries in batches: > 3 MiB of
	// image against a 1 MiB window.
	pad := strings.Repeat("v", 120)
	const batch, batches = 256, 120
	for b := 0; b < batches; b++ {
		entries := make([]proto.IndexEntry, batch)
		for i := range entries {
			f := index.FileID(b*batch + i)
			entries[i] = proto.IndexEntry{File: f, Value: attr.Str(pad + string(rune('a'+b%26)))}
		}
		if _, err := r.a.Update(ctx, proto.UpdateReq{ACG: 1, IndexName: "tag", Entries: entries}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.a.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}

	g := r.a.lockGroup(1)
	if err := r.a.commitGroupLocked(g); err != nil {
		g.mu.Unlock()
		t.Fatal(err)
	}
	raw, err := r.a.imageBytesLocked(g, imageHeader{acg: 1})
	g.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 3*rpc.StreamWindow {
		t.Fatalf("image is %d bytes; want > %d to make the bound meaningful", len(raw), 3*rpc.StreamWindow)
	}

	if err := r.a.TransferACG(ctx, proto.MigrateOrder{ACG: 1, Dest: "in-b", Addr: "pipe:in-b"}); err != nil {
		t.Fatal(err)
	}
	resp, err := r.b.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "tag", Query: `tag>=""`})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != batch*batches {
		t.Fatalf("post-transfer search = %d files, want %d", len(resp.Files), batch*batches)
	}

	peak := r.servers["pipe:in-b"].StreamBufferedPeak()
	if peak == 0 {
		t.Fatal("receiver recorded no stream buffering; transfer did not stream")
	}
	if peak > rpc.StreamWindow {
		t.Fatalf("receiver stream buffering peaked at %d bytes, want <= window %d (image was %d)",
			peak, rpc.StreamWindow, len(raw))
	}
}

// TestPeerConnCacheLRUEviction fills the peer-conn cache past capacity and
// checks the least-recently-used connection is closed, evictions are
// counted in NodeStats, and failure drops stay separate.
func TestPeerConnCacheLRUEviction(t *testing.T) {
	r := newTransferRig(t)
	ctx := context.Background()

	// Dial maxPeerConns distinct cache keys; every synthetic key reaches
	// the same backend, the cache only sees the address string.
	n := r.a
	n.cfg.Dial = func(ctx context.Context, _ string) (*rpc.Client, error) {
		cc, sc := rpc.Pipe()
		r.servers["pipe:in-b"].ServeConn(sc)
		return rpc.NewClient(cc), nil
	}

	conns := make([]*rpc.Client, 0, maxPeerConns+1)
	for i := 0; i < maxPeerConns; i++ {
		c, err := n.peerConn(ctx, string(rune('A'+i%26))+"-"+strings.Repeat("x", i/26+1))
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	if got := n.peerConnEvictions.Value(); got != 0 {
		t.Fatalf("evictions after filling to capacity = %d, want 0", got)
	}
	// Touch the first (oldest) peer so the second-oldest becomes the LRU
	// victim.
	firstKey := "A-x"
	if _, err := n.peerConn(ctx, firstKey); err != nil {
		t.Fatal(err)
	}
	over, err := n.peerConn(ctx, "overflow-peer")
	if err != nil {
		t.Fatal(err)
	}
	if got := n.peerConnEvictions.Value(); got != 1 {
		t.Fatalf("evictions after overflow = %d, want 1", got)
	}
	if len(n.peers) != maxPeerConns {
		t.Fatalf("cache size after eviction = %d, want %d", len(n.peers), maxPeerConns)
	}
	if _, ok := n.peers[firstKey]; !ok {
		t.Fatal("recently-touched peer was evicted; LRU order ignored")
	}
	if conns[1].Closed() != true {
		t.Fatal("evicted LRU connection was not closed")
	}
	if over.Closed() {
		t.Fatal("newly added connection must stay open")
	}

	// A failure drop closes and removes, but does not count as an LRU
	// eviction.
	n.dropPeer("overflow-peer")
	if !over.Closed() {
		t.Fatal("dropPeer left the connection open")
	}
	if got := n.peerConnEvictions.Value(); got != 1 {
		t.Fatalf("evictions after dropPeer = %d, want 1 (drops are not evictions)", got)
	}
	st, err := n.NodeStats(ctx, proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.PeerConnEvictions != 1 {
		t.Fatalf("NodeStats.PeerConnEvictions = %d, want 1", st.PeerConnEvictions)
	}
}
