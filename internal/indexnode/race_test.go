package indexnode

import (
	"context"
	"sync"
	"testing"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/proto"
)

// TestRaceMultiACGUpdateSearchTick locks in the per-ACG concurrency model:
// parallel writers on eight ACGs, searchers spanning all of them, a ticker
// forcing timeout commits, causality flushes and stats reads — all at once.
// Run under -race; any access to group state outside its lock, or to the
// registry/spec tables outside theirs, is flagged here.
func TestRaceMultiACGUpdateSearchTick(t *testing.T) {
	n, clk := newTestNode(t, func(c *Config) { c.CacheLimit = 32 })
	n.DeclareIndex(sizeSpec)

	const acgs = 8
	const writers = 8
	const perWriter = 150
	var wg sync.WaitGroup
	errCh := make(chan error, writers+8)
	stop := make(chan struct{})

	// Writers: each hammers its own ACG (the parallel fast path).
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := proto.ACGID(w%acgs + 1)
			for i := 0; i < perWriter; i++ {
				f := index.FileID(w*perWriter + i)
				if _, err := n.Update(context.Background(), proto.UpdateReq{
					ACG: id, IndexName: "size",
					Entries: []proto.IndexEntry{{File: f, Value: attr.Int(int64(f) + 1)}},
				}); err != nil {
					errCh <- err
					return
				}
				if i%17 == 0 {
					if _, err := n.FlushACG(context.Background(), proto.FlushACGReq{
						ACG:   id,
						Edges: []proto.ACGEdge{{Src: f, Dst: f + 1, Weight: 1}},
					}); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}

	background := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := fn(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	// Searchers spanning every ACG (commit-on-search against live writers).
	allACGs := make([]proto.ACGID, acgs)
	for i := range allACGs {
		allACGs[i] = proto.ACGID(i + 1)
	}
	for r := 0; r < 3; r++ {
		background(func() error {
			_, err := n.Search(context.Background(), proto.SearchReq{
				ACGs: allACGs, IndexName: "size", Query: "size>0",
			})
			return err
		})
	}
	// Ticker: advance virtual time and force timeout commits.
	background(func() error {
		clk.Advance(6 * 1e9)
		return n.Tick()
	})
	// Stats reader (registry + every group + spec table).
	background(func() error {
		_, err := n.NodeStats(context.Background(), proto.NodeStatsReq{})
		return err
	})

	// Wait for the writers, then wind down the background loops.
	writersDone := make(chan struct{})
	go func() {
		defer close(writersDone)
		for {
			st, err := n.NodeStats(context.Background(), proto.NodeStatsReq{})
			if err != nil || st.Files >= writers*perWriter {
				return
			}
		}
	}()
	<-writersDone
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Every acknowledged update must be visible, exactly once.
	resp, err := n.Search(context.Background(), proto.SearchReq{ACGs: allACGs, IndexName: "size", Query: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != writers*perWriter {
		t.Errorf("final search = %d files, want %d", len(resp.Files), writers*perWriter)
	}
	st, err := n.NodeStats(context.Background(), proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ACGs != acgs {
		t.Errorf("ACGs = %d, want %d", st.ACGs, acgs)
	}
	if st.Commits == 0 || st.CommitEntries < int64(writers*perWriter) {
		t.Errorf("commits = %d, entries = %d; every entry must commit", st.Commits, st.CommitEntries)
	}
	if len(st.PerACGCommits) != acgs {
		t.Errorf("per-ACG commit counters = %d groups, want %d", len(st.PerACGCommits), acgs)
	}
	var perACGTotal int64
	for _, c := range st.PerACGCommits {
		perACGTotal += c
	}
	if perACGTotal != st.Commits {
		t.Errorf("per-ACG commits sum to %d, node total %d", perACGTotal, st.Commits)
	}
	if st.WALBatchedRecords != int64(writers*perWriter) {
		t.Errorf("wal batched records = %d, want %d", st.WALBatchedRecords, writers*perWriter)
	}
	if st.WALBatches == 0 || st.WALBatches > st.WALBatchedRecords {
		t.Errorf("wal batches = %d for %d records", st.WALBatches, st.WALBatchedRecords)
	}
}

// TestRaceMergeDoesNotLoseAcknowledgedUpdates pits writers against a
// concurrent merger. A group can be merged away between a writer's registry
// lookup and its lock; the dead-group re-resolve protocol must route the
// write to a live group so every acknowledged update stays reachable.
func TestRaceMergeDoesNotLoseAcknowledgedUpdates(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(sizeSpec)

	const acgs = 4
	const writers = 4
	const perWriter = 120
	var wg sync.WaitGroup
	errCh := make(chan error, writers+1)
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f := index.FileID(w*perWriter + i)
				if _, err := n.Update(context.Background(), proto.UpdateReq{
					ACG: proto.ACGID(w%acgs + 1), IndexName: "size",
					Entries: []proto.IndexEntry{{File: f, Value: attr.Int(int64(f) + 1)}},
				}); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	// Merger: keep collapsing everything into the lowest-id group.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := n.CompactGroups(context.Background(), 1<<30); err != nil {
				errCh <- err
				return
			}
		}
	}()

	writersDone := make(chan struct{})
	go func() {
		defer close(writersDone)
		for {
			st, err := n.NodeStats(context.Background(), proto.NodeStatsReq{})
			if err != nil || st.Files >= writers*perWriter {
				return
			}
		}
	}()
	<-writersDone
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Every acknowledged update must be reachable through some live group.
	allACGs := make([]proto.ACGID, acgs)
	for i := range allACGs {
		allACGs[i] = proto.ACGID(i + 1)
	}
	resp, err := n.Search(context.Background(), proto.SearchReq{ACGs: allACGs, IndexName: "size", Query: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != writers*perWriter {
		t.Errorf("final search = %d files, want %d (acknowledged update lost to a merge)",
			len(resp.Files), writers*perWriter)
	}
}
