package indexnode

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/pagestore"
	"propeller/internal/proto"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

func newTestNode(t testing.TB, opts ...func(*Config)) (*Node, *vclock.Clock) {
	t.Helper()
	clk := vclock.New()
	disk := simdisk.New(simdisk.Barracuda7200(), clk)
	store, err := pagestore.New(disk, 8192)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{ID: "in-test", Store: store, Disk: disk, Clock: clk}
	for _, o := range opts {
		o(&cfg)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n, clk
}

var sizeSpec = proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}

func TestNewRequiresStore(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing store should be rejected")
	}
}

func TestUpdateThenSearchIsConsistent(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(sizeSpec)
	_, err := n.Update(context.Background(), proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{
			{File: 1, Value: attr.Int(10 << 20)},
			{File: 2, Value: attr.Int(100 << 20)},
			{File: 3, Value: attr.Int(1 << 30)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The update is cached (lazy), but search must still see it
	// (commit-on-search).
	resp, err := n.Search(context.Background(), proto.SearchReq{
		ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>16m",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 2 || resp.Files[0] != 2 || resp.Files[1] != 3 {
		t.Errorf("files = %v, want [2 3]", resp.Files)
	}
}

func TestUpdateUnknownIndexRejected(t *testing.T) {
	n, _ := newTestNode(t)
	_, err := n.Update(context.Background(), proto.UpdateReq{ACG: 1, IndexName: "ghost"})
	if !errors.Is(err, ErrUnknownIndex) {
		t.Errorf("err = %v, want ErrUnknownIndex", err)
	}
}

func TestLazyCacheCommitsOnTimeout(t *testing.T) {
	n, clk := newTestNode(t)
	n.DeclareIndex(sizeSpec)
	if _, err := n.Update(context.Background(), proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 1, Value: attr.Int(5)}},
	}); err != nil {
		t.Fatal(err)
	}
	st, err := n.NodeStats(context.Background(), proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.CachedOps != 1 {
		t.Fatalf("cached = %d, want 1", st.CachedOps)
	}
	// Before the timeout, Tick is a no-op.
	if err := n.Tick(); err != nil {
		t.Fatal(err)
	}
	if st, _ := n.NodeStats(context.Background(), proto.NodeStatsReq{}); st.CachedOps != 1 {
		t.Error("tick before timeout should not commit")
	}
	clk.Advance(6 * time.Second)
	if err := n.Tick(); err != nil {
		t.Fatal(err)
	}
	if st, _ := n.NodeStats(context.Background(), proto.NodeStatsReq{}); st.CachedOps != 0 {
		t.Error("tick after timeout should commit")
	}
}

func TestCacheLimitForcesCommit(t *testing.T) {
	n, _ := newTestNode(t, func(c *Config) { c.CacheLimit = 4 })
	n.DeclareIndex(sizeSpec)
	for i := 0; i < 4; i++ {
		if _, err := n.Update(context.Background(), proto.UpdateReq{
			ACG: 1, IndexName: "size",
			Entries: []proto.IndexEntry{{File: index.FileID(i), Value: attr.Int(int64(i))}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if st, _ := n.NodeStats(context.Background(), proto.NodeStatsReq{}); st.CachedOps != 0 {
		t.Errorf("cache limit should have forced a commit; cached = %d", st.CachedOps)
	}
}

func TestDisableLazyCacheAblation(t *testing.T) {
	n, _ := newTestNode(t, func(c *Config) { c.DisableLazyCache = true })
	n.DeclareIndex(sizeSpec)
	if _, err := n.Update(context.Background(), proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 1, Value: attr.Int(5)}},
	}); err != nil {
		t.Fatal(err)
	}
	if st, _ := n.NodeStats(context.Background(), proto.NodeStatsReq{}); st.CachedOps != 0 {
		t.Error("synchronous mode should never cache")
	}
}

func TestReindexReplacesValue(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(sizeSpec)
	put := func(size int64) {
		t.Helper()
		if _, err := n.Update(context.Background(), proto.UpdateReq{
			ACG: 1, IndexName: "size",
			Entries: []proto.IndexEntry{{File: 1, Value: attr.Int(size)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	put(10)
	put(50 << 20) // file grew: re-index
	resp, err := n.Search(context.Background(), proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>16m"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 1 || resp.Files[0] != 1 {
		t.Errorf("files = %v, want [1]", resp.Files)
	}
	// Old value must be gone.
	resp, err = n.Search(context.Background(), proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size<1k"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 0 {
		t.Errorf("stale posting survived: %v", resp.Files)
	}
}

func TestDeletePosting(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(sizeSpec)
	if _, err := n.Update(context.Background(), proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 1, Value: attr.Int(100 << 20)}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Update(context.Background(), proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 1, Delete: true}},
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := n.Search(context.Background(), proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>16m"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 0 {
		t.Errorf("deleted posting returned: %v", resp.Files)
	}
}

func TestSearchMultiPredicate(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(sizeSpec)
	n.DeclareIndex(proto.IndexSpec{Name: "uid", Type: proto.IndexHash, Field: "uid"})
	base := time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		if _, err := n.Update(context.Background(), proto.UpdateReq{
			ACG: 1, IndexName: "size",
			Entries: []proto.IndexEntry{{File: index.FileID(i), Value: attr.Int(int64(i) << 20)}},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Update(context.Background(), proto.UpdateReq{
			ACG: 1, IndexName: "uid",
			Entries: []proto.IndexEntry{{File: index.FileID(i), Value: attr.Int(int64(1000 + i%2))}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := n.Search(context.Background(), proto.SearchReq{
		ACGs: []proto.ACGID{1}, IndexName: "size",
		Query: "size>4m & uid=1001", NowUnixNano: base.UnixNano(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Files 5,7,9 have size>4m and uid 1001.
	if len(resp.Files) != 3 {
		t.Errorf("files = %v, want [5 7 9]", resp.Files)
	}
}

func TestHashIndexPointQuery(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(proto.IndexSpec{Name: "keyword", Type: proto.IndexHash, Field: "keyword"})
	words := []string{"firefox", "linux", "firefox"}
	for i, w := range words {
		if _, err := n.Update(context.Background(), proto.UpdateReq{
			ACG: 1, IndexName: "keyword",
			Entries: []proto.IndexEntry{{File: index.FileID(i), Value: attr.Str(w)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := n.Search(context.Background(), proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "keyword", Query: "keyword:firefox"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 2 {
		t.Errorf("files = %v, want 2 firefox files", resp.Files)
	}
}

func TestKDIndexBoxQuery(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(proto.IndexSpec{
		Name: "inode", Type: proto.IndexKD, Fields: []string{"size", "mtime"},
	})
	base := time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		mt := base.Add(-time.Duration(i) * 24 * time.Hour)
		if _, err := n.Update(context.Background(), proto.UpdateReq{
			ACG: 1, IndexName: "inode",
			Entries: []proto.IndexEntry{{
				File:     index.FileID(i),
				KDCoords: []float64{float64(i) * float64(1<<20), float64(mt.UnixNano())},
			}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// size > 8 MiB and modified within the last week.
	resp, err := n.Search(context.Background(), proto.SearchReq{
		ACGs: []proto.ACGID{1}, IndexName: "inode",
		Query: "size>8m & mtime<1week", NowUnixNano: base.UnixNano(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sizes 9..20 MB are files 9..19; mtime within a week are files 0..6.
	// Intersection is empty... use a size cut that overlaps: size>4m -> 5..19,
	// within week -> 0..6 => {5,6}.
	resp2, err := n.Search(context.Background(), proto.SearchReq{
		ACGs: []proto.ACGID{1}, IndexName: "inode",
		Query: "size>4m & mtime<1week", NowUnixNano: base.UnixNano(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 0 {
		t.Errorf("disjoint box returned %v", resp.Files)
	}
	if len(resp2.Files) != 2 || resp2.Files[0] != 5 || resp2.Files[1] != 6 {
		t.Errorf("box = %v, want [5 6]", resp2.Files)
	}
}

func TestSearchUnknownGroupIsEmpty(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(sizeSpec)
	resp, err := n.Search(context.Background(), proto.SearchReq{ACGs: []proto.ACGID{42}, IndexName: "size", Query: "size>1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 0 {
		t.Errorf("files = %v", resp.Files)
	}
}

func TestSearchBadQuery(t *testing.T) {
	n, _ := newTestNode(t)
	if _, err := n.Search(context.Background(), proto.SearchReq{Query: "not a query"}); err == nil {
		t.Error("bad query should error")
	}
}

func TestWALRecovery(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(sizeSpec)
	if _, err := n.Update(context.Background(), proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{
			{File: 1, Value: attr.Int(20 << 20)},
			{File: 2, Value: attr.Int(1 << 10)},
		},
	}); err != nil {
		t.Fatal(err)
	}
	img, err := n.WALImage(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.WALImage(99); !errors.Is(err, ErrUnknownACG) {
		t.Errorf("bogus wal image = %v", err)
	}

	// "Crash": a fresh node replays the log and serves consistent results.
	n2, _ := newTestNode(t)
	n2.DeclareIndex(sizeSpec)
	recovered, err := n2.RecoverGroup(1, img)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 2 {
		t.Fatalf("recovered %d entries, want 2", recovered)
	}
	resp, err := n2.Search(context.Background(), proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>16m"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 1 || resp.Files[0] != 1 {
		t.Errorf("recovered search = %v, want [1]", resp.Files)
	}
}

func TestWALRecoveryTornTail(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(sizeSpec)
	for i := 0; i < 3; i++ {
		if _, err := n.Update(context.Background(), proto.UpdateReq{
			ACG: 1, IndexName: "size",
			Entries: []proto.IndexEntry{{File: index.FileID(i), Value: attr.Int(20 << 20)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	img, err := n.WALImage(1)
	if err != nil {
		t.Fatal(err)
	}
	torn := img[:len(img)-3]
	n2, _ := newTestNode(t)
	n2.DeclareIndex(sizeSpec)
	recovered, err := n2.RecoverGroup(1, torn)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 2 {
		t.Errorf("recovered %d, want the 2 intact records", recovered)
	}
}

func TestDropCachesMakesSearchesColdThenWarm(t *testing.T) {
	n, clk := newTestNode(t)
	n.DeclareIndex(sizeSpec)
	var entries []proto.IndexEntry
	for i := 0; i < 5000; i++ {
		entries = append(entries, proto.IndexEntry{File: index.FileID(i), Value: attr.Int(int64(i))})
	}
	if _, err := n.Update(context.Background(), proto.UpdateReq{ACG: 1, IndexName: "size", Entries: entries}); err != nil {
		t.Fatal(err)
	}
	// Commit + warm up.
	if _, err := n.Search(context.Background(), proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>0"}); err != nil {
		t.Fatal(err)
	}
	if err := n.DropCaches(); err != nil {
		t.Fatal(err)
	}
	before := clk.Now()
	if _, err := n.Search(context.Background(), proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>0"}); err != nil {
		t.Fatal(err)
	}
	cold := clk.Now() - before

	before = clk.Now()
	if _, err := n.Search(context.Background(), proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>0"}); err != nil {
		t.Fatal(err)
	}
	warm := clk.Now() - before
	if cold <= warm {
		t.Errorf("cold search (%v) should cost more than warm (%v)", cold, warm)
	}
	if warm != 0 {
		t.Errorf("fully warm search should be free of disk time, got %v", warm)
	}
}

func TestNodeStatsFields(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(sizeSpec)
	if _, err := n.Update(context.Background(), proto.UpdateReq{
		ACG: 7, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 1, Value: attr.Int(1)}},
	}); err != nil {
		t.Fatal(err)
	}
	st, err := n.NodeStats(context.Background(), proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Node != "in-test" || st.ACGs != 1 || st.Files != 1 || st.WALRecords != 1 {
		t.Errorf("stats = %+v", st)
	}
	if len(st.IndexSpecs) != 1 {
		t.Errorf("specs = %v", st.IndexSpecs)
	}
}

func TestACGImagePersistence(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(sizeSpec)
	if _, err := n.FlushACG(context.Background(), proto.FlushACGReq{
		ACG:      1,
		Edges:    []proto.ACGEdge{{Src: 1, Dst: 2, Weight: 4}, {Src: 2, Dst: 3, Weight: 1}},
		Vertices: []index.FileID{9},
	}); err != nil {
		t.Fatal(err)
	}
	img, err := n.ACGImage(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.ACGImage(42); !errors.Is(err, ErrUnknownACG) {
		t.Errorf("unknown group = %v", err)
	}

	// A replacement node restores the graph from shared storage.
	n2, _ := newTestNode(t)
	if err := n2.LoadACGImage(1, img); err != nil {
		t.Fatal(err)
	}
	n2.mu.Lock()
	g := n2.groups[1]
	w := g.graph.adj[1][2]
	nFiles := len(g.files)
	n2.mu.Unlock()
	if w != 4 {
		t.Errorf("restored edge weight = %d, want 4", w)
	}
	if nFiles != 4 { // 1,2,3 plus isolated 9
		t.Errorf("restored files = %d, want 4", nFiles)
	}
	if err := n2.LoadACGImage(2, []byte("junk")); err == nil {
		t.Error("junk image should fail")
	}
}

func TestHeartbeatWithoutMaster(t *testing.T) {
	n, _ := newTestNode(t)
	if err := n.Heartbeat(context.Background()); !errors.Is(err, ErrNoMaster) {
		t.Errorf("err = %v, want ErrNoMaster", err)
	}
	if _, err := n.SplitACG(context.Background(), proto.SplitACGReq{ACG: 1}); !errors.Is(err, ErrNoMaster) {
		t.Errorf("split err = %v, want ErrNoMaster", err)
	}
}

// TestUpdateRejectsOversizeValueBeforeAck: a value whose index key cannot
// fit a page must be rejected at Update time — never acknowledged and then
// failed inside a later commit, which would wedge the group's
// strict-consistency searches forever.
func TestUpdateRejectsOversizeValueBeforeAck(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(proto.IndexSpec{Name: "kw", Type: proto.IndexBTree, Field: "kw"})
	ctx := context.Background()
	huge := strings.Repeat("x", 1<<14)
	_, err := n.Update(ctx, proto.UpdateReq{ACG: 1, IndexName: "kw", Entries: []proto.IndexEntry{
		{File: 1, Value: attr.Str(huge)},
	}})
	if !errors.Is(err, index.ErrKeyTooLong) {
		t.Fatalf("oversize update err = %v, want index.ErrKeyTooLong", err)
	}
	// The group is not wedged: a normal update and search still work.
	if _, err := n.Update(ctx, proto.UpdateReq{ACG: 1, IndexName: "kw", Entries: []proto.IndexEntry{
		{File: 2, Value: attr.Str("ok")},
	}}); err != nil {
		t.Fatal(err)
	}
	resp, err := n.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "kw", Query: "kw=ok"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 1 || resp.Files[0] != 2 {
		t.Fatalf("search after rejected oversize = %v, want [2]", resp.Files)
	}
}
