package indexnode

import (
	"context"
	"fmt"
	"sort"

	"propeller/internal/index"
	"propeller/internal/proto"
	"propeller/internal/rpc"
)

// MergeACGs folds group src into group dst on this node (the §IV node task
// of "merging small [indices]" to prevent fragmentation from many tiny
// groups). Both groups must be local; the Master is informed so file
// mappings rebind. Postings, causality edges and membership all move.
//
// Locking: this is the only path that holds two group locks at once
// (ascending ACGID order; n.mergeMu serializes merges so that cannot
// deadlock). The registry lock is held only for the lookup and the final
// delete, so traffic on unrelated ACGs never waits out a merge's commits
// and posting moves.
func (n *Node) MergeACGs(ctx context.Context, dst, src proto.ACGID) error {
	if dst == src {
		return fmt.Errorf("indexnode: merge group %d into itself", dst)
	}
	n.mergeMu.Lock()
	defer n.mergeMu.Unlock()
	n.mu.RLock()
	gd, gs := n.groups[dst], n.groups[src]
	n.mu.RUnlock()
	if gd == nil {
		return fmt.Errorf("acg %d: %w", dst, ErrUnknownACG)
	}
	if gs == nil {
		return fmt.Errorf("acg %d: %w", src, ErrUnknownACG)
	}
	first, second := gd, gs
	if second.id < first.id {
		first, second = second, first
	}
	first.mu.Lock()
	second.mu.Lock()
	unlock := func() {
		second.mu.Unlock()
		first.mu.Unlock()
	}
	// Commit both so postings are authoritative.
	if err := n.commitGroupLocked(gd); err != nil {
		unlock()
		return err
	}
	if err := n.commitGroupLocked(gs); err != nil {
		unlock()
		return err
	}
	// Move membership and causality. Files the destination had fenced
	// (split away earlier) are legitimately re-homed by the merge's
	// rebind; fences the source carried follow it, unless the
	// destination owns the file.
	for f := range gs.files {
		gd.files[f] = true
		delete(gd.movedOut, f)
	}
	for f := range gs.movedOut {
		if !gd.files[f] {
			if gd.movedOut == nil {
				gd.movedOut = make(map[index.FileID]bool)
			}
			gd.movedOut[f] = true
		}
	}
	for a, m := range gs.graph.adj {
		for b, w := range m {
			gd.graph.addEdge(a, b, w)
		}
	}
	// Re-apply src's postings into dst's indices. Committed postings are
	// already one-per-file, i.e. a coalesced run, so they merge through
	// the same bulk apply the commit engine uses (one KD rebuild per
	// index, sorted bulk B-tree/hash merges).
	names := make([]string, 0, len(gs.postings))
	for name := range gs.postings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		in, err := n.instFor(gd, name)
		if err != nil {
			unlock()
			return err
		}
		run := make(map[index.FileID]pendingEntry, len(gs.postings[name]))
		for f, e := range gs.postings[name] {
			run[f] = pendingEntry{e: e}
		}
		if err := n.applyRunLocked(gd, in, name, run); err != nil {
			unlock()
			return err
		}
		if in.kd != nil {
			in.kdImage = in.kd.Serialize()
			in.kdResident = true
		}
	}
	// Shared storage follows the merge: dst's image now includes src's
	// postings, and src's state is gone everywhere.
	if err := n.checkpointLocked(gd); err != nil {
		unlock()
		return err
	}
	if n.cfg.Shared != nil {
		n.cfg.Shared.Drop(src)
	}
	// Mark the drained group dead before dropping it from the registry:
	// a caller that resolved the pointer before this merge and is blocked
	// on its lock must re-resolve rather than mutate the orphan. Taking
	// n.mu here while holding group locks is safe — no path acquires a
	// group lock while holding n.mu (lock ordering rule 2).
	gs.dead = true
	n.mu.Lock()
	delete(n.groups, src)
	n.mu.Unlock()
	// Fold src's per-ACG counters into dst so the per-group breakdown
	// keeps summing to the node totals and retired labels are reclaimed
	// (gd's cached handles stay valid: Fold reuses dst's counter object).
	n.acgCommits.Fold(acgLabel(dst), acgLabel(src))
	n.acgCommitEntries.Fold(acgLabel(dst), acgLabel(src))
	n.mergeEpoch.Add(1)
	unlock()

	if n.cfg.Master != nil {
		rep, err := rpc.Call[proto.MergeReportReq, proto.MergeReportResp](
			ctx, n.cfg.Master, proto.MethodMergeReport,
			proto.MergeReportReq{Node: n.cfg.ID, Dst: dst, Src: src})
		if err != nil {
			return fmt.Errorf("indexnode merge report: %w", err)
		}
		n.noteEpoch(rep.Epoch)
	}
	return nil
}

// CompactGroups merges adjacent small groups on this node until every
// group (except possibly the last) holds at least minFiles files or no
// further merge is possible. It returns the number of merges performed.
func (n *Node) CompactGroups(ctx context.Context, minFiles int) (int, error) {
	if minFiles < 1 {
		return 0, nil
	}
	merges := 0
	for {
		var small []proto.ACGID
		for _, g := range n.groupsSnapshot() {
			if !g.lockLive() {
				continue
			}
			if len(g.files) < minFiles {
				small = append(small, g.id)
			}
			g.mu.Unlock()
		}
		if len(small) < 2 {
			return merges, nil
		}
		if err := n.MergeACGs(ctx, small[0], small[1]); err != nil {
			return merges, err
		}
		merges++
	}
}
