package indexnode

import (
	"fmt"
	"sort"

	"propeller/internal/index"
	"propeller/internal/proto"
	"propeller/internal/rpc"
)

// MergeACGs folds group src into group dst on this node (the §IV node task
// of "merging small [indices]" to prevent fragmentation from many tiny
// groups). Both groups must be local; the Master is informed so file
// mappings rebind. Postings, causality edges and membership all move.
func (n *Node) MergeACGs(dst, src proto.ACGID) error {
	if dst == src {
		return fmt.Errorf("indexnode: merge group %d into itself", dst)
	}
	n.mu.Lock()
	gd, ok := n.groups[dst]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("acg %d: %w", dst, ErrUnknownACG)
	}
	gs, ok := n.groups[src]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("acg %d: %w", src, ErrUnknownACG)
	}
	// Commit both so postings are authoritative.
	if err := n.commitLocked(gd); err != nil {
		n.mu.Unlock()
		return err
	}
	if err := n.commitLocked(gs); err != nil {
		n.mu.Unlock()
		return err
	}
	// Move membership and causality.
	for f := range gs.files {
		gd.files[f] = true
	}
	for a, m := range gs.graph.adj {
		for b, w := range m {
			gd.graph.addEdge(a, b, w)
		}
	}
	// Re-apply src's postings into dst's indices.
	names := make([]string, 0, len(gs.postings))
	for name := range gs.postings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		in, err := n.instFor(gd, name)
		if err != nil {
			n.mu.Unlock()
			return err
		}
		files := make([]uint64, 0, len(gs.postings[name]))
		for f := range gs.postings[name] {
			files = append(files, uint64(f))
		}
		sort.Slice(files, func(i, j int) bool { return files[i] < files[j] })
		for _, f := range files {
			e := gs.postings[name][index.FileID(f)]
			if err := n.applyEntry(gd, in, name, e); err != nil {
				n.mu.Unlock()
				return err
			}
		}
		if in.kd != nil {
			in.kdImage = in.kd.Serialize()
			in.kdResident = true
		}
	}
	delete(n.groups, src)
	n.mu.Unlock()

	if n.cfg.Master != nil {
		if _, err := rpc.Call[proto.MergeReportReq, proto.MergeReportResp](
			n.cfg.Master, proto.MethodMergeReport,
			proto.MergeReportReq{Node: n.cfg.ID, Dst: dst, Src: src}); err != nil {
			return fmt.Errorf("indexnode merge report: %w", err)
		}
	}
	return nil
}

// CompactGroups merges adjacent small groups on this node until every
// group (except possibly the last) holds at least minFiles files or no
// further merge is possible. It returns the number of merges performed.
func (n *Node) CompactGroups(minFiles int) (int, error) {
	if minFiles < 1 {
		return 0, nil
	}
	merges := 0
	for {
		n.mu.Lock()
		ids := n.groupIDsLocked()
		var small []proto.ACGID
		for _, id := range ids {
			if len(n.groups[id].files) < minFiles {
				small = append(small, id)
			}
		}
		n.mu.Unlock()
		if len(small) < 2 {
			return merges, nil
		}
		if err := n.MergeACGs(small[0], small[1]); err != nil {
			return merges, err
		}
		merges++
	}
}
