package indexnode

import (
	"context"
	"errors"
	"testing"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/master"
	"propeller/internal/pagestore"
	"propeller/internal/perr"
	"propeller/internal/proto"
	"propeller/internal/rpc"
	"propeller/internal/sharedstore"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

// transferRig wires a master and two index nodes over pipes, all sharing
// one shared store and one virtual clock — the minimal cluster the
// migration and recovery protocols need.
type transferRig struct {
	m      *master.Master
	a, b   *Node
	shared *sharedstore.Store
	clk    *vclock.Clock
	// servers by pipe address, so tests can read rpc-server stats (e.g.
	// StreamBufferedPeak on the receiving side of a chunked transfer).
	servers map[string]*rpc.Server
}

func newTransferRig(t *testing.T) *transferRig {
	t.Helper()
	clk := vclock.New()
	shared := sharedstore.New()
	m := master.New(master.Config{Clock: clk})
	masterSrv := rpc.NewServer()
	m.RegisterRPC(masterSrv)

	servers := map[string]*rpc.Server{"pipe:master": masterSrv}
	dial := func(_ context.Context, addr string) (*rpc.Client, error) {
		srv, ok := servers[addr]
		if !ok {
			return nil, errors.New("unknown addr " + addr)
		}
		cc, sc := rpc.Pipe()
		srv.ServeConn(sc)
		return rpc.NewClient(cc), nil
	}

	mkNode := func(id proto.NodeID) *Node {
		disk := simdisk.New(simdisk.Barracuda7200(), clk)
		store, err := pagestore.New(disk, 4096)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := dial(context.Background(), "pipe:master")
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(Config{
			ID: id, Store: store, Disk: disk, Clock: clk,
			CacheLimit: 1 << 20, Master: mc, Dial: dial, Shared: shared,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer()
		n.RegisterRPC(srv)
		servers["pipe:"+string(id)] = srv
		if _, err := m.RegisterNode(context.Background(), proto.RegisterNodeReq{
			Node: id, Addr: "pipe:" + string(id), CapacityFiles: 1 << 30,
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	return &transferRig{m: m, a: mkNode("in-a"), b: mkNode("in-b"), shared: shared, clk: clk, servers: servers}
}

func seedTransferGroup(t *testing.T, n *Node, acg proto.ACGID, files int) {
	t.Helper()
	n.DeclareIndex(proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"})
	for i := 0; i < files; i++ {
		if _, err := n.Update(context.Background(), proto.UpdateReq{
			ACG: acg, IndexName: "size",
			Entries: []proto.IndexEntry{{File: index.FileID(i), Value: attr.Int(int64(i))}},
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTransferACGMovesGroupAndTombstonesSource(t *testing.T) {
	r := newTransferRig(t)
	ctx := context.Background()
	seedTransferGroup(t, r.a, 1, 20)
	// Half committed (via a strict search), half still pending after more
	// updates — the transfer must carry both.
	if _, err := r.a.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>=0"}); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 30; i++ {
		if _, err := r.a.Update(ctx, proto.UpdateReq{
			ACG: 1, IndexName: "size",
			Entries: []proto.IndexEntry{{File: index.FileID(i), Value: attr.Int(int64(i))}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// A heartbeat lets the Master adopt the node-created group, so the
	// migrate report can rebind it.
	if err := r.a.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}

	if err := r.a.TransferACG(ctx, proto.MigrateOrder{ACG: 1, Dest: "in-b", Addr: "pipe:in-b"}); err != nil {
		t.Fatal(err)
	}

	// The destination serves every acknowledged update.
	resp, err := r.b.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>=0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 30 {
		t.Fatalf("post-transfer search on dest = %d files, want 30", len(resp.Files))
	}

	// The source rejects stale traffic with the typed error.
	if _, err := r.a.Update(ctx, proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 99, Value: attr.Int(99)}},
	}); !errors.Is(err, perr.ErrStalePlacement) {
		t.Fatalf("stale update err = %v, want ErrStalePlacement", err)
	}
	if _, err := r.a.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>=0"}); !errors.Is(err, perr.ErrStalePlacement) {
		t.Fatalf("stale search err = %v, want ErrStalePlacement", err)
	}
	st, err := r.a.NodeStats(ctx, proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.GroupsMigratedOut != 1 || st.StalePlacementRejects != 2 {
		t.Fatalf("source stats = migrated %d, rejects %d; want 1, 2", st.GroupsMigratedOut, st.StalePlacementRejects)
	}
	if st.PlacementEpoch == 0 {
		t.Fatal("source should have adopted the post-migration epoch")
	}

	// The Master rebound the mapping.
	lr, err := r.m.LookupFiles(ctx, proto.LookupFilesReq{Files: []index.FileID{0}})
	if err == nil && len(lr.Mappings) > 0 {
		// File 0 was never mapped by the master in this rig (updates went
		// straight to the node); the lookup is allowed to fail. When it
		// resolves, it must not point at the source.
		if lr.Mappings[0].Node == "in-a" {
			t.Fatal("master still maps the group to the source")
		}
	}

	// A duplicate order is idempotent.
	if err := r.a.TransferACG(ctx, proto.MigrateOrder{ACG: 1, Dest: "in-b", Addr: "pipe:in-b"}); err != nil {
		t.Fatalf("duplicate transfer order = %v, want nil", err)
	}
}

func TestRecoverFromSharedRestoresCheckpointAndWAL(t *testing.T) {
	r := newTransferRig(t)
	ctx := context.Background()
	seedTransferGroup(t, r.a, 1, 25)
	// Checkpoint part of the history (a causality flush does it), then
	// acknowledge more updates that stay WAL-only.
	if _, err := r.a.FlushACG(ctx, proto.FlushACGReq{ACG: 1, Edges: []proto.ACGEdge{{Src: 1, Dst: 2, Weight: 3}}}); err != nil {
		t.Fatal(err)
	}
	for i := 25; i < 40; i++ {
		if _, err := r.a.Update(ctx, proto.UpdateReq{
			ACG: 1, IndexName: "size",
			Entries: []proto.IndexEntry{{File: index.FileID(i), Value: attr.Int(int64(i))}},
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Node A "dies"; B adopts the group from shared storage alone.
	r.b.DeclareIndex(proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"})
	if err := r.b.RecoverFromShared(ctx, 1); err != nil {
		t.Fatal(err)
	}
	resp, err := r.b.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>=0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 40 {
		t.Fatalf("recovered search = %d files, want 40 (zero lost acknowledged updates)", len(resp.Files))
	}
	st, err := r.b.NodeStats(ctx, proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.GroupsRecovered != 1 {
		t.Fatalf("GroupsRecovered = %d, want 1", st.GroupsRecovered)
	}
}

func TestRecoverDoesNotClobberFresherLocalState(t *testing.T) {
	r := newTransferRig(t)
	ctx := context.Background()
	// Shared storage holds an old value for file 7 (written through A).
	r.a.DeclareIndex(proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"})
	if _, err := r.a.Update(ctx, proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 7, Value: attr.Int(100)}},
	}); err != nil {
		t.Fatal(err)
	}
	// A client re-routed to B ahead of the recover order writes a newer
	// value there.
	r.b.DeclareIndex(proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"})
	if _, err := r.b.Update(ctx, proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 7, Value: attr.Int(200)}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.b.RecoverFromShared(ctx, 1); err != nil {
		t.Fatal(err)
	}
	resp, err := r.b.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>150"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 1 || resp.Files[0] != 7 {
		t.Fatalf("search size>150 = %v, want [7] (recovery must not resurrect the stale value)", resp.Files)
	}
}

func TestReleaseACGTombstoneAndReadoption(t *testing.T) {
	r := newTransferRig(t)
	ctx := context.Background()
	seedTransferGroup(t, r.a, 1, 5)
	r.a.ReleaseACG(1, 9)
	if _, err := r.a.Update(ctx, proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 50, Value: attr.Int(50)}},
	}); !errors.Is(err, perr.ErrStalePlacement) {
		t.Fatalf("released update err = %v, want ErrStalePlacement", err)
	}
	// Releasing an unknown group still tombstones it.
	r.a.ReleaseACG(42, 9)
	if _, err := r.a.Update(ctx, proto.UpdateReq{
		ACG: 42, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 1, Value: attr.Int(1)}},
	}); !errors.Is(err, perr.ErrStalePlacement) {
		t.Fatalf("unknown released update err = %v, want ErrStalePlacement", err)
	}
	// An explicit recovery order re-adopts past the tombstone — and the
	// shared store still holds the released group's acknowledged updates.
	if err := r.a.RecoverFromShared(ctx, 1); err != nil {
		t.Fatal(err)
	}
	resp, err := r.a.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>=0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 5 {
		t.Fatalf("re-adopted search = %d files, want 5", len(resp.Files))
	}
}

func TestSplitFencesMovedFiles(t *testing.T) {
	// After a split migrates half a group away, the source group stays
	// alive — so a client's warm pre-split mapping must bounce with
	// ErrStalePlacement, not fork ownership by silently re-adding the
	// moved file's postings here.
	r := newTransferRig(t)
	ctx := context.Background()
	r.a.DeclareIndex(proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"})
	// Two dense causal clusters joined by one light edge: the min-cut
	// bisection moves one cluster out.
	for c := 0; c < 2; c++ {
		base := index.FileID(c * 10)
		for i := index.FileID(0); i < 10; i++ {
			if _, err := r.a.Update(ctx, proto.UpdateReq{
				ACG: 1, IndexName: "size",
				Entries: []proto.IndexEntry{{File: base + i, Value: attr.Int(int64(base+i) + 1)}},
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := r.a.FlushACG(ctx, proto.FlushACGReq{ACG: 1, Edges: []proto.ACGEdge{
				{Src: base + i, Dst: base + (i+1)%10, Weight: 100},
			}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := r.a.FlushACG(ctx, proto.FlushACGReq{ACG: 1, Edges: []proto.ACGEdge{{Src: 0, Dst: 10, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := r.a.Heartbeat(ctx); err != nil { // master adopts ACG 1
		t.Fatal(err)
	}
	split, err := r.a.SplitACG(ctx, proto.SplitACGReq{ACG: 1})
	if err != nil {
		t.Fatal(err)
	}
	if split.Moved == 0 {
		t.Fatal("split moved nothing")
	}
	// Identify a moved file: one no longer served by the old group.
	resp, err := r.a.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	stayed := make(map[index.FileID]bool, len(resp.Files))
	for _, f := range resp.Files {
		stayed[f] = true
	}
	var moved index.FileID
	found := false
	for f := index.FileID(0); f < 20; f++ {
		if !stayed[f] {
			moved, found = f, true
			break
		}
	}
	if !found {
		t.Fatal("no moved file found")
	}
	// A stale-routed update for the moved file bounces with the typed
	// error instead of being silently accepted.
	if _, err := r.a.Update(ctx, proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: moved, Value: attr.Int(999)}},
	}); !errors.Is(err, perr.ErrStalePlacement) {
		t.Fatalf("stale update for split-away file = %v, want ErrStalePlacement", err)
	}
	// Files that stayed keep updating normally.
	var keep index.FileID
	for f := range stayed {
		keep = f
		break
	}
	if _, err := r.a.Update(ctx, proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: keep, Value: attr.Int(1234)}},
	}); err != nil {
		t.Fatalf("update for retained file = %v, want nil", err)
	}
}
