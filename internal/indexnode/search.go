package indexnode

import (
	"fmt"
	"math"
	"sort"
	"time"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/proto"
	"propeller/internal/query"
)

// Search answers a file-search request over the given groups. Consistency:
// each group's lazy cache is committed synchronously before the group is
// queried, so results always reflect every acknowledged indexing request
// (the paper's commit-on-search rule). Each group is committed and queried
// under its own lock, so a search never stalls traffic on unrelated ACGs.
func (n *Node) Search(req proto.SearchReq) (proto.SearchResp, error) {
	q, err := query.Parse(req.Query, time.Unix(0, req.NowUnixNano))
	if err != nil {
		return proto.SearchResp{}, err
	}
	// A merge landing mid-pass can move files from a not-yet-visited group
	// into an already-visited one, making acknowledged files vanish from
	// the result — impossible under any serial order. Re-run the pass when
	// the merge epoch moved; merges are rare, so one pass is the norm (the
	// retry bound only guards against a pathological merge loop).
	for attempt := 0; ; attempt++ {
		epoch := n.mergeEpoch.Load()
		resp, err := n.searchGroups(req, q)
		if err != nil {
			return proto.SearchResp{}, err
		}
		if n.mergeEpoch.Load() == epoch || attempt >= 3 {
			return resp, nil
		}
	}
}

// searchGroups runs one commit-and-query pass over the requested groups.
func (n *Node) searchGroups(req proto.SearchReq, q query.Query) (proto.SearchResp, error) {
	var resp proto.SearchResp
	seen := make(map[index.FileID]bool)
	for _, id := range req.ACGs {
		g := n.lockGroup(id)
		if g == nil {
			continue // group not on this node (stale routing); nothing to add
		}
		commitStart := n.cfg.Clock.Now()
		if err := n.commitGroupLocked(g); err != nil {
			g.mu.Unlock()
			return proto.SearchResp{}, err
		}
		resp.CommitLatencyNanos += int64(n.cfg.Clock.Now() - commitStart)
		files, err := n.searchGroupLocked(g, req.IndexName, q)
		g.mu.Unlock()
		if err != nil {
			return proto.SearchResp{}, err
		}
		for _, f := range files {
			if !seen[f] {
				seen[f] = true
				resp.Files = append(resp.Files, f)
			}
		}
	}
	sort.Slice(resp.Files, func(i, j int) bool { return resp.Files[i] < resp.Files[j] })
	return resp, nil
}

// searchGroupLocked runs the query against one group using the named index
// as the primary access path and the group's committed postings for the
// residual predicates. Caller holds g.mu.
func (n *Node) searchGroupLocked(g *group, indexName string, q query.Query) ([]index.FileID, error) {
	in, ok := g.indexes[indexName]
	if !ok {
		// The group never received postings for this index: no matches.
		return nil, nil
	}
	spec := in.spec

	var candidates []index.FileID
	var err error
	switch {
	case in.bt != nil:
		lo, hi, incLo, incHi, ok := q.Range(spec.Field)
		if !ok {
			lo, hi, incLo, incHi = nil, nil, true, true // full scan
		}
		candidates, err = in.bt.SearchRange(lo, hi, incLo, incHi)
	case in.ht != nil:
		lo, hi, _, _, ok := q.Range(spec.Field)
		if ok && lo != nil && hi != nil && lo.Equal(*hi) {
			candidates, err = in.ht.Lookup(*lo)
		} else {
			// Hash tables only serve point queries; fall back to a scan.
			err = in.ht.Scan(func(_ attr.Value, f index.FileID) bool {
				candidates = append(candidates, f)
				return true
			})
		}
	case in.kd != nil:
		candidates, err = n.kdSearchLocked(in, q)
	default:
		return nil, fmt.Errorf("%q: %w", indexName, ErrUnknownIndex)
	}
	if err != nil {
		return nil, err
	}

	// Residual filtering over all predicates using committed postings. KD
	// fields resolve through the point's coordinates.
	out := candidates[:0]
	for _, f := range candidates {
		if q.Matches(func(field string) (attr.Value, bool) {
			if in.kd != nil {
				for i, kf := range spec.Fields {
					if kf != field {
						continue
					}
					if e, ok := g.postings[indexName][f]; ok && i < len(e.KDCoords) {
						return attr.Float(e.KDCoords[i]), true
					}
				}
			}
			return n.attrValue(g, field, f)
		}) {
			out = append(out, f)
		}
	}
	return out, nil
}

// kdOnlyQuery reports whether every query field is covered by the KD spec.
func (n *Node) kdOnlyQuery(q query.Query, spec proto.IndexSpec) bool {
	covered := make(map[string]bool, len(spec.Fields))
	for _, f := range spec.Fields {
		covered[f] = true
	}
	for _, p := range q.Preds {
		if !covered[p.Field] {
			return false
		}
	}
	return true
}

// kdSearchLocked queries the KD index, charging the prototype's whole-tree
// load when the image is not resident (cold query).
func (n *Node) kdSearchLocked(in *inst, q query.Query) ([]index.FileID, error) {
	if !in.kdResident {
		img := in.kdImage
		if img == nil {
			img = in.kd.Serialize()
			in.kdImage = img
		}
		kd, err := index.LoadKDTree(img, n.cfg.Disk, in.kdOffset)
		if err != nil {
			return nil, err
		}
		in.kd = kd
		in.kdResident = true
	}
	dims := in.spec.Dims()
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for i, field := range in.spec.Fields {
		l, h, _, _, ok := q.Range(field)
		if !ok {
			lo[i], hi[i] = math.Inf(-1), math.Inf(1)
			continue
		}
		if l != nil {
			lo[i] = l.AsFloat()
		} else {
			lo[i] = math.Inf(-1)
		}
		if h != nil {
			hi[i] = h.AsFloat()
		} else {
			hi[i] = math.Inf(1)
		}
	}
	return in.kd.RangeSearch(lo, hi)
}
