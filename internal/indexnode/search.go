package indexnode

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/perr"
	"propeller/internal/proto"
	"propeller/internal/query"
)

// compileQuery resolves a SearchReq's predicate: structured Preds when
// present (no re-parse), otherwise the textual form. Parse failures carry
// the ErrBadQuery taxonomy via query.ErrSyntax.
func compileQuery(req proto.SearchReq) (query.Query, error) {
	if len(req.Preds) > 0 {
		return query.Query{Preds: req.Preds}, nil
	}
	return query.Parse(req.Query, time.Unix(0, req.NowUnixNano))
}

// Search answers a file-search request over the given groups. Consistency:
// under the default strict mode each group's lazy cache is committed
// synchronously before the group is queried, so results always reflect
// every acknowledged indexing request (the paper's commit-on-search rule);
// lazy mode skips the commit and reads the durable indices as-is. Each
// group is committed and queried under its own lock, so a search never
// stalls traffic on unrelated ACGs.
//
// Pagination: with req.Limit > 0 the response holds at most Limit files —
// the smallest matching FileIDs above the req.After cursor — and every
// access path (B-tree scan, hash lookup, KD box) streams its candidates
// into a bounded collector, so no collector ever retains more than one
// page of postings (resp.MaxRetained). resp.More signals that another
// page exists.
//
// Parallelism: multi-ACG requests fan out across a bounded worker pool
// (per-worker collectors, merged at the end); see searchGroups.
//
// Cancellation: the context is checked between groups; an expired deadline
// or cancelled caller aborts the pass without scanning further groups.
func (n *Node) Search(ctx context.Context, req proto.SearchReq) (proto.SearchResp, error) {
	// Admission runs before the query compiles: a shed search did no
	// commit-on-search work and holds no collector memory.
	if err := n.adm.acquire(req.Client); err != nil {
		n.searchesShed.Inc()
		return proto.SearchResp{}, fmt.Errorf("indexnode %s search: %w", n.cfg.ID, err)
	}
	defer n.adm.release(req.Client)
	// Lease fence for strict reads: commit-on-search promises the result
	// reflects every acknowledged update, but a fenced-off primary cannot
	// know what a promoted successor has acknowledged since. Lazy reads
	// are exempt — their contract already tolerates staleness, which is
	// what keeps follower replicas and hedged reads useful mid-partition.
	if req.Consistency != proto.ConsistencyLazy && n.leaseExpired() {
		n.leaseRejects.Inc()
		return proto.SearchResp{}, fmt.Errorf(
			"indexnode %s: primary lease expired (node epoch %d): %w",
			n.cfg.ID, n.placementEpoch.Load(), perr.ErrStalePlacement)
	}
	n.searchesServed.Inc()
	q, err := compileQuery(req)
	if err != nil {
		return proto.SearchResp{}, err
	}
	// A merge landing mid-pass can move files from a not-yet-visited group
	// into an already-visited one, making acknowledged files vanish from
	// the result — impossible under any serial order. Re-run the pass when
	// the merge epoch moved; merges are rare, so one pass is the norm (the
	// retry bound only guards against a pathological merge loop).
	for attempt := 0; ; attempt++ {
		epoch := n.mergeEpoch.Load()
		resp, err := n.searchGroups(ctx, req, q)
		if err != nil {
			return proto.SearchResp{}, err
		}
		if n.mergeEpoch.Load() == epoch || attempt >= 3 {
			resp.Epoch = n.epoch()
			return resp, nil
		}
	}
}

// pageCollector accumulates matching FileIDs under a page budget: the
// limit smallest ids above the cursor, tracked in a max-heap so one page
// of postings is the most ever held. Cross-group duplicates are rejected
// against the retained set (O(1) via a shadow membership map), so a
// duplicate can never evict a genuine match. With limit <= 0 it degrades
// to an unbounded accumulator (the v1 semantics).
type pageCollector struct {
	limit    int
	after    index.FileID
	afterSet bool

	heap        []index.FileID        // max-heap of the current page candidates
	retained    map[index.FileID]bool // membership shadow of heap
	all         []index.FileID        // unbounded mode
	overflow    bool                  // a match beyond the page was seen
	maxRetained int
}

func newPageCollector(req proto.SearchReq) *pageCollector {
	c := &pageCollector{limit: req.Limit, after: req.After, afterSet: req.AfterSet}
	if c.limit > 0 {
		c.retained = make(map[index.FileID]bool, c.limit)
	}
	return c
}

func (c *pageCollector) add(f index.FileID) {
	if c.afterSet && f <= c.after {
		return
	}
	if c.limit <= 0 {
		c.all = append(c.all, f)
		if len(c.all) > c.maxRetained {
			c.maxRetained = len(c.all)
		}
		return
	}
	if c.retained[f] {
		return // duplicate of a retained candidate (cross-group); drop
	}
	if len(c.heap) < c.limit {
		c.heapPush(f)
		c.retained[f] = true
		if len(c.heap) > c.maxRetained {
			c.maxRetained = len(c.heap)
		}
		return
	}
	switch root := c.heap[0]; {
	case f < root:
		// Displaces the current page maximum, which becomes a beyond-page
		// match.
		c.overflow = true
		delete(c.retained, root)
		c.heap[0] = f
		c.retained[f] = true
		c.siftDown(0)
	default:
		c.overflow = true // a match beyond this page exists
	}
}

func (c *pageCollector) heapPush(f index.FileID) {
	c.heap = append(c.heap, f)
	i := len(c.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if c.heap[parent] >= c.heap[i] {
			break
		}
		c.heap[parent], c.heap[i] = c.heap[i], c.heap[parent]
		i = parent
	}
}

func (c *pageCollector) siftDown(i int) {
	for {
		l, r, largest := 2*i+1, 2*i+2, i
		if l < len(c.heap) && c.heap[l] > c.heap[largest] {
			largest = l
		}
		if r < len(c.heap) && c.heap[r] > c.heap[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		c.heap[i], c.heap[largest] = c.heap[largest], c.heap[i]
		i = largest
	}
}

// pageClosed reports that f — and therefore any candidate at or above it —
// can no longer enter the page (the page is full and f is at or beyond its
// maximum). Sources that yield candidates in ascending file order may stop
// once the page is closed and overflow has been recorded.
func (c *pageCollector) pageClosed(f index.FileID) bool {
	return c.limit > 0 && len(c.heap) == c.limit && f >= c.heap[0]
}

// page returns the collected files ascending and de-duplicated, plus
// whether matches beyond the page exist. (The limited path is already
// duplicate-free via the retained set; unlimited mode can still see a
// file surface from two groups around merges.)
func (c *pageCollector) page() (files []index.FileID, more bool) {
	files = c.all
	if c.limit > 0 {
		files = c.heap
	}
	return index.SortDedup(files), c.overflow
}

// maxSearchFanout caps the per-request worker pool: enough to overlap
// per-group commits and page faults, small enough that a single request
// cannot monopolize the node.
const maxSearchFanout = 8

// searchFanout returns the worker count for a pass over nACGs groups:
// Config.SearchFanout when set, else GOMAXPROCS capped at maxSearchFanout,
// never more than one worker per group.
func (n *Node) searchFanout(nACGs int) int {
	w := n.cfg.SearchFanout
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if w > maxSearchFanout {
			w = maxSearchFanout
		}
	}
	if w > nACGs {
		w = nACGs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// searchGroups runs one commit-and-query pass over the requested groups.
// With more than one worker the ACGs fan out across a bounded pool: each
// worker commits and scans whole groups under their own locks and feeds a
// private pageCollector (no shared mutable state on the scan path), and
// the per-worker pages — each at most Limit postings — merge through one
// final collector. Results are identical to the serial pass regardless of
// scheduling, because every collector keeps the smallest admissible ids.
func (n *Node) searchGroups(ctx context.Context, req proto.SearchReq, q query.Query) (proto.SearchResp, error) {
	workers := n.searchFanout(len(req.ACGs))
	if workers <= 1 {
		var resp proto.SearchResp
		col := newPageCollector(req)
		sc := newGroupScanner(n, q, req, col)
		for _, id := range req.ACGs {
			if err := ctx.Err(); err != nil {
				return proto.SearchResp{}, fmt.Errorf("indexnode search acg %d: %w", id, perr.Ctx(err))
			}
			nanos, err := n.searchOneGroup(id, req, sc)
			if err != nil {
				return proto.SearchResp{}, err
			}
			resp.CommitLatencyNanos += nanos
		}
		resp.Files, resp.More = col.page()
		resp.MaxRetained = col.maxRetained
		return resp, nil
	}

	var (
		next        atomic.Int64 // index of the next ACG to claim
		commitNanos atomic.Int64
		wg          sync.WaitGroup
		errOnce     sync.Once
		firstErr    error
	)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel() // abort the other workers' remaining groups
		})
	}
	cols := make([]*pageCollector, workers)
	for w := 0; w < workers; w++ {
		col := newPageCollector(req)
		cols[w] = col
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newGroupScanner(n, q, req, col)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(req.ACGs) {
					return
				}
				id := req.ACGs[i]
				if err := cctx.Err(); err != nil {
					fail(fmt.Errorf("indexnode search acg %d: %w", id, perr.Ctx(err)))
					return
				}
				nanos, err := n.searchOneGroup(id, req, sc)
				if err != nil {
					fail(err)
					return
				}
				// Commit windows of concurrent workers overlap on the shared
				// virtual clock (one worker's window includes the others'
				// charges), so summing them would over-report. Keep the
				// slowest window — the fork/join model the virtual clock
				// prescribes for parallel work.
				for {
					cur := commitNanos.Load()
					if nanos <= cur || commitNanos.CompareAndSwap(cur, nanos) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return proto.SearchResp{}, firstErr
	}

	// Merge the per-worker pages. Feeding each worker's (sorted, deduped,
	// <= Limit postings) page through a final collector re-applies the
	// page budget and cross-worker dedup; any worker overflow means the
	// total match count exceeds the page, so More carries over.
	var resp proto.SearchResp
	final := newPageCollector(req)
	maxRetained, more := 0, false
	for _, c := range cols {
		files, m := c.page()
		more = more || m
		if c.maxRetained > maxRetained {
			maxRetained = c.maxRetained
		}
		for _, f := range files {
			final.add(f)
		}
	}
	resp.Files, resp.More = final.page()
	resp.More = resp.More || more
	if final.maxRetained > maxRetained {
		maxRetained = final.maxRetained
	}
	resp.MaxRetained = maxRetained
	resp.CommitLatencyNanos = commitNanos.Load()
	return resp, nil
}

// searchOneGroup commits (unless lazy) and queries one group as a single
// critical section under the group's own lock, feeding matches into sc's
// collector. It returns the virtual time the commit cost.
func (n *Node) searchOneGroup(id proto.ACGID, req proto.SearchReq, sc *groupScanner) (commitNanos int64, err error) {
	g := n.lockGroup(id)
	if g == nil {
		// A released group means the caller's fan-out predates a migration
		// or recovery: silently returning nothing would hide the moved
		// group's matches, so reject with the typed stale-placement error
		// and let the client refetch. A group this node simply never saw
		// stays an empty contribution (routing slop is benign).
		if ep, gone := n.releasedEpoch(id); gone {
			n.staleRejects.Inc()
			return 0, n.staleErr(id, ep)
		}
		return 0, nil
	}
	defer g.mu.Unlock()
	if g.follower && req.Consistency != proto.ConsistencyLazy {
		// Strict reads stay primary-only: a follower serves its replication
		// stream's view, which can trail the primary's acknowledged set.
		// Lazy reads accept that staleness by definition and are served.
		n.staleRejects.Inc()
		return 0, fmt.Errorf(
			"indexnode %s: acg %d is a follower replica (node epoch %d): %w",
			n.cfg.ID, id, n.placementEpoch.Load(), perr.ErrStalePlacement)
	}
	if req.Consistency != proto.ConsistencyLazy {
		start := n.cfg.Clock.Now()
		if err := n.commitGroupLocked(g); err != nil {
			return 0, err
		}
		commitNanos = int64(n.cfg.Clock.Now() - start)
	}
	return commitNanos, sc.searchGroupLocked(g, req.IndexName)
}

// seekRunThreshold is how many consecutive same-value postings a B-tree
// scan skips linearly (cursor-filtered or lo-excluded) before issuing a
// tree seek past the run. Short runs stay on the cheap sibling walk; long
// duplicate runs cost one O(height) descent instead of O(run).
const seekRunThreshold = 8

// groupScanner executes one compiled query against successive groups,
// feeding one collector. Its closures and scratch buffers are allocated
// once per (worker, request) and reused for every group and candidate, so
// the per-group hot loop allocates nothing beyond the page reads the
// indices themselves perform.
type groupScanner struct {
	n   *Node
	q   query.Query
	col *pageCollector

	after    index.FileID
	afterSet bool

	// Per-group scan state, set by searchGroupLocked. curFile is the
	// candidate under residual evaluation; skipResidual is set when the
	// primary access path already proves every candidate it yields
	// (KD-only box queries).
	g            *group
	in           *inst
	name         string
	curFile      index.FileID
	skipResidual bool

	// Reused closures (built once in newGroupScanner).
	emit     func(index.FileID) bool
	scanEmit func(attr.Value, index.FileID) bool
	getField func(string) (attr.Value, bool)

	// Cached per-request interval for the index's field (every group of a
	// request shares one index spec, so the intersection and its bound
	// allocations happen once, not per group).
	ivInit bool
	ivOK   bool
	iv     query.Interval
	// Cached KD box (kdLo/kdHi below) and its exactness.
	kdInit  bool
	kdExact bool

	// Reused scratch: B-tree cursor and encoded bounds, KD box.
	cur          index.Cursor
	loBuf, hiBuf []byte
	kdLo, kdHi   []float64
}

func newGroupScanner(n *Node, q query.Query, req proto.SearchReq, col *pageCollector) *groupScanner {
	sc := &groupScanner{n: n, q: q, col: col, after: req.After, afterSet: req.AfterSet}
	sc.getField = func(field string) (attr.Value, bool) {
		if sc.in.kd != nil {
			for i, kf := range sc.in.spec.Fields {
				if kf != field {
					continue
				}
				if e, ok := sc.g.postings[sc.name][sc.curFile]; ok && i < len(e.KDCoords) {
					return attr.Float(e.KDCoords[i]), true
				}
			}
		}
		return sc.n.attrValue(sc.g, field, sc.curFile)
	}
	sc.emit = func(f index.FileID) bool {
		if !sc.skipResidual {
			sc.curFile = f
			if !sc.q.Matches(sc.getField) {
				return true
			}
		}
		sc.col.add(f)
		return true
	}
	sc.scanEmit = func(_ attr.Value, f index.FileID) bool { return sc.emit(f) }
	return sc
}

// searchGroupLocked runs the query against one group using the named index
// as the primary access path and the group's committed postings for the
// residual predicates. Caller holds g.mu.
func (sc *groupScanner) searchGroupLocked(g *group, indexName string) error {
	in, ok := g.indexes[indexName]
	if !ok {
		// The group never received postings for this index: no matches.
		return nil
	}
	sc.g, sc.in, sc.name = g, in, indexName
	sc.skipResidual = false
	switch {
	case in.bt != nil:
		return sc.scanBTree()
	case in.ht != nil:
		return sc.scanHash()
	case in.kd != nil:
		return sc.scanKD()
	default:
		return fmt.Errorf("%q: %w", indexName, ErrUnknownIndex)
	}
}

// scanBTree streams the index's postings in key order through the cursor.
// Pagination resumes by seek instead of scan-and-discard: an inclusive
// lower bound starts directly at (lo, After+1), and inside the scan a run
// of same-value postings at or below the cursor is skipped with one
// descent once it exceeds seekRunThreshold. Equality scans additionally
// stop early: their postings arrive in ascending file order, so once the
// page is full and overflow is recorded nothing later can matter.
func (sc *groupScanner) scanBTree() error {
	iv, ok := sc.fieldInterval()
	if !ok {
		iv = query.Interval{IncLo: true, IncHi: true} // full scan
	}
	if sc.afterSet && sc.after == math.MaxUint64 {
		return nil // no file id can exceed the cursor
	}
	var loEnc, hiEnc []byte
	if iv.Lo != nil {
		sc.loBuf = index.AppendValueKey(sc.loBuf[:0], *iv.Lo)
		loEnc = sc.loBuf
	}
	if iv.Hi != nil {
		sc.hiBuf = index.AppendValueKey(sc.hiBuf[:0], *iv.Hi)
		hiEnc = sc.hiBuf
	}
	eqScan := loEnc != nil && hiEnc != nil && iv.IncLo && iv.IncHi && bytes.Equal(loEnc, hiEnc)

	cur := &sc.cur
	cur.Reset(sc.in.bt)
	var err error
	switch {
	case loEnc != nil && iv.IncLo && sc.afterSet:
		// Postings of the lo value at or below the cursor are inadmissible;
		// resume exactly where the previous page left off.
		err = cur.SeekEncodedComposite(loEnc, sc.after+1)
	case loEnc != nil:
		err = cur.Seek(loEnc)
	default:
		err = cur.SeekFirst()
	}
	if err != nil {
		return err
	}

	var prevSkip []byte
	skipRun := 0
	for {
		valEnc, f, ok, err := cur.Next()
		if err != nil || !ok {
			return err
		}
		if loEnc != nil {
			switch c := bytes.Compare(valEnc, loEnc); {
			case c < 0:
				continue // unreachable after the seek; cheap invariant guard
			case c == 0 && !iv.IncLo:
				// Exclusive lower bound: hop past the lo run once it proves
				// long.
				skipRun++
				if skipRun == seekRunThreshold {
					if err := cur.SeekEncodedComposite(valEnc, math.MaxUint64); err != nil {
						return err
					}
					skipRun = 0
				}
				continue
			}
		}
		if hiEnc != nil {
			c := bytes.Compare(valEnc, hiEnc)
			if c > 0 || (c == 0 && !iv.IncHi) {
				return nil // keys are sorted; nothing further matches
			}
		}
		if sc.afterSet && f <= sc.after {
			// Below the page cursor. Runs of one value carry ascending file
			// ids, so the rest of a long run is skippable in one seek.
			if prevSkip != nil && bytes.Equal(prevSkip, valEnc) {
				skipRun++
			} else {
				prevSkip, skipRun = valEnc, 1
			}
			if skipRun == seekRunThreshold {
				if err := cur.SeekEncodedComposite(valEnc, sc.after+1); err != nil {
					return err
				}
				prevSkip, skipRun = nil, 0
			}
			continue
		}
		prevSkip, skipRun = nil, 0
		sc.emit(f)
		// Equality runs yield ascending file ids, so once the page is full,
		// the current id is at or beyond the page maximum and a beyond-page
		// match is recorded (More stays truthful), nothing later in this
		// group can change the page.
		if eqScan && sc.col.overflow && sc.col.pageClosed(f) {
			return nil
		}
	}
}

// scanHash serves point queries through the streaming LookupEach. Anything
// else a hash index cannot answer — it degrades to a full-table scan,
// counted in NodeStats.HashScanFallbacks so the degradation is observable
// (the planner picked the wrong index, or the index should be a B-tree).
func (sc *groupScanner) scanHash() error {
	iv, ok := sc.fieldInterval()
	if ok {
		if iv.Empty() {
			return nil // contradictory predicates (x=5 & x=7): nothing matches
		}
		if iv.Lo != nil && iv.Hi != nil && iv.IncLo && iv.IncHi && iv.Lo.Equal(*iv.Hi) {
			return sc.in.ht.LookupEach(*iv.Lo, sc.emit)
		}
	}
	sc.n.hashScanFallbacks.Inc()
	return sc.in.ht.Scan(sc.scanEmit)
}

// fieldInterval returns the query's interval for the index's field,
// computed once per request (index specs are per-name constants, so every
// group shares it).
func (sc *groupScanner) fieldInterval() (query.Interval, bool) {
	if !sc.ivInit {
		sc.iv, sc.ivOK = sc.q.FieldInterval(sc.in.spec.Field)
		sc.ivInit = true
	}
	return sc.iv, sc.ivOK
}

// scanKD streams the box query through the KD tree. When the box captures
// the whole query exactly — every predicate is on a KD-covered field with
// numeric bounds the interval represents completely — residual evaluation
// is skipped outright: no per-candidate posting-map lookups at all.
func (sc *groupScanner) scanKD() error {
	if err := sc.n.ensureKDResidentLocked(sc.in); err != nil {
		return err
	}
	if !sc.kdInit {
		sc.kdExact = sc.kdBox()
		sc.kdInit = true
	}
	sc.skipResidual = sc.kdExact && kdOnlyQuery(sc.q, sc.in.spec)
	err := sc.in.kd.RangeSearchFunc(sc.kdLo, sc.kdHi, sc.emit)
	sc.skipResidual = false
	return err
}

// kdBox fills sc.kdLo/sc.kdHi with the query's box over the index's
// dimensions and reports whether the box enforces every predicate on the
// covered fields exactly (strict bounds become the adjacent float, so
// inclusive box semantics lose nothing).
func (sc *groupScanner) kdBox() (exact bool) {
	dims := sc.in.spec.Dims()
	if cap(sc.kdLo) < dims {
		sc.kdLo = make([]float64, dims)
		sc.kdHi = make([]float64, dims)
	}
	sc.kdLo, sc.kdHi = sc.kdLo[:dims], sc.kdHi[:dims]
	exact = true
	for i, field := range sc.in.spec.Fields {
		sc.kdLo[i], sc.kdHi[i] = math.Inf(-1), math.Inf(1)
		iv, ok := sc.q.FieldInterval(field)
		if !ok {
			continue
		}
		if !iv.Exact {
			exact = false
		}
		if iv.Lo != nil {
			if !numericKind(iv.Lo.Kind()) {
				exact = false
			}
			sc.kdLo[i] = iv.Lo.AsFloat()
			if !iv.IncLo {
				sc.kdLo[i] = math.Nextafter(sc.kdLo[i], math.Inf(1))
			}
		}
		if iv.Hi != nil {
			if !numericKind(iv.Hi.Kind()) {
				exact = false
			}
			sc.kdHi[i] = iv.Hi.AsFloat()
			if !iv.IncHi {
				sc.kdHi[i] = math.Nextafter(sc.kdHi[i], math.Inf(-1))
			}
		}
	}
	return exact
}

func numericKind(k attr.Kind) bool {
	return k == attr.KindInt || k == attr.KindFloat || k == attr.KindTime
}

// kdOnlyQuery reports whether every query field is covered by the KD spec.
func kdOnlyQuery(q query.Query, spec proto.IndexSpec) bool {
	for _, p := range q.Preds {
		covered := false
		for _, f := range spec.Fields {
			if f == p.Field {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// ensureKDResidentLocked pays the prototype's whole-tree load when the KD
// image is not resident (cold query). Caller holds g.mu.
func (n *Node) ensureKDResidentLocked(in *inst) error {
	if in.kdResident {
		return nil
	}
	img := in.kdImage
	if img == nil {
		img = in.kd.Serialize()
		in.kdImage = img
	}
	kd, err := index.LoadKDTree(img, n.cfg.Disk, in.kdOffset)
	if err != nil {
		return err
	}
	in.kd = kd
	in.kdResident = true
	return nil
}
