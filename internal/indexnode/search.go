package indexnode

import (
	"context"
	"fmt"
	"math"
	"time"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/perr"
	"propeller/internal/proto"
	"propeller/internal/query"
)

// compileQuery resolves a SearchReq's predicate: structured Preds when
// present (no re-parse), otherwise the textual form. Parse failures carry
// the ErrBadQuery taxonomy via query.ErrSyntax.
func compileQuery(req proto.SearchReq) (query.Query, error) {
	if len(req.Preds) > 0 {
		return query.Query{Preds: req.Preds}, nil
	}
	return query.Parse(req.Query, time.Unix(0, req.NowUnixNano))
}

// Search answers a file-search request over the given groups. Consistency:
// under the default strict mode each group's lazy cache is committed
// synchronously before the group is queried, so results always reflect
// every acknowledged indexing request (the paper's commit-on-search rule);
// lazy mode skips the commit and reads the durable indices as-is. Each
// group is committed and queried under its own lock, so a search never
// stalls traffic on unrelated ACGs.
//
// Pagination: with req.Limit > 0 the response holds at most Limit files —
// the smallest matching FileIDs above the req.After cursor — and the node
// never retains more than one page of postings while serving the request
// (resp.MaxRetained). resp.More signals that another page exists.
//
// Cancellation: the context is checked between groups; an expired deadline
// or cancelled caller aborts the pass without scanning further groups.
func (n *Node) Search(ctx context.Context, req proto.SearchReq) (proto.SearchResp, error) {
	q, err := compileQuery(req)
	if err != nil {
		return proto.SearchResp{}, err
	}
	// A merge landing mid-pass can move files from a not-yet-visited group
	// into an already-visited one, making acknowledged files vanish from
	// the result — impossible under any serial order. Re-run the pass when
	// the merge epoch moved; merges are rare, so one pass is the norm (the
	// retry bound only guards against a pathological merge loop).
	for attempt := 0; ; attempt++ {
		epoch := n.mergeEpoch.Load()
		resp, err := n.searchGroups(ctx, req, q)
		if err != nil {
			return proto.SearchResp{}, err
		}
		if n.mergeEpoch.Load() == epoch || attempt >= 3 {
			return resp, nil
		}
	}
}

// pageCollector accumulates matching FileIDs under a page budget: the
// limit smallest ids above the cursor, tracked in a max-heap so one page
// of postings is the most ever held. Cross-group duplicates are rejected
// against the retained set (O(1) via a shadow membership map), so a
// duplicate can never evict a genuine match. With limit <= 0 it degrades
// to an unbounded accumulator (the v1 semantics).
type pageCollector struct {
	limit    int
	after    index.FileID
	afterSet bool

	heap        []index.FileID        // max-heap of the current page candidates
	retained    map[index.FileID]bool // membership shadow of heap
	all         []index.FileID        // unbounded mode
	overflow    bool                  // a match beyond the page was seen
	maxRetained int
}

func newPageCollector(req proto.SearchReq) *pageCollector {
	c := &pageCollector{limit: req.Limit, after: req.After, afterSet: req.AfterSet}
	if c.limit > 0 {
		c.retained = make(map[index.FileID]bool, c.limit)
	}
	return c
}

func (c *pageCollector) add(f index.FileID) {
	if c.afterSet && f <= c.after {
		return
	}
	if c.limit <= 0 {
		c.all = append(c.all, f)
		if len(c.all) > c.maxRetained {
			c.maxRetained = len(c.all)
		}
		return
	}
	if c.retained[f] {
		return // duplicate of a retained candidate (cross-group); drop
	}
	if len(c.heap) < c.limit {
		c.heapPush(f)
		c.retained[f] = true
		if len(c.heap) > c.maxRetained {
			c.maxRetained = len(c.heap)
		}
		return
	}
	switch root := c.heap[0]; {
	case f < root:
		// Displaces the current page maximum, which becomes a beyond-page
		// match.
		c.overflow = true
		delete(c.retained, root)
		c.heap[0] = f
		c.retained[f] = true
		c.siftDown(0)
	default:
		c.overflow = true // a match beyond this page exists
	}
}

func (c *pageCollector) heapPush(f index.FileID) {
	c.heap = append(c.heap, f)
	i := len(c.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if c.heap[parent] >= c.heap[i] {
			break
		}
		c.heap[parent], c.heap[i] = c.heap[i], c.heap[parent]
		i = parent
	}
}

func (c *pageCollector) siftDown(i int) {
	for {
		l, r, largest := 2*i+1, 2*i+2, i
		if l < len(c.heap) && c.heap[l] > c.heap[largest] {
			largest = l
		}
		if r < len(c.heap) && c.heap[r] > c.heap[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		c.heap[i], c.heap[largest] = c.heap[largest], c.heap[i]
		i = largest
	}
}

// noteMaterialized records postings a non-streaming access path (hash
// point lookup, KD box query) materialized before the collector saw them,
// so MaxRetained reports true peak buffering instead of hiding it.
func (c *pageCollector) noteMaterialized(n int) {
	if n > c.maxRetained {
		c.maxRetained = n
	}
}

// page returns the collected files ascending and de-duplicated, plus
// whether matches beyond the page exist. (The limited path is already
// duplicate-free via the retained set; unlimited mode can still see a
// file surface from two groups around merges.)
func (c *pageCollector) page() (files []index.FileID, more bool) {
	files = c.all
	if c.limit > 0 {
		files = c.heap
	}
	return index.SortDedup(files), c.overflow
}

// searchGroups runs one commit-and-query pass over the requested groups.
func (n *Node) searchGroups(ctx context.Context, req proto.SearchReq, q query.Query) (proto.SearchResp, error) {
	var resp proto.SearchResp
	col := newPageCollector(req)
	for _, id := range req.ACGs {
		if err := ctx.Err(); err != nil {
			return proto.SearchResp{}, fmt.Errorf("indexnode search acg %d: %w", id, perr.Ctx(err))
		}
		g := n.lockGroup(id)
		if g == nil {
			continue // group not on this node (stale routing); nothing to add
		}
		if req.Consistency != proto.ConsistencyLazy {
			commitStart := n.cfg.Clock.Now()
			if err := n.commitGroupLocked(g); err != nil {
				g.mu.Unlock()
				return proto.SearchResp{}, err
			}
			resp.CommitLatencyNanos += int64(n.cfg.Clock.Now() - commitStart)
		}
		err := n.searchGroupLocked(g, req.IndexName, q, col)
		g.mu.Unlock()
		if err != nil {
			return proto.SearchResp{}, err
		}
	}
	resp.Files, resp.More = col.page()
	resp.MaxRetained = col.maxRetained
	return resp, nil
}

// searchGroupLocked runs the query against one group using the named index
// as the primary access path and the group's committed postings for the
// residual predicates, feeding matches into the page collector. Caller
// holds g.mu.
func (n *Node) searchGroupLocked(g *group, indexName string, q query.Query, col *pageCollector) error {
	in, ok := g.indexes[indexName]
	if !ok {
		// The group never received postings for this index: no matches.
		return nil
	}
	spec := in.spec

	// residual evaluates the non-indexed predicates for one candidate. KD
	// fields resolve through the point's coordinates.
	residual := func(f index.FileID) bool {
		return q.Matches(func(field string) (attr.Value, bool) {
			if in.kd != nil {
				for i, kf := range spec.Fields {
					if kf != field {
						continue
					}
					if e, ok := g.postings[indexName][f]; ok && i < len(e.KDCoords) {
						return attr.Float(e.KDCoords[i]), true
					}
				}
			}
			return n.attrValue(g, field, f)
		})
	}
	emit := func(f index.FileID) {
		if residual(f) {
			col.add(f)
		}
	}

	switch {
	case in.bt != nil:
		lo, hi, incLo, incHi, ok := q.Range(spec.Field)
		if !ok {
			lo, hi, incLo, incHi = nil, nil, true, true // full scan
		}
		// ScanRange streams candidates one at a time, so only the page
		// collector's bounded buffer is ever materialized.
		return in.bt.ScanRange(lo, hi, incLo, incHi, func(_ attr.Value, f index.FileID) bool {
			emit(f)
			return true
		})
	case in.ht != nil:
		lo, hi, _, _, ok := q.Range(spec.Field)
		if ok && lo != nil && hi != nil && lo.Equal(*hi) {
			candidates, err := in.ht.Lookup(*lo)
			if err != nil {
				return err
			}
			col.noteMaterialized(len(candidates))
			for _, f := range candidates {
				emit(f)
			}
			return nil
		}
		// Hash tables only serve point queries; fall back to a scan.
		return in.ht.Scan(func(_ attr.Value, f index.FileID) bool {
			emit(f)
			return true
		})
	case in.kd != nil:
		candidates, err := n.kdSearchLocked(in, q)
		if err != nil {
			return err
		}
		col.noteMaterialized(len(candidates))
		for _, f := range candidates {
			emit(f)
		}
		return nil
	default:
		return fmt.Errorf("%q: %w", indexName, ErrUnknownIndex)
	}
}

// kdOnlyQuery reports whether every query field is covered by the KD spec.
func (n *Node) kdOnlyQuery(q query.Query, spec proto.IndexSpec) bool {
	covered := make(map[string]bool, len(spec.Fields))
	for _, f := range spec.Fields {
		covered[f] = true
	}
	for _, p := range q.Preds {
		if !covered[p.Field] {
			return false
		}
	}
	return true
}

// kdSearchLocked queries the KD index, charging the prototype's whole-tree
// load when the image is not resident (cold query).
func (n *Node) kdSearchLocked(in *inst, q query.Query) ([]index.FileID, error) {
	if !in.kdResident {
		img := in.kdImage
		if img == nil {
			img = in.kd.Serialize()
			in.kdImage = img
		}
		kd, err := index.LoadKDTree(img, n.cfg.Disk, in.kdOffset)
		if err != nil {
			return nil, err
		}
		in.kd = kd
		in.kdResident = true
	}
	dims := in.spec.Dims()
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for i, field := range in.spec.Fields {
		l, h, _, _, ok := q.Range(field)
		if !ok {
			lo[i], hi[i] = math.Inf(-1), math.Inf(1)
			continue
		}
		if l != nil {
			lo[i] = l.AsFloat()
		} else {
			lo[i] = math.Inf(-1)
		}
		if h != nil {
			hi[i] = h.AsFloat()
		} else {
			hi[i] = math.Inf(1)
		}
	}
	return in.kd.RangeSearch(lo, hi)
}
