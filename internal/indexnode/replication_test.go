package indexnode

import (
	"context"
	"errors"
	"testing"
	"time"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/perr"
	"propeller/internal/proto"
	"propeller/internal/wal"
)

// seedFollower makes node b a streaming follower of a's group: the same
// ReplicateACG order the Master's heartbeat reply would carry.
func seedFollower(t *testing.T, r *transferRig, acg proto.ACGID) {
	t.Helper()
	if err := r.a.ReplicateACG(context.Background(), proto.MigrateOrder{
		ACG: acg, Dest: r.b.cfg.ID, Addr: "pipe:in-b",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicateACGSeedsFollowerAndStreams(t *testing.T) {
	r := newTransferRig(t)
	ctx := context.Background()
	seedTransferGroup(t, r.a, 1, 20)
	seedFollower(t, r, 1)

	// The follower holds a copy and reports itself as one.
	st, err := r.b.NodeStats(ctx, proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.FollowerGroups != 1 {
		t.Fatalf("follower groups on b = %d, want 1", st.FollowerGroups)
	}

	// Every further acknowledged update on the primary streams to the
	// follower synchronously.
	for i := 20; i < 30; i++ {
		if _, err := r.a.Update(ctx, proto.UpdateReq{
			ACG: 1, IndexName: "size",
			Entries: []proto.IndexEntry{{File: index.FileID(i), Value: attr.Int(int64(i))}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	st, err = r.b.NodeStats(ctx, proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.FollowerAppends != 10 {
		t.Errorf("follower appends = %d, want 10 (one per acked update)", st.FollowerAppends)
	}

	// The streamed state is the acknowledged state: after the follower's
	// own lazy-cache commit (its tick), a lazy search on the follower sees
	// every acknowledged file.
	r.clk.Advance(10 * time.Second)
	if err := r.b.Tick(); err != nil {
		t.Fatal(err)
	}
	resp, err := r.b.Search(ctx, proto.SearchReq{
		ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>=0",
		Consistency: proto.ConsistencyLazy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 30 {
		t.Errorf("lazy search on follower = %d files, want 30", len(resp.Files))
	}

	// A duplicate replicate order is a no-op, not a re-seed.
	seedFollower(t, r, 1)
	g := r.a.lockGroup(1)
	reps := len(g.reps)
	g.mu.Unlock()
	if reps != 1 {
		t.Errorf("duplicate replicate order grew the ack set to %d", reps)
	}
}

func TestFollowerRejectsDirectTrafficTyped(t *testing.T) {
	r := newTransferRig(t)
	ctx := context.Background()
	seedTransferGroup(t, r.a, 1, 5)
	seedFollower(t, r, 1)

	// Updates routed to the follower bounce typed before any WAL append.
	if _, err := r.b.Update(ctx, proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 99, Value: attr.Int(99)}},
	}); !errors.Is(err, perr.ErrStalePlacement) {
		t.Errorf("update on follower = %v, want ErrStalePlacement", err)
	}
	// Strict searches bounce typed too (the follower may trail the
	// primary's acknowledged set).
	if _, err := r.b.Search(ctx, proto.SearchReq{
		ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>=0",
	}); !errors.Is(err, perr.ErrStalePlacement) {
		t.Errorf("strict search on follower = %v, want ErrStalePlacement", err)
	}
	// And a stale primary's stream is refused typed once the copy is no
	// longer a follower (zombie-primary fencing).
	if err := r.b.PromoteACG(ctx, proto.PromoteOrder{ACG: 1, Seq: 5}); err != nil {
		t.Fatal(err)
	}
	rec, err := encodeWALRecord(proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 100, Value: attr.Int(100)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.b.FollowerAppend(ctx, proto.FollowerAppendReq{
		ACG: 1, Frames: wal.FrameRecord(rec), Seq: 6,
	}); !errors.Is(err, perr.ErrStalePlacement) {
		t.Errorf("stale primary's append = %v, want ErrStalePlacement", err)
	}
}

func TestFollowerAppendDuplicateAndGap(t *testing.T) {
	r := newTransferRig(t)
	ctx := context.Background()
	seedTransferGroup(t, r.a, 1, 5) // primary at stream position 5
	seedFollower(t, r, 1)

	rec, err := encodeWALRecord(proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 50, Value: attr.Int(50)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	framed := wal.FrameRecord(rec)

	// A duplicate (already-applied position) is acknowledged as a no-op.
	resp, err := r.b.FollowerAppend(ctx, proto.FollowerAppendReq{ACG: 1, Frames: framed, Seq: 5})
	if err != nil {
		t.Fatalf("duplicate append should be a no-op, got %v", err)
	}
	if resp.Seq != 5 {
		t.Errorf("duplicate append returned seq %d, want 5", resp.Seq)
	}
	// A gap (position 7 when 6 is next) is refused so the primary cuts us.
	if _, err := r.b.FollowerAppend(ctx, proto.FollowerAppendReq{ACG: 1, Frames: framed, Seq: 7}); err == nil {
		t.Error("stream gap should be refused")
	}
	// The next contiguous position applies.
	resp, err = r.b.FollowerAppend(ctx, proto.FollowerAppendReq{ACG: 1, Frames: framed, Seq: 6})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 6 {
		t.Errorf("append returned seq %d, want 6", resp.Seq)
	}
}

// TestPromoteACGReconcilesAcknowledgedTail is the loss-window guard: a
// follower cut from the ack set misses frames that were still acknowledged
// (they reached the shared mirror). Promotion must reconcile that tail
// from the mirror — incrementally, not as a replay recovery.
func TestPromoteACGReconcilesAcknowledgedTail(t *testing.T) {
	r := newTransferRig(t)
	ctx := context.Background()
	seedTransferGroup(t, r.a, 1, 10)
	seedFollower(t, r, 1)

	// Cut the follower from the primary's ack set, then acknowledge more
	// updates: they reach the primary and the shared mirror only.
	g := r.a.lockGroup(1)
	g.reps = nil
	seq := g.replSeq
	g.mu.Unlock()
	for i := 10; i < 20; i++ {
		if _, err := r.a.Update(ctx, proto.UpdateReq{
			ACG: 1, IndexName: "size",
			Entries: []proto.IndexEntry{{File: index.FileID(i), Value: attr.Int(int64(i))}},
		}); err != nil {
			t.Fatal(err)
		}
	}

	// The primary dies; the Master promotes the (cut) follower with the
	// primary's last *reported* position — which predates the cut tail.
	if err := r.b.PromoteACG(ctx, proto.PromoteOrder{ACG: 1, Seq: seq}); err != nil {
		t.Fatal(err)
	}
	resp, err := r.b.Search(ctx, proto.SearchReq{
		ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>=0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 20 {
		t.Fatalf("post-promotion search = %d files, want 20 (acknowledged tail lost)", len(resp.Files))
	}
	st, err := r.b.NodeStats(ctx, proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Promotions != 1 {
		t.Errorf("promotions = %d, want 1", st.Promotions)
	}
	if st.GroupsRecovered != 0 {
		t.Errorf("promotion counted as replay recovery (GroupsRecovered = %d)", st.GroupsRecovered)
	}
	// The promoted primary serves updates and owns the shared mirror again.
	if _, err := r.b.Update(ctx, proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 100, Value: attr.Int(100)}},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerNeverWritesSharedMirror pins mirror ownership: follower
// appends must not grow the group's shared WAL (the primary already
// mirrored those records; double-appending would duplicate them on
// recovery), and a follower commit must not checkpoint.
func TestFollowerNeverWritesSharedMirror(t *testing.T) {
	r := newTransferRig(t)
	ctx := context.Background()
	seedTransferGroup(t, r.a, 1, 5)
	seedFollower(t, r, 1)

	walBefore := r.shared.WALRecords(1)
	for i := 5; i < 10; i++ {
		if _, err := r.a.Update(ctx, proto.UpdateReq{
			ACG: 1, IndexName: "size",
			Entries: []proto.IndexEntry{{File: index.FileID(i), Value: attr.Int(int64(i))}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := r.shared.WALRecords(1)-walBefore, 5; got != want {
		t.Errorf("shared WAL grew by %d records for 5 acked updates, want %d (follower must not double-append)", got, want)
	}
	// A follower tick commits its lazy cache locally without checkpointing
	// (which would truncate the mirror's WAL out from under the primary).
	walNow := r.shared.WALRecords(1)
	r.clk.Advance(10 * time.Second)
	if err := r.b.Tick(); err != nil {
		t.Fatal(err)
	}
	if r.shared.WALRecords(1) != walNow {
		t.Errorf("follower commit moved the shared WAL (%d → %d records)", walNow, r.shared.WALRecords(1))
	}
}
