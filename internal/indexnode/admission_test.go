package indexnode

import (
	"context"
	"errors"
	"sync"
	"testing"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/metrics"
	"propeller/internal/perr"
	"propeller/internal/proto"
)

func TestAdmissionOverloadHardLimit(t *testing.T) {
	var fair metrics.Counter
	a := newAdmission(4, &fair)
	// Four distinct tenants fill the queue — each within its fair share.
	for _, c := range []string{"a", "b", "c", "d"} {
		if err := a.acquire(c); err != nil {
			t.Fatalf("acquire %s: %v", c, err)
		}
	}
	// At the hard limit even a brand-new tenant is shed.
	if err := a.acquire("e"); !errors.Is(err, perr.ErrOverloaded) {
		t.Fatalf("acquire at limit = %v, want ErrOverloaded", err)
	}
	a.release("a")
	if d := a.depth(); d != 3 {
		t.Fatalf("depth after release = %d, want 3", d)
	}
}

func TestAdmissionFairnessProtectsLightTenant(t *testing.T) {
	var fair metrics.Counter
	a := newAdmission(8, &fair)
	// A lone flooder is capped at its fair share — half the queue, since
	// one newcomer share is always reserved — not at the hard limit.
	hot := 0
	for ; hot < 16; hot++ {
		if err := a.acquire("hot"); err != nil {
			if !errors.Is(err, perr.ErrOverloaded) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
	}
	if hot != 4 {
		t.Fatalf("flooder admitted %d ops, want 4 (half of limit 8)", hot)
	}
	if fair.Value() == 0 {
		t.Error("flooder's shed should count as a fairness shed")
	}
	// The light tenant's first op still gets in — that is the point.
	if err := a.acquire("cold"); err != nil {
		t.Fatalf("light tenant shed alongside a capped flooder: %v", err)
	}
	if d := a.depth(); d != 5 {
		t.Fatalf("depth = %d, want 5", d)
	}
}

func TestAdmissionAnonymousClientsPoolAsOneTenant(t *testing.T) {
	var fair metrics.Counter
	a := newAdmission(8, &fair)
	for i := 0; i < 4; i++ {
		if err := a.acquire(""); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if err := a.acquire(""); !errors.Is(err, perr.ErrOverloaded) {
		t.Fatalf("anonymous pool over share = %v, want ErrOverloaded", err)
	}
}

func TestAdmissionDisabledAdmitsEverything(t *testing.T) {
	var a *admission // nil: MaxInflight 0
	for i := 0; i < 100; i++ {
		if err := a.acquire("c"); err != nil {
			t.Fatal(err)
		}
	}
	a.release("c")
	if a.depth() != 0 {
		t.Fatal("nil admission must report depth 0")
	}
}

func TestAdmissionOverloadConcurrency(t *testing.T) {
	var fair metrics.Counter
	a := newAdmission(8, &fair)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := string(rune('a' + g%4))
			for i := 0; i < 500; i++ {
				if err := a.acquire(client); err == nil {
					a.release(client)
				}
			}
		}(g)
	}
	wg.Wait()
	if d := a.depth(); d != 0 {
		t.Fatalf("depth after all releases = %d, want 0", d)
	}
}

// TestUpdateOverloadSheds proves the node-level contract: a shed update
// carries the typed error across the handler boundary, was never logged,
// and the shed counters and queue depth surface in NodeStats.
func TestUpdateOverloadSheds(t *testing.T) {
	n, _ := newTestNode(t, func(c *Config) { c.MaxInflight = 2 })
	n.DeclareIndex(sizeSpec)

	// Occupy the whole queue from a flooding tenant.
	if err := n.adm.acquire("hot"); err != nil {
		t.Fatal(err)
	}
	if err := n.adm.acquire("hot2"); err != nil {
		t.Fatal(err)
	}
	_, err := n.Update(context.Background(), proto.UpdateReq{
		ACG: 1, IndexName: "size", Client: "hot",
		Entries: []proto.IndexEntry{{File: 1, Value: attr.Int(1)}},
	})
	if !errors.Is(err, perr.ErrOverloaded) {
		t.Fatalf("update at limit = %v, want ErrOverloaded", err)
	}
	_, err = n.Search(context.Background(), proto.SearchReq{
		ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>0", Client: "hot",
	})
	if !errors.Is(err, perr.ErrOverloaded) {
		t.Fatalf("search at limit = %v, want ErrOverloaded", err)
	}

	st, err := n.NodeStats(context.Background(), proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.UpdatesShed != 1 || st.SearchesShed != 1 {
		t.Errorf("sheds = %d/%d, want 1/1", st.UpdatesShed, st.SearchesShed)
	}
	if st.QueueDepth != 2 {
		t.Errorf("queue depth = %d, want 2", st.QueueDepth)
	}
	if st.WALRecords != 0 {
		t.Errorf("a shed update must never reach the WAL (records = %d)", st.WALRecords)
	}

	// Draining the queue re-admits: the shed was overload, not data loss.
	n.adm.release("hot")
	n.adm.release("hot2")
	if _, err := n.Update(context.Background(), proto.UpdateReq{
		ACG: 1, IndexName: "size", Client: "hot",
		Entries: []proto.IndexEntry{{File: 1, Value: attr.Int(1)}},
	}); err != nil {
		t.Fatalf("update after drain: %v", err)
	}
	resp, err := n.Search(context.Background(), proto.SearchReq{
		ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>0", Client: "hot",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 1 || resp.Files[0] != index.FileID(1) {
		t.Errorf("files after retry = %v, want [1]", resp.Files)
	}
}
