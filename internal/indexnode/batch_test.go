package indexnode

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/proto"
)

// Equivalence contract of the batch commit engine: absorbing a whole
// commit window at once — coalesced per (index, file), bulk-merged into
// the indices, one KD rebuild — must leave exactly the state that
// replaying the acknowledged entries one commit per entry leaves. The
// property test below drives randomized update/delete/re-index sequences
// over all three index structures into both configurations and compares
// committed postings, query results through every access path, and the
// NodeStats entry accounting.

var batchSpecs = []proto.IndexSpec{
	{Name: "size", Type: proto.IndexBTree, Field: "size"},
	{Name: "tag", Type: proto.IndexHash, Field: "tag"},
	{Name: "pt", Type: proto.IndexKD, Fields: []string{"x", "y"}},
}

// randomBatchOps generates a reproducible op sequence: each op is one
// IndexEntry against one of the three indexes on one of two ACGs.
type batchOp struct {
	acg  proto.ACGID
	name string
	e    proto.IndexEntry
}

func randomBatchOps(rng *rand.Rand, nOps int) []batchOp {
	ops := make([]batchOp, 0, nOps)
	for i := 0; i < nOps; i++ {
		spec := batchSpecs[rng.Intn(len(batchSpecs))]
		f := index.FileID(rng.Intn(25) + 1)
		e := proto.IndexEntry{File: f}
		switch {
		case rng.Intn(10) < 4: // delete
			e.Delete = true
		case spec.Type == proto.IndexKD:
			e.KDCoords = []float64{float64(rng.Intn(50)), float64(rng.Intn(50))}
		default:
			e.Value = attr.Int(int64(rng.Intn(40)))
		}
		ops = append(ops, batchOp{acg: proto.ACGID(rng.Intn(2) + 1), name: spec.Name, e: e})
	}
	return ops
}

// groupPostings snapshots a group's committed postings for one index.
func groupPostings(t *testing.T, n *Node, id proto.ACGID, name string) map[index.FileID]proto.IndexEntry {
	t.Helper()
	g := n.lockGroup(id)
	if g == nil {
		return nil
	}
	defer g.mu.Unlock()
	out := make(map[index.FileID]proto.IndexEntry, len(g.postings[name]))
	for f, e := range g.postings[name] {
		out[f] = e
	}
	return out
}

func searchFiles(t *testing.T, n *Node, req proto.SearchReq) []index.FileID {
	t.Helper()
	resp, err := n.Search(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return resp.Files
}

func sameFiles(a, b []index.FileID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBatchedCommitMatchesPerEntryReplay(t *testing.T) {
	acgs := []proto.ACGID{1, 2}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ops := randomBatchOps(rand.New(rand.NewSource(seed)), 400)

			// Batched: everything lands in one commit window per group.
			batched, bclk := newTestNode(t, func(c *Config) { c.CacheLimit = 1 << 30 })
			// Per-entry: one entry per update, committed synchronously.
			perEntry, _ := newTestNode(t, func(c *Config) { c.DisableLazyCache = true })
			for _, spec := range batchSpecs {
				batched.DeclareIndex(spec)
				perEntry.DeclareIndex(spec)
			}
			for _, op := range ops {
				req := proto.UpdateReq{ACG: op.acg, IndexName: op.name, Entries: []proto.IndexEntry{op.e}}
				if _, err := batched.Update(context.Background(), req); err != nil {
					t.Fatal(err)
				}
				if _, err := perEntry.Update(context.Background(), req); err != nil {
					t.Fatal(err)
				}
			}
			bclk.Advance(6 * time.Second)
			if err := batched.Tick(); err != nil {
				t.Fatal(err)
			}

			// Committed postings are identical per (ACG, index, file).
			for _, id := range acgs {
				for _, spec := range batchSpecs {
					got := groupPostings(t, batched, id, spec.Name)
					want := groupPostings(t, perEntry, id, spec.Name)
					if len(got) != len(want) {
						t.Fatalf("acg %d %q: %d postings vs %d", id, spec.Name, len(got), len(want))
					}
					for f, e := range want {
						ge, ok := got[f]
						if !ok {
							t.Fatalf("acg %d %q: file %d missing after batch commit", id, spec.Name, f)
						}
						if spec.Type == proto.IndexKD {
							if len(ge.KDCoords) != len(e.KDCoords) {
								t.Fatalf("acg %d %q file %d: coords differ", id, spec.Name, f)
							}
							for i := range e.KDCoords {
								if ge.KDCoords[i] != e.KDCoords[i] {
									t.Fatalf("acg %d %q file %d: coords differ", id, spec.Name, f)
								}
							}
						} else if !ge.Value.Equal(e.Value) {
							t.Fatalf("acg %d %q file %d: value %v vs %v", id, spec.Name, f, ge.Value, e.Value)
						}
					}
				}
			}

			// Every access path answers identically: B-tree range scan,
			// hash point lookups, KD box query.
			queries := []proto.SearchReq{
				{ACGs: acgs, IndexName: "size", Query: "size>=0"},
				{ACGs: acgs, IndexName: "size", Query: "size>10 & size<30"},
				{ACGs: acgs, IndexName: "pt", Query: "x>=0 & y>=0"},
				{ACGs: acgs, IndexName: "pt", Query: "x>10 & y<40"},
			}
			for v := 0; v < 40; v++ {
				queries = append(queries, proto.SearchReq{
					ACGs: acgs, IndexName: "tag", Query: fmt.Sprintf("tag=%d", v),
				})
			}
			for _, q := range queries {
				got := searchFiles(t, batched, q)
				want := searchFiles(t, perEntry, q)
				if !sameFiles(got, want) {
					t.Fatalf("query %q: %v vs %v", q.Query, got, want)
				}
			}

			// Entry accounting matches: both nodes absorbed every
			// acknowledged entry, and nothing is left cached.
			bst, err := batched.NodeStats(context.Background(), proto.NodeStatsReq{})
			if err != nil {
				t.Fatal(err)
			}
			pst, err := perEntry.NodeStats(context.Background(), proto.NodeStatsReq{})
			if err != nil {
				t.Fatal(err)
			}
			if bst.CommitEntries != pst.CommitEntries || bst.CommitEntries != int64(len(ops)) {
				t.Fatalf("CommitEntries: batched %d, per-entry %d, want %d",
					bst.CommitEntries, pst.CommitEntries, len(ops))
			}
			if bst.CachedOps != 0 || pst.CachedOps != 0 {
				t.Fatalf("cached ops after commit: batched %d, per-entry %d", bst.CachedOps, pst.CachedOps)
			}
			if bst.CommitFailures != 0 || pst.CommitFailures != 0 {
				t.Fatalf("commit failures: batched %d, per-entry %d", bst.CommitFailures, pst.CommitFailures)
			}
			// The batched node coalesced every superseded arrival; the
			// per-entry node never had the chance.
			if bst.CoalescedEntries == 0 {
				t.Error("400 ops over 25 files should coalesce some entries")
			}
			if pst.CoalescedEntries != 0 {
				t.Errorf("per-entry node coalesced %d entries, want 0", pst.CoalescedEntries)
			}
		})
	}
}

// TestDeleteHeavyKDCommitRebuildsOnce pins the deferred-rebuild contract:
// a commit window holding many KD deletes (and re-indexed points) costs
// exactly one rebuild, not one per entry.
func TestDeleteHeavyKDCommitRebuildsOnce(t *testing.T) {
	n, clk := newTestNode(t, func(c *Config) { c.CacheLimit = 1 << 30 })
	n.DeclareIndex(proto.IndexSpec{Name: "pt", Type: proto.IndexKD, Fields: []string{"x", "y"}})
	seed := make([]proto.IndexEntry, 500)
	for i := range seed {
		seed[i] = proto.IndexEntry{File: index.FileID(i + 1), KDCoords: []float64{float64(i), float64(i)}}
	}
	if _, err := n.Update(context.Background(), proto.UpdateReq{ACG: 1, IndexName: "pt", Entries: seed}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(6 * time.Second)
	if err := n.Tick(); err != nil {
		t.Fatal(err)
	}
	base, _ := n.NodeStats(context.Background(), proto.NodeStatsReq{})
	if base.KDRebuilds != 0 {
		t.Fatalf("insert-only seed commit performed %d rebuilds, want 0", base.KDRebuilds)
	}

	// One window: 100 deletes plus 50 re-indexed points.
	win := make([]proto.IndexEntry, 0, 150)
	for i := 0; i < 100; i++ {
		win = append(win, proto.IndexEntry{File: index.FileID(i + 1), Delete: true})
	}
	for i := 100; i < 150; i++ {
		win = append(win, proto.IndexEntry{File: index.FileID(i + 1), KDCoords: []float64{float64(-i), float64(i)}})
	}
	if _, err := n.Update(context.Background(), proto.UpdateReq{ACG: 1, IndexName: "pt", Entries: win}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(6 * time.Second)
	if err := n.Tick(); err != nil {
		t.Fatal(err)
	}
	st, _ := n.NodeStats(context.Background(), proto.NodeStatsReq{})
	if got := st.KDRebuilds - base.KDRebuilds; got != 1 {
		t.Fatalf("delete-heavy commit performed %d rebuilds, want exactly 1", got)
	}
	// And the index answers correctly after the single rebuild.
	resp, err := n.Search(context.Background(), proto.SearchReq{
		ACGs: []proto.ACGID{1}, IndexName: "pt", Query: "x>=0 & y>=0",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 500 - 100 - 50 // survivors on the diagonal (re-indexed points moved to x<0)
	if len(resp.Files) != want {
		t.Fatalf("box query found %d files, want %d", len(resp.Files), want)
	}
}

// TestUpdateRejectsBadKDDims locks in the ack-time guard: a KD point
// whose dimensionality does not match the spec is rejected before the
// acknowledgement instead of wedging every later commit of its group.
func TestUpdateRejectsBadKDDims(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(proto.IndexSpec{Name: "pt", Type: proto.IndexKD, Fields: []string{"x", "y"}})
	if _, err := n.Update(context.Background(), proto.UpdateReq{
		ACG: 1, IndexName: "pt",
		Entries: []proto.IndexEntry{{File: 1, KDCoords: []float64{1, 2, 3}}},
	}); err == nil {
		t.Fatal("3-coord point against a 2-dim spec must be rejected at ack time")
	}
	if st, _ := n.NodeStats(context.Background(), proto.NodeStatsReq{}); st.CachedOps != 0 {
		t.Fatalf("rejected entry was cached: CachedOps = %d", st.CachedOps)
	}
	// Deletes carry no coords and stay acceptable.
	if _, err := n.Update(context.Background(), proto.UpdateReq{
		ACG: 1, IndexName: "pt",
		Entries: []proto.IndexEntry{{File: 1, Delete: true}},
	}); err != nil {
		t.Fatalf("kd delete rejected: %v", err)
	}
}

// TestTickContinuesPastWedgedGroup locks in the sweep contract: one
// group whose commit fails must not stall the commits of every other
// group, and the failure is counted in NodeStats.
func TestTickContinuesPastWedgedGroup(t *testing.T) {
	n, clk := newTestNode(t, func(c *Config) { c.CacheLimit = 1 << 30 })
	n.DeclareIndex(sizeSpec)
	n.DeclareIndex(proto.IndexSpec{Name: "pt", Type: proto.IndexKD, Fields: []string{"x", "y"}})

	// Group 1 wedges: a KD entry whose coords don't match the spec's
	// dimensionality fails at apply time. Update rejects such entries at
	// ack time, so inject it straight into the pending cache — the shape
	// of a corrupt entry arriving via WAL recovery.
	g, err := n.lockOrCreateGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	n.addPendingLocked(g, "pt", proto.IndexEntry{File: 1, KDCoords: []float64{1, 2, 3}}, nil)
	g.lastUpdate = n.cfg.Clock.Now()
	g.mu.Unlock()
	// Group 2 is healthy.
	if _, err := n.Update(context.Background(), proto.UpdateReq{
		ACG: 2, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 2, Value: attr.Int(7)}},
	}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(6 * time.Second)
	err = n.Tick()
	if err == nil {
		t.Fatal("tick over a wedged group must report its error")
	}
	st, serr := n.NodeStats(context.Background(), proto.NodeStatsReq{})
	if serr != nil {
		t.Fatal(serr)
	}
	if st.CommitFailures != 1 {
		t.Fatalf("CommitFailures = %d, want 1", st.CommitFailures)
	}
	// The healthy group committed despite the wedge: only group 1's
	// entry is still cached.
	if st.CachedOps != 1 {
		t.Fatalf("CachedOps = %d, want 1 (only the wedged group's entry)", st.CachedOps)
	}
	if files := searchFiles(t, n, proto.SearchReq{ACGs: []proto.ACGID{2}, IndexName: "size", Query: "size=7"}); len(files) != 1 || files[0] != 2 {
		t.Fatalf("healthy group's commit lost: search = %v", files)
	}
}

// TestCoalescingCollapsesReindexWindow checks the write-path accounting:
// a file re-indexed many times in one window is one pending survivor and
// one committed index mutation, while CommitEntries still counts every
// acknowledged arrival.
func TestCoalescingCollapsesReindexWindow(t *testing.T) {
	n, clk := newTestNode(t, func(c *Config) { c.CacheLimit = 1 << 30 })
	n.DeclareIndex(sizeSpec)
	const rounds = 20
	for r := 0; r < rounds; r++ {
		if _, err := n.Update(context.Background(), proto.UpdateReq{
			ACG: 1, IndexName: "size",
			Entries: []proto.IndexEntry{{File: 1, Value: attr.Int(int64(r))}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := n.NodeStats(context.Background(), proto.NodeStatsReq{})
	if st.CachedOps != rounds {
		t.Fatalf("CachedOps = %d, want %d (arrival accounting)", st.CachedOps, rounds)
	}
	if st.CoalescedEntries != rounds-1 {
		t.Fatalf("CoalescedEntries = %d, want %d", st.CoalescedEntries, rounds-1)
	}
	clk.Advance(6 * time.Second)
	if err := n.Tick(); err != nil {
		t.Fatal(err)
	}
	st, _ = n.NodeStats(context.Background(), proto.NodeStatsReq{})
	if st.CommitEntries != rounds {
		t.Fatalf("CommitEntries = %d, want %d", st.CommitEntries, rounds)
	}
	// Only the final value survives in the index.
	for r := 0; r < rounds-1; r++ {
		if files := searchFiles(t, n, proto.SearchReq{
			ACGs: []proto.ACGID{1}, IndexName: "size", Query: fmt.Sprintf("size=%d", r),
		}); len(files) != 0 {
			t.Fatalf("intermediate value %d still indexed: %v", r, files)
		}
	}
	if files := searchFiles(t, n, proto.SearchReq{
		ACGs: []proto.ACGID{1}, IndexName: "size", Query: fmt.Sprintf("size=%d", rounds-1),
	}); len(files) != 1 || files[0] != 1 {
		t.Fatalf("final value lookup = %v, want [1]", files)
	}
}
