package indexnode

import (
	"context"
	"fmt"

	"propeller/internal/perr"
	"propeller/internal/proto"
	"propeller/internal/rpc"
)

// This file implements the node side of k-way ACG replication: a primary
// streams every acknowledged WAL frame to its follower replicas
// synchronously (ReplicateACG seeds a copy, streamToFollowersLocked keeps
// it caught up, FollowerAppend is the receiving half), and a Master promote
// order turns a follower into the primary without replaying shared storage
// (PromoteACG). Acknowledged durability for a replicated group is primary
// WAL append + shared-store mirror + follower appends; a follower whose
// append fails is cut from the ack set and re-seeded by the Master, with
// the shared mirror covering the gap.

// maxPeerConns caps the peer connection cache. A node that has streamed to
// many peers over its lifetime (reshuffled follower sets, churned
// placements) would otherwise pin one multiplexed conn per peer forever.
const maxPeerConns = 32

// peerConn returns a cached connection to a peer node, dialing on first
// use. Follower streaming is per-update, so unlike the one-shot transfer
// paths it must not pay a dial per call. A connection observed closed is
// evicted and redialed. The cache is LRU-bounded at maxPeerConns: adding a
// new peer at capacity closes the least-recently-used conn (counted in
// NodeStats.PeerConnEvictions) — its peer redials on next use.
func (n *Node) peerConn(ctx context.Context, addr string) (*rpc.Client, error) {
	if n.cfg.Dial == nil {
		return nil, fmt.Errorf("indexnode %s: no dialer for peer %s", n.cfg.ID, addr)
	}
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	if e := n.peers[addr]; e != nil && !e.c.Closed() {
		n.peerUse++
		e.lastUse = n.peerUse
		return e.c, nil
	}
	c, err := n.cfg.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	if n.peers == nil {
		n.peers = make(map[string]*peerEntry)
	}
	for len(n.peers) >= maxPeerConns {
		n.evictLRUPeerLocked()
	}
	n.peerUse++
	n.peers[addr] = &peerEntry{c: c, lastUse: n.peerUse}
	return c, nil
}

// evictLRUPeerLocked closes and removes the least-recently-used cached
// peer connection. Caller holds peerMu and has checked the cache is
// non-empty.
func (n *Node) evictLRUPeerLocked() {
	var victim string
	var oldest uint64
	first := true
	for addr, e := range n.peers {
		if first || e.lastUse < oldest {
			victim, oldest, first = addr, e.lastUse, false
		}
	}
	if e := n.peers[victim]; e != nil {
		e.c.Close() //nolint:errcheck // best-effort teardown
		delete(n.peers, victim)
		n.peerConnEvictions.Inc()
	}
}

// dropPeer evicts (and closes) a cached peer connection after a failed
// call, so the next use redials instead of reusing a broken pipe. Failure
// drops are not LRU evictions and do not count as such.
func (n *Node) dropPeer(addr string) {
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	if e := n.peers[addr]; e != nil {
		e.c.Close() //nolint:errcheck // best-effort teardown
		delete(n.peers, addr)
	}
}

// streamToFollowersLocked streams one acknowledged framed WAL record to
// every follower in the group's ack set, synchronously — the ack the
// caller is about to send promises follower-append durability. A follower
// that fails or refuses the append is cut from the ack set; the update
// still acknowledges on the survivors, because the shared-store mirror
// (written before this call) holds the frame regardless. The cut follower
// disappears from the next heartbeat's Followers list, so the Master
// unseeds it, drops it from routes and promotion picks, and re-seeds it.
// Caller holds g.mu.
func (n *Node) streamToFollowersLocked(ctx context.Context, g *group, framed []byte) {
	kept := g.reps[:0]
	for _, rep := range g.reps {
		if err := n.followerAppend(ctx, rep, g.id, framed, g.replSeq); err != nil {
			n.followerCuts.Inc()
			n.dropPeer(rep.Addr)
			continue
		}
		kept = append(kept, rep)
	}
	g.reps = kept
}

func (n *Node) followerAppend(ctx context.Context, rep proto.ReplicaRef, id proto.ACGID, framed []byte, seq uint64) error {
	peer, err := n.peerConn(ctx, rep.Addr)
	if err != nil {
		return err
	}
	_, err = rpc.Call[proto.FollowerAppendReq, proto.FollowerAppendResp](
		ctx, peer, proto.MethodFollowerAppend,
		proto.FollowerAppendReq{ACG: id, Frames: framed, Seq: seq, Epoch: n.epoch()})
	return err
}

// FollowerAppend applies one frame of a primary's replication stream to
// this node's follower copy: local WAL append plus lazy-cache insert, the
// same two steps the primary's own ack performs. Sequence numbers keep the
// stream contiguous — a duplicate (re-sent frame) is acknowledged as a
// no-op, a gap is refused so the primary cuts this follower and the Master
// re-seeds it rather than let it silently diverge.
func (n *Node) FollowerAppend(ctx context.Context, req proto.FollowerAppendReq) (proto.FollowerAppendResp, error) {
	n.noteEpoch(req.Epoch)
	g := n.lockGroup(req.ACG)
	if g == nil {
		if ep, gone := n.releasedEpoch(req.ACG); gone {
			n.staleRejects.Inc()
			return proto.FollowerAppendResp{}, n.staleErr(req.ACG, ep)
		}
		return proto.FollowerAppendResp{}, fmt.Errorf(
			"indexnode %s follower append: acg %d not seeded: %w", n.cfg.ID, req.ACG, ErrUnknownACG)
	}
	defer g.mu.Unlock()
	if !g.follower {
		// This copy was promoted (or owns the group outright): the sender
		// is a stale primary. Refuse typed so it cuts us and its own next
		// heartbeat reconciles it against the new placement.
		n.staleRejects.Inc()
		return proto.FollowerAppendResp{}, fmt.Errorf(
			"indexnode %s: acg %d is not a follower here (node epoch %d): %w",
			n.cfg.ID, req.ACG, n.placementEpoch.Load(), perr.ErrStalePlacement)
	}
	if req.Seq <= g.replSeq {
		return proto.FollowerAppendResp{Seq: g.replSeq, Epoch: n.epoch()}, nil
	}
	if req.Seq != g.replSeq+1 {
		return proto.FollowerAppendResp{}, fmt.Errorf(
			"indexnode %s follower append acg %d: stream gap (applied %d, got %d)",
			n.cfg.ID, req.ACG, g.replSeq, req.Seq)
	}
	if err := g.log.AppendFramed(req.Frames); err != nil {
		return proto.FollowerAppendResp{}, fmt.Errorf("indexnode follower append: %w", err)
	}
	if _, err := n.replayWALLocked(g, req.Frames, nil); err != nil {
		return proto.FollowerAppendResp{}, fmt.Errorf("indexnode follower append: %w", err)
	}
	g.replSeq = req.Seq
	// A streamed frame may name an index this follower never served;
	// resolve the spec now so the follower's own commits (Tick, Lazy reads
	// after promotion) never wedge on an unknown name.
	for name := range g.pending {
		if err := n.ensureSpec(ctx, name); err != nil {
			return proto.FollowerAppendResp{}, err
		}
	}
	n.followerAppends.Inc()
	return proto.FollowerAppendResp{Seq: g.replSeq, Epoch: n.epoch()}, nil
}

// ReplicateACG executes one Master replicate order: commit the group, ship
// its image to the destination as a follower copy (the same ReceiveACG
// machinery migrations use, with the Follower flag set), report the
// seeding, and add the destination to the streaming ack set. The whole
// sequence holds the group lock, so no acknowledged frame can slip between
// the image and the start of the stream. Duplicate orders (the Master
// re-issues until the follower confirms) are no-ops once the destination
// is in the ack set.
func (n *Node) ReplicateACG(ctx context.Context, ord proto.MigrateOrder) error {
	if ord.Dest == n.cfg.ID {
		return nil // a group never follows itself
	}
	g := n.lockGroup(ord.ACG)
	if g == nil {
		if _, gone := n.releasedEpoch(ord.ACG); gone {
			return nil // released under a stale order
		}
		return fmt.Errorf("acg %d: %w", ord.ACG, ErrUnknownACG)
	}
	defer g.mu.Unlock()
	if g.follower {
		return nil // only primaries seed; a stale order raced a promotion
	}
	for _, rep := range g.reps {
		if rep.Node == ord.Dest {
			return nil // already streaming (duplicate order)
		}
	}
	if err := n.commitGroupLocked(g); err != nil {
		return err
	}
	peer, err := n.peerConn(ctx, ord.Addr)
	if err != nil {
		return fmt.Errorf("indexnode replicate dial %s: %w", ord.Addr, err)
	}
	meta := proto.ReceiveACGStreamMeta{
		ACG: g.id, Epoch: n.epoch(), Follower: true, ReplSeq: g.replSeq,
	}
	if err := n.shipGroupStreamLocked(ctx, peer, g, nil, meta); err != nil {
		n.dropPeer(ord.Addr)
		return fmt.Errorf("indexnode replicate acg %d to %s: %w", ord.ACG, ord.Dest, err)
	}
	if n.cfg.Master != nil {
		// Best-effort: a lost report just delays the seeded mark until the
		// follower's own heartbeat proves the copy.
		if rep, err := rpc.Call[proto.ReplicateReportReq, proto.ReplicateReportResp](
			ctx, n.cfg.Master, proto.MethodReplicateReport,
			proto.ReplicateReportReq{Node: n.cfg.ID, ACG: ord.ACG, Dest: ord.Dest}); err == nil {
			n.noteEpoch(rep.Epoch)
		}
	}
	g.reps = append(g.reps, proto.ReplicaRef{Node: ord.Dest, Addr: ord.Addr})
	return nil
}

// PromoteACG executes one Master promote order: this node's follower copy
// of the group becomes the primary in place — no shared-store replay on
// this path. The surviving replica set rides the order and becomes the new
// ack set. Before serving, the copy reconciles the acknowledged tail it
// may have missed (frames acked after it was cut, or after the dead
// primary's last heartbeat, exist in the shared mirror but possibly
// nowhere else alive); the known-pairs skip makes that an incremental
// catch-up over the copy's own state, not a replay into an empty group.
// Idempotent: the Master re-issues the order until this node's heartbeat
// reports the group as primary.
func (n *Node) PromoteACG(ctx context.Context, ord proto.PromoteOrder) error {
	n.clearReleased(ord.ACG) // an explicit promotion overrides a tombstone
	g, err := n.lockOrCreateGroup(ord.ACG)
	if err != nil {
		return err
	}
	defer g.mu.Unlock()
	wasFollower := g.follower
	g.follower = false
	g.reps = g.reps[:0]
	for _, r := range ord.Followers {
		if r.Node != n.cfg.ID {
			g.reps = append(g.reps, r)
		}
	}
	if n.cfg.Shared != nil {
		if checkpoint, walBytes, ok := n.cfg.Shared.Load(ord.ACG); ok {
			known := n.knownPairsLocked(g)
			if err := n.installImageBytesLocked(g, checkpoint, known); err != nil {
				return fmt.Errorf("indexnode promote acg %d: %w", ord.ACG, err)
			}
			if _, err := n.replayWALLocked(g, walBytes, known); err != nil {
				return fmt.Errorf("indexnode promote acg %d wal: %w", ord.ACG, err)
			}
		}
	}
	if g.replSeq < ord.Seq {
		g.replSeq = ord.Seq
	}
	for name := range g.pending {
		if err := n.ensureSpec(ctx, name); err != nil {
			return fmt.Errorf("indexnode promote acg %d: %w", ord.ACG, err)
		}
	}
	// Commit and take over the shared mirror: from here this node's acks
	// write it, and the fresh checkpoint folds in the reconciled tail.
	if err := n.checkpointLocked(g); err != nil {
		return err
	}
	if wasFollower {
		n.promotions.Inc()
	}
	return nil
}
