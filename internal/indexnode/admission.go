package indexnode

import (
	"fmt"
	"sync"

	"propeller/internal/metrics"
	"propeller/internal/perr"
)

// admission is the node's bounded admission queue. Every Update/Search
// handler acquires a slot before doing any work and releases it when the
// handler returns; when the node is at its limit (or a tenant above its
// fair share while the queue is congested) the request is shed with
// perr.ErrOverloaded before any WAL append or index read, so a shed op is
// never acknowledged and never loses data.
//
// Fairness: below half the limit every request is admitted (no bookkeeping
// penalty on an idle node). Above it, a client holding at least its fair
// share is shed even though free slots remain, so one hot tenant
// saturating the node cannot starve light tenants out of the remaining
// capacity. The share divisor counts the tenants in the queue plus one —
// a share is always reserved for a newcomer, otherwise a lone flooder
// would legitimately own every slot and a light tenant's first op would
// bounce off the hard limit.
type admission struct {
	limit int // 0 = admission disabled

	mu       sync.Mutex
	inflight int
	// perClient counts the in-queue ops of each tenant ("" = anonymous,
	// pooled as one tenant).
	perClient map[string]int

	// fairnessSheds counts rejections issued below the hard limit because
	// the tenant was over its fair share; the callers count total sheds
	// per handler (updatesShed/searchesShed) when acquire fails.
	fairnessSheds *metrics.Counter
}

func newAdmission(limit int, fairnessSheds *metrics.Counter) *admission {
	return &admission{
		limit:         limit,
		perClient:     make(map[string]int),
		fairnessSheds: fairnessSheds,
	}
}

// acquire claims a queue slot for client, or rejects with
// perr.ErrOverloaded. A nil admission (no limit configured) admits
// everything.
func (a *admission) acquire(client string) error {
	if a == nil || a.limit <= 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight >= a.limit {
		return fmt.Errorf("admission queue full (%d in flight, limit %d): %w",
			a.inflight, a.limit, perr.ErrOverloaded)
	}
	if a.inflight >= a.limit/2 {
		// Congested: enforce fair shares. The divisor counts the tenants
		// in the queue (plus this one if absent) plus one reserved
		// newcomer share.
		tenants := len(a.perClient)
		if a.perClient[client] == 0 {
			tenants++
		}
		share := a.limit / (tenants + 1)
		if share < 1 {
			share = 1
		}
		if a.perClient[client] >= share {
			a.fairnessSheds.Inc()
			return fmt.Errorf("client %q over fair share (%d of %d slots, share %d): %w",
				client, a.perClient[client], a.limit, share, perr.ErrOverloaded)
		}
	}
	a.inflight++
	a.perClient[client]++
	return nil
}

// release returns client's slot.
func (a *admission) release(client string) {
	if a == nil || a.limit <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inflight--
	if a.perClient[client] <= 1 {
		delete(a.perClient, client) // keep the tenant census current
	} else {
		a.perClient[client]--
	}
}

// depth returns the current queue depth (in-flight admitted ops).
func (a *admission) depth() int {
	if a == nil || a.limit <= 0 {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}
