// Package indexnode implements Propeller's Index Node (§IV): it houses the
// partitioned per-ACG file indices (B-tree, hash table, K-D-tree), serves
// file-indexing and file-search requests, and runs background group splits
// under the Master's coordination.
//
// The latency-critical design point is the lazy index cache: an indexing
// request is acknowledged after a write-ahead-log append and an in-memory
// cache insert; cached requests are committed to the durable index either
// after a commit timeout (default 5 s) or synchronously before the next
// file-search on the group — whichever comes first. Searches therefore see
// strongly consistent results while normal I/O pays only the log-append
// cost.
package indexnode

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"propeller/internal/acg"
	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/pagestore"
	"propeller/internal/proto"
	"propeller/internal/rpc"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
	"propeller/internal/wal"
)

// Errors returned by the node.
var (
	ErrUnknownACG   = errors.New("indexnode: unknown acg")
	ErrUnknownIndex = errors.New("indexnode: unknown index for this node")
	ErrNoMaster     = errors.New("indexnode: operation requires a master connection")
)

// Dialer opens RPC connections to peer nodes (injected by the cluster
// harness so in-process and TCP transports both work).
type Dialer func(addr string) (*rpc.Client, error)

// Config tunes an Index Node.
type Config struct {
	ID    proto.NodeID
	Store *pagestore.Store
	Disk  *simdisk.Disk
	Clock *vclock.Clock
	// CommitTimeout is the lazy-cache timeout (virtual time; paper: 5 s).
	CommitTimeout time.Duration
	// CacheLimit forces a commit when a group's cache holds this many
	// pending entries.
	CacheLimit int
	// SplitThreshold is the group size that triggers a background split.
	SplitThreshold int
	// Master connects to the Master Node (nil for standalone single-node
	// operation).
	Master *rpc.Client
	// Dial opens connections to peer Index Nodes for ACG migration.
	Dial Dialer
	// DisableLazyCache commits every update synchronously (ablation).
	DisableLazyCache bool
}

func (c Config) withDefaults() Config {
	if c.CommitTimeout <= 0 {
		c.CommitTimeout = 5 * time.Second
	}
	if c.CacheLimit <= 0 {
		c.CacheLimit = 8192
	}
	if c.SplitThreshold <= 0 {
		c.SplitThreshold = 50000
	}
	if c.Clock == nil {
		c.Clock = vclock.New()
	}
	return c
}

// inst is one materialized index inside a group.
type inst struct {
	spec proto.IndexSpec
	bt   *index.BTree
	ht   *index.HashIndex
	kd   *index.KDTree
	// kdImage is the serialized KD-tree; kdResident tracks whether the
	// prototype's whole-tree RAM load has been paid since the last cache
	// drop (§V-E).
	kdImage    []byte
	kdResident bool
	kdOffset   int64
}

// group is one ACG partition and its indices.
type group struct {
	id    proto.ACGID
	files map[index.FileID]bool
	graph *groupGraph
	// indexes by name.
	indexes map[string]*inst
	// pending is the lazy index cache: per index name, the uncommitted
	// entries in arrival order.
	pending      map[string][]proto.IndexEntry
	pendingCount int
	lastUpdate   time.Duration
	// postings holds the latest committed posting per (index, file); it
	// serves multi-predicate filtering and ACG migration.
	postings map[string]map[index.FileID]proto.IndexEntry
	log      *wal.Log
}

// Node is an Index Node.
type Node struct {
	cfg Config

	mu      sync.Mutex
	groups  map[proto.ACGID]*group
	specs   map[string]proto.IndexSpec
	nextOff int64 // simdisk offset allocator for KD images
	// stats
	commits     int64
	commitNanos int64
	splitsDone  int64
}

// groupGraph is the node-side authoritative ACG of a group (plain adjacency;
// the acg package's builder lives on clients).
type groupGraph struct {
	adj map[index.FileID]map[index.FileID]int64
}

func newGroupGraph() *groupGraph {
	return &groupGraph{adj: make(map[index.FileID]map[index.FileID]int64)}
}

func (g *groupGraph) addEdge(src, dst index.FileID, w int64) {
	if src == dst || w <= 0 {
		return
	}
	if g.adj[src] == nil {
		g.adj[src] = make(map[index.FileID]int64)
	}
	g.adj[src][dst] += w
}

func (g *groupGraph) undirected(files map[index.FileID]bool) map[uint64]map[uint64]int64 {
	u := make(map[uint64]map[uint64]int64, len(files))
	for f := range files {
		u[uint64(f)] = make(map[uint64]int64)
	}
	add := func(a, b index.FileID, w int64) {
		if u[uint64(a)] == nil {
			u[uint64(a)] = make(map[uint64]int64)
		}
		u[uint64(a)][uint64(b)] += w
	}
	for src, m := range g.adj {
		for dst, w := range m {
			if files[src] && files[dst] {
				add(src, dst, w)
				add(dst, src, w)
			}
		}
	}
	return u
}

// New returns an Index Node.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, errors.New("indexnode: Store is required")
	}
	return &Node{
		cfg:     cfg,
		groups:  make(map[proto.ACGID]*group),
		specs:   make(map[string]proto.IndexSpec),
		nextOff: 1 << 40, // KD images live past the page region
	}, nil
}

// ID returns the node id.
func (n *Node) ID() proto.NodeID { return n.cfg.ID }

// RegisterRPC installs the node's methods on an RPC server.
func (n *Node) RegisterRPC(s *rpc.Server) {
	rpc.HandleTyped(s, proto.MethodUpdate, n.Update)
	rpc.HandleTyped(s, proto.MethodSearch, n.Search)
	rpc.HandleTyped(s, proto.MethodFlushACG, n.FlushACG)
	rpc.HandleTyped(s, proto.MethodCreateACG, n.CreateACG)
	rpc.HandleTyped(s, proto.MethodReceiveACG, n.ReceiveACG)
	rpc.HandleTyped(s, proto.MethodSplitACG, n.SplitACG)
	rpc.HandleTyped(s, proto.MethodNodeStats, n.NodeStats)
}

// DeclareIndex makes an index spec known to the node (normally learned from
// the first update carrying the name; standalone callers declare up front).
func (n *Node) DeclareIndex(spec proto.IndexSpec) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.specs[spec.Name]; !ok {
		n.specs[spec.Name] = spec
	}
}

// ensureSpec resolves an index name, asking the Master for the spec the
// first time a node sees the name.
func (n *Node) ensureSpec(name string) error {
	n.mu.Lock()
	_, ok := n.specs[name]
	n.mu.Unlock()
	if ok {
		return nil
	}
	if n.cfg.Master == nil {
		return fmt.Errorf("%q: %w", name, ErrUnknownIndex)
	}
	resp, err := rpc.Call[proto.LookupIndexReq, proto.LookupIndexResp](
		n.cfg.Master, proto.MethodLookupIndex, proto.LookupIndexReq{IndexName: name})
	if err != nil {
		return fmt.Errorf("indexnode: resolve index %q: %w", name, err)
	}
	n.DeclareIndex(resp.Spec)
	return nil
}

// getOrCreateGroupLocked returns the group, creating it on demand (groups
// are provisioned lazily on first contact, the Master having routed here).
func (n *Node) getOrCreateGroupLocked(id proto.ACGID) *group {
	g := n.groups[id]
	if g == nil {
		g = &group{
			id:       id,
			files:    make(map[index.FileID]bool),
			graph:    newGroupGraph(),
			indexes:  make(map[string]*inst),
			pending:  make(map[string][]proto.IndexEntry),
			postings: make(map[string]map[index.FileID]proto.IndexEntry),
			log:      wal.New(n.cfg.Disk),
		}
		n.groups[id] = g
	}
	return g
}

// instFor returns the group's index instance, materializing it from the
// node's spec table on first use.
func (n *Node) instFor(g *group, name string) (*inst, error) {
	if in, ok := g.indexes[name]; ok {
		return in, nil
	}
	spec, ok := n.specs[name]
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrUnknownIndex)
	}
	in := &inst{spec: spec}
	var err error
	switch spec.Type {
	case proto.IndexBTree:
		in.bt, err = index.NewBTree(n.cfg.Store)
	case proto.IndexHash:
		in.ht, err = index.NewHashIndex(n.cfg.Store, 64)
	case proto.IndexKD:
		dims := spec.Dims()
		if dims == 0 {
			return nil, fmt.Errorf("indexnode: kd index %q has no fields", name)
		}
		in.kd, err = index.NewKDTree(dims)
		in.kdResident = true
		in.kdOffset = n.nextOff
		n.nextOff += 1 << 30
	default:
		return nil, fmt.Errorf("indexnode: index %q has unknown type %d", name, spec.Type)
	}
	if err != nil {
		return nil, fmt.Errorf("indexnode: materialize %q: %w", name, err)
	}
	g.indexes[name] = in
	return in, nil
}

// CreateACG provisions a group with pre-declared membership.
func (n *Node) CreateACG(req proto.CreateACGReq) (proto.CreateACGResp, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	g := n.getOrCreateGroupLocked(req.ACG)
	for _, f := range req.Files {
		g.files[f] = true
	}
	return proto.CreateACGResp{OK: true}, nil
}

// Update is the file-indexing fast path: WAL append + cache insert.
func (n *Node) Update(req proto.UpdateReq) (proto.UpdateResp, error) {
	if err := n.ensureSpec(req.IndexName); err != nil {
		return proto.UpdateResp{}, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	g := n.getOrCreateGroupLocked(req.ACG)
	rec, err := encodeWALRecord(req)
	if err != nil {
		return proto.UpdateResp{}, err
	}
	if err := g.log.Append(rec); err != nil {
		return proto.UpdateResp{}, fmt.Errorf("indexnode update: %w", err)
	}
	for _, e := range req.Entries {
		g.files[e.File] = true
	}
	g.pending[req.IndexName] = append(g.pending[req.IndexName], req.Entries...)
	g.pendingCount += len(req.Entries)
	g.lastUpdate = n.cfg.Clock.Now()

	if n.cfg.DisableLazyCache || g.pendingCount >= n.cfg.CacheLimit {
		if err := n.commitLocked(g); err != nil {
			return proto.UpdateResp{}, err
		}
	}
	return proto.UpdateResp{Cached: g.pendingCount}, nil
}

// FlushACG merges a client-captured causality fragment into the group's
// authoritative graph.
func (n *Node) FlushACG(req proto.FlushACGReq) (proto.FlushACGResp, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	g := n.getOrCreateGroupLocked(req.ACG)
	for _, v := range req.Vertices {
		g.files[v] = true
	}
	for _, e := range req.Edges {
		g.files[e.Src] = true
		g.files[e.Dst] = true
		g.graph.addEdge(e.Src, e.Dst, e.Weight)
	}
	return proto.FlushACGResp{OK: true}, nil
}

// Tick commits groups whose lazy cache has exceeded the commit timeout.
// Deployments call it from a ticker; experiments call it after advancing
// virtual time.
func (n *Node) Tick() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.cfg.Clock.Now()
	ids := n.groupIDsLocked()
	for _, id := range ids {
		g := n.groups[id]
		if g.pendingCount > 0 && now-g.lastUpdate >= n.cfg.CommitTimeout {
			if err := n.commitLocked(g); err != nil {
				return err
			}
		}
	}
	return nil
}

func (n *Node) groupIDsLocked() []proto.ACGID {
	ids := make([]proto.ACGID, 0, len(n.groups))
	for id := range n.groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// commitLocked merges the group's pending cache into its durable indices.
func (n *Node) commitLocked(g *group) error {
	if g.pendingCount == 0 {
		return nil
	}
	start := n.cfg.Clock.Now()
	names := make([]string, 0, len(g.pending))
	for name := range g.pending {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		entries := g.pending[name]
		if len(entries) == 0 {
			continue
		}
		in, err := n.instFor(g, name)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if err := n.applyEntry(g, in, name, e); err != nil {
				return err
			}
		}
		g.pending[name] = nil
	}
	// KD indices re-serialize once per commit (not per entry).
	for _, name := range names {
		if in := g.indexes[name]; in != nil && in.kd != nil {
			in.kdImage = in.kd.Serialize()
			if n.cfg.Disk != nil {
				if _, err := n.cfg.Disk.Write(in.kdOffset, int64(len(in.kdImage))); err != nil {
					return fmt.Errorf("indexnode: persist kd image: %w", err)
				}
			}
			in.kdResident = true
		}
	}
	g.pendingCount = 0
	if err := g.log.Truncate(); err != nil {
		return fmt.Errorf("indexnode: truncate wal: %w", err)
	}
	n.commits++
	n.commitNanos += int64(n.cfg.Clock.Now() - start)
	return nil
}

func (n *Node) applyEntry(g *group, in *inst, name string, e proto.IndexEntry) error {
	post := g.postings[name]
	if post == nil {
		post = make(map[index.FileID]proto.IndexEntry)
		g.postings[name] = post
	}
	if e.Delete {
		old, ok := post[e.File]
		if !ok {
			return nil // deleting an unindexed posting is a no-op
		}
		delete(post, e.File)
		switch {
		case in.bt != nil:
			if err := in.bt.Delete(old.Value, e.File); err != nil && !errors.Is(err, index.ErrNotFound) {
				return err
			}
		case in.ht != nil:
			if err := in.ht.Delete(old.Value, e.File); err != nil && !errors.Is(err, index.ErrNotFound) {
				return err
			}
		case in.kd != nil:
			// KD deletion: rebuild without the point (rare path).
			return n.rebuildKD(g, in, name)
		}
		return nil
	}

	// Re-indexing an existing posting replaces the old value.
	if old, ok := post[e.File]; ok {
		switch {
		case in.bt != nil:
			if !old.Value.Equal(e.Value) {
				if err := in.bt.Delete(old.Value, e.File); err != nil && !errors.Is(err, index.ErrNotFound) {
					return err
				}
			}
		case in.ht != nil:
			if !old.Value.Equal(e.Value) {
				if err := in.ht.Delete(old.Value, e.File); err != nil && !errors.Is(err, index.ErrNotFound) {
					return err
				}
			}
		case in.kd != nil:
			post[e.File] = e
			return n.rebuildKD(g, in, name)
		}
	}
	post[e.File] = e
	switch {
	case in.bt != nil:
		return in.bt.Insert(e.Value, e.File)
	case in.ht != nil:
		return in.ht.Insert(e.Value, e.File)
	case in.kd != nil:
		return in.kd.Insert(index.Point{Coords: e.KDCoords, File: e.File})
	}
	return nil
}

// rebuildKD reconstructs a KD index from current postings (after delete or
// re-index of a point).
func (n *Node) rebuildKD(g *group, in *inst, name string) error {
	dims := in.spec.Dims()
	pts := make([]index.Point, 0, len(g.postings[name]))
	for f, e := range g.postings[name] {
		pts = append(pts, index.Point{Coords: e.KDCoords, File: f})
	}
	kd, err := index.BuildKDTree(dims, pts)
	if err != nil {
		return fmt.Errorf("indexnode: rebuild kd %q: %w", name, err)
	}
	in.kd = kd
	return nil
}

// DropCaches models a cold start: the buffer pool is emptied and KD images
// become non-resident, so the next queries pay the full disk cost.
func (n *Node) DropCaches() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.cfg.Store.DropCache(); err != nil {
		return err
	}
	for _, g := range n.groups {
		for _, in := range g.indexes {
			if in.kd != nil {
				in.kdResident = false
			}
		}
	}
	return nil
}

// encodeWALRecord serializes an update for the group log.
func encodeWALRecord(req proto.UpdateReq) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
		return nil, fmt.Errorf("indexnode: encode wal record: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeWALRecord(rec []byte) (proto.UpdateReq, error) {
	var req proto.UpdateReq
	if err := gob.NewDecoder(bytes.NewReader(rec)).Decode(&req); err != nil {
		return proto.UpdateReq{}, fmt.Errorf("indexnode: decode wal record: %w", err)
	}
	return req, nil
}

// ACGImage serializes a group's authoritative causality graph to its
// shared-storage form (the paper stores ACGs as regular files in the
// underlying shared file system, §IV).
func (n *Node) ACGImage(id proto.ACGID) ([]byte, error) {
	n.mu.Lock()
	g, ok := n.groups[id]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("acg %d: %w", id, ErrUnknownACG)
	}
	out := acg.NewGraph()
	for f := range g.files {
		out.AddVertex(f)
	}
	for src, m := range g.graph.adj {
		for dst, w := range m {
			out.AddEdge(src, dst, w)
		}
	}
	n.mu.Unlock()
	if n.cfg.Disk != nil {
		img := out.Serialize()
		if _, err := n.cfg.Disk.AppendLog(int64(len(img))); err != nil {
			return nil, fmt.Errorf("indexnode: persist acg %d: %w", id, err)
		}
		return img, nil
	}
	return out.Serialize(), nil
}

// LoadACGImage restores a group's causality graph from a shared-storage
// image (used when a replacement node adopts a crashed node's groups).
func (n *Node) LoadACGImage(id proto.ACGID, img []byte) error {
	restored, err := acg.Deserialize(img)
	if err != nil {
		return fmt.Errorf("indexnode: load acg %d: %w", id, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	g := n.getOrCreateGroupLocked(id)
	for _, v := range restored.Vertices() {
		g.files[v] = true
	}
	restored.ForEachEdge(func(src, dst index.FileID, w int64) bool {
		g.graph.addEdge(src, dst, w)
		return true
	})
	return nil
}

// WALImage returns the group's current log image (what would sit in shared
// storage at a crash).
func (n *Node) WALImage(id proto.ACGID) ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	g, ok := n.groups[id]
	if !ok {
		return nil, fmt.Errorf("acg %d: %w", id, ErrUnknownACG)
	}
	return g.log.Bytes(), nil
}

// RecoverGroup replays a WAL image into the group's cache (crash recovery:
// acknowledged-but-uncommitted updates are not lost). A torn tail stops the
// replay at the last intact record, which is exactly the guarantee the
// acknowledgement made.
func (n *Node) RecoverGroup(id proto.ACGID, walImage []byte) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	g := n.getOrCreateGroupLocked(id)
	recovered := 0
	err := wal.ReplayBytes(walImage, func(rec []byte) bool {
		req, derr := decodeWALRecord(rec)
		if derr != nil {
			return false
		}
		for _, e := range req.Entries {
			g.files[e.File] = true
		}
		g.pending[req.IndexName] = append(g.pending[req.IndexName], req.Entries...)
		g.pendingCount += len(req.Entries)
		recovered += len(req.Entries)
		return true
	})
	if err != nil && !errors.Is(err, wal.ErrCorrupt) {
		return recovered, err
	}
	g.lastUpdate = n.cfg.Clock.Now()
	return recovered, nil
}

// NodeStats reports local statistics.
func (n *Node) NodeStats(proto.NodeStatsReq) (proto.NodeStatsResp, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := proto.NodeStatsResp{Node: n.cfg.ID, ACGs: len(n.groups)}
	for _, g := range n.groups {
		resp.Files += int64(len(g.files))
		resp.CachedOps += g.pendingCount
		resp.WALRecords += g.log.Len()
	}
	st := n.cfg.Store.Stats()
	resp.PoolHits, resp.PoolMisses = st.Hits, st.Misses
	names := make([]string, 0, len(n.specs))
	for name := range n.specs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		resp.IndexSpecs = append(resp.IndexSpecs, n.specs[name])
	}
	return resp, nil
}

// Heartbeat sends one heartbeat to the Master and executes any split orders
// it returns.
func (n *Node) Heartbeat() error {
	if n.cfg.Master == nil {
		return ErrNoMaster
	}
	n.mu.Lock()
	req := proto.HeartbeatReq{Node: n.cfg.ID}
	for _, id := range n.groupIDsLocked() {
		req.ACGs = append(req.ACGs, proto.ACGMeta{ACG: id, Files: int64(len(n.groups[id].files))})
	}
	n.mu.Unlock()

	resp, err := rpc.Call[proto.HeartbeatReq, proto.HeartbeatResp](n.cfg.Master, proto.MethodHeartbeat, req)
	if err != nil {
		return fmt.Errorf("indexnode heartbeat: %w", err)
	}
	for _, id := range resp.SplitACGs {
		if _, err := n.SplitACG(proto.SplitACGReq{ACG: id}); err != nil {
			return fmt.Errorf("indexnode split order %d: %w", id, err)
		}
	}
	return nil
}

// groupFilesSorted returns a group's files sorted (helper for split and
// tests).
func (g *group) groupFilesSorted() []index.FileID {
	out := make([]index.FileID, 0, len(g.files))
	for f := range g.files {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// attrValue resolves the current value of field for file within the group
// by consulting committed postings of any index covering that field.
func (n *Node) attrValue(g *group, field string, f index.FileID) (attr.Value, bool) {
	for name, post := range g.postings {
		spec := n.specs[name]
		if spec.Field != field || spec.Type == proto.IndexKD {
			continue
		}
		if e, ok := post[f]; ok {
			return e.Value, true
		}
	}
	return attr.Value{}, false
}
