// Package indexnode implements Propeller's Index Node (§IV): it houses the
// partitioned per-ACG file indices (B-tree, hash table, K-D-tree), serves
// file-indexing and file-search requests, and runs background group splits
// under the Master's coordination.
//
// The latency-critical design point is the lazy index cache: an indexing
// request is acknowledged after a write-ahead-log append and an in-memory
// cache insert; cached requests are committed to the durable index either
// after a commit timeout (default 5 s) or synchronously before the next
// file-search on the group — whichever comes first. Searches therefore see
// strongly consistent results while normal I/O pays only the log-append
// cost.
//
// Concurrency model. ACG partitions are independent by design (updates
// never fan out across groups), and the node's locking mirrors that: the
// registry lock n.mu guards only the ACGID→group table, while every group
// carries its own mutex protecting its cache, indices and causality graph.
// Updates and searches on different ACGs proceed in parallel; per-ACG WAL
// appends coalesce through a shared wal.GroupCommitter so concurrent
// acknowledgements share sequential device writes.
//
// Lock ordering (violations deadlock):
//
//  1. n.mergeMu is outermost and taken only by MergeACGs; it serializes
//     merges, the only operations holding two group locks at once (taken
//     in ascending ACGID order).
//  2. n.mu (registry) is held only for map access — never while acquiring
//     a group lock. Because of that, MergeACGs may take n.mu while holding
//     group locks (its delete step) without deadlock.
//  3. group.mu before n.specMu. Never acquire a group lock while holding
//     the spec table lock.
//
// A group removed from the registry by a merge is marked dead under its
// lock; lockLive/lockGroup/lockOrCreateGroup encapsulate the re-resolve
// protocol so no caller ever mutates an orphaned group. Multi-group
// searches re-run when n.mergeEpoch moves during the pass, so a concurrent
// merge cannot make acknowledged files vanish from a result set.
package indexnode

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"propeller/internal/acg"
	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/metrics"
	"propeller/internal/pagestore"
	"propeller/internal/perr"
	"propeller/internal/proto"
	"propeller/internal/rpc"
	"propeller/internal/sharedstore"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
	"propeller/internal/wal"
)

// Errors returned by the node.
var (
	ErrUnknownACG   = errors.New("indexnode: unknown acg")
	ErrUnknownIndex = errors.New("indexnode: unknown index for this node")
	ErrNoMaster     = errors.New("indexnode: operation requires a master connection")
)

// Dialer opens RPC connections to peer nodes (injected by the cluster
// harness so in-process and TCP transports both work). The context bounds
// connection establishment — a dial toward a partitioned peer returns
// when the caller's budget expires.
type Dialer func(ctx context.Context, addr string) (*rpc.Client, error)

// Config tunes an Index Node.
type Config struct {
	ID    proto.NodeID
	Store *pagestore.Store
	Disk  *simdisk.Disk
	Clock *vclock.Clock
	// CommitTimeout is the lazy-cache timeout (virtual time; paper: 5 s).
	CommitTimeout time.Duration
	// CacheLimit forces a commit when a group's cache holds this many
	// pending entries.
	CacheLimit int
	// SplitThreshold is the group size that triggers a background split.
	SplitThreshold int
	// Master connects to the Master Node (nil for standalone single-node
	// operation).
	Master *rpc.Client
	// Dial opens connections to peer Index Nodes for ACG migration.
	Dial Dialer
	// DisableLazyCache commits every update synchronously (ablation).
	DisableLazyCache bool
	// SearchFanout bounds the worker pool a multi-ACG search fans out
	// over (0 = GOMAXPROCS capped at 8; 1 = serial pass).
	SearchFanout int
	// MaxInflight bounds the admission queue: at most this many
	// Update/Search handlers run at once, the rest are shed with
	// perr.ErrOverloaded before any work (0 = unbounded, no admission
	// control). Above half the limit per-client fairness kicks in: a
	// tenant holding its fair share of the queue is shed even while free
	// slots remain.
	MaxInflight int
	// Shared is the cluster's shared storage (the paper's distributed file
	// system): WAL appends are mirrored there and group images
	// checkpointed at placement events, so a dead node's groups can be
	// recovered by any peer. Nil disables mirroring (standalone nodes,
	// benchmarks).
	Shared *sharedstore.Store
}

func (c Config) withDefaults() Config {
	if c.CommitTimeout <= 0 {
		c.CommitTimeout = 5 * time.Second
	}
	if c.CacheLimit <= 0 {
		c.CacheLimit = 8192
	}
	if c.SplitThreshold <= 0 {
		c.SplitThreshold = 50000
	}
	if c.Clock == nil {
		c.Clock = vclock.New()
	}
	return c
}

// inst is one materialized index inside a group.
type inst struct {
	spec proto.IndexSpec
	bt   *index.BTree
	ht   *index.HashIndex
	kd   *index.KDTree
	// kdImage is the serialized KD-tree; kdResident tracks whether the
	// prototype's whole-tree RAM load has been paid since the last cache
	// drop (§V-E).
	kdImage    []byte
	kdResident bool
	kdOffset   int64
}

// pendingEntry is one coalesced, prepared lazy-cache entry: the latest
// acknowledged update for its (index, file) pair, plus the index key the
// commit will need — encoded outside the group lock at acknowledgement
// time (composite key for B-tree postings, value encoding for hash
// postings; nil for KD entries, deletes, and WAL-recovered entries,
// which are keyed at commit).
type pendingEntry struct {
	e   proto.IndexEntry
	key []byte
}

// group is one ACG partition and its indices. Every field below mu is
// protected by it; a group is only ever mutated by the goroutine holding
// its lock, so operations on different ACGs never contend.
type group struct {
	id proto.ACGID

	// acgCommits/acgCommitEntries are this group's per-ACG counter
	// handles, resolved once at creation so the commit path does no label
	// formatting or counter-set lookups. Immutable after creation.
	acgCommits       *metrics.Counter
	acgCommitEntries *metrics.Counter

	mu sync.Mutex
	// dead marks a group that MergeACGs drained and removed from the
	// registry. A caller that resolved the pointer before the merge and
	// locked it after must not mutate the orphan: check dead (lockLive)
	// first and re-resolve through the registry.
	dead  bool
	files map[index.FileID]bool
	// movedOut fences files a split migrated to another group: the Master
	// rebound their mappings, but this group stays alive, so without the
	// fence a client's warm (pre-split) file cache would keep landing
	// their updates here forever — accepted, invisible to the new owner,
	// forked ownership. Fenced updates get perr.ErrStalePlacement so the
	// client re-resolves. Nil until a split moves files away; entries
	// clear when an authoritative install re-homes a file here.
	movedOut map[index.FileID]bool
	graph    *groupGraph
	// indexes by name.
	indexes map[string]*inst
	// pending is the lazy index cache, coalesced per (index, file) with
	// last-write-wins: a file re-indexed many times inside one commit
	// window holds one pending entry and costs one index mutation at
	// commit. pendingCount still counts acknowledged arrivals (the cache
	// limit, UpdateResp.Cached and CommitEntries all speak in
	// acknowledged entries, not coalesced survivors).
	pending      map[string]map[index.FileID]pendingEntry
	pendingCount int
	lastUpdate   time.Duration
	// postings holds the latest committed posting per (index, file); it
	// serves multi-predicate filtering and ACG migration.
	postings map[string]map[index.FileID]proto.IndexEntry
	log      *wal.Log

	// follower marks this copy of the group as a replica: it accepts only
	// the primary's replication stream (FollowerAppend), rejects direct
	// updates and strict searches with perr.ErrStalePlacement, and never
	// writes the shared-store mirror. Cleared by PromoteACG.
	follower bool
	// replSeq is the replication stream position: on a primary it counts
	// acknowledged updates (bumped whether or not followers exist, so a
	// later replica seeding starts from a true position); on a follower it
	// is the last contiguously applied stream sequence. Carried in images
	// so it survives migration and seeding.
	replSeq uint64
	// reps is the primary's streaming ack set — the followers every
	// acknowledged frame is synchronously appended to. A failed append
	// cuts the follower here; the Master notices it missing from the next
	// heartbeat's Followers list and re-seeds it. Empty on followers.
	reps []proto.ReplicaRef
}

// Node is an Index Node.
type Node struct {
	cfg Config
	// walGC batches the WAL-append charges of every group on this node
	// into shared sequential device writes (group commit).
	walGC *wal.GroupCommitter

	// mu guards only the group registry; per-group state is behind each
	// group's own lock (see the package comment for the lock ordering).
	mu     sync.RWMutex
	groups map[proto.ACGID]*group
	// released are placement tombstones: groups this node transferred away
	// or was ordered to drop, keyed to the epoch of the move. Traffic
	// routed here by a stale placement cache is rejected with
	// perr.ErrStalePlacement instead of silently recreating the group —
	// the split-brain guard's node-side half. Guarded by mu.
	released map[proto.ACGID]proto.Epoch

	// placementEpoch is the newest placement epoch this node has seen
	// (heartbeat replies, split/merge/migrate reports, received groups);
	// quoted on every search/update response so clients can spot their own
	// stale fan-outs.
	placementEpoch atomic.Uint64

	// mergeMu serializes merges (the only operations locking two groups),
	// keeping the registry lock out of the merge data path.
	mergeMu sync.Mutex
	// mergeEpoch counts completed merges; multi-group searches use it to
	// detect a merge moving files between their per-group snapshots.
	mergeEpoch atomic.Int64

	// specMu guards the index spec table.
	specMu sync.RWMutex
	specs  map[string]proto.IndexSpec

	// nextOff allocates simdisk offsets for KD images.
	nextOff atomic.Int64

	// stats (lock-free; hot paths must not share a cache line with locks).
	commits       metrics.Counter
	commitNanos   metrics.Counter
	commitEntries metrics.Counter
	splitsDone    metrics.Counter
	// commitFailures counts commits that returned an error (a wedged
	// group retried every tick keeps counting — the growth rate is the
	// alarm).
	commitFailures metrics.Counter
	// kdRebuilds counts full KD reconstructions; a healthy batch commit
	// pays at most one per (KD index, commit).
	kdRebuilds metrics.Counter
	// coalescedEntries counts acknowledged entries superseded in the lazy
	// cache before commit (last-write-wins): index mutations saved.
	coalescedEntries metrics.Counter
	// hashScanFallbacks counts searches a hash index could not serve as a
	// point lookup and silently degraded to a full-table scan.
	hashScanFallbacks metrics.Counter
	// staleRejects counts requests refused because they targeted a
	// released (tombstoned) group.
	staleRejects metrics.Counter
	// groupsMigrated counts groups transferred to peers; groupsRecovered
	// counts groups adopted from shared storage after an owner died.
	groupsMigrated  metrics.Counter
	groupsRecovered metrics.Counter
	// followerAppends counts replication frames applied by follower copies
	// on this node; followerCuts counts followers this node's primaries cut
	// from their ack sets after a failed stream append; promotions counts
	// follower copies promoted to primary here.
	followerAppends metrics.Counter
	followerCuts    metrics.Counter
	promotions      metrics.Counter
	// searchesServed counts admitted searches; replicated-read scaling is
	// measured by how this spreads across nodes.
	searchesServed metrics.Counter
	// Primary lease (partition fencing). leaseDuration is the lease the
	// Master granted with the last heartbeat reply in nanoseconds (0 =
	// never granted = fencing off); leaseGranted is the node clock's
	// UnixNano at the grant. Once Now-granted >= duration the node must
	// assume a successor was promoted and refuse acks and strict searches
	// with ErrStalePlacement until a heartbeat renews the lease.
	leaseDuration atomic.Int64
	leaseGranted  atomic.Int64
	// leaseRejects counts updates and strict searches refused because the
	// lease had lapsed.
	leaseRejects metrics.Counter
	// updatesShed/searchesShed count admissions rejected with
	// ErrOverloaded; fairnessSheds is the subset rejected below the hard
	// limit because the tenant was over its fair share.
	updatesShed   metrics.Counter
	searchesShed  metrics.Counter
	fairnessSheds metrics.Counter
	// adm is the bounded admission queue shared by Update and Search
	// (nil-safe; nil when MaxInflight is 0).
	adm *admission
	// per-ACG commit/entry counters, labelled by decimal ACGID.
	acgCommits       metrics.CounterSet
	acgCommitEntries metrics.CounterSet

	// peerMu guards peers, the cached connections this node's primaries
	// stream replication frames over (per-update path; dial once, evict on
	// failure), LRU-bounded at maxPeerConns. peerUse is the monotonic
	// recency clock; peerConnEvictions counts capacity evictions.
	peerMu  sync.Mutex
	peers   map[string]*peerEntry
	peerUse uint64
	// peerConnEvictions counts peer connections closed by LRU capacity
	// eviction (not failure drops); surfaced in NodeStats.
	peerConnEvictions metrics.Counter
}

// peerEntry is one cached peer connection with its LRU recency stamp.
type peerEntry struct {
	c       *rpc.Client
	lastUse uint64
}

// groupGraph is the node-side authoritative ACG of a group (plain adjacency;
// the acg package's builder lives on clients).
type groupGraph struct {
	adj map[index.FileID]map[index.FileID]int64
}

func newGroupGraph() *groupGraph {
	return &groupGraph{adj: make(map[index.FileID]map[index.FileID]int64)}
}

func (g *groupGraph) addEdge(src, dst index.FileID, w int64) {
	if src == dst || w <= 0 {
		return
	}
	if g.adj[src] == nil {
		g.adj[src] = make(map[index.FileID]int64)
	}
	g.adj[src][dst] += w
}

func (g *groupGraph) undirected(files map[index.FileID]bool) map[uint64]map[uint64]int64 {
	u := make(map[uint64]map[uint64]int64, len(files))
	for f := range files {
		u[uint64(f)] = make(map[uint64]int64)
	}
	add := func(a, b index.FileID, w int64) {
		if u[uint64(a)] == nil {
			u[uint64(a)] = make(map[uint64]int64)
		}
		u[uint64(a)][uint64(b)] += w
	}
	for src, m := range g.adj {
		for dst, w := range m {
			if files[src] && files[dst] {
				add(src, dst, w)
				add(dst, src, w)
			}
		}
	}
	return u
}

// New returns an Index Node.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, errors.New("indexnode: Store is required")
	}
	n := &Node{
		cfg:      cfg,
		walGC:    wal.NewGroupCommitter(cfg.Disk),
		groups:   make(map[proto.ACGID]*group),
		released: make(map[proto.ACGID]proto.Epoch),
		specs:    make(map[string]proto.IndexSpec),
	}
	n.nextOff.Store(1 << 40) // KD images live past the page region
	if cfg.MaxInflight > 0 {
		n.adm = newAdmission(cfg.MaxInflight, &n.fairnessSheds)
	}
	return n, nil
}

// ID returns the node id.
func (n *Node) ID() proto.NodeID { return n.cfg.ID }

// WALStats reports the node's WAL group-commit batching counters.
func (n *Node) WALStats() wal.GroupCommitStats { return n.walGC.Stats() }

// RegisterRPC installs the node's methods on an RPC server.
func (n *Node) RegisterRPC(s *rpc.Server) {
	rpc.HandleTyped(s, proto.MethodUpdate, n.Update)
	rpc.HandleTyped(s, proto.MethodSearch, n.Search)
	rpc.HandleTyped(s, proto.MethodFlushACG, n.FlushACG)
	rpc.HandleTyped(s, proto.MethodCreateACG, n.CreateACG)
	rpc.HandleTyped(s, proto.MethodReceiveACG, n.ReceiveACG)
	rpc.HandleTyped(s, proto.MethodSplitACG, n.SplitACG)
	rpc.HandleTyped(s, proto.MethodNodeStats, n.NodeStats)
	rpc.HandleTyped(s, proto.MethodFollowerAppend, n.FollowerAppend)
	rpc.HandleStreamTyped(s, proto.MethodReceiveACGChunked, n.receiveACGStream)
}

// DeclareIndex makes an index spec known to the node (normally learned from
// the first update carrying the name; standalone callers declare up front).
func (n *Node) DeclareIndex(spec proto.IndexSpec) {
	n.specMu.Lock()
	defer n.specMu.Unlock()
	if _, ok := n.specs[spec.Name]; !ok {
		n.specs[spec.Name] = spec
	}
}

// lookupSpec returns the spec for name if the node knows it.
func (n *Node) lookupSpec(name string) (proto.IndexSpec, bool) {
	n.specMu.RLock()
	defer n.specMu.RUnlock()
	spec, ok := n.specs[name]
	return spec, ok
}

// ensureSpec resolves an index name, asking the Master for the spec the
// first time a node sees the name.
func (n *Node) ensureSpec(ctx context.Context, name string) error {
	if _, ok := n.lookupSpec(name); ok {
		return nil
	}
	if n.cfg.Master == nil {
		return fmt.Errorf("%q: %w", name, ErrUnknownIndex)
	}
	resp, err := rpc.Call[proto.LookupIndexReq, proto.LookupIndexResp](
		ctx, n.cfg.Master, proto.MethodLookupIndex, proto.LookupIndexReq{IndexName: name})
	if err != nil {
		return fmt.Errorf("indexnode: resolve index %q: %w", name, err)
	}
	n.DeclareIndex(resp.Spec)
	return nil
}

// lockLive locks g and reports whether it is still a registered group. On
// false the lock has been released and the caller must re-resolve the id
// through the registry (the group was merged away between lookup and lock).
func (g *group) lockLive() bool {
	g.mu.Lock()
	if g.dead {
		g.mu.Unlock()
		return false
	}
	return true
}

// getGroup returns the group if present (nil otherwise). The caller locks
// the group before touching its state (via lockLive, re-resolving on
// failure).
func (n *Node) getGroup(id proto.ACGID) *group {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.groups[id]
}

// lockGroup returns the group locked, or nil if the node has no such
// group.
func (n *Node) lockGroup(id proto.ACGID) *group {
	for {
		g := n.getGroup(id)
		if g == nil {
			return nil
		}
		if g.lockLive() {
			return g
		}
	}
}

// getOrCreateGroup returns the group, creating it on demand (groups are
// provisioned lazily on first contact, the Master having routed here). A
// released (tombstoned) id is refused with perr.ErrStalePlacement: traffic
// routed by a stale placement cache must not resurrect a group this node
// no longer owns. The tombstone check shares the registry write lock with
// creation, so a concurrent release can never interleave with it.
func (n *Node) getOrCreateGroup(id proto.ACGID) (*group, error) {
	n.mu.RLock()
	g := n.groups[id]
	n.mu.RUnlock()
	if g != nil {
		return g, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if g = n.groups[id]; g != nil {
		return g, nil
	}
	if ep, ok := n.released[id]; ok {
		n.staleRejects.Inc()
		return nil, n.staleErr(id, ep)
	}
	g = n.newGroupLocked(id)
	n.groups[id] = g
	return g, nil
}

// staleErr is the typed stale-placement rejection, carrying the epoch of
// the move that released the group and the node's current epoch.
func (n *Node) staleErr(id proto.ACGID, released proto.Epoch) error {
	return fmt.Errorf("indexnode %s: acg %d released at epoch %d (node epoch %d): %w",
		n.cfg.ID, id, released, n.placementEpoch.Load(), perr.ErrStalePlacement)
}

// releasedEpoch reports whether id is tombstoned and at which epoch.
func (n *Node) releasedEpoch(id proto.ACGID) (proto.Epoch, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ep, ok := n.released[id]
	return ep, ok
}

// clearReleased removes id's tombstone (the node is re-adopting the group
// under an explicit order: recovery, transfer-in, or provisioning).
func (n *Node) clearReleased(id proto.ACGID) {
	n.mu.Lock()
	delete(n.released, id)
	n.mu.Unlock()
}

// noteEpoch advances the node's placement-epoch watermark (monotonic).
func (n *Node) noteEpoch(e proto.Epoch) {
	for {
		cur := n.placementEpoch.Load()
		if uint64(e) <= cur || n.placementEpoch.CompareAndSwap(cur, uint64(e)) {
			return
		}
	}
}

// epoch returns the node's placement-epoch watermark.
func (n *Node) epoch() proto.Epoch { return proto.Epoch(n.placementEpoch.Load()) }

// lockOrCreateGroup returns the group locked, creating it if absent. The
// retry loop covers a concurrent merge deleting the group between lookup
// and lock. Released ids yield perr.ErrStalePlacement.
func (n *Node) lockOrCreateGroup(id proto.ACGID) (*group, error) {
	for {
		g, err := n.getOrCreateGroup(id)
		if err != nil {
			return nil, err
		}
		if g.lockLive() {
			return g, nil
		}
	}
}

// newGroupLocked builds an empty group. Caller holds n.mu. The per-ACG
// counter handles are resolved here, once, so commits never format labels
// or take the counter-set lock.
func (n *Node) newGroupLocked(id proto.ACGID) *group {
	return &group{
		id:               id,
		acgCommits:       n.acgCommits.Get(acgLabel(id)),
		acgCommitEntries: n.acgCommitEntries.Get(acgLabel(id)),
		files:            make(map[index.FileID]bool),
		graph:            newGroupGraph(),
		indexes:          make(map[string]*inst),
		pending:          make(map[string]map[index.FileID]pendingEntry),
		postings:         make(map[string]map[index.FileID]proto.IndexEntry),
		log:              wal.NewGroupCommit(n.walGC),
	}
}

// groupsSnapshot returns the current groups sorted by id. The registry lock
// is released before return; callers lock each group as they visit it.
func (n *Node) groupsSnapshot() []*group {
	n.mu.RLock()
	out := make([]*group, 0, len(n.groups))
	for _, g := range n.groups {
		out = append(out, g)
	}
	n.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// instFor returns the group's index instance, materializing it from the
// node's spec table on first use. Caller holds g.mu.
func (n *Node) instFor(g *group, name string) (*inst, error) {
	if in, ok := g.indexes[name]; ok {
		return in, nil
	}
	spec, ok := n.lookupSpec(name)
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrUnknownIndex)
	}
	in := &inst{spec: spec}
	var err error
	switch spec.Type {
	case proto.IndexBTree:
		in.bt, err = index.NewBTree(n.cfg.Store)
	case proto.IndexHash:
		in.ht, err = index.NewHashIndex(n.cfg.Store, 64)
	case proto.IndexKD:
		dims := spec.Dims()
		if dims == 0 {
			return nil, fmt.Errorf("indexnode: kd index %q has no fields", name)
		}
		in.kd, err = index.NewKDTree(dims)
		in.kdResident = true
		in.kdOffset = n.nextOff.Add(1<<30) - 1<<30
	default:
		return nil, fmt.Errorf("indexnode: index %q has unknown type %d", name, spec.Type)
	}
	if err != nil {
		return nil, fmt.Errorf("indexnode: materialize %q: %w", name, err)
	}
	g.indexes[name] = in
	return in, nil
}

// CreateACG provisions a group with pre-declared membership. An explicit
// provisioning order overrides any release tombstone.
func (n *Node) CreateACG(_ context.Context, req proto.CreateACGReq) (proto.CreateACGResp, error) {
	n.clearReleased(req.ACG)
	g, err := n.lockOrCreateGroup(req.ACG)
	if err != nil {
		return proto.CreateACGResp{}, err
	}
	defer g.mu.Unlock()
	for _, f := range req.Files {
		g.files[f] = true
		delete(g.movedOut, f)
	}
	return proto.CreateACGResp{OK: true}, nil
}

// Update is the file-indexing fast path: WAL append + cache insert. Only
// the target group is locked, so updates to different ACGs run in parallel
// and their WAL appends group-commit into shared device writes.
//
// Everything a commit can precompute happens before the group mutex is
// taken (off-lock prepare): the WAL record is gob-encoded and CRC-framed,
// and the index keys the batch apply will sort on are encoded. The
// critical section holds only the in-memory log append and the coalescing
// cache insert, so an update never lengthens a concurrent
// commit-on-search stall on its group by more than that.
func (n *Node) Update(ctx context.Context, req proto.UpdateReq) (proto.UpdateResp, error) {
	// Admission runs before any work: a shed update was never logged or
	// cached, so ErrOverloaded can never alias an acknowledged write.
	if err := n.adm.acquire(req.Client); err != nil {
		n.updatesShed.Inc()
		return proto.UpdateResp{}, fmt.Errorf("indexnode %s update: %w", n.cfg.ID, err)
	}
	defer n.adm.release(req.Client)
	// Lease fence: an un-renewed primary lease means the Master may have
	// promoted a successor — acking here could fork history (the dual-ack
	// the replication bench counts). Refuse before any durable work so
	// the client retries against fresh placement.
	if n.leaseExpired() {
		n.leaseRejects.Inc()
		return proto.UpdateResp{}, fmt.Errorf(
			"indexnode %s: primary lease expired (node epoch %d): %w",
			n.cfg.ID, n.placementEpoch.Load(), perr.ErrStalePlacement)
	}
	if err := n.ensureSpec(ctx, req.IndexName); err != nil {
		return proto.UpdateResp{}, err
	}
	spec, _ := n.lookupSpec(req.IndexName) // present after ensureSpec
	// Reject unindexable entries before the acknowledgement: a value whose
	// key exceeds the page bound, or a KD point whose dimensionality does
	// not match the spec, would otherwise be accepted here and then fail
	// every commit of the group, wedging its strict-consistency searches
	// forever.
	if spec.Type == proto.IndexKD {
		dims := spec.Dims()
		if dims == 0 {
			// A Fields-less KD spec can never materialize an index; its
			// updates would sit in the cache wedging every commit.
			return proto.UpdateResp{}, fmt.Errorf("indexnode update %q: kd index has no fields", req.IndexName)
		}
		for _, e := range req.Entries {
			if !e.Delete && len(e.KDCoords) != dims {
				return proto.UpdateResp{}, fmt.Errorf("indexnode update %q file %d: kd point has %d coords, want %d",
					req.IndexName, e.File, len(e.KDCoords), dims)
			}
		}
	} else {
		for _, e := range req.Entries {
			if !e.Delete && !index.CompositeKeyFits(e.Value) {
				return proto.UpdateResp{}, fmt.Errorf("indexnode update %q file %d: %w",
					req.IndexName, e.File, index.ErrKeyTooLong)
			}
		}
	}
	rec, err := encodeWALRecord(req)
	if err != nil {
		return proto.UpdateResp{}, err
	}
	framed := wal.FrameRecord(rec)
	keys := prepareEntryKeys(spec, req.Entries)

	g, err := n.lockOrCreateGroup(req.ACG)
	if err != nil {
		return proto.UpdateResp{}, err
	}
	defer g.mu.Unlock()
	if g.follower {
		// Follower copies accept only the primary's replication stream; a
		// direct update here is a client routed by a stale (or replica)
		// target.
		n.staleRejects.Inc()
		return proto.UpdateResp{}, fmt.Errorf(
			"indexnode %s: acg %d is a follower replica (node epoch %d): %w",
			n.cfg.ID, req.ACG, n.placementEpoch.Load(), perr.ErrStalePlacement)
	}
	if g.movedOut != nil {
		for _, e := range req.Entries {
			if g.movedOut[e.File] {
				n.staleRejects.Inc()
				return proto.UpdateResp{}, fmt.Errorf(
					"indexnode %s: file %d split away from acg %d (node epoch %d): %w",
					n.cfg.ID, e.File, req.ACG, n.placementEpoch.Load(), perr.ErrStalePlacement)
			}
		}
	}
	if err := g.log.AppendFramed(framed); err != nil {
		return proto.UpdateResp{}, fmt.Errorf("indexnode update: %w", err)
	}
	// Mirror the acknowledged record to shared storage: the durability the
	// ack promises must survive this node, not just this process.
	if n.cfg.Shared != nil {
		n.cfg.Shared.AppendWAL(g.id, framed)
	}
	// Stream the acknowledged frame to the follower ack set before
	// acknowledging: acked durability = primary append + shared mirror +
	// follower appends. The sequence bumps on every ack (replicated or
	// not) so a replica seeded later starts from a true stream position.
	g.replSeq++
	if len(g.reps) > 0 {
		n.streamToFollowersLocked(ctx, g, framed)
	}
	for i, e := range req.Entries {
		g.files[e.File] = true
		var key []byte
		if keys != nil {
			key = keys[i]
		}
		n.addPendingLocked(g, req.IndexName, e, key)
	}
	g.lastUpdate = n.cfg.Clock.Now()

	if n.cfg.DisableLazyCache || g.pendingCount >= n.cfg.CacheLimit {
		if err := n.commitGroupLocked(g); err != nil {
			return proto.UpdateResp{}, err
		}
	}
	return proto.UpdateResp{Cached: g.pendingCount, Epoch: n.epoch()}, nil
}

// prepareEntryKeys encodes, outside any lock, the index keys a commit
// will need for entries: composite (value, file) keys for B-tree
// postings, bare value encodings for hash postings. Deletes keep a nil
// key — they are keyed by the committed posting's old value, known only
// at commit — and KD entries need none (they apply into the postings map
// and the tree is built from points).
func prepareEntryKeys(spec proto.IndexSpec, entries []proto.IndexEntry) [][]byte {
	switch spec.Type {
	case proto.IndexBTree:
		keys := make([][]byte, len(entries))
		for i, e := range entries {
			if e.Delete {
				continue
			}
			keys[i] = index.AppendCompositeKey(make([]byte, 0, 2*e.Value.EncodedLen()+10), e.Value, e.File)
		}
		return keys
	case proto.IndexHash:
		keys := make([][]byte, len(entries))
		for i, e := range entries {
			if e.Delete {
				continue
			}
			keys[i] = e.Value.Encode(nil)
		}
		return keys
	default:
		return nil
	}
}

// addPendingLocked inserts one acknowledged entry into the group's
// coalescing cache (last-write-wins per (index, file)). Caller holds
// g.mu.
func (n *Node) addPendingLocked(g *group, name string, e proto.IndexEntry, key []byte) {
	m := g.pending[name]
	if m == nil {
		m = make(map[index.FileID]pendingEntry)
		g.pending[name] = m
	}
	if _, ok := m[e.File]; ok {
		n.coalescedEntries.Inc()
	}
	m[e.File] = pendingEntry{e: e, key: key}
	g.pendingCount++
}

// FlushACG merges a client-captured causality fragment into the group's
// authoritative graph. Causality edges travel outside the WAL, so with a
// shared store configured the group is checkpointed afterwards — the graph
// a recovery restores must include them (the paper stores ACGs as regular
// files in the shared file system).
func (n *Node) FlushACG(_ context.Context, req proto.FlushACGReq) (proto.FlushACGResp, error) {
	g, err := n.lockOrCreateGroup(req.ACG)
	if err != nil {
		return proto.FlushACGResp{}, err
	}
	defer g.mu.Unlock()
	for _, v := range req.Vertices {
		g.files[v] = true
		delete(g.movedOut, v) // freshly Master-routed membership unfences
	}
	for _, e := range req.Edges {
		g.files[e.Src] = true
		g.files[e.Dst] = true
		delete(g.movedOut, e.Src)
		delete(g.movedOut, e.Dst)
		g.graph.addEdge(e.Src, e.Dst, e.Weight)
	}
	if err := n.checkpointLocked(g); err != nil {
		return proto.FlushACGResp{}, err
	}
	return proto.FlushACGResp{OK: true}, nil
}

// Tick commits groups whose lazy cache has exceeded the commit timeout.
// Deployments call it from a ticker; experiments call it after advancing
// virtual time. Groups are visited one at a time, so a tick never stalls
// traffic on ACGs it is not committing — and a wedged group never stalls
// the sweep: its error is collected, counted in NodeStats.CommitFailures,
// and the remaining groups still commit. The joined error reports every
// failing group.
func (n *Node) Tick() error {
	now := n.cfg.Clock.Now()
	var errs []error
	for _, g := range n.groupsSnapshot() {
		if !g.lockLive() {
			continue
		}
		if g.pendingCount > 0 && now-g.lastUpdate >= n.cfg.CommitTimeout {
			if err := n.commitGroupLocked(g); err != nil {
				errs = append(errs, fmt.Errorf("indexnode tick acg %d: %w", g.id, err))
			}
		}
		g.mu.Unlock()
	}
	return errors.Join(errs...)
}

// acgLabel is the metrics label for a group.
func acgLabel(id proto.ACGID) string { return strconv.FormatUint(uint64(id), 10) }

// commitGroupLocked merges the group's pending cache into its durable
// indices with batch semantics: each index's coalesced run (one surviving
// entry per file) is applied through the sorted bulk paths, and KD
// indices rebuild and re-serialize at most once per commit. Caller holds
// g.mu.
func (n *Node) commitGroupLocked(g *group) error {
	if g.pendingCount == 0 {
		return nil
	}
	err := n.commitPendingLocked(g)
	if err != nil {
		n.commitFailures.Inc()
	}
	return err
}

func (n *Node) commitPendingLocked(g *group) error {
	start := n.cfg.Clock.Now()
	committed := int64(g.pendingCount)
	names := make([]string, 0, len(g.pending))
	for name := range g.pending {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		run := g.pending[name]
		if len(run) == 0 {
			continue
		}
		in, err := n.instFor(g, name)
		if err != nil {
			return err
		}
		if err := n.applyRunLocked(g, in, name, run); err != nil {
			return err
		}
		// Keep the name key (with an empty run): a retry after a failed
		// KD-image persist below must still find the index in its names
		// sweep and re-serialize it, or the WAL would eventually truncate
		// with a stale durable image.
		g.pending[name] = nil
	}
	// KD indices re-serialize once per commit (not per entry).
	for _, name := range names {
		if in := g.indexes[name]; in != nil && in.kd != nil {
			in.kdImage = in.kd.Serialize()
			if n.cfg.Disk != nil {
				if _, err := n.cfg.Disk.Write(in.kdOffset, int64(len(in.kdImage))); err != nil {
					return fmt.Errorf("indexnode: persist kd image: %w", err)
				}
			}
			in.kdResident = true
		}
	}
	// Truncate before the commit is declared done: a failed truncate
	// leaves pendingCount non-zero, so the retry triggers (Tick's
	// pendingCount gate, commit-on-search) re-run this function — the
	// re-apply is a no-op over nil runs and the truncate and counters get
	// their retry. Zeroing the count first would strand the applied
	// window in the WAL and skip the accounting forever.
	if err := g.log.Truncate(); err != nil {
		return fmt.Errorf("indexnode: truncate wal: %w", err)
	}
	g.pendingCount = 0
	// Fully successful commit: the consumed names can go. (Until here
	// they must stay, so a retry after a failed KD persist still finds
	// the index in its names sweep; dropping them now keeps later
	// KD-free windows from re-serializing an unchanged tree.)
	for _, name := range names {
		delete(g.pending, name)
	}
	n.commits.Inc()
	n.commitEntries.Add(committed)
	n.commitNanos.Add(int64(n.cfg.Clock.Now() - start))
	g.acgCommits.Inc()
	g.acgCommitEntries.Add(committed)
	// Compact the shared-storage mirror once its WAL has grown past the
	// threshold: without this, a long-lived group that never splits or
	// migrates would accumulate its entire update history there, and
	// recovery replay time would grow with cluster age. The cost — one
	// group-image serialization — is amortized over the threshold's worth
	// of acknowledged records, never paid per commit. Followers never
	// touch the mirror — the primary owns it; a follower checkpointing
	// would race the primary's appends.
	if n.cfg.Shared != nil && !g.follower && n.cfg.Shared.WALRecords(g.id) >= sharedWALCheckpointRecords {
		if err := n.writeCheckpointLocked(g); err != nil {
			return err
		}
	}
	return nil
}

// sharedWALCheckpointRecords is the mirrored-WAL length at which the
// commit path folds a group's shared-storage history into a fresh
// checkpoint.
const sharedWALCheckpointRecords = 4096

// applyRunLocked merges one coalesced run — at most one entry per file,
// the last acknowledged write for that (index, file) — into the named
// index and the group's committed postings. Files are visited in
// ascending id order, which both makes the apply deterministic and feeds
// the sorted bulk index paths. Equivalence contract (property-tested):
// the index state after a batched apply is identical to replaying the
// acknowledged entries one at a time, because each file's intermediate
// values would have been deleted again before the commit ended. Caller
// holds g.mu.
func (n *Node) applyRunLocked(g *group, in *inst, name string, run map[index.FileID]pendingEntry) error {
	post := g.postings[name]
	if post == nil {
		post = make(map[index.FileID]proto.IndexEntry, len(run))
		g.postings[name] = post
	}
	files := make([]index.FileID, 0, len(run))
	for f := range run {
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool { return files[i] < files[j] })

	if in.kd != nil {
		// KD: validate every point's dimensionality up front, before any
		// state advances — with all points valid, neither the incremental
		// inserts nor a rebuild from (inductively valid) postings can
		// fail, so the postings-first ordering below cannot strand the
		// tree behind the map on a retry. (Update rejects bad dims at ack
		// time; this guards entries that arrived by WAL recovery.)
		dims := in.spec.Dims()
		for _, f := range files {
			if pe := run[f]; !pe.e.Delete && len(pe.e.KDCoords) != dims {
				return fmt.Errorf("indexnode: kd %q file %d: point has %d coords, want %d",
					name, f, len(pe.e.KDCoords), dims)
			}
		}
		// Fold the run into the postings map first; rebuild once at the
		// end only if a point was removed or actually moved (a
		// delete-heavy commit costs one O(n log n) rebuild, not one per
		// entry, and a re-ack with unchanged coordinates costs nothing).
		// A pure insert window keeps the incremental insert path —
		// fresh files only, since the tree already holds the unmoved
		// points.
		rebuild := false
		var fresh []index.FileID
		for _, f := range files {
			pe := run[f]
			if pe.e.Delete {
				if _, ok := post[f]; ok {
					delete(post, f)
					rebuild = true
				}
				continue
			}
			if old, ok := post[f]; ok {
				if !slices.Equal(old.KDCoords, pe.e.KDCoords) {
					rebuild = true // re-index moved the point
				}
			} else {
				fresh = append(fresh, f)
			}
			post[f] = pe.e
		}
		if rebuild {
			return n.rebuildKD(g, in, name)
		}
		if len(fresh) > 0 {
			// The serialized image is stale the moment the tree mutates;
			// a cold load in the window before the commit re-serializes
			// (ensureKDResidentLocked falls back to serializing the live
			// tree when the image is nil) must never resurrect it.
			in.kdImage = nil
		}
		for _, f := range fresh {
			if err := in.kd.Insert(index.Point{Coords: run[f].e.KDCoords, File: f}); err != nil {
				return err
			}
		}
		return nil
	}

	// B-tree / hash: split the run into old-posting removals and new
	// insertions, then apply each side in bulk so adjacent keys share
	// descents and page writes. The postings map is only advanced after
	// the index mutations succeed: the bulk paths are idempotent
	// (DeleteSorted skips absent keys, InsertSorted skips duplicates), so
	// a retry after a partial failure re-derives the same ops from the
	// unchanged postings and self-heals instead of diverging.
	var delKeys, insKeys [][]byte
	var delOps, insOps []index.HashOp
	var putFiles, dropFiles []index.FileID
	for _, f := range files {
		pe := run[f]
		old, had := post[f]
		if pe.e.Delete {
			if !had {
				continue // deleting an unindexed posting is a no-op
			}
			dropFiles = append(dropFiles, f)
			if in.bt != nil {
				delKeys = append(delKeys, index.AppendCompositeKey(nil, old.Value, f))
			} else {
				delOps = append(delOps, index.HashOp{ValEnc: old.Value.Encode(nil), File: f})
			}
			continue
		}
		putFiles = append(putFiles, f)
		if had && !old.Value.Equal(pe.e.Value) {
			if in.bt != nil {
				delKeys = append(delKeys, index.AppendCompositeKey(nil, old.Value, f))
			} else {
				delOps = append(delOps, index.HashOp{ValEnc: old.Value.Encode(nil), File: f})
			}
		}
		// The insert is staged even when the committed posting already
		// carries this exact value: the bulk paths skip duplicates, and
		// the unconditional re-insert heals an index entry lost to a
		// previously failed partial apply (map and index must reconverge
		// on retry, not trust each other).
		key := pe.key
		if key == nil { // WAL-recovered entries carry no prepared key
			if in.bt != nil {
				key = index.AppendCompositeKey(nil, pe.e.Value, f)
			} else {
				key = pe.e.Value.Encode(nil)
			}
		}
		if in.bt != nil {
			insKeys = append(insKeys, key)
		} else {
			insOps = append(insOps, index.HashOp{ValEnc: key, File: f})
		}
	}
	if in.bt != nil {
		sortKeys(delKeys)
		sortKeys(insKeys)
		if _, err := in.bt.DeleteSorted(delKeys); err != nil {
			return err
		}
		if _, err := in.bt.InsertSorted(insKeys); err != nil {
			return err
		}
	} else {
		if _, err := in.ht.DeleteBatch(delOps); err != nil {
			return err
		}
		if _, err := in.ht.InsertBatch(insOps); err != nil {
			return err
		}
	}
	for _, f := range dropFiles {
		delete(post, f)
	}
	for _, f := range putFiles {
		post[f] = run[f].e
	}
	return nil
}

// sortKeys orders encoded keys ascending (the bulk-path precondition).
func sortKeys(keys [][]byte) {
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
}

// rebuildKD reconstructs a KD index from current postings (after deletes
// or re-indexed points). The batch commit engine calls this at most once
// per (KD index, commit) — n.kdRebuilds counts invocations, which is how
// tests pin that contract. Caller holds g.mu.
func (n *Node) rebuildKD(g *group, in *inst, name string) error {
	dims := in.spec.Dims()
	pts := make([]index.Point, 0, len(g.postings[name]))
	for f, e := range g.postings[name] {
		pts = append(pts, index.Point{Coords: e.KDCoords, File: f})
	}
	kd, err := index.BuildKDTree(dims, pts)
	if err != nil {
		return fmt.Errorf("indexnode: rebuild kd %q: %w", name, err)
	}
	in.kd = kd
	// Invalidate the serialized image: it no longer matches the tree, and
	// a cold load before the caller re-serializes must rebuild from the
	// live tree instead of resurrecting the pre-rebuild points.
	in.kdImage = nil
	n.kdRebuilds.Inc()
	return nil
}

// DropCaches models a cold start: the buffer pool is emptied and KD images
// become non-resident, so the next queries pay the full disk cost.
func (n *Node) DropCaches() error {
	if err := n.cfg.Store.DropCache(); err != nil {
		return err
	}
	for _, g := range n.groupsSnapshot() {
		if !g.lockLive() {
			continue
		}
		for _, in := range g.indexes {
			if in.kd != nil {
				in.kdResident = false
			}
		}
		g.mu.Unlock()
	}
	return nil
}

// encodeWALRecord serializes an update for the group log.
func encodeWALRecord(req proto.UpdateReq) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
		return nil, fmt.Errorf("indexnode: encode wal record: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeWALRecord(rec []byte) (proto.UpdateReq, error) {
	var req proto.UpdateReq
	if err := gob.NewDecoder(bytes.NewReader(rec)).Decode(&req); err != nil {
		return proto.UpdateReq{}, fmt.Errorf("indexnode: decode wal record: %w", err)
	}
	return req, nil
}

// ACGImage serializes a group's authoritative causality graph to its
// shared-storage form (the paper stores ACGs as regular files in the
// underlying shared file system, §IV).
func (n *Node) ACGImage(id proto.ACGID) ([]byte, error) {
	g := n.lockGroup(id)
	if g == nil {
		return nil, fmt.Errorf("acg %d: %w", id, ErrUnknownACG)
	}
	out := acg.NewGraph()
	for f := range g.files {
		out.AddVertex(f)
	}
	for src, m := range g.graph.adj {
		for dst, w := range m {
			out.AddEdge(src, dst, w)
		}
	}
	g.mu.Unlock()
	if n.cfg.Disk != nil {
		img := out.Serialize()
		if _, err := n.cfg.Disk.AppendLog(int64(len(img))); err != nil {
			return nil, fmt.Errorf("indexnode: persist acg %d: %w", id, err)
		}
		return img, nil
	}
	return out.Serialize(), nil
}

// LoadACGImage restores a group's causality graph from a shared-storage
// image (used when a replacement node adopts a crashed node's groups).
func (n *Node) LoadACGImage(id proto.ACGID, img []byte) error {
	restored, err := acg.Deserialize(img)
	if err != nil {
		return fmt.Errorf("indexnode: load acg %d: %w", id, err)
	}
	n.clearReleased(id) // explicit adoption overrides any tombstone
	g, err := n.lockOrCreateGroup(id)
	if err != nil {
		return err
	}
	defer g.mu.Unlock()
	for _, v := range restored.Vertices() {
		g.files[v] = true
	}
	restored.ForEachEdge(func(src, dst index.FileID, w int64) bool {
		g.graph.addEdge(src, dst, w)
		return true
	})
	return nil
}

// WALImage returns the group's current log image (what would sit in shared
// storage at a crash).
func (n *Node) WALImage(id proto.ACGID) ([]byte, error) {
	g := n.lockGroup(id)
	if g == nil {
		return nil, fmt.Errorf("acg %d: %w", id, ErrUnknownACG)
	}
	defer g.mu.Unlock()
	return g.log.Bytes(), nil
}

// RecoverGroup replays a WAL image into the group's cache (crash recovery:
// acknowledged-but-uncommitted updates are not lost). A torn tail stops the
// replay at the last intact record, which is exactly the guarantee the
// acknowledgement made.
func (n *Node) RecoverGroup(id proto.ACGID, walImage []byte) (int, error) {
	n.clearReleased(id) // explicit recovery overrides any tombstone
	g, err := n.lockOrCreateGroup(id)
	if err != nil {
		return 0, err
	}
	defer g.mu.Unlock()
	recovered := 0
	err = wal.ReplayBytes(walImage, func(rec []byte) bool {
		req, derr := decodeWALRecord(rec)
		if derr != nil {
			return false
		}
		for _, e := range req.Entries {
			g.files[e.File] = true
			// Recovered entries carry no prepared key (the spec table may
			// not be populated yet on a fresh node); the commit encodes
			// them on demand.
			n.addPendingLocked(g, req.IndexName, e, nil)
		}
		recovered += len(req.Entries)
		return true
	})
	if err != nil && !errors.Is(err, wal.ErrCorrupt) {
		return recovered, err
	}
	g.lastUpdate = n.cfg.Clock.Now()
	return recovered, nil
}

// NodeStats reports local statistics.
func (n *Node) NodeStats(_ context.Context, _ proto.NodeStatsReq) (proto.NodeStatsResp, error) {
	groups := n.groupsSnapshot()
	resp := proto.NodeStatsResp{Node: n.cfg.ID, ACGs: len(groups)}
	for _, g := range groups {
		if !g.lockLive() {
			resp.ACGs--
			continue
		}
		resp.Files += int64(len(g.files))
		resp.CachedOps += g.pendingCount
		resp.WALRecords += g.log.Len()
		if g.follower {
			resp.FollowerGroups++
		}
		g.mu.Unlock()
	}
	// Per-ACG commit counters come from the counter set, not the live
	// groups: merged-away groups' counts were folded into their merge
	// destination, so the breakdown always sums to Commits.
	snap := n.acgCommits.Snapshot()
	resp.PerACGCommits = make(map[proto.ACGID]int64, len(snap))
	for label, v := range snap {
		id, err := strconv.ParseUint(label, 10, 64)
		if err != nil {
			continue // unreachable: labels are acgLabel-formatted
		}
		resp.PerACGCommits[proto.ACGID(id)] = v
	}
	resp.Commits = n.commits.Value()
	resp.CommitEntries = n.commitEntries.Value()
	resp.CommitFailures = n.commitFailures.Value()
	resp.KDRebuilds = n.kdRebuilds.Value()
	resp.CoalescedEntries = n.coalescedEntries.Value()
	resp.HashScanFallbacks = n.hashScanFallbacks.Value()
	resp.PlacementEpoch = n.epoch()
	resp.StalePlacementRejects = n.staleRejects.Value()
	resp.GroupsMigratedOut = n.groupsMigrated.Value()
	resp.GroupsRecovered = n.groupsRecovered.Value()
	resp.PeerConnEvictions = n.peerConnEvictions.Value()
	resp.FollowerAppends = n.followerAppends.Value()
	resp.FollowerCuts = n.followerCuts.Value()
	resp.Promotions = n.promotions.Value()
	resp.SearchesServed = n.searchesServed.Value()
	resp.LeaseRejects = n.leaseRejects.Value()
	resp.QueueDepth = n.adm.depth()
	resp.UpdatesShed = n.updatesShed.Value()
	resp.SearchesShed = n.searchesShed.Value()
	resp.FairnessSheds = n.fairnessSheds.Value()
	ws := n.walGC.Stats()
	resp.WALBatches = ws.Batches
	resp.WALBatchedRecords = ws.Records
	resp.MaxWALBatch = ws.MaxBatchRecords
	st := n.cfg.Store.Stats()
	resp.PoolHits, resp.PoolMisses = st.Hits, st.Misses
	n.specMu.RLock()
	names := make([]string, 0, len(n.specs))
	for name := range n.specs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		resp.IndexSpecs = append(resp.IndexSpecs, n.specs[name])
	}
	n.specMu.RUnlock()
	return resp, nil
}

// leaseExpired reports whether this node held a primary lease and let it
// lapse: the Master has been unreachable for at least the lease duration,
// long enough that its failure sweep (which waits strictly longer) may
// have promoted a successor. A node that never received a lease (failover
// disabled, or no heartbeat yet) never fences. The comparison is
// inclusive (>=) while the Master's sweep is strictly greater (>), so on
// synchronized clocks the zombie provably stops before a successor starts.
func (n *Node) leaseExpired() bool {
	d := n.leaseDuration.Load()
	if d == 0 {
		return false
	}
	return int64(n.cfg.Clock.Now())-n.leaseGranted.Load() >= d
}

// Heartbeat sends one heartbeat to the Master and executes the orders the
// reply carries, in dependency order: recoveries first (adopt groups whose
// owner died), then drops of stale copies this node no longer owns, then
// promotions (a follower copy takes over as primary), then splits, then
// migrations off this node, then replica seedings. All of them are the
// Master's only way to act on a node — it never dials.
func (n *Node) Heartbeat(ctx context.Context) error {
	if n.cfg.Master == nil {
		return ErrNoMaster
	}
	req := proto.HeartbeatReq{
		Node:       n.cfg.ID,
		QueueDepth: n.adm.depth(),
		Shed:       n.updatesShed.Value() + n.searchesShed.Value(),
	}
	for _, g := range n.groupsSnapshot() {
		if !g.lockLive() {
			continue
		}
		am := proto.ACGMeta{ACG: g.id, Files: int64(len(g.files)), Follower: g.follower, ReplSeq: g.replSeq}
		if !g.follower {
			// The primary's ack set doubles as the Master's cut detector: a
			// registered replica missing here was cut (or never inherited
			// after a migration) and gets unseeded and re-seeded.
			for _, rep := range g.reps {
				am.Followers = append(am.Followers, rep.Node)
			}
		}
		req.ACGs = append(req.ACGs, am)
		g.mu.Unlock()
	}

	resp, err := rpc.Call[proto.HeartbeatReq, proto.HeartbeatResp](ctx, n.cfg.Master, proto.MethodHeartbeat, req)
	if err != nil {
		return fmt.Errorf("indexnode heartbeat: %w", err)
	}
	n.noteEpoch(resp.Epoch)
	if resp.LeaseNanos > 0 {
		// Renew the primary lease: grant time before duration, so the
		// enable edge (duration becoming nonzero on the first grant) can
		// never pair with a zero grant timestamp and spuriously fence.
		n.leaseGranted.Store(int64(n.cfg.Clock.Now()))
		n.leaseDuration.Store(resp.LeaseNanos)
	}
	// A failed recovery must not abort its sibling orders: the Master
	// re-issues recover orders every heartbeat until the owner's report
	// proves the adoption, so the right behavior is to keep going and
	// surface the joined errors.
	var errs []error
	for _, id := range resp.RecoverACGs {
		if err := n.RecoverFromShared(ctx, id); err != nil {
			errs = append(errs, fmt.Errorf("indexnode recover order %d: %w", id, err))
		}
	}
	for _, id := range resp.DropACGs {
		n.ReleaseACG(id, resp.Epoch)
	}
	for _, ord := range resp.PromoteACGs {
		if err := n.PromoteACG(ctx, ord); err != nil {
			errs = append(errs, fmt.Errorf("indexnode promote order %d: %w", ord.ACG, err))
		}
	}
	for _, id := range resp.SplitACGs {
		if _, err := n.SplitACG(ctx, proto.SplitACGReq{ACG: id}); err != nil {
			errs = append(errs, fmt.Errorf("indexnode split order %d: %w", id, err))
			break
		}
	}
	for _, ord := range resp.MigrateACGs {
		if err := n.TransferACG(ctx, ord); err != nil {
			errs = append(errs, fmt.Errorf("indexnode migrate order %d → %s: %w", ord.ACG, ord.Dest, err))
			break
		}
	}
	for _, ord := range resp.ReplicateACGs {
		if err := n.ReplicateACG(ctx, ord); err != nil {
			errs = append(errs, fmt.Errorf("indexnode replicate order %d → %s: %w", ord.ACG, ord.Dest, err))
			break
		}
	}
	return errors.Join(errs...)
}

// groupFilesSorted returns a group's files sorted (helper for split and
// tests). Caller holds g.mu.
func (g *group) groupFilesSorted() []index.FileID {
	out := make([]index.FileID, 0, len(g.files))
	for f := range g.files {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// attrValue resolves the current value of field for file within the group
// by consulting committed postings of any index covering that field.
// Caller holds g.mu.
func (n *Node) attrValue(g *group, field string, f index.FileID) (attr.Value, bool) {
	n.specMu.RLock()
	defer n.specMu.RUnlock()
	for name, post := range g.postings {
		spec := n.specs[name]
		if spec.Field != field || spec.Type == proto.IndexKD {
			continue
		}
		if e, ok := post[f]; ok {
			return e.Value, true
		}
	}
	return attr.Value{}, false
}
