// Package indexnode implements Propeller's Index Node (§IV): it houses the
// partitioned per-ACG file indices (B-tree, hash table, K-D-tree), serves
// file-indexing and file-search requests, and runs background group splits
// under the Master's coordination.
//
// The latency-critical design point is the lazy index cache: an indexing
// request is acknowledged after a write-ahead-log append and an in-memory
// cache insert; cached requests are committed to the durable index either
// after a commit timeout (default 5 s) or synchronously before the next
// file-search on the group — whichever comes first. Searches therefore see
// strongly consistent results while normal I/O pays only the log-append
// cost.
//
// Concurrency model. ACG partitions are independent by design (updates
// never fan out across groups), and the node's locking mirrors that: the
// registry lock n.mu guards only the ACGID→group table, while every group
// carries its own mutex protecting its cache, indices and causality graph.
// Updates and searches on different ACGs proceed in parallel; per-ACG WAL
// appends coalesce through a shared wal.GroupCommitter so concurrent
// acknowledgements share sequential device writes.
//
// Lock ordering (violations deadlock):
//
//  1. n.mergeMu is outermost and taken only by MergeACGs; it serializes
//     merges, the only operations holding two group locks at once (taken
//     in ascending ACGID order).
//  2. n.mu (registry) is held only for map access — never while acquiring
//     a group lock. Because of that, MergeACGs may take n.mu while holding
//     group locks (its delete step) without deadlock.
//  3. group.mu before n.specMu. Never acquire a group lock while holding
//     the spec table lock.
//
// A group removed from the registry by a merge is marked dead under its
// lock; lockLive/lockGroup/lockOrCreateGroup encapsulate the re-resolve
// protocol so no caller ever mutates an orphaned group. Multi-group
// searches re-run when n.mergeEpoch moves during the pass, so a concurrent
// merge cannot make acknowledged files vanish from a result set.
package indexnode

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"propeller/internal/acg"
	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/metrics"
	"propeller/internal/pagestore"
	"propeller/internal/proto"
	"propeller/internal/rpc"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
	"propeller/internal/wal"
)

// Errors returned by the node.
var (
	ErrUnknownACG   = errors.New("indexnode: unknown acg")
	ErrUnknownIndex = errors.New("indexnode: unknown index for this node")
	ErrNoMaster     = errors.New("indexnode: operation requires a master connection")
)

// Dialer opens RPC connections to peer nodes (injected by the cluster
// harness so in-process and TCP transports both work).
type Dialer func(addr string) (*rpc.Client, error)

// Config tunes an Index Node.
type Config struct {
	ID    proto.NodeID
	Store *pagestore.Store
	Disk  *simdisk.Disk
	Clock *vclock.Clock
	// CommitTimeout is the lazy-cache timeout (virtual time; paper: 5 s).
	CommitTimeout time.Duration
	// CacheLimit forces a commit when a group's cache holds this many
	// pending entries.
	CacheLimit int
	// SplitThreshold is the group size that triggers a background split.
	SplitThreshold int
	// Master connects to the Master Node (nil for standalone single-node
	// operation).
	Master *rpc.Client
	// Dial opens connections to peer Index Nodes for ACG migration.
	Dial Dialer
	// DisableLazyCache commits every update synchronously (ablation).
	DisableLazyCache bool
	// SearchFanout bounds the worker pool a multi-ACG search fans out
	// over (0 = GOMAXPROCS capped at 8; 1 = serial pass).
	SearchFanout int
}

func (c Config) withDefaults() Config {
	if c.CommitTimeout <= 0 {
		c.CommitTimeout = 5 * time.Second
	}
	if c.CacheLimit <= 0 {
		c.CacheLimit = 8192
	}
	if c.SplitThreshold <= 0 {
		c.SplitThreshold = 50000
	}
	if c.Clock == nil {
		c.Clock = vclock.New()
	}
	return c
}

// inst is one materialized index inside a group.
type inst struct {
	spec proto.IndexSpec
	bt   *index.BTree
	ht   *index.HashIndex
	kd   *index.KDTree
	// kdImage is the serialized KD-tree; kdResident tracks whether the
	// prototype's whole-tree RAM load has been paid since the last cache
	// drop (§V-E).
	kdImage    []byte
	kdResident bool
	kdOffset   int64
}

// group is one ACG partition and its indices. Every field below mu is
// protected by it; a group is only ever mutated by the goroutine holding
// its lock, so operations on different ACGs never contend.
type group struct {
	id proto.ACGID

	mu sync.Mutex
	// dead marks a group that MergeACGs drained and removed from the
	// registry. A caller that resolved the pointer before the merge and
	// locked it after must not mutate the orphan: check dead (lockLive)
	// first and re-resolve through the registry.
	dead  bool
	files map[index.FileID]bool
	graph *groupGraph
	// indexes by name.
	indexes map[string]*inst
	// pending is the lazy index cache: per index name, the uncommitted
	// entries in arrival order.
	pending      map[string][]proto.IndexEntry
	pendingCount int
	lastUpdate   time.Duration
	// postings holds the latest committed posting per (index, file); it
	// serves multi-predicate filtering and ACG migration.
	postings map[string]map[index.FileID]proto.IndexEntry
	log      *wal.Log
}

// Node is an Index Node.
type Node struct {
	cfg Config
	// walGC batches the WAL-append charges of every group on this node
	// into shared sequential device writes (group commit).
	walGC *wal.GroupCommitter

	// mu guards only the group registry; per-group state is behind each
	// group's own lock (see the package comment for the lock ordering).
	mu     sync.RWMutex
	groups map[proto.ACGID]*group

	// mergeMu serializes merges (the only operations locking two groups),
	// keeping the registry lock out of the merge data path.
	mergeMu sync.Mutex
	// mergeEpoch counts completed merges; multi-group searches use it to
	// detect a merge moving files between their per-group snapshots.
	mergeEpoch atomic.Int64

	// specMu guards the index spec table.
	specMu sync.RWMutex
	specs  map[string]proto.IndexSpec

	// nextOff allocates simdisk offsets for KD images.
	nextOff atomic.Int64

	// stats (lock-free; hot paths must not share a cache line with locks).
	commits       metrics.Counter
	commitNanos   metrics.Counter
	commitEntries metrics.Counter
	splitsDone    metrics.Counter
	// hashScanFallbacks counts searches a hash index could not serve as a
	// point lookup and silently degraded to a full-table scan.
	hashScanFallbacks metrics.Counter
	// per-ACG commit/entry counters, labelled by decimal ACGID.
	acgCommits       metrics.CounterSet
	acgCommitEntries metrics.CounterSet
}

// groupGraph is the node-side authoritative ACG of a group (plain adjacency;
// the acg package's builder lives on clients).
type groupGraph struct {
	adj map[index.FileID]map[index.FileID]int64
}

func newGroupGraph() *groupGraph {
	return &groupGraph{adj: make(map[index.FileID]map[index.FileID]int64)}
}

func (g *groupGraph) addEdge(src, dst index.FileID, w int64) {
	if src == dst || w <= 0 {
		return
	}
	if g.adj[src] == nil {
		g.adj[src] = make(map[index.FileID]int64)
	}
	g.adj[src][dst] += w
}

func (g *groupGraph) undirected(files map[index.FileID]bool) map[uint64]map[uint64]int64 {
	u := make(map[uint64]map[uint64]int64, len(files))
	for f := range files {
		u[uint64(f)] = make(map[uint64]int64)
	}
	add := func(a, b index.FileID, w int64) {
		if u[uint64(a)] == nil {
			u[uint64(a)] = make(map[uint64]int64)
		}
		u[uint64(a)][uint64(b)] += w
	}
	for src, m := range g.adj {
		for dst, w := range m {
			if files[src] && files[dst] {
				add(src, dst, w)
				add(dst, src, w)
			}
		}
	}
	return u
}

// New returns an Index Node.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, errors.New("indexnode: Store is required")
	}
	n := &Node{
		cfg:    cfg,
		walGC:  wal.NewGroupCommitter(cfg.Disk),
		groups: make(map[proto.ACGID]*group),
		specs:  make(map[string]proto.IndexSpec),
	}
	n.nextOff.Store(1 << 40) // KD images live past the page region
	return n, nil
}

// ID returns the node id.
func (n *Node) ID() proto.NodeID { return n.cfg.ID }

// WALStats reports the node's WAL group-commit batching counters.
func (n *Node) WALStats() wal.GroupCommitStats { return n.walGC.Stats() }

// RegisterRPC installs the node's methods on an RPC server.
func (n *Node) RegisterRPC(s *rpc.Server) {
	rpc.HandleTyped(s, proto.MethodUpdate, n.Update)
	rpc.HandleTyped(s, proto.MethodSearch, n.Search)
	rpc.HandleTyped(s, proto.MethodFlushACG, n.FlushACG)
	rpc.HandleTyped(s, proto.MethodCreateACG, n.CreateACG)
	rpc.HandleTyped(s, proto.MethodReceiveACG, n.ReceiveACG)
	rpc.HandleTyped(s, proto.MethodSplitACG, n.SplitACG)
	rpc.HandleTyped(s, proto.MethodNodeStats, n.NodeStats)
}

// DeclareIndex makes an index spec known to the node (normally learned from
// the first update carrying the name; standalone callers declare up front).
func (n *Node) DeclareIndex(spec proto.IndexSpec) {
	n.specMu.Lock()
	defer n.specMu.Unlock()
	if _, ok := n.specs[spec.Name]; !ok {
		n.specs[spec.Name] = spec
	}
}

// lookupSpec returns the spec for name if the node knows it.
func (n *Node) lookupSpec(name string) (proto.IndexSpec, bool) {
	n.specMu.RLock()
	defer n.specMu.RUnlock()
	spec, ok := n.specs[name]
	return spec, ok
}

// ensureSpec resolves an index name, asking the Master for the spec the
// first time a node sees the name.
func (n *Node) ensureSpec(ctx context.Context, name string) error {
	if _, ok := n.lookupSpec(name); ok {
		return nil
	}
	if n.cfg.Master == nil {
		return fmt.Errorf("%q: %w", name, ErrUnknownIndex)
	}
	resp, err := rpc.Call[proto.LookupIndexReq, proto.LookupIndexResp](
		ctx, n.cfg.Master, proto.MethodLookupIndex, proto.LookupIndexReq{IndexName: name})
	if err != nil {
		return fmt.Errorf("indexnode: resolve index %q: %w", name, err)
	}
	n.DeclareIndex(resp.Spec)
	return nil
}

// lockLive locks g and reports whether it is still a registered group. On
// false the lock has been released and the caller must re-resolve the id
// through the registry (the group was merged away between lookup and lock).
func (g *group) lockLive() bool {
	g.mu.Lock()
	if g.dead {
		g.mu.Unlock()
		return false
	}
	return true
}

// getGroup returns the group if present (nil otherwise). The caller locks
// the group before touching its state (via lockLive, re-resolving on
// failure).
func (n *Node) getGroup(id proto.ACGID) *group {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.groups[id]
}

// lockGroup returns the group locked, or nil if the node has no such
// group.
func (n *Node) lockGroup(id proto.ACGID) *group {
	for {
		g := n.getGroup(id)
		if g == nil {
			return nil
		}
		if g.lockLive() {
			return g
		}
	}
}

// getOrCreateGroup returns the group, creating it on demand (groups are
// provisioned lazily on first contact, the Master having routed here).
func (n *Node) getOrCreateGroup(id proto.ACGID) *group {
	n.mu.RLock()
	g := n.groups[id]
	n.mu.RUnlock()
	if g != nil {
		return g
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if g = n.groups[id]; g == nil {
		g = n.newGroupLocked(id)
		n.groups[id] = g
	}
	return g
}

// lockOrCreateGroup returns the group locked, creating it if absent. The
// retry loop covers a concurrent merge deleting the group between lookup
// and lock.
func (n *Node) lockOrCreateGroup(id proto.ACGID) *group {
	for {
		g := n.getOrCreateGroup(id)
		if g.lockLive() {
			return g
		}
	}
}

// newGroupLocked builds an empty group. Caller holds n.mu.
func (n *Node) newGroupLocked(id proto.ACGID) *group {
	return &group{
		id:       id,
		files:    make(map[index.FileID]bool),
		graph:    newGroupGraph(),
		indexes:  make(map[string]*inst),
		pending:  make(map[string][]proto.IndexEntry),
		postings: make(map[string]map[index.FileID]proto.IndexEntry),
		log:      wal.NewGroupCommit(n.walGC),
	}
}

// groupsSnapshot returns the current groups sorted by id. The registry lock
// is released before return; callers lock each group as they visit it.
func (n *Node) groupsSnapshot() []*group {
	n.mu.RLock()
	out := make([]*group, 0, len(n.groups))
	for _, g := range n.groups {
		out = append(out, g)
	}
	n.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// instFor returns the group's index instance, materializing it from the
// node's spec table on first use. Caller holds g.mu.
func (n *Node) instFor(g *group, name string) (*inst, error) {
	if in, ok := g.indexes[name]; ok {
		return in, nil
	}
	spec, ok := n.lookupSpec(name)
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrUnknownIndex)
	}
	in := &inst{spec: spec}
	var err error
	switch spec.Type {
	case proto.IndexBTree:
		in.bt, err = index.NewBTree(n.cfg.Store)
	case proto.IndexHash:
		in.ht, err = index.NewHashIndex(n.cfg.Store, 64)
	case proto.IndexKD:
		dims := spec.Dims()
		if dims == 0 {
			return nil, fmt.Errorf("indexnode: kd index %q has no fields", name)
		}
		in.kd, err = index.NewKDTree(dims)
		in.kdResident = true
		in.kdOffset = n.nextOff.Add(1<<30) - 1<<30
	default:
		return nil, fmt.Errorf("indexnode: index %q has unknown type %d", name, spec.Type)
	}
	if err != nil {
		return nil, fmt.Errorf("indexnode: materialize %q: %w", name, err)
	}
	g.indexes[name] = in
	return in, nil
}

// CreateACG provisions a group with pre-declared membership.
func (n *Node) CreateACG(_ context.Context, req proto.CreateACGReq) (proto.CreateACGResp, error) {
	g := n.lockOrCreateGroup(req.ACG)
	defer g.mu.Unlock()
	for _, f := range req.Files {
		g.files[f] = true
	}
	return proto.CreateACGResp{OK: true}, nil
}

// Update is the file-indexing fast path: WAL append + cache insert. Only
// the target group is locked, so updates to different ACGs run in parallel
// and their WAL appends group-commit into shared device writes.
func (n *Node) Update(ctx context.Context, req proto.UpdateReq) (proto.UpdateResp, error) {
	if err := n.ensureSpec(ctx, req.IndexName); err != nil {
		return proto.UpdateResp{}, err
	}
	// Reject unindexable values before the acknowledgement: a value whose
	// key exceeds the page bound would otherwise be accepted here and then
	// fail every commit of the group, wedging its strict-consistency
	// searches forever.
	if spec, ok := n.lookupSpec(req.IndexName); ok && spec.Type != proto.IndexKD {
		for _, e := range req.Entries {
			if !e.Delete && !index.CompositeKeyFits(e.Value) {
				return proto.UpdateResp{}, fmt.Errorf("indexnode update %q file %d: %w",
					req.IndexName, e.File, index.ErrKeyTooLong)
			}
		}
	}
	rec, err := encodeWALRecord(req)
	if err != nil {
		return proto.UpdateResp{}, err
	}
	g := n.lockOrCreateGroup(req.ACG)
	defer g.mu.Unlock()
	if err := g.log.Append(rec); err != nil {
		return proto.UpdateResp{}, fmt.Errorf("indexnode update: %w", err)
	}
	for _, e := range req.Entries {
		g.files[e.File] = true
	}
	g.pending[req.IndexName] = append(g.pending[req.IndexName], req.Entries...)
	g.pendingCount += len(req.Entries)
	g.lastUpdate = n.cfg.Clock.Now()

	if n.cfg.DisableLazyCache || g.pendingCount >= n.cfg.CacheLimit {
		if err := n.commitGroupLocked(g); err != nil {
			return proto.UpdateResp{}, err
		}
	}
	return proto.UpdateResp{Cached: g.pendingCount}, nil
}

// FlushACG merges a client-captured causality fragment into the group's
// authoritative graph.
func (n *Node) FlushACG(_ context.Context, req proto.FlushACGReq) (proto.FlushACGResp, error) {
	g := n.lockOrCreateGroup(req.ACG)
	defer g.mu.Unlock()
	for _, v := range req.Vertices {
		g.files[v] = true
	}
	for _, e := range req.Edges {
		g.files[e.Src] = true
		g.files[e.Dst] = true
		g.graph.addEdge(e.Src, e.Dst, e.Weight)
	}
	return proto.FlushACGResp{OK: true}, nil
}

// Tick commits groups whose lazy cache has exceeded the commit timeout.
// Deployments call it from a ticker; experiments call it after advancing
// virtual time. Groups are visited one at a time, so a tick never stalls
// traffic on ACGs it is not committing.
func (n *Node) Tick() error {
	now := n.cfg.Clock.Now()
	for _, g := range n.groupsSnapshot() {
		if !g.lockLive() {
			continue
		}
		if g.pendingCount > 0 && now-g.lastUpdate >= n.cfg.CommitTimeout {
			if err := n.commitGroupLocked(g); err != nil {
				g.mu.Unlock()
				return err
			}
		}
		g.mu.Unlock()
	}
	return nil
}

// acgLabel is the metrics label for a group.
func acgLabel(id proto.ACGID) string { return strconv.FormatUint(uint64(id), 10) }

// commitGroupLocked merges the group's pending cache into its durable
// indices. Caller holds g.mu.
func (n *Node) commitGroupLocked(g *group) error {
	if g.pendingCount == 0 {
		return nil
	}
	start := n.cfg.Clock.Now()
	committed := int64(g.pendingCount)
	names := make([]string, 0, len(g.pending))
	for name := range g.pending {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		entries := g.pending[name]
		if len(entries) == 0 {
			continue
		}
		in, err := n.instFor(g, name)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if err := n.applyEntry(g, in, name, e); err != nil {
				return err
			}
		}
		g.pending[name] = nil
	}
	// KD indices re-serialize once per commit (not per entry).
	for _, name := range names {
		if in := g.indexes[name]; in != nil && in.kd != nil {
			in.kdImage = in.kd.Serialize()
			if n.cfg.Disk != nil {
				if _, err := n.cfg.Disk.Write(in.kdOffset, int64(len(in.kdImage))); err != nil {
					return fmt.Errorf("indexnode: persist kd image: %w", err)
				}
			}
			in.kdResident = true
		}
	}
	g.pendingCount = 0
	if err := g.log.Truncate(); err != nil {
		return fmt.Errorf("indexnode: truncate wal: %w", err)
	}
	n.commits.Inc()
	n.commitEntries.Add(committed)
	n.commitNanos.Add(int64(n.cfg.Clock.Now() - start))
	n.acgCommits.Get(acgLabel(g.id)).Inc()
	n.acgCommitEntries.Get(acgLabel(g.id)).Add(committed)
	return nil
}

func (n *Node) applyEntry(g *group, in *inst, name string, e proto.IndexEntry) error {
	post := g.postings[name]
	if post == nil {
		post = make(map[index.FileID]proto.IndexEntry)
		g.postings[name] = post
	}
	if e.Delete {
		old, ok := post[e.File]
		if !ok {
			return nil // deleting an unindexed posting is a no-op
		}
		delete(post, e.File)
		switch {
		case in.bt != nil:
			if err := in.bt.Delete(old.Value, e.File); err != nil && !errors.Is(err, index.ErrNotFound) {
				return err
			}
		case in.ht != nil:
			if err := in.ht.Delete(old.Value, e.File); err != nil && !errors.Is(err, index.ErrNotFound) {
				return err
			}
		case in.kd != nil:
			// KD deletion: rebuild without the point (rare path).
			return n.rebuildKD(g, in, name)
		}
		return nil
	}

	// Re-indexing an existing posting replaces the old value.
	if old, ok := post[e.File]; ok {
		switch {
		case in.bt != nil:
			if !old.Value.Equal(e.Value) {
				if err := in.bt.Delete(old.Value, e.File); err != nil && !errors.Is(err, index.ErrNotFound) {
					return err
				}
			}
		case in.ht != nil:
			if !old.Value.Equal(e.Value) {
				if err := in.ht.Delete(old.Value, e.File); err != nil && !errors.Is(err, index.ErrNotFound) {
					return err
				}
			}
		case in.kd != nil:
			post[e.File] = e
			return n.rebuildKD(g, in, name)
		}
	}
	post[e.File] = e
	switch {
	case in.bt != nil:
		return in.bt.Insert(e.Value, e.File)
	case in.ht != nil:
		return in.ht.Insert(e.Value, e.File)
	case in.kd != nil:
		return in.kd.Insert(index.Point{Coords: e.KDCoords, File: e.File})
	}
	return nil
}

// rebuildKD reconstructs a KD index from current postings (after delete or
// re-index of a point). Caller holds g.mu.
func (n *Node) rebuildKD(g *group, in *inst, name string) error {
	dims := in.spec.Dims()
	pts := make([]index.Point, 0, len(g.postings[name]))
	for f, e := range g.postings[name] {
		pts = append(pts, index.Point{Coords: e.KDCoords, File: f})
	}
	kd, err := index.BuildKDTree(dims, pts)
	if err != nil {
		return fmt.Errorf("indexnode: rebuild kd %q: %w", name, err)
	}
	in.kd = kd
	return nil
}

// DropCaches models a cold start: the buffer pool is emptied and KD images
// become non-resident, so the next queries pay the full disk cost.
func (n *Node) DropCaches() error {
	if err := n.cfg.Store.DropCache(); err != nil {
		return err
	}
	for _, g := range n.groupsSnapshot() {
		if !g.lockLive() {
			continue
		}
		for _, in := range g.indexes {
			if in.kd != nil {
				in.kdResident = false
			}
		}
		g.mu.Unlock()
	}
	return nil
}

// encodeWALRecord serializes an update for the group log.
func encodeWALRecord(req proto.UpdateReq) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
		return nil, fmt.Errorf("indexnode: encode wal record: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeWALRecord(rec []byte) (proto.UpdateReq, error) {
	var req proto.UpdateReq
	if err := gob.NewDecoder(bytes.NewReader(rec)).Decode(&req); err != nil {
		return proto.UpdateReq{}, fmt.Errorf("indexnode: decode wal record: %w", err)
	}
	return req, nil
}

// ACGImage serializes a group's authoritative causality graph to its
// shared-storage form (the paper stores ACGs as regular files in the
// underlying shared file system, §IV).
func (n *Node) ACGImage(id proto.ACGID) ([]byte, error) {
	g := n.lockGroup(id)
	if g == nil {
		return nil, fmt.Errorf("acg %d: %w", id, ErrUnknownACG)
	}
	out := acg.NewGraph()
	for f := range g.files {
		out.AddVertex(f)
	}
	for src, m := range g.graph.adj {
		for dst, w := range m {
			out.AddEdge(src, dst, w)
		}
	}
	g.mu.Unlock()
	if n.cfg.Disk != nil {
		img := out.Serialize()
		if _, err := n.cfg.Disk.AppendLog(int64(len(img))); err != nil {
			return nil, fmt.Errorf("indexnode: persist acg %d: %w", id, err)
		}
		return img, nil
	}
	return out.Serialize(), nil
}

// LoadACGImage restores a group's causality graph from a shared-storage
// image (used when a replacement node adopts a crashed node's groups).
func (n *Node) LoadACGImage(id proto.ACGID, img []byte) error {
	restored, err := acg.Deserialize(img)
	if err != nil {
		return fmt.Errorf("indexnode: load acg %d: %w", id, err)
	}
	g := n.lockOrCreateGroup(id)
	defer g.mu.Unlock()
	for _, v := range restored.Vertices() {
		g.files[v] = true
	}
	restored.ForEachEdge(func(src, dst index.FileID, w int64) bool {
		g.graph.addEdge(src, dst, w)
		return true
	})
	return nil
}

// WALImage returns the group's current log image (what would sit in shared
// storage at a crash).
func (n *Node) WALImage(id proto.ACGID) ([]byte, error) {
	g := n.lockGroup(id)
	if g == nil {
		return nil, fmt.Errorf("acg %d: %w", id, ErrUnknownACG)
	}
	defer g.mu.Unlock()
	return g.log.Bytes(), nil
}

// RecoverGroup replays a WAL image into the group's cache (crash recovery:
// acknowledged-but-uncommitted updates are not lost). A torn tail stops the
// replay at the last intact record, which is exactly the guarantee the
// acknowledgement made.
func (n *Node) RecoverGroup(id proto.ACGID, walImage []byte) (int, error) {
	g := n.lockOrCreateGroup(id)
	defer g.mu.Unlock()
	recovered := 0
	err := wal.ReplayBytes(walImage, func(rec []byte) bool {
		req, derr := decodeWALRecord(rec)
		if derr != nil {
			return false
		}
		for _, e := range req.Entries {
			g.files[e.File] = true
		}
		g.pending[req.IndexName] = append(g.pending[req.IndexName], req.Entries...)
		g.pendingCount += len(req.Entries)
		recovered += len(req.Entries)
		return true
	})
	if err != nil && !errors.Is(err, wal.ErrCorrupt) {
		return recovered, err
	}
	g.lastUpdate = n.cfg.Clock.Now()
	return recovered, nil
}

// NodeStats reports local statistics.
func (n *Node) NodeStats(_ context.Context, _ proto.NodeStatsReq) (proto.NodeStatsResp, error) {
	groups := n.groupsSnapshot()
	resp := proto.NodeStatsResp{Node: n.cfg.ID, ACGs: len(groups)}
	for _, g := range groups {
		if !g.lockLive() {
			resp.ACGs--
			continue
		}
		resp.Files += int64(len(g.files))
		resp.CachedOps += g.pendingCount
		resp.WALRecords += g.log.Len()
		g.mu.Unlock()
	}
	// Per-ACG commit counters come from the counter set, not the live
	// groups: merged-away groups' counts were folded into their merge
	// destination, so the breakdown always sums to Commits.
	snap := n.acgCommits.Snapshot()
	resp.PerACGCommits = make(map[proto.ACGID]int64, len(snap))
	for label, v := range snap {
		id, err := strconv.ParseUint(label, 10, 64)
		if err != nil {
			continue // unreachable: labels are acgLabel-formatted
		}
		resp.PerACGCommits[proto.ACGID(id)] = v
	}
	resp.Commits = n.commits.Value()
	resp.CommitEntries = n.commitEntries.Value()
	resp.HashScanFallbacks = n.hashScanFallbacks.Value()
	ws := n.walGC.Stats()
	resp.WALBatches = ws.Batches
	resp.WALBatchedRecords = ws.Records
	resp.MaxWALBatch = ws.MaxBatchRecords
	st := n.cfg.Store.Stats()
	resp.PoolHits, resp.PoolMisses = st.Hits, st.Misses
	n.specMu.RLock()
	names := make([]string, 0, len(n.specs))
	for name := range n.specs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		resp.IndexSpecs = append(resp.IndexSpecs, n.specs[name])
	}
	n.specMu.RUnlock()
	return resp, nil
}

// Heartbeat sends one heartbeat to the Master and executes any split orders
// it returns.
func (n *Node) Heartbeat(ctx context.Context) error {
	if n.cfg.Master == nil {
		return ErrNoMaster
	}
	req := proto.HeartbeatReq{Node: n.cfg.ID}
	for _, g := range n.groupsSnapshot() {
		if !g.lockLive() {
			continue
		}
		req.ACGs = append(req.ACGs, proto.ACGMeta{ACG: g.id, Files: int64(len(g.files))})
		g.mu.Unlock()
	}

	resp, err := rpc.Call[proto.HeartbeatReq, proto.HeartbeatResp](ctx, n.cfg.Master, proto.MethodHeartbeat, req)
	if err != nil {
		return fmt.Errorf("indexnode heartbeat: %w", err)
	}
	for _, id := range resp.SplitACGs {
		if _, err := n.SplitACG(ctx, proto.SplitACGReq{ACG: id}); err != nil {
			return fmt.Errorf("indexnode split order %d: %w", id, err)
		}
	}
	return nil
}

// groupFilesSorted returns a group's files sorted (helper for split and
// tests). Caller holds g.mu.
func (g *group) groupFilesSorted() []index.FileID {
	out := make([]index.FileID, 0, len(g.files))
	for f := range g.files {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// attrValue resolves the current value of field for file within the group
// by consulting committed postings of any index covering that field.
// Caller holds g.mu.
func (n *Node) attrValue(g *group, field string, f index.FileID) (attr.Value, bool) {
	n.specMu.RLock()
	defer n.specMu.RUnlock()
	for name, post := range g.postings {
		spec := n.specs[name]
		if spec.Field != field || spec.Type == proto.IndexKD {
			continue
		}
		if e, ok := post[f]; ok {
			return e.Value, true
		}
	}
	return attr.Value{}, false
}
