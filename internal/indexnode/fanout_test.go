package indexnode

import (
	"context"
	"errors"
	"sync"
	"testing"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/proto"
)

// loadDuplicateHeavy seeds groups with runs postings per value: value v
// (1..values) carries files {v, values+v, 2*values+v, ...}, spread
// round-robin over the ACGs. Duplicate-heavy runs are where cursor seek
// and run skipping earn their keep.
func loadDuplicateHeavy(t testing.TB, n *Node, acgs []proto.ACGID, values, runs int) {
	t.Helper()
	ctx := context.Background()
	for g, id := range acgs {
		var entries []proto.IndexEntry
		for v := 1; v <= values; v++ {
			for r := 0; r < runs; r++ {
				if (r+v)%len(acgs) != g {
					continue // every value's run spans every group
				}
				entries = append(entries, proto.IndexEntry{File: index.FileID(r*values + v), Value: attr.Int(int64(v))})
			}
		}
		if _, err := n.Update(ctx, proto.UpdateReq{ACG: id, IndexName: "size", Entries: entries}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSearchParallelFanoutMatchesSerial: the parallel pass must be
// indistinguishable from the serial one — same files, same order, same
// More flag, page budget still honored — on paged and unlimited queries.
func TestSearchParallelFanoutMatchesSerial(t *testing.T) {
	acgs := []proto.ACGID{1, 2, 3, 4, 5, 6, 7, 8}
	build := func(fanout int) *Node {
		n, _ := newTestNode(t, func(c *Config) {
			c.CacheLimit = 1 << 30
			c.SearchFanout = fanout
		})
		n.DeclareIndex(sizeSpec)
		loadDuplicateHeavy(t, n, acgs, 40, 50)
		return n
	}
	serial, parallel := build(1), build(4)
	ctx := context.Background()

	for _, req := range []proto.SearchReq{
		{ACGs: acgs, IndexName: "size", Query: "size>0"},
		{ACGs: acgs, IndexName: "size", Query: "size>0", Limit: 64},
		{ACGs: acgs, IndexName: "size", Query: "size=17", Limit: 8},
		{ACGs: acgs, IndexName: "size", Query: "size>10 & size<=20", Limit: 16, After: 700, AfterSet: true},
	} {
		for {
			a, err := serial.Search(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			b, err := parallel.Search(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Files) != len(b.Files) || a.More != b.More {
				t.Fatalf("%q page diverged: serial %d files more=%v, parallel %d files more=%v",
					req.Query, len(a.Files), a.More, len(b.Files), b.More)
			}
			for i := range a.Files {
				if a.Files[i] != b.Files[i] {
					t.Fatalf("%q file %d: serial %d, parallel %d", req.Query, i, a.Files[i], b.Files[i])
				}
			}
			if req.Limit > 0 && (a.MaxRetained > req.Limit || b.MaxRetained > req.Limit) {
				t.Fatalf("%q MaxRetained serial=%d parallel=%d, budget %d",
					req.Query, a.MaxRetained, b.MaxRetained, req.Limit)
			}
			if req.Limit == 0 || !a.More {
				break
			}
			req.After, req.AfterSet = a.Files[len(a.Files)-1], true
		}
	}
}

// TestSearchFanoutCancelledContext: a cancelled caller aborts the parallel
// pass with the context taxonomy, exactly like the serial one.
func TestSearchFanoutCancelledContext(t *testing.T) {
	acgs := []proto.ACGID{1, 2, 3, 4}
	n, _ := newTestNode(t, func(c *Config) {
		c.CacheLimit = 1 << 30
		c.SearchFanout = 4
	})
	n.DeclareIndex(sizeSpec)
	loadDuplicateHeavy(t, n, acgs, 10, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.Search(ctx, proto.SearchReq{ACGs: acgs, IndexName: "size", Query: "size>0"}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled parallel search err = %v, want context.Canceled", err)
	}
}

// TestRaceParallelFanout drives the parallel fan-out against live writers,
// mergers and a ticker. Run under -race: the per-worker collectors and the
// per-group critical sections must keep every access inside a lock.
func TestRaceParallelFanout(t *testing.T) {
	n, clk := newTestNode(t, func(c *Config) {
		c.CacheLimit = 64
		c.SearchFanout = 4
	})
	n.DeclareIndex(sizeSpec)

	const acgs = 8
	const writers = 4
	const perWriter = 120
	allACGs := make([]proto.ACGID, acgs)
	for i := range allACGs {
		allACGs[i] = proto.ACGID(i + 1)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, writers+8)
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f := index.FileID(w*perWriter + i)
				if _, err := n.Update(context.Background(), proto.UpdateReq{
					ACG: proto.ACGID(int(f)%acgs + 1), IndexName: "size",
					Entries: []proto.IndexEntry{{File: f, Value: attr.Int(int64(f)%13 + 1)}},
				}); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	background := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := fn(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	// Paged and unlimited parallel searches across every ACG.
	background(func() error {
		_, err := n.Search(context.Background(), proto.SearchReq{
			ACGs: allACGs, IndexName: "size", Query: "size>0", Limit: 16,
		})
		return err
	})
	background(func() error {
		_, err := n.Search(context.Background(), proto.SearchReq{
			ACGs: allACGs, IndexName: "size", Query: "size=5",
		})
		return err
	})
	// Merger and ticker stress the dead-group and commit paths mid-pass.
	background(func() error {
		_, err := n.CompactGroups(context.Background(), 4)
		return err
	})
	background(func() error {
		clk.Advance(6 * 1e9)
		return n.Tick()
	})

	writersDone := make(chan struct{})
	go func() {
		defer close(writersDone)
		for {
			st, err := n.NodeStats(context.Background(), proto.NodeStatsReq{})
			if err != nil || st.Files >= writers*perWriter {
				return
			}
		}
	}()
	<-writersDone
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Every acknowledged update must be visible, exactly once, through the
	// parallel pass.
	resp, err := n.Search(context.Background(), proto.SearchReq{ACGs: allACGs, IndexName: "size", Query: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != writers*perWriter {
		t.Errorf("final parallel search = %d files, want %d", len(resp.Files), writers*perWriter)
	}
}

// TestSearchPagedEqualitySeekEquivalence: paging an equality scan over a
// long duplicate run (the cursor-seek fast path) must reproduce exactly
// the unpaged result, page by page, under the page budget.
func TestSearchPagedEqualitySeekEquivalence(t *testing.T) {
	acgs := []proto.ACGID{1, 2}
	n, _ := newTestNode(t, func(c *Config) { c.CacheLimit = 1 << 30 })
	n.DeclareIndex(sizeSpec)
	loadDuplicateHeavy(t, n, acgs, 20, 200) // value 7 carries 200 postings
	ctx := context.Background()

	full, err := n.Search(ctx, proto.SearchReq{ACGs: acgs, IndexName: "size", Query: "size=7"})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Files) != 200 {
		t.Fatalf("unpaged equality = %d files, want 200", len(full.Files))
	}

	const limit = 16
	req := proto.SearchReq{ACGs: acgs, IndexName: "size", Query: "size=7", Limit: limit}
	var paged []index.FileID
	for pages := 0; ; pages++ {
		resp, err := n.Search(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Files) > limit || resp.MaxRetained > limit {
			t.Fatalf("page %d: %d files, MaxRetained %d, budget %d",
				pages, len(resp.Files), resp.MaxRetained, limit)
		}
		paged = append(paged, resp.Files...)
		if !resp.More {
			break
		}
		req.After, req.AfterSet = resp.Files[len(resp.Files)-1], true
		if pages > len(full.Files)/limit+5 {
			t.Fatal("pagination does not terminate")
		}
	}
	if len(paged) != len(full.Files) {
		t.Fatalf("paged union = %d files, unpaged = %d", len(paged), len(full.Files))
	}
	for i := range paged {
		if paged[i] != full.Files[i] {
			t.Fatalf("page-by-page divergence at %d: %d vs %d", i, paged[i], full.Files[i])
		}
	}
}
