package indexnode

import (
	"context"
	"fmt"
	"io"
	"sort"

	"propeller/internal/index"
	"propeller/internal/partition"
	"propeller/internal/proto"
	"propeller/internal/rpc"
)

// SplitACG background-partitions an oversized group into two balanced
// sub-graphs with minimal cut (§III), reports the split to the Master to
// get the new group's id and destination node, migrates the moved half, and
// removes it locally.
func (n *Node) SplitACG(ctx context.Context, req proto.SplitACGReq) (proto.SplitACGResp, error) {
	if n.cfg.Master == nil {
		return proto.SplitACGResp{}, ErrNoMaster
	}
	// Commit so postings reflect every acknowledged update before they
	// migrate. Only this group is locked: the background split leaves
	// traffic on every other ACG untouched.
	g := n.lockGroup(req.ACG)
	if g == nil {
		return proto.SplitACGResp{}, fmt.Errorf("acg %d: %w", req.ACG, ErrUnknownACG)
	}
	if err := n.commitGroupLocked(g); err != nil {
		g.mu.Unlock()
		return proto.SplitACGResp{}, err
	}
	pg := partition.Graph{Adj: g.graph.undirected(g.files)}
	g.mu.Unlock()

	res, err := partition.Bisect(pg, partition.Options{Seed: int64(req.ACG)})
	if err != nil {
		return proto.SplitACGResp{}, fmt.Errorf("indexnode split %d: %w", req.ACG, err)
	}
	sideB := make([]index.FileID, 0, len(res.B))
	for _, v := range res.B {
		sideB = append(sideB, index.FileID(v))
	}
	sort.Slice(sideB, func(i, j int) bool { return sideB[i] < sideB[j] })

	// Master assigns the new group and destination.
	rep, err := rpc.Call[proto.SplitReportReq, proto.SplitReportResp](
		ctx, n.cfg.Master, proto.MethodSplitReport,
		proto.SplitReportReq{Node: n.cfg.ID, OldACG: req.ACG, SideB: sideB})
	if err != nil {
		return proto.SplitACGResp{}, fmt.Errorf("indexnode split report: %w", err)
	}

	// Build the migration payload (the shared group-image serializer,
	// filtered to the moved half). The group may have been merged away
	// while the partitioner ran outside the lock; treat that as the group
	// disappearing under the split order.
	if !g.lockLive() {
		return proto.SplitACGResp{}, fmt.Errorf("acg %d merged during split: %w", req.ACG, ErrUnknownACG)
	}
	moveSet := make(map[index.FileID]bool, len(sideB))
	for _, f := range sideB {
		moveSet[f] = true
	}
	filter := func(f index.FileID) bool { return moveSet[f] }
	names := make([]string, 0, len(g.postings))
	for name := range g.postings {
		names = append(names, name)
	}
	sort.Strings(names)

	// Ship the moved half. rep.Dest may be this very node (least-loaded);
	// handle locally to avoid a self-dial. The remote path streams the
	// filtered image in bounded chunks under the group lock — the same
	// quiesce window the one-frame ship held, without one contiguous copy
	// of the half on either side.
	if rep.Dest == n.cfg.ID {
		recv := n.imageLocked(g, filter)
		recv.ACG = rep.NewACG
		recv.Epoch = rep.Epoch
		g.mu.Unlock()
		n.noteEpoch(rep.Epoch)
		if _, err := n.ReceiveACG(ctx, recv); err != nil {
			return proto.SplitACGResp{}, err
		}
	} else {
		if n.cfg.Dial == nil {
			g.mu.Unlock()
			return proto.SplitACGResp{}, fmt.Errorf("indexnode split: no dialer for peer %s", rep.Dest)
		}
		peer, err := n.cfg.Dial(ctx, rep.Addr)
		if err != nil {
			g.mu.Unlock()
			return proto.SplitACGResp{}, fmt.Errorf("indexnode split dial %s: %w", rep.Addr, err)
		}
		meta := proto.ReceiveACGStreamMeta{ACG: rep.NewACG, Epoch: rep.Epoch, ReplSeq: g.replSeq}
		shipErr := n.shipGroupStreamLocked(ctx, peer, g, filter, meta)
		g.mu.Unlock()
		peer.Close() //nolint:errcheck // best-effort teardown
		n.noteEpoch(rep.Epoch)
		if shipErr != nil {
			return proto.SplitACGResp{}, fmt.Errorf("indexnode migrate to %s: %w", rep.Dest, shipErr)
		}
	}

	// Remove the moved half locally. (An update for a moved file arriving
	// while the migration RPC was in flight can still land in this group's
	// cache — the Master has already rebound the file, so stale-routed
	// postings resolve at the next commit/search; closing that window
	// fully needs routing-level fencing, as under the old global lock.)
	if !g.lockLive() {
		return proto.SplitACGResp{}, fmt.Errorf("acg %d merged during split: %w", req.ACG, ErrUnknownACG)
	}
	defer g.mu.Unlock()
	for _, name := range names {
		// Remove the moved postings through the commit engine's bulk
		// apply: a run of delete entries gets the same sorted B-tree /
		// chain-batched hash removals, the single KD rebuild, and the
		// postings-advance-only-after-index-success retry contract as any
		// commit — one copy of the invariant.
		post := g.postings[name]
		run := make(map[index.FileID]pendingEntry, len(moveSet))
		for f := range moveSet {
			if _, ok := post[f]; ok {
				run[f] = pendingEntry{e: proto.IndexEntry{File: f, Delete: true}}
			}
		}
		if len(run) == 0 {
			continue
		}
		in, err := n.instFor(g, name)
		if err != nil {
			return proto.SplitACGResp{}, err
		}
		if err := n.applyRunLocked(g, in, name, run); err != nil {
			return proto.SplitACGResp{}, err
		}
		// Re-serialize the shrunk KD image now: commits only serialize
		// indices with pending entries, so a stale image here would
		// resurrect the moved points at the next cold load.
		if in.kd != nil {
			in.kdImage = in.kd.Serialize()
			in.kdResident = true
		}
	}
	if g.movedOut == nil {
		g.movedOut = make(map[index.FileID]bool, len(moveSet))
	}
	for f := range moveSet {
		delete(g.files, f)
		delete(g.graph.adj, f)
		// Fence the moved file: a warm client's pre-split mapping must get
		// ErrStalePlacement here, not a silently accepted write the new
		// owner never sees.
		g.movedOut[f] = true
	}
	for _, m := range g.graph.adj {
		for dst := range m {
			if moveSet[dst] {
				delete(m, dst)
			}
		}
	}
	// Refresh the shrunk group's shared-storage image: a recovery replaying
	// the pre-split state would resurrect the moved files into this group,
	// forking ownership with the new ACG.
	if err := n.checkpointLocked(g); err != nil {
		return proto.SplitACGResp{}, err
	}
	n.splitsDone.Inc()
	return proto.SplitACGResp{
		Moved: len(sideB), NewACG: rep.NewACG, CutWeight: res.CutWeight,
	}, nil
}

// ReceiveACG installs a migrated group on this node: the destination half
// of a background split or a live migration. The image's postings apply
// through the commit engine's bulk paths, any shipped WAL replays into the
// lazy cache, and the group is checkpointed so shared storage reflects its
// new home. State the group already holds locally (traffic raced ahead of
// the transfer) is never clobbered by the shipped image.
func (n *Node) ReceiveACG(_ context.Context, req proto.ReceiveACGReq) (proto.ReceiveACGResp, error) {
	n.clearReleased(req.ACG) // an explicit transfer-in overrides a tombstone
	n.noteEpoch(req.Epoch)
	g, err := n.lockOrCreateGroup(req.ACG)
	if err != nil {
		return proto.ReceiveACGResp{}, err
	}
	defer g.mu.Unlock()
	// A replica seeding ships the same image with the Follower flag: the
	// copy installs identically but serves as a follower (stream-fed,
	// mirror-untouched) from its replicated stream position onward.
	g.follower = req.Follower
	if req.ReplSeq > g.replSeq {
		g.replSeq = req.ReplSeq
	}
	known := n.knownPairsLocked(g)
	if err := n.installImageLocked(g, req, known); err != nil {
		return proto.ReceiveACGResp{}, err
	}
	if len(req.WAL) > 0 {
		if _, err := n.replayWALLocked(g, req.WAL, known); err != nil {
			return proto.ReceiveACGResp{}, err
		}
	}
	if err := n.checkpointLocked(g); err != nil {
		return proto.ReceiveACGResp{}, err
	}
	return proto.ReceiveACGResp{OK: true}, nil
}

// receiveACGStream is the chunked form of ReceiveACG: the image arrives as
// a flow-controlled record stream and applies incrementally, so the
// receiver's transient footprint is one chunk plus one partial record — a
// large group never materializes as a second contiguous copy here. The
// group lock is held across the whole stream, the same quiesce the
// single-frame install performs; flow control bounds how long a slow
// sender can stretch that window, and other groups' traffic (and other
// streams on the same conn) proceed throughout.
func (n *Node) receiveACGStream(ctx context.Context, meta proto.ReceiveACGStreamMeta, st *rpc.ServerStream) (proto.ReceiveACGResp, error) {
	n.clearReleased(meta.ACG) // an explicit transfer-in overrides a tombstone
	n.noteEpoch(meta.Epoch)
	g, err := n.lockOrCreateGroup(meta.ACG)
	if err != nil {
		return proto.ReceiveACGResp{}, err
	}
	defer g.mu.Unlock()
	g.follower = meta.Follower
	if meta.ReplSeq > g.replSeq {
		g.replSeq = meta.ReplSeq
	}
	known := n.knownPairsLocked(g)
	a := newImageApplier(n, g, known)
	for {
		chunk, err := st.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return proto.ReceiveACGResp{}, err
		}
		if err := a.feed(chunk); err != nil {
			return proto.ReceiveACGResp{}, err
		}
	}
	if _, err := a.finish(); err != nil {
		return proto.ReceiveACGResp{}, err
	}
	if err := n.checkpointLocked(g); err != nil {
		return proto.ReceiveACGResp{}, err
	}
	return proto.ReceiveACGResp{OK: true}, nil
}
