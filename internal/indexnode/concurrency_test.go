package indexnode

import (
	"context"
	"sync"
	"testing"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/proto"
)

// TestConcurrentUpdatesAndSearches hammers one node from parallel writers
// and readers: every search must observe a consistent prefix (never a file
// that was not yet acknowledged, never miss one that was).
func TestConcurrentUpdatesAndSearches(t *testing.T) {
	n, _ := newTestNode(t)
	n.DeclareIndex(sizeSpec)

	const writers = 4
	const perWriter = 200
	var wg sync.WaitGroup
	errCh := make(chan error, writers+2)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f := index.FileID(w*perWriter + i)
				if _, err := n.Update(context.Background(), proto.UpdateReq{
					ACG: proto.ACGID(w + 1), IndexName: "size",
					Entries: []proto.IndexEntry{{File: f, Value: attr.Int(int64(f) + 1)}},
				}); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	// Concurrent searchers: result sets must be monotone snapshots.
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := n.Search(context.Background(), proto.SearchReq{
					ACGs:      []proto.ACGID{1, 2, 3, 4},
					IndexName: "size", Query: "size>0",
				})
				if err != nil {
					errCh <- err
					return
				}
				if len(resp.Files) < prev {
					errCh <- errNonMonotone
					return
				}
				prev = len(resp.Files)
			}
		}()
	}

	// Wait for writers, then stop readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Writers finish first (readers loop until stop); poll the count.
	for {
		st, err := n.NodeStats(context.Background(), proto.NodeStatsReq{})
		if err != nil {
			t.Fatal(err)
		}
		if st.Files == writers*perWriter {
			break
		}
		select {
		case err := <-errCh:
			t.Fatal(err)
		default:
		}
	}
	close(stop)
	<-done
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	resp, err := n.Search(context.Background(), proto.SearchReq{
		ACGs: []proto.ACGID{1, 2, 3, 4}, IndexName: "size", Query: "size>0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != writers*perWriter {
		t.Errorf("final search = %d files, want %d", len(resp.Files), writers*perWriter)
	}
}

var errNonMonotone = errNonMonotoneType{}

type errNonMonotoneType struct{}

func (errNonMonotoneType) Error() string {
	return "search result count went backwards (acknowledged update vanished)"
}
