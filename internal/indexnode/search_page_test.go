package indexnode

import (
	"context"
	"errors"
	"testing"
	"time"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/pagestore"
	"propeller/internal/perr"
	"propeller/internal/proto"
	"propeller/internal/query"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

// newPagedNode builds a standalone node with nPostings "size" postings
// spread across the given ACGs.
func newPagedNode(t testing.TB, nPostings int, acgs []proto.ACGID) *Node {
	t.Helper()
	clk := vclock.New()
	disk := simdisk.New(simdisk.Barracuda7200(), clk)
	store, err := pagestore.New(disk, 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{ID: "page-test", Store: store, Disk: disk, Clock: clk, CacheLimit: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	n.DeclareIndex(proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"})
	ctx := context.Background()
	batch := make([]proto.IndexEntry, 0, 1024)
	flush := func(id proto.ACGID) {
		if len(batch) == 0 {
			return
		}
		if _, err := n.Update(ctx, proto.UpdateReq{ACG: id, IndexName: "size", Entries: batch}); err != nil {
			t.Fatal(err)
		}
		batch = batch[:0]
	}
	for i := 0; i < nPostings; i++ {
		id := acgs[i%len(acgs)]
		batch = append(batch, proto.IndexEntry{File: index.FileID(i), Value: attr.Int(int64(i + 1))})
		if len(batch) == cap(batch) {
			flush(id)
		}
	}
	// Flush leftovers once per group (entries were interleaved; simplest
	// is to send the tail to each group's id in turn).
	for _, id := range acgs {
		flush(id)
	}
	return n
}

// TestSearchPageBudget drives a paged scan over a large index and asserts
// the acceptance bound: every page transfers at most Limit postings and
// the node never retains more than Limit postings while serving it, yet
// the union of all pages is exactly the full result set.
func TestSearchPageBudget(t *testing.T) {
	const total = 20000
	const limit = 100
	acgs := []proto.ACGID{1, 2, 3}
	n := newPagedNode(t, total, acgs)
	ctx := context.Background()

	req := proto.SearchReq{ACGs: acgs, IndexName: "size", Query: "size>0", Limit: limit}
	seen := make(map[index.FileID]bool)
	var last index.FileID
	pages := 0
	for {
		resp, err := n.Search(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Files) > limit {
			t.Fatalf("page %d transferred %d postings, budget is %d", pages, len(resp.Files), limit)
		}
		if resp.MaxRetained > limit {
			t.Fatalf("page %d retained %d postings node-side, budget is %d", pages, resp.MaxRetained, limit)
		}
		for i, f := range resp.Files {
			if req.AfterSet && f <= req.After {
				t.Fatalf("page %d returned file %d at or below cursor %d", pages, f, req.After)
			}
			if i > 0 && f <= resp.Files[i-1] {
				t.Fatalf("page %d not strictly ascending: %v", pages, resp.Files)
			}
			if seen[f] {
				t.Fatalf("file %d appeared on two pages", f)
			}
			seen[f] = true
			last = f
		}
		pages++
		if !resp.More {
			break
		}
		req.After, req.AfterSet = last, true
		if pages > total/limit+5 {
			t.Fatal("pagination does not terminate")
		}
	}
	if len(seen) != total {
		t.Fatalf("paged union = %d files, want %d", len(seen), total)
	}
	if pages != total/limit {
		t.Errorf("pages = %d, want %d", pages, total/limit)
	}
}

// TestSearchUnlimitedKeepsV1Semantics: Limit 0 returns everything in one
// response with More unset.
func TestSearchUnlimitedKeepsV1Semantics(t *testing.T) {
	acgs := []proto.ACGID{1, 2}
	n := newPagedNode(t, 500, acgs)
	resp, err := n.Search(context.Background(), proto.SearchReq{ACGs: acgs, IndexName: "size", Query: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 500 || resp.More {
		t.Errorf("unlimited search = %d files, more=%v", len(resp.Files), resp.More)
	}
}

// TestSearchStructuredPreds: a request carrying structured predicates
// (the v2 wire form) must behave exactly like its textual equivalent.
func TestSearchStructuredPreds(t *testing.T) {
	acgs := []proto.ACGID{1}
	n := newPagedNode(t, 100, acgs)
	ctx := context.Background()
	textual, err := n.Search(ctx, proto.SearchReq{ACGs: acgs, IndexName: "size", Query: "size>50"})
	if err != nil {
		t.Fatal(err)
	}
	structured, err := n.Search(ctx, proto.SearchReq{
		ACGs: acgs, IndexName: "size",
		Preds: []query.Predicate{{Field: "size", Op: query.OpGt, Value: attr.Int(50)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(structured.Files) != len(textual.Files) {
		t.Fatalf("structured = %d files, textual = %d", len(structured.Files), len(textual.Files))
	}
	for i := range structured.Files {
		if structured.Files[i] != textual.Files[i] {
			t.Fatalf("result divergence at %d: %v vs %v", i, structured.Files, textual.Files)
		}
	}
	// A bad textual query still reports the taxonomy.
	if _, err := n.Search(ctx, proto.SearchReq{ACGs: acgs, IndexName: "size", Query: "(size>1"}); !errors.Is(err, perr.ErrBadQuery) {
		t.Errorf("bad query err = %v, want perr.ErrBadQuery", err)
	}
}

// TestPageCollectorDuplicateBelowRoot: a cross-group duplicate of a
// retained non-root candidate must be dropped outright — not displace a
// genuine match and shrink the page.
func TestPageCollectorDuplicateBelowRoot(t *testing.T) {
	col := newPageCollector(proto.SearchReq{Limit: 3})
	for _, f := range []index.FileID{1, 3, 5} {
		col.add(f)
	}
	col.add(3) // duplicate below the heap root (5)
	files, more := col.page()
	if len(files) != 3 || files[0] != 1 || files[1] != 3 || files[2] != 5 {
		t.Fatalf("page = %v, want [1 3 5]", files)
	}
	if more {
		t.Error("duplicate must not set overflow")
	}
	// A genuinely smaller candidate still displaces the root.
	col2 := newPageCollector(proto.SearchReq{Limit: 2})
	for _, f := range []index.FileID{4, 6, 2} {
		col2.add(f)
	}
	files, more = col2.page()
	if len(files) != 2 || files[0] != 2 || files[1] != 4 || !more {
		t.Fatalf("page = %v more=%v, want [2 4] true", files, more)
	}
}

// newKDNode builds a standalone node with total points on the x=y diagonal
// in one KD-indexed group.
func newKDNode(t testing.TB, total int) *Node {
	t.Helper()
	clk := vclock.New()
	disk := simdisk.New(simdisk.Barracuda7200(), clk)
	store, err := pagestore.New(disk, 4096)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{ID: "kd-test", Store: store, Disk: disk, Clock: clk, CacheLimit: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	n.DeclareIndex(proto.IndexSpec{Name: "pt", Type: proto.IndexKD, Fields: []string{"x", "y"}})
	entries := make([]proto.IndexEntry, 0, total)
	for i := 0; i < total; i++ {
		entries = append(entries, proto.IndexEntry{
			File: index.FileID(i), KDCoords: []float64{float64(i), float64(i)},
		})
	}
	if _, err := n.Update(context.Background(), proto.UpdateReq{ACG: 1, IndexName: "pt", Entries: entries}); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestSearchKDPageBudget: KD box queries now stream through the collector,
// so the page budget holds node-side (MaxRetained <= Limit) and paging the
// box to exhaustion still yields the exact full result set.
func TestSearchKDPageBudget(t *testing.T) {
	const total = 500
	const limit = 10
	n := newKDNode(t, total)
	ctx := context.Background()

	req := proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "pt", Query: "x>=0 & y>=0", Limit: limit}
	seen := make(map[index.FileID]bool)
	for pages := 0; ; pages++ {
		resp, err := n.Search(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Files) > limit || resp.MaxRetained > limit {
			t.Fatalf("page %d: %d files, MaxRetained %d, budget %d",
				pages, len(resp.Files), resp.MaxRetained, limit)
		}
		for _, f := range resp.Files {
			if seen[f] {
				t.Fatalf("file %d appeared twice", f)
			}
			seen[f] = true
		}
		if !resp.More {
			break
		}
		req.After, req.AfterSet = resp.Files[len(resp.Files)-1], true
		if pages > total/limit+5 {
			t.Fatal("pagination does not terminate")
		}
	}
	if len(seen) != total {
		t.Fatalf("paged union = %d files, want %d", len(seen), total)
	}
}

// TestSearchKDOnlySkipsResidual: a query whose every predicate is covered
// by the KD spec must produce identical results to the residual-checked
// path (the box is exact, including strict bounds), and a query touching
// an uncovered field must still filter through residual evaluation.
func TestSearchKDOnlySkipsResidual(t *testing.T) {
	const total = 200
	n := newKDNode(t, total)
	ctx := context.Background()

	// Strict and mixed bounds, fully covered by the KD fields: x in (50, 120],
	// y >= 60 & y >= 80 (duplicate predicates intersect) -> x in (80... no:
	// x in (50,120], y in [80,inf) -> diagonal points 80..120.
	resp, err := n.Search(ctx, proto.SearchReq{
		ACGs: []proto.ACGID{1}, IndexName: "pt", Query: "x>50 & x<=120 & y>=60 & y>=80",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 41 || resp.Files[0] != 80 || resp.Files[40] != 120 {
		t.Fatalf("kd-only query = %d files %v..., want 41 files 80..120",
			len(resp.Files), resp.Files[:min(3, len(resp.Files))])
	}

	// An uncovered field forces residual evaluation; no posting carries it,
	// so nothing matches (and nothing must panic or mis-match).
	resp, err = n.Search(ctx, proto.SearchReq{
		ACGs: []proto.ACGID{1}, IndexName: "pt", Query: "x>=0 & uid=7",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 0 {
		t.Fatalf("uncovered-field query matched %v, want none", resp.Files)
	}
}

// newHashNode builds a standalone node with a hash index where dup files
// share value 7 and the rest are distinct.
func newHashNode(t testing.TB, dup, distinct int) *Node {
	t.Helper()
	clk := vclock.New()
	disk := simdisk.New(simdisk.Barracuda7200(), clk)
	store, err := pagestore.New(disk, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{ID: "hash-test", Store: store, Disk: disk, Clock: clk, CacheLimit: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	n.DeclareIndex(proto.IndexSpec{Name: "tag", Type: proto.IndexHash, Field: "tag"})
	entries := make([]proto.IndexEntry, 0, dup+distinct)
	for i := 0; i < dup; i++ {
		entries = append(entries, proto.IndexEntry{File: index.FileID(i), Value: attr.Int(7)})
	}
	for i := 0; i < distinct; i++ {
		entries = append(entries, proto.IndexEntry{File: index.FileID(dup + i), Value: attr.Int(int64(1000 + i))})
	}
	if _, err := n.Update(context.Background(), proto.UpdateReq{ACG: 1, IndexName: "tag", Entries: entries}); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestSearchHashPageBudget: hash point lookups stream through LookupEach,
// so MaxRetained <= Limit holds and paging the lookup to exhaustion yields
// every file carrying the value.
func TestSearchHashPageBudget(t *testing.T) {
	const dup = 400
	const limit = 25
	n := newHashNode(t, dup, 100)
	ctx := context.Background()

	req := proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "tag", Query: "tag=7", Limit: limit}
	seen := make(map[index.FileID]bool)
	for pages := 0; ; pages++ {
		resp, err := n.Search(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Files) > limit || resp.MaxRetained > limit {
			t.Fatalf("page %d: %d files, MaxRetained %d, budget %d",
				pages, len(resp.Files), resp.MaxRetained, limit)
		}
		for _, f := range resp.Files {
			if f >= dup {
				t.Fatalf("point lookup returned file %d with a different value", f)
			}
			if seen[f] {
				t.Fatalf("file %d appeared twice", f)
			}
			seen[f] = true
		}
		if !resp.More {
			break
		}
		req.After, req.AfterSet = resp.Files[len(resp.Files)-1], true
		if pages > dup/limit+5 {
			t.Fatal("pagination does not terminate")
		}
	}
	if len(seen) != dup {
		t.Fatalf("paged union = %d files, want %d", len(seen), dup)
	}
}

// TestSearchHashScanFallbackCounted: a non-point query against a hash
// index degrades to a full-table scan; NodeStats must count it.
func TestSearchHashScanFallbackCounted(t *testing.T) {
	n := newHashNode(t, 10, 10)
	ctx := context.Background()

	stats, err := n.NodeStats(ctx, proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.HashScanFallbacks != 0 {
		t.Fatalf("fresh node HashScanFallbacks = %d", stats.HashScanFallbacks)
	}
	// A point query does not count.
	if _, err := n.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "tag", Query: "tag=7"}); err != nil {
		t.Fatal(err)
	}
	// A range query cannot be served point-wise: full-table scan, counted.
	resp, err := n.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "tag", Query: "tag>5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 20 {
		t.Fatalf("range-over-hash = %d files, want 20", len(resp.Files))
	}
	stats, err = n.NodeStats(ctx, proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.HashScanFallbacks != 1 {
		t.Errorf("HashScanFallbacks = %d, want 1", stats.HashScanFallbacks)
	}
}

// TestSearchLazyConsistencySkipsCommit: a lazy read does not commit the
// cache (pending updates invisible); a strict read commits and sees them.
func TestSearchLazyConsistencySkipsCommit(t *testing.T) {
	clk := vclock.New()
	disk := simdisk.New(simdisk.Barracuda7200(), clk)
	store, err := pagestore.New(disk, 4096)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{ID: "lazy-test", Store: store, Disk: disk, Clock: clk, CacheLimit: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	n.DeclareIndex(proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"})
	ctx := context.Background()
	if _, err := n.Update(ctx, proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 7, Value: attr.Int(42)}},
	}); err != nil {
		t.Fatal(err)
	}
	lazyReq := proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>0", Consistency: proto.ConsistencyLazy}
	resp, err := n.Search(ctx, lazyReq)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 0 {
		t.Errorf("lazy search saw uncommitted cache: %v", resp.Files)
	}
	if resp.CommitLatencyNanos != 0 {
		t.Errorf("lazy search paid commit latency %d", resp.CommitLatencyNanos)
	}
	strict, err := n.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Files) != 1 || strict.Files[0] != 7 {
		t.Errorf("strict search = %v, want [7]", strict.Files)
	}
	// Committed now: lazy sees it too.
	resp, err = n.Search(ctx, lazyReq)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 1 {
		t.Errorf("lazy search after commit = %v, want [7]", resp.Files)
	}
}

// TestSearchCancelledContext: an already-cancelled context aborts the
// group pass with the taxonomy error.
func TestSearchCancelledContext(t *testing.T) {
	acgs := []proto.ACGID{1, 2}
	n := newPagedNode(t, 100, acgs)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := n.Search(ctx, proto.SearchReq{ACGs: acgs, IndexName: "size", Query: "size>0"})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled search err = %v, want context.Canceled", err)
	}
	// An expired deadline maps to the timeout taxonomy.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	_, err = n.Search(expired, proto.SearchReq{ACGs: acgs, IndexName: "size", Query: "size>0"})
	if !errors.Is(err, perr.ErrTimeout) {
		t.Errorf("expired search err = %v, want perr.ErrTimeout", err)
	}
}

// TestSearchStringPrefixBoundOnBTree: the node-side cursor scan has the
// same string-prefix lower-bound hazard as ScanRange and must reject
// prefix-value postings even though residual evaluation would also catch
// them (residual is skipped on some paths).
func TestSearchStringPrefixBoundOnBTree(t *testing.T) {
	clk := vclock.New()
	disk := simdisk.New(simdisk.Barracuda7200(), clk)
	store, err := pagestore.New(disk, 4096)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{ID: "str-test", Store: store, Disk: disk, Clock: clk, CacheLimit: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	n.DeclareIndex(proto.IndexSpec{Name: "kw", Type: proto.IndexBTree, Field: "kw"})
	ctx := context.Background()
	if _, err := n.Update(ctx, proto.UpdateReq{ACG: 1, IndexName: "kw", Entries: []proto.IndexEntry{
		{File: index.FileID(0x6300000000000000), Value: attr.Str("a")},
		{File: 1, Value: attr.Str("ab")},
	}}); err != nil {
		t.Fatal(err)
	}
	resp, err := n.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "kw", Query: "kw=ab"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 1 || resp.Files[0] != 1 {
		t.Fatalf("kw=ab matched %v, want [1]", resp.Files)
	}
}

// TestSearchHashContradictionDoesNotScan: contradictory equality
// predicates form an empty interval; the hash path must return nothing
// without a full-table scan (and without counting a fallback).
func TestSearchHashContradictionDoesNotScan(t *testing.T) {
	n := newHashNode(t, 10, 10)
	ctx := context.Background()
	resp, err := n.Search(ctx, proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "tag", Query: "tag=5 & tag=7"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 0 {
		t.Fatalf("contradiction matched %v", resp.Files)
	}
	st, err := n.NodeStats(ctx, proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.HashScanFallbacks != 0 {
		t.Errorf("contradiction counted as scan fallback (%d)", st.HashScanFallbacks)
	}
}
