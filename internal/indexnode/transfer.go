package indexnode

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"

	"propeller/internal/index"
	"propeller/internal/proto"
	"propeller/internal/rpc"
	"propeller/internal/wal"
)

// This file implements the node side of the placement control plane: live
// group migration (TransferACG → peer ReceiveACG → Master MigrateReport),
// stale-copy release (ReleaseACG), and failure-driven recovery from shared
// storage (RecoverFromShared). The group image that moves between nodes is
// the same record stream checkpointed to the shared store (see image.go),
// so migration, split shipping and crash recovery all exercise one install
// path; checkpoints written by older builds (gob) still load through the
// legacy decoder, discriminated by the image magic byte.

// imageLocked serializes the group's durable state — membership, causality
// edges, committed postings per index — keeping only files accepted by
// filter (nil = all). Caller holds g.mu and must have committed the group
// if the image is meant to include every acknowledged entry.
func (n *Node) imageLocked(g *group, filter func(index.FileID) bool) proto.ReceiveACGReq {
	req := proto.ReceiveACGReq{ACG: g.id, ReplSeq: g.replSeq}
	for _, f := range g.groupFilesSorted() {
		if filter == nil || filter(f) {
			req.Files = append(req.Files, f)
		}
	}
	srcs := make([]index.FileID, 0, len(g.graph.adj))
	for src := range g.graph.adj {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, src := range srcs {
		if filter != nil && !filter(src) {
			continue
		}
		m := g.graph.adj[src]
		dsts := make([]index.FileID, 0, len(m))
		for dst := range m {
			dsts = append(dsts, dst)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		for _, dst := range dsts {
			if filter != nil && !filter(dst) {
				continue
			}
			req.Edges = append(req.Edges, proto.ACGEdge{Src: src, Dst: dst, Weight: m[dst]})
		}
	}
	names := make([]string, 0, len(g.postings))
	for name := range g.postings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		spec, _ := n.lookupSpec(name)
		mi := proto.MigratedIndex{Spec: spec}
		for f, e := range g.postings[name] {
			if filter == nil || filter(f) {
				mi.Entries = append(mi.Entries, e)
			}
		}
		sort.Slice(mi.Entries, func(i, j int) bool { return mi.Entries[i].File < mi.Entries[j].File })
		if len(mi.Entries) > 0 {
			req.Indexes = append(req.Indexes, mi)
		}
	}
	return req
}

// encodeGroupImage renders the legacy gob image form. Nothing writes it
// anymore (checkpoints and transfers use the record stream); it survives
// for tests proving the mixed-version read path.
func encodeGroupImage(req proto.ReceiveACGReq) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
		return nil, fmt.Errorf("indexnode: encode group image %d: %w", req.ACG, err)
	}
	return buf.Bytes(), nil
}

func decodeGroupImage(raw []byte) (proto.ReceiveACGReq, error) {
	var req proto.ReceiveACGReq
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&req); err != nil {
		return proto.ReceiveACGReq{}, fmt.Errorf("indexnode: decode group image: %w", err)
	}
	return req, nil
}

// checkpointLocked commits the group and writes its full image to shared
// storage, truncating the group's mirrored WAL (the image now reflects
// every record it held). Called at placement events — split, merge,
// migration, transfer-in, recovery, causality flush — and, size-triggered,
// from the commit path (see sharedWALCheckpointRecords). No-op without a
// shared store. Caller holds g.mu.
func (n *Node) checkpointLocked(g *group) error {
	if n.cfg.Shared == nil {
		return nil
	}
	// The image only carries committed postings, and Checkpoint drops the
	// mirrored WAL — so every pending entry must be committed first or the
	// checkpoint would silently forget acknowledged updates.
	if err := n.commitGroupLocked(g); err != nil {
		return err
	}
	// Follower copies commit locally but never write the mirror: the
	// primary owns it, and a follower's checkpoint would truncate mirrored
	// WAL records the follower may not even hold.
	if g.follower {
		return nil
	}
	return n.writeCheckpointLocked(g)
}

// writeCheckpointLocked serializes the group's committed state to the
// shared store in the record-stream image format (see image.go). The group
// must have no pending entries (Checkpoint drops the mirrored WAL they
// live in). Caller holds g.mu.
func (n *Node) writeCheckpointLocked(g *group) error {
	raw, err := n.imageBytesLocked(g, imageHeader{
		acg: g.id, epoch: n.epoch(), replSeq: g.replSeq,
	})
	if err != nil {
		return err
	}
	n.cfg.Shared.Checkpoint(g.id, raw)
	return nil
}

// shipGroupStreamLocked ships the group's image (filtered to files accepted
// by filter; nil = all) to peer as a chunked MethodReceiveACGChunked
// transfer: bounded frames other streams' traffic interleaves with, applied
// incrementally on the receiver. The group stays locked — quiesced — for
// the duration, exactly like the old single-frame ship. Caller holds g.mu.
func (n *Node) shipGroupStreamLocked(ctx context.Context, peer *rpc.Client, g *group,
	filter func(index.FileID) bool, meta proto.ReceiveACGStreamMeta) error {
	st, err := rpc.OpenStream(ctx, peer, proto.MethodReceiveACGChunked, meta)
	if err != nil {
		return err
	}
	hdr := imageHeader{acg: meta.ACG, epoch: meta.Epoch, follower: meta.Follower, replSeq: meta.ReplSeq}
	serr := n.streamImageLocked(g, filter, hdr, func(b []byte) error {
		return st.Send(ctx, b)
	})
	if serr != nil {
		// A mid-image send failure settles the stream; the terminal error
		// (a typed refusal from the receiver) is more precise than ours.
		// A torn prefix cannot install: the receiver's applier rejects a
		// stream that half-closes inside a record.
		if _, ferr := rpc.FinishStream[proto.ReceiveACGResp](ctx, st); ferr != nil {
			return ferr
		}
		return serr
	}
	_, err = rpc.FinishStream[proto.ReceiveACGResp](ctx, st)
	return err
}

// knownPairsLocked snapshots the (index, file) pairs this group already has
// an opinion on — committed postings or pending entries. Recovery and
// transfer installs skip these: anything the live group already holds is
// newer than what shared storage or a migration payload carries, and stale
// state must never clobber fresher acknowledged writes. Caller holds g.mu.
func (n *Node) knownPairsLocked(g *group) map[string]map[index.FileID]bool {
	known := make(map[string]map[index.FileID]bool, len(g.postings)+len(g.pending))
	note := func(name string, f index.FileID) {
		m := known[name]
		if m == nil {
			m = make(map[index.FileID]bool)
			known[name] = m
		}
		m[f] = true
	}
	for name, post := range g.postings {
		for f := range post {
			note(name, f)
		}
	}
	for name, run := range g.pending {
		for f := range run {
			note(name, f)
		}
	}
	return known
}

// installImageLocked merges a group image into g: membership and edges
// union in, and each index's postings apply through the commit engine's
// bulk path, skipping (index, file) pairs in known. Caller holds g.mu.
func (n *Node) installImageLocked(g *group, img proto.ReceiveACGReq, known map[string]map[index.FileID]bool) error {
	for _, f := range img.Files {
		g.files[f] = true
		delete(g.movedOut, f) // an authoritative install re-homes the file here
	}
	for _, e := range img.Edges {
		g.graph.addEdge(e.Src, e.Dst, e.Weight)
	}
	for _, mi := range img.Indexes {
		n.DeclareIndex(mi.Spec)
		in, err := n.instFor(g, mi.Spec.Name)
		if err != nil {
			return err
		}
		run := make(map[index.FileID]pendingEntry, len(mi.Entries))
		for _, e := range mi.Entries {
			if known[mi.Spec.Name][e.File] {
				continue
			}
			run[e.File] = pendingEntry{e: e}
		}
		if len(run) == 0 {
			continue
		}
		if err := n.applyRunLocked(g, in, mi.Spec.Name, run); err != nil {
			return err
		}
		if in.kd != nil {
			in.kdImage = in.kd.Serialize()
			in.kdResident = true
		}
	}
	return nil
}

// replayWALLocked replays framed records into the group's lazy cache,
// skipping (index, file) pairs in known. It tolerates a torn tail (the
// acknowledgement guarantee covers intact records only) and returns the
// number of entries restored. Caller holds g.mu.
func (n *Node) replayWALLocked(g *group, walBytes []byte, known map[string]map[index.FileID]bool) (int, error) {
	restored := 0
	err := wal.ReplayBytes(walBytes, func(rec []byte) bool {
		req, derr := decodeWALRecord(rec)
		if derr != nil {
			return false
		}
		for _, e := range req.Entries {
			if known[req.IndexName][e.File] {
				continue
			}
			g.files[e.File] = true
			n.addPendingLocked(g, req.IndexName, e, nil)
			restored++
		}
		return true
	})
	if err != nil && !errors.Is(err, wal.ErrCorrupt) {
		return restored, err
	}
	if restored > 0 {
		g.lastUpdate = n.cfg.Clock.Now()
	}
	return restored, nil
}

// TransferACG executes one migration order: quiesce the group under its own
// lock (updates and searches on it block, traffic on every other ACG is
// untouched), commit so the image is complete, checkpoint shared storage,
// ship the image to the destination, report the move to the Master, and
// only then release the local copy behind an epoch tombstone. Any failure
// before the Master's rebind leaves this node the owner (the destination's
// orphan copy is reconciled away by the double-ownership guard).
func (n *Node) TransferACG(ctx context.Context, ord proto.MigrateOrder) error {
	if ord.Dest == n.cfg.ID {
		return nil // already home
	}
	if n.cfg.Master == nil {
		return ErrNoMaster
	}
	if n.cfg.Dial == nil {
		return fmt.Errorf("indexnode transfer: no dialer for peer %s", ord.Dest)
	}
	g := n.lockGroup(ord.ACG)
	if g == nil {
		if _, gone := n.releasedEpoch(ord.ACG); gone {
			return nil // already transferred (duplicate order)
		}
		return fmt.Errorf("acg %d: %w", ord.ACG, ErrUnknownACG)
	}
	defer g.mu.Unlock()
	if err := n.commitGroupLocked(g); err != nil {
		return err
	}
	epoch := n.epoch()
	if n.cfg.Shared != nil {
		// Shared storage stays authoritative across the move: if the
		// destination dies right after installing, recovery reads this.
		if err := n.writeCheckpointLocked(g); err != nil {
			return err
		}
	}
	peer, err := n.cfg.Dial(ctx, ord.Addr)
	if err != nil {
		return fmt.Errorf("indexnode transfer dial %s: %w", ord.Addr, err)
	}
	defer peer.Close() //nolint:errcheck // best-effort teardown
	meta := proto.ReceiveACGStreamMeta{ACG: g.id, Epoch: epoch, ReplSeq: g.replSeq}
	if err := n.shipGroupStreamLocked(ctx, peer, g, nil, meta); err != nil {
		return fmt.Errorf("indexnode transfer acg %d to %s: %w", ord.ACG, ord.Dest, err)
	}
	rep, err := rpc.Call[proto.MigrateReportReq, proto.MigrateReportResp](
		ctx, n.cfg.Master, proto.MethodMigrateReport,
		proto.MigrateReportReq{Node: n.cfg.ID, ACG: ord.ACG, Dest: ord.Dest})
	if err != nil {
		return fmt.Errorf("indexnode migrate report: %w", err)
	}
	n.noteEpoch(rep.Epoch)
	// Release: the group dies under its lock, the registry forgets it, and
	// the tombstone turns stale-routed traffic into ErrStalePlacement.
	g.dead = true
	n.mu.Lock()
	delete(n.groups, ord.ACG)
	n.released[ord.ACG] = rep.Epoch
	n.mu.Unlock()
	n.groupsMigrated.Inc()
	return nil
}

// ReleaseACG drops the node's copy of a group it no longer owns (a Master
// drop order: the group was migrated or recovered elsewhere while this node
// was silent) and tombstones the id at the given epoch. Idempotent.
func (n *Node) ReleaseACG(id proto.ACGID, epoch proto.Epoch) {
	n.noteEpoch(epoch)
	g := n.lockGroup(id)
	if g == nil {
		n.mu.Lock()
		if _, exists := n.groups[id]; !exists {
			n.released[id] = epoch
		}
		n.mu.Unlock()
		return
	}
	g.dead = true
	n.mu.Lock()
	delete(n.groups, id)
	n.released[id] = epoch
	n.mu.Unlock()
	g.mu.Unlock()
}

// RecoverFromShared adopts a group from shared storage (a Master recover
// order after the previous owner died): the checkpoint image is installed,
// the mirrored WAL is replayed into the lazy cache — restoring every
// acknowledged-but-uncommitted update, the paper's recovery guarantee —
// and the group is re-checkpointed so a second failure recovers from a
// compact image. State the group already holds locally (a client re-routed
// here before the order arrived) is never clobbered by the older shared
// copy.
func (n *Node) RecoverFromShared(ctx context.Context, id proto.ACGID) error {
	if n.cfg.Shared == nil {
		return fmt.Errorf("indexnode %s: no shared store to recover acg %d from", n.cfg.ID, id)
	}
	checkpoint, walBytes, ok := n.cfg.Shared.Load(id)
	n.clearReleased(id)
	g, err := n.lockOrCreateGroup(id)
	if err != nil {
		return err
	}
	defer g.mu.Unlock()
	if !ok {
		// Nothing durable: the group existed in metadata only (no
		// acknowledged updates). Owning an empty group is correct.
		n.groupsRecovered.Inc()
		return nil
	}
	known := n.knownPairsLocked(g)
	if err := n.installImageBytesLocked(g, checkpoint, known); err != nil {
		return fmt.Errorf("indexnode recover acg %d: %w", id, err)
	}
	if _, err := n.replayWALLocked(g, walBytes, known); err != nil {
		return fmt.Errorf("indexnode recover acg %d wal: %w", id, err)
	}
	// WAL-replayed entries may name indexes this node has never served
	// (the dead owner learned them; we did not). Resolve the specs now —
	// the re-checkpoint below commits the replayed entries and needs them.
	for name := range g.pending {
		if err := n.ensureSpec(ctx, name); err != nil {
			return fmt.Errorf("indexnode recover acg %d: %w", id, err)
		}
	}
	if err := n.checkpointLocked(g); err != nil {
		return err
	}
	n.groupsRecovered.Inc()
	return nil
}
