// SQL front-end for the minisql baseline: a parser for the tiny SELECT
// dialect the paper's MySQL comparison issues, compiled onto the same
// query.Query conjunctions the engine already evaluates. Keeping a real
// textual surface (rather than hand-built Query structs) lets the fuzzer
// drive the baseline exactly the way a workload generator would — and pins
// the contract that malformed statements are typed errors, never panics.
package minisql

import (
	"fmt"
	"strconv"
	"strings"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/perr"
	"propeller/internal/query"
)

// ErrBadSQL is returned for malformed statements. It wraps the public
// taxonomy's ErrBadQuery, so errors.Is(err, perr.ErrBadQuery) holds for
// every parse failure — the same contract query.Parse keeps for the
// Propeller-side predicate language.
var ErrBadSQL = fmt.Errorf("minisql: bad statement (%w)", perr.ErrBadQuery)

// Stmt is a parsed SELECT statement.
type Stmt struct {
	// Table is the FROM target.
	Table string
	// Cols are the projected columns; empty with Star set for SELECT *.
	Cols []string
	Star bool
	// Where is the conjunction compiled from the WHERE clause (empty
	// means no filter).
	Where query.Query
}

// Parse parses one statement of the supported dialect:
//
//	SELECT * FROM files WHERE size >= 4096 AND uid = 7
//	SELECT path, size FROM files WHERE keyword = 'firefox'
//
// Keywords are case-insensitive; literals are integers, floats, or
// single-quoted strings (a doubled quote escapes one). The grammar is a flat
// conjunction — no OR, no parentheses, no joins — matching what the
// paper's evaluation issues against MySQL.
func Parse(s string) (Stmt, error) {
	toks, err := lexSQL(s)
	if err != nil {
		return Stmt{}, err
	}
	p := &sqlParser{toks: toks}
	st, err := p.stmt()
	if err != nil {
		return Stmt{}, err
	}
	if !p.eof() {
		return Stmt{}, fmt.Errorf("%w: trailing input at %q", ErrBadSQL, p.peek().text)
	}
	return st, nil
}

// Query parses and executes a statement: the WHERE conjunction runs
// through the engine's planner (Select), so an indexed predicate drives a
// B+tree scan exactly as a hand-built query would. Projected columns must
// exist in the table's schema.
func (db *DB) Query(stmt string) ([]index.FileID, error) {
	st, err := Parse(stmt)
	if err != nil {
		return nil, err
	}
	t, err := db.Table(st.Table)
	if err != nil {
		return nil, err
	}
	for _, c := range append(st.Cols[:len(st.Cols):len(st.Cols)], fieldsOf(st.Where)...) {
		if _, ok := t.byCol[c]; !ok {
			return nil, fmt.Errorf("%q: %w", c, ErrUnknownColumn)
		}
	}
	return t.Select(st.Where)
}

func fieldsOf(q query.Query) []string {
	out := make([]string, 0, len(q.Preds))
	for _, p := range q.Preds {
		out = append(out, p.Field)
	}
	return out
}

// --- lexer ---

type sqlTokKind uint8

const (
	tokIdent sqlTokKind = iota + 1
	tokNumber
	tokString
	tokOp
	tokComma
	tokStar
)

type sqlToken struct {
	kind sqlTokKind
	text string
}

func isSQLIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isSQLIdentByte(c byte) bool {
	return isSQLIdentStart(c) || (c >= '0' && c <= '9') || c == '.' || c == '-'
}

func isSQLNumberByte(c byte) bool {
	return (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-'
}

func lexSQL(s string) ([]sqlToken, error) {
	var toks []sqlToken
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, sqlToken{tokComma, ","})
			i++
		case c == '*':
			toks = append(toks, sqlToken{tokStar, "*"})
			i++
		case c == '=':
			toks = append(toks, sqlToken{tokOp, "="})
			i++
		case c == '<' || c == '>':
			op := string(c)
			i++
			if i < len(s) && s[i] == '=' {
				op += "="
				i++
			}
			toks = append(toks, sqlToken{tokOp, op})
		case c == '\'':
			lit, rest, err := lexSQLString(s[i:])
			if err != nil {
				return nil, err
			}
			toks = append(toks, sqlToken{tokString, lit})
			i += len(s[i:]) - len(rest)
		case c >= '0' && c <= '9', c == '+', c == '-':
			j := i + 1
			for j < len(s) && isSQLNumberByte(s[j]) {
				j++
			}
			toks = append(toks, sqlToken{tokNumber, s[i:j]})
			i = j
		case isSQLIdentStart(c):
			j := i + 1
			for j < len(s) && isSQLIdentByte(s[j]) {
				j++
			}
			toks = append(toks, sqlToken{tokIdent, s[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("%w: unexpected character %q", ErrBadSQL, rune(c))
		}
	}
	return toks, nil
}

// lexSQLString consumes a single-quoted literal from the head of s (which
// starts at the opening quote) and returns the unescaped value plus the
// unconsumed tail. A doubled quote inside the literal escapes one quote.
func lexSQLString(s string) (lit, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		if s[i] != '\'' {
			b.WriteByte(s[i])
			continue
		}
		if i+1 < len(s) && s[i+1] == '\'' {
			b.WriteByte('\'')
			i++
			continue
		}
		return b.String(), s[i+1:], nil
	}
	return "", "", fmt.Errorf("%w: unterminated string literal", ErrBadSQL)
}

// --- parser ---

type sqlParser struct {
	toks []sqlToken
	pos  int
}

func (p *sqlParser) eof() bool { return p.pos >= len(p.toks) }

func (p *sqlParser) peek() sqlToken {
	if p.eof() {
		return sqlToken{}
	}
	return p.toks[p.pos]
}

func (p *sqlParser) next() sqlToken {
	t := p.peek()
	p.pos++
	return t
}

// keyword consumes the next token if it is the given keyword
// (case-insensitive identifier match).
func (p *sqlParser) keyword(kw string) bool {
	if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

// ident consumes an identifier that is not a reserved keyword, normalized
// the way the query language normalizes field names.
func (p *sqlParser) ident(what string) (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("%w: expected %s, got %q", ErrBadSQL, what, t.text)
	}
	for _, kw := range []string{"select", "from", "where", "and"} {
		if strings.EqualFold(t.text, kw) {
			return "", fmt.Errorf("%w: reserved word %q as %s", ErrBadSQL, t.text, what)
		}
	}
	p.pos++
	return query.NormalizeField(t.text)
}

func (p *sqlParser) stmt() (Stmt, error) {
	var st Stmt
	if !p.keyword("select") {
		return st, fmt.Errorf("%w: expected SELECT", ErrBadSQL)
	}
	if p.peek().kind == tokStar {
		p.pos++
		st.Star = true
	} else {
		for {
			col, err := p.ident("column")
			if err != nil {
				return st, err
			}
			st.Cols = append(st.Cols, col)
			if p.peek().kind != tokComma {
				break
			}
			p.pos++
		}
	}
	if !p.keyword("from") {
		return st, fmt.Errorf("%w: expected FROM, got %q", ErrBadSQL, p.peek().text)
	}
	table, err := p.ident("table name")
	if err != nil {
		return st, err
	}
	st.Table = table
	if !p.keyword("where") {
		return st, nil
	}
	for {
		pred, err := p.pred()
		if err != nil {
			return st, err
		}
		st.Where.Preds = append(st.Where.Preds, pred)
		if !p.keyword("and") {
			return st, nil
		}
	}
}

var sqlOps = map[string]query.Op{
	"=": query.OpEq, "<": query.OpLt, "<=": query.OpLe,
	">": query.OpGt, ">=": query.OpGe,
}

func (p *sqlParser) pred() (query.Predicate, error) {
	field, err := p.ident("column")
	if err != nil {
		return query.Predicate{}, err
	}
	opTok := p.next()
	op, ok := sqlOps[opTok.text]
	if opTok.kind != tokOp || !ok {
		return query.Predicate{}, fmt.Errorf("%w: expected comparison operator, got %q", ErrBadSQL, opTok.text)
	}
	lit := p.next()
	switch lit.kind {
	case tokString:
		return query.Predicate{Field: field, Op: op, Value: attr.Str(lit.text)}, nil
	case tokNumber:
		if n, err := strconv.ParseInt(lit.text, 10, 64); err == nil {
			return query.Predicate{Field: field, Op: op, Value: attr.Int(n)}, nil
		}
		if f, err := strconv.ParseFloat(lit.text, 64); err == nil {
			return query.Predicate{Field: field, Op: op, Value: attr.Float(f)}, nil
		}
		return query.Predicate{}, fmt.Errorf("%w: bad numeric literal %q", ErrBadSQL, lit.text)
	default:
		return query.Predicate{}, fmt.Errorf("%w: expected literal, got %q", ErrBadSQL, lit.text)
	}
}
