package minisql

import (
	"errors"
	"testing"
	"time"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/pagestore"
	"propeller/internal/query"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

var testNow = time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)

func newDB(t testing.TB) *DB {
	t.Helper()
	clk := vclock.New()
	store, err := pagestore.New(simdisk.New(simdisk.Barracuda7200(), clk), 65536)
	if err != nil {
		t.Fatal(err)
	}
	return Open(store)
}

func filesSchema() Schema {
	return Schema{
		Table: "files",
		Columns: []Column{
			{Name: "path", Kind: attr.KindString},
			{Name: "size", Kind: attr.KindInt},
			{Name: "mtime", Kind: attr.KindTime},
		},
	}
}

func TestCreateTableValidation(t *testing.T) {
	db := newDB(t)
	if _, err := db.CreateTable(filesSchema(), []string{"size"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(filesSchema(), nil); !errors.Is(err, ErrTableExists) {
		t.Errorf("duplicate table = %v", err)
	}
	if _, err := db.CreateTable(Schema{Table: "x"}, []string{"nope"}); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("bad index column = %v", err)
	}
	if _, err := db.Table("files"); err != nil {
		t.Errorf("Table lookup: %v", err)
	}
	if _, err := db.Table("ghost"); !errors.Is(err, ErrUnknownTable) {
		t.Errorf("ghost table = %v", err)
	}
}

func TestInsertSelect(t *testing.T) {
	db := newDB(t)
	tb, err := db.CreateTable(filesSchema(), []string{"size", "mtime"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		err := tb.Insert(index.FileID(i), Row{
			"path":  attr.Str("/f"),
			"size":  attr.Int(int64(i) << 20),
			"mtime": attr.Time(testNow.Add(-time.Duration(i) * time.Hour)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if tb.Len() != 100 {
		t.Fatalf("Len = %d", tb.Len())
	}
	q, err := query.Parse("size>90m", testNow)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tb.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Errorf("select = %d rows, want 9", len(got))
	}
	// Multi-predicate with residual filter.
	q2, err := query.Parse("size>10m & mtime<1day", testNow)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := tb.Select(q2)
	if err != nil {
		t.Fatal(err)
	}
	// size>10m -> files 11..99; mtime<1day -> files 0..23 (age i hours).
	if len(got2) != 13 { // 11..23
		t.Errorf("select = %d rows, want 13", len(got2))
	}
}

func TestInsertErrors(t *testing.T) {
	db := newDB(t)
	tb, _ := db.CreateTable(filesSchema(), nil)
	if err := tb.Insert(1, Row{"size": attr.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(1, Row{"size": attr.Int(1)}); !errors.Is(err, ErrRowExists) {
		t.Errorf("duplicate pk = %v", err)
	}
	if err := tb.Insert(2, Row{"ghost": attr.Int(1)}); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("bad column = %v", err)
	}
}

func TestInsertBatch(t *testing.T) {
	db := newDB(t)
	tb, _ := db.CreateTable(filesSchema(), []string{"size"})
	var pks []index.FileID
	var rows []Row
	for i := 0; i < 300; i++ {
		pks = append(pks, index.FileID(i))
		rows = append(rows, Row{"size": attr.Int(int64(i))})
	}
	if err := tb.InsertBatch(pks, rows); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 300 {
		t.Errorf("Len = %d", tb.Len())
	}
	if err := tb.InsertBatch(pks[:1], rows); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	db := newDB(t)
	tb, _ := db.CreateTable(filesSchema(), []string{"size"})
	if err := tb.Insert(1, Row{"size": attr.Int(1 << 10)}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Update(1, Row{"size": attr.Int(2 << 30)}); err != nil {
		t.Fatal(err)
	}
	q, _ := query.Parse("size>1g", testNow)
	got, err := tb.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("select after update = %v", got)
	}
	qOld, _ := query.Parse("size<1m", testNow)
	gotOld, err := tb.Select(qOld)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotOld) != 0 {
		t.Errorf("stale index entry: %v", gotOld)
	}
	if err := tb.Update(99, Row{"size": attr.Int(1)}); !errors.Is(err, ErrRowNotFound) {
		t.Errorf("update missing = %v", err)
	}
}

func TestGet(t *testing.T) {
	db := newDB(t)
	tb, _ := db.CreateTable(filesSchema(), nil)
	if err := tb.Insert(5, Row{"path": attr.Str("/x"), "size": attr.Int(9)}); err != nil {
		t.Fatal(err)
	}
	row, err := tb.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	if row["path"].AsString() != "/x" || row["size"].AsInt() != 9 {
		t.Errorf("row = %v", row)
	}
	// Returned row is a copy.
	row["size"] = attr.Int(100)
	again, _ := tb.Get(5)
	if again["size"].AsInt() != 9 {
		t.Error("Get must return a copy")
	}
	if _, err := tb.Get(6); !errors.Is(err, ErrRowNotFound) {
		t.Errorf("missing get = %v", err)
	}
}

func TestSelectFullScanWithoutIndex(t *testing.T) {
	db := newDB(t)
	tb, _ := db.CreateTable(filesSchema(), nil) // no indexes at all
	for i := 0; i < 50; i++ {
		if err := tb.Insert(index.FileID(i), Row{"size": attr.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	q, _ := query.Parse("size>=48", testNow)
	got, err := tb.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("full scan select = %v", got)
	}
}

func TestFileTablesAndSearch(t *testing.T) {
	db := newDB(t)
	files, keywords, err := FileTables(db)
	if err != nil {
		t.Fatal(err)
	}
	apps := []string{"firefox", "linux", "firefox", "openoffice"}
	for i, kw := range apps {
		pk := index.FileID(i)
		if err := files.Insert(pk, Row{
			"path":  attr.Str("/data/" + kw),
			"size":  attr.Int(int64(i+1) << 30),
			"mtime": attr.Time(testNow.Add(-time.Duration(i*30) * time.Hour)),
			"uid":   attr.Int(1000),
		}); err != nil {
			t.Fatal(err)
		}
		if err := keywords.Insert(pk, Row{"keyword": attr.Str(kw)}); err != nil {
			t.Fatal(err)
		}
	}
	// Query #2 of Table III: keyword firefox & mtime < 1 week.
	q, err := query.Parse("keyword:firefox & mtime<1week", testNow)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SearchFiles(files, keywords, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("keyword search = %v, want [0 2]", got)
	}
	// Pure keyword query.
	q2, _ := query.Parse("keyword:linux", testNow)
	got2, err := SearchFiles(files, keywords, q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 1 || got2[0] != 1 {
		t.Errorf("pure keyword = %v", got2)
	}
	// Query #1: size & mtime only.
	q3, _ := query.Parse("size>1g & mtime<1day", testNow)
	got3, err := SearchFiles(files, keywords, q3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got3) != 0 { // file 0 is exactly 1GB (not >), others too old
		t.Errorf("query1 = %v", got3)
	}
}

func TestGlobalIndexCostGrowsWithScale(t *testing.T) {
	// The architectural property the paper measures: inserting into a
	// global index over a big dataset costs more virtual I/O than over a
	// small one (with the same bounded buffer pool).
	cost := func(n int) time.Duration {
		clk := vclock.New()
		store, err := pagestore.New(simdisk.New(simdisk.Barracuda7200(), clk), 512)
		if err != nil {
			t.Fatal(err)
		}
		db := Open(store)
		tb, err := db.CreateTable(filesSchema(), []string{"size"})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			// Keys are hashed-order to defeat sequential locality.
			k := int64(i*2654435761) % int64(n<<8)
			if err := tb.Insert(index.FileID(i), Row{"size": attr.Int(k)}); err != nil {
				t.Fatal(err)
			}
		}
		start := clk.Now()
		for i := 0; i < 100; i++ {
			k := int64((n + i) * 2654435761 % (n << 8))
			if err := tb.Insert(index.FileID(n+i), Row{"size": attr.Int(k)}); err != nil {
				t.Fatal(err)
			}
		}
		return clk.Now() - start
	}
	small := cost(2000)
	big := cost(40000)
	if big <= small {
		t.Errorf("global-index insert cost should grow with scale: small=%v big=%v", small, big)
	}
}
