// Package minisql is the centralized relational baseline Propeller is
// evaluated against (the paper uses MySQL, §V-B). It implements exactly the
// pieces the comparison exercises: heap tables on a paged store, global
// secondary B+tree indexes, batched inserts, and conjunctive WHERE
// evaluation with index-assisted scans.
//
// The property that matters for the comparison is architectural, not SQL
// dialect: every index is global (dataset-scale), so update cost grows with
// the dataset and all clients serialize on the server's lock — precisely
// the behaviour Figures 8/10 and Table III measure against Propeller's
// per-ACG indices.
package minisql

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/pagestore"
	"propeller/internal/query"
	"propeller/internal/simdisk"
)

// Errors returned by the engine.
var (
	ErrTableExists   = errors.New("minisql: table already exists")
	ErrUnknownTable  = errors.New("minisql: unknown table")
	ErrUnknownColumn = errors.New("minisql: unknown column")
	ErrRowExists     = errors.New("minisql: duplicate primary key")
	ErrRowNotFound   = errors.New("minisql: row not found")
)

// Column declares one table column.
type Column struct {
	Name string
	Kind attr.Kind
}

// Schema declares a table: a set of typed columns keyed by an integer
// primary key (the file id in the paper's file-metadata tables).
type Schema struct {
	Table   string
	Columns []Column
}

// Row maps column names to values. The primary key is carried separately.
type Row map[string]attr.Value

// DB is a single-server database with a global lock (a centralized SQL
// server's effective behaviour under a write-heavy load).
type DB struct {
	mu     sync.Mutex
	store  *pagestore.Store
	tables map[string]*Table
	// BatchSize models the client request batch (paper: 128).
	BatchSize int
	// Redo, when set, charges a durable transaction commit (redo-log append
	// + flush) per statement or per batch — the InnoDB-style cost that
	// dominates the paper's MySQL update latency (Figure 10).
	Redo *simdisk.Disk
}

// Open returns a DB on the given page store.
func Open(store *pagestore.Store) *DB {
	return &DB{store: store, tables: make(map[string]*Table), BatchSize: 128}
}

// redoRecordBytes approximates one row's redo-log footprint.
const redoRecordBytes = 256

// commitLocked charges one durable transaction commit covering rows.
func (db *DB) commitLocked(rows int) error {
	if db.Redo == nil || rows <= 0 {
		return nil
	}
	if _, err := db.Redo.AppendLog(int64(rows * redoRecordBytes)); err != nil {
		return err
	}
	_, err := db.Redo.Flush()
	return err
}

// Table is a heap of rows plus global secondary indexes.
type Table struct {
	db        *DB
	schema    Schema
	byCol     map[string]Column
	indexes   map[string]*index.BTree // column -> global B+tree
	indexCols []string                // declaration order: the planner's index preference
	rows      map[index.FileID]Row    // pk -> row (heap directory)
	// heapPages simulates row storage: rowsPerPage rows share a page, and
	// row fetches fault that page in, so full-table access has dataset-scale
	// I/O cost.
	heapPage map[index.FileID]pagestore.PageID
	lastPage pagestore.PageID
	lastUsed int
}

// rowsPerPage is deliberately low: file rows carry full paths plus InnoDB-
// style per-row overhead (row versions, clustered-index fill factor), so a
// candidate set scattered across the heap costs roughly one page fault per
// few rows — the row-fetch amplification behind the paper's MySQL search
// latencies.
const rowsPerPage = 4

// CreateTable creates a table and global B+tree indexes on indexCols.
func (db *DB) CreateTable(schema Schema, indexCols []string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[schema.Table]; ok {
		return nil, fmt.Errorf("%q: %w", schema.Table, ErrTableExists)
	}
	t := &Table{
		db:        db,
		schema:    schema,
		byCol:     make(map[string]Column, len(schema.Columns)),
		indexes:   make(map[string]*index.BTree),
		indexCols: append([]string(nil), indexCols...),
		rows:      make(map[index.FileID]Row),
		heapPage:  make(map[index.FileID]pagestore.PageID),
		lastUsed:  rowsPerPage, // force allocation on first insert
	}
	for _, c := range schema.Columns {
		t.byCol[c.Name] = c
	}
	for _, col := range indexCols {
		if _, ok := t.byCol[col]; !ok {
			return nil, fmt.Errorf("%q: %w", col, ErrUnknownColumn)
		}
		bt, err := index.NewBTree(db.store)
		if err != nil {
			return nil, fmt.Errorf("minisql: index on %q: %w", col, err)
		}
		t.indexes[col] = bt
	}
	db.tables[schema.Table] = t
	return t, nil
}

// Table returns a table by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrUnknownTable)
	}
	return t, nil
}

// Len returns the row count.
func (t *Table) Len() int {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	return len(t.rows)
}

// Insert adds one row under the global lock (one transaction).
func (t *Table) Insert(pk index.FileID, row Row) error {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	if err := t.insertLocked(pk, row); err != nil {
		return err
	}
	return t.db.commitLocked(1)
}

// InsertBatch adds rows in BatchSize chunks, holding the lock per chunk —
// the paper's batched client requests.
func (t *Table) InsertBatch(pks []index.FileID, rows []Row) error {
	if len(pks) != len(rows) {
		return errors.New("minisql: pks and rows length mismatch")
	}
	bs := t.db.BatchSize
	if bs < 1 {
		bs = 1
	}
	for off := 0; off < len(pks); off += bs {
		end := off + bs
		if end > len(pks) {
			end = len(pks)
		}
		t.db.mu.Lock()
		for i := off; i < end; i++ {
			if err := t.insertLocked(pks[i], rows[i]); err != nil {
				t.db.mu.Unlock()
				return err
			}
		}
		// One commit per batch: the batching amortizes the redo flush.
		if err := t.db.commitLocked(end - off); err != nil {
			t.db.mu.Unlock()
			return err
		}
		t.db.mu.Unlock()
	}
	return nil
}

func (t *Table) insertLocked(pk index.FileID, row Row) error {
	if _, ok := t.rows[pk]; ok {
		return fmt.Errorf("pk %d: %w", pk, ErrRowExists)
	}
	for col := range row {
		if _, ok := t.byCol[col]; !ok {
			return fmt.Errorf("%q: %w", col, ErrUnknownColumn)
		}
	}
	// Heap placement.
	if t.lastUsed >= rowsPerPage {
		pg, err := t.db.store.Allocate()
		if err != nil {
			return fmt.Errorf("minisql heap: %w", err)
		}
		t.lastPage = pg
		t.lastUsed = 0
	}
	t.heapPage[pk] = t.lastPage
	t.lastUsed++
	if err := t.db.store.Write(t.lastPage, nil); err != nil {
		return fmt.Errorf("minisql heap write: %w", err)
	}
	cp := make(Row, len(row))
	for k, v := range row {
		cp[k] = v
	}
	t.rows[pk] = cp
	// Global index maintenance — the dataset-scale cost.
	for col, bt := range t.indexes {
		if v, ok := cp[col]; ok {
			if err := bt.Insert(v, pk); err != nil {
				return fmt.Errorf("minisql index %q: %w", col, err)
			}
		}
	}
	return nil
}

// Update rewrites columns of an existing row, maintaining indexes.
func (t *Table) Update(pk index.FileID, changes Row) error {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	row, ok := t.rows[pk]
	if !ok {
		return fmt.Errorf("pk %d: %w", pk, ErrRowNotFound)
	}
	// Heap page rewrite.
	if pg, ok := t.heapPage[pk]; ok {
		if err := t.db.store.Write(pg, nil); err != nil {
			return fmt.Errorf("minisql heap update: %w", err)
		}
	}
	for col, nv := range changes {
		if _, ok := t.byCol[col]; !ok {
			return fmt.Errorf("%q: %w", col, ErrUnknownColumn)
		}
		if bt, hasIdx := t.indexes[col]; hasIdx {
			if ov, had := row[col]; had && !ov.Equal(nv) {
				if err := bt.Delete(ov, pk); err != nil && !errors.Is(err, index.ErrNotFound) {
					return err
				}
			}
			if err := bt.Insert(nv, pk); err != nil {
				return err
			}
		}
		row[col] = nv
	}
	return t.db.commitLocked(1)
}

// Get fetches a row by primary key (faults its heap page).
func (t *Table) Get(pk index.FileID) (Row, error) {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()
	return t.getLocked(pk)
}

func (t *Table) getLocked(pk index.FileID) (Row, error) {
	row, ok := t.rows[pk]
	if !ok {
		return nil, fmt.Errorf("pk %d: %w", pk, ErrRowNotFound)
	}
	if pg, ok := t.heapPage[pk]; ok {
		if _, err := t.db.store.Read(pg); err != nil {
			return nil, fmt.Errorf("minisql heap read: %w", err)
		}
	}
	cp := make(Row, len(row))
	for k, v := range row {
		cp[k] = v
	}
	return cp, nil
}

// Select evaluates a conjunctive query: the best indexed predicate drives a
// B+tree range scan; remaining predicates filter fetched rows (heap reads).
// Without a usable index it falls back to a full table scan.
func (t *Table) Select(q query.Query) ([]index.FileID, error) {
	t.db.mu.Lock()
	defer t.db.mu.Unlock()

	var candidates []index.FileID
	used := false
	// Deterministic planner: consider indexes in declaration order and
	// take the first with a usable range. (Map-iteration order here made
	// the chosen access path — and therefore the charged virtual I/O time
	// of every experiment involving this baseline — vary run to run.)
	for _, col := range t.indexCols {
		lo, hi, incLo, incHi, ok := q.Range(col)
		if !ok || (lo == nil && hi == nil) {
			continue
		}
		var err error
		candidates, err = t.indexes[col].SearchRange(lo, hi, incLo, incHi)
		if err != nil {
			return nil, err
		}
		used = true
		break
	}
	if !used {
		candidates = make([]index.FileID, 0, len(t.rows))
		for pk := range t.rows {
			candidates = append(candidates, pk)
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	}

	var out []index.FileID
	for _, pk := range candidates {
		row, err := t.getLocked(pk)
		if err != nil {
			return nil, err
		}
		if q.Matches(func(field string) (attr.Value, bool) {
			v, ok := row[field]
			return v, ok
		}) {
			out = append(out, pk)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// FileTables provisions the paper's two-table schema: one table for full
// path + inode attributes (indexed on size and mtime), one for the
// keyword → file mapping (indexed on keyword).
func FileTables(db *DB) (files, keywords *Table, err error) {
	files, err = db.CreateTable(Schema{
		Table: "files",
		Columns: []Column{
			{Name: "path", Kind: attr.KindString},
			{Name: "size", Kind: attr.KindInt},
			{Name: "mtime", Kind: attr.KindTime},
			{Name: "uid", Kind: attr.KindInt},
		},
	}, []string{"size", "mtime"})
	if err != nil {
		return nil, nil, err
	}
	keywords, err = db.CreateTable(Schema{
		Table: "keywords",
		Columns: []Column{
			{Name: "keyword", Kind: attr.KindString},
		},
	}, []string{"keyword"})
	if err != nil {
		return nil, nil, err
	}
	return files, keywords, nil
}

// SearchFiles answers the paper's global queries over the two-table schema:
// keyword predicates resolve through the keywords table; the remaining
// predicates run on the files table and intersect.
func SearchFiles(files, keywords *Table, q query.Query) ([]index.FileID, error) {
	var kwSet map[index.FileID]bool
	rest := query.Query{}
	for _, p := range q.Preds {
		if p.Field == "keyword" {
			got, err := keywords.Select(query.Query{Preds: []query.Predicate{p}})
			if err != nil {
				return nil, err
			}
			if kwSet == nil {
				kwSet = make(map[index.FileID]bool, len(got))
				for _, f := range got {
					kwSet[f] = true
				}
			} else {
				next := make(map[index.FileID]bool)
				for _, f := range got {
					if kwSet[f] {
						next[f] = true
					}
				}
				kwSet = next
			}
			continue
		}
		rest.Preds = append(rest.Preds, p)
	}
	if len(rest.Preds) == 0 && kwSet != nil {
		out := make([]index.FileID, 0, len(kwSet))
		for f := range kwSet {
			out = append(out, f)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	}
	got, err := files.Select(rest)
	if err != nil {
		return nil, err
	}
	if kwSet == nil {
		return got, nil
	}
	out := got[:0]
	for _, f := range got {
		if kwSet[f] {
			out = append(out, f)
		}
	}
	return out, nil
}
