package minisql

import (
	"errors"
	"reflect"
	"testing"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/pagestore"
	"propeller/internal/perr"
	"propeller/internal/query"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

func TestParseSelect(t *testing.T) {
	st, err := Parse("SELECT * FROM files WHERE size >= 4096 AND uid = 7")
	if err != nil {
		t.Fatal(err)
	}
	want := Stmt{
		Table: "files",
		Star:  true,
		Where: query.Query{Preds: []query.Predicate{
			{Field: "size", Op: query.OpGe, Value: attr.Int(4096)},
			{Field: "uid", Op: query.OpEq, Value: attr.Int(7)},
		}},
	}
	if !reflect.DeepEqual(st, want) {
		t.Errorf("Parse = %+v, want %+v", st, want)
	}
}

func TestParseColumnListAndStrings(t *testing.T) {
	st, err := Parse("select Path, size from files where keyword = 'o''reilly'")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Cols, []string{"path", "size"}) || st.Star {
		t.Errorf("cols = %v (star=%v), want [path size]", st.Cols, st.Star)
	}
	if st.Table != "files" {
		t.Errorf("table = %q, want files", st.Table)
	}
	if len(st.Where.Preds) != 1 || st.Where.Preds[0].Value.AsString() != "o'reilly" {
		t.Errorf("where = %+v, want one keyword='o'reilly' predicate", st.Where)
	}
}

func TestParseNoWhere(t *testing.T) {
	st, err := Parse("SELECT * FROM keywords")
	if err != nil {
		t.Fatal(err)
	}
	if st.Table != "keywords" || len(st.Where.Preds) != 0 {
		t.Errorf("Parse = %+v, want bare keywords scan", st)
	}
}

// TestParseMalformed pins the taxonomy contract: every malformed statement
// is errors.Is(perr.ErrBadQuery) — the same code the query language uses —
// so RPC surfaces and retry policies treat both front ends alike.
func TestParseMalformed(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"SELECT",
		"SELECT * files",
		"SELECT FROM files",
		"SELECT *, FROM files",
		"SELECT * FROM",
		"SELECT * FROM files WHERE",
		"SELECT * FROM files WHERE size",
		"SELECT * FROM files WHERE size !! 3",
		"SELECT * FROM files WHERE size > ",
		"SELECT * FROM files WHERE size > bare",
		"SELECT * FROM files WHERE size > 'open",
		"SELECT * FROM files WHERE size > 3 AND",
		"SELECT * FROM files WHERE size > 3 trailing",
		"SELECT * FROM select",
		"DELETE FROM files",
		"SELECT * FROM files; DROP TABLE files",
		"SELECT * FROM files WHERE size > ++--..ee",
	}
	for _, s := range bad {
		if _, err := Parse(s); !errors.Is(err, perr.ErrBadQuery) {
			t.Errorf("Parse(%q) err = %v, want ErrBadQuery", s, err)
		}
	}
}

func newTestDB(t *testing.T) *DB {
	t.Helper()
	store, err := pagestore.New(simdisk.New(simdisk.Barracuda7200(), vclock.New()), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	return Open(store)
}

func TestQueryExecutes(t *testing.T) {
	db := newTestDB(t)
	files, _, err := FileTables(db)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := files.Insert(index.FileID(i), Row{
			"path": attr.Str("/f"), "size": attr.Int(int64(i * 100)), "uid": attr.Int(int64(i % 2)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.Query("SELECT * FROM files WHERE size >= 500 AND uid = 1")
	if err != nil {
		t.Fatal(err)
	}
	want := []index.FileID{5, 7, 9}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Query = %v, want %v", got, want)
	}

	if _, err := db.Query("SELECT * FROM nosuch"); !errors.Is(err, ErrUnknownTable) {
		t.Errorf("unknown table err = %v, want ErrUnknownTable", err)
	}
	if _, err := db.Query("SELECT * FROM files WHERE nosuch = 1"); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("unknown column err = %v, want ErrUnknownColumn", err)
	}
	if _, err := db.Query("SELECT nosuch FROM files"); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("unknown projection err = %v, want ErrUnknownColumn", err)
	}
	if _, err := db.Query("SELECT broken"); !errors.Is(err, perr.ErrBadQuery) {
		t.Errorf("malformed err = %v, want ErrBadQuery", err)
	}
}

// FuzzParse hammers the SQL front end with arbitrary bytes. The contract
// under fuzz: Parse never panics, every failure is a typed
// perr.ErrBadQuery, and every success yields a structurally sane
// statement (non-empty table, a projection, in-range operators).
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"SELECT * FROM files WHERE size >= 4096 AND uid = 7",
		"select path, size from files where keyword = 'o''reilly'",
		"SELECT * FROM keywords",
		"SELECT mtime FROM files WHERE size < 1.5e3",
		"SELECT * FROM files WHERE size > 'open",
		"SELECT * FROM files WHERE size > 3 trailing",
		"DELETE FROM files",
		"",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		st, err := Parse(s)
		if err != nil {
			if !errors.Is(err, perr.ErrBadQuery) {
				t.Fatalf("Parse(%q) err = %v, not typed ErrBadQuery", s, err)
			}
			return
		}
		if st.Table == "" {
			t.Fatalf("Parse(%q) succeeded with empty table", s)
		}
		if !st.Star && len(st.Cols) == 0 {
			t.Fatalf("Parse(%q) succeeded with no projection", s)
		}
		for _, p := range st.Where.Preds {
			if p.Field == "" {
				t.Fatalf("Parse(%q) produced a predicate with no field", s)
			}
			if p.Op < query.OpEq || p.Op > query.OpGe {
				t.Fatalf("Parse(%q) produced out-of-range op %v", s, p.Op)
			}
		}
	})
}
