package pagestore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"propeller/internal/simdisk"
)

// PageSize is the fixed page size in bytes (matches common DBMS defaults).
const PageSize = 8192

// PageID identifies a page within a store.
type PageID uint64

// Common errors.
var (
	ErrPageNotFound = errors.New("pagestore: page not found")
	ErrClosed       = errors.New("pagestore: store is closed")
)

// Stats summarizes buffer-pool behaviour.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
	Allocs     int64
	PagesOnDsk int64
}

// Store is a page store with a fixed-capacity LRU buffer pool. Page contents
// live in memory (the "disk image" is a map), but any access that misses the
// pool charges simulated disk latency, and evicting a dirty page charges a
// writeback.
//
// Store is safe for concurrent use. Page data returned by Read is a copy;
// mutations go through Write.
type Store struct {
	disk     *simdisk.Disk
	capacity int // max pages resident in the pool

	mu      sync.Mutex
	closed  bool
	nextID  PageID
	backing map[PageID][]byte // the disk image
	pool    map[PageID]*frame
	lruHead *frame // most recently used
	lruTail *frame // least recently used
	stats   Stats
}

type frame struct {
	id         PageID
	data       []byte
	dirty      bool
	prev, next *frame
}

// New returns a Store whose buffer pool holds up to poolPages pages.
// poolPages must be at least 1.
func New(disk *simdisk.Disk, poolPages int) (*Store, error) {
	if poolPages < 1 {
		return nil, fmt.Errorf("pagestore: pool size %d, need >= 1", poolPages)
	}
	return &Store{
		disk:     disk,
		capacity: poolPages,
		backing:  make(map[PageID][]byte),
		pool:     make(map[PageID]*frame),
	}, nil
}

// PoolPages returns the configured buffer-pool capacity in pages.
func (s *Store) PoolPages() int { return s.capacity }

// Disk returns the underlying simulated disk.
func (s *Store) Disk() *simdisk.Disk { return s.disk }

// Allocate creates a new zeroed page and returns its id. The new page is
// resident and dirty (it will be written back on eviction or Sync).
func (s *Store) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	id := s.nextID
	s.nextID++
	s.stats.Allocs++
	s.backing[id] = nil // exists on disk, content written on eviction
	f := &frame{id: id, data: make([]byte, PageSize), dirty: true}
	if err := s.insertFrame(f); err != nil {
		return 0, err
	}
	return id, nil
}

// Read returns a copy of the page contents, faulting it in from disk if it
// is not resident.
func (s *Store) Read(id PageID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.fetch(id)
	if err != nil {
		return nil, err
	}
	out := make([]byte, PageSize)
	copy(out, f.data)
	return out, nil
}

// Write replaces the page contents (data is copied; at most PageSize bytes
// are used) and marks the page dirty.
func (s *Store) Write(id PageID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.fetch(id)
	if err != nil {
		return err
	}
	n := copy(f.data, data)
	for i := n; i < PageSize; i++ {
		f.data[i] = 0
	}
	f.dirty = true
	return nil
}

// Free releases a page. Resident copies are dropped without writeback.
func (s *Store) Free(id PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.backing[id]; !ok {
		return fmt.Errorf("free page %d: %w", id, ErrPageNotFound)
	}
	delete(s.backing, id)
	if f, ok := s.pool[id]; ok {
		s.unlink(f)
		delete(s.pool, id)
	}
	return nil
}

// Sync writes back every dirty resident page and issues a disk flush.
// Pages are written in ascending id (= disk offset) order so the head
// sweeps forward and the charged virtual time is deterministic.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, f := range s.dirtySortedLocked() {
		if err := s.writeback(f); err != nil {
			return err
		}
	}
	_, err := s.disk.Flush()
	return err
}

// dirtySortedLocked returns the dirty resident frames in ascending page id
// order. Caller holds s.mu.
func (s *Store) dirtySortedLocked() []*frame {
	out := make([]*frame, 0, len(s.pool))
	for _, f := range s.pool {
		if f.dirty {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// DropCache evicts every resident page (writing back dirty ones in
// ascending page order, as Sync does). It models
// "echo 3 > /proc/sys/vm/drop_caches" before a cold run.
func (s *Store) DropCache() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, f := range s.dirtySortedLocked() {
		if err := s.writeback(f); err != nil {
			return err
		}
	}
	for id, f := range s.pool {
		s.unlink(f)
		delete(s.pool, id)
	}
	return nil
}

// Stats returns a snapshot of buffer-pool statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.PagesOnDsk = int64(len(s.backing))
	return st
}

// ResetStats zeroes the counters.
func (s *Store) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// NumPages returns the number of allocated pages.
func (s *Store) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.backing)
}

// Close flushes dirty pages and marks the store closed.
func (s *Store) Close() error {
	if err := s.Sync(); err != nil && !errors.Is(err, ErrClosed) {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// fetch returns the resident frame for id, faulting from the backing image
// when needed. Caller holds s.mu.
func (s *Store) fetch(id PageID) (*frame, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if f, ok := s.pool[id]; ok {
		s.stats.Hits++
		s.touch(f)
		return f, nil
	}
	img, ok := s.backing[id]
	if !ok {
		return nil, fmt.Errorf("page %d: %w", id, ErrPageNotFound)
	}
	s.stats.Misses++
	if _, err := s.disk.Read(s.diskOffset(id), PageSize); err != nil {
		return nil, fmt.Errorf("fault page %d: %w", id, err)
	}
	f := &frame{id: id, data: make([]byte, PageSize)}
	copy(f.data, img)
	if err := s.insertFrame(f); err != nil {
		return nil, err
	}
	return f, nil
}

// insertFrame adds f to the pool, evicting the LRU frame if full. Caller
// holds s.mu.
func (s *Store) insertFrame(f *frame) error {
	for len(s.pool) >= s.capacity {
		victim := s.lruTail
		if victim == nil {
			return errors.New("pagestore: pool full with no evictable frame")
		}
		if victim.dirty {
			if err := s.writeback(victim); err != nil {
				return err
			}
		}
		s.unlink(victim)
		delete(s.pool, victim.id)
		s.stats.Evictions++
	}
	s.pool[f.id] = f
	s.pushFront(f)
	return nil
}

// writeback persists a dirty frame to the backing image, charging disk time.
// Caller holds s.mu.
func (s *Store) writeback(f *frame) error {
	if _, err := s.disk.Write(s.diskOffset(f.id), PageSize); err != nil {
		return fmt.Errorf("writeback page %d: %w", f.id, err)
	}
	img := make([]byte, PageSize)
	copy(img, f.data)
	s.backing[f.id] = img
	f.dirty = false
	s.stats.Writebacks++
	return nil
}

func (s *Store) diskOffset(id PageID) int64 { return int64(id) * PageSize }

// --- intrusive LRU list (caller holds s.mu) ---

func (s *Store) pushFront(f *frame) {
	f.prev = nil
	f.next = s.lruHead
	if s.lruHead != nil {
		s.lruHead.prev = f
	}
	s.lruHead = f
	if s.lruTail == nil {
		s.lruTail = f
	}
}

func (s *Store) unlink(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		s.lruHead = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		s.lruTail = f.prev
	}
	f.prev, f.next = nil, nil
}

func (s *Store) touch(f *frame) {
	if s.lruHead == f {
		return
	}
	s.unlink(f)
	s.pushFront(f)
}
