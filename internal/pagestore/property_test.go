package pagestore

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

// Property: under any interleaving of allocate/write/read/free/drop-cache
// operations, the store behaves exactly like an in-memory model map —
// evictions and writebacks never lose or corrupt data.
func TestStoreMatchesModel(t *testing.T) {
	type op struct {
		Kind byte // alloc, write, read, free, drop
		Page uint8
		Fill byte
	}
	f := func(ops []op, poolSize uint8) bool {
		pool := int(poolSize%7) + 1 // tiny pools maximize eviction churn
		store, err := New(simdisk.New(simdisk.Barracuda7200(), vclock.New()), pool)
		if err != nil {
			return false
		}
		model := map[PageID][]byte{}
		var ids []PageID
		for _, o := range ops {
			switch o.Kind % 5 {
			case 0: // allocate
				id, err := store.Allocate()
				if err != nil {
					return false
				}
				model[id] = make([]byte, PageSize)
				ids = append(ids, id)
			case 1: // write
				if len(ids) == 0 {
					continue
				}
				id := ids[int(o.Page)%len(ids)]
				data := bytes.Repeat([]byte{o.Fill}, 64)
				err := store.Write(id, data)
				if _, live := model[id]; !live {
					if err == nil {
						return false // write to freed page must fail
					}
					continue
				}
				if err != nil {
					return false
				}
				img := make([]byte, PageSize)
				copy(img, data)
				model[id] = img
			case 2: // read
				if len(ids) == 0 {
					continue
				}
				id := ids[int(o.Page)%len(ids)]
				got, err := store.Read(id)
				want, live := model[id]
				if !live {
					if err == nil {
						return false
					}
					continue
				}
				if err != nil || !bytes.Equal(got, want) {
					return false
				}
			case 3: // free
				if len(ids) == 0 {
					continue
				}
				id := ids[int(o.Page)%len(ids)]
				err := store.Free(id)
				if _, live := model[id]; live {
					if err != nil {
						return false
					}
					delete(model, id)
				} else if !errors.Is(err, ErrPageNotFound) {
					return false
				}
			case 4: // drop cache
				if err := store.DropCache(); err != nil {
					return false
				}
			}
		}
		// Final sweep: every live page matches the model.
		for id, want := range model {
			got, err := store.Read(id)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
