// Package pagestore provides a paged storage layer with an LRU buffer pool
// on top of a simulated disk.
//
// Both Propeller's per-ACG indices and the MiniSQL baseline's global indices
// are built on this layer. Buffer-pool misses charge simulated disk latency,
// which is what produces the paper's central effects: small per-ACG indices
// stay resident in memory (cheap updates, warm queries in microseconds),
// while a global index the size of the dataset thrashes the pool (Figure 8,
// Table IV's super-linear cluster speedup once each node's share of the
// index fits in RAM).
//
// The API is the classic DBMS quartet — Allocate, Read, Write, Free — over
// fixed 8 KiB pages, plus Sync (write back dirty pages), DropCache (model a
// cold start) and Stats (hit/miss/eviction counters the experiments
// report). A Store is safe for concurrent use; one mutex guards the pool,
// so independent callers (e.g. different ACG commits on one node) share the
// device but never corrupt frames.
package pagestore
