package pagestore

import (
	"bytes"
	"errors"
	"testing"

	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

func newStore(t *testing.T, pool int) *Store {
	t.Helper()
	clk := vclock.New()
	d := simdisk.New(simdisk.Barracuda7200(), clk)
	s, err := New(d, pool)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsBadPool(t *testing.T) {
	d := simdisk.New(simdisk.Barracuda7200(), vclock.New())
	if _, err := New(d, 0); err == nil {
		t.Fatal("pool size 0 should be rejected")
	}
}

func TestAllocateReadWrite(t *testing.T) {
	s := newStore(t, 16)
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != PageSize {
		t.Fatalf("page len = %d, want %d", len(got), PageSize)
	}
	payload := []byte("hello propeller")
	if err := s.Write(id, payload); err != nil {
		t.Fatal(err)
	}
	got, err = s.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(payload)], payload) {
		t.Errorf("read back %q, want %q", got[:len(payload)], payload)
	}
}

func TestWriteZeroPadsTail(t *testing.T) {
	s := newStore(t, 4)
	id, _ := s.Allocate()
	if err := s.Write(id, bytes.Repeat([]byte{0xFF}, PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(id, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read(id)
	if got[3] != 0 || got[PageSize-1] != 0 {
		t.Error("tail of rewritten page should be zeroed")
	}
}

func TestReadUnknownPage(t *testing.T) {
	s := newStore(t, 4)
	if _, err := s.Read(99); !errors.Is(err, ErrPageNotFound) {
		t.Errorf("err = %v, want ErrPageNotFound", err)
	}
}

func TestEvictionAndFaultBack(t *testing.T) {
	s := newStore(t, 2)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Write(id, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions with pool of 2 and 4 pages")
	}
	if st.Writebacks == 0 {
		t.Fatal("dirty evictions must write back")
	}
	// Page 0 was evicted; reading it faults and must return its content.
	got, err := s.Read(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Errorf("faulted page content = %d, want 1", got[0])
	}
	if s.Stats().Misses == 0 {
		t.Error("fault should count as a miss")
	}
}

func TestMissChargesDiskTime(t *testing.T) {
	clk := vclock.New()
	d := simdisk.New(simdisk.Barracuda7200(), clk)
	s, err := New(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Allocate()
	if _, err := s.Allocate(); err != nil {
		t.Fatal(err) // evicts a
	}
	before := clk.Now()
	if _, err := s.Read(a); err != nil {
		t.Fatal(err)
	}
	if clk.Now() == before {
		t.Error("buffer-pool miss should charge virtual disk time")
	}
}

func TestHitIsFree(t *testing.T) {
	clk := vclock.New()
	d := simdisk.New(simdisk.Barracuda7200(), clk)
	s, err := New(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Allocate()
	before := clk.Now()
	if _, err := s.Read(id); err != nil {
		t.Fatal(err)
	}
	if clk.Now() != before {
		t.Error("resident read should not charge disk time")
	}
}

func TestLRUOrder(t *testing.T) {
	s := newStore(t, 2)
	a, _ := s.Allocate()
	b, _ := s.Allocate()
	// Touch a so b becomes LRU.
	if _, err := s.Read(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Allocate(); err != nil { // evicts b
		t.Fatal(err)
	}
	s.ResetStats()
	if _, err := s.Read(a); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Misses != 0 {
		t.Error("a should still be resident (b was LRU)")
	}
	if _, err := s.Read(b); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Error("b should have been evicted")
	}
}

func TestFree(t *testing.T) {
	s := newStore(t, 4)
	id, _ := s.Allocate()
	if err := s.Free(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(id); !errors.Is(err, ErrPageNotFound) {
		t.Errorf("read freed page = %v, want ErrPageNotFound", err)
	}
	if err := s.Free(id); !errors.Is(err, ErrPageNotFound) {
		t.Errorf("double free = %v, want ErrPageNotFound", err)
	}
}

func TestDropCacheForcesColdReads(t *testing.T) {
	s := newStore(t, 8)
	id, _ := s.Allocate()
	if err := s.Write(id, []byte{42}); err != nil {
		t.Fatal(err)
	}
	if err := s.DropCache(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	got, err := s.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Error("content lost across DropCache")
	}
	if s.Stats().Misses != 1 {
		t.Error("post-drop read should miss")
	}
}

func TestSyncAndClose(t *testing.T) {
	s := newStore(t, 4)
	id, _ := s.Allocate()
	if err := s.Write(id, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(id); !errors.Is(err, ErrClosed) {
		t.Errorf("read after close = %v, want ErrClosed", err)
	}
	if _, err := s.Allocate(); !errors.Is(err, ErrClosed) {
		t.Errorf("alloc after close = %v, want ErrClosed", err)
	}
}

func TestNumPages(t *testing.T) {
	s := newStore(t, 4)
	for i := 0; i < 10; i++ {
		if _, err := s.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.NumPages(); got != 10 {
		t.Errorf("NumPages = %d, want 10", got)
	}
}
