package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"propeller/internal/acg"
	"propeller/internal/attr"
	"propeller/internal/client"
	"propeller/internal/index"
	"propeller/internal/proto"
	"propeller/internal/rpc"
)

var fixedNow = func() time.Time { return time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC) }

func bootCluster(t *testing.T, cfg Config) (*Cluster, *client.Client) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := c.Close(); err != nil {
			t.Errorf("cluster close: %v", err)
		}
	})
	cl, err := c.NewClient(fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	return c, cl
}

func TestSingleNodeIndexAndSearch(t *testing.T) {
	_, cl := bootCluster(t, Config{IndexNodes: 1})
	if err := cl.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	var updates []client.FileUpdate
	for i := 0; i < 100; i++ {
		updates = append(updates, client.FileUpdate{
			File:      index.FileID(i),
			Value:     attr.Int(int64(i) << 20),
			GroupHint: uint64(i/10) + 1,
		})
	}
	if err := cl.Index(context.Background(), "size", updates); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Search(context.Background(), client.Query{Index: "size", Text: "size>90m"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 9 { // files 91..99
		t.Errorf("got %d files, want 9: %v", len(res.Files), res.Files)
	}
}

func TestMultiNodeParallelSearch(t *testing.T) {
	c, cl := bootCluster(t, Config{IndexNodes: 4})
	if err := cl.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	// 40 groups spread over 4 nodes by least-loaded placement.
	for g := 0; g < 40; g++ {
		var updates []client.FileUpdate
		for i := 0; i < 25; i++ {
			f := index.FileID(g*25 + i)
			updates = append(updates, client.FileUpdate{
				File: f, Value: attr.Int(int64(f) << 10), GroupHint: uint64(g) + 1,
			})
		}
		if err := cl.Index(context.Background(), "size", updates); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := cl.ClusterStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Files != 1000 || stats.ACGs != 40 {
		t.Fatalf("stats = %+v", stats)
	}
	for _, ns := range stats.Nodes {
		if ns.ACGs != 10 {
			t.Errorf("node %s has %d groups, want 10 (balanced placement)", ns.Node, ns.ACGs)
		}
	}
	res, err := cl.Search(context.Background(), client.Query{Index: "size", Text: "size>500k"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 4 {
		t.Errorf("search hit %d nodes, want 4", res.Nodes)
	}
	want := 0
	for f := 0; f < 1000; f++ {
		if int64(f)<<10 > 500<<10 {
			want++
		}
	}
	if len(res.Files) != want {
		t.Errorf("got %d files, want %d", len(res.Files), want)
	}
	_ = c
}

func TestSearchConsistencyAfterUpdates(t *testing.T) {
	// The inline-indexing guarantee: every acknowledged update is visible
	// to the next search, with no crawl delay.
	_, cl := bootCluster(t, Config{IndexNodes: 2})
	if err := cl.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		if err := cl.Index(context.Background(), "size", []client.FileUpdate{{
			File: index.FileID(round), Value: attr.Int(int64(round+1) << 30), GroupHint: 1,
		}}); err != nil {
			t.Fatal(err)
		}
		res, err := cl.Search(context.Background(), client.Query{Index: "size", Text: "size>0"})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Files) != round+1 {
			t.Fatalf("round %d: search sees %d files, want %d (stale results!)",
				round, len(res.Files), round+1)
		}
	}
}

func TestACGFlushAndSplitMigration(t *testing.T) {
	c, cl := bootCluster(t, Config{IndexNodes: 2, SplitThreshold: 50})
	if err := cl.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}

	// Capture causality: two dense clusters of 40 files each joined by one
	// light edge, all in one group (hint 1) — 80 files > threshold 50.
	proc := acg.PID(1)
	var updates []client.FileUpdate
	for cluster := 0; cluster < 2; cluster++ {
		base := index.FileID(cluster * 40)
		for i := index.FileID(0); i < 40; i++ {
			cl.Open(proc, base+i, acg.OpenRead)
			cl.Open(proc, base+(i+1)%40, acg.OpenWrite)
			cl.EndProcess(proc)
			proc++
			updates = append(updates, client.FileUpdate{
				File: base + i, Value: attr.Int(int64(base+i) << 20), GroupHint: 1,
			})
		}
	}
	// The bridge.
	cl.Open(proc, 0, acg.OpenRead)
	cl.Open(proc, 40, acg.OpenWrite)
	cl.EndProcess(proc)

	if err := cl.Index(context.Background(), "size", updates); err != nil {
		t.Fatal(err)
	}
	if err := cl.FlushACG(context.Background()); err != nil {
		t.Fatal(err)
	}

	before, err := cl.ClusterStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if before.ACGs != 1 {
		t.Fatalf("expected a single group before split, got %d", before.ACGs)
	}

	// Heartbeat: the master orders the split; the node partitions and
	// migrates.
	if err := c.Heartbeat(context.Background()); err != nil {
		t.Fatal(err)
	}
	after, err := cl.ClusterStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if after.ACGs != 2 {
		t.Fatalf("expected 2 groups after split, got %d", after.ACGs)
	}
	// Both halves should be balanced (40/40, the bridge being the min cut).
	var sizes []int64
	for _, ns := range after.Nodes {
		if ns.Files > 0 {
			sizes = append(sizes, ns.Files)
		}
	}
	if len(sizes) != 2 || sizes[0] != 40 || sizes[1] != 40 {
		t.Errorf("post-split node loads = %v, want [40 40]", sizes)
	}

	// Search still returns every file (no postings lost in migration).
	res, err := cl.Search(context.Background(), client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 79 { // file 0 has size 0<<20 = 0, excluded by >0
		t.Errorf("post-split search = %d files, want 79", len(res.Files))
	}
}

func TestClusterOverTCP(t *testing.T) {
	_, cl := bootCluster(t, Config{IndexNodes: 2, UseTCP: true})
	if err := cl.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	var updates []client.FileUpdate
	for i := 0; i < 50; i++ {
		updates = append(updates, client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i)), GroupHint: uint64(i/10) + 1,
		})
	}
	if err := cl.Index(context.Background(), "size", updates); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Search(context.Background(), client.Query{Index: "size", Text: "size>=40"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 10 {
		t.Errorf("TCP search = %d files, want 10", len(res.Files))
	}
}

func TestVirtualNetworkCost(t *testing.T) {
	c, cl := bootCluster(t, Config{IndexNodes: 1, NetProfile: rpc.GigabitLAN()})
	if err := cl.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	before := c.Clock().Now()
	if err := cl.Index(context.Background(), "size", []client.FileUpdate{{File: 1, Value: attr.Int(1), GroupHint: 1}}); err != nil {
		t.Fatal(err)
	}
	if c.Clock().Now() == before {
		t.Error("RPC over virtual network should charge the clock")
	}
}

func TestTickCommitsAcrossCluster(t *testing.T) {
	c, cl := bootCluster(t, Config{IndexNodes: 2, CommitTimeout: 5 * time.Second})
	if err := cl.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Index(context.Background(), "size", []client.FileUpdate{{File: 1, Value: attr.Int(7), GroupHint: 1}}); err != nil {
		t.Fatal(err)
	}
	c.Clock().Advance(10 * time.Second)
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range c.Nodes() {
		st, err := n.NodeStats(context.Background(), proto.NodeStatsReq{})
		if err != nil {
			t.Fatal(err)
		}
		total += st.CachedOps
	}
	if total != 0 {
		t.Errorf("cached ops after tick = %d, want 0", total)
	}
}

func TestManyClientsConcurrently(t *testing.T) {
	c, _ := bootCluster(t, Config{IndexNodes: 2})
	adminClient, err := c.NewClient(fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	defer adminClient.Close() //nolint:errcheck
	if err := adminClient.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}

	const clients = 4
	errCh := make(chan error, clients)
	for w := 0; w < clients; w++ {
		go func(w int) {
			cl, err := c.NewClient(fixedNow)
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close() //nolint:errcheck
			var updates []client.FileUpdate
			for i := 0; i < 50; i++ {
				f := index.FileID(w*50 + i)
				updates = append(updates, client.FileUpdate{
					File: f, Value: attr.Int(int64(f)), GroupHint: uint64(w) + 1,
				})
			}
			if err := cl.Index(context.Background(), "size", updates); err != nil {
				errCh <- fmt.Errorf("client %d: %w", w, err)
				return
			}
			if _, err := cl.Search(context.Background(), client.Query{Index: "size", Text: "size>=0"}); err != nil {
				errCh <- fmt.Errorf("client %d search: %w", w, err)
				return
			}
			errCh <- nil
		}(w)
	}
	for i := 0; i < clients; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	res, err := adminClient.Search(context.Background(), client.Query{Index: "size", Text: "size>=0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 200 {
		t.Errorf("final search = %d files, want 200", len(res.Files))
	}
}
