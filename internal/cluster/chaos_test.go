package cluster

import (
	"context"
	"errors"
	"syscall"
	"testing"
	"time"

	"propeller/internal/attr"
	"propeller/internal/chaosnet"
	"propeller/internal/client"
	"propeller/internal/index"
	"propeller/internal/proto"
)

// TestHedgedLazySearchRacesSlowReplica puts real wall-clock latency on the
// client's link to one replica and proves a hedging client races past it:
// lazy rounds complete at hedge speed instead of link speed, the hedge
// counter moves, and every round still returns the full result set.
func TestHedgedLazySearchRacesSlowReplica(t *testing.T) {
	net := chaosnet.New(7)
	c, cl := bootCluster(t, Config{
		IndexNodes:        2,
		HeartbeatTimeout:  30 * time.Second,
		ReplicationFactor: 2,
		CacheLimit:        1 << 20,
		Chaos:             net,
	})
	ctx := context.Background()
	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	var updates []client.FileUpdate
	for i := 0; i < 30; i++ {
		updates = append(updates, client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: 1, // one hot group
		})
	}
	if err := cl.Index(ctx, "size", updates); err != nil {
		t.Fatal(err)
	}
	if err := c.Heartbeat(ctx); err != nil { // seed the follower
		t.Fatal(err)
	}
	// Commit everywhere so lazy reads see the full set: the primary via a
	// strict search, the follower via its tick.
	if _, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"}); err != nil {
		t.Fatal(err)
	}
	c.Clock().Advance(10 * time.Second)
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := c.Heartbeat(ctx); err != nil { // renew leases after the advance
		t.Fatal(err)
	}

	hcl, err := c.NewClientWith(client.Config{
		Now:        fixedNow,
		HedgeDelay: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hcl.Close() })

	// Slow the client's link to the group's primary. Lazy rounds rotate
	// across both replicas, so some rounds target the slow node directly —
	// exactly the rounds hedging must rescue.
	look, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: []index.FileID{0}})
	if err != nil {
		t.Fatal(err)
	}
	const linkDelay = 250 * time.Millisecond
	net.SetLink("client", string(look.Mappings[0].Node), chaosnet.Faults{Latency: linkDelay})

	const rounds = 4
	start := time.Now()
	for r := 0; r < rounds; r++ {
		res, err := hcl.Search(ctx, client.Query{
			Index: "size", Text: "size>0", Consistency: proto.ConsistencyLazy,
		})
		if err != nil {
			t.Fatalf("hedged lazy round %d: %v", r, err)
		}
		if len(res.Files) != 30 {
			t.Fatalf("hedged lazy round %d = %d files, want 30", r, len(res.Files))
		}
	}
	elapsed := time.Since(start)

	if got := hcl.CacheStats().HedgedSearches; got == 0 {
		t.Error("no search hedged; the slow-replica rounds should have fired hedges")
	}
	// Every slow-targeted round must finish at hedge speed. One un-hedged
	// round alone would cost the full link delay.
	if elapsed >= linkDelay {
		t.Errorf("%d lazy rounds took %v; hedging should beat the %v link delay", rounds, elapsed, linkDelay)
	}
}

// TestChaosPartitionHeals pins the transport property the whole fault
// model rests on: a partition fails writes with a connection-reset the
// retry taxonomy understands, and healing revives the same connections —
// no redial — so traffic resumes the moment the link returns.
func TestChaosPartitionHeals(t *testing.T) {
	net := chaosnet.New(3)
	c, cl := bootCluster(t, Config{IndexNodes: 1, CacheLimit: 1 << 20, Chaos: net})
	ctx := context.Background()
	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	up := []client.FileUpdate{{File: 1, Value: attr.Int(1), GroupHint: 1}}
	if err := cl.Index(ctx, "size", up); err != nil {
		t.Fatal(err)
	}

	// Cut the client's data path. The master link stays up, so retries
	// refetch placement and land on the same cut link until the budget
	// runs out — the surfaced error must carry the reset cause.
	net.CutLink("client", "in-00")
	if err := cl.Index(ctx, "size", up); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("index across the partition = %v, want a connection-reset error", err)
	}

	net.HealLink("client", "in-00")
	if err := cl.Index(ctx, "size", up); err != nil {
		t.Fatalf("index after heal: %v", err)
	}
	res, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 1 {
		t.Fatalf("post-heal search = %d files, want 1", len(res.Files))
	}
	if s := net.Stats(); s.Cuts == 0 {
		t.Error("no cut writes recorded; the partition never bit")
	}
	_ = c
}
