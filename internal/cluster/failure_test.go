package cluster

import (
	"context"
	"testing"
	"time"

	"propeller/internal/attr"
	"propeller/internal/client"
	"propeller/internal/index"
	"propeller/internal/indexnode"
	"propeller/internal/pagestore"
	"propeller/internal/proto"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

// TestMasterCrashRecovery exercises the paper's metadata durability story:
// the Master periodically flushes the file-to-ACG mappings to shared
// storage; after a crash a fresh Master restores them and routing resumes.
func TestMasterCrashRecovery(t *testing.T) {
	c, cl := bootCluster(t, Config{IndexNodes: 2})
	if err := cl.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	var updates []client.FileUpdate
	for i := 0; i < 60; i++ {
		updates = append(updates, client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i)), GroupHint: uint64(i/20) + 1,
		})
	}
	if err := cl.Index(context.Background(), "size", updates); err != nil {
		t.Fatal(err)
	}

	// Periodic flush to shared storage.
	img, err := c.Master().SnapshotMetadata()
	if err != nil {
		t.Fatal(err)
	}

	// "Crash": load the snapshot into the same master after wiping is not
	// possible without restarting the process; emulate by loading into the
	// running master (idempotent) and verifying lookups still resolve the
	// same groups.
	before, err := c.Master().LookupFiles(context.Background(), proto.LookupFilesReq{
		Files: []index.FileID{0, 20, 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Master().LoadMetadata(img); err != nil {
		t.Fatal(err)
	}
	after, err := c.Master().LookupFiles(context.Background(), proto.LookupFilesReq{
		Files: []index.FileID{0, 20, 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range before.Mappings {
		if before.Mappings[i].ACG != after.Mappings[i].ACG {
			t.Errorf("file %d group changed across metadata reload", before.Mappings[i].File)
		}
	}
	// Searches still work after the reload.
	res, err := cl.Search(context.Background(), client.Query{Index: "size", Text: "size>=0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 60 {
		t.Errorf("post-reload search = %d files, want 60", len(res.Files))
	}
}

// TestIndexNodeCrashRecovery kills an index node after acknowledged (but
// uncommitted) updates and proves a replacement node recovers them from the
// WAL image on shared storage — the guarantee behind the acknowledgement.
func TestIndexNodeCrashRecovery(t *testing.T) {
	clk := vclock.New()
	disk := simdisk.New(simdisk.Barracuda7200(), clk)
	store, err := pagestore.New(disk, 1024)
	if err != nil {
		t.Fatal(err)
	}
	node, err := indexnode.New(indexnode.Config{
		ID: "in-a", Store: store, Disk: disk, Clock: clk, CacheLimit: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}
	node.DeclareIndex(spec)
	for i := 0; i < 50; i++ {
		if _, err := node.Update(context.Background(), proto.UpdateReq{
			ACG: 1, IndexName: "size",
			Entries: []proto.IndexEntry{{File: index.FileID(i), Value: attr.Int(int64(i) << 20)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := node.NodeStats(context.Background(), proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.CachedOps != 50 {
		t.Fatalf("expected all 50 updates cached (uncommitted), got %d", st.CachedOps)
	}
	// The WAL image lives on shared storage at crash time.
	img, err := node.WALImage(1)
	if err != nil {
		t.Fatal(err)
	}

	// Replacement node on fresh hardware.
	clk2 := vclock.New()
	disk2 := simdisk.New(simdisk.Barracuda7200(), clk2)
	store2, err := pagestore.New(disk2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	node2, err := indexnode.New(indexnode.Config{ID: "in-b", Store: store2, Disk: disk2, Clock: clk2})
	if err != nil {
		t.Fatal(err)
	}
	node2.DeclareIndex(spec)
	recovered, err := node2.RecoverGroup(1, img)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 50 {
		t.Fatalf("recovered %d updates, want 50", recovered)
	}
	resp, err := node2.Search(context.Background(), proto.SearchReq{
		ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>16m",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 33 { // 17..49
		t.Errorf("recovered search = %d files, want 33", len(resp.Files))
	}
}

// TestRepeatedSplitsUnderLoad grows one group through several split rounds
// and checks no postings are lost.
func TestRepeatedSplitsUnderLoad(t *testing.T) {
	c, cl := bootCluster(t, Config{IndexNodes: 3, SplitThreshold: 30})
	if err := cl.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for round := 0; round < 4; round++ {
		var updates []client.FileUpdate
		proc := uint64(round*1000 + 1)
		for i := 0; i < 25; i++ {
			f := index.FileID(round*25 + i)
			updates = append(updates, client.FileUpdate{
				File: f, Value: attr.Int(int64(f) + 1), GroupHint: 1,
			})
			// Dense causal chain within the round.
			cl.Open(1, f, 2) // OpenWrite
			_ = proc
		}
		cl.EndProcess(1)
		if err := cl.Index(context.Background(), "size", updates); err != nil {
			t.Fatal(err)
		}
		if err := cl.FlushACG(context.Background()); err != nil {
			t.Fatal(err)
		}
		total += 25
		if err := c.Heartbeat(context.Background()); err != nil {
			t.Fatal(err)
		}
		res, err := cl.Search(context.Background(), client.Query{Index: "size", Text: "size>0"})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Files) != total {
			t.Fatalf("round %d: %d files found, want %d", round, len(res.Files), total)
		}
	}
	stats, err := cl.ClusterStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.ACGs < 2 {
		t.Errorf("expected splits to have happened, groups = %d", stats.ACGs)
	}
}

// TestCommitLatencyReported verifies the commit-on-search cost is surfaced
// to clients (used by the Figure 10 analysis).
func TestCommitLatencyReported(t *testing.T) {
	c, cl := bootCluster(t, Config{IndexNodes: 1, CacheLimit: 1 << 20})
	if err := cl.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	var updates []client.FileUpdate
	for i := 0; i < 2000; i++ {
		updates = append(updates, client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i * 7919)), GroupHint: 1,
		})
	}
	if err := cl.Index(context.Background(), "size", updates); err != nil {
		t.Fatal(err)
	}
	// Constrain the pool so the commit performs real I/O.
	if err := c.Nodes()[0].DropCaches(); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Search(context.Background(), client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommitLatency <= 0 {
		t.Error("search after cached updates should report commit latency")
	}
	// A second search has nothing to commit.
	res2, err := cl.Search(context.Background(), client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if res2.CommitLatency != 0 {
		t.Errorf("idle commit latency = %v, want 0", res2.CommitLatency)
	}
	_ = time.Second
}
