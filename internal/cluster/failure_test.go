package cluster

import (
	"context"
	"testing"
	"time"

	"propeller/internal/acg"
	"propeller/internal/attr"
	"propeller/internal/client"
	"propeller/internal/index"
	"propeller/internal/indexnode"
	"propeller/internal/pagestore"
	"propeller/internal/proto"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

// TestMasterCrashRecovery exercises the paper's metadata durability story:
// the Master periodically flushes the file-to-ACG mappings to shared
// storage; after a crash a fresh Master restores them and routing resumes.
func TestMasterCrashRecovery(t *testing.T) {
	c, cl := bootCluster(t, Config{IndexNodes: 2})
	if err := cl.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	var updates []client.FileUpdate
	for i := 0; i < 60; i++ {
		updates = append(updates, client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i)), GroupHint: uint64(i/20) + 1,
		})
	}
	if err := cl.Index(context.Background(), "size", updates); err != nil {
		t.Fatal(err)
	}

	// Periodic flush to shared storage.
	img, err := c.Master().SnapshotMetadata()
	if err != nil {
		t.Fatal(err)
	}

	// "Crash": load the snapshot into the same master after wiping is not
	// possible without restarting the process; emulate by loading into the
	// running master (idempotent) and verifying lookups still resolve the
	// same groups.
	before, err := c.Master().LookupFiles(context.Background(), proto.LookupFilesReq{
		Files: []index.FileID{0, 20, 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Master().LoadMetadata(img); err != nil {
		t.Fatal(err)
	}
	after, err := c.Master().LookupFiles(context.Background(), proto.LookupFilesReq{
		Files: []index.FileID{0, 20, 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range before.Mappings {
		if before.Mappings[i].ACG != after.Mappings[i].ACG {
			t.Errorf("file %d group changed across metadata reload", before.Mappings[i].File)
		}
	}
	// Searches still work after the reload.
	res, err := cl.Search(context.Background(), client.Query{Index: "size", Text: "size>=0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 60 {
		t.Errorf("post-reload search = %d files, want 60", len(res.Files))
	}
}

// TestIndexNodeCrashRecovery kills an index node after acknowledged (but
// uncommitted) updates and proves a replacement node recovers them from the
// WAL image on shared storage — the guarantee behind the acknowledgement.
func TestIndexNodeCrashRecovery(t *testing.T) {
	clk := vclock.New()
	disk := simdisk.New(simdisk.Barracuda7200(), clk)
	store, err := pagestore.New(disk, 1024)
	if err != nil {
		t.Fatal(err)
	}
	node, err := indexnode.New(indexnode.Config{
		ID: "in-a", Store: store, Disk: disk, Clock: clk, CacheLimit: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}
	node.DeclareIndex(spec)
	for i := 0; i < 50; i++ {
		if _, err := node.Update(context.Background(), proto.UpdateReq{
			ACG: 1, IndexName: "size",
			Entries: []proto.IndexEntry{{File: index.FileID(i), Value: attr.Int(int64(i) << 20)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := node.NodeStats(context.Background(), proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.CachedOps != 50 {
		t.Fatalf("expected all 50 updates cached (uncommitted), got %d", st.CachedOps)
	}
	// The WAL image lives on shared storage at crash time.
	img, err := node.WALImage(1)
	if err != nil {
		t.Fatal(err)
	}

	// Replacement node on fresh hardware.
	clk2 := vclock.New()
	disk2 := simdisk.New(simdisk.Barracuda7200(), clk2)
	store2, err := pagestore.New(disk2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	node2, err := indexnode.New(indexnode.Config{ID: "in-b", Store: store2, Disk: disk2, Clock: clk2})
	if err != nil {
		t.Fatal(err)
	}
	node2.DeclareIndex(spec)
	recovered, err := node2.RecoverGroup(1, img)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 50 {
		t.Fatalf("recovered %d updates, want 50", recovered)
	}
	resp, err := node2.Search(context.Background(), proto.SearchReq{
		ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>16m",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Files) != 33 { // 17..49
		t.Errorf("recovered search = %d files, want 33", len(resp.Files))
	}
}

// TestRepeatedSplitsUnderLoad grows one group through several split rounds
// and checks no postings are lost.
func TestRepeatedSplitsUnderLoad(t *testing.T) {
	c, cl := bootCluster(t, Config{IndexNodes: 3, SplitThreshold: 30})
	if err := cl.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for round := 0; round < 4; round++ {
		var updates []client.FileUpdate
		proc := uint64(round*1000 + 1)
		for i := 0; i < 25; i++ {
			f := index.FileID(round*25 + i)
			updates = append(updates, client.FileUpdate{
				File: f, Value: attr.Int(int64(f) + 1), GroupHint: 1,
			})
			// Dense causal chain within the round.
			cl.Open(1, f, 2) // OpenWrite
			_ = proc
		}
		cl.EndProcess(1)
		if err := cl.Index(context.Background(), "size", updates); err != nil {
			t.Fatal(err)
		}
		if err := cl.FlushACG(context.Background()); err != nil {
			t.Fatal(err)
		}
		total += 25
		if err := c.Heartbeat(context.Background()); err != nil {
			t.Fatal(err)
		}
		res, err := cl.Search(context.Background(), client.Query{Index: "size", Text: "size>0"})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Files) != total {
			t.Fatalf("round %d: %d files found, want %d", round, len(res.Files), total)
		}
	}
	stats, err := cl.ClusterStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.ACGs < 2 {
		t.Errorf("expected splits to have happened, groups = %d", stats.ACGs)
	}
}

// TestCommitLatencyReported verifies the commit-on-search cost is surfaced
// to clients (used by the Figure 10 analysis).
func TestCommitLatencyReported(t *testing.T) {
	c, cl := bootCluster(t, Config{IndexNodes: 1, CacheLimit: 1 << 20})
	if err := cl.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	var updates []client.FileUpdate
	for i := 0; i < 2000; i++ {
		updates = append(updates, client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i * 7919)), GroupHint: 1,
		})
	}
	if err := cl.Index(context.Background(), "size", updates); err != nil {
		t.Fatal(err)
	}
	// Constrain the pool so the commit performs real I/O.
	if err := c.Nodes()[0].DropCaches(); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Search(context.Background(), client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommitLatency <= 0 {
		t.Error("search after cached updates should report commit latency")
	}
	// A second search has nothing to commit.
	res2, err := cl.Search(context.Background(), client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if res2.CommitLatency != 0 {
		t.Errorf("idle commit latency = %v, want 0", res2.CommitLatency)
	}
	_ = time.Second
}

// TestNodeKillMidWorkloadZeroLostUpdates is the control plane's acceptance
// test: an Index Node dies mid-workload and every acknowledged update
// survives — the heartbeat round detects the failure, the Master re-places
// the dead node's groups, survivors recover them from shared storage
// (checkpoint + WAL replay), and the client's placement cache self-heals.
// Everything runs through public cluster/client APIs; no test-only
// recovery calls.
func TestNodeKillMidWorkloadZeroLostUpdates(t *testing.T) {
	c, cl := bootCluster(t, Config{
		IndexNodes:       3,
		HeartbeatTimeout: 30 * time.Second,
		CacheLimit:       1 << 20, // keep updates pending: recovery must replay WALs
	})
	ctx := context.Background()
	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}

	// Phase 1: 6 groups x 20 files, then a search so part of the state is
	// committed (recovery must restore committed and pending state alike).
	var updates []client.FileUpdate
	for i := 0; i < 120; i++ {
		updates = append(updates, client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: uint64(i/20) + 1,
		})
	}
	if err := cl.Index(ctx, "size", updates); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"}); err != nil {
		t.Fatal(err)
	}
	// Phase 2: more acknowledged updates that stay in the lazy caches.
	var more []client.FileUpdate
	for i := 120; i < 150; i++ {
		more = append(more, client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: uint64((i-120)/5) + 1,
		})
	}
	if err := cl.Index(ctx, "size", more); err != nil {
		t.Fatal(err)
	}
	if err := c.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}

	// The kill. Two heartbeat rounds at a live cadence follow: the first
	// keeps the survivors fresh while the victim's silence ages; during the
	// second the sweep declares it dead, re-places its groups, and the same
	// round's heartbeat replies deliver the recover orders.
	if err := c.KillNode(0); err != nil {
		t.Fatal(err)
	}
	c.Clock().Advance(20 * time.Second)
	if err := c.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	c.Clock().Advance(20 * time.Second)
	if err := c.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}

	// Every acknowledged update is searchable against the new owners; the
	// client's cached fan-out (which still names the dead node) self-heals.
	res, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 150 {
		t.Fatalf("post-failure search = %d files, want 150 (acknowledged updates lost)", len(res.Files))
	}

	// The workload continues: updates for files previously homed on the
	// dead node re-route transparently.
	for i := range updates {
		updates[i].Value = attr.Int(int64(i) + 1000)
	}
	if err := cl.Index(ctx, "size", updates); err != nil {
		t.Fatal(err)
	}
	res2, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>=1000"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Files) != 120 {
		t.Fatalf("post-failure update round = %d files, want 120", len(res2.Files))
	}

	stats, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeadNodes != 1 {
		t.Errorf("DeadNodes = %d, want 1", stats.DeadNodes)
	}
	if stats.Recoveries == 0 {
		t.Error("sweep should have recorded recoveries")
	}
	if stats.PlacementEpoch == 0 {
		t.Error("placement epoch should have advanced")
	}
	var recovered int64
	for i, n := range c.Nodes() {
		if i == 0 {
			continue
		}
		st, err := n.NodeStats(ctx, proto.NodeStatsReq{})
		if err != nil {
			t.Fatal(err)
		}
		recovered += st.GroupsRecovered
	}
	if recovered != stats.Recoveries {
		t.Errorf("survivors recovered %d groups, master ordered %d", recovered, stats.Recoveries)
	}
	if cs := cl.CacheStats(); cs.StalePlacementRetries == 0 {
		t.Error("the client should have healed its cache via stale retries")
	}
}

// TestForcedMigrationInvalidatesExactlyMovedEntries pins the cache
// invalidation granularity: migrating one group invalidates that group's
// cached mappings only — traffic to unmoved groups stays master-free.
func TestForcedMigrationInvalidatesExactlyMovedEntries(t *testing.T) {
	c, cl := bootCluster(t, Config{IndexNodes: 2, RebalanceRatio: 0, CacheLimit: 1 << 20})
	ctx := context.Background()
	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	var g1, g2 []client.FileUpdate
	for i := 0; i < 20; i++ {
		g1 = append(g1, client.FileUpdate{File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: 1})
		g2 = append(g2, client.FileUpdate{File: index.FileID(100 + i), Value: attr.Int(int64(i) + 1), GroupHint: 2})
	}
	if err := cl.Index(ctx, "size", g1); err != nil {
		t.Fatal(err)
	}
	if err := cl.Index(ctx, "size", g2); err != nil {
		t.Fatal(err)
	}
	// Resolve group 1's id and home, and move it to the other node.
	look, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: []index.FileID{0, 100}})
	if err != nil {
		t.Fatal(err)
	}
	movedACG := look.Mappings[0].ACG
	dest := 0
	if c.Nodes()[0].ID() == look.Mappings[0].Node {
		dest = 1
	}
	if err := c.ForceMigrate(ctx, movedACG, dest); err != nil {
		t.Fatal(err)
	}

	// Updates to the unmoved group first: their cached mappings must
	// survive the migration untouched (no retries, no master lookups).
	before := cl.CacheStats()
	if err := cl.Index(ctx, "size", g2); err != nil {
		t.Fatal(err)
	}
	mid := cl.CacheStats()
	if d := mid.StalePlacementRetries - before.StalePlacementRetries; d != 0 {
		t.Errorf("unmoved-group update caused %d stale retries, want 0", d)
	}
	if d := mid.MasterLookups - before.MasterLookups; d != 0 {
		t.Errorf("unmoved-group update caused %d master lookups, want 0", d)
	}
	// Updates to the moved group bounce off the tombstone once, invalidate
	// exactly those mappings, re-resolve, and land on the new owner.
	if err := cl.Index(ctx, "size", g1); err != nil {
		t.Fatal(err)
	}
	after := cl.CacheStats()
	if d := after.StalePlacementRetries - mid.StalePlacementRetries; d != 1 {
		t.Errorf("moved-group update stale retries = %d, want exactly 1", d)
	}
	if d := after.FileMisses - mid.FileMisses; d != int64(len(g1)) {
		t.Errorf("moved-group re-resolutions = %d, want %d (exactly the moved entries)", d, len(g1))
	}
	// And the data is intact on the new owner.
	res, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 40 {
		t.Fatalf("post-migration search = %d files, want 40", len(res.Files))
	}
	stats, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MigrationsOrdered != 1 {
		t.Errorf("MigrationsOrdered = %d, want 1", stats.MigrationsOrdered)
	}
}

// TestRebalanceDrainsOverloadedNode builds a skewed cluster and lets the
// heartbeat-driven rebalancer move load off the hot node.
func TestRebalanceDrainsOverloadedNode(t *testing.T) {
	c, cl := bootCluster(t, Config{IndexNodes: 2, RebalanceRatio: 1.2, CacheLimit: 1 << 20})
	ctx := context.Background()
	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	// Four equal groups land balanced (two per node); force one across to
	// create the imbalance the rebalancer must undo.
	var updates []client.FileUpdate
	for g := 0; g < 4; g++ {
		for i := 0; i < 50; i++ {
			f := index.FileID(g*50 + i)
			updates = append(updates, client.FileUpdate{File: f, Value: attr.Int(int64(f) + 1), GroupHint: uint64(g) + 1})
		}
	}
	if err := cl.Index(ctx, "size", updates); err != nil {
		t.Fatal(err)
	}
	look, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: []index.FileID{0}})
	if err != nil {
		t.Fatal(err)
	}
	heavy := 0
	if c.Nodes()[1].ID() == look.Mappings[0].Node {
		heavy = 1
	}
	// Move a group from the light node onto file 0's node: 150 vs 50.
	lightLook, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: []index.FileID{50, 100, 150}})
	if err != nil {
		t.Fatal(err)
	}
	var movedIn proto.ACGID
	for _, m := range lightLook.Mappings {
		if m.Node != c.Nodes()[heavy].ID() {
			movedIn = m.ACG
			break
		}
	}
	if movedIn == 0 {
		t.Fatal("no group found on the light node")
	}
	if err := c.ForceMigrate(ctx, movedIn, heavy); err != nil {
		t.Fatal(err)
	}

	// The next heartbeat rounds rebalance: the overloaded node is ordered
	// to migrate a group to the light one until the ratio is satisfied.
	for round := 0; round < 3; round++ {
		if err := c.Heartbeat(ctx); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MigrationsOrdered < 2 { // the forced move + at least one rebalance move
		t.Errorf("MigrationsOrdered = %d, want >= 2", stats.MigrationsOrdered)
	}
	var loads []int64
	for _, ns := range stats.Nodes {
		loads = append(loads, ns.Files)
	}
	if len(loads) != 2 || loads[0] != 100 || loads[1] != 100 {
		t.Errorf("post-rebalance loads = %v, want [100 100]", loads)
	}
	// No postings were lost in the moves.
	res, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 200 {
		t.Fatalf("post-rebalance search = %d files, want 200", len(res.Files))
	}
}

// TestMasterRestartPreservesPlacement drives splits, merges and a
// migration, snapshots the Master's metadata, restores it, and verifies
// placement (and the epoch) survive — the satellite's round-trip coverage.
func TestMasterRestartPreservesPlacement(t *testing.T) {
	c, cl := bootCluster(t, Config{IndexNodes: 2, SplitThreshold: 30, HeartbeatTimeout: 30 * time.Second, CacheLimit: 1 << 20})
	ctx := context.Background()
	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	// A hinted group big enough to split, plus two tiny groups to merge.
	proc := acg.PID(1)
	var updates []client.FileUpdate
	for i := 0; i < 80; i++ {
		cl.Open(proc, index.FileID(i), acg.OpenRead)
		cl.Open(proc, index.FileID((i+1)%80), acg.OpenWrite)
		cl.EndProcess(proc)
		proc++
		updates = append(updates, client.FileUpdate{File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: 1})
	}
	for i := 80; i < 90; i++ {
		hint := uint64(2)
		if i >= 85 {
			hint = 3
		}
		updates = append(updates, client.FileUpdate{File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: hint})
	}
	if err := cl.Index(ctx, "size", updates); err != nil {
		t.Fatal(err)
	}
	if err := cl.FlushACG(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Heartbeat(ctx); err != nil { // split of the big group
		t.Fatal(err)
	}
	if _, err := c.Compact(ctx, 8); err != nil { // merge the tiny groups
		t.Fatal(err)
	}
	// One forced migration for good measure.
	look, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: []index.FileID{0}})
	if err != nil {
		t.Fatal(err)
	}
	dest := 0
	if c.Nodes()[0].ID() == look.Mappings[0].Node {
		dest = 1
	}
	if err := c.ForceMigrate(ctx, look.Mappings[0].ACG, dest); err != nil {
		t.Fatal(err)
	}

	allFiles := make([]index.FileID, 90)
	for i := range allFiles {
		allFiles[i] = index.FileID(i)
	}
	before, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: allFiles})
	if err != nil {
		t.Fatal(err)
	}
	epochBefore := c.Master().PlacementEpoch()
	img, err := c.Master().SnapshotMetadata()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Master().LoadMetadata(img); err != nil {
		t.Fatal(err)
	}
	if got := c.Master().PlacementEpoch(); got != epochBefore {
		t.Errorf("epoch after restore = %d, want %d", got, epochBefore)
	}
	after, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: allFiles})
	if err != nil {
		t.Fatal(err)
	}
	for i := range before.Mappings {
		if before.Mappings[i].ACG != after.Mappings[i].ACG || before.Mappings[i].Node != after.Mappings[i].Node {
			t.Fatalf("file %d placement changed across restore: %+v vs %+v",
				before.Mappings[i].File, before.Mappings[i], after.Mappings[i])
		}
	}
	res, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 90 {
		t.Errorf("post-restore search = %d files, want 90", len(res.Files))
	}
}
