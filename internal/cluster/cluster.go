// Package cluster boots a complete Propeller deployment — one Master Node,
// N Index Nodes, and any number of clients — inside a single process,
// mirroring the paper's 9-node testbed (§V). Nodes talk over real net.Conn
// transports (in-memory pipes by default, TCP optionally) through the rpc
// package; disk and network latency are charged to a shared virtual clock.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"propeller/internal/chaosnet"
	"propeller/internal/client"
	"propeller/internal/indexnode"
	"propeller/internal/master"
	"propeller/internal/pagestore"
	"propeller/internal/proto"
	"propeller/internal/rpc"
	"propeller/internal/sharedstore"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

// Config sizes a cluster.
type Config struct {
	// IndexNodes is the number of Index Nodes (the paper scales 1..8).
	IndexNodes int
	// PoolPagesPerNode bounds each node's buffer pool (models per-node RAM;
	// drives the cold/warm and memory-fit effects).
	PoolPagesPerNode int
	// CommitTimeout is the lazy-cache timeout (virtual; paper: 5 s).
	CommitTimeout time.Duration
	// SplitThreshold is the group-split threshold (paper: 50,000 files).
	SplitThreshold int
	// DiskProfile models the per-node drive.
	DiskProfile simdisk.Profile
	// NetProfile models the interconnect; zero value disables network cost.
	NetProfile rpc.NetProfile
	// Clock is the shared virtual clock (one is created if nil).
	Clock *vclock.Clock
	// UseTCP runs all transports over loopback TCP instead of pipes.
	UseTCP bool
	// DisableLazyCache forces synchronous commits (ablation).
	DisableLazyCache bool
	// CacheLimit is each node's pending-entry bound before forced commit.
	CacheLimit int
	// SearchFanout bounds each node's multi-ACG search worker pool
	// (0 = the node default: GOMAXPROCS capped at 8; 1 = serial pass).
	// Virtual-time experiment drivers pin 1 so their simulated disk
	// charges — and therefore their printed tables — are byte-identical
	// across runs; deployments keep the parallel default.
	SearchFanout int
	// HeartbeatTimeout enables the failure control plane: nodes are wired
	// to a shared store (WAL mirroring + checkpoints), and the Master's
	// liveness sweep marks nodes silent past this virtual duration dead and
	// re-places their groups onto survivors, which recover them from the
	// shared store on their next heartbeat. 0 (the default) disables the
	// sweep — virtual-time experiments advance the clock far between
	// heartbeats and must keep placements pinned.
	HeartbeatTimeout time.Duration
	// RebalanceRatio enables the Master's load rebalancer (> 1): an
	// overloaded heartbeating node is ordered to migrate its hottest group
	// to the least-loaded peer. 0 disables.
	RebalanceRatio float64
	// MaxInflight bounds each node's admission queue: at most this many
	// Update/Search handlers run at once per node, the rest shed with
	// perr.ErrOverloaded (0 = unbounded, no admission control). It also
	// arms each node's RPC transport backstop at 4× this bound, so a flood
	// of frames sheds at frame-read time even when the scheduler starves
	// the application handlers (the reflex a single-core host relies on).
	MaxInflight int
	// ReplicationFactor is the k in k-way group replication: every ACG
	// keeps one primary plus up to k-1 streaming followers on distinct
	// nodes, so a primary death promotes a follower instead of replaying
	// shared storage. ≤ 1 disables replication. Requires the failure
	// control plane (HeartbeatTimeout > 0) to be useful.
	ReplicationFactor int
	// Chaos, when set, threads every connection the cluster dials through
	// the fault-injecting network: endpoints are named "master",
	// "in-00".."in-NN", and "client", so schedules can partition, slow,
	// or corrupt individual links between them.
	Chaos *chaosnet.Network
}

func (c Config) withDefaults() Config {
	if c.IndexNodes <= 0 {
		c.IndexNodes = 1
	}
	if c.PoolPagesPerNode <= 0 {
		c.PoolPagesPerNode = 32768 // 256 MiB of 8 KiB pages
	}
	if c.CommitTimeout <= 0 {
		c.CommitTimeout = 5 * time.Second
	}
	if c.SplitThreshold <= 0 {
		c.SplitThreshold = 50000
	}
	if c.DiskProfile == (simdisk.Profile{}) {
		c.DiskProfile = simdisk.Barracuda7200()
	}
	if c.Clock == nil {
		c.Clock = vclock.New()
	}
	return c
}

// Cluster is a running deployment.
type Cluster struct {
	cfg        Config
	clock      *vclock.Clock
	master     *master.Master
	masterAddr string
	nodes      []*indexnode.Node
	disks      []*simdisk.Disk
	stores     []*pagestore.Store
	nodeAddrs  []string
	shared     *sharedstore.Store // nil unless the failure control plane is on

	mu      sync.Mutex
	names   map[string]string      // addr -> chaos endpoint name
	servers map[string]*rpc.Server // addr -> server (pipe transport)
	lns     []net.Listener
	clients []*rpc.Client
	killed  []bool // per-node: excluded from heartbeat/tick rounds, server closed
	closed  bool
}

// New boots a cluster.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:     cfg,
		clock:   cfg.Clock,
		names:   make(map[string]string),
		servers: make(map[string]*rpc.Server),
	}

	if cfg.HeartbeatTimeout > 0 || cfg.RebalanceRatio > 0 {
		c.shared = sharedstore.New()
	}

	// Master.
	c.master = master.New(master.Config{
		SplitThreshold:    int64(cfg.SplitThreshold),
		Clock:             c.clock,
		HeartbeatTimeout:  cfg.HeartbeatTimeout,
		EnableFailover:    cfg.HeartbeatTimeout > 0,
		RebalanceRatio:    cfg.RebalanceRatio,
		ReplicationFactor: cfg.ReplicationFactor,
	})
	masterSrv := rpc.NewServer()
	c.master.RegisterRPC(masterSrv)
	masterAddr, err := c.expose("master", masterSrv)
	if err != nil {
		return nil, err
	}

	// Index nodes.
	c.masterAddr = masterAddr
	for i := 0; i < cfg.IndexNodes; i++ {
		node, disk, store, addr, err := c.bootNode(i)
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, node)
		c.disks = append(c.disks, disk)
		c.stores = append(c.stores, store)
		c.nodeAddrs = append(c.nodeAddrs, addr)
	}
	c.killed = make([]bool, len(c.nodes))
	return c, nil
}

// bootNode constructs one index node process: fresh disk, fresh store,
// fresh RPC server exposed under the node's name, registered with the
// Master. Used at cluster boot and again by RestartNode — a restart is
// the same construction, modelling a process that lost its RAM and local
// disk and rejoins empty.
func (c *Cluster) bootNode(i int) (*indexnode.Node, *simdisk.Disk, *pagestore.Store, string, error) {
	disk := simdisk.New(c.cfg.DiskProfile, c.clock)
	store, err := pagestore.New(disk, c.cfg.PoolPagesPerNode)
	if err != nil {
		return nil, nil, nil, "", fmt.Errorf("cluster: node %d store: %w", i, err)
	}
	name := fmt.Sprintf("in-%02d", i)
	masterConn, err := c.DialFrom(context.Background(), name, c.masterAddr)
	if err != nil {
		return nil, nil, nil, "", err
	}
	node, err := indexnode.New(indexnode.Config{
		ID:             proto.NodeID(name),
		Store:          store,
		Disk:           disk,
		Clock:          c.clock,
		CommitTimeout:  c.cfg.CommitTimeout,
		CacheLimit:     c.cfg.CacheLimit,
		SplitThreshold: c.cfg.SplitThreshold,
		Master:         masterConn,
		Dial: func(ctx context.Context, addr string) (*rpc.Client, error) {
			return c.DialFrom(ctx, name, addr)
		},
		DisableLazyCache: c.cfg.DisableLazyCache,
		SearchFanout:     c.cfg.SearchFanout,
		MaxInflight:      c.cfg.MaxInflight,
		Shared:           c.shared,
	})
	if err != nil {
		return nil, nil, nil, "", err
	}
	var srvOpts []rpc.ServerOption
	if c.cfg.MaxInflight > 0 {
		srvOpts = append(srvOpts, rpc.WithMaxConcurrent(4*c.cfg.MaxInflight))
	}
	srv := rpc.NewServer(srvOpts...)
	node.RegisterRPC(srv)
	addr, err := c.expose(name, srv)
	if err != nil {
		return nil, nil, nil, "", err
	}
	if _, err := c.master.RegisterNode(context.Background(), proto.RegisterNodeReq{
		Node: node.ID(), Addr: addr, CapacityFiles: 1 << 40,
	}); err != nil {
		return nil, nil, nil, "", err
	}
	return node, disk, store, addr, nil
}

// expose publishes an RPC server under a dialable address.
func (c *Cluster) expose(name string, srv *rpc.Server) (string, error) {
	if c.cfg.UseTCP {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", fmt.Errorf("cluster: listen %s: %w", name, err)
		}
		addr := "tcp:" + ln.Addr().String()
		c.mu.Lock()
		c.lns = append(c.lns, ln)
		c.servers[addr] = srv
		c.names[addr] = name
		c.mu.Unlock()
		go srv.Serve(ln)
		return addr, nil
	}
	addr := "pipe:" + name
	c.mu.Lock()
	c.servers[addr] = srv
	c.names[addr] = name
	c.mu.Unlock()
	return addr, nil
}

// Dial opens a client connection to a cluster address, charging virtual
// network cost when configured. Connections dialed this way belong to
// the "client" chaos endpoint.
func (c *Cluster) Dial(ctx context.Context, addr string) (*rpc.Client, error) {
	return c.DialFrom(ctx, "client", addr)
}

// DialFrom opens a connection under an explicit source endpoint name, so
// a chaos network can tell a node's outbound links from a client's.
func (c *Cluster) DialFrom(ctx context.Context, src, addr string) (*rpc.Client, error) {
	var opts []rpc.ClientOption
	if c.cfg.NetProfile != (rpc.NetProfile{}) {
		opts = append(opts, rpc.WithVirtualNet(c.clock, c.cfg.NetProfile))
	}
	if c.cfg.Chaos != nil {
		c.mu.Lock()
		dst, ok := c.names[addr]
		c.mu.Unlock()
		if !ok {
			dst = addr
		}
		opts = append(opts, rpc.WithConnWrapper(func(conn net.Conn) net.Conn {
			return c.cfg.Chaos.Wrap(src, dst, conn)
		}))
	}
	var cl *rpc.Client
	switch {
	case len(addr) > 5 && addr[:5] == "pipe:":
		c.mu.Lock()
		srv, ok := c.servers[addr]
		c.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("cluster: unknown address %q", addr)
		}
		cc, sc := rpc.Pipe()
		srv.ServeConn(sc)
		cl = rpc.NewClient(cc, opts...)
	case len(addr) > 4 && addr[:4] == "tcp:":
		var err error
		cl, err = rpc.DialContext(ctx, addr[4:], opts...)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("cluster: bad address %q", addr)
	}
	c.mu.Lock()
	c.clients = append(c.clients, cl)
	c.mu.Unlock()
	return cl, nil
}

// Clock returns the shared virtual clock.
func (c *Cluster) Clock() *vclock.Clock { return c.clock }

// Master returns the master (for direct inspection in tests).
func (c *Cluster) Master() *master.Master { return c.master }

// Nodes returns the index nodes.
func (c *Cluster) Nodes() []*indexnode.Node { return c.nodes }

// MasterAddr returns the master's dialable address.
func (c *Cluster) MasterAddr() string { return c.masterAddr }

// NewClient returns a Propeller client bound to this cluster. now anchors
// relative query predicates (nil = wall clock).
func (c *Cluster) NewClient(now func() time.Time) (*client.Client, error) {
	return c.NewClientWith(client.Config{Now: now})
}

// NewClientWith returns a client with caller-tuned knobs (tenant ID,
// overload retry policy, backoff); the Master connection and Dial are
// wired by the cluster, overriding whatever cfg carries.
func (c *Cluster) NewClientWith(cfg client.Config) (*client.Client, error) {
	masterConn, err := c.Dial(context.Background(), c.masterAddr)
	if err != nil {
		return nil, err
	}
	cfg.Master = masterConn
	cfg.Dial = c.Dial
	return client.New(cfg)
}

// Shared returns the cluster's shared store (nil unless the failure
// control plane is enabled).
func (c *Cluster) Shared() *sharedstore.Store { return c.shared }

// KillNode fails node i: it stops heartbeating and ticking, and its RPC
// server closes so in-flight and future connections fail — the closest an
// in-process harness gets to pulling the plug. Its durable state (shared
// store) remains, which is the whole point: the Master's sweep re-places
// its groups and survivors recover them. Idempotent.
func (c *Cluster) KillNode(i int) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("cluster: no node %d", i)
	}
	c.mu.Lock()
	if c.killed[i] {
		c.mu.Unlock()
		return nil
	}
	c.killed[i] = true
	srv := c.servers[c.nodeAddrs[i]]
	c.mu.Unlock()
	if srv != nil {
		return srv.Close()
	}
	return nil
}

// RestartNode brings a killed node back as a fresh, empty process under
// the same node id: new disk and store (its RAM and local state are gone —
// only the cluster's shared store survives a crash), a new RPC server
// exposed under its old name, and a re-registration with the Master. The
// restarted node rejoins heartbeat/tick rounds immediately; it repopulates
// through recover orders, replica seedings, and new traffic. No-op if the
// node was never killed.
func (c *Cluster) RestartNode(i int) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("cluster: no node %d", i)
	}
	c.mu.Lock()
	wasKilled := c.killed[i]
	c.mu.Unlock()
	if !wasKilled {
		return nil
	}
	node, disk, store, addr, err := c.bootNode(i)
	if err != nil {
		return fmt.Errorf("cluster: restart node %d: %w", i, err)
	}
	c.nodes[i] = node
	c.disks[i] = disk
	c.stores[i] = store
	c.nodeAddrs[i] = addr
	c.mu.Lock()
	c.killed[i] = false
	c.mu.Unlock()
	return nil
}

// alive reports whether node i is still part of the rounds.
func (c *Cluster) alive(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.killed[i]
}

// ForceMigrate orders one group moved to the dest node and runs a
// heartbeat round so the order is delivered and executed (migration orders
// ride heartbeat replies, like split orders).
func (c *Cluster) ForceMigrate(ctx context.Context, id proto.ACGID, dest int) error {
	if dest < 0 || dest >= len(c.nodes) {
		return fmt.Errorf("cluster: no node %d", dest)
	}
	if err := c.master.OrderMigration(id, c.nodes[dest].ID()); err != nil {
		return err
	}
	return c.Heartbeat(ctx)
}

// Tick runs the lazy-cache timeout check on every live node.
func (c *Cluster) Tick() error {
	for i, n := range c.nodes {
		if !c.alive(i) {
			continue
		}
		if err := n.Tick(); err != nil {
			return err
		}
	}
	return nil
}

// Heartbeat runs one heartbeat round: every live node reports to the
// master and executes the orders the reply carries (splits, migrations,
// recoveries, drops). With failover enabled this round is also the failure
// detector — the first surviving reporter triggers the sweep that
// re-places a dead node's groups, and later reporters in the same round
// pick up their recover orders.
func (c *Cluster) Heartbeat(ctx context.Context) error {
	for i, n := range c.nodes {
		if !c.alive(i) {
			continue
		}
		if err := n.Heartbeat(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Compact merges small groups (below minFiles) on every node and returns
// the number of merges performed (§IV's "merging small ones" maintenance
// task).
func (c *Cluster) Compact(ctx context.Context, minFiles int) (int, error) {
	total := 0
	for i, n := range c.nodes {
		if !c.alive(i) {
			continue
		}
		m, err := n.CompactGroups(ctx, minFiles)
		if err != nil {
			return total, err
		}
		total += m
	}
	return total, nil
}

// DropCaches empties every node's buffer pool and KD residency (cold runs).
func (c *Cluster) DropCaches() error {
	for _, n := range c.nodes {
		if err := n.DropCaches(); err != nil {
			return err
		}
	}
	return nil
}

// DiskStats aggregates the nodes' disk statistics.
func (c *Cluster) DiskStats() simdisk.Stats {
	var agg simdisk.Stats
	for _, d := range c.disks {
		st := d.Stats()
		agg.Reads += st.Reads
		agg.Writes += st.Writes
		agg.BytesRead += st.BytesRead
		agg.BytesWrite += st.BytesWrite
		agg.Seeks += st.Seeks
		agg.Sequential += st.Sequential
		agg.BusyTime += st.BusyTime
	}
	return agg
}

// Close tears the cluster down: clients, listeners, servers.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	clients := c.clients
	lns := c.lns
	servers := make([]*rpc.Server, 0, len(c.servers))
	for _, s := range c.servers {
		servers = append(servers, s)
	}
	c.mu.Unlock()

	var firstErr error
	for _, cl := range clients {
		if err := cl.Close(); err != nil && firstErr == nil && !errors.Is(err, net.ErrClosed) {
			firstErr = err
		}
	}
	for _, ln := range lns {
		_ = ln.Close()
	}
	for _, s := range servers {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
