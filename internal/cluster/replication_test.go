package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"propeller/internal/attr"
	"propeller/internal/client"
	"propeller/internal/index"
	"propeller/internal/perr"
	"propeller/internal/proto"
)

// nodeIndexByID maps a Master-reported node id ("in-07") back to the
// cluster's node slice index.
func nodeIndexByID(t *testing.T, c *Cluster, id proto.NodeID) int {
	t.Helper()
	for i, n := range c.Nodes() {
		if n.ID() == id {
			return i
		}
	}
	t.Fatalf("no cluster node with id %s", id)
	return -1
}

// TestReplicationSeedsFollowers proves the Master tops every group up to
// ReplicationFactor-1 streaming followers and that acknowledged updates
// reach them synchronously: after a heartbeat round seeds the replicas,
// each further acked update costs one follower append per follower.
func TestReplicationSeedsFollowers(t *testing.T) {
	c, cl := bootCluster(t, Config{
		IndexNodes:        3,
		HeartbeatTimeout:  30 * time.Second,
		ReplicationFactor: 2,
		CacheLimit:        1 << 20,
	})
	ctx := context.Background()
	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	var updates []client.FileUpdate
	for i := 0; i < 60; i++ {
		updates = append(updates, client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: uint64(i/20) + 1,
		})
	}
	if err := cl.Index(ctx, "size", updates); err != nil {
		t.Fatal(err)
	}
	// The heartbeat round delivers replicate orders to the primaries, which
	// seed their followers and report back within the round.
	if err := c.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}

	stats, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReplicatedGroups != 3 {
		t.Fatalf("ReplicatedGroups = %d, want 3 (every group seeded)", stats.ReplicatedGroups)
	}
	followerGroups := 0
	for _, ns := range stats.Nodes {
		followerGroups += ns.FollowerGroups
	}
	if followerGroups != 3 {
		t.Errorf("total FollowerGroups = %d, want 3 (one follower per group at k=2)", followerGroups)
	}

	// Every further acknowledged update streams to the follower before the
	// ack: one append per update per follower, no lag left behind.
	before := int64(0)
	for _, n := range c.Nodes() {
		st, err := n.NodeStats(ctx, proto.NodeStatsReq{})
		if err != nil {
			t.Fatal(err)
		}
		before += st.FollowerAppends
	}
	if err := cl.Index(ctx, "size", updates[:10]); err != nil {
		t.Fatal(err)
	}
	after := int64(0)
	for _, n := range c.Nodes() {
		st, err := n.NodeStats(ctx, proto.NodeStatsReq{})
		if err != nil {
			t.Fatal(err)
		}
		after += st.FollowerAppends
	}
	if after-before <= 0 {
		t.Errorf("follower appends did not grow with acked updates (before %d, after %d)", before, after)
	}
	if err := c.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	stats, err = cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, ns := range stats.Nodes {
		if ns.ReplicaLagFrames != 0 {
			t.Errorf("node %s reports %d frames of replica lag; synchronous streaming should leave none",
				ns.Node, ns.ReplicaLagFrames)
		}
	}
}

// TestReplicationPromotionOnPrimaryKill is the tentpole's failover story:
// killing a replicated group's primary mid-workload promotes the follower
// in one epoch bump — no shared-store replay — and zero acknowledged
// updates are lost across the failover.
func TestReplicationPromotionOnPrimaryKill(t *testing.T) {
	c, cl := bootCluster(t, Config{
		IndexNodes:        3,
		HeartbeatTimeout:  30 * time.Second,
		ReplicationFactor: 2,
		CacheLimit:        1 << 20, // acked updates stay pending: promotion must carry them
	})
	ctx := context.Background()
	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	var updates []client.FileUpdate
	for i := 0; i < 90; i++ {
		updates = append(updates, client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: uint64(i/30) + 1,
		})
	}
	if err := cl.Index(ctx, "size", updates); err != nil {
		t.Fatal(err)
	}
	if err := c.Heartbeat(ctx); err != nil { // seed followers
		t.Fatal(err)
	}
	// More acked updates after seeding: these exist on primaries, followers
	// and the shared mirror, but in no checkpoint.
	var more []client.FileUpdate
	for i := 90; i < 120; i++ {
		more = append(more, client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: uint64((i-90)/10) + 1,
		})
	}
	if err := cl.Index(ctx, "size", more); err != nil {
		t.Fatal(err)
	}

	// Kill the node that owns file 0's group.
	look, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: []index.FileID{0}})
	if err != nil {
		t.Fatal(err)
	}
	victim := nodeIndexByID(t, c, look.Mappings[0].Node)
	if err := c.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	c.Clock().Advance(20 * time.Second)
	if err := c.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	c.Clock().Advance(20 * time.Second)
	if err := c.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}

	// Zero acknowledged updates lost, via promotion — not replay.
	res, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 120 {
		t.Fatalf("post-failover search = %d files, want 120 (acknowledged updates lost)", len(res.Files))
	}
	stats, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Promotions == 0 {
		t.Error("no promotions recorded; failover should promote, not replay")
	}
	if stats.Recoveries != 0 {
		t.Errorf("Recoveries = %d; replicated failover must not take the replay path", stats.Recoveries)
	}
	var nodeRecovered, nodePromotions int64
	for i, n := range c.Nodes() {
		if i == victim {
			continue
		}
		st, err := n.NodeStats(ctx, proto.NodeStatsReq{})
		if err != nil {
			t.Fatal(err)
		}
		nodeRecovered += st.GroupsRecovered
		nodePromotions += st.Promotions
	}
	if nodeRecovered != 0 {
		t.Errorf("survivors replayed %d groups from shared storage; promotion should carry the state", nodeRecovered)
	}
	if nodePromotions != stats.Promotions {
		t.Errorf("nodes performed %d promotions, master ordered %d", nodePromotions, stats.Promotions)
	}

	// The workload continues against the promoted primaries, and the
	// promoted groups get re-seeded with fresh followers on survivors.
	if err := cl.Index(ctx, "size", more); err != nil {
		t.Fatal(err)
	}
	if err := c.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	stats, err = cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReplicatedGroups == 0 {
		t.Error("promoted groups should be re-seeded with new followers")
	}
}

// TestReplicationAllReplicasDeadFallsBackToReplay pins the last-resort
// path: when a group's primary and all its followers die together, the
// Master falls back to ordering shared-store replay on a survivor, and no
// acknowledged update is lost even then.
func TestReplicationAllReplicasDeadFallsBackToReplay(t *testing.T) {
	c, cl := bootCluster(t, Config{
		IndexNodes:        3,
		HeartbeatTimeout:  30 * time.Second,
		ReplicationFactor: 2,
		CacheLimit:        1 << 20,
	})
	ctx := context.Background()
	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	var updates []client.FileUpdate
	for i := 0; i < 40; i++ {
		updates = append(updates, client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: 1,
		})
	}
	if err := cl.Index(ctx, "size", updates); err != nil {
		t.Fatal(err)
	}
	if err := c.Heartbeat(ctx); err != nil { // seed the follower
		t.Fatal(err)
	}

	// Find the group's primary and follower and kill both.
	look, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: []index.FileID{0}})
	if err != nil {
		t.Fatal(err)
	}
	primary := nodeIndexByID(t, c, look.Mappings[0].Node)
	lookIdx, err := c.Master().LookupIndex(ctx, proto.LookupIndexReq{IndexName: "size"})
	if err != nil {
		t.Fatal(err)
	}
	follower := -1
	for _, rt := range lookIdx.Routes {
		if rt.ACG == look.Mappings[0].ACG && len(rt.Followers) > 0 {
			follower = nodeIndexByID(t, c, rt.Followers[0].Node)
		}
	}
	if follower < 0 {
		t.Fatal("group has no seeded follower to kill")
	}
	if err := c.KillNode(primary); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(follower); err != nil {
		t.Fatal(err)
	}
	c.Clock().Advance(20 * time.Second)
	if err := c.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	c.Clock().Advance(20 * time.Second)
	if err := c.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}

	res, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 40 {
		t.Fatalf("post-double-failure search = %d files, want 40", len(res.Files))
	}
	stats, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recoveries == 0 {
		t.Error("with every replica dead the Master must fall back to replay recovery")
	}
}

// TestReplicationLazySearchFanOut checks the read-scaling half of the
// tentpole: Lazy searches of a replicated group rotate across its replicas
// (the primary does not serve them all), while strict searches stay
// primary-only and never observe a follower.
func TestReplicationLazySearchFanOut(t *testing.T) {
	c, cl := bootCluster(t, Config{
		IndexNodes:        3,
		HeartbeatTimeout:  30 * time.Second,
		ReplicationFactor: 3,
		CacheLimit:        1 << 20,
	})
	ctx := context.Background()
	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	var updates []client.FileUpdate
	for i := 0; i < 30; i++ {
		updates = append(updates, client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: 1, // one hot group
		})
	}
	if err := cl.Index(ctx, "size", updates); err != nil {
		t.Fatal(err)
	}
	if err := c.Heartbeat(ctx); err != nil { // seed two followers
		t.Fatal(err)
	}
	// Commit everywhere so lazy reads see the full set: the primary commits
	// via a strict search, the followers via their tick.
	if _, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"}); err != nil {
		t.Fatal(err)
	}
	c.Clock().Advance(10 * time.Second)
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}

	const rounds = 30
	for r := 0; r < rounds; r++ {
		res, err := cl.Search(ctx, client.Query{
			Index: "size", Text: "size>0", Consistency: proto.ConsistencyLazy,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Files) != 30 {
			t.Fatalf("lazy search round %d = %d files, want 30", r, len(res.Files))
		}
	}
	served := make([]int64, len(c.Nodes()))
	var mx int64
	for i, n := range c.Nodes() {
		st, err := n.NodeStats(ctx, proto.NodeStatsReq{})
		if err != nil {
			t.Fatal(err)
		}
		served[i] = st.SearchesServed
		if st.SearchesServed > mx {
			mx = st.SearchesServed
		}
	}
	// With 3 replicas rotating, no single node should have served anywhere
	// near all the lazy rounds (plus the handful of setup searches).
	if mx >= rounds {
		t.Errorf("one node served %d of %d lazy rounds; fan-out did not rotate across replicas (served=%v)",
			mx, rounds, served)
	}
}

// TestPromotionPropertyRandomKill is the satellite property test: across
// seeded random kill points in an update stream, (1) zero acknowledged
// updates are lost after failover, and (2) every error the client surfaces
// stays typed — ErrStalePlacement or ErrOverloaded, never a raw transport
// error.
func TestPromotionPropertyRandomKill(t *testing.T) {
	const (
		seeds   = 5
		total   = 80
		perCall = 2
	)
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c, cl := bootCluster(t, Config{
				IndexNodes:        3,
				HeartbeatTimeout:  30 * time.Second,
				ReplicationFactor: 2,
				CacheLimit:        1 << 20,
			})
			ctx := context.Background()
			if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
				t.Fatal(err)
			}
			// Warm-up batch so groups exist and followers seed.
			var warm []client.FileUpdate
			for i := 0; i < 30; i++ {
				warm = append(warm, client.FileUpdate{
					File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: uint64(i/10) + 1,
				})
			}
			if err := cl.Index(ctx, "size", warm); err != nil {
				t.Fatal(err)
			}
			if err := c.Heartbeat(ctx); err != nil {
				t.Fatal(err)
			}

			killAt := 30 + rng.Intn(total-30) // a random point in the stream
			killed := false
			acked := make(map[index.FileID]bool)
			for _, u := range warm {
				acked[u.File] = true
			}
			next := index.FileID(30)
			for len(acked) < total {
				if !killed && len(acked) >= killAt {
					look, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: []index.FileID{index.FileID(rng.Intn(30))}})
					if err != nil {
						t.Fatal(err)
					}
					victim := nodeIndexByID(t, c, look.Mappings[0].Node)
					if err := c.KillNode(victim); err != nil {
						t.Fatal(err)
					}
					killed = true
				}
				var batch []client.FileUpdate
				for k := 0; k < perCall; k++ {
					batch = append(batch, client.FileUpdate{
						File: next, Value: attr.Int(int64(next) + 1), GroupHint: uint64(rng.Intn(3)) + 1,
					})
					next++
				}
				err := cl.Index(ctx, "size", batch)
				if err == nil {
					for _, u := range batch {
						acked[u.File] = true
					}
					continue
				}
				// Surfaced errors must stay typed — never a raw transport
				// error escaping the taxonomy.
				if !errors.Is(err, perr.ErrStalePlacement) && !errors.Is(err, perr.ErrOverloaded) {
					t.Fatalf("untyped error surfaced mid-failover: %v", err)
				}
				// Failed batch: drive the failure protocol forward (the
				// sweep needs the victim's silence to age) and retry the
				// same files. Heartbeat errors are tolerated here — until
				// the sweep declares the victim dead, the Master may still
				// order survivors to replicate toward it, and those orders
				// fail and are re-issued; correctness is asserted on the
				// client-surfaced errors and the final search.
				next -= perCall
				c.Clock().Advance(20 * time.Second)
				_ = c.Heartbeat(ctx)
			}
			// Settle the failover (if the kill landed near the stream's end,
			// promotion may still be pending).
			for r := 0; r < 3; r++ {
				c.Clock().Advance(20 * time.Second)
				_ = c.Heartbeat(ctx)
			}
			if err := c.Heartbeat(ctx); err != nil {
				t.Fatalf("heartbeat round still failing after failover settled: %v", err)
			}

			// Zero acknowledged updates lost: every acked file is found by a
			// strict search.
			res, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"})
			if err != nil {
				t.Fatal(err)
			}
			found := make(map[index.FileID]bool, len(res.Files))
			for _, f := range res.Files {
				found[f] = true
			}
			for f := range acked {
				if !found[f] {
					t.Errorf("acknowledged update for file %d lost across failover", f)
				}
			}
			stats, err := cl.ClusterStats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if killed && stats.Promotions == 0 && stats.Recoveries == 0 {
				t.Error("primary killed but neither promotion nor recovery recorded")
			}
		})
	}
}

// TestRestartNodeRejoinsEmpty covers the harness's restart half: a killed
// node restarted empty re-registers, rejoins heartbeat rounds, and becomes
// a seeding target again without disturbing the promoted placement.
func TestRestartNodeRejoinsEmpty(t *testing.T) {
	c, cl := bootCluster(t, Config{
		IndexNodes:        2,
		HeartbeatTimeout:  30 * time.Second,
		ReplicationFactor: 2,
		CacheLimit:        1 << 20,
	})
	ctx := context.Background()
	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	var updates []client.FileUpdate
	for i := 0; i < 20; i++ {
		updates = append(updates, client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: 1,
		})
	}
	if err := cl.Index(ctx, "size", updates); err != nil {
		t.Fatal(err)
	}
	if err := c.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	look, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: []index.FileID{0}})
	if err != nil {
		t.Fatal(err)
	}
	victim := nodeIndexByID(t, c, look.Mappings[0].Node)
	if err := c.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	c.Clock().Advance(20 * time.Second)
	if err := c.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	c.Clock().Advance(20 * time.Second)
	if err := c.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	// Restart the dead node: it comes back empty and becomes the follower
	// for the promoted group on its next heartbeat rounds.
	if err := c.RestartNode(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 20 {
		t.Fatalf("post-restart search = %d files, want 20", len(res.Files))
	}
	stats, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeadNodes != 0 {
		t.Errorf("DeadNodes = %d after restart, want 0", stats.DeadNodes)
	}
	if stats.ReplicatedGroups == 0 {
		t.Error("restarted node should have been re-seeded as a follower")
	}
}
