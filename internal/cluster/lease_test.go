package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"propeller/internal/attr"
	"propeller/internal/client"
	"propeller/internal/index"
	"propeller/internal/perr"
	"propeller/internal/proto"
)

// leaseCluster boots a failover-enabled cluster with one indexed group and
// returns it plus the slice index of the group's primary node.
func leaseCluster(t *testing.T) (*Cluster, *client.Client, int) {
	t.Helper()
	c, cl := bootCluster(t, Config{
		IndexNodes:       2,
		HeartbeatTimeout: 30 * time.Second,
		CacheLimit:       1 << 20,
	})
	ctx := context.Background()
	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	var updates []client.FileUpdate
	for i := 0; i < 20; i++ {
		updates = append(updates, client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: 1,
		})
	}
	if err := cl.Index(ctx, "size", updates); err != nil {
		t.Fatal(err)
	}
	// The round grants every node its initial lease.
	if err := c.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	look, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: []index.FileID{0}})
	if err != nil {
		t.Fatal(err)
	}
	return c, cl, nodeIndexByID(t, c, look.Mappings[0].Node)
}

// TestLeaseExpiryFencesPrimary proves the fencing edge the promotion
// safety argument rests on: a primary that cannot renew its lease refuses
// acks and strict searches with the typed stale-placement error at
// exactly the lease bound — before the Master's strictly-longer sweep
// could have promoted anyone over it — and a single successful heartbeat
// un-fences it.
func TestLeaseExpiryFencesPrimary(t *testing.T) {
	c, _, prim := leaseCluster(t)
	ctx := context.Background()
	node := c.Nodes()[prim]

	update := proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 0, Value: attr.Int(99)}},
	}
	if _, err := node.Update(ctx, update); err != nil {
		t.Fatalf("update under a live lease: %v", err)
	}

	// Silence for exactly the lease duration. The node's fence is
	// inclusive (>=) so it trips here; the Master's sweep is strictly
	// greater (>) so no promotion can have happened yet — the zombie
	// provably stops before any successor could start.
	c.Clock().Advance(30 * time.Second)
	if _, err := node.Update(ctx, update); !errors.Is(err, perr.ErrStalePlacement) {
		t.Fatalf("update past the lease = %v, want ErrStalePlacement", err)
	}
	strict := proto.SearchReq{IndexName: "size", ACGs: []proto.ACGID{1}, Query: "size>=1"}
	if _, err := node.Search(ctx, strict); !errors.Is(err, perr.ErrStalePlacement) {
		t.Fatalf("strict search past the lease = %v, want ErrStalePlacement", err)
	}
	// Lazy reads already tolerate staleness; fencing them would kill the
	// hedged-read escape hatch mid-partition.
	lazy := strict
	lazy.Consistency = proto.ConsistencyLazy
	if _, err := node.Search(ctx, lazy); err != nil {
		t.Fatalf("lazy search past the lease: %v", err)
	}
	st, err := node.NodeStats(ctx, proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.LeaseRejects != 2 {
		t.Errorf("LeaseRejects = %d, want 2 (one update, one strict search)", st.LeaseRejects)
	}

	// At exactly the timeout the Master must NOT have declared the node
	// dead (sweep is strictly greater): its own heartbeat renews the
	// lease and traffic resumes, no placement change, no recovery.
	if err := node.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := node.Update(ctx, update); err != nil {
		t.Fatalf("update after renewal: %v", err)
	}
	if _, err := node.Search(ctx, strict); err != nil {
		t.Fatalf("strict search after renewal: %v", err)
	}
}

// TestLeaseRenewalUnderCadence proves the steady state: a node
// heartbeating at the cluster cadence (well inside the lease) never
// fences, across enough rounds to cross several lease durations.
func TestLeaseRenewalUnderCadence(t *testing.T) {
	c, _, prim := leaseCluster(t)
	ctx := context.Background()
	node := c.Nodes()[prim]
	update := proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 1, Value: attr.Int(7)}},
	}
	for round := 0; round < 8; round++ {
		c.Clock().Advance(20 * time.Second) // cadence < 30s lease
		if err := c.Heartbeat(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := node.Update(ctx, update); err != nil {
			t.Fatalf("round %d: update fenced under live cadence: %v", round, err)
		}
	}
	st, err := node.NodeStats(ctx, proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.LeaseRejects != 0 {
		t.Errorf("LeaseRejects = %d, want 0 under a renewed lease", st.LeaseRejects)
	}
}

// TestNoLeaseWithoutFailover pins the gate: with the failure control
// plane off no lease is ever granted, and arbitrarily long silence never
// fences — virtual-time experiments advance the clock far between
// heartbeats and must keep acking.
func TestNoLeaseWithoutFailover(t *testing.T) {
	c, cl := bootCluster(t, Config{IndexNodes: 1, CacheLimit: 1 << 20})
	ctx := context.Background()
	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Index(ctx, "size", []client.FileUpdate{{File: 0, Value: attr.Int(1), GroupHint: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Heartbeat(ctx); err != nil {
		t.Fatal(err)
	}
	c.Clock().Advance(24 * time.Hour)
	if _, err := c.Nodes()[0].Update(ctx, proto.UpdateReq{
		ACG: 1, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 0, Value: attr.Int(2)}},
	}); err != nil {
		t.Fatalf("update after long silence without failover: %v", err)
	}
}
