package experiments

import (
	"fmt"
	"math/rand"

	"propeller/internal/index"
	"propeller/internal/metrics"
	"propeller/internal/pagestore"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

// runAblKDPaged evaluates the paper's stated future work (§V-E): replacing
// the serialized whole-image K-D-tree (which every cold query loads in
// full) with a paged on-disk layout that faults in only the subtrees a
// query box touches. The experiment measures the cold latency of a
// selective query under both designs across tree sizes.
func runAblKDPaged(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	sizes := []int{opts.scaled(20000), opts.scaled(60000), opts.scaled(150000)}

	res := &Result{}
	res.addf("Future-work ablation: on-disk KD layout, cold selective query (virtual ms)\n")
	tbl := &metrics.Table{Header: []string{"points", "whole-image load", "paged layout", "pages touched", "speedup"}}
	var lastSpeedup float64
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(opts.Seed))
		pts := make([]index.Point, n)
		for i := range pts {
			pts[i] = index.Point{
				Coords: []float64{rng.Float64() * 1000, rng.Float64() * 1000},
				File:   index.FileID(i),
			}
		}
		lo, hi := []float64{100, 100}, []float64{120, 120}

		// Prototype design: serialized image loaded whole.
		clkA := vclock.New()
		diskA := simdisk.New(simdisk.Barracuda7200(), clkA)
		mem, err := index.BuildKDTree(2, pts)
		if err != nil {
			return nil, err
		}
		img := mem.Serialize()
		before := clkA.Now()
		loaded, err := index.LoadKDTree(img, diskA, 1<<40)
		if err != nil {
			return nil, err
		}
		if _, err := loaded.RangeSearch(lo, hi); err != nil {
			return nil, err
		}
		whole := clkA.Now() - before

		// Future-work design: paged layout, pool-mediated.
		clkB := vclock.New()
		diskB := simdisk.New(simdisk.Barracuda7200(), clkB)
		store, err := pagestore.New(diskB, 8192)
		if err != nil {
			return nil, err
		}
		paged, err := index.BuildPagedKDTree(store, 2, pts)
		if err != nil {
			return nil, err
		}
		if err := store.DropCache(); err != nil {
			return nil, err
		}
		store.ResetStats()
		before = clkB.Now()
		if _, err := paged.RangeSearch(lo, hi); err != nil {
			return nil, err
		}
		pagedCold := clkB.Now() - before
		touched := store.Stats().Misses

		speedup := 0.0
		if pagedCold > 0 {
			speedup = float64(whole) / float64(pagedCold)
		}
		lastSpeedup = speedup
		tbl.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", whole.Seconds()*1000),
			fmt.Sprintf("%.2f", pagedCold.Seconds()*1000),
			fmt.Sprintf("%d/%d", touched, paged.NumPages()),
			fmt.Sprintf("%.1fx", speedup))
	}
	res.addf("%s\n", tbl.String())
	res.addf("the gap widens with tree size: whole-image cost is O(points), paged cost is O(pages touched)\n\n")
	res.metric("speedup_largest", lastSpeedup)
	return res, nil
}
