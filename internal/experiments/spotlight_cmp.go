package experiments

import (
	"context"
	"fmt"
	"time"

	"propeller/internal/attr"
	"propeller/internal/bruteforce"
	"propeller/internal/index"
	"propeller/internal/metrics"
	"propeller/internal/proto"
	"propeller/internal/query"
	"propeller/internal/simdisk"
	"propeller/internal/spotlight"
	"propeller/internal/vclock"
	"propeller/internal/vfs"
)

// materialize builds a mutable namespace from a Dataset (the Mac Mini
// datasets of §V-E).
func materialize(ds *vfs.Dataset) (*vfs.Namespace, error) {
	ns := vfs.NewNamespace()
	for i := 0; i < ds.Len(); i++ {
		fa := ds.Attrs(index.FileID(i))
		if _, err := ns.Create(fa.Path, fa.Size, fa.MTime, fa.UID); err != nil {
			return nil, err
		}
	}
	return ns, nil
}

// propellerOverNamespace indexes a namespace into a single-node Propeller
// and keeps it in sync with subsequent namespace changes (the inline
// indexing path).
func propellerOverNamespace(ns *vfs.Namespace, groupSize int) (*singleNode, error) {
	sn, err := newSingleNode(16384, 2048)
	if err != nil {
		return nil, err
	}
	sn.declareInodeIndexes()
	apply := func(fa vfs.FileAttrs, del bool) error {
		g := proto.ACGID(uint64(fa.ID)/uint64(groupSize) + 1)
		for name, v := range map[string]attr.Value{
			"size":  attr.Int(fa.Size),
			"mtime": attr.Time(fa.MTime),
		} {
			if _, err := sn.node.Update(context.Background(), proto.UpdateReq{
				ACG: g, IndexName: name,
				Entries: []proto.IndexEntry{{File: fa.ID, Value: v, Delete: del}},
			}); err != nil {
				return err
			}
		}
		return nil
	}
	for _, fa := range ns.Files() {
		if err := apply(fa, false); err != nil {
			return nil, err
		}
	}
	// Inline indexing: every later namespace change updates the index
	// immediately (the FUSE interception path).
	ns.Watch(func(c vfs.Change) {
		_ = apply(c.File, c.Kind == vfs.ChangeDelete)
	})
	sn.clock.Advance(6 * time.Second)
	if err := sn.node.Tick(); err != nil {
		return nil, err
	}
	return sn, nil
}

func propellerSearchNamespace(sn *singleNode, ns *vfs.Namespace, groupSize int, q string) ([]index.FileID, time.Duration, error) {
	// Namespace ids are dense (files are only created in these runs), so
	// the group count follows from the size.
	nGroups := (ns.Len()-1)/groupSize + 1
	acgs := make([]proto.ACGID, 0, nGroups)
	for g := 0; g < nGroups; g++ {
		acgs = append(acgs, proto.ACGID(g+1))
	}
	before := sn.clock.Now()
	resp, err := sn.node.Search(context.Background(), proto.SearchReq{
		ACGs: acgs, IndexName: "size", Query: q, NowUnixNano: refTime.UnixNano(),
	})
	if err != nil {
		return nil, 0, err
	}
	return resp.Files, sn.clock.Now() - before, nil
}

// runTab5 reproduces Table V: Propeller vs Spotlight vs brute force on two
// static namespaces, cold and warm, with recall.
func runTab5(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	// 13.8k and 48.7k stand in for the paper's 138k and 487k files.
	sizes := []int{opts.scaled(13800), opts.scaled(48700)}
	const groupSize = 1000
	const qs = "size>16m"

	res := &Result{}
	res.addf("Table V: static namespace, query %q (virtual time)\n", qs)
	tbl := &metrics.Table{Header: []string{"dataset", "system", "cold", "warm", "recall"}}
	for di, n := range sizes {
		ds, err := vfs.NewDataset(n, opts.Seed+int64(di), nil)
		if err != nil {
			return nil, err
		}
		ns, err := materialize(ds)
		if err != nil {
			return nil, err
		}
		q, err := query.Parse(qs, refTime)
		if err != nil {
			return nil, err
		}
		// Ground truth.
		var relevant []index.FileID
		for _, fa := range ns.Files() {
			if q.MatchesFile(fa) {
				relevant = append(relevant, fa.ID)
			}
		}
		label := fmt.Sprintf("%dK files", n/1000)

		// Brute force.
		{
			clk := vclockForLaptop()
			sc := bruteforce.New(ns, clk.clock, clk.disk)
			before := clk.clock.Now()
			got := sc.Search(q)
			cold := clk.clock.Now() - before
			var warmTotal time.Duration
			for i := 0; i < 10; i++ {
				before = clk.clock.Now()
				got = sc.Search(q)
				warmTotal += clk.clock.Now() - before
			}
			tbl.AddRow(label, "brute-force", fmtSec(cold), fmtSec(warmTotal/10),
				fmtPct(spotlight.Recall(got, relevant)))
		}
		// Spotlight.
		{
			clk := vclockForLaptop()
			eng := spotlight.New(spotlight.Config{
				Namespace: ns, Clock: clk.clock, Disk: clk.disk,
			})
			before := clk.clock.Now()
			got := eng.Query(q)
			cold := clk.clock.Now() - before
			var warmTotal time.Duration
			for i := 0; i < 10; i++ {
				before = clk.clock.Now()
				got = eng.Query(q)
				warmTotal += clk.clock.Now() - before
			}
			rec := spotlight.Recall(got, relevant)
			tbl.AddRow(label, "spotlight", fmtSec(cold), fmtSec(warmTotal/10), fmtPct(rec))
			res.metric(fmt.Sprintf("spotlight_recall_%d", di), rec)
		}
		// Propeller.
		{
			sn, err := propellerOverNamespace(ns, groupSize)
			if err != nil {
				return nil, err
			}
			if err := sn.node.DropCaches(); err != nil {
				return nil, err
			}
			got, cold, err := propellerSearchNamespace(sn, ns, groupSize, qs)
			if err != nil {
				return nil, err
			}
			var warmTotal time.Duration
			for i := 0; i < 10; i++ {
				var lat time.Duration
				got, lat, err = propellerSearchNamespace(sn, ns, groupSize, qs)
				if err != nil {
					return nil, err
				}
				warmTotal += lat
			}
			rec := spotlight.Recall(got, relevant)
			tbl.AddRow(label, "propeller", fmtSec(cold), fmtSec(warmTotal/10), fmtPct(rec))
			res.metric(fmt.Sprintf("propeller_recall_%d", di), rec)
		}
	}
	res.addf("%s\n", tbl.String())
	return res, nil
}

// laptopRig is the Mac-Mini-like test machine of §V-E: one 5400 rpm drive
// on its own virtual clock.
type laptopRig struct {
	clock *vclock.Clock
	disk  *simdisk.Disk
}

func vclockForLaptop() laptopRig {
	clk := vclock.New()
	return laptopRig{clock: clk, disk: simdisk.New(simdisk.Laptop5400(), clk)}
}

func fmtSec(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
