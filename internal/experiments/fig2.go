package experiments

import (
	"fmt"
	"math/rand"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/metrics"
	"propeller/internal/pagestore"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

// sensitivityPartition is one file-index partition of the §III sensitivity
// study: a B+tree, a hash table and a K-D-tree over the same files, all on
// the shared disk (the paper's "each partition maintains three file indices
// on HDDs"). The prototype keeps the K-D-tree serialized as a whole (§V-E),
// so every inline re-index rewrites an image proportional to the partition
// size — the linear component behind Figure 2(a).
type sensitivityPartition struct {
	bt    *index.BTree
	ht    *index.HashIndex
	kd    *index.KDTree
	disk  *simdisk.Disk
	kdOff int64
	size  int
	// kdBytesPerFile sizes the serialized KD image.
	kdBytesPerFile int64
	// preloading skips the KD-image charge during setup.
	preloading bool
}

func newSensitivityPartition(store *pagestore.Store, disk *simdisk.Disk, kdOff, kdBytesPerFile int64) (*sensitivityPartition, error) {
	bt, err := index.NewBTree(store)
	if err != nil {
		return nil, err
	}
	ht, err := index.NewHashIndex(store, 16)
	if err != nil {
		return nil, err
	}
	kd, err := index.NewKDTree(2)
	if err != nil {
		return nil, err
	}
	return &sensitivityPartition{
		bt: bt, ht: ht, kd: kd,
		disk: disk, kdOff: kdOff, kdBytesPerFile: kdBytesPerFile,
	}, nil
}

// update re-indexes one file in all three structures, rewriting the
// serialized KD image.
func (p *sensitivityPartition) update(f index.FileID, size int64) error {
	if err := p.bt.Insert(attr.Int(size), f); err != nil {
		return err
	}
	if err := p.ht.Insert(attr.Int(size), f); err != nil {
		return err
	}
	if err := p.kd.Insert(index.Point{Coords: []float64{float64(size), float64(f)}, File: f}); err != nil {
		return err
	}
	if !p.preloading {
		if _, err := p.disk.Write(p.kdOff, int64(p.size)*p.kdBytesPerFile); err != nil {
			return err
		}
	}
	return nil
}

// sensitivitySetup builds nParts partitions of groupSize files each and
// pre-loads them (setup I/O is not part of the measured update cost).
func sensitivitySetup(nParts, groupSize int, store *pagestore.Store, disk *simdisk.Disk, kdBytesPerFile int64) ([]*sensitivityPartition, error) {
	parts := make([]*sensitivityPartition, nParts)
	for i := range parts {
		p, err := newSensitivityPartition(store, disk, 1<<40+int64(i)<<30, kdBytesPerFile)
		if err != nil {
			return nil, err
		}
		p.preloading = true
		parts[i] = p
		for j := 0; j < groupSize; j++ {
			f := index.FileID(i*groupSize + j)
			if err := p.update(f, int64(j)<<12); err != nil {
				return nil, err
			}
		}
		p.size = groupSize
		p.preloading = false
	}
	return parts, nil
}

// runFig2a reproduces Figure 2(a): the same number of random updates over a
// fixed total file count, partitioned into ever larger groups. Larger
// partitions mean deeper/wider indices per update and worse buffer-pool
// residency, so execution time grows with group size.
func runFig2a(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	updates := opts.scaled(5000)
	totals := []int{opts.scaled(5000), opts.scaled(10000), opts.scaled(20000)}
	groupSizes := []int{100, 200, 300, 400, 500, 600, 700, 800}
	for i := range groupSizes {
		groupSizes[i] = opts.scaled(groupSizes[i])
	}

	res := &Result{}
	res.addf("Figure 2(a): %d random updates; execution time (virtual s) by partition size\n", updates)
	series := make([]*metrics.Series, 0, len(totals))
	for _, total := range totals {
		s := &metrics.Series{Name: fmt.Sprintf("%dK files", total/1000)}
		for _, gs := range groupSizes {
			if gs > total {
				continue
			}
			clk := vclock.New()
			disk := simdisk.New(simdisk.Barracuda7200(), clk)
			// Generous pool: the measured cost is the per-update index
			// write (KD image + seeks), not pool thrash — that is Fig 2(b).
			store, err := pagestore.New(disk, 8192)
			if err != nil {
				return nil, err
			}
			nParts := total / gs
			span := nParts * gs // round to whole partitions
			parts, err := sensitivitySetup(nParts, gs, store, disk, 1024)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(opts.Seed + int64(total) + int64(gs)))
			start := clk.Now()
			for u := 0; u < updates; u++ {
				f := index.FileID(rng.Intn(span))
				p := parts[int(f)/gs]
				if err := p.update(f, rng.Int63n(1<<30)); err != nil {
					return nil, err
				}
			}
			elapsed := clk.Now() - start
			s.Add(float64(gs), elapsed.Seconds())
		}
		series = append(series, s)
	}
	res.addf("%s\n", metrics.FormatSeries("files/partition", series...))

	// Headline: time must grow with group size for every total.
	for _, s := range series {
		if len(s.Y) >= 2 {
			res.metric("ratio_"+s.Name, s.Y[len(s.Y)-1]/s.Y[0])
		}
	}
	return res, nil
}

// runFig2b reproduces Figure 2(b): the same updates spread over a growing
// number of partitions of fixed size. Touching more partitions scatters the
// I/O across more index regions (seeks, pool thrash), so execution time
// grows steeply with the partition count.
func runFig2b(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	updates := opts.scaled(5000)
	groupSizes := []int{opts.scaled(100), opts.scaled(200), opts.scaled(400), opts.scaled(800)}
	partCounts := []int{1, 2, 4, 8, 16, 32}

	res := &Result{}
	res.addf("Figure 2(b): %d random updates; execution time (virtual s) by partitions touched\n", updates)
	series := make([]*metrics.Series, 0, len(groupSizes))
	for _, gs := range groupSizes {
		s := &metrics.Series{Name: fmt.Sprintf("%dK files", gs/1000)}
		if gs < 1000 {
			s.Name = fmt.Sprintf("%d files", gs)
		}
		for _, np := range partCounts {
			clk := vclock.New()
			disk := simdisk.New(simdisk.Barracuda7200(), clk)
			// Tight pool: one partition's indices fit, many do not — the
			// access-concentration effect.
			store, err := pagestore.New(disk, 96)
			if err != nil {
				return nil, err
			}
			parts, err := sensitivitySetup(np, gs, store, disk, 200)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(opts.Seed + int64(gs) + int64(np)))
			start := clk.Now()
			for u := 0; u < updates; u++ {
				// Updates round-robin across the touched partitions,
				// maximizing inter-partition alternation (the paper's
				// access-concentration axis).
				pi := u % np
				f := index.FileID(pi*gs + rng.Intn(gs))
				if err := parts[pi].update(f, rng.Int63n(1<<30)); err != nil {
					return nil, err
				}
			}
			s.Add(float64(np), (clk.Now() - start).Seconds())
		}
		series = append(series, s)
	}
	res.addf("%s\n", metrics.FormatSeries("partitions", series...))
	for _, s := range series {
		if len(s.Y) >= 2 {
			res.metric("spread_"+s.Name, s.Y[len(s.Y)-1]/s.Y[0])
		}
	}
	return res, nil
}
