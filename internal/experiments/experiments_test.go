package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// small returns options that keep each experiment in CI territory.
func small() Options { return Options{Scale: 0.25, Seed: 42} }

func runExp(t *testing.T, id string, opts Options) *Result {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(opts)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.Text == "" {
		t.Fatalf("%s produced no output", id)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2a", "fig2b", "tab1", "tab2", "fig7", "fig8", "tab3",
		"tab4", "fig10", "tab5", "fig11", "tab6",
		"abl-partition", "abl-lazycache", "abl-klrefine", "abl-kdpaged",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("missing experiment %q: %v", id, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestFig2aShape(t *testing.T) {
	res := runExp(t, "fig2a", small())
	// Larger partitions must cost more: last/first ratio > 1 for each total.
	for name, ratio := range res.Metrics {
		if strings.HasPrefix(name, "ratio_") && ratio <= 1.0 {
			t.Errorf("%s = %.2f, want > 1 (bigger partitions slower)", name, ratio)
		}
	}
}

func TestFig2bShape(t *testing.T) {
	res := runExp(t, "fig2b", small())
	for name, spread := range res.Metrics {
		if strings.HasPrefix(name, "spread_") && spread <= 1.0 {
			t.Errorf("%s = %.2f, want > 1 (more partitions touched is slower)", name, spread)
		}
	}
}

func TestTab1Shape(t *testing.T) {
	res := runExp(t, "tab1", small())
	if f := res.Metrics["max_overlap_fraction"]; f <= 0 || f > 0.25 {
		t.Errorf("max overlap fraction = %.3f, want small but positive", f)
	}
}

func TestTab2Shape(t *testing.T) {
	res := runExp(t, "tab2", small())
	for _, app := range []string{"linux", "thrift", "git"} {
		bal, ok := res.Metrics[app+"_balance"]
		if !ok {
			t.Fatalf("missing balance metric for %s", app)
		}
		if bal > 1.15 {
			t.Errorf("%s balance = %.3f, want near 1 (equal-scale sub-graphs)", app, bal)
		}
		cut := res.Metrics[app+"_cut_pct"]
		if cut < 0 || cut > 45 {
			t.Errorf("%s cut = %.2f%%, out of plausible range", app, cut)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	res := runExp(t, "fig7", small())
	if res.Metrics["components"] < 2 {
		t.Errorf("thrift ACG should have >= 2 disconnected components, got %v",
			res.Metrics["components"])
	}
	if res.Metrics["cross_edges"] != 0 {
		t.Errorf("component grouping must have zero inter-group edges")
	}
}

func TestFig8Shape(t *testing.T) {
	res := runExp(t, "fig8", Options{Scale: 0.1, Seed: 42})
	if s := res.Metrics["speedup_small"]; s < 5 {
		t.Errorf("propeller speedup over SQL = %.1fx, want >= 5x (paper: 30-60x)", s)
	}
	if s := res.Metrics["speedup_large"]; s < 5 {
		t.Errorf("large-dataset speedup = %.1fx, want >= 5x", s)
	}
	if d := res.Metrics["sql_degradation"]; d < 1.2 {
		t.Errorf("SQL should degrade with dataset scale, got %.2fx", d)
	}
	if f := res.Metrics["propeller_flatness"]; f > 1.5 {
		t.Errorf("propeller indexing should be scale-independent, got %.2fx", f)
	}
}

func TestTab3Shape(t *testing.T) {
	res := runExp(t, "tab3", Options{Scale: 0.3, Seed: 42})
	if s := res.Metrics["speedup_q1"]; s < 2 {
		t.Errorf("query 1 speedup = %.1fx, want >= 2x (paper: ~9x)", s)
	}
	if s := res.Metrics["speedup_q2"]; s < 2 {
		t.Errorf("query 2 speedup = %.1fx, want >= 2x (paper: ~26x)", s)
	}
}

func TestTab4Shape(t *testing.T) {
	res := runExp(t, "tab4", Options{Scale: 0.25, Seed: 42})
	for name, v := range res.Metrics {
		if strings.HasPrefix(name, "cold_scaling_") && v < 1.5 {
			t.Errorf("%s = %.2fx, cold latency should fall with node count", name, v)
		}
		if strings.HasPrefix(name, "warm_scaling_") && v < 1.0 {
			t.Errorf("%s = %.2fx, warm latency should not grow with node count", name, v)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	res := runExp(t, "fig10", Options{Scale: 0.3, Seed: 42})
	if r := res.Metrics["update_ratio"]; r < 20 {
		t.Errorf("re-index latency ratio = %.0fx, want >> 1 (paper: ~250x)", r)
	}
	if us := res.Metrics["prop_update_us"]; us > 1000 {
		t.Errorf("propeller update latency = %.1fus, should be tens of us", us)
	}
}

func TestTab5Shape(t *testing.T) {
	res := runExp(t, "tab5", Options{Scale: 0.2, Seed: 42})
	for i := 0; i < 2; i++ {
		if r := res.Metrics[keyf("propeller_recall_%d", i)]; r != 1.0 {
			t.Errorf("propeller recall = %.2f, want 1.0", r)
		}
		if r := res.Metrics[keyf("spotlight_recall_%d", i)]; r >= 1.0 || r <= 0 {
			t.Errorf("spotlight recall = %.2f, want capped below 100%%", r)
		}
	}
}

func keyf(f string, args ...any) string {
	return fmt.Sprintf(f, args...)
}

func TestFig1Shape(t *testing.T) {
	res := runExp(t, "fig1", Options{Scale: 0.2, Seed: 42})
	// Recall with background copies must be below the quiet baseline.
	quiet := res.Metrics["mean_recall_0fps"]
	busy := res.Metrics["mean_recall_10fps"]
	if quiet <= 0 {
		t.Fatal("0 FPS recall should be positive")
	}
	if busy >= quiet {
		t.Errorf("10 FPS recall (%.1f%%) should be below 0 FPS (%.1f%%)", busy, quiet)
	}
	if res.Metrics["min_recall_10fps"] > res.Metrics["min_recall_0fps"] {
		t.Error("busy minimum recall should not beat quiet minimum")
	}
}

func TestFig11Shape(t *testing.T) {
	res := runExp(t, "fig11", Options{Scale: 0.2, Seed: 42})
	for _, fps := range []int{1, 2, 5} {
		if r := res.Metrics[keyf("prop_mean_recall_%dfps", fps)]; r != 100 {
			t.Errorf("propeller recall at %d FPS = %.1f%%, want 100%%", fps, r)
		}
		spot := res.Metrics[keyf("spot_mean_recall_%dfps", fps)]
		if spot >= 100 {
			t.Errorf("spotlight recall at %d FPS = %.1f%%, should be capped", fps, spot)
		}
		pl := res.Metrics[keyf("prop_mean_latency_ms_%dfps", fps)]
		sl := res.Metrics[keyf("spot_mean_latency_ms_%dfps", fps)]
		if pl >= sl {
			t.Errorf("propeller latency (%.2fms) should beat spotlight (%.2fms) at %d FPS", pl, sl, fps)
		}
	}
}

func TestTab6Shape(t *testing.T) {
	res := runExp(t, "tab6", Options{Scale: 0.4, Seed: 42})
	if r := res.Metrics["ptfs_over_propeller"]; r < 1.2 || r > 5 {
		t.Errorf("ptfs/propeller = %.2fx, want ~2.4x", r)
	}
	if r := res.Metrics["ext4_over_propeller"]; r < 2 {
		t.Errorf("ext4/propeller = %.2fx, want native well ahead", r)
	}
}

func TestAblations(t *testing.T) {
	res := runExp(t, "abl-partition", small())
	for name, v := range res.Metrics {
		if strings.HasSuffix(name, "_random_over_ml") && v < 1 {
			t.Errorf("%s = %.2f, multilevel should beat random", name, v)
		}
	}
	res = runExp(t, "abl-lazycache", small())
	if v := res.Metrics["sync_over_lazy"]; v < 2 {
		t.Errorf("sync/lazy = %.1fx, lazy cache should pay off", v)
	}
	res = runExp(t, "abl-klrefine", small())
	for name, v := range res.Metrics {
		if strings.HasSuffix(name, "_kl_gain") && v < 1 {
			t.Errorf("%s = %.2f, KL should not hurt", name, v)
		}
	}
	res = runExp(t, "abl-kdpaged", Options{Scale: 1, Seed: 42})
	if v := res.Metrics["speedup_largest"]; v < 1.2 {
		t.Errorf("paged KD speedup = %.2fx, should beat whole-image load", v)
	}
}
