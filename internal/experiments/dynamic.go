package experiments

import (
	"fmt"
	"time"

	"propeller/internal/index"
	"propeller/internal/metrics"
	"propeller/internal/query"
	"propeller/internal/spotlight"
	"propeller/internal/vfs"
)

// dynamicRun drives one dynamic-namespace session: a background copier
// injects fps files per virtual second while a foreground process issues
// the query once per second; recall and latency are recorded per second.
type dynamicRun struct {
	fps           int
	duration      time.Duration
	withPropeller bool
	queryStr      string
	baseFiles     int
	seed          int64
}

type dynamicResult struct {
	spotRecall  *metrics.Series
	spotLatency *metrics.Series
	propRecall  *metrics.Series
	propLatency *metrics.Series
}

func (r dynamicRun) run() (*dynamicResult, error) {
	ds, err := vfs.NewDataset(r.baseFiles, r.seed, nil)
	if err != nil {
		return nil, err
	}
	ns, err := materialize(ds)
	if err != nil {
		return nil, err
	}
	rig := vclockForLaptop()
	eng := spotlight.New(spotlight.Config{
		Namespace: ns, Clock: rig.clock, Disk: rig.disk,
		CrawlInterval:    30 * time.Second,
		RebuildThreshold: 60, // bursts past this trigger a rebuild window
	})
	var sn *singleNode
	if r.withPropeller {
		sn, err = propellerOverNamespace(ns, 1000)
		if err != nil {
			return nil, err
		}
	}
	q, err := query.Parse(r.queryStr, refTime)
	if err != nil {
		return nil, err
	}

	out := &dynamicResult{
		spotRecall:  &metrics.Series{Name: fmt.Sprintf("spotlight-%dfps", r.fps)},
		spotLatency: &metrics.Series{Name: fmt.Sprintf("spotlight-%dfps", r.fps)},
	}
	if r.withPropeller {
		out.propRecall = &metrics.Series{Name: fmt.Sprintf("propeller-%dfps", r.fps)}
		out.propLatency = &metrics.Series{Name: fmt.Sprintf("propeller-%dfps", r.fps)}
	}

	copied := 0
	seconds := int(r.duration / time.Second)
	// Copied files match the query (large files under an indexed tree), so
	// staleness is visible as recall loss.
	for sec := 1; sec <= seconds; sec++ {
		now := time.Duration(sec) * time.Second
		rig.clock.AdvanceTo(now)
		if sn != nil {
			sn.clock.AdvanceTo(now)
		}
		for c := 0; c < r.fps; c++ {
			path := fmt.Sprintf("/docs/copied/f%07d", copied)
			copied++
			mt := refTime.Add(now)
			if _, err := ns.Create(path, 64<<20, mt, 1000); err != nil {
				return nil, err
			}
		}
		eng.AdvanceTo(rig.clock.Now())

		// Ground truth for recall.
		var relevant []index.FileID
		for _, fa := range ns.Files() {
			if q.MatchesFile(fa) {
				relevant = append(relevant, fa.ID)
			}
		}

		before := rig.clock.Now()
		got := eng.Query(q)
		out.spotLatency.Add(float64(sec), (rig.clock.Now()-before).Seconds()*1000)
		out.spotRecall.Add(float64(sec), 100*spotlight.Recall(got, relevant))

		if sn != nil {
			pgot, lat, err := propellerSearchNamespace(sn, ns, 1000, r.queryStr)
			if err != nil {
				return nil, err
			}
			out.propLatency.Add(float64(sec), lat.Seconds()*1000)
			out.propRecall.Add(float64(sec), 100*spotlight.Recall(pgot, relevant))
		}
	}
	return out, nil
}

// sampleSeries thins a series for printing (every step-th point).
func sampleSeries(s *metrics.Series, step int) *metrics.Series {
	out := &metrics.Series{Name: s.Name}
	for i := 0; i < len(s.X); i += step {
		out.Add(s.X[i], s.Y[i])
	}
	return out
}

func meanY(s *metrics.Series) float64 {
	if len(s.Y) == 0 {
		return 0
	}
	var t float64
	for _, y := range s.Y {
		t += y
	}
	return t / float64(len(s.Y))
}

func minY(s *metrics.Series) float64 {
	if len(s.Y) == 0 {
		return 0
	}
	m := s.Y[0]
	for _, y := range s.Y {
		if y < m {
			m = y
		}
	}
	return m
}

// runFig1 reproduces Figure 1: Spotlight's recall over a 10-minute window
// under background file copies at 0/2/5/10 files per second. Recall is
// capped by type-plugin coverage, degrades with copy intensity, and drops
// to zero during index rebuilds.
func runFig1(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{}
	duration := time.Duration(opts.scaled(300)) * time.Second
	res.addf("Figure 1: Spotlight query recall (%%) under background copies (%s window)\n", duration)

	var recallSeries []*metrics.Series
	for _, fps := range []int{0, 2, 5, 10} {
		dr, err := dynamicRun{
			fps: fps, duration: duration, queryStr: "size>16m",
			baseFiles: opts.scaled(4000), seed: opts.Seed,
		}.run()
		if err != nil {
			return nil, err
		}
		recallSeries = append(recallSeries, sampleSeries(dr.spotRecall, 15))
		res.metric(fmt.Sprintf("mean_recall_%dfps", fps), meanY(dr.spotRecall))
		res.metric(fmt.Sprintf("min_recall_%dfps", fps), minY(dr.spotRecall))
	}
	res.addf("%s\n", metrics.FormatSeries("t(s)", recallSeries...))
	return res, nil
}

// runFig11 reproduces Figure 11: recall and query latency on a dynamic
// namespace for Spotlight vs Propeller at 1/2/5 files per second.
// Propeller's recall is pinned at 100% (inline indexing + commit-on-search)
// and its latency sits well below the crawler's.
func runFig11(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{}
	duration := time.Duration(opts.scaled(300)) * time.Second
	res.addf("Figure 11: dynamic namespace, query %q (%s window)\n", "size>16m", duration)

	var recallSeries, latencySeries []*metrics.Series
	for _, fps := range []int{1, 2, 5} {
		// The base namespace approximates the paper's 89k-file Ubuntu
		// snapshot import: big enough that the crawler's per-file scan
		// cost exceeds Propeller's commit-on-search cost.
		dr, err := dynamicRun{
			fps: fps, duration: duration, withPropeller: true, queryStr: "size>16m",
			baseFiles: opts.scaled(45000), seed: opts.Seed,
		}.run()
		if err != nil {
			return nil, err
		}
		recallSeries = append(recallSeries, sampleSeries(dr.spotRecall, 30), sampleSeries(dr.propRecall, 30))
		latencySeries = append(latencySeries, sampleSeries(dr.spotLatency, 30), sampleSeries(dr.propLatency, 30))
		res.metric(fmt.Sprintf("spot_mean_recall_%dfps", fps), meanY(dr.spotRecall))
		res.metric(fmt.Sprintf("prop_mean_recall_%dfps", fps), meanY(dr.propRecall))
		res.metric(fmt.Sprintf("spot_mean_latency_ms_%dfps", fps), meanY(dr.spotLatency))
		res.metric(fmt.Sprintf("prop_mean_latency_ms_%dfps", fps), meanY(dr.propLatency))
	}
	res.addf("(a) recall %%:\n%s\n", metrics.FormatSeries("t(s)", recallSeries...))
	res.addf("(b) query latency (ms):\n%s\n", metrics.FormatSeries("t(s)", latencySeries...))
	return res, nil
}
