// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each experiment is registered under the id used in
// DESIGN.md and EXPERIMENTS.md (fig1, fig2a, tab3, ...), runs on simulated
// substrates with deterministic virtual time, and reports the same
// rows/series the paper does.
//
// Experiments default to a laptop-friendly scale (the paper's datasets
// reach 100 million files); Options.Scale multiplies dataset sizes, so the
// shape — who wins, by what factor, where crossovers fall — is what is
// reproduced, not absolute wall-clock numbers. See EXPERIMENTS.md for the
// paper-vs-measured record.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Options tunes an experiment run.
type Options struct {
	// Scale multiplies the default dataset sizes (1.0 = the harness
	// default documented per experiment, not the paper's full size).
	Scale float64
	// Seed drives every randomized phase.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	return o
}

func (o Options) scaled(n int) int {
	v := int(float64(n) * o.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Result carries an experiment's rendered output and headline metrics
// (consumed by the root benchmarks via testing.B.ReportMetric).
type Result struct {
	// Text is the formatted tables/series, ready to print.
	Text string
	// Metrics holds headline numbers keyed by short names.
	Metrics map[string]float64
}

func (r *Result) addf(format string, args ...any) {
	r.Text += fmt.Sprintf(format, args...)
}

func (r *Result) metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// Experiment is one registered table/figure driver.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Result, error)
}

// All returns every registered experiment sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID resolves one experiment.
func ByID(id string) (Experiment, error) {
	e, ok := registry[strings.ToLower(id)]
	if !ok {
		ids := make([]string, 0, len(registry))
		for k := range registry {
			ids = append(ids, k)
		}
		sort.Strings(ids)
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (have: %s)", id, strings.Join(ids, ", "))
	}
	return e, nil
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// registerAll wires the experiment table. Kept in one place (rather than
// scattered init functions) per the style guide's init() guidance.
func init() { //nolint:gochecknoinits // single deterministic registry setup
	register(Experiment{ID: "fig1", Title: "Spotlight recall under background I/O", Run: runFig1})
	register(Experiment{ID: "fig2a", Title: "Impact of partition size on inline indexing", Run: runFig2a})
	register(Experiment{ID: "fig2b", Title: "Impact of inter-partition accesses", Run: runFig2b})
	register(Experiment{ID: "tab1", Title: "Common files across application executions", Run: runTab1})
	register(Experiment{ID: "tab2", Title: "ACG partitioning quality (METIS-style)", Run: runTab2})
	register(Experiment{ID: "fig7", Title: "ACG of compiling Thrift (components)", Run: runFig7})
	register(Experiment{ID: "fig8", Title: "File-indexing scalability vs MiniSQL", Run: runFig8})
	register(Experiment{ID: "tab3", Title: "Global file search vs MiniSQL", Run: runTab3})
	register(Experiment{ID: "tab4", Title: "Cluster search latency scaling (and Fig 9)", Run: runTab4})
	register(Experiment{ID: "fig10", Title: "Mixed workload re-indexing latency", Run: runFig10})
	register(Experiment{ID: "tab5", Title: "Static namespace vs Spotlight and brute force", Run: runTab5})
	register(Experiment{ID: "fig11", Title: "Dynamic namespace recall and latency", Run: runFig11})
	register(Experiment{ID: "tab6", Title: "PostMark raw I/O comparison", Run: runTab6})
	register(Experiment{ID: "abl-partition", Title: "Ablation: ACG vs naive partitioners", Run: runAblPartition})
	register(Experiment{ID: "abl-lazycache", Title: "Ablation: lazy index cache on/off", Run: runAblLazyCache})
	register(Experiment{ID: "abl-klrefine", Title: "Ablation: KL refinement on/off", Run: runAblKLRefine})
	register(Experiment{ID: "abl-kdpaged", Title: "Future work: paged on-disk KD-tree vs whole-image load", Run: runAblKDPaged})
}
