package experiments

import (
	"fmt"
	"sort"
	"time"

	"propeller/internal/acg"
	"propeller/internal/index"
	"propeller/internal/metrics"
	"propeller/internal/partition"
	"propeller/internal/workload"
)

// runTab1 reproduces Table I: the file sets accessed by four application
// executions and their pairwise overlaps — the paper's evidence that file
// accesses are application-isolated.
func runTab1(opts Options) (*Result, error) {
	apps := workload.TableIApps()
	sets, err := workload.AccessSets(apps)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(apps))
	for _, a := range apps {
		names = append(names, a.Name)
	}
	sort.Strings(names)

	res := &Result{}
	res.addf("Table I: common files accessed by executions of different programs\n")
	tbl := &metrics.Table{Header: append([]string{"program", "accessed"}, names...)}
	maxFrac := 0.0
	for _, a := range names {
		row := []string{a, fmt.Sprintf("%d", len(sets[a]))}
		for _, b := range names {
			if a == b {
				row = append(row, "N/A")
				continue
			}
			ov := workload.Overlap(sets[a], sets[b])
			frac := float64(ov) / float64(len(sets[a]))
			if frac > maxFrac {
				maxFrac = frac
			}
			row = append(row, fmt.Sprintf("%d (%.2f%%)", ov, 100*frac))
		}
		tbl.AddRow(row...)
	}
	res.addf("%s\n", tbl.String())
	res.metric("max_overlap_fraction", maxFrac)
	return res, nil
}

// runTab2 reproduces Table II: ACG statistics of three compile traces and
// the quality of the multilevel 2-way partition of each trace's largest
// connected component (vertex counts, partition time, balance, cut %).
func runTab2(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	profiles := []workload.CompileProfile{
		workload.LinuxProfile(0.15 * opts.Scale),
		workload.ThriftProfile(),
		workload.GitProfile(),
	}

	res := &Result{}
	res.addf("Table II: file access-causality partitioning (multilevel 2-way, METIS-style)\n")
	tbl := &metrics.Table{Header: []string{
		"application", "vertices", "edges", "total weight",
		"partition time", "partition sizes", "cut weight (%)",
	}}
	for _, p := range profiles {
		reg := workload.NewPathIDs()
		builder := acg.NewBuilder()
		p.Trace(builder, reg)
		g := builder.Graph()

		comps := g.ConnectedComponents()
		largest := comps[0]
		sub := g.Subgraph(largest)
		adj := make(map[uint64]map[uint64]int64, len(largest))
		for src, m := range sub.Undirected() {
			row := make(map[uint64]int64, len(m))
			for dst, w := range m {
				row[uint64(dst)] = w
			}
			adj[uint64(src)] = row
		}

		start := time.Now()
		bis, err := partition.Bisect(partition.Graph{Adj: adj}, partition.Options{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)

		total := g.TotalWeight()
		// Cut measured against the full undirected weight, as the paper
		// defines the percentage.
		cutPct := 0.0
		if total > 0 {
			cutPct = 100 * float64(bis.CutWeight) / float64(total)
		}
		tbl.AddRow(
			p.Name,
			fmt.Sprintf("%d", g.NumVertices()),
			fmt.Sprintf("%d", g.NumEdges()),
			fmt.Sprintf("%d", total),
			elapsed.Round(time.Microsecond).String(),
			fmt.Sprintf("%d/%d", len(bis.A), len(bis.B)),
			fmt.Sprintf("%d (%.2f%%)", bis.CutWeight, cutPct),
		)
		res.metric(p.Name+"_cut_pct", cutPct)
		res.metric(p.Name+"_balance", bis.Balance)
	}
	res.addf("%s\n", tbl.String())
	return res, nil
}

// runFig7 reproduces Figure 7: the ACG captured from compiling Thrift has
// disconnected components (one per independent build target), so grouping
// by component yields zero inter-group accesses.
func runFig7(opts Options) (*Result, error) {
	reg := workload.NewPathIDs()
	builder := acg.NewBuilder()
	p := workload.ThriftProfile()
	p.Trace(builder, reg)
	g := builder.Graph()
	comps := g.ConnectedComponents()

	res := &Result{}
	res.addf("Figure 7: access-causality graph of compiling Thrift\n")
	res.addf("vertices=%d edges=%d total-weight=%d\n", g.NumVertices(), g.NumEdges(), g.TotalWeight())
	res.addf("connected components: %d\n", len(comps))
	for i, c := range comps {
		res.addf("  component %d: %d files (e.g. %s)\n", i, len(c), reg.Path(c[0]))
	}
	// Inter-component accesses are zero by construction of components;
	// verify explicitly.
	compOf := make(map[index.FileID]int)
	for i, c := range comps {
		for _, f := range c {
			compOf[f] = i
		}
	}
	cross := 0
	for _, src := range g.Vertices() {
		for _, dst := range g.Vertices() {
			if w := g.EdgeWeight(src, dst); w > 0 && compOf[src] != compOf[dst] {
				cross++
			}
		}
	}
	res.addf("inter-component edges: %d (grouping by component => zero inter-group accesses)\n\n", cross)
	res.metric("components", float64(len(comps)))
	res.metric("cross_edges", float64(cross))
	return res, nil
}
