package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/indexnode"
	"propeller/internal/metrics"
	"propeller/internal/minisql"
	"propeller/internal/pagestore"
	"propeller/internal/proto"
	"propeller/internal/query"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
	"propeller/internal/vfs"
)

// refTime anchors relative mtime predicates; datasets generate mtimes
// before this epoch.
var refTime = time.Unix(1388534400, 0) // 2014-01-01

// singleNode is the paper's single-node mode: Master and one Index Node on
// the same machine, addressed directly (no network) for a fair comparison
// with the local MiniSQL server.
type singleNode struct {
	clock *vclock.Clock
	disk  *simdisk.Disk
	store *pagestore.Store
	node  *indexnode.Node
}

func newSingleNode(poolPages int, cacheLimit int) (*singleNode, error) {
	clk := vclock.New()
	disk := simdisk.New(simdisk.Barracuda7200(), clk)
	store, err := pagestore.New(disk, poolPages)
	if err != nil {
		return nil, err
	}
	node, err := indexnode.New(indexnode.Config{
		ID: "in-single", Store: store, Disk: disk, Clock: clk,
		CommitTimeout: 5 * time.Second, CacheLimit: cacheLimit,
		// Serial search pass keeps simulated disk charges deterministic.
		SearchFanout: 1,
	})
	if err != nil {
		return nil, err
	}
	return &singleNode{clock: clk, disk: disk, store: store, node: node}, nil
}

// declareInodeIndexes registers the paper's inode-attribute indices.
func (s *singleNode) declareInodeIndexes() {
	s.node.DeclareIndex(proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"})
	s.node.DeclareIndex(proto.IndexSpec{Name: "mtime", Type: proto.IndexBTree, Field: "mtime"})
	s.node.DeclareIndex(proto.IndexSpec{Name: "keyword", Type: proto.IndexHash, Field: "keyword"})
}

// loadDataset indexes every file of ds into per-group indices (group =
// ACG of groupSize causally-clustered files).
func (s *singleNode) loadDataset(ds *vfs.Dataset, groupSize, batch int) error {
	n := ds.Len()
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		byGroup := map[proto.ACGID][3][]proto.IndexEntry{}
		for i := lo; i < hi; i++ {
			fa := ds.Attrs(index.FileID(i))
			g := proto.ACGID(ds.GroupOf(fa.ID, groupSize) + 1)
			e := byGroup[g]
			e[0] = append(e[0], proto.IndexEntry{File: fa.ID, Value: attr.Int(fa.Size)})
			e[1] = append(e[1], proto.IndexEntry{File: fa.ID, Value: attr.Time(fa.MTime)})
			e[2] = append(e[2], proto.IndexEntry{File: fa.ID, Value: attr.Str(fa.Keyword)})
			byGroup[g] = e
		}
		// Deterministic group order: page allocation order decides the disk
		// layout, which decides seek costs.
		gids := make([]proto.ACGID, 0, len(byGroup))
		for g := range byGroup {
			gids = append(gids, g)
		}
		sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
		for _, g := range gids {
			entries := byGroup[g]
			for i, name := range []string{"size", "mtime", "keyword"} {
				if _, err := s.node.Update(context.Background(), proto.UpdateReq{ACG: g, IndexName: name, Entries: entries[i]}); err != nil {
					return err
				}
			}
		}
	}
	// Settle the caches so searches measure query cost, not backlog.
	s.clock.Advance(6 * time.Second)
	return s.node.Tick()
}

// search runs a query across all groups of the dataset on this node.
func (s *singleNode) search(ds *vfs.Dataset, groupSize int, indexName, q string) (int, time.Duration, error) {
	acgs := make([]proto.ACGID, 0, ds.NumGroups(groupSize))
	for g := 0; g < ds.NumGroups(groupSize); g++ {
		acgs = append(acgs, proto.ACGID(g+1))
	}
	start := s.clock.Now()
	resp, err := s.node.Search(context.Background(), proto.SearchReq{
		ACGs: acgs, IndexName: indexName, Query: q, NowUnixNano: refTime.UnixNano(),
	})
	if err != nil {
		return 0, 0, err
	}
	return len(resp.Files), s.clock.Now() - start, nil
}

// sqlBaseline bundles the MiniSQL stand-in with its clock.
type sqlBaseline struct {
	clock    *vclock.Clock
	store    *pagestore.Store
	db       *minisql.DB
	files    *minisql.Table
	keywords *minisql.Table
}

func newSQLBaseline(poolPages int) (*sqlBaseline, error) {
	clk := vclock.New()
	disk := simdisk.New(simdisk.Barracuda7200(), clk)
	store, err := pagestore.New(disk, poolPages)
	if err != nil {
		return nil, err
	}
	db := minisql.Open(store)
	db.Redo = simdisk.New(simdisk.Barracuda7200(), clk)
	files, keywords, err := minisql.FileTables(db)
	if err != nil {
		return nil, err
	}
	return &sqlBaseline{clock: clk, store: store, db: db, files: files, keywords: keywords}, nil
}

func (b *sqlBaseline) loadDataset(ds *vfs.Dataset) error {
	n := ds.Len()
	const chunk = 4096
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		pks := make([]index.FileID, 0, hi-lo)
		rows := make([]minisql.Row, 0, hi-lo)
		kwRows := make([]minisql.Row, 0, hi-lo)
		for i := lo; i < hi; i++ {
			fa := ds.Attrs(index.FileID(i))
			pks = append(pks, fa.ID)
			rows = append(rows, minisql.Row{
				"path":  attr.Str(fa.Path),
				"size":  attr.Int(fa.Size),
				"mtime": attr.Time(fa.MTime),
				"uid":   attr.Int(fa.UID),
			})
			kwRows = append(kwRows, minisql.Row{"keyword": attr.Str(fa.Keyword)})
		}
		if err := b.files.InsertBatch(pks, rows); err != nil {
			return err
		}
		if err := b.keywords.InsertBatch(pks, kwRows); err != nil {
			return err
		}
	}
	return nil
}

// runFig8 reproduces Figure 8: 1..16 concurrent writers each issuing a
// fixed number of update requests against (a) Propeller, where each writer
// stays inside one 1000-file group, and (b) MiniSQL, where every update
// hits the global dataset-scale index. Propeller's time is flat across
// dataset scale; the SQL baseline degrades as the dataset doubles.
func runFig8(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	// Harness default: 100k and 200k files stand in for the paper's 50M and
	// 100M (the shape is scale-relative; see EXPERIMENTS.md).
	dsSizes := []int{opts.scaled(100000), opts.scaled(200000)}
	updatesPerProc := opts.scaled(2000)
	writers := []int{1, 2, 4, 8, 16}
	const groupSize = 1000

	res := &Result{}
	res.addf("Figure 8: file-indexing time (virtual s), %d updates per process\n", updatesPerProc)
	var series []*metrics.Series
	for _, dsSize := range dsSizes {
		ds, err := vfs.NewDataset(dsSize, opts.Seed, nil)
		if err != nil {
			return nil, err
		}
		prop := &metrics.Series{Name: fmt.Sprintf("propeller-%dK", dsSize/1000)}
		sql := &metrics.Series{Name: fmt.Sprintf("minisql-%dK", dsSize/1000)}

		// One baseline per dataset, reused across writer counts (the
		// expensive part is populating the global table).
		sn, err := newSingleNode(4096, 512)
		if err != nil {
			return nil, err
		}
		sn.declareInodeIndexes()
		// Tight pool relative to the dataset-scale index: random update
		// keys thrash it, and the thrash grows with the dataset.
		sb, err := newSQLBaseline(32)
		if err != nil {
			return nil, err
		}
		if err := sb.loadDataset(ds); err != nil {
			return nil, err
		}

		for _, nw := range writers {
			// Propeller: writers interleave round-robin, each confined to
			// its own group.
			start := sn.clock.Now()
			for u := 0; u < updatesPerProc; u++ {
				for w := 0; w < nw; w++ {
					f := index.FileID((w*groupSize + u%groupSize) % dsSize)
					g := proto.ACGID(w + 1)
					if _, err := sn.node.Update(context.Background(), proto.UpdateReq{
						ACG: g, IndexName: "size",
						Entries: []proto.IndexEntry{{File: f, Value: attr.Int(int64(u) << 10)}},
					}); err != nil {
						return nil, err
					}
				}
			}
			prop.Add(float64(nw), (sn.clock.Now() - start).Seconds())

			// MiniSQL: the same files, but every update maintains the
			// global dataset-scale index under the server lock.
			start = sb.clock.Now()
			for u := 0; u < updatesPerProc; u++ {
				for w := 0; w < nw; w++ {
					f := index.FileID((w*groupSize + u%groupSize) % dsSize)
					if err := sb.files.Update(f, minisql.Row{"size": attr.Int(int64(u+w) << 10)}); err != nil {
						return nil, err
					}
				}
			}
			sql.Add(float64(nw), (sb.clock.Now() - start).Seconds())
		}
		series = append(series, prop, sql)
	}
	res.addf("%s\n", metrics.FormatSeries("processes", series...))

	// Headline metrics: speedup at 16 writers and SQL cross-scale
	// degradation.
	if len(series) == 4 {
		last := len(series[0].Y) - 1
		res.metric("speedup_small", series[1].Y[last]/series[0].Y[last])
		res.metric("speedup_large", series[3].Y[last]/series[2].Y[last])
		res.metric("sql_degradation", series[3].Y[last]/series[1].Y[last])
		res.metric("propeller_flatness", series[2].Y[last]/series[0].Y[last])
	}
	return res, nil
}

// runTab3 reproduces Table III: two global queries over growing datasets,
// Propeller vs MiniSQL.
func runTab3(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	// 10k..50k files stand in for the paper's 10M..50M.
	sizes := []int{opts.scaled(10000), opts.scaled(20000), opts.scaled(30000),
		opts.scaled(40000), opts.scaled(50000)}
	const groupSize = 1000
	q1 := "size>1g & mtime<1day"
	q2 := "keyword:firefox & mtime<1week"

	res := &Result{}
	res.addf("Table III: global file search (virtual s)\n")
	res.addf("query #1: %s   query #2: %s\n", q1, q2)
	tbl := &metrics.Table{Header: []string{
		"files", "propeller #1", "propeller #2", "minisql #1", "minisql #2",
	}}
	var lastSpeedup1, lastSpeedup2 float64
	for _, n := range sizes {
		ds, err := vfs.NewDataset(n, opts.Seed, nil)
		if err != nil {
			return nil, err
		}
		sn, err := newSingleNode(8192, 0)
		if err != nil {
			return nil, err
		}
		sn.declareInodeIndexes()
		if err := sn.loadDataset(ds, groupSize, 1000); err != nil {
			return nil, err
		}
		// Global searches over a freshly booted system: caches dropped, the
		// query pays the index I/O (the paper's latencies grow linearly
		// with dataset scale, i.e. they are disk-bound).
		if err := sn.node.DropCaches(); err != nil {
			return nil, err
		}
		_, p1, err := sn.search(ds, groupSize, "size", q1)
		if err != nil {
			return nil, err
		}
		if err := sn.node.DropCaches(); err != nil {
			return nil, err
		}
		_, p2, err := sn.search(ds, groupSize, "keyword", q2)
		if err != nil {
			return nil, err
		}

		sb, err := newSQLBaseline(8192)
		if err != nil {
			return nil, err
		}
		if err := sb.loadDataset(ds); err != nil {
			return nil, err
		}
		pq1, err := query.Parse(q1, refTime)
		if err != nil {
			return nil, err
		}
		pq2, err := query.Parse(q2, refTime)
		if err != nil {
			return nil, err
		}
		if err := sb.store.DropCache(); err != nil {
			return nil, err
		}
		start := sb.clock.Now()
		if _, err := minisql.SearchFiles(sb.files, sb.keywords, pq1); err != nil {
			return nil, err
		}
		m1 := sb.clock.Now() - start
		if err := sb.store.DropCache(); err != nil {
			return nil, err
		}
		start = sb.clock.Now()
		if _, err := minisql.SearchFiles(sb.files, sb.keywords, pq2); err != nil {
			return nil, err
		}
		m2 := sb.clock.Now() - start

		tbl.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.4f", p1.Seconds()), fmt.Sprintf("%.4f", p2.Seconds()),
			fmt.Sprintf("%.4f", m1.Seconds()), fmt.Sprintf("%.4f", m2.Seconds()))
		if p1 > 0 {
			lastSpeedup1 = m1.Seconds() / p1.Seconds()
		}
		if p2 > 0 {
			lastSpeedup2 = m2.Seconds() / p2.Seconds()
		}
	}
	res.addf("%s\n", tbl.String())
	res.metric("speedup_q1", lastSpeedup1)
	res.metric("speedup_q2", lastSpeedup2)
	return res, nil
}

// runFig10 reproduces Figure 10: a mixed workload of updates with one
// file-search per 1024 requests against a single 1000-file group inside a
// large dataset, vs MiniSQL updates against the global index. The paper
// reports per-request re-indexing latency (Propeller 15.6 µs vs MySQL
// 3,980 µs on their hardware).
func runFig10(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	dsSize := opts.scaled(50000)
	const groupSize = 1000
	totalOps := opts.scaled(10000)
	const searchEvery = 1024
	const mergeEvery = 500 // the paper's background "timeout" merges

	ds, err := vfs.NewDataset(dsSize, opts.Seed, nil)
	if err != nil {
		return nil, err
	}

	// Propeller: one group, lazy cache + WAL; background merge via Tick.
	sn, err := newSingleNode(4096, 1<<30)
	if err != nil {
		return nil, err
	}
	sn.declareInodeIndexes()
	propUpd := metrics.NewRecorder()
	propSearch := metrics.NewRecorder()
	for i := 0; i < totalOps; i++ {
		f := index.FileID(i % groupSize)
		before := sn.clock.Now()
		if _, err := sn.node.Update(context.Background(), proto.UpdateReq{
			ACG: 1, IndexName: "size",
			Entries: []proto.IndexEntry{{File: f, Value: attr.Int(int64(i) << 10)}},
		}); err != nil {
			return nil, err
		}
		propUpd.Record(sn.clock.Now() - before)
		if (i+1)%mergeEvery == 0 {
			sn.clock.Advance(6 * time.Second)
			if err := sn.node.Tick(); err != nil {
				return nil, err
			}
		}
		if (i+1)%searchEvery == 0 {
			before := sn.clock.Now()
			if _, err := sn.node.Search(context.Background(), proto.SearchReq{
				ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>1m",
				NowUnixNano: refTime.UnixNano(),
			}); err != nil {
				return nil, err
			}
			propSearch.Record(sn.clock.Now() - before)
		}
	}

	// MiniSQL: the same ops against the global dataset.
	sb, err := newSQLBaseline(2048)
	if err != nil {
		return nil, err
	}
	if err := sb.loadDataset(ds); err != nil {
		return nil, err
	}
	q, err := query.Parse("size>1g", refTime)
	if err != nil {
		return nil, err
	}
	sqlUpd := metrics.NewRecorder()
	sqlSearch := metrics.NewRecorder()
	for i := 0; i < totalOps; i++ {
		f := index.FileID(i % groupSize)
		before := sb.clock.Now()
		if err := sb.files.Update(f, minisql.Row{"size": attr.Int(int64(i) << 10)}); err != nil {
			return nil, err
		}
		sqlUpd.Record(sb.clock.Now() - before)
		if (i+1)%searchEvery == 0 {
			before := sb.clock.Now()
			if _, err := sb.files.Select(q); err != nil {
				return nil, err
			}
			sqlSearch.Record(sb.clock.Now() - before)
		}
	}

	pu, su := propUpd.Summarize(), sqlUpd.Summarize()
	ps, ss := propSearch.Summarize(), sqlSearch.Summarize()
	res := &Result{}
	res.addf("Figure 10: mixed workload (%d ops, 1 search per %d updates, %d-file group in a %d-file dataset)\n",
		totalOps, searchEvery, groupSize, dsSize)
	tbl := &metrics.Table{Header: []string{"system", "avg update", "p99 update", "avg search", "searches"}}
	tbl.AddRow("propeller", pu.Mean.String(), pu.P99.String(), ps.Mean.String(), fmt.Sprintf("%d", ps.Count))
	tbl.AddRow("minisql", su.Mean.String(), su.P99.String(), ss.Mean.String(), fmt.Sprintf("%d", ss.Count))
	res.addf("%s\n", tbl.String())
	ratio := 0.0
	if pu.Mean > 0 {
		ratio = float64(su.Mean) / float64(pu.Mean)
	}
	res.addf("re-indexing latency ratio (minisql/propeller): %.1fx (paper: ~250x)\n\n", ratio)
	res.metric("update_ratio", ratio)
	res.metric("prop_update_us", float64(pu.Mean)/1e3)
	res.metric("sql_update_us", float64(su.Mean)/1e3)
	return res, nil
}
