package experiments

import (
	"context"
	"fmt"
	"time"

	"propeller/internal/acg"
	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/indexnode"
	"propeller/internal/metrics"
	"propeller/internal/pagestore"
	"propeller/internal/partition"
	"propeller/internal/postmark"
	"propeller/internal/proto"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
	"propeller/internal/workload"
)

// runTab6 reproduces Table VI: the PostMark benchmark across native file
// systems, FUSE file systems, the pass-through FUSE baseline, and
// Propeller's inline-indexing FUSE file system.
func runTab6(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	cfg := postmark.Config{
		Files:        opts.scaled(5000),
		Subdirs:      200,
		Transactions: opts.scaled(2500),
		Seed:         opts.Seed,
	}

	res := &Result{}
	res.addf("Table VI: PostMark (%d files, %d subdirs, %d transactions)\n",
		cfg.Files, cfg.Subdirs, cfg.Transactions)
	tbl := &metrics.Table{Header: []string{"fs", "files/s", "read KB/s", "write KB/s", "elapsed"}}

	rates := map[string]float64{}
	run := func(fs postmark.FS, clock *vclock.Clock) error {
		rep, err := postmark.Run(fs, clock, cfg)
		if err != nil {
			return err
		}
		tbl.AddRow(rep.FS,
			fmt.Sprintf("%.0f", rep.FilesPerSec),
			fmt.Sprintf("%.1f", rep.ReadKBPerSec),
			fmt.Sprintf("%.1f", rep.WriteKBPerSec),
			fmt.Sprintf("%.2fs", rep.Elapsed.Seconds()))
		rates[rep.FS] = rep.FilesPerSec
		return nil
	}
	for _, name := range []string{"ext4", "btrfs", "ptfs", "ntfs-3g", "zfs-fuse"} {
		clock := vclock.New()
		for _, fs := range postmark.StandardModels(clock) {
			if fs.Name() == name {
				if err := run(fs, clock); err != nil {
					return nil, err
				}
			}
		}
	}
	// Propeller: real inline-indexing path on a fresh Index Node.
	clock := vclock.New()
	disk := simdisk.New(simdisk.Barracuda7200(), clock)
	store, err := pagestore.New(disk, 8192)
	if err != nil {
		return nil, err
	}
	node, err := indexnode.New(indexnode.Config{ID: "pm", Store: store, Disk: disk, Clock: clock, SearchFanout: 1})
	if err != nil {
		return nil, err
	}
	pfs := postmark.NewPropellerFS(clock, simdisk.New(simdisk.Barracuda7200(), clock), node)
	if err := run(pfs, clock); err != nil {
		return nil, err
	}
	res.addf("%s\n", tbl.String())
	if rates["propeller"] > 0 {
		res.metric("ptfs_over_propeller", rates["ptfs"]/rates["propeller"])
		res.metric("ext4_over_propeller", rates["ext4"]/rates["propeller"])
	}
	return res, nil
}

// compileGraph returns the undirected adjacency of the largest component of
// a compile-trace ACG.
func compileGraph(p workload.CompileProfile) partition.Graph {
	reg := workload.NewPathIDs()
	b := acg.NewBuilder()
	p.Trace(b, reg)
	g := b.Graph()
	largest := g.ConnectedComponents()[0]
	sub := g.Subgraph(largest)
	adj := make(map[uint64]map[uint64]int64)
	for src, m := range sub.Undirected() {
		row := make(map[uint64]int64, len(m))
		for dst, w := range m {
			row[uint64(dst)] = w
		}
		adj[uint64(src)] = row
	}
	return partition.Graph{Adj: adj}
}

// runAblPartition compares the multilevel ACG partitioner against the naive
// baselines (random split, id-order split — a proxy for namespace-based
// partitioning) on real compile-trace graphs. Cut weight is the number of
// inter-partition accesses an indexing workload would pay.
func runAblPartition(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{}
	res.addf("Ablation: partitioner cut weight on compile-trace ACGs (lower is better)\n")
	tbl := &metrics.Table{Header: []string{"graph", "multilevel", "order (namespace)", "attribute (size)", "random"}}
	for _, p := range []workload.CompileProfile{workload.ThriftProfile(), workload.LinuxProfile(0.1)} {
		g := compileGraph(p)
		ml, err := partition.Bisect(g, partition.Options{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		ord := partition.OrderBisect(g)
		rnd := partition.RandomBisect(g, opts.Seed)
		// Static metadata attribute (a pseudo file size uncorrelated with
		// access causality — the SmartStore-style criterion).
		attrs := make(map[uint64]int64, len(g.Adj))
		for v := range g.Adj {
			attrs[v] = int64(v * 2654435761 % 1000003)
		}
		att := partition.AttributeBisect(g, attrs)
		tbl.AddRow(p.Name,
			fmt.Sprintf("%d", ml.CutWeight),
			fmt.Sprintf("%d", ord.CutWeight),
			fmt.Sprintf("%d", att.CutWeight),
			fmt.Sprintf("%d", rnd.CutWeight))
		if ml.CutWeight > 0 {
			res.metric(p.Name+"_random_over_ml", float64(rnd.CutWeight)/float64(ml.CutWeight))
			res.metric(p.Name+"_attr_over_ml", float64(att.CutWeight)/float64(ml.CutWeight))
		} else {
			res.metric(p.Name+"_random_over_ml", float64(rnd.CutWeight))
			res.metric(p.Name+"_attr_over_ml", float64(att.CutWeight))
		}
	}
	res.addf("%s\n", tbl.String())
	return res, nil
}

// runAblLazyCache measures the lazy index cache's effect: per-update
// acknowledged latency with the cache (WAL + RAM) vs synchronous commits.
func runAblLazyCache(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	updates := opts.scaled(5000)

	measure := func(disable bool) (time.Duration, error) {
		clk := vclock.New()
		disk := simdisk.New(simdisk.Barracuda7200(), clk)
		store, err := pagestore.New(disk, 64) // tight pool: commits cost I/O
		if err != nil {
			return 0, err
		}
		node, err := indexnode.New(indexnode.Config{
			ID: "abl", Store: store, Disk: disk, Clock: clk,
			DisableLazyCache: disable, CacheLimit: 1 << 30,
			SearchFanout: 1, // deterministic virtual-time charges
		})
		if err != nil {
			return 0, err
		}
		node.DeclareIndex(proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"})
		rec := metrics.NewRecorder()
		for i := 0; i < updates; i++ {
			before := clk.Now()
			if _, err := node.Update(context.Background(), proto.UpdateReq{
				ACG: proto.ACGID(i%8 + 1), IndexName: "size",
				Entries: []proto.IndexEntry{{File: index.FileID(i), Value: attr.Int(int64(i * 7919))}},
			}); err != nil {
				return 0, err
			}
			rec.Record(clk.Now() - before)
		}
		return rec.Summarize().Mean, nil
	}

	lazy, err := measure(false)
	if err != nil {
		return nil, err
	}
	sync, err := measure(true)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	res.addf("Ablation: lazy index cache (%d updates, 8 groups, tight pool)\n", updates)
	tbl := &metrics.Table{Header: []string{"mode", "avg update latency"}}
	tbl.AddRow("lazy cache (paper)", lazy.String())
	tbl.AddRow("synchronous commit", sync.String())
	res.addf("%s\n", tbl.String())
	ratio := 0.0
	if lazy > 0 {
		ratio = float64(sync) / float64(lazy)
	}
	res.addf("synchronous/lazy latency ratio: %.1fx\n\n", ratio)
	res.metric("sync_over_lazy", ratio)
	return res, nil
}

// runAblKLRefine measures what the Kernighan–Lin refinement pass buys over
// coarsening + greedy growing alone.
func runAblKLRefine(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{}
	res.addf("Ablation: KL refinement in the multilevel partitioner\n")
	tbl := &metrics.Table{Header: []string{"graph", "with KL", "without KL"}}
	for _, p := range []workload.CompileProfile{workload.ThriftProfile(), workload.LinuxProfile(0.1)} {
		g := compileGraph(p)
		with, err := partition.Bisect(g, partition.Options{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		without, err := partition.Bisect(g, partition.Options{Seed: opts.Seed, DisableRefine: true})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(p.Name, fmt.Sprintf("%d", with.CutWeight), fmt.Sprintf("%d", without.CutWeight))
		if with.CutWeight > 0 {
			res.metric(p.Name+"_kl_gain", float64(without.CutWeight)/float64(with.CutWeight))
		}
	}
	res.addf("%s\n", tbl.String())
	return res, nil
}
