package experiments

import (
	"context"
	"fmt"
	"time"

	"propeller/internal/attr"
	"propeller/internal/client"
	"propeller/internal/cluster"
	"propeller/internal/metrics"
	"propeller/internal/proto"
	"propeller/internal/rpc"
	"propeller/internal/vfs"
)

// runTab4 reproduces Table IV and Figure 9: file-search latency on a
// Propeller cluster as Index Nodes scale from 1 to 8, cold and warm, on two
// dataset scales. Per-node buffer pools are sized so that small clusters
// cannot hold their index share in memory — the effect behind the paper's
// super-linear warm speedups.
//
// Parallelism model: nodes serve their ACGs concurrently, so the fan-out
// latency is the *maximum* per-node service time (plus one RPC round trip),
// measured by querying each node separately on the shared virtual clock.
func runTab4(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	dsSizes := []int{opts.scaled(40000), opts.scaled(80000)}
	nodeCounts := []int{1, 2, 4, 6, 8}
	const groupSize = 1000
	const q = "size>16m"

	res := &Result{}
	res.addf("Table IV / Figure 9: cluster file-search latency (virtual s), query %q\n", q)
	tbl := &metrics.Table{Header: []string{"dataset", "nodes", "cold", "warm"}}
	var coldSeries, warmSeries []*metrics.Series

	for _, dsSize := range dsSizes {
		ds, err := vfs.NewDataset(dsSize, opts.Seed, nil)
		if err != nil {
			return nil, err
		}
		cold := &metrics.Series{Name: fmt.Sprintf("cold-%dK", dsSize/1000)}
		warm := &metrics.Series{Name: fmt.Sprintf("warm-%dK", dsSize/1000)}
		for _, nNodes := range nodeCounts {
			c, err := cluster.New(cluster.Config{
				IndexNodes: nNodes,
				// Pool sized to ~half the single-node index footprint: with
				// 1-2 nodes the warm working set spills (page faults on
				// every query); with 4+ nodes each share fits — the
				// memory-fit effect behind the paper's super-linear warm
				// speedups.
				PoolPagesPerNode: dsSize / 400,
				NetProfile:       rpc.GigabitLAN(),
				SearchFanout:     1, // deterministic virtual-time charges
			})
			if err != nil {
				return nil, err
			}
			cl, err := c.NewClient(func() time.Time { return refTime })
			if err != nil {
				return nil, err
			}
			if err := cl.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
				return nil, err
			}
			// Load the dataset in group batches; hints co-locate each
			// group's files.
			nGroups := ds.NumGroups(groupSize)
			for g := 0; g < nGroups; g++ {
				files := ds.GroupFiles(g, groupSize)
				updates := make([]client.FileUpdate, 0, len(files))
				for _, f := range files {
					fa := ds.Attrs(f)
					updates = append(updates, client.FileUpdate{
						File: f, Value: attr.Int(fa.Size), GroupHint: uint64(g) + 1,
					})
				}
				if err := cl.Index(context.Background(), "size", updates); err != nil {
					return nil, err
				}
			}
			c.Clock().Advance(6 * time.Second)
			if err := c.Tick(); err != nil {
				return nil, err
			}

			runOnce := func() (time.Duration, int, error) {
				// Query each node's share directly and take the slowest
				// (parallel fan-out), plus one LAN round trip.
				lookup, err := c.Master().LookupIndex(context.Background(), proto.LookupIndexReq{IndexName: "size"})
				if err != nil {
					return 0, 0, err
				}
				nodeByID := map[proto.NodeID]int{}
				for i, n := range c.Nodes() {
					nodeByID[n.ID()] = i
				}
				var worst time.Duration
				total := 0
				for _, tgt := range lookup.Targets {
					n := c.Nodes()[nodeByID[tgt.Node]]
					before := c.Clock().Now()
					resp, err := n.Search(context.Background(), proto.SearchReq{
						ACGs: tgt.ACGs, IndexName: "size", Query: q,
						NowUnixNano: refTime.UnixNano(),
					})
					if err != nil {
						return 0, 0, err
					}
					if d := c.Clock().Now() - before; d > worst {
						worst = d
					}
					total += len(resp.Files)
				}
				return worst + rpc.GigabitLAN().RTT, total, nil
			}

			// Cold: fresh boot semantics.
			if err := c.DropCaches(); err != nil {
				return nil, err
			}
			coldLat, matches, err := runOnce()
			if err != nil {
				return nil, err
			}
			// Warm: average of the remaining 10 of the 11-query sequence.
			var warmTotal time.Duration
			for i := 0; i < 10; i++ {
				lat, _, err := runOnce()
				if err != nil {
					return nil, err
				}
				warmTotal += lat
			}
			warmLat := warmTotal / 10
			tbl.AddRow(fmt.Sprintf("%dK", dsSize/1000), fmt.Sprintf("%d", nNodes),
				fmt.Sprintf("%.4f", coldLat.Seconds()), fmt.Sprintf("%.6f", warmLat.Seconds()))
			cold.Add(float64(nNodes), coldLat.Seconds())
			warm.Add(float64(nNodes), warmLat.Seconds())
			_ = matches
			if err := c.Close(); err != nil {
				return nil, err
			}
		}
		coldSeries = append(coldSeries, cold)
		warmSeries = append(warmSeries, warm)
	}
	res.addf("%s\n", tbl.String())
	res.addf("Figure 9 series (cold):\n%s\n", metrics.FormatSeries("nodes", coldSeries...))
	res.addf("Figure 9 series (warm):\n%s\n", metrics.FormatSeries("nodes", warmSeries...))

	for i, s := range coldSeries {
		if len(s.Y) >= 2 && s.Y[len(s.Y)-1] > 0 {
			res.metric(fmt.Sprintf("cold_scaling_%d", i), s.Y[0]/s.Y[len(s.Y)-1])
		}
	}
	for i, s := range warmSeries {
		if len(s.Y) >= 2 && s.Y[len(s.Y)-1] > 0 {
			res.metric(fmt.Sprintf("warm_scaling_%d", i), s.Y[0]/s.Y[len(s.Y)-1])
		}
	}
	return res, nil
}
