// Package spotlight models the crawling-based desktop search engine the
// paper compares against (Apple Spotlight, §II and §V-E). The model
// captures the two properties the paper's Figures 1 and 11 and Table V
// measure:
//
//  1. Asynchronous crawling: the queryable index is a *snapshot*; changes
//     made after the last crawl are invisible, so recall degrades with
//     background I/O intensity, and heavy change bursts trigger an index
//     rebuild during which queries return nothing (recall 0).
//  2. Limited type plugins: only supported file types are indexed at all,
//     capping recall below 100% even on a quiet namespace.
//
// Latency follows the prototype's measured shape: warm queries scan the
// snapshot at a fixed per-file cost; cold queries additionally pay the
// whole-index disk load.
package spotlight

import (
	"sort"
	"strings"
	"sync"
	"time"

	"propeller/internal/index"
	"propeller/internal/query"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
	"propeller/internal/vfs"
)

// Config tunes the engine.
type Config struct {
	Namespace *vfs.Namespace
	Clock     *vclock.Clock
	Disk      *simdisk.Disk
	// CrawlInterval is the period between change-crawls.
	CrawlInterval time.Duration
	// RebuildThreshold is the number of accumulated changes that triggers a
	// full index rebuild instead of an incremental crawl.
	RebuildThreshold int
	// RebuildPerFile is the rebuild cost per namespace file.
	RebuildPerFile time.Duration
	// TypeSupported reports whether the engine's plugins can index a file;
	// nil uses DefaultTypeFilter.
	TypeSupported func(vfs.FileAttrs) bool
	// WarmPerFile is the per-snapshot-file scan cost of a warm query.
	WarmPerFile time.Duration
	// ColdOverhead is the fixed extra cost of the first query (daemon
	// start, index open).
	ColdOverhead time.Duration
	// IndexBytesPerFile sizes the on-disk index for the cold load.
	IndexBytesPerFile int64
}

func (c Config) withDefaults() Config {
	if c.CrawlInterval <= 0 {
		c.CrawlInterval = 30 * time.Second
	}
	if c.RebuildThreshold <= 0 {
		c.RebuildThreshold = 500
	}
	if c.RebuildPerFile <= 0 {
		c.RebuildPerFile = 300 * time.Microsecond
	}
	if c.TypeSupported == nil {
		c.TypeSupported = DefaultTypeFilter
	}
	if c.WarmPerFile <= 0 {
		// Calibrated to the paper's measurements: warm queries cost ~21 ms
		// on a 138k-file snapshot (Table V) and ~28.5 ms on the ~90k-file
		// dynamic namespace (Figure 11), i.e. a few hundred ns per indexed
		// file of per-query scan/merge work in the mds daemon.
		c.WarmPerFile = 300 * time.Nanosecond
	}
	if c.ColdOverhead <= 0 {
		c.ColdOverhead = 2400 * time.Millisecond
	}
	if c.IndexBytesPerFile <= 0 {
		c.IndexBytesPerFile = 200
	}
	return c
}

// DefaultTypeFilter models the plugin coverage gap: files under directories
// the desktop plugins do not understand (raw data trees, VM images, build
// artifacts) are skipped. The resulting recall ceiling matches the paper's
// observation that Spotlight "only supports limited pre-defined file types".
func DefaultTypeFilter(fa vfs.FileAttrs) bool {
	p := fa.Path
	for _, skip := range []string{"/vmimage", "/raw", "/build", "/objects", "/.git"} {
		if strings.Contains(p, skip) {
			return false
		}
	}
	// Large opaque blobs are also skipped by type sniffing.
	return fa.Size < 2<<30
}

// Engine is a simulated crawling search engine.
type Engine struct {
	cfg Config

	mu           sync.Mutex
	snapshot     map[index.FileID]vfs.FileAttrs // committed index
	pending      int                            // changes since last crawl
	lastCrawl    time.Duration
	rebuildUntil time.Duration
	everQueried  bool
}

// New returns an Engine watching cfg.Namespace. The initial index is built
// immediately (the paper rebuilds the Spotlight index before each run).
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg, snapshot: make(map[index.FileID]vfs.FileAttrs)}
	e.crawlLocked(cfg.Clock.Now())
	e.lastCrawl = cfg.Clock.Now()
	cfg.Namespace.Watch(func(vfs.Change) {
		e.mu.Lock()
		e.pending++
		e.mu.Unlock()
	})
	return e
}

// crawlLocked re-snapshots the namespace (supported types only).
func (e *Engine) crawlLocked(now time.Duration) {
	snap := make(map[index.FileID]vfs.FileAttrs)
	for _, fa := range e.cfg.Namespace.Files() {
		if e.cfg.TypeSupported(fa) {
			snap[fa.ID] = fa
		}
	}
	e.snapshot = snap
	e.pending = 0
	e.lastCrawl = now
}

// AdvanceTo processes the crawl schedule up to virtual time now: every
// CrawlInterval the crawler either incrementally refreshes the snapshot or,
// past RebuildThreshold accumulated changes, starts a full rebuild that
// blanks query results until it completes.
func (e *Engine) AdvanceTo(now time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.lastCrawl+e.cfg.CrawlInterval <= now {
		at := e.lastCrawl + e.cfg.CrawlInterval
		if e.pending >= e.cfg.RebuildThreshold {
			dur := time.Duration(e.cfg.Namespace.Len()) * e.cfg.RebuildPerFile
			e.rebuildUntil = at + dur
		}
		e.crawlLocked(at)
	}
}

// Rebuilding reports whether a rebuild window covers virtual time t.
func (e *Engine) Rebuilding(t time.Duration) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return t < e.rebuildUntil
}

// SnapshotLen returns the committed index size.
func (e *Engine) SnapshotLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.snapshot)
}

// Query runs a search against the committed snapshot, charging the latency
// model to the clock, and returns the matching files. During a rebuild
// window the result is empty (the paper measured recall dropping to 0).
func (e *Engine) Query(q query.Query) []index.FileID {
	e.mu.Lock()
	now := e.cfg.Clock.Now()
	cold := !e.everQueried
	e.everQueried = true
	rebuilding := now < e.rebuildUntil
	snap := make([]vfs.FileAttrs, 0, len(e.snapshot))
	for _, fa := range e.snapshot {
		snap = append(snap, fa)
	}
	e.mu.Unlock()

	if cold {
		e.cfg.Clock.Advance(e.cfg.ColdOverhead)
		if e.cfg.Disk != nil {
			//nolint:errcheck // latency charge only
			e.cfg.Disk.Read(1<<35, int64(len(snap))*e.cfg.IndexBytesPerFile)
		}
	}
	e.cfg.Clock.Advance(time.Duration(len(snap)) * e.cfg.WarmPerFile)

	if rebuilding {
		return nil
	}
	var out []index.FileID
	for _, fa := range snap {
		if q.MatchesFile(fa) {
			out = append(out, fa.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Recall computes |returned ∩ relevant| / |relevant| against ground truth.
// A query with no relevant files has recall 1.
func Recall(returned []index.FileID, relevant []index.FileID) float64 {
	if len(relevant) == 0 {
		return 1
	}
	in := make(map[index.FileID]bool, len(returned))
	for _, f := range returned {
		in[f] = true
	}
	hit := 0
	for _, f := range relevant {
		if in[f] {
			hit++
		}
	}
	return float64(hit) / float64(len(relevant))
}
