package spotlight

import (
	"fmt"
	"testing"
	"time"

	"propeller/internal/index"
	"propeller/internal/query"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
	"propeller/internal/vfs"
)

var testNow = time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)

func seedNamespace(t *testing.T, n int) *vfs.Namespace {
	t.Helper()
	ns := vfs.NewNamespace()
	for i := 0; i < n; i++ {
		size := int64(i) << 20
		if _, err := ns.Create(fmt.Sprintf("/docs/f%04d", i), size, testNow, 1000); err != nil {
			t.Fatal(err)
		}
	}
	return ns
}

func newEngine(t *testing.T, ns *vfs.Namespace, clk *vclock.Clock, over func(*Config)) *Engine {
	t.Helper()
	cfg := Config{
		Namespace:     ns,
		Clock:         clk,
		Disk:          simdisk.New(simdisk.Laptop5400(), clk),
		CrawlInterval: 10 * time.Second,
		TypeSupported: func(vfs.FileAttrs) bool { return true },
	}
	if over != nil {
		over(&cfg)
	}
	return New(cfg)
}

func mustParse(t *testing.T, s string) query.Query {
	t.Helper()
	q, err := query.Parse(s, testNow)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestInitialCrawlIndexesEverything(t *testing.T) {
	ns := seedNamespace(t, 100)
	clk := vclock.New()
	e := newEngine(t, ns, clk, nil)
	if e.SnapshotLen() != 100 {
		t.Fatalf("snapshot = %d, want 100", e.SnapshotLen())
	}
	got := e.Query(mustParse(t, "size>50m"))
	if len(got) != 49 { // sizes 51..99 MB
		t.Errorf("query = %d files, want 49", len(got))
	}
}

func TestChangesInvisibleUntilCrawl(t *testing.T) {
	ns := seedNamespace(t, 10)
	clk := vclock.New()
	e := newEngine(t, ns, clk, nil)
	// A new large file appears after the initial crawl.
	if _, err := ns.Create("/docs/new", 100<<20, testNow, 1000); err != nil {
		t.Fatal(err)
	}
	got := e.Query(mustParse(t, "size>50m"))
	for _, f := range got {
		if fa, _ := ns.StatID(f); fa.Path == "/docs/new" {
			t.Fatal("uncrawled file should be invisible (staleness)")
		}
	}
	// After the crawl interval it becomes visible.
	clk.Advance(11 * time.Second)
	e.AdvanceTo(clk.Now())
	got = e.Query(mustParse(t, "size>50m"))
	found := false
	for _, f := range got {
		if fa, err := ns.StatID(f); err == nil && fa.Path == "/docs/new" {
			found = true
		}
	}
	if !found {
		t.Error("crawled file should be visible")
	}
}

func TestTypeFilterCapsRecall(t *testing.T) {
	ns := vfs.NewNamespace()
	var relevant []index.FileID
	for i := 0; i < 50; i++ {
		fa, err := ns.Create(fmt.Sprintf("/docs/f%02d", i), 100<<20, testNow, 1)
		if err != nil {
			t.Fatal(err)
		}
		relevant = append(relevant, fa.ID)
	}
	for i := 0; i < 50; i++ {
		fa, err := ns.Create(fmt.Sprintf("/vmimage/f%02d", i), 100<<20, testNow, 1)
		if err != nil {
			t.Fatal(err)
		}
		relevant = append(relevant, fa.ID)
	}
	clk := vclock.New()
	e := newEngine(t, ns, clk, func(c *Config) { c.TypeSupported = DefaultTypeFilter })
	got := e.Query(mustParse(t, "size>50m"))
	r := Recall(got, relevant)
	if r != 0.5 {
		t.Errorf("recall = %f, want 0.5 (type ceiling)", r)
	}
}

func TestRebuildWindowDropsRecallToZero(t *testing.T) {
	ns := seedNamespace(t, 1000)
	clk := vclock.New()
	e := newEngine(t, ns, clk, func(c *Config) {
		c.RebuildThreshold = 10
		c.RebuildPerFile = 10 * time.Millisecond
	})
	// Burst of changes exceeding the threshold.
	for i := 0; i < 50; i++ {
		if _, err := ns.Create(fmt.Sprintf("/docs/burst%02d", i), 1<<20, testNow, 1); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(11 * time.Second)
	e.AdvanceTo(clk.Now())
	if !e.Rebuilding(clk.Now()) {
		t.Fatal("burst should trigger a rebuild window")
	}
	got := e.Query(mustParse(t, "size>0"))
	if len(got) != 0 {
		t.Errorf("queries during rebuild must return nothing, got %d", len(got))
	}
	// Past the window, results return.
	clk.Advance(time.Duration(ns.Len()) * 10 * time.Millisecond)
	if e.Rebuilding(clk.Now()) {
		t.Fatal("rebuild window should have passed")
	}
	got = e.Query(mustParse(t, "size>0"))
	if len(got) == 0 {
		t.Error("post-rebuild queries should return results")
	}
}

func TestColdQueryCostsMore(t *testing.T) {
	ns := seedNamespace(t, 5000)
	clk := vclock.New()
	e := newEngine(t, ns, clk, nil)
	before := clk.Now()
	e.Query(mustParse(t, "size>1m"))
	cold := clk.Now() - before
	before = clk.Now()
	e.Query(mustParse(t, "size>1m"))
	warm := clk.Now() - before
	if cold < 10*warm {
		t.Errorf("cold (%v) should dwarf warm (%v)", cold, warm)
	}
	if warm <= 0 {
		t.Error("warm query should still cost per-file scan time")
	}
}

func TestRecallMath(t *testing.T) {
	if r := Recall(nil, nil); r != 1 {
		t.Errorf("empty relevant recall = %f, want 1", r)
	}
	if r := Recall([]index.FileID{1, 2}, []index.FileID{1, 2, 3, 4}); r != 0.5 {
		t.Errorf("recall = %f, want 0.5", r)
	}
	if r := Recall(nil, []index.FileID{1}); r != 0 {
		t.Errorf("recall = %f, want 0", r)
	}
}
