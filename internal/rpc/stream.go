// Client→server chunk streams: the transport for payloads too large for a
// single frame (ACG migration images). A stream is opened with typed
// metadata, carries bounded chunk frames that interleave with every other
// stream and unary call on the connection, and terminates in a typed
// response. A credit window caps the bytes in flight per stream, so the
// receiver's buffering is bounded by the window — never the transfer size —
// and a slow consumer stalls only its own sender, not the connection.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"propeller/internal/perr"
)

// Stream errors.
var (
	// ErrStreamCanceled surfaces in a server handler whose peer abandoned
	// the stream (kindCancel or client teardown).
	ErrStreamCanceled = errors.New("rpc: stream canceled by peer")
	// ErrStreamDone is returned by Send after the server already finished
	// the stream — the terminal response (often an error worth reading via
	// FinishStream) is waiting.
	ErrStreamDone = errors.New("rpc: stream finished by server")
)

// StreamHandler serves one inbound stream: decode meta, drain chunks via
// st.Next, return the codec-tagged terminal response body.
type StreamHandler func(ctx context.Context, meta []byte, st *ServerStream) ([]byte, error)

// HandleStream registers a raw stream handler for method.
func (s *Server) HandleStream(method string, h StreamHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.streamHandlers[method] = h
}

// HandleStreamTyped registers a stream handler with typed open-metadata and
// terminal response. Chunks stay raw bytes: stream payloads frame
// themselves (the record streams of ACG images), and re-encoding them per
// chunk would buy nothing.
func HandleStreamTyped[Meta, Resp any](s *Server, method string,
	fn func(ctx context.Context, meta Meta, st *ServerStream) (Resp, error)) {
	s.HandleStream(method, func(ctx context.Context, meta []byte, st *ServerStream) ([]byte, error) {
		var m Meta
		if err := decodeBody(meta, &m); err != nil {
			return nil, fmt.Errorf("rpc %s: decode stream meta: %w", method, err)
		}
		resp, err := fn(ctx, m, st)
		if err != nil {
			return nil, err
		}
		out, err := encodeBody(&resp)
		if err != nil {
			return nil, fmt.Errorf("rpc %s: encode stream response: %w", method, err)
		}
		return out, nil
	})
}

// ServerStream is the receive side of one inbound stream. The reader loop
// pushes chunks; the handler goroutine pops them via Next. Buffering
// between the two is bounded by the flow-control window: credit returns to
// the sender only as Next consumes, so a handler that stops reading stalls
// its sender at streamWindow outstanding bytes.
type ServerStream struct {
	sc     *serverConn
	id     uint64
	meta   []byte
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	queue    [][]byte
	buffered int
	final    bool
	failErr  error
	done     bool
	notify   chan struct{}
}

func newServerStream(sc *serverConn, id uint64, meta []byte,
	ctx context.Context, cancel context.CancelFunc) *ServerStream {
	return &ServerStream{
		sc: sc, id: id, meta: meta, ctx: ctx, cancel: cancel,
		notify: make(chan struct{}, 1),
	}
}

func (st *ServerStream) signal() {
	select {
	case st.notify <- struct{}{}:
	default:
	}
}

// push enqueues one chunk from the reader loop. It never blocks — the
// reader must stay responsive for every other stream on the conn — and
// instead reports false when the peer overran its window, which tears the
// connection (protocol violation, not backpressure).
func (st *ServerStream) push(b []byte, final bool) bool {
	st.mu.Lock()
	if st.done || st.failErr != nil {
		st.mu.Unlock()
		return true // stream already settled; drop quietly
	}
	if final {
		st.final = true
	}
	if len(b) > 0 {
		st.queue = append(st.queue, b)
		st.buffered += len(b)
		if st.buffered > streamWindow {
			st.mu.Unlock()
			return false
		}
		st.sc.srv.noteStreamBuffered(int64(st.buffered))
	}
	st.mu.Unlock()
	st.signal()
	return true
}

// fail settles the stream with err; pending and future Next calls return
// it.
func (st *ServerStream) fail(err error) {
	st.mu.Lock()
	if st.failErr == nil && !st.done {
		st.failErr = err
	}
	st.queue = nil
	st.buffered = 0
	st.mu.Unlock()
	st.signal()
}

// discard marks the handler finished: late chunks drop without buffering.
func (st *ServerStream) discard() {
	st.mu.Lock()
	st.done = true
	st.queue = nil
	st.buffered = 0
	st.mu.Unlock()
}

// Next returns the next chunk, blocking until one arrives. It returns
// io.EOF after the sender's half-close, and the failure error if the peer
// cancelled or the connection died. Consuming a chunk returns its bytes to
// the sender's window.
func (st *ServerStream) Next(ctx context.Context) ([]byte, error) {
	for {
		st.mu.Lock()
		if len(st.queue) > 0 {
			b := st.queue[0]
			st.queue = st.queue[1:]
			st.buffered -= len(b)
			st.mu.Unlock()
			// Credit returns only now, after the handler consumed the
			// chunk — this is what bounds receiver buffering by the window.
			_ = st.sc.write(&frame{Kind: kindWindow, ID: st.id, Window: uint32(len(b))})
			return b, nil
		}
		err, final := st.failErr, st.final
		st.mu.Unlock()
		if err != nil {
			return nil, err
		}
		if final {
			return nil, io.EOF
		}
		select {
		case <-ctx.Done():
			return nil, perr.Ctx(ctx.Err())
		case <-st.notify:
		}
	}
}

// ClientStream is the send side of one outbound stream.
type ClientStream struct {
	c      *Client
	id     uint64
	method string

	mu         sync.Mutex
	avail      int
	closedSend bool
	settled    bool
	term       *frame
	failErr    error
	notify     chan struct{}
	done       chan struct{}
}

// OpenStream opens a chunk stream to the server with typed metadata. The
// context's deadline travels in the open frame and bounds the server-side
// handler, exactly like a unary call.
func OpenStream[Meta any](ctx context.Context, c *Client, method string, meta Meta) (*ClientStream, error) {
	body, err := encodeBody(&meta)
	if err != nil {
		return nil, fmt.Errorf("rpc stream %s: encode meta: %w", method, err)
	}
	return c.openStream(ctx, method, body)
}

func (c *Client) openStream(ctx context.Context, method string, meta []byte) (*ClientStream, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("rpc stream %s: %w", method, perr.Ctx(err))
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.nextID++
	s := &ClientStream{
		c: c, id: c.nextID, method: method,
		avail:  streamWindow,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	c.streams[s.id] = s
	c.mu.Unlock()

	open := &frame{Kind: kindStreamOpen, ID: s.id, Method: method, Body: meta}
	if dl, ok := ctx.Deadline(); ok {
		if remaining := time.Until(dl); remaining > 0 {
			open.TimeoutNanos = int64(remaining)
		}
	}
	if err := c.writeFrameCtx(ctx, open); err != nil {
		c.mu.Lock()
		delete(c.streams, s.id)
		c.mu.Unlock()
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = perr.Ctx(ctxErr)
		}
		return nil, fmt.Errorf("rpc stream %s: %w", method, err)
	}
	if c.clock != nil {
		c.clock.Advance(c.profile.cost(len(meta)))
	}
	return s, nil
}

func (s *ClientStream) signal() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// finish records the server's terminal response (called from the reader
// loop).
func (s *ClientStream) finish(f *frame) {
	s.mu.Lock()
	if !s.settled {
		s.settled = true
		s.term = f
		close(s.done)
	}
	s.mu.Unlock()
	s.signal()
}

// fail settles the stream with a transport-level error.
func (s *ClientStream) fail(err error) {
	s.mu.Lock()
	if !s.settled {
		s.settled = true
		s.failErr = err
		close(s.done)
	}
	s.mu.Unlock()
	s.signal()
}

// grant adds window credit (called from the reader loop).
func (s *ClientStream) grant(n int) {
	s.mu.Lock()
	s.avail += n
	s.mu.Unlock()
	s.signal()
}

// take blocks until n bytes of window credit are available.
func (s *ClientStream) take(ctx context.Context, n int) error {
	for {
		s.mu.Lock()
		if err := s.failErr; err != nil {
			s.mu.Unlock()
			return err
		}
		if f := s.term; f != nil {
			s.mu.Unlock()
			if f.ErrMsg != "" {
				return perr.FromWire(f.ErrCode, f.ErrMsg)
			}
			return ErrStreamDone
		}
		if s.avail >= n {
			s.avail -= n
			s.mu.Unlock()
			return nil
		}
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			s.abort()
			return perr.Ctx(ctx.Err())
		case <-s.notify:
		}
	}
}

// Send ships p as one or more bounded chunk frames, blocking while the
// flow-control window is exhausted — backpressure from a receiver that has
// not consumed earlier chunks. Safe to call with payloads of any size; the
// split into maxChunk frames is what lets other streams' frames interleave.
func (s *ClientStream) Send(ctx context.Context, p []byte) error {
	for len(p) > 0 {
		n := len(p)
		if n > maxChunk {
			n = maxChunk
		}
		if err := s.take(ctx, n); err != nil {
			return fmt.Errorf("rpc stream %s: %w", s.method, err)
		}
		if err := s.c.writeFrameCtx(ctx, &frame{Kind: kindChunk, ID: s.id, Body: p[:n]}); err != nil {
			s.abort()
			if ctxErr := ctx.Err(); ctxErr != nil {
				err = perr.Ctx(ctxErr)
			}
			return fmt.Errorf("rpc stream %s: %w", s.method, err)
		}
		if s.c.clock != nil {
			s.c.clock.Advance(s.c.profile.cost(n))
		}
		p = p[n:]
	}
	return nil
}

// CloseSend half-closes the stream: no more chunks follow, and the server
// handler's Next drains to io.EOF. Idempotent.
func (s *ClientStream) CloseSend(ctx context.Context) error {
	s.mu.Lock()
	if s.closedSend {
		s.mu.Unlock()
		return nil
	}
	s.closedSend = true
	s.mu.Unlock()
	if err := s.c.writeFrameCtx(ctx, &frame{Kind: kindChunk, ID: s.id, Flags: flagFinal}); err != nil {
		return fmt.Errorf("rpc stream %s: close: %w", s.method, err)
	}
	return nil
}

// FinishStream half-closes the stream (if the caller has not already) and
// waits for the server's typed terminal response. Typed perr codes cross
// exactly as they do for unary calls.
func FinishStream[Resp any](ctx context.Context, s *ClientStream) (Resp, error) {
	var resp Resp
	body, err := s.finishRaw(ctx)
	if err != nil {
		return resp, err
	}
	if err := decodeBody(body, &resp); err != nil {
		return resp, fmt.Errorf("rpc stream %s: decode response: %w", s.method, err)
	}
	return resp, nil
}

func (s *ClientStream) finishRaw(ctx context.Context) ([]byte, error) {
	if err := s.CloseSend(ctx); err != nil {
		// A dead conn fails the half-close, but the terminal response may
		// already be here (server erroring early); prefer it below.
		select {
		case <-s.done:
		default:
			s.abort()
			return nil, err
		}
	}
	select {
	case <-s.done:
	case <-ctx.Done():
		s.abort()
		return nil, fmt.Errorf("rpc stream %s: %w", s.method, perr.Ctx(ctx.Err()))
	}
	s.mu.Lock()
	f, failErr := s.term, s.failErr
	s.mu.Unlock()
	if f == nil {
		return nil, fmt.Errorf("rpc stream %s: %w", s.method, failErr)
	}
	if s.c.clock != nil {
		s.c.clock.Advance(s.c.profile.cost(len(f.Body)))
	}
	if f.ErrMsg != "" {
		return nil, perr.FromWire(f.ErrCode, f.ErrMsg)
	}
	return f.Body, nil
}

// abort abandons the stream: it is unregistered locally and a best-effort
// cancel frame tells the server to stop its handler. The cancel write gets
// a small independent budget — the caller's context is typically already
// dead here, and a wedged conn must not pin the aborting goroutine.
func (s *ClientStream) abort() {
	s.c.mu.Lock()
	_, registered := s.c.streams[s.id]
	delete(s.c.streams, s.id)
	closed := s.c.closed
	s.c.mu.Unlock()
	s.fail(ErrStreamCanceled)
	if registered && !closed {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.c.writeFrameCtx(ctx, &frame{Kind: kindCancel, ID: s.id})
	}
}
