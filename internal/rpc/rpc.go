package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"propeller/internal/perr"
	"propeller/internal/vclock"
)

// Errors returned by the RPC layer.
var (
	ErrClientClosed  = errors.New("rpc: client closed")
	ErrServerClosed  = errors.New("rpc: server closed")
	ErrNoSuchMethod  = errors.New("rpc: no such method")
	ErrFrameTooLarge = errors.New("rpc: frame exceeds limit")
	ErrFrameCorrupt  = errors.New("rpc: frame checksum mismatch")
)

// maxFrame bounds a single message (16 MiB). Large transfers — ACG
// migration images — travel as bounded chunk streams, so this ceiling
// shrank from 64 MiB when streaming landed rather than growing with group
// size.
const maxFrame = 16 << 20

// Stream flow-control geometry. A sender may have at most streamWindow
// un-acknowledged bytes in flight per stream, in chunks of at most
// maxChunk, so (a) receiver buffering per stream is bounded by the window
// regardless of the transfer's total size and (b) no single frame holds the
// connection's write lock long enough to head-of-line-block another
// stream's frames.
const (
	maxChunk     = 256 << 10
	streamWindow = 1 << 20
)

// StreamWindow exports the per-stream flow-control window so callers can
// assert receiver-side memory bounds (StreamBufferedPeak ≤ StreamWindow)
// in tests and benchmarks.
const StreamWindow = streamWindow

// frameHeader is the wire prefix of every frame: 4-byte big-endian body
// length + 4-byte CRC32 of the body. The checksum is what makes a
// corrupted frame tear the connection instead of half-applying: without
// it a flipped byte can still decode into a *different valid* request,
// and the server would ack work the caller never sent.
const frameHeader = 8

// frame is one wire message. Inside the CRC envelope the body is the
// hand-rolled binary layout of appendFrameBody — a kind byte, a uvarint
// stream/request id, then kind-specific fields — not gob: frame overhead is
// paid on every message, so it is the first thing the binary codec
// replaced.
type frame struct {
	// Kind selects the layout (kindRequest, kindResponse, kindStreamOpen,
	// kindChunk, kindWindow, kindCancel). Zero encodes as kindRequest.
	Kind   uint8
	ID     uint64
	Method string
	ErrMsg string
	// ErrCode is the perr taxonomy code of ErrMsg, so errors.Is keeps
	// working across the wire.
	ErrCode uint8
	// TimeoutNanos is the caller's remaining context budget at send time
	// (0 = none); the server derives the handler context from it so remote
	// work respects the caller's deadline. A relative duration — not an
	// absolute timestamp — so clock skew between hosts cannot shrink or
	// instantly expire the server-side budget (the propagated window only
	// ignores the request's own transit time, erring longer, and the
	// caller still enforces its exact deadline locally).
	TimeoutNanos int64
	// Flags carries kindChunk flags (flagFinal).
	Flags uint8
	// Window is the credit grant of a kindWindow frame, in bytes.
	Window uint32
	Body   []byte
}

// frameBufPool recycles the scratch buffers writeFrame composes frames in.
// Buffers that ballooned past pooledBufMax (a legacy oversized frame) are
// dropped rather than pinned in the pool forever.
var frameBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4<<10)
	return &b
}}

const pooledBufMax = 1 << 20

func writeFrame(w io.Writer, f *frame) error {
	// The header and body go out in one Write so a frame is atomic at the
	// conn boundary: fault-injecting wrappers (chaosnet) see whole frames
	// and a partial header can never interleave with another writer's view.
	bp := frameBufPool.Get().(*[]byte)
	out := append((*bp)[:0], make([]byte, frameHeader)...)
	out = appendFrameBody(out, f)
	defer func() {
		if cap(out) <= pooledBufMax {
			*bp = out[:0]
		}
		frameBufPool.Put(bp)
	}()
	n := len(out) - frameHeader
	if n > maxFrame {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(out[:4], uint32(n))
	binary.BigEndian.PutUint32(out[4:frameHeader], crc32.ChecksumIEEE(out[frameHeader:]))
	_, err := w.Write(out)
	return err
}

func readFrame(r io.Reader) (*frame, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(body); got != binary.BigEndian.Uint32(hdr[4:frameHeader]) {
		return nil, ErrFrameCorrupt
	}
	return parseFrameBody(body)
}

// NetProfile models the cluster interconnect (the paper uses a NetGear
// gigabit switch).
type NetProfile struct {
	RTT         time.Duration
	BytesPerSec int64
}

// GigabitLAN approximates a switched GbE LAN.
func GigabitLAN() NetProfile {
	return NetProfile{RTT: 120 * time.Microsecond, BytesPerSec: 110 << 20}
}

// cost returns the virtual time of moving n payload bytes one way plus half
// the RTT.
func (p NetProfile) cost(n int) time.Duration {
	d := p.RTT / 2
	if p.BytesPerSec > 0 {
		d += time.Duration(int64(n) * int64(time.Second) / p.BytesPerSec)
	}
	return d
}

// Handler serves one method: codec-tagged body in, codec-tagged body out.
// The context carries the calling side's deadline (when one was set).
type Handler func(ctx context.Context, body []byte) ([]byte, error)

// Server dispatches incoming frames to registered handlers.
type Server struct {
	// sem, when non-nil, bounds the handler goroutines running at once
	// across every connection (see WithMaxConcurrent). Immutable after
	// NewServer.
	sem chan struct{}

	// streamPeak is the high-water mark of bytes buffered by any single
	// inbound stream, across the server's lifetime. Benchmarks and tests
	// read it to prove a migration's receiver memory stays bounded by the
	// flow-control window, never the transfer size.
	streamPeak atomic.Int64

	mu             sync.Mutex
	handlers       map[string]Handler
	streamHandlers map[string]StreamHandler
	lns            []net.Listener
	conns          map[net.Conn]struct{}
	closed         bool
	wg             sync.WaitGroup
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithMaxConcurrent bounds the handler goroutines a server runs at once
// across all its connections. An arriving frame that finds the limit
// exhausted is answered immediately with perr.ErrOverloaded instead of
// spawning a handler — the transport-level backstop under application
// admission control (which sheds with context about queues and tenants;
// this guard only stops a flood of frames from exhausting goroutines and
// memory before the application ever sees them). Stream opens count
// against the same limit; a stream's chunks do not (the flow-control
// window already bounds them). n <= 0 leaves the server unbounded (the
// default).
func WithMaxConcurrent(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.sem = make(chan struct{}, n)
		}
	}
}

// NewServer returns an empty server.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		handlers:       make(map[string]Handler),
		streamHandlers: make(map[string]StreamHandler),
		conns:          make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Handle registers a raw handler for method.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// StreamBufferedPeak reports the most bytes any single inbound stream has
// had buffered at once — the receiver-side memory ceiling of chunked
// transfers.
func (s *Server) StreamBufferedPeak() int64 {
	return s.streamPeak.Load()
}

func (s *Server) noteStreamBuffered(n int64) {
	for {
		cur := s.streamPeak.Load()
		if n <= cur || s.streamPeak.CompareAndSwap(cur, n) {
			return
		}
	}
}

// HandleTyped registers a handler with typed request/response. Messages
// implementing the wire codec travel hand-rolled binary; the rest gob.
func HandleTyped[Req, Resp any](s *Server, method string, fn func(context.Context, Req) (Resp, error)) {
	s.Handle(method, func(ctx context.Context, body []byte) ([]byte, error) {
		var req Req
		if err := decodeBody(body, &req); err != nil {
			return nil, fmt.Errorf("rpc %s: decode request: %w", method, err)
		}
		resp, err := fn(ctx, req)
		if err != nil {
			return nil, err
		}
		out, err := encodeBody(&resp)
		if err != nil {
			return nil, fmt.Errorf("rpc %s: encode response: %w", method, err)
		}
		return out, nil
	})
}

// Serve accepts connections from ln until the server or listener closes.
// It returns after the accept loop ends; per-connection goroutines are
// tracked and joined by Close.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return
	}
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.trackConn(conn)
	}
}

// ServeConn serves a single pre-established connection (used with net.Pipe
// for in-process clusters).
func (s *Server) ServeConn(conn net.Conn) {
	s.trackConn(conn)
}

func (s *Server) trackConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		defer func() {
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			_ = conn.Close()
		}()
		s.connLoop(conn)
	}()
}

// serverConn is the per-connection state the reader loop shares with
// handler goroutines: the write lock serializing response, window and shed
// frames, and the registry of open inbound streams chunks are routed to.
type serverConn struct {
	srv  *Server
	conn net.Conn

	writeMu sync.Mutex

	mu      sync.Mutex
	streams map[uint64]*ServerStream
}

func (sc *serverConn) write(f *frame) error {
	sc.writeMu.Lock()
	defer sc.writeMu.Unlock()
	return writeFrame(sc.conn, f)
}

func (sc *serverConn) getStream(id uint64) *ServerStream {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.streams[id]
}

func (sc *serverConn) addStream(st *ServerStream) {
	sc.mu.Lock()
	sc.streams[st.id] = st
	sc.mu.Unlock()
}

func (sc *serverConn) removeStream(id uint64) {
	sc.mu.Lock()
	delete(sc.streams, id)
	sc.mu.Unlock()
}

// failAll tears every open stream down when the connection dies, waking
// handlers blocked in Next so the reqWG join in connLoop cannot deadlock.
func (sc *serverConn) failAll(err error) {
	sc.mu.Lock()
	sts := make([]*ServerStream, 0, len(sc.streams))
	for _, st := range sc.streams {
		sts = append(sts, st)
	}
	sc.streams = make(map[uint64]*ServerStream)
	sc.mu.Unlock()
	for _, st := range sts {
		st.fail(err)
		st.cancel()
	}
}

// shed answers a frame with the typed overload error without spawning a
// handler. The typed code crosses the wire, so clients treat it exactly
// like an application shed: retry after backoff, never a placement fault.
func (sc *serverConn) shed(id uint64) {
	shedErr := fmt.Errorf("rpc: server at concurrency limit %d: %w",
		cap(sc.srv.sem), perr.ErrOverloaded)
	_ = sc.write(&frame{Kind: kindResponse, ID: id,
		ErrMsg: shedErr.Error(), ErrCode: perr.CodeOf(shedErr)})
}

func (s *Server) connLoop(conn net.Conn) {
	sc := &serverConn{srv: s, conn: conn, streams: make(map[uint64]*ServerStream)}
	var reqWG sync.WaitGroup
	defer func() {
		sc.failAll(io.ErrUnexpectedEOF)
		reqWG.Wait()
	}()
	for {
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		switch f.Kind {
		case kindRequest:
			s.mu.Lock()
			h, ok := s.handlers[f.Method]
			s.mu.Unlock()
			if s.sem != nil {
				select {
				case s.sem <- struct{}{}:
				default:
					// Concurrency limit exhausted: shed on the reader
					// goroutine without spawning a handler.
					sc.shed(f.ID)
					continue
				}
			}
			reqWG.Add(1)
			go func(f *frame) {
				defer reqWG.Done()
				if s.sem != nil {
					defer func() { <-s.sem }()
				}
				ctx := context.Background()
				if f.TimeoutNanos > 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Duration(f.TimeoutNanos))
					defer cancel()
				}
				resp := &frame{Kind: kindResponse, ID: f.ID}
				if !ok {
					resp.ErrMsg = ErrNoSuchMethod.Error() + ": " + f.Method
				} else if body, err := h(ctx, f.Body); err != nil {
					resp.ErrMsg = err.Error()
					resp.ErrCode = perr.CodeOf(err)
				} else {
					resp.Body = body
				}
				_ = sc.write(resp)
			}(f)
		case kindStreamOpen:
			s.mu.Lock()
			h, ok := s.streamHandlers[f.Method]
			s.mu.Unlock()
			if s.sem != nil {
				select {
				case s.sem <- struct{}{}:
				default:
					sc.shed(f.ID)
					continue
				}
			}
			if !ok {
				// No stream registered and no stream created: chunks that
				// may already be in flight drop as unknown-stream frames.
				if s.sem != nil {
					<-s.sem
				}
				_ = sc.write(&frame{Kind: kindResponse, ID: f.ID,
					ErrMsg: ErrNoSuchMethod.Error() + ": " + f.Method})
				continue
			}
			// The stream and its context are created on the reader
			// goroutine, before any later frame for this id can arrive, so
			// a fast kindCancel can never race an unregistered stream.
			ctx, cancel := context.WithCancel(context.Background())
			if f.TimeoutNanos > 0 {
				ctx, cancel = context.WithTimeout(context.Background(), time.Duration(f.TimeoutNanos))
			}
			st := newServerStream(sc, f.ID, f.Body, ctx, cancel)
			sc.addStream(st)
			reqWG.Add(1)
			go func(f *frame, st *ServerStream) {
				defer reqWG.Done()
				if s.sem != nil {
					defer func() { <-s.sem }()
				}
				defer st.cancel()
				resp := &frame{Kind: kindResponse, ID: f.ID}
				if body, err := h(st.ctx, st.meta, st); err != nil {
					resp.ErrMsg = err.Error()
					resp.ErrCode = perr.CodeOf(err)
				} else {
					resp.Body = body
				}
				// Unregister before responding: once the client sees the
				// response it may reuse nothing, and any late chunks are
				// dropped as unknown-stream frames.
				sc.removeStream(f.ID)
				st.discard()
				_ = sc.write(resp)
			}(f, st)
		case kindChunk:
			st := sc.getStream(f.ID)
			if st == nil {
				continue // stream finished or cancelled; late chunk
			}
			if !st.push(f.Body, f.Flags&flagFinal != 0) {
				// The peer overran its flow-control window: protocol
				// violation, tear the connection (the defer fails all
				// streams and joins handlers).
				return
			}
		case kindCancel:
			if st := sc.getStream(f.ID); st != nil {
				sc.removeStream(f.ID)
				st.fail(ErrStreamCanceled)
				st.cancel()
			}
		default:
			// Unknown frame kind: a newer peer speaking a frame type this
			// build predates. Skipping it keeps the conn alive.
		}
	}
}

// Close stops the server: listeners and connections close, handler
// goroutines are joined.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := s.lns
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return nil
}

// Client is a multiplexing RPC client over one connection: concurrent
// calls and chunk streams interleave frame-by-frame, each routed by id in
// the reader loop. Safe for concurrent use.
type Client struct {
	conn    net.Conn
	clock   *vclock.Clock // optional virtual network cost
	profile NetProfile

	writeMu sync.Mutex
	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *frame
	streams map[uint64]*ClientStream
	closed  bool
	readErr error
	done    chan struct{}
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithVirtualNet charges each call's bytes and RTT to clock using profile.
func WithVirtualNet(clock *vclock.Clock, profile NetProfile) ClientOption {
	return func(c *Client) {
		c.clock = clock
		c.profile = profile
	}
}

// WithConnWrapper interposes wrap on the client's connection before the
// read loop starts — the seam fault-injecting transports (chaosnet) plug
// into, working identically over net.Pipe and TCP.
func WithConnWrapper(wrap func(net.Conn) net.Conn) ClientOption {
	return func(c *Client) {
		if wrap != nil {
			c.conn = wrap(c.conn)
		}
	}
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn, opts ...ClientOption) *Client {
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan *frame),
		streams: make(map[uint64]*ClientStream),
		done:    make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	go c.readLoop()
	return c
}

// Dial connects to a TCP server address.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	return DialContext(context.Background(), addr, opts...)
}

// DialContext connects to a TCP server address, honoring the context's
// deadline and cancellation during connection establishment — a dial
// toward a partitioned or black-holed address returns when the caller's
// budget expires instead of blocking for the kernel's connect timeout.
func DialContext(ctx context.Context, addr string, opts ...ClientOption) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc dial %s: %w", addr, err)
	}
	return NewClient(conn, opts...), nil
}

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		f, err := readFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			sts := make([]*ClientStream, 0, len(c.streams))
			for id, s := range c.streams {
				sts = append(sts, s)
				delete(c.streams, id)
			}
			c.closed = true
			c.mu.Unlock()
			for _, s := range sts {
				s.fail(fmt.Errorf("connection lost: %w", ErrClientClosed))
			}
			// Release the descriptor now: callers that observe Closed()
			// evict and redial, and nothing else would close this conn
			// (Close()'s already-closed branch returns early).
			_ = c.conn.Close()
			return
		}
		switch f.Kind {
		case kindResponse:
			c.mu.Lock()
			if ch, ok := c.pending[f.ID]; ok {
				delete(c.pending, f.ID)
				c.mu.Unlock()
				ch <- f
				continue
			}
			s := c.streams[f.ID]
			delete(c.streams, f.ID)
			c.mu.Unlock()
			if s != nil {
				s.finish(f)
			}
		case kindWindow:
			c.mu.Lock()
			s := c.streams[f.ID]
			c.mu.Unlock()
			if s != nil {
				s.grant(int(f.Window))
			}
		default:
			// Clients receive only responses and window grants today;
			// anything else is a newer peer's frame type. Skip it.
		}
	}
}

// writeFrameCtx writes one frame under the write lock, unblocking the
// write if ctx is cancelled or expires meanwhile (a stalled peer must not
// pin a caller past its deadline). context.AfterFunc arms the
// connection's write deadline only while *this* call holds the write
// lock, and the callback is joined (via fired) before the deadline is
// cleared, so it can never abort another call's healthy write; in the
// common case — ctx still live when the write returns — no goroutine runs
// at all. A write aborted mid-frame leaves a torn stream, so the
// connection is closed — it was wedged anyway.
func (c *Client) writeFrameCtx(ctx context.Context, req *frame) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if ctx.Done() == nil {
		return writeFrame(c.conn, req)
	}
	fired := make(chan struct{})
	stop := context.AfterFunc(ctx, func() {
		defer close(fired)
		_ = c.conn.SetWriteDeadline(time.Now())
	})
	err := writeFrame(c.conn, req)
	if !stop() {
		<-fired
		_ = c.conn.SetWriteDeadline(time.Time{})
	}
	if err != nil && ctx.Err() != nil {
		_ = c.conn.Close()
	}
	return err
}

// call performs a raw request/response exchange. A cancelled or expired
// context abandons the in-flight call immediately (the response, if it ever
// arrives, is dropped by the read loop; a write blocked on a stalled
// connection is unblocked via a write deadline).
func (c *Client) call(ctx context.Context, method string, body []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("rpc call %s: %w", method, perr.Ctx(err))
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *frame, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	req := &frame{Kind: kindRequest, ID: id, Method: method, Body: body}
	if dl, ok := ctx.Deadline(); ok {
		if remaining := time.Until(dl); remaining > 0 {
			req.TimeoutNanos = int64(remaining)
		}
	}
	err := c.writeFrameCtx(ctx, req)
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = perr.Ctx(ctxErr)
		}
		return nil, fmt.Errorf("rpc call %s: %w", method, err)
	}
	if c.clock != nil {
		c.clock.Advance(c.profile.cost(len(body)))
	}
	var resp *frame
	var ok bool
	select {
	case resp, ok = <-ch:
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc call %s: %w", method, perr.Ctx(ctx.Err()))
	}
	if !ok {
		return nil, fmt.Errorf("rpc call %s: connection lost: %w", method, ErrClientClosed)
	}
	if c.clock != nil {
		c.clock.Advance(c.profile.cost(len(resp.Body)))
	}
	if resp.ErrMsg != "" {
		return nil, perr.FromWire(resp.ErrCode, resp.ErrMsg)
	}
	return resp.Body, nil
}

// Call performs a typed request/response exchange: messages implementing
// the wire codec (MarshalWire/UnmarshalWire) travel hand-rolled binary,
// anything else gob — the codec byte in the body keeps both decodable on
// the same connection. The context's deadline travels with the request and
// its cancellation abandons the call.
func Call[Req, Resp any](ctx context.Context, c *Client, method string, req Req) (Resp, error) {
	var resp Resp
	body, err := encodeBody(&req)
	if err != nil {
		return resp, fmt.Errorf("rpc %s: encode request: %w", method, err)
	}
	out, err := c.call(ctx, method, body)
	if err != nil {
		return resp, err
	}
	if err := decodeBody(out, &resp); err != nil {
		return resp, fmt.Errorf("rpc %s: decode response: %w", method, err)
	}
	return resp, nil
}

// Closed reports whether the client can no longer issue calls — torn down
// locally, connection lost, or aborted by a cancelled write. Connection
// caches use this to evict and redial instead of returning a dead client
// forever.
func (c *Client) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Close tears the client down and waits for the reader to exit.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}

// Pipe returns a connected client/server conn pair for in-process clusters.
func Pipe() (clientConn, serverConn net.Conn) {
	return net.Pipe()
}
