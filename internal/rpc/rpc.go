package rpc

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"propeller/internal/perr"
	"propeller/internal/vclock"
)

// Errors returned by the RPC layer.
var (
	ErrClientClosed  = errors.New("rpc: client closed")
	ErrServerClosed  = errors.New("rpc: server closed")
	ErrNoSuchMethod  = errors.New("rpc: no such method")
	ErrFrameTooLarge = errors.New("rpc: frame exceeds limit")
	ErrFrameCorrupt  = errors.New("rpc: frame checksum mismatch")
)

// maxFrame bounds a single message (64 MiB).
const maxFrame = 64 << 20

// frameHeader is the wire prefix of every frame: 4-byte big-endian body
// length + 4-byte CRC32 of the body. The checksum is what makes a
// corrupted frame tear the connection instead of half-applying: without
// it a flipped byte can still gob-decode into a *different valid*
// request, and the server would ack work the caller never sent.
const frameHeader = 8

type frame struct {
	ID     uint64
	Method string
	IsResp bool
	ErrMsg string
	// ErrCode is the perr taxonomy code of ErrMsg, so errors.Is keeps
	// working across the wire.
	ErrCode uint8
	// TimeoutNanos is the caller's remaining context budget at send time
	// (0 = none); the server derives the handler context from it so remote
	// work respects the caller's deadline. A relative duration — not an
	// absolute timestamp — so clock skew between hosts cannot shrink or
	// instantly expire the server-side budget (the propagated window only
	// ignores the request's own transit time, erring longer, and the
	// caller still enforces its exact deadline locally).
	TimeoutNanos int64
	Body         []byte
}

func writeFrame(w io.Writer, f *frame) error {
	// The header and body go out in one Write so a frame is atomic at the
	// conn boundary: fault-injecting wrappers (chaosnet) see whole frames
	// and a partial header can never interleave with another writer's view.
	var buf bytes.Buffer
	buf.Write(make([]byte, frameHeader))
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return fmt.Errorf("rpc encode: %w", err)
	}
	n := buf.Len() - frameHeader
	if n > maxFrame {
		return ErrFrameTooLarge
	}
	out := buf.Bytes()
	binary.BigEndian.PutUint32(out[:4], uint32(n))
	binary.BigEndian.PutUint32(out[4:frameHeader], crc32.ChecksumIEEE(out[frameHeader:]))
	_, err := w.Write(out)
	return err
}

func readFrame(r io.Reader) (*frame, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(body); got != binary.BigEndian.Uint32(hdr[4:frameHeader]) {
		return nil, ErrFrameCorrupt
	}
	var f frame
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&f); err != nil {
		return nil, fmt.Errorf("rpc decode: %w", err)
	}
	return &f, nil
}

// NetProfile models the cluster interconnect (the paper uses a NetGear
// gigabit switch).
type NetProfile struct {
	RTT         time.Duration
	BytesPerSec int64
}

// GigabitLAN approximates a switched GbE LAN.
func GigabitLAN() NetProfile {
	return NetProfile{RTT: 120 * time.Microsecond, BytesPerSec: 110 << 20}
}

// cost returns the virtual time of moving n payload bytes one way plus half
// the RTT.
func (p NetProfile) cost(n int) time.Duration {
	d := p.RTT / 2
	if p.BytesPerSec > 0 {
		d += time.Duration(int64(n) * int64(time.Second) / p.BytesPerSec)
	}
	return d
}

// Handler serves one method: raw gob body in, raw gob body out. The context
// carries the calling side's deadline (when one was set).
type Handler func(ctx context.Context, body []byte) ([]byte, error)

// Server dispatches incoming frames to registered handlers.
type Server struct {
	// sem, when non-nil, bounds the handler goroutines running at once
	// across every connection (see WithMaxConcurrent). Immutable after
	// NewServer.
	sem chan struct{}

	mu       sync.Mutex
	handlers map[string]Handler
	lns      []net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithMaxConcurrent bounds the handler goroutines a server runs at once
// across all its connections. An arriving frame that finds the limit
// exhausted is answered immediately with perr.ErrOverloaded instead of
// spawning a handler — the transport-level backstop under application
// admission control (which sheds with context about queues and tenants;
// this guard only stops a flood of frames from exhausting goroutines and
// memory before the application ever sees them). n <= 0 leaves the server
// unbounded (the default).
func WithMaxConcurrent(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.sem = make(chan struct{}, n)
		}
	}
}

// NewServer returns an empty server.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Handle registers a raw handler for method.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// HandleTyped registers a handler with typed request/response, gob-encoded.
func HandleTyped[Req, Resp any](s *Server, method string, fn func(context.Context, Req) (Resp, error)) {
	s.Handle(method, func(ctx context.Context, body []byte) ([]byte, error) {
		var req Req
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&req); err != nil {
			return nil, fmt.Errorf("rpc %s: decode request: %w", method, err)
		}
		resp, err := fn(ctx, req)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&resp); err != nil {
			return nil, fmt.Errorf("rpc %s: encode response: %w", method, err)
		}
		return buf.Bytes(), nil
	})
}

// Serve accepts connections from ln until the server or listener closes.
// It returns after the accept loop ends; per-connection goroutines are
// tracked and joined by Close.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return
	}
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.trackConn(conn)
	}
}

// ServeConn serves a single pre-established connection (used with net.Pipe
// for in-process clusters).
func (s *Server) ServeConn(conn net.Conn) {
	s.trackConn(conn)
}

func (s *Server) trackConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		defer func() {
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			_ = conn.Close()
		}()
		s.connLoop(conn)
	}()
}

func (s *Server) connLoop(conn net.Conn) {
	var writeMu sync.Mutex
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		s.mu.Lock()
		h, ok := s.handlers[f.Method]
		s.mu.Unlock()
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
			default:
				// Concurrency limit exhausted: shed on the reader goroutine
				// without spawning a handler. The typed code crosses the
				// wire, so clients treat it exactly like an application
				// shed: retry after backoff, never a placement fault.
				shedErr := fmt.Errorf("rpc: server at concurrency limit %d: %w",
					cap(s.sem), perr.ErrOverloaded)
				resp := &frame{ID: f.ID, Method: f.Method, IsResp: true,
					ErrMsg: shedErr.Error(), ErrCode: perr.CodeOf(shedErr)}
				writeMu.Lock()
				_ = writeFrame(conn, resp)
				writeMu.Unlock()
				continue
			}
		}
		reqWG.Add(1)
		go func(f *frame) {
			defer reqWG.Done()
			if s.sem != nil {
				defer func() { <-s.sem }()
			}
			ctx := context.Background()
			if f.TimeoutNanos > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(f.TimeoutNanos))
				defer cancel()
			}
			resp := &frame{ID: f.ID, Method: f.Method, IsResp: true}
			if !ok {
				resp.ErrMsg = ErrNoSuchMethod.Error() + ": " + f.Method
			} else if body, err := h(ctx, f.Body); err != nil {
				resp.ErrMsg = err.Error()
				resp.ErrCode = perr.CodeOf(err)
			} else {
				resp.Body = body
			}
			writeMu.Lock()
			defer writeMu.Unlock()
			_ = writeFrame(conn, resp)
		}(f)
	}
}

// Close stops the server: listeners and connections close, handler
// goroutines are joined.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := s.lns
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return nil
}

// Client is a multiplexing RPC client over one connection. Safe for
// concurrent Call use.
type Client struct {
	conn    net.Conn
	clock   *vclock.Clock // optional virtual network cost
	profile NetProfile

	writeMu sync.Mutex
	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *frame
	closed  bool
	readErr error
	done    chan struct{}
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithVirtualNet charges each call's bytes and RTT to clock using profile.
func WithVirtualNet(clock *vclock.Clock, profile NetProfile) ClientOption {
	return func(c *Client) {
		c.clock = clock
		c.profile = profile
	}
}

// WithConnWrapper interposes wrap on the client's connection before the
// read loop starts — the seam fault-injecting transports (chaosnet) plug
// into, working identically over net.Pipe and TCP.
func WithConnWrapper(wrap func(net.Conn) net.Conn) ClientOption {
	return func(c *Client) {
		if wrap != nil {
			c.conn = wrap(c.conn)
		}
	}
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn, opts ...ClientOption) *Client {
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan *frame),
		done:    make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	go c.readLoop()
	return c
}

// Dial connects to a TCP server address.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	return DialContext(context.Background(), addr, opts...)
}

// DialContext connects to a TCP server address, honoring the context's
// deadline and cancellation during connection establishment — a dial
// toward a partitioned or black-holed address returns when the caller's
// budget expires instead of blocking for the kernel's connect timeout.
func DialContext(ctx context.Context, addr string, opts ...ClientOption) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc dial %s: %w", addr, err)
	}
	return NewClient(conn, opts...), nil
}

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		f, err := readFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.closed = true
			c.mu.Unlock()
			// Release the descriptor now: callers that observe Closed()
			// evict and redial, and nothing else would close this conn
			// (Close()'s already-closed branch returns early).
			_ = c.conn.Close()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ID]
		if ok {
			delete(c.pending, f.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// writeFrameCtx writes one frame under the write lock, unblocking the
// write if ctx is cancelled or expires meanwhile (a stalled peer must not
// pin a caller past its deadline). context.AfterFunc arms the
// connection's write deadline only while *this* call holds the write
// lock, and the callback is joined (via fired) before the deadline is
// cleared, so it can never abort another call's healthy write; in the
// common case — ctx still live when the write returns — no goroutine runs
// at all. A write aborted mid-frame leaves a torn stream, so the
// connection is closed — it was wedged anyway.
func (c *Client) writeFrameCtx(ctx context.Context, req *frame) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if ctx.Done() == nil {
		return writeFrame(c.conn, req)
	}
	fired := make(chan struct{})
	stop := context.AfterFunc(ctx, func() {
		defer close(fired)
		_ = c.conn.SetWriteDeadline(time.Now())
	})
	err := writeFrame(c.conn, req)
	if !stop() {
		<-fired
		_ = c.conn.SetWriteDeadline(time.Time{})
	}
	if err != nil && ctx.Err() != nil {
		_ = c.conn.Close()
	}
	return err
}

// call performs a raw request/response exchange. A cancelled or expired
// context abandons the in-flight call immediately (the response, if it ever
// arrives, is dropped by the read loop; a write blocked on a stalled
// connection is unblocked via a write deadline).
func (c *Client) call(ctx context.Context, method string, body []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("rpc call %s: %w", method, perr.Ctx(err))
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *frame, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	req := &frame{ID: id, Method: method, Body: body}
	if dl, ok := ctx.Deadline(); ok {
		if remaining := time.Until(dl); remaining > 0 {
			req.TimeoutNanos = int64(remaining)
		}
	}
	err := c.writeFrameCtx(ctx, req)
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = perr.Ctx(ctxErr)
		}
		return nil, fmt.Errorf("rpc call %s: %w", method, err)
	}
	if c.clock != nil {
		c.clock.Advance(c.profile.cost(len(body)))
	}
	var resp *frame
	var ok bool
	select {
	case resp, ok = <-ch:
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc call %s: %w", method, perr.Ctx(ctx.Err()))
	}
	if !ok {
		return nil, fmt.Errorf("rpc call %s: connection lost: %w", method, ErrClientClosed)
	}
	if c.clock != nil {
		c.clock.Advance(c.profile.cost(len(resp.Body)))
	}
	if resp.ErrMsg != "" {
		return nil, perr.FromWire(resp.ErrCode, resp.ErrMsg)
	}
	return resp.Body, nil
}

// Call performs a typed request/response exchange: req is gob-encoded, the
// response is decoded into resp (a non-nil pointer). The context's deadline
// travels with the request and its cancellation abandons the call.
func Call[Req, Resp any](ctx context.Context, c *Client, method string, req Req) (Resp, error) {
	var resp Resp
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
		return resp, fmt.Errorf("rpc %s: encode request: %w", method, err)
	}
	body, err := c.call(ctx, method, buf.Bytes())
	if err != nil {
		return resp, err
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&resp); err != nil {
		return resp, fmt.Errorf("rpc %s: decode response: %w", method, err)
	}
	return resp, nil
}

// Closed reports whether the client can no longer issue calls — torn down
// locally, connection lost, or aborted by a cancelled write. Connection
// caches use this to evict and redial instead of returning a dead client
// forever.
func (c *Client) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Close tears the client down and waits for the reader to exit.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}

// Pipe returns a connected client/server conn pair for in-process clusters.
func Pipe() (clientConn, serverConn net.Conn) {
	return net.Pipe()
}
