// Package rpc is the message layer of the Propeller cluster: a minimal
// method-dispatch RPC over net.Conn with gob-encoded bodies.
//
// It supports both real transports (TCP via net.Listen, in-process via
// net.Pipe) and an optional virtual network cost model so cluster
// experiments charge GbE-like latency to the simulated clock regardless of
// the physical transport.
//
// The layer is deliberately small: length-prefixed frames, one goroutine per
// server connection, a multiplexing client safe for concurrent Call use —
// the shape of the paper's "local RPC service" and node-to-node messaging.
//
// Servers register handlers with HandleTyped (a generic adapter that
// gob-decodes the request and encodes the response); clients invoke them
// with the generic Call, matching requests to responses by sequence number
// so many goroutines can share one connection.
package rpc
