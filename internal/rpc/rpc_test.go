package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"propeller/internal/perr"
	"propeller/internal/vclock"
)

type echoReq struct {
	Msg string
	N   int
}

type echoResp struct {
	Msg string
	N   int
}

func startPipeServer(t *testing.T, s *Server) *Client {
	t.Helper()
	cc, sc := Pipe()
	s.ServeConn(sc)
	c := NewClient(cc)
	t.Cleanup(func() {
		_ = c.Close()
		_ = s.Close()
	})
	return c
}

func TestTypedCallOverPipe(t *testing.T) {
	s := NewServer()
	HandleTyped(s, "echo", func(_ context.Context, r echoReq) (echoResp, error) {
		return echoResp{Msg: r.Msg + "!", N: r.N * 2}, nil
	})
	c := startPipeServer(t, s)
	resp, err := Call[echoReq, echoResp](context.Background(), c, "echo", echoReq{Msg: "hi", N: 21})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "hi!" || resp.N != 42 {
		t.Errorf("resp = %+v", resp)
	}
}

func TestCallOverTCP(t *testing.T) {
	s := NewServer()
	HandleTyped(s, "echo", func(_ context.Context, r echoReq) (echoResp, error) {
		return echoResp{Msg: r.Msg, N: r.N}, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close() //nolint:errcheck

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	resp, err := Call[echoReq, echoResp](context.Background(), c, "echo", echoReq{Msg: "tcp", N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "tcp" {
		t.Errorf("resp = %+v", resp)
	}
}

func TestHandlerError(t *testing.T) {
	s := NewServer()
	HandleTyped(s, "fail", func(_ context.Context, r echoReq) (echoResp, error) {
		return echoResp{}, errors.New("deliberate failure")
	})
	c := startPipeServer(t, s)
	_, err := Call[echoReq, echoResp](context.Background(), c, "fail", echoReq{})
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("err = %v, want handler error", err)
	}
}

func TestTaxonomyErrorsSurviveTheWire(t *testing.T) {
	s := NewServer()
	HandleTyped(s, "notfound", func(_ context.Context, r echoReq) (echoResp, error) {
		return echoResp{}, fmt.Errorf("%q: %w", r.Msg, perr.ErrIndexNotFound)
	})
	HandleTyped(s, "badquery", func(_ context.Context, r echoReq) (echoResp, error) {
		return echoResp{}, fmt.Errorf("parse: %w", perr.ErrBadQuery)
	})
	c := startPipeServer(t, s)
	_, err := Call[echoReq, echoResp](context.Background(), c, "notfound", echoReq{Msg: "ghost"})
	if !errors.Is(err, perr.ErrIndexNotFound) {
		t.Errorf("err = %v, want ErrIndexNotFound across the wire", err)
	}
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("remote message lost: %v", err)
	}
	_, err = Call[echoReq, echoResp](context.Background(), c, "badquery", echoReq{})
	if !errors.Is(err, perr.ErrBadQuery) {
		t.Errorf("err = %v, want ErrBadQuery across the wire", err)
	}
}

func TestCallCancellation(t *testing.T) {
	s := NewServer()
	release := make(chan struct{})
	HandleTyped(s, "hang", func(_ context.Context, r echoReq) (echoResp, error) {
		<-release
		return echoResp{}, nil
	})
	defer close(release)
	c := startPipeServer(t, s)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Call[echoReq, echoResp](ctx, c, "hang", echoReq{})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled call never returned")
	}

	// A pre-cancelled context fails before any I/O.
	if _, err := Call[echoReq, echoResp](ctx, c, "hang", echoReq{}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled call err = %v", err)
	}
}

func TestCallDeadlineMapsToTimeout(t *testing.T) {
	s := NewServer()
	release := make(chan struct{})
	HandleTyped(s, "hang", func(ctx context.Context, r echoReq) (echoResp, error) {
		// The server sees the caller's (relative) budget too.
		if _, ok := ctx.Deadline(); !ok {
			t.Error("handler context should carry the caller deadline")
		}
		select {
		case <-release:
			return echoResp{}, nil
		case <-ctx.Done():
			// Either side may notice expiry first; a remote timeout must
			// map to the same taxonomy as a local one.
			return echoResp{}, perr.Ctx(ctx.Err())
		}
	})
	defer close(release)
	c := startPipeServer(t, s)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := Call[echoReq, echoResp](ctx, c, "hang", echoReq{})
	if !errors.Is(err, perr.ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded in chain", err)
	}
}

func TestCancelUnblocksStalledWrite(t *testing.T) {
	// A pipe with no reader: writeFrame blocks until the deadline watcher
	// unblocks it. The call must return by its deadline, not hang.
	cc, sc := Pipe()
	defer sc.Close() //nolint:errcheck
	c := NewClient(cc)
	defer c.Close() //nolint:errcheck

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := Call[echoReq, echoResp](ctx, c, "stalled", echoReq{Msg: strings.Repeat("x", 1<<16)})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, perr.ErrTimeout) {
			t.Errorf("stalled write err = %v, want ErrTimeout", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call blocked past its deadline on a stalled connection")
	}
}

func TestNoSuchMethod(t *testing.T) {
	s := NewServer()
	c := startPipeServer(t, s)
	_, err := Call[echoReq, echoResp](context.Background(), c, "missing", echoReq{})
	if err == nil || !strings.Contains(err.Error(), "no such method") {
		t.Errorf("err = %v, want no-such-method", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	s := NewServer()
	HandleTyped(s, "double", func(_ context.Context, r echoReq) (echoResp, error) {
		time.Sleep(time.Millisecond) // force interleaving
		return echoResp{N: r.N * 2}, nil
	})
	c := startPipeServer(t, s)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			resp, err := Call[echoReq, echoResp](context.Background(), c, "double", echoReq{N: n})
			if err != nil {
				errs <- err
				return
			}
			if resp.N != n*2 {
				errs <- errors.New("wrong response routing")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestClientClosedCallFails(t *testing.T) {
	s := NewServer()
	cc, sc := Pipe()
	s.ServeConn(sc)
	c := NewClient(cc)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	if _, err := Call[echoReq, echoResp](context.Background(), c, "x", echoReq{}); err == nil {
		t.Error("call on closed client should fail")
	}
}

func TestServerCloseUnblocksClient(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	HandleTyped(s, "slow", func(_ context.Context, r echoReq) (echoResp, error) {
		<-block
		return echoResp{}, nil
	})
	cc, sc := Pipe()
	s.ServeConn(sc)
	c := NewClient(cc)
	defer c.Close() //nolint:errcheck

	done := make(chan error, 1)
	go func() {
		_, err := Call[echoReq, echoResp](context.Background(), c, "slow", echoReq{})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(block) // let the handler finish before tearing down
	select {
	case err := <-done:
		if err != nil {
			t.Logf("call ended with %v (acceptable on teardown)", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call never completed")
	}
	_ = s.Close()
}

func TestVirtualNetChargesClock(t *testing.T) {
	s := NewServer()
	HandleTyped(s, "echo", func(_ context.Context, r echoReq) (echoResp, error) {
		return echoResp{Msg: r.Msg}, nil
	})
	cc, sc := Pipe()
	s.ServeConn(sc)
	clk := vclock.New()
	c := NewClient(cc, WithVirtualNet(clk, GigabitLAN()))
	defer func() { _ = c.Close(); _ = s.Close() }()

	if _, err := Call[echoReq, echoResp](context.Background(), c, "echo", echoReq{Msg: strings.Repeat("x", 1<<20)}); err != nil {
		t.Fatal(err)
	}
	if clk.Now() < GigabitLAN().RTT {
		t.Errorf("clock advanced %v, want at least one RTT", clk.Now())
	}
	// A 1 MiB payload over ~110MB/s should cost on the order of 10ms.
	if clk.Now() > 100*time.Millisecond {
		t.Errorf("virtual cost %v implausibly large", clk.Now())
	}
}

func TestServerDoubleCloseAndLateConn(t *testing.T) {
	s := NewServer()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Conns offered after close are rejected quietly.
	cc, sc := Pipe()
	s.ServeConn(sc)
	_ = cc.Close()
}

// TestServerOverloadConcurrencyLimit proves the transport backstop: with
// WithMaxConcurrent(n), frame n+1 is shed with a typed ErrOverloaded that
// survives the wire, and capacity freed by a finishing handler re-admits.
func TestServerOverloadConcurrencyLimit(t *testing.T) {
	s := NewServer(WithMaxConcurrent(2))
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	HandleTyped(s, "hold", func(ctx context.Context, req echoReq) (echoResp, error) {
		started <- struct{}{}
		<-release
		return echoResp{Msg: req.Msg}, nil
	})
	c := startPipeServer(t, s)

	type result struct {
		resp echoResp
		err  error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			r, err := Call[echoReq, echoResp](context.Background(), c, "hold", echoReq{Msg: "slow"})
			results <- result{r, err}
		}(i)
	}
	<-started
	<-started // both slots held

	// The third frame finds the limit exhausted and is shed immediately —
	// no handler runs, and the error is errors.Is-stable across the wire.
	_, err := Call[echoReq, echoResp](context.Background(), c, "hold", echoReq{Msg: "shed"})
	if !errors.Is(err, perr.ErrOverloaded) {
		t.Fatalf("call over limit = %v, want ErrOverloaded", err)
	}
	if errors.Is(err, perr.ErrStalePlacement) {
		t.Error("overload must not alias stale placement")
	}

	close(release)
	for i := 0; i < 2; i++ {
		if r := <-results; r.err != nil {
			t.Fatalf("held call failed: %v", r.err)
		}
	}
	// Freed capacity re-admits. The slot is released just after the held
	// response is written, so allow the tiny race a few retries — which is
	// exactly the client contract for ErrOverloaded anyway.
	for i := 0; ; i++ {
		_, err := Call[echoReq, echoResp](context.Background(), c, "hold", echoReq{Msg: "again"})
		if err == nil {
			break
		}
		if !errors.Is(err, perr.ErrOverloaded) || i > 100 {
			t.Fatalf("call after drain: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReadFrameBounded feeds a length prefix far beyond maxFrame and
// asserts the reader refuses with the typed error before allocating: a
// corrupt (or hostile) prefix must never drive an unbounded allocation.
func TestReadFrameBounded(t *testing.T) {
	var hdr [frameHeader]byte
	writeLen := func(b *[frameHeader]byte, n uint32) {
		b[0], b[1], b[2], b[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	}
	writeLen(&hdr, 0xFFFFFFFF) // ~4 GiB claim
	_, err := readFrame(strings.NewReader(string(hdr[:])))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("readFrame with 0xFFFFFFFF prefix: err = %v, want ErrFrameTooLarge", err)
	}
	// Just over the limit is refused too; just a header under it merely
	// hits EOF on the missing body (the bound, not the decode, is under
	// test).
	writeLen(&hdr, maxFrame+1)
	if _, err := readFrame(strings.NewReader(string(hdr[:]))); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("readFrame just over maxFrame: err = %v, want ErrFrameTooLarge", err)
	}
	writeLen(&hdr, 16)
	if _, err := readFrame(strings.NewReader(string(hdr[:]))); errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("readFrame under maxFrame: err = %v, want a short-read error, not ErrFrameTooLarge", err)
	}
}

// TestReadFrameChecksum proves the integrity property the corruption
// fault model rests on: a frame with any body byte flipped is refused
// with the typed checksum error — it can never gob-decode into a
// different valid message and get acked as work the caller never sent.
func TestReadFrameChecksum(t *testing.T) {
	var buf strings.Builder
	if err := writeFrame(&buf, &frame{ID: 7, Method: "m", Body: []byte("payload")}); err != nil {
		t.Fatal(err)
	}
	raw := []byte(buf.String())
	for i := frameHeader; i < len(raw); i++ {
		flipped := append([]byte(nil), raw...)
		flipped[i] ^= 0x01
		if _, err := readFrame(strings.NewReader(string(flipped))); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("readFrame with body byte %d flipped: err = %v, want ErrFrameCorrupt", i, err)
		}
	}
	// The pristine frame still round-trips.
	f, err := readFrame(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != 7 || f.Method != "m" || string(f.Body) != "payload" {
		t.Fatalf("round-trip = %+v", f)
	}
}

// TestWriteFrameTooLarge mirrors the read-side bound on the write side.
func TestWriteFrameTooLarge(t *testing.T) {
	var sink strings.Builder
	f := &frame{Method: "big", Body: make([]byte, maxFrame+1)}
	if err := writeFrame(&sink, f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("writeFrame oversized: err = %v, want ErrFrameTooLarge", err)
	}
}

// TestDialContextCancelled asserts a dial honors an already-expired
// context instead of attempting connection establishment.
func TestDialContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialContext(ctx, "127.0.0.1:1", nil...); err == nil {
		t.Fatal("DialContext with cancelled context succeeded")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("DialContext err = %v, want context.Canceled", err)
	}
}

// connWrapCounter counts frames crossing a wrapped conn.
type connWrapCounter struct {
	net.Conn
	writes *int
	mu     *sync.Mutex
}

func (c connWrapCounter) Write(p []byte) (int, error) {
	c.mu.Lock()
	*c.writes++
	c.mu.Unlock()
	return c.Conn.Write(p)
}

// TestWithConnWrapper asserts the wrapper sees every outbound frame — the
// seam chaos transports rely on — and that a frame is one Write.
func TestWithConnWrapper(t *testing.T) {
	s := NewServer()
	HandleTyped(s, "echo", func(_ context.Context, r echoReq) (echoResp, error) {
		return echoResp(r), nil
	})
	cc, sc := Pipe()
	s.ServeConn(sc)
	var mu sync.Mutex
	writes := 0
	c := NewClient(cc, WithConnWrapper(func(conn net.Conn) net.Conn {
		return connWrapCounter{Conn: conn, writes: &writes, mu: &mu}
	}))
	defer func() { _ = c.Close(); _ = s.Close() }()
	const calls = 3
	for i := 0; i < calls; i++ {
		if _, err := Call[echoReq, echoResp](context.Background(), c, "echo", echoReq{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if writes != calls {
		t.Fatalf("wrapper saw %d writes for %d calls; writeFrame must issue one Write per frame", writes, calls)
	}
}
