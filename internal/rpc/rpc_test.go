package rpc

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"propeller/internal/vclock"
)

type echoReq struct {
	Msg string
	N   int
}

type echoResp struct {
	Msg string
	N   int
}

func startPipeServer(t *testing.T, s *Server) *Client {
	t.Helper()
	cc, sc := Pipe()
	s.ServeConn(sc)
	c := NewClient(cc)
	t.Cleanup(func() {
		_ = c.Close()
		_ = s.Close()
	})
	return c
}

func TestTypedCallOverPipe(t *testing.T) {
	s := NewServer()
	HandleTyped(s, "echo", func(r echoReq) (echoResp, error) {
		return echoResp{Msg: r.Msg + "!", N: r.N * 2}, nil
	})
	c := startPipeServer(t, s)
	resp, err := Call[echoReq, echoResp](c, "echo", echoReq{Msg: "hi", N: 21})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "hi!" || resp.N != 42 {
		t.Errorf("resp = %+v", resp)
	}
}

func TestCallOverTCP(t *testing.T) {
	s := NewServer()
	HandleTyped(s, "echo", func(r echoReq) (echoResp, error) {
		return echoResp{Msg: r.Msg, N: r.N}, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close() //nolint:errcheck

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	resp, err := Call[echoReq, echoResp](c, "echo", echoReq{Msg: "tcp", N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "tcp" {
		t.Errorf("resp = %+v", resp)
	}
}

func TestHandlerError(t *testing.T) {
	s := NewServer()
	HandleTyped(s, "fail", func(r echoReq) (echoResp, error) {
		return echoResp{}, errors.New("deliberate failure")
	})
	c := startPipeServer(t, s)
	_, err := Call[echoReq, echoResp](c, "fail", echoReq{})
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("err = %v, want handler error", err)
	}
}

func TestNoSuchMethod(t *testing.T) {
	s := NewServer()
	c := startPipeServer(t, s)
	_, err := Call[echoReq, echoResp](c, "missing", echoReq{})
	if err == nil || !strings.Contains(err.Error(), "no such method") {
		t.Errorf("err = %v, want no-such-method", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	s := NewServer()
	HandleTyped(s, "double", func(r echoReq) (echoResp, error) {
		time.Sleep(time.Millisecond) // force interleaving
		return echoResp{N: r.N * 2}, nil
	})
	c := startPipeServer(t, s)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			resp, err := Call[echoReq, echoResp](c, "double", echoReq{N: n})
			if err != nil {
				errs <- err
				return
			}
			if resp.N != n*2 {
				errs <- errors.New("wrong response routing")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestClientClosedCallFails(t *testing.T) {
	s := NewServer()
	cc, sc := Pipe()
	s.ServeConn(sc)
	c := NewClient(cc)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	if _, err := Call[echoReq, echoResp](c, "x", echoReq{}); err == nil {
		t.Error("call on closed client should fail")
	}
}

func TestServerCloseUnblocksClient(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	HandleTyped(s, "slow", func(r echoReq) (echoResp, error) {
		<-block
		return echoResp{}, nil
	})
	cc, sc := Pipe()
	s.ServeConn(sc)
	c := NewClient(cc)
	defer c.Close() //nolint:errcheck

	done := make(chan error, 1)
	go func() {
		_, err := Call[echoReq, echoResp](c, "slow", echoReq{})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(block) // let the handler finish before tearing down
	select {
	case err := <-done:
		if err != nil {
			t.Logf("call ended with %v (acceptable on teardown)", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call never completed")
	}
	_ = s.Close()
}

func TestVirtualNetChargesClock(t *testing.T) {
	s := NewServer()
	HandleTyped(s, "echo", func(r echoReq) (echoResp, error) {
		return echoResp{Msg: r.Msg}, nil
	})
	cc, sc := Pipe()
	s.ServeConn(sc)
	clk := vclock.New()
	c := NewClient(cc, WithVirtualNet(clk, GigabitLAN()))
	defer func() { _ = c.Close(); _ = s.Close() }()

	if _, err := Call[echoReq, echoResp](c, "echo", echoReq{Msg: strings.Repeat("x", 1<<20)}); err != nil {
		t.Fatal(err)
	}
	if clk.Now() < GigabitLAN().RTT {
		t.Errorf("clock advanced %v, want at least one RTT", clk.Now())
	}
	// A 1 MiB payload over ~110MB/s should cost on the order of 10ms.
	if clk.Now() > 100*time.Millisecond {
		t.Errorf("virtual cost %v implausibly large", clk.Now())
	}
}

func TestServerDoubleCloseAndLateConn(t *testing.T) {
	s := NewServer()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Conns offered after close are rejected quietly.
	cc, sc := Pipe()
	s.ServeConn(sc)
	_ = cc.Close()
}
