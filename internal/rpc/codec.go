package rpc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Frame kinds. The kind byte is the first byte inside the CRC envelope and
// versions the frame layout: a reader that meets a kind it does not know
// ignores the frame (forward compatibility) instead of mis-parsing it.
const (
	// kindRequest is a unary request: id, method, timeout, body.
	kindRequest uint8 = 0x01
	// kindResponse terminates a request or a stream: id, error, body.
	kindResponse uint8 = 0x02
	// kindStreamOpen opens a client→server chunk stream: id, method,
	// timeout, metadata body.
	kindStreamOpen uint8 = 0x03
	// kindChunk carries one bounded payload chunk on an open stream.
	// flagFinal marks the sender's half-close.
	kindChunk uint8 = 0x04
	// kindWindow returns flow-control credit (consumed bytes) to a
	// stream's sender.
	kindWindow uint8 = 0x05
	// kindCancel abandons a stream from the client side.
	kindCancel uint8 = 0x06
)

// flagFinal on a kindChunk frame marks the sender's half-close: no more
// chunks follow and the server handler's Next drains to io.EOF.
const flagFinal uint8 = 0x01

// errMalformedFrame reports a frame body that passed the CRC but does not
// parse — a protocol bug or version skew, never random corruption (the
// checksum catches that first).
var errMalformedFrame = errors.New("rpc: malformed frame")

// appendFrameBody appends the binary encoding of f (everything inside the
// CRC envelope) to dst. A zero Kind encodes as kindRequest so existing
// construction sites — and tests — that build request frames field-by-field
// keep working.
func appendFrameBody(dst []byte, f *frame) []byte {
	k := f.Kind
	if k == 0 {
		k = kindRequest
	}
	dst = append(dst, k)
	dst = binary.AppendUvarint(dst, f.ID)
	switch k {
	case kindRequest, kindStreamOpen:
		dst = binary.AppendUvarint(dst, uint64(len(f.Method)))
		dst = append(dst, f.Method...)
		dst = binary.AppendUvarint(dst, uint64(f.TimeoutNanos))
		dst = append(dst, f.Body...)
	case kindResponse:
		dst = append(dst, f.ErrCode)
		dst = binary.AppendUvarint(dst, uint64(len(f.ErrMsg)))
		dst = append(dst, f.ErrMsg...)
		dst = append(dst, f.Body...)
	case kindChunk:
		dst = append(dst, f.Flags)
		dst = append(dst, f.Body...)
	case kindWindow:
		dst = binary.AppendUvarint(dst, uint64(f.Window))
	case kindCancel:
	}
	return dst
}

// parseFrameBody decodes a frame body produced by appendFrameBody. The
// returned frame's Body aliases b, which readFrame allocates per frame, so
// no reuse hazard exists. An unknown kind byte parses to a frame with only
// Kind and ID set; dispatch loops skip it.
func parseFrameBody(b []byte) (*frame, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("rpc decode: empty body: %w", errMalformedFrame)
	}
	f := &frame{Kind: b[0]}
	b = b[1:]
	var err error
	if f.ID, b, err = getUvarint(b); err != nil {
		return nil, err
	}
	switch f.Kind {
	case kindRequest, kindStreamOpen:
		var m []byte
		if m, b, err = getPrefixed(b); err != nil {
			return nil, err
		}
		f.Method = string(m)
		var t uint64
		if t, b, err = getUvarint(b); err != nil {
			return nil, err
		}
		if t > math.MaxInt64 {
			return nil, fmt.Errorf("rpc decode: timeout overflow: %w", errMalformedFrame)
		}
		f.TimeoutNanos = int64(t)
		f.Body = b
	case kindResponse:
		if len(b) < 1 {
			return nil, fmt.Errorf("rpc decode: truncated response: %w", errMalformedFrame)
		}
		f.ErrCode = b[0]
		var m []byte
		if m, b, err = getPrefixed(b[1:]); err != nil {
			return nil, err
		}
		f.ErrMsg = string(m)
		f.Body = b
	case kindChunk:
		if len(b) < 1 {
			return nil, fmt.Errorf("rpc decode: truncated chunk: %w", errMalformedFrame)
		}
		f.Flags = b[0]
		f.Body = b[1:]
	case kindWindow:
		var w uint64
		if w, _, err = getUvarint(b); err != nil {
			return nil, err
		}
		if w > math.MaxInt32 {
			return nil, fmt.Errorf("rpc decode: window overflow: %w", errMalformedFrame)
		}
		f.Window = uint32(w)
	case kindCancel:
	}
	return f, nil
}

func getUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("rpc decode: bad varint: %w", errMalformedFrame)
	}
	return v, b[n:], nil
}

func getPrefixed(b []byte) ([]byte, []byte, error) {
	n, rest, err := getUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("rpc decode: length %d exceeds remainder: %w", n, errMalformedFrame)
	}
	return rest[:n], rest[n:], nil
}

// Body codec tags. Every typed body begins with one codec byte so both
// encodings coexist on one connection: hot messages that implement the
// WireMarshaler/WireUnmarshaler pair travel hand-rolled binary, everything
// else — the cold control plane — stays gob. A decoder that has not learned
// a message's binary form still reads its gob form, which is what keeps
// mixed-version conns working while messages migrate codec one at a time.
const (
	codecGob    byte = 0x01
	codecBinary byte = 0x02
)

// WireMarshaler is implemented by messages with a hand-rolled binary
// encoding. MarshalWire appends the encoding to dst and returns the
// extended slice.
type WireMarshaler interface {
	MarshalWire(dst []byte) []byte
}

// WireUnmarshaler is the decode side of WireMarshaler. UnmarshalWire must
// tolerate arbitrary (fuzzer-shaped) input without panicking.
type WireUnmarshaler interface {
	UnmarshalWire(data []byte) error
}

// Pools for the gob cold path. Only the byte carriers are pooled: a
// gob.Encoder/Decoder pair is deliberately rebuilt per message because gob
// streams are stateful — an encoder sends each type's descriptor once per
// *stream*, so an encoder reused across independent frames would omit
// descriptors the remote frame-scoped decoder has never seen. Pooling the
// buffer and reader still removes the dominant per-call garbage (the grown
// backing arrays); the encoder structs themselves are small.
var (
	gobBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	gobRdrPool = sync.Pool{New: func() any { return bytes.NewReader(nil) }}
)

// encodeBody serializes v (a pointer) into a codec-tagged body.
func encodeBody(v any) ([]byte, error) {
	if m, ok := v.(WireMarshaler); ok {
		return m.MarshalWire([]byte{codecBinary}), nil
	}
	buf := gobBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.WriteByte(codecGob)
	err := gob.NewEncoder(buf).Encode(v)
	if err != nil {
		gobBufPool.Put(buf)
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	gobBufPool.Put(buf)
	return out, nil
}

// decodeBody deserializes a codec-tagged body into v (a pointer).
func decodeBody(data []byte, v any) error {
	if len(data) == 0 {
		return fmt.Errorf("rpc: empty typed body: %w", errMalformedFrame)
	}
	switch data[0] {
	case codecBinary:
		u, ok := v.(WireUnmarshaler)
		if !ok {
			return fmt.Errorf("rpc: binary-coded body for %T, which has no UnmarshalWire", v)
		}
		return u.UnmarshalWire(data[1:])
	case codecGob:
		r := gobRdrPool.Get().(*bytes.Reader)
		r.Reset(data[1:])
		err := gob.NewDecoder(r).Decode(v)
		r.Reset(nil)
		gobRdrPool.Put(r)
		return err
	default:
		return fmt.Errorf("rpc: unknown body codec 0x%02x: %w", data[0], errMalformedFrame)
	}
}
