package rpc

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"propeller/internal/perr"
)

// sumMeta / sumResp exercise the gob side of the stream codec (no
// MarshalWire), proving streams and the binary body codec are orthogonal.
type sumMeta struct {
	Name string
}

type sumResp struct {
	Bytes  int64
	SHA256 string
}

// handleSum registers a stream handler that drains all chunks and returns
// their total length and hash — the receiver-side fingerprint tests compare
// against a local hash of what was sent.
func handleSum(s *Server, method string) {
	HandleStreamTyped(s, method, func(ctx context.Context, meta sumMeta, st *ServerStream) (sumResp, error) {
		h := sha256.New()
		var total int64
		for {
			chunk, err := st.Next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				return sumResp{}, err
			}
			h.Write(chunk)
			total += int64(len(chunk))
		}
		return sumResp{Bytes: total, SHA256: hex.EncodeToString(h.Sum(nil))}, nil
	})
}

func startStreamServer(t *testing.T, srv *Server) *Client {
	t.Helper()
	cc, sc := Pipe()
	srv.ServeConn(sc)
	c := NewClient(cc)
	t.Cleanup(func() {
		_ = c.Close()
		_ = srv.Close()
	})
	return c
}

func sendAll(ctx context.Context, t *testing.T, c *Client, method string, payload []byte, sendSize int) sumResp {
	t.Helper()
	st, err := OpenStream(ctx, c, method, sumMeta{Name: "t"})
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	for off := 0; off < len(payload); off += sendSize {
		end := off + sendSize
		if end > len(payload) {
			end = len(payload)
		}
		if err := st.Send(ctx, payload[off:end]); err != nil {
			t.Fatalf("Send at %d: %v", off, err)
		}
	}
	resp, err := FinishStream[sumResp](ctx, st)
	if err != nil {
		t.Fatalf("FinishStream: %v", err)
	}
	return resp
}

// TestStreamRoundTrip pushes a payload several times the flow-control
// window through a stream in odd-sized writes and checks the server saw
// exactly the bytes sent.
func TestStreamRoundTrip(t *testing.T) {
	srv := NewServer()
	handleSum(srv, "t.sum")
	c := startStreamServer(t, srv)

	payload := make([]byte, 3*streamWindow+12345)
	rnd := rand.New(rand.NewSource(1))
	rnd.Read(payload)
	want := sha256.Sum256(payload)

	resp := sendAll(context.Background(), t, c, "t.sum", payload, 70_001)
	if resp.Bytes != int64(len(payload)) {
		t.Fatalf("server saw %d bytes, sent %d", resp.Bytes, len(payload))
	}
	if resp.SHA256 != hex.EncodeToString(want[:]) {
		t.Fatalf("server hash %s != sent hash", resp.SHA256)
	}
}

// TestMuxInterleavedChunkStreamMatchesSerial is the multiplexing race
// check: a chunked transfer interleaved with N concurrent unary calls on
// the same connection must deliver byte-identical payloads to a serial
// run, and every concurrent call must still get its own response.
func TestMuxInterleavedChunkStreamMatchesSerial(t *testing.T) {
	srv := NewServer()
	handleSum(srv, "t.sum")
	HandleTyped(srv, "t.echo", func(_ context.Context, s string) (string, error) {
		return s, nil
	})
	c := startStreamServer(t, srv)
	ctx := context.Background()

	payload := make([]byte, 2*streamWindow+777)
	rand.New(rand.NewSource(2)).Read(payload)

	serial := sendAll(ctx, t, c, "t.sum", payload, 50_000)

	const callers = 8
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				msg := fmt.Sprintf("caller-%d-%d", i, j)
				got, err := Call[string, string](ctx, c, "t.echo", msg)
				if err != nil {
					errs <- fmt.Errorf("echo: %w", err)
					return
				}
				if got != msg {
					errs <- fmt.Errorf("echo %q returned %q", msg, got)
					return
				}
			}
		}(i)
	}
	interleaved := sendAll(ctx, t, c, "t.sum", payload, 50_000)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if interleaved != serial {
		t.Fatalf("interleaved transfer %+v != serial %+v", interleaved, serial)
	}
}

// TestMuxSlowStreamDoesNotBlockCalls stalls a stream consumer until its
// sender exhausts the flow-control window, then proves unary calls on the
// same connection still complete — per-stream windows, not the connection,
// carry the backpressure.
func TestMuxSlowStreamDoesNotBlockCalls(t *testing.T) {
	srv := NewServer()
	release := make(chan struct{})
	HandleStreamTyped(srv, "t.slow", func(ctx context.Context, _ sumMeta, st *ServerStream) (sumResp, error) {
		<-release // consume nothing until released
		var total int64
		for {
			chunk, err := st.Next(ctx)
			if err == io.EOF {
				return sumResp{Bytes: total}, nil
			}
			if err != nil {
				return sumResp{}, err
			}
			total += int64(len(chunk))
		}
	})
	HandleTyped(srv, "t.echo", func(_ context.Context, s string) (string, error) {
		return s, nil
	})
	c := startStreamServer(t, srv)
	ctx := context.Background()

	st, err := OpenStream(ctx, c, "t.slow", sumMeta{})
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	// Fill the window and verify the sender is actually blocked on credit.
	payload := make([]byte, streamWindow)
	if err := st.Send(ctx, payload); err != nil {
		t.Fatalf("Send(window): %v", err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- st.Send(ctx, payload[:maxChunk]) }()
	select {
	case err := <-blocked:
		t.Fatalf("Send past the window returned early (err=%v); want it blocked on credit", err)
	case <-time.After(50 * time.Millisecond):
	}

	// The connection must still serve unary traffic while that stream is
	// wedged.
	for i := 0; i < 20; i++ {
		callCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		got, err := Call[string, string](callCtx, c, "t.echo", "ping")
		cancel()
		if err != nil || got != "ping" {
			t.Fatalf("echo while stream stalled: got %q, err %v", got, err)
		}
	}

	close(release)
	if err := <-blocked; err != nil {
		t.Fatalf("Send after release: %v", err)
	}
	resp, err := FinishStream[sumResp](ctx, st)
	if err != nil {
		t.Fatalf("FinishStream: %v", err)
	}
	if want := int64(streamWindow + maxChunk); resp.Bytes != want {
		t.Fatalf("server consumed %d bytes, want %d", resp.Bytes, want)
	}
}

// TestStreamReceiverBufferBoundedByWindow transfers many windows' worth of
// data and checks the server never buffered more than one flow-control
// window — the invariant that lets a multi-GB migration run in bounded
// receiver memory.
func TestStreamReceiverBufferBoundedByWindow(t *testing.T) {
	srv := NewServer()
	handleSum(srv, "t.sum")
	c := startStreamServer(t, srv)

	payload := make([]byte, 8*streamWindow)
	rand.New(rand.NewSource(3)).Read(payload)
	resp := sendAll(context.Background(), t, c, "t.sum", payload, maxChunk)
	if resp.Bytes != int64(len(payload)) {
		t.Fatalf("server saw %d bytes, sent %d", resp.Bytes, len(payload))
	}
	if peak := srv.StreamBufferedPeak(); peak > streamWindow {
		t.Fatalf("server buffered %d bytes, window is %d — flow control failed", peak, streamWindow)
	}
	if peak := srv.StreamBufferedPeak(); peak == 0 {
		t.Fatal("peak buffered = 0; the stat is not being recorded")
	}
}

// TestStreamTypedErrorsCrossTheWire returns a typed taxonomy error from a
// stream handler and checks errors.Is matches after the trip, exactly as
// for unary calls.
func TestStreamTypedErrorsCrossTheWire(t *testing.T) {
	srv := NewServer()
	HandleStreamTyped(srv, "t.fail", func(ctx context.Context, _ sumMeta, st *ServerStream) (sumResp, error) {
		return sumResp{}, fmt.Errorf("node drowning: %w", perr.ErrOverloaded)
	})
	c := startStreamServer(t, srv)
	ctx := context.Background()

	st, err := OpenStream(ctx, c, "t.fail", sumMeta{})
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	if _, err := FinishStream[sumResp](ctx, st); !errors.Is(err, perr.ErrOverloaded) {
		t.Fatalf("FinishStream err = %v, want perr.ErrOverloaded", err)
	}
}

// TestStreamOpenShedsAtConcurrencyLimit checks stream opens honor the
// WithMaxConcurrent backstop with the same typed overload error as unary
// requests.
func TestStreamOpenShedsAtConcurrencyLimit(t *testing.T) {
	srv := NewServer(WithMaxConcurrent(1))
	started := make(chan struct{})
	block := make(chan struct{})
	HandleTyped(srv, "t.block", func(_ context.Context, s string) (string, error) {
		close(started)
		<-block
		return s, nil
	})
	handleSum(srv, "t.sum")
	c := startStreamServer(t, srv)
	ctx := context.Background()

	done := make(chan error, 1)
	go func() {
		_, err := Call[string, string](ctx, c, "t.block", "hold")
		done <- err
	}()
	// Wait until the blocking call actually holds the only slot: probing
	// before it lands would itself occupy the slot and shed the call.
	<-started
	st, err := OpenStream(ctx, c, "t.sum", sumMeta{})
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	if _, err := FinishStream[sumResp](ctx, st); !errors.Is(err, perr.ErrOverloaded) {
		t.Fatalf("FinishStream err = %v, want perr.ErrOverloaded", err)
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatalf("blocking call: %v", err)
	}
}

// TestStreamClientCancelUnblocksHandler cancels the client context
// mid-transfer and checks the server handler observes the cancellation
// instead of waiting forever in Next.
func TestStreamClientCancelUnblocksHandler(t *testing.T) {
	srv := NewServer()
	handlerDone := make(chan error, 1)
	HandleStreamTyped(srv, "t.hang", func(ctx context.Context, _ sumMeta, st *ServerStream) (sumResp, error) {
		for {
			_, err := st.Next(ctx)
			if err != nil {
				handlerDone <- err
				return sumResp{}, err
			}
		}
	})
	c := startStreamServer(t, srv)

	ctx, cancel := context.WithCancel(context.Background())
	st, err := OpenStream(ctx, c, "t.hang", sumMeta{})
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	if err := st.Send(ctx, []byte("partial")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	cancel()
	if _, err := FinishStream[sumResp](ctx, st); err == nil {
		t.Fatal("FinishStream after cancel: want error, got nil")
	}
	select {
	case err := <-handlerDone:
		if err == nil {
			t.Fatal("handler Next returned nil after client cancel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server handler still blocked 5s after client cancel")
	}
}

// TestStreamWindowOverrunTearsConn hand-writes chunk frames that ignore
// flow control and checks the server treats the overrun as a protocol
// violation: the connection closes rather than buffering without bound.
func TestStreamWindowOverrunTearsConn(t *testing.T) {
	srv := NewServer()
	HandleStreamTyped(srv, "t.sit", func(ctx context.Context, _ sumMeta, st *ServerStream) (sumResp, error) {
		<-ctx.Done() // never consume: no credit ever returns
		return sumResp{}, ctx.Err()
	})
	cc, sc := Pipe()
	srv.ServeConn(sc)
	defer srv.Close()
	defer cc.Close()

	meta, err := encodeBody(&sumMeta{})
	if err != nil {
		t.Fatalf("encode meta: %v", err)
	}
	if err := writeFrame(cc, &frame{Kind: kindStreamOpen, ID: 1, Method: "t.sit", Body: meta}); err != nil {
		t.Fatalf("write open: %v", err)
	}
	// Overrun the window without ever receiving credit.
	chunk := make([]byte, maxChunk)
	deadline := time.Now().Add(10 * time.Second)
	torn := false
	for sent := 0; sent <= 2*streamWindow; sent += len(chunk) {
		if time.Now().After(deadline) {
			break
		}
		_ = cc.SetWriteDeadline(time.Now().Add(time.Second))
		if err := writeFrame(cc, &frame{Kind: kindChunk, ID: 1, Body: chunk}); err != nil {
			torn = true // server stopped reading: pipe write fails
			break
		}
	}
	if !torn {
		// The final proof either way: the conn must be dead to reads.
		_ = cc.SetReadDeadline(time.Now().Add(2 * time.Second))
		var one [1]byte
		if _, err := cc.Read(one[:]); err == nil {
			t.Fatal("conn still alive after window overrun; want it torn")
		}
	}
	if peak := srv.StreamBufferedPeak(); peak > streamWindow+maxChunk {
		t.Fatalf("server buffered %d bytes past the window before tearing", peak)
	}
}

// TestStreamGobFallbackMeta round-trips stream metadata that lacks a
// binary codec, confirming the codec negotiation byte covers stream opens
// too.
func TestStreamGobFallbackMeta(t *testing.T) {
	srv := NewServer()
	HandleStreamTyped(srv, "t.meta", func(ctx context.Context, meta sumMeta, st *ServerStream) (sumResp, error) {
		for {
			_, err := st.Next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				return sumResp{}, err
			}
		}
		return sumResp{SHA256: meta.Name}, nil
	})
	c := startStreamServer(t, srv)
	ctx := context.Background()

	st, err := OpenStream(ctx, c, "t.meta", sumMeta{Name: "gob-travels"})
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	resp, err := FinishStream[sumResp](ctx, st)
	if err != nil {
		t.Fatalf("FinishStream: %v", err)
	}
	if resp.SHA256 != "gob-travels" {
		t.Fatalf("meta round-trip: got %q", resp.SHA256)
	}
}

// TestFrameBinaryLayoutRoundTrip round-trips every frame kind through the
// binary frame codec directly.
func TestFrameBinaryLayoutRoundTrip(t *testing.T) {
	frames := []*frame{
		{Kind: kindRequest, ID: 1, Method: "in.Update", TimeoutNanos: 12345, Body: []byte("req")},
		{Kind: kindResponse, ID: 2, ErrCode: 5, ErrMsg: "overloaded", Body: nil},
		{Kind: kindResponse, ID: 3, Body: []byte("payload")},
		{Kind: kindStreamOpen, ID: 4, Method: "in.ReceiveACGChunked", Body: []byte("meta")},
		{Kind: kindChunk, ID: 5, Flags: flagFinal, Body: []byte("last")},
		{Kind: kindChunk, ID: 6, Body: bytes.Repeat([]byte("x"), maxChunk)},
		{Kind: kindWindow, ID: 7, Window: 1 << 20},
		{Kind: kindCancel, ID: 8},
	}
	for _, want := range frames {
		var buf bytes.Buffer
		if err := writeFrame(&buf, want); err != nil {
			t.Fatalf("writeFrame kind %d: %v", want.Kind, err)
		}
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame kind %d: %v", want.Kind, err)
		}
		if got.Kind != want.Kind || got.ID != want.ID || got.Method != want.Method ||
			got.ErrMsg != want.ErrMsg || got.ErrCode != want.ErrCode ||
			got.TimeoutNanos != want.TimeoutNanos || got.Flags != want.Flags ||
			got.Window != want.Window || !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("kind %d round trip: got %+v, want %+v", want.Kind, got, want)
		}
	}
}

// TestFrameUnknownKindSkipped feeds the server a frame kind from the
// future and checks the connection survives to serve the next request.
func TestFrameUnknownKindSkipped(t *testing.T) {
	srv := NewServer()
	HandleTyped(srv, "t.echo", func(_ context.Context, s string) (string, error) { return s, nil })
	cc, sc := Pipe()
	srv.ServeConn(sc)
	defer srv.Close()
	c := NewClient(cc)
	defer c.Close()

	// A raw future-kind frame straight onto the conn, racing nothing.
	if err := func() error {
		c.writeMu.Lock()
		defer c.writeMu.Unlock()
		return writeFrame(c.conn, &frame{Kind: 0x7F, ID: 99})
	}(); err != nil {
		t.Fatalf("write unknown-kind frame: %v", err)
	}
	got, err := Call[string, string](context.Background(), c, "t.echo", "still-alive")
	if err != nil || got != "still-alive" {
		t.Fatalf("call after unknown frame: got %q, err %v", got, err)
	}
}
