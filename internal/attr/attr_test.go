package attr

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestConstructorsAndAccessors(t *testing.T) {
	now := time.Unix(1700000000, 123)
	tests := []struct {
		name string
		v    Value
		kind Kind
		str  string
	}{
		{"int", Int(42), KindInt, "42"},
		{"neg int", Int(-7), KindInt, "-7"},
		{"float", Float(2.5), KindFloat, "2.5"},
		{"string", Str("abc"), KindString, "abc"},
		{"time", Time(now), KindTime, now.UTC().Format(time.RFC3339Nano)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.v.Kind() != tt.kind {
				t.Errorf("Kind = %v, want %v", tt.v.Kind(), tt.kind)
			}
			if !tt.v.IsValid() {
				t.Error("constructed value should be valid")
			}
			if tt.v.String() != tt.str {
				t.Errorf("String = %q, want %q", tt.v.String(), tt.str)
			}
		})
	}
	if (Value{}).IsValid() {
		t.Error("zero Value must be invalid")
	}
	if Time(now).AsTime() != now {
		t.Error("time round trip failed")
	}
	if Int(5).AsFloat() != 5.0 {
		t.Error("int AsFloat conversion")
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(-5), Int(5), -1},
		{Float(1.5), Float(2.5), -1},
		{Float(2.5), Float(2.5), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Time(time.Unix(1, 0)), Time(time.Unix(2, 0)), -1},
	}
	for _, tt := range tests {
		got, err := tt.a.Compare(tt.b)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", tt.a, tt.b, err)
		}
		if got != tt.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCompareKindMismatch(t *testing.T) {
	if _, err := Int(1).Compare(Str("1")); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("err = %v, want ErrKindMismatch", err)
	}
	if Int(1).Equal(Str("1")) {
		t.Error("different kinds must not be Equal")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	vals := []Value{
		Int(0), Int(1), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(1.5), Float(-1.5), Float(math.MaxFloat64),
		Str(""), Str("hello"), Str("héllo"),
		Time(time.Unix(0, 0)), Time(time.Unix(1700000000, 999)),
	}
	for _, v := range vals {
		enc := v.Encode(nil)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%v): %v", v, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{byte(KindInt), 1, 2},        // short int
		{byte(KindFloat), 1},         // short float
		{99, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown kind
	}
	for _, c := range cases {
		if _, err := Decode(c); !errors.Is(err, ErrBadEncoding) {
			t.Errorf("Decode(%v) err = %v, want ErrBadEncoding", c, err)
		}
	}
}

// Property: byte order of encodings matches Compare for ints.
func TestEncodingOrderPreservingInt(t *testing.T) {
	f := func(a, b int64) bool {
		ea, eb := Int(a).Encode(nil), Int(b).Encode(nil)
		c, _ := Int(a).Compare(Int(b))
		return bytes.Compare(ea, eb) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: byte order of encodings matches Compare for floats.
func TestEncodingOrderPreservingFloat(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true // NaN has no total order; callers never index NaN
		}
		ea, eb := Float(a).Encode(nil), Float(b).Encode(nil)
		c, _ := Float(a).Compare(Float(b))
		return bytes.Compare(ea, eb) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: byte order of encodings matches Compare for strings.
func TestEncodingOrderPreservingString(t *testing.T) {
	f := func(a, b string) bool {
		ea, eb := Str(a).Encode(nil), Str(b).Encode(nil)
		c, _ := Str(a).Compare(Str(b))
		return bytes.Compare(ea, eb) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: round trip is the identity for arbitrary ints and strings.
func TestRoundTripProperty(t *testing.T) {
	fi := func(v int64) bool {
		got, err := Decode(Int(v).Encode(nil))
		return err == nil && got.Equal(Int(v))
	}
	if err := quick.Check(fi, nil); err != nil {
		t.Error(err)
	}
	fs := func(v string) bool {
		got, err := Decode(Str(v).Encode(nil))
		return err == nil && got.Equal(Str(v))
	}
	if err := quick.Check(fs, nil); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "int" || KindFloat.String() != "float" ||
		KindString.String() != "string" || KindTime.String() != "time" {
		t.Error("Kind.String names wrong")
	}
	if Kind(0).String() != "kind(0)" {
		t.Error("unknown kind String")
	}
}
