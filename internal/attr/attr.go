// Package attr defines the typed attribute values Propeller indexes.
//
// Propeller is a general-purpose file-search service: users define named
// indices over arbitrary file attributes (inode metadata such as size,
// mtime, uid, plus user-defined fields such as keywords or protein-energy
// scores). Values are a small tagged union with a total order inside each
// kind and an order-preserving binary encoding so they can serve directly as
// B+tree keys.
package attr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the supported value types.
type Kind uint8

// Supported kinds. They start at 1 so the zero Value is recognisably invalid.
const (
	KindInt Kind = iota + 1
	KindFloat
	KindString
	KindTime
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindTime:
		return "time"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Errors returned by this package.
var (
	ErrKindMismatch = errors.New("attr: comparing values of different kinds")
	ErrBadEncoding  = errors.New("attr: malformed value encoding")
)

// Value is a typed attribute value. The zero Value has Kind 0 and is
// invalid; construct values with Int, Float, Str or Time.
type Value struct {
	kind Kind
	i    int64   // KindInt, or unix-nanos for KindTime
	f    float64 // KindFloat
	s    string  // KindString
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Time returns a time value (stored as unix nanoseconds).
func Time(t time.Time) Value { return Value{kind: KindTime, i: t.UnixNano()} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value was constructed with one of the typed
// constructors.
func (v Value) IsValid() bool { return v.kind >= KindInt && v.kind <= KindTime }

// AsInt returns the integer payload (valid for KindInt).
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the float payload (valid for KindFloat). For KindInt it
// converts, which is convenient for KD-tree coordinates.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt || v.kind == KindTime {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload (valid for KindString).
func (v Value) AsString() string { return v.s }

// AsTime returns the time payload (valid for KindTime).
func (v Value) AsTime() time.Time { return time.Unix(0, v.i) }

// String implements fmt.Stringer.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindTime:
		return v.AsTime().UTC().Format(time.RFC3339Nano)
	default:
		return "<invalid>"
	}
}

// Compare orders v against o: -1, 0 or +1. Both values must share a kind.
func (v Value) Compare(o Value) (int, error) {
	if v.kind != o.kind {
		return 0, fmt.Errorf("%w: %s vs %s", ErrKindMismatch, v.kind, o.kind)
	}
	switch v.kind {
	case KindInt, KindTime:
		return cmpInt64(v.i, o.i), nil
	case KindFloat:
		switch {
		case v.f < o.f:
			return -1, nil
		case v.f > o.f:
			return 1, nil
		default:
			return 0, nil
		}
	case KindString:
		switch {
		case v.s < o.s:
			return -1, nil
		case v.s > o.s:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("%w: invalid kind", ErrKindMismatch)
	}
}

// Equal reports whether v and o are the same kind and payload.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	c, err := v.Compare(o)
	return err == nil && c == 0
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// EncodedLen returns the exact length Encode will append for v, letting
// callers size a buffer in one allocation.
func (v Value) EncodedLen() int {
	switch v.kind {
	case KindInt, KindTime, KindFloat:
		return 9
	case KindString:
		return 1 + len(v.s)
	default:
		return 1
	}
}

// Encode appends an order-preserving binary encoding of v to dst: byte
// comparison of two encodings of the same kind matches Compare. Layout is a
// kind tag followed by a payload:
//
//	int/time: big-endian uint64 with the sign bit flipped
//	float:    IEEE-754 bits, sign-normalised (negative floats inverted)
//	string:   raw bytes (strings are compared lexicographically)
func (v Value) Encode(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindInt, KindTime:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.i)^(1<<63))
		dst = append(dst, buf[:]...)
	case KindFloat:
		bits := math.Float64bits(v.f)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: invert everything
		} else {
			bits |= 1 << 63 // positive: set sign bit
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		dst = append(dst, buf[:]...)
	case KindString:
		dst = append(dst, v.s...)
	}
	return dst
}

// GobEncode implements gob.GobEncoder via the order-preserving encoding, so
// Values can travel in RPC messages despite having unexported fields.
func (v Value) GobEncode() ([]byte, error) {
	if !v.IsValid() {
		return []byte{0}, nil
	}
	return v.Encode(nil), nil
}

// GobDecode implements gob.GobDecoder.
func (v *Value) GobDecode(b []byte) error {
	if len(b) == 1 && b[0] == 0 {
		*v = Value{}
		return nil
	}
	dec, err := Decode(b)
	if err != nil {
		return err
	}
	*v = dec
	return nil
}

// Decode parses a value previously produced by Encode, consuming the whole
// buffer (the caller frames values externally).
func Decode(b []byte) (Value, error) {
	if len(b) == 0 {
		return Value{}, fmt.Errorf("%w: empty buffer", ErrBadEncoding)
	}
	kind := Kind(b[0])
	body := b[1:]
	switch kind {
	case KindInt, KindTime:
		if len(body) != 8 {
			return Value{}, fmt.Errorf("%w: int payload %d bytes", ErrBadEncoding, len(body))
		}
		u := binary.BigEndian.Uint64(body) ^ (1 << 63)
		return Value{kind: kind, i: int64(u)}, nil
	case KindFloat:
		if len(body) != 8 {
			return Value{}, fmt.Errorf("%w: float payload %d bytes", ErrBadEncoding, len(body))
		}
		bits := binary.BigEndian.Uint64(body)
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63
		} else {
			bits = ^bits
		}
		return Value{kind: KindFloat, f: math.Float64frombits(bits)}, nil
	case KindString:
		return Value{kind: KindString, s: string(body)}, nil
	default:
		return Value{}, fmt.Errorf("%w: unknown kind %d", ErrBadEncoding, b[0])
	}
}
