package query

import (
	"errors"
	"testing"
	"time"

	"propeller/internal/perr"
)

var errNow = time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)

// TestParseErrorTaxonomy asserts that every class of malformed predicate
// fails with both the package sentinel (ErrSyntax) and the public taxonomy
// (perr.ErrBadQuery) in the chain.
func TestParseErrorTaxonomy(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty query", ""},
		{"only ampersands", " & & "},
		{"no operator", "size"},
		{"missing literal", "size>"},
		{"leading operator", ">1m"},
		{"bad size unit", "size>1zb"},
		{"size not a number", "size>big"},
		{"bad age unit", "mtime<5parsecs"},
		{"age without unit", "mtime<5"},
		{"bad uid", "uid=abc"},
		{"empty keyword value", "keyword:"},
		{"unclosed paren", "(size>1m"},
		{"paren in field", "size)>1m"},
		{"quoted field", `"size">1m`},
		{"second term malformed", "size>1m & mtime<"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.input, errNow)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", c.input)
			}
			if !errors.Is(err, ErrSyntax) {
				t.Errorf("Parse(%q) err = %v, want ErrSyntax in chain", c.input, err)
			}
			if !errors.Is(err, perr.ErrBadQuery) {
				t.Errorf("Parse(%q) err = %v, want perr.ErrBadQuery in chain", c.input, err)
			}
		})
	}
}

// TestParseQueryPathErrorTaxonomy covers the query-directory form.
func TestParseQueryPathErrorTaxonomy(t *testing.T) {
	cases := []string{
		"/no/query/component",
		"/data/?",          // empty predicate
		"/data/?size>>1m",  // malformed predicate
		"/data/?(size>1m",  // unclosed paren
		"/data/?mtime<1yb", // bad unit
	}
	for _, input := range cases {
		if _, err := ParseQueryPath(input, errNow); !errors.Is(err, perr.ErrBadQuery) {
			t.Errorf("ParseQueryPath(%q) err = %v, want perr.ErrBadQuery", input, err)
		}
	}
	// SplitQueryPath alone accepts a well-formed path and defers predicate
	// validation.
	dir, raw, err := SplitQueryPath("/data/logs/?size>1m")
	if err != nil || dir != "/data/logs" || raw != "size>1m" {
		t.Errorf("SplitQueryPath = (%q, %q, %v)", dir, raw, err)
	}
	if _, _, err := SplitQueryPath("no-query"); !errors.Is(err, perr.ErrBadQuery) {
		t.Errorf("SplitQueryPath without /? = %v, want ErrBadQuery", err)
	}
}

// TestValidFieldStillAcceptsRealFields guards against over-tight field
// validation: every attribute name in the test corpus must keep parsing.
func TestValidFieldStillAcceptsRealFields(t *testing.T) {
	for _, input := range []string{
		"size>16m", "mtime<1day", "uid=1000", "keyword:firefox",
		"binding<-9", "torsion<1.5", "x<5 & y<5", "path>=/data/",
		"my_field=3", "my-field=3", "ns.field=3", "Size>1k",
	} {
		if _, err := Parse(input, errNow); err != nil {
			t.Errorf("Parse(%q) = %v, want success", input, err)
		}
	}
}
