package query

import (
	"fmt"
	"strings"
	"time"
)

// QueryDir is a parsed dynamic query-directory path (§IV): a file-system
// path of the form "/foo/bar/?size>1m & mtime<1day" whose listing is the
// result of the embedded search. Semantic file systems expose searches this
// way so unmodified applications can consume them via readdir.
type QueryDir struct {
	// Dir is the path prefix the query is scoped to ("/foo/bar").
	Dir string
	// Query is the parsed predicate.
	Query Query
}

// IsQueryPath reports whether path embeds a query component.
func IsQueryPath(path string) bool {
	return strings.Contains(path, "/?")
}

// ParseQueryPath splits a dynamic query-directory path into its directory
// scope and predicate. now anchors relative mtime predicates.
func ParseQueryPath(path string, now time.Time) (QueryDir, error) {
	i := strings.Index(path, "/?")
	if i < 0 {
		return QueryDir{}, fmt.Errorf("%w: %q has no query component", ErrSyntax, path)
	}
	dir := path[:i]
	if dir == "" {
		dir = "/"
	}
	q, err := Parse(path[i+2:], now)
	if err != nil {
		return QueryDir{}, err
	}
	return QueryDir{Dir: dir, Query: q}, nil
}

// InScope reports whether a file path falls under the query directory's
// prefix.
func (qd QueryDir) InScope(filePath string) bool {
	if qd.Dir == "/" {
		return strings.HasPrefix(filePath, "/")
	}
	return filePath == qd.Dir || strings.HasPrefix(filePath, qd.Dir+"/")
}

// String renders the query directory back to path form.
func (qd QueryDir) String() string {
	dir := qd.Dir
	if dir == "/" {
		dir = ""
	}
	return dir + "/?" + qd.Query.String()
}
