package query

import (
	"fmt"
	"strings"
	"time"

	"propeller/internal/attr"
)

// QueryDir is a parsed dynamic query-directory path (§IV): a file-system
// path of the form "/foo/bar/?size>1m & mtime<1day" whose listing is the
// result of the embedded search. Semantic file systems expose searches this
// way so unmodified applications can consume them via readdir.
type QueryDir struct {
	// Dir is the path prefix the query is scoped to ("/foo/bar").
	Dir string
	// Query is the parsed predicate.
	Query Query
}

// IsQueryPath reports whether path embeds a query component.
func IsQueryPath(path string) bool {
	return strings.Contains(path, "/?")
}

// SplitQueryPath splits a dynamic query-directory path into its directory
// scope and raw query text without parsing the predicate (callers that
// defer parsing — e.g. until a reference time is known — use this; the
// rest use ParseQueryPath).
func SplitQueryPath(path string) (dir, rawQuery string, err error) {
	i := strings.Index(path, "/?")
	if i < 0 {
		return "", "", fmt.Errorf("%w: %q has no query component", ErrSyntax, path)
	}
	dir = path[:i]
	if dir == "" {
		dir = "/"
	}
	return dir, path[i+2:], nil
}

// ParseQueryPath splits a dynamic query-directory path into its directory
// scope and predicate. now anchors relative mtime predicates.
func ParseQueryPath(path string, now time.Time) (QueryDir, error) {
	dir, raw, err := SplitQueryPath(path)
	if err != nil {
		return QueryDir{}, err
	}
	q, err := Parse(raw, now)
	if err != nil {
		return QueryDir{}, err
	}
	return QueryDir{Dir: dir, Query: q}, nil
}

// PathScopePreds returns the range predicates that bracket exactly the
// subtree of dir on the "path" attribute: [dir+"/", dir+"/\xff"). A root or
// empty dir needs no scoping and yields nil.
func PathScopePreds(dir string) []Predicate {
	if dir == "" || dir == "/" {
		return nil
	}
	dir = strings.TrimSuffix(dir, "/")
	return []Predicate{
		{Field: "path", Op: OpGe, Value: attr.Str(dir + "/")},
		{Field: "path", Op: OpLt, Value: attr.Str(dir + "/\xff")},
	}
}

// InScope reports whether a file path falls under the query directory's
// prefix.
func (qd QueryDir) InScope(filePath string) bool {
	if qd.Dir == "/" {
		return strings.HasPrefix(filePath, "/")
	}
	return filePath == qd.Dir || strings.HasPrefix(filePath, qd.Dir+"/")
}

// String renders the query directory back to path form.
func (qd QueryDir) String() string {
	dir := qd.Dir
	if dir == "/" {
		dir = ""
	}
	return dir + "/?" + qd.Query.String()
}
