package query

import (
	"errors"
	"testing"
)

func TestIsQueryPath(t *testing.T) {
	tests := []struct {
		path string
		want bool
	}{
		{"/foo/bar/?size>1m", true},
		{"/?size>1m", true},
		{"/foo/bar", false},
		{"/foo?size", false}, // needs the /? marker
	}
	for _, tt := range tests {
		if got := IsQueryPath(tt.path); got != tt.want {
			t.Errorf("IsQueryPath(%q) = %v, want %v", tt.path, got, tt.want)
		}
	}
}

func TestParseQueryPath(t *testing.T) {
	qd, err := ParseQueryPath("/data/logs/?size>1m & mtime<1day", testNow)
	if err != nil {
		t.Fatal(err)
	}
	if qd.Dir != "/data/logs" {
		t.Errorf("dir = %q", qd.Dir)
	}
	if len(qd.Query.Preds) != 2 {
		t.Errorf("preds = %d", len(qd.Query.Preds))
	}
	// Root-scoped query.
	qd2, err := ParseQueryPath("/?size>1m", testNow)
	if err != nil {
		t.Fatal(err)
	}
	if qd2.Dir != "/" {
		t.Errorf("root dir = %q", qd2.Dir)
	}
}

func TestParseQueryPathErrors(t *testing.T) {
	if _, err := ParseQueryPath("/plain/path", testNow); !errors.Is(err, ErrSyntax) {
		t.Errorf("no query component = %v", err)
	}
	if _, err := ParseQueryPath("/x/?", testNow); !errors.Is(err, ErrSyntax) {
		t.Errorf("empty query = %v", err)
	}
}

func TestQueryDirScope(t *testing.T) {
	qd, err := ParseQueryPath("/data/logs/?size>1m", testNow)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		path string
		want bool
	}{
		{"/data/logs/a.log", true},
		{"/data/logs", true},
		{"/data/logsx/a.log", false},
		{"/other", false},
	}
	for _, tt := range tests {
		if got := qd.InScope(tt.path); got != tt.want {
			t.Errorf("InScope(%q) = %v, want %v", tt.path, got, tt.want)
		}
	}
	root, err := ParseQueryPath("/?size>1m", testNow)
	if err != nil {
		t.Fatal(err)
	}
	if !root.InScope("/anything/at/all") {
		t.Error("root scope should match everything")
	}
}

func TestQueryDirStringRoundTrip(t *testing.T) {
	qd, err := ParseQueryPath("/data/?size>16m", testNow)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseQueryPath(qd.String(), testNow)
	if err != nil {
		t.Fatalf("reparse %q: %v", qd.String(), err)
	}
	if back.Dir != qd.Dir || len(back.Query.Preds) != len(qd.Query.Preds) {
		t.Errorf("round trip changed: %q -> %q", qd, back)
	}
}
