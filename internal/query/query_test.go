package query

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"propeller/internal/attr"
	"propeller/internal/vfs"
)

var testNow = time.Date(2014, 6, 1, 12, 0, 0, 0, time.UTC)

func TestParsePaperQueries(t *testing.T) {
	// The exact queries from Table III and Table IV/V.
	tests := []struct {
		in        string
		wantPreds int
	}{
		{"size>1g & mtime<1day", 2},
		{"keyword:firefox & mtime<1week", 2},
		{"size>16m", 1},
		{"size >= 1kb & uid=1000", 2},
	}
	for _, tt := range tests {
		q, err := Parse(tt.in, testNow)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tt.in, err)
		}
		if len(q.Preds) != tt.wantPreds {
			t.Errorf("Parse(%q) = %d preds, want %d", tt.in, len(q.Preds), tt.wantPreds)
		}
	}
}

func TestParseSizeSuffixes(t *testing.T) {
	tests := []struct {
		in   string
		want int64
	}{
		{"size>1k", 1 << 10},
		{"size>1kb", 1 << 10},
		{"size>16m", 16 << 20},
		{"size>1g", 1 << 30},
		{"size>1t", 1 << 40},
		{"size>100b", 100},
		{"size>100", 100},
		{"size>0.5g", 1 << 29},
	}
	for _, tt := range tests {
		q, err := Parse(tt.in, testNow)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tt.in, err)
		}
		if got := q.Preds[0].Value.AsInt(); got != tt.want {
			t.Errorf("Parse(%q) value = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestParseMtimeAgeFlipsOperator(t *testing.T) {
	// "mtime<1day" = modified within the last day = MTime > now-1day.
	q, err := Parse("mtime<1day", testNow)
	if err != nil {
		t.Fatal(err)
	}
	p := q.Preds[0]
	if p.Op != OpGt {
		t.Errorf("op = %v, want > (flipped)", p.Op)
	}
	if !p.Value.AsTime().Equal(testNow.Add(-24 * time.Hour)) {
		t.Errorf("cutoff = %v", p.Value.AsTime())
	}

	q2, err := Parse("mtime>2weeks", testNow)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Preds[0].Op != OpLt {
		t.Errorf("mtime> should flip to <, got %v", q2.Preds[0].Op)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "   ", "size", ">5", "size>", "size>abc", "mtime<5", "mtime<xyzday",
		"keyword:", "uid>ten",
	}
	for _, s := range bad {
		if _, err := Parse(s, testNow); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) err = %v, want ErrSyntax", s, err)
		}
	}
}

func TestParseCustomFields(t *testing.T) {
	q, err := Parse("energy<-7.5 & protein:insulin", testNow)
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Value.Kind() != attr.KindFloat {
		t.Errorf("energy should parse as float, got %v", q.Preds[0].Value.Kind())
	}
	if q.Preds[1].Value.Kind() != attr.KindString {
		t.Errorf("protein should parse as string, got %v", q.Preds[1].Value.Kind())
	}
}

func TestMatchesFile(t *testing.T) {
	fa := vfs.FileAttrs{
		Path: "/data/firefox-0/d00/f000001", Size: 2 << 30,
		MTime: testNow.Add(-2 * time.Hour), UID: 1000, Keyword: "firefox",
	}
	tests := []struct {
		q    string
		want bool
	}{
		{"size>1g", true},
		{"size>4g", false},
		{"size>1g & mtime<1day", true},
		{"size>1g & mtime<1hour", false},
		{"keyword:firefox", true},
		{"keyword:linux", false},
		{"uid=1000", true},
		{"uid<1000", false},
		{"size>=2g & size<3g", true},
		{"nosuchfield=5", false},
	}
	for _, tt := range tests {
		q, err := Parse(tt.q, testNow)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tt.q, err)
		}
		if got := q.MatchesFile(fa); got != tt.want {
			t.Errorf("%q matches = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestRangeExtraction(t *testing.T) {
	q, err := Parse("size>16m & size<=1g & keyword:x", testNow)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, incLo, incHi, ok := q.Range("size")
	if !ok {
		t.Fatal("size range should exist")
	}
	if lo == nil || lo.AsInt() != 16<<20 || incLo {
		t.Errorf("lo = %v inc=%v", lo, incLo)
	}
	if hi == nil || hi.AsInt() != 1<<30 || !incHi {
		t.Errorf("hi = %v inc=%v", hi, incHi)
	}
	if _, _, _, _, ok := q.Range("uid"); ok {
		t.Error("uid range should not exist")
	}
	// Equality gives a point range.
	q2, _ := Parse("keyword:firefox", testNow)
	lo2, hi2, _, _, ok2 := q2.Range("keyword")
	if !ok2 || lo2 == nil || hi2 == nil || !lo2.Equal(*hi2) {
		t.Error("equality should produce a point range")
	}
}

func TestQueryString(t *testing.T) {
	q, err := Parse("size>16m & keyword:firefox", testNow)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	// The rendered form must reparse to the same predicates.
	q2, err := Parse(s, testNow)
	if err != nil {
		t.Fatalf("reparse %q: %v", s, err)
	}
	if len(q2.Preds) != len(q.Preds) {
		t.Errorf("reparse lost predicates: %d vs %d", len(q2.Preds), len(q.Preds))
	}
}

// Property: size predicates evaluate consistently with direct comparison.
func TestSizePredicateProperty(t *testing.T) {
	f := func(size int64, bound int64) bool {
		if size < 0 {
			size = -size
		}
		if bound < 0 {
			bound = -bound
		}
		q := Query{Preds: []Predicate{{Field: "size", Op: OpGt, Value: attr.Int(bound)}}}
		fa := vfs.FileAttrs{Size: size}
		return q.MatchesFile(fa) == (size > bound)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFieldIntervalIntersection: multiple predicates on one field tighten
// each other regardless of order, equalities intersect to points (or
// empty), and incomparable kinds degrade to inexact instead of loosening
// silently.
func TestFieldIntervalIntersection(t *testing.T) {
	iv := func(s string) Interval {
		q, err := Parse(s, testNow)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		out, ok := q.FieldInterval("x")
		if !ok {
			t.Fatalf("%q: no interval for x", s)
		}
		return out
	}

	// Tightening works in both orders (the old last-wins extraction kept
	// whichever bound came last, loosening "x>5 & x>1" to 1).
	for _, s := range []string{"x>1 & x>5", "x>5 & x>1"} {
		got := iv(s)
		if got.Lo == nil || got.Lo.AsInt() != 5 || got.IncLo || !got.Exact {
			t.Errorf("%q: lo = %v incLo=%v exact=%v, want (5, exclusive, exact)",
				s, got.Lo, got.IncLo, got.Exact)
		}
	}
	// Inclusive vs exclusive at the same bound: exclusive is stricter.
	got := iv("x>=5 & x>5")
	if got.Lo == nil || got.Lo.AsInt() != 5 || got.IncLo {
		t.Errorf("x>=5 & x>5: lo = %v incLo=%v, want (5, exclusive)", got.Lo, got.IncLo)
	}
	// Upper bounds tighten downward.
	got = iv("x<100 & x<=40")
	if got.Hi == nil || got.Hi.AsInt() != 40 || !got.IncHi {
		t.Errorf("x<100 & x<=40: hi = %v incHi=%v, want (40, inclusive)", got.Hi, got.IncHi)
	}
	// Contradicting equalities produce an empty interval (lo > hi), which
	// scans nothing — not a loosened point.
	got = iv("x=5 & x=7")
	if got.Lo == nil || got.Hi == nil || got.Lo.AsInt() <= got.Hi.AsInt() {
		t.Errorf("x=5 & x=7: interval [%v, %v] should be empty", got.Lo, got.Hi)
	}
	// Numeric kinds coerce: an int and a float bound still intersect.
	got = iv("x>2 & x>2.5")
	if got.Lo == nil || got.Lo.AsFloat() != 2.5 || !got.Exact {
		t.Errorf("x>2 & x>2.5: lo = %v exact=%v, want 2.5 exact", got.Lo, got.Exact)
	}
	// A string bound against a numeric one cannot be compared: the first
	// bound is kept and the interval is marked inexact so residual
	// evaluation stays in charge.
	got = iv("x>5 & x>abc")
	if got.Exact {
		t.Error("incomparable bounds must not claim exactness")
	}
	if got.Lo == nil || got.Lo.AsInt() != 5 {
		t.Errorf("incomparable bounds: lo = %v, want the first bound 5", got.Lo)
	}
}

// TestIntervalEmpty: provably empty intervals are detected; unbounded,
// satisfiable and incomparable ones are not.
func TestIntervalEmpty(t *testing.T) {
	for _, tt := range []struct {
		q    string
		want bool
	}{
		{"x=5 & x=7", true},
		{"x>5 & x<5", true},
		{"x>=5 & x<5", true},
		{"x=5", false},
		{"x>1 & x<9", false},
		{"x>5", false},
		{"x>5 & x>abc", false}, // incomparable: conservative non-empty
	} {
		q, err := Parse(tt.q, testNow)
		if err != nil {
			t.Fatalf("parse %q: %v", tt.q, err)
		}
		iv, ok := q.FieldInterval("x")
		if !ok {
			t.Fatalf("%q: no interval", tt.q)
		}
		if got := iv.Empty(); got != tt.want {
			t.Errorf("%q: Empty = %v, want %v", tt.q, got, tt.want)
		}
	}
}
