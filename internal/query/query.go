// Package query implements Propeller's file-search predicate language, the
// textual form behind both the dynamic query-directory syntax
// ("/foo/bar/?size>1m") and the file-search API (§IV).
//
// A query is a conjunction of predicates over named attributes:
//
//	size>1g & mtime<1day & keyword:firefox
//
// Size literals accept k/m/g/t suffixes. mtime comparisons are expressed as
// ages ("mtime<1day" = modified within the last day) and resolved against a
// reference time at parse time.
package query

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"propeller/internal/attr"
	"propeller/internal/perr"
	"propeller/internal/vfs"
)

// Op is a comparison operator.
type Op uint8

// Comparison operators.
const (
	OpEq Op = iota + 1
	OpLt
	OpLe
	OpGt
	OpGe
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Predicate is a single field comparison.
type Predicate struct {
	Field string
	Op    Op
	Value attr.Value
}

// Query is a conjunction of predicates.
type Query struct {
	Preds []Predicate
}

// ErrSyntax is returned for malformed query strings. It wraps the public
// taxonomy's ErrBadQuery, so errors.Is(err, perr.ErrBadQuery) holds for
// every parse failure — locally and across the RPC wire.
var ErrSyntax = fmt.Errorf("query: syntax error (%w)", perr.ErrBadQuery)

// Parse parses a query string. now anchors relative mtime ages.
func Parse(s string, now time.Time) (Query, error) {
	var q Query
	for _, rawTerm := range strings.Split(s, "&") {
		term := strings.TrimSpace(rawTerm)
		if term == "" {
			continue
		}
		p, err := parseTerm(term, now)
		if err != nil {
			return Query{}, err
		}
		q.Preds = append(q.Preds, p)
	}
	if len(q.Preds) == 0 {
		return Query{}, fmt.Errorf("%w: empty query %q", ErrSyntax, s)
	}
	return q, nil
}

// validField reports whether s is a legal attribute name: a non-empty run
// of letters, digits, '_', '-' or '.'. Anything else — parens, quotes,
// operators — is a syntax error, which also catches unbalanced grouping
// attempts like "(size>1m" (the language is a flat conjunction; it has no
// parentheses).
func validField(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}

// NormalizeField canonicalizes an attribute name the way the parser does
// — trimmed and lowercased — and rejects illegal names with the syntax
// taxonomy. Typed predicate builders route through this so "Size" and
// "size" address the same attribute on every path.
func NormalizeField(field string) (string, error) {
	f := strings.ToLower(strings.TrimSpace(field))
	if !validField(f) {
		return "", fmt.Errorf("%w: bad field name %q", ErrSyntax, field)
	}
	return f, nil
}

func parseTerm(term string, now time.Time) (Predicate, error) {
	// keyword:foo shorthand.
	if i := strings.IndexByte(term, ':'); i > 0 && !strings.ContainsAny(term[:i], "<>=") {
		val := strings.TrimSpace(term[i+1:])
		if val == "" {
			return Predicate{}, fmt.Errorf("%w: empty value in %q", ErrSyntax, term)
		}
		field, err := NormalizeField(term[:i])
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Field: field, Op: OpEq, Value: attr.Str(val)}, nil
	}

	opPos := strings.IndexAny(term, "<>=")
	if opPos <= 0 {
		return Predicate{}, fmt.Errorf("%w: no operator in %q", ErrSyntax, term)
	}
	field, err := NormalizeField(term[:opPos])
	if err != nil {
		return Predicate{}, err
	}
	rest := term[opPos:]
	var op Op
	switch {
	case strings.HasPrefix(rest, "<="):
		op, rest = OpLe, rest[2:]
	case strings.HasPrefix(rest, ">="):
		op, rest = OpGe, rest[2:]
	case strings.HasPrefix(rest, "<"):
		op, rest = OpLt, rest[1:]
	case strings.HasPrefix(rest, ">"):
		op, rest = OpGt, rest[1:]
	case strings.HasPrefix(rest, "="):
		op, rest = OpEq, rest[1:]
	default:
		return Predicate{}, fmt.Errorf("%w: bad operator in %q", ErrSyntax, term)
	}
	lit := strings.TrimSpace(rest)
	if lit == "" {
		return Predicate{}, fmt.Errorf("%w: missing literal in %q", ErrSyntax, term)
	}

	switch field {
	case "size":
		n, err := parseSize(lit)
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Field: field, Op: op, Value: attr.Int(n)}, nil
	case "mtime":
		// "mtime < 1day" means "age < 1 day": mtime after now-1day.
		d, err := parseAge(lit)
		if err != nil {
			return Predicate{}, err
		}
		cutoff := now.Add(-d)
		flipped := map[Op]Op{OpLt: OpGt, OpLe: OpGe, OpGt: OpLt, OpGe: OpLe, OpEq: OpEq}[op]
		return Predicate{Field: field, Op: flipped, Value: attr.Time(cutoff)}, nil
	case "uid":
		n, err := strconv.ParseInt(lit, 10, 64)
		if err != nil {
			return Predicate{}, fmt.Errorf("%w: uid %q", ErrSyntax, lit)
		}
		return Predicate{Field: field, Op: op, Value: attr.Int(n)}, nil
	default:
		// User-defined attribute: int if it parses, else string.
		if n, err := strconv.ParseInt(lit, 10, 64); err == nil {
			return Predicate{Field: field, Op: op, Value: attr.Int(n)}, nil
		}
		if f, err := strconv.ParseFloat(lit, 64); err == nil {
			return Predicate{Field: field, Op: op, Value: attr.Float(f)}, nil
		}
		return Predicate{Field: field, Op: op, Value: attr.Str(lit)}, nil
	}
}

func parseSize(lit string) (int64, error) {
	lit = strings.ToLower(strings.TrimSpace(lit))
	mult := int64(1)
	for _, sfx := range []struct {
		s string
		m int64
	}{
		{"tb", 1 << 40}, {"t", 1 << 40},
		{"gb", 1 << 30}, {"g", 1 << 30},
		{"mb", 1 << 20}, {"m", 1 << 20},
		{"kb", 1 << 10}, {"k", 1 << 10},
		{"b", 1},
	} {
		if strings.HasSuffix(lit, sfx.s) {
			mult = sfx.m
			lit = strings.TrimSuffix(lit, sfx.s)
			break
		}
	}
	lit = strings.TrimSpace(lit)
	n, err := strconv.ParseFloat(lit, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: size literal %q", ErrSyntax, lit)
	}
	return int64(n * float64(mult)), nil
}

func parseAge(lit string) (time.Duration, error) {
	lit = strings.ToLower(strings.TrimSpace(lit))
	units := []struct {
		s string
		d time.Duration
	}{
		{"weeks", 7 * 24 * time.Hour}, {"week", 7 * 24 * time.Hour}, {"w", 7 * 24 * time.Hour},
		{"days", 24 * time.Hour}, {"day", 24 * time.Hour}, {"d", 24 * time.Hour},
		{"hours", time.Hour}, {"hour", time.Hour}, {"h", time.Hour},
		{"minutes", time.Minute}, {"min", time.Minute},
		{"seconds", time.Second}, {"sec", time.Second}, {"s", time.Second},
	}
	for _, u := range units {
		if strings.HasSuffix(lit, u.s) {
			numStr := strings.TrimSpace(strings.TrimSuffix(lit, u.s))
			n, err := strconv.ParseFloat(numStr, 64)
			if err != nil {
				return 0, fmt.Errorf("%w: age literal %q", ErrSyntax, lit)
			}
			return time.Duration(n * float64(u.d)), nil
		}
	}
	return 0, fmt.Errorf("%w: age literal %q needs a unit", ErrSyntax, lit)
}

// String renders the query back to its textual form.
func (q Query) String() string {
	parts := make([]string, 0, len(q.Preds))
	for _, p := range q.Preds {
		parts = append(parts, fmt.Sprintf("%s%s%s", p.Field, p.Op, p.Value))
	}
	return strings.Join(parts, " & ")
}

// Matches evaluates the query against an attribute lookup function. Fields
// missing from the record do not match.
func (q Query) Matches(get func(field string) (attr.Value, bool)) bool {
	for _, p := range q.Preds {
		v, ok := get(p.Field)
		if !ok {
			return false
		}
		c, err := compareCoerced(v, p.Value)
		if err != nil {
			return false
		}
		switch p.Op {
		case OpEq:
			if c != 0 {
				return false
			}
		case OpLt:
			if c >= 0 {
				return false
			}
		case OpLe:
			if c > 0 {
				return false
			}
		case OpGt:
			if c <= 0 {
				return false
			}
		case OpGe:
			if c < 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// compareCoerced compares two values, coercing across numeric kinds (int,
// float, time) so a float-typed index coordinate matches an int query
// literal.
func compareCoerced(a, b attr.Value) (int, error) {
	if a.Kind() == b.Kind() {
		return a.Compare(b)
	}
	numeric := func(k attr.Kind) bool {
		return k == attr.KindInt || k == attr.KindFloat || k == attr.KindTime
	}
	if numeric(a.Kind()) && numeric(b.Kind()) {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return a.Compare(b) // will surface the kind mismatch
}

// AttrGetter adapts vfs.FileAttrs to the Matches lookup interface.
func AttrGetter(fa vfs.FileAttrs) func(string) (attr.Value, bool) {
	return func(field string) (attr.Value, bool) {
		switch field {
		case "size":
			return attr.Int(fa.Size), true
		case "mtime":
			return attr.Time(fa.MTime), true
		case "uid":
			return attr.Int(fa.UID), true
		case "keyword":
			return attr.Str(fa.Keyword), true
		default:
			return attr.Value{}, false
		}
	}
}

// MatchesFile evaluates the query against a file's inode attributes.
func (q Query) MatchesFile(fa vfs.FileAttrs) bool {
	return q.Matches(AttrGetter(fa))
}

// Range converts the predicates on field into a half-open scan interval for
// a B+tree (lo/hi nil = unbounded). It returns ok=false when the field has
// no predicate in the query.
func (q Query) Range(field string) (lo, hi *attr.Value, incLo, incHi, ok bool) {
	iv, ok := q.FieldInterval(field)
	return iv.Lo, iv.Hi, iv.IncLo, iv.IncHi, ok
}

// Interval is the scan interval implied by a query's predicates on one
// field (nil bound = unbounded).
type Interval struct {
	Lo, Hi       *attr.Value
	IncLo, IncHi bool
	// Exact reports that the interval captures the field's predicates
	// completely: every value inside it satisfies them all, so an access
	// path that enforces the interval needs no residual re-check for this
	// field. It is false when bounds of incomparable kinds could not be
	// intersected (the loosest bound is kept and the residual pass decides).
	Exact bool
}

// FieldInterval intersects all predicates on field into one interval. It
// returns ok=false when the field has no predicate in the query. Multiple
// predicates tighten each other ("x>1 & x>5" scans from 5, in either
// order); a contradiction ("x=5 & x=7") yields an empty interval, which
// scans nothing.
func (q Query) FieldInterval(field string) (iv Interval, ok bool) {
	iv = Interval{IncLo: true, IncHi: true, Exact: true}
	for _, p := range q.Preds {
		if p.Field != field {
			continue
		}
		ok = true
		v := p.Value
		switch p.Op {
		case OpEq:
			iv.tightenLo(v, true)
			iv.tightenHi(v, true)
		case OpGt:
			iv.tightenLo(v, false)
		case OpGe:
			iv.tightenLo(v, true)
		case OpLt:
			iv.tightenHi(v, false)
		case OpLe:
			iv.tightenHi(v, true)
		}
	}
	return iv, ok
}

// Empty reports that the interval provably contains no value (lo above
// hi, or a point excluded by a strict bound). Incomparable bounds report
// false: the interval stays a conservative superset and residual
// evaluation decides.
func (iv Interval) Empty() bool {
	if iv.Lo == nil || iv.Hi == nil {
		return false
	}
	c, err := compareCoerced(*iv.Lo, *iv.Hi)
	if err != nil {
		return false
	}
	return c > 0 || (c == 0 && !(iv.IncLo && iv.IncHi))
}

// tightenLo raises the lower bound to (v, inc) if that is stricter.
func (iv *Interval) tightenLo(v attr.Value, inc bool) {
	if iv.Lo == nil {
		iv.Lo, iv.IncLo = &v, inc
		return
	}
	c, err := compareCoerced(v, *iv.Lo)
	if err != nil {
		// Incomparable kinds: keep the older bound (loosest safe choice)
		// and let the residual pass enforce this predicate.
		iv.Exact = false
		return
	}
	if c > 0 || (c == 0 && !inc && iv.IncLo) {
		iv.Lo, iv.IncLo = &v, inc
	}
}

// tightenHi lowers the upper bound to (v, inc) if that is stricter.
func (iv *Interval) tightenHi(v attr.Value, inc bool) {
	if iv.Hi == nil {
		iv.Hi, iv.IncHi = &v, inc
		return
	}
	c, err := compareCoerced(v, *iv.Hi)
	if err != nil {
		iv.Exact = false
		return
	}
	if c < 0 || (c == 0 && !inc && iv.IncHi) {
		iv.Hi, iv.IncHi = &v, inc
	}
}
