// Package proto defines the wire types exchanged between Propeller's
// client, Master Node and Index Nodes (Figure 6). All types are
// gob-encodable and carried by package rpc.
//
// The vocabulary mirrors the paper: an ACGID names one Access-Causality
// Group (an index partition), an IndexSpec declares a named B-tree, hash or
// K-D index over file attributes, and the request/response pairs cover the
// three planes of the system — data (UpdateReq/SearchReq), causality
// (FlushACGReq, CreateACGReq, ReceiveACGReq) and control
// (HeartbeatReq, SplitACGReq, NodeStatsReq and friends). Method name
// constants bind each pair to its rpc dispatch label.
//
// Everything here is plain data: no methods with behaviour, no internal
// state, so the package can be imported from every layer without cycles.
package proto
