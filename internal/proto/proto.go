package proto

import (
	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/query"
)

// ACGID identifies an access-causality group (an index partition).
type ACGID uint64

// NodeID identifies an Index Node.
type NodeID string

// Epoch versions the cluster's placement map. The Master bumps it on every
// placement change — a new group allocated, a split or merge rebinding
// files, a migration, a failure-driven recovery — and stamps it on lookup
// responses, heartbeat replies, and placement reports. Clients key their
// placement caches by it: a node answering with a newer epoch than the
// cached fan-out proves the cache is stale and triggers exactly one
// refetch-and-retry. Nodes track the newest epoch they have seen and quote
// it in stale-placement rejections.
type Epoch uint64

// IndexType enumerates the index structures an Index Node supports (§IV).
type IndexType uint8

// Supported index structures.
const (
	IndexBTree IndexType = iota + 1
	IndexHash
	IndexKD
)

// String implements fmt.Stringer.
func (t IndexType) String() string {
	switch t {
	case IndexBTree:
		return "btree"
	case IndexHash:
		return "hash"
	case IndexKD:
		return "kdtree"
	default:
		return "unknown"
	}
}

// IndexSpec declares a user-defined index with a globally unique name.
type IndexSpec struct {
	// Name is the globally unique index name.
	Name string
	// Type selects the index structure.
	Type IndexType
	// Field is the attribute the index covers (b-tree/hash).
	Field string
	// Fields are the attributes a KD index covers, in dimension order.
	Fields []string
}

// Dims returns the KD dimensionality (0 for non-KD specs).
func (s IndexSpec) Dims() int {
	if s.Type != IndexKD {
		return 0
	}
	return len(s.Fields)
}

// FileMapping tells a client where a file's ACG lives.
type FileMapping struct {
	File index.FileID
	ACG  ACGID
	Node NodeID
	Addr string
	// Epoch is the placement epoch this mapping was current at.
	Epoch Epoch
}

// --- Master RPCs ---

// Master method names.
const (
	MethodRegisterNode    = "master.RegisterNode"
	MethodHeartbeat       = "master.Heartbeat"
	MethodLookupFiles     = "master.LookupFiles"
	MethodLookupIndex     = "master.LookupIndex"
	MethodCreateIndex     = "master.CreateIndex"
	MethodSplitReport     = "master.SplitReport"
	MethodMergeReport     = "master.MergeReport"
	MethodMigrateReport   = "master.MigrateReport"
	MethodReplicateReport = "master.ReplicateReport"
	MethodClusterStats    = "master.ClusterStats"
)

// RegisterNodeReq announces an Index Node to the Master.
type RegisterNodeReq struct {
	Node NodeID
	Addr string
	// CapacityFiles is the node's advertised capacity (free-resource signal
	// used for least-loaded placement).
	CapacityFiles int64
}

// RegisterNodeResp acknowledges registration.
type RegisterNodeResp struct {
	OK bool
}

// ACGMeta is per-ACG metadata reported in heartbeats.
type ACGMeta struct {
	ACG   ACGID
	Files int64
	// Follower marks that the reporter holds this group as a follower
	// replica (receives the primary's WAL stream, serves Lazy reads) rather
	// than as its primary owner.
	Follower bool
	// ReplSeq is the group's replication stream position: on a primary, the
	// sequence of the last acknowledged frame; on a follower, the last
	// contiguously applied sequence. The Master promotes the most-caught-up
	// follower by comparing these.
	ReplSeq uint64
	// Followers lists the follower nodes the primary is currently streaming
	// to (its ack set). A registered replica absent from this list was cut
	// after a failed append and needs re-seeding. Primary reports only.
	Followers []NodeID
}

// HeartbeatReq is the Index Node's periodic status report.
type HeartbeatReq struct {
	Node NodeID
	ACGs []ACGMeta
	// FreeFiles is the remaining capacity.
	FreeFiles int64
	// QueueDepth is the number of requests in the node's admission queue
	// (in-flight Update/Search handlers) at heartbeat time — the load
	// signal the rebalancer uses to move groups off queue-hot nodes even
	// when file counts look balanced.
	QueueDepth int
	// Shed counts requests the node's admission control has rejected with
	// ErrOverloaded since it started (monotonic).
	Shed int64
}

// HeartbeatResp carries Master instructions back to the node.
type HeartbeatResp struct {
	// SplitACGs lists groups the Master wants partitioned (grown past the
	// threshold).
	SplitACGs []ACGID
	// RecoverACGs lists groups the Master re-placed onto this node after
	// their previous owner died: the node adopts each from shared storage
	// (checkpoint image + WAL replay), the paper's recovery path.
	RecoverACGs []ACGID
	// MigrateACGs lists groups the Master wants moved off this node (load
	// rebalancing); the node runs the TransferACG protocol for each.
	MigrateACGs []MigrateOrder
	// DropACGs lists groups this node reported but no longer owns — they
	// were migrated or recovered elsewhere while the node was silent. The
	// node releases its stale copy (the current owner has the data).
	DropACGs []ACGID
	// PromoteACGs lists follower groups on this node the Master promoted to
	// primary after their previous primary died. Re-issued every heartbeat
	// until the node reports the group as primary (at-least-once, like
	// recover orders).
	PromoteACGs []PromoteOrder
	// ReplicateACGs lists groups this node owns as primary that need a
	// follower seeded: the node ships a group image to each destination via
	// the ReceiveACG machinery and then streams acknowledged WAL frames to
	// it. Re-issued until the follower's own heartbeat confirms the copy.
	ReplicateACGs []MigrateOrder
	// Epoch is the Master's current placement epoch.
	Epoch Epoch
	// LeaseNanos is the primary lease the Master grants with this reply:
	// the node may ack updates and serve strict searches for its groups
	// until LeaseNanos elapses on its clock without a renewed heartbeat,
	// after which it must self-fence (refuse with ErrStalePlacement). Zero
	// means leases are off (failover disabled — no promotion can race a
	// zombie primary, so fencing buys nothing). The Master only promotes a
	// replacement after a strictly longer silence, so a partitioned
	// primary is provably fenced before a successor can ack.
	LeaseNanos int64
}

// MigrateOrder instructs a node to transfer one of its groups to a peer
// (or, as a replicate order, to seed a follower copy there).
type MigrateOrder struct {
	ACG  ACGID
	Dest NodeID
	Addr string
}

// PromoteOrder instructs a node to promote its follower copy of a group to
// primary.
type PromoteOrder struct {
	ACG ACGID
	// Seq is the dead primary's last heartbeat-reported replication
	// sequence. A promoting follower behind it provably missed acknowledged
	// frames and reconciles the shared-store WAL tail before serving.
	Seq uint64
	// Followers is the surviving replica set: the new primary adopts it as
	// its streaming ack set.
	Followers []ReplicaRef
}

// ReplicaRef names one replica holder of a group.
type ReplicaRef struct {
	Node NodeID
	Addr string
}

// GroupRoute is the per-group replica routing the Master stamps into index
// lookups: the primary plus every seeded, alive follower. Lazy searches may
// read from any entry; strict searches and updates go to the primary only.
type GroupRoute struct {
	ACG       ACGID
	Primary   ReplicaRef
	Followers []ReplicaRef
}

// LookupFilesReq resolves (or allocates) the ACG and Index Node of files.
// Files sharing a GroupHint are placed in the same new ACG when unknown —
// the hint is the client's connected-component id from its captured ACG.
type LookupFilesReq struct {
	Files []index.FileID
	// GroupHints parallels Files (0 = no hint).
	GroupHints []uint64
	// Allocate controls whether unknown files get a new ACG (true for
	// indexing, false for read-only lookups).
	Allocate bool
}

// LookupFilesResp returns one mapping per requested file.
type LookupFilesResp struct {
	Mappings []FileMapping
	// Epoch is the placement epoch the mappings were resolved at.
	Epoch Epoch
}

// LookupIndexReq finds every Index Node holding ACGs that carry the named
// index.
type LookupIndexReq struct {
	IndexName string
}

// IndexTarget is one (node, ACG set) search destination.
type IndexTarget struct {
	Node NodeID
	Addr string
	ACGs []ACGID
}

// LookupIndexResp lists the parallel fan-out targets for a search.
type LookupIndexResp struct {
	Spec    IndexSpec
	Targets []IndexTarget
	// Routes carries per-group replica routing (primary + seeded followers)
	// so Lazy searches can spread across replicas. Targets stays
	// primary-only: strict searches and older clients keep their exact
	// fan-out.
	Routes []GroupRoute
	// Epoch is the placement epoch the fan-out was resolved at.
	Epoch Epoch
}

// CreateIndexReq registers a named index cluster-wide.
type CreateIndexReq struct {
	Spec IndexSpec
}

// CreateIndexResp acknowledges creation.
type CreateIndexResp struct {
	OK bool
}

// SplitReportReq tells the Master an Index Node finished partitioning an
// oversized ACG in the background. SideB lists the files that moved to the
// new group.
type SplitReportReq struct {
	Node   NodeID
	OldACG ACGID
	SideB  []index.FileID
}

// SplitReportResp assigns the new ACG an id and a destination node.
type SplitReportResp struct {
	NewACG ACGID
	Dest   NodeID
	Addr   string
	// Epoch is the placement epoch after the split's rebind (the splitting
	// node adopts it immediately, so searches routed by pre-split caches
	// notice the move in the same round).
	Epoch Epoch
}

// MergeReportReq tells the Master an Index Node folded group Src into Dst
// (both local to the node) to prevent index fragmentation from many tiny
// groups (§III clusters small components; nodes may merge later).
type MergeReportReq struct {
	Node NodeID
	Dst  ACGID
	Src  ACGID
}

// MergeReportResp acknowledges the rebinding.
type MergeReportResp struct {
	// Moved is the number of file mappings rebound from Src to Dst.
	Moved int
	// Epoch is the placement epoch after the rebind.
	Epoch Epoch
}

// MigrateReportReq tells the Master a node finished transferring one of its
// groups to Dest (the TransferACG protocol shipped the image and the
// destination installed it). The Master rebinds the placement and bumps the
// epoch; only then does the source release its copy.
type MigrateReportReq struct {
	Node NodeID
	ACG  ACGID
	Dest NodeID
}

// MigrateReportResp acknowledges the rebinding.
type MigrateReportResp struct {
	// Epoch is the placement epoch after the move; the source stamps it on
	// the released group's tombstone so stale traffic learns how far behind
	// it is.
	Epoch Epoch
}

// ReplicateReportReq tells the Master a primary finished seeding a follower
// copy of one of its groups onto Dest (the image shipped and installed).
// The follower's own heartbeat is the durable confirmation; this report
// just marks the replica seeded a round earlier so routes pick it up.
type ReplicateReportReq struct {
	Node NodeID
	ACG  ACGID
	Dest NodeID
}

// ReplicateReportResp acknowledges the seeding.
type ReplicateReportResp struct {
	// Epoch is the placement epoch after the replica set change.
	Epoch Epoch
}

// ClusterStatsReq asks for a cluster summary.
type ClusterStatsReq struct{}

// NodeStats summarizes one Index Node from the Master's view.
type NodeStats struct {
	Node  NodeID
	Addr  string
	ACGs  int
	Files int64
	// QueueDepth is the admission-queue depth the node reported in its
	// last heartbeat.
	QueueDepth int
	// FollowerGroups is the number of groups this node holds as a follower
	// replica (not counted in ACGs, which is primary ownership).
	FollowerGroups int
	// ReplicaLagFrames sums, over this node's seeded follower groups, how
	// many frames its last reported stream position trails the primary's.
	ReplicaLagFrames int64
	// Promotions counts follower→primary promotions the Master performed
	// onto this node.
	Promotions int64
}

// ClusterStatsResp is the cluster summary.
type ClusterStatsResp struct {
	Nodes   []NodeStats
	Files   int64
	ACGs    int
	Indexes []IndexSpec
	// PlacementEpoch is the Master's current placement epoch.
	PlacementEpoch Epoch
	// MigrationsOrdered counts rebalance/forced migrations the Master has
	// ordered since it started.
	MigrationsOrdered int64
	// Recoveries counts failure-driven group reassignments (each one rode a
	// recover order to the new owner).
	Recoveries int64
	// DeadNodes is the number of registered nodes currently considered
	// failed by the liveness sweep.
	DeadNodes int
	// ReplicatedGroups counts groups with at least one seeded follower
	// replica — the groups whose failover path is instant promotion rather
	// than shared-store replay.
	ReplicatedGroups int
	// Promotions counts follower→primary promotions the Master has
	// performed since it started (failovers that skipped replay).
	Promotions int64
}

// --- Index Node RPCs ---

// Index Node method names.
const (
	MethodUpdate         = "in.Update"
	MethodSearch         = "in.Search"
	MethodFlushACG       = "in.FlushACG"
	MethodCreateACG      = "in.CreateACG"
	MethodReceiveACG     = "in.ReceiveACG"
	MethodSplitACG       = "in.SplitACG"
	MethodNodeStats      = "in.NodeStats"
	MethodFollowerAppend = "in.FollowerAppend"
	// MethodReceiveACGChunked is the stream form of ReceiveACG: the group
	// image arrives as a bounded chunk stream of self-framed records and is
	// applied incrementally, so a large ACG never materializes as one frame
	// (or one contiguous buffer) on the receiver.
	MethodReceiveACGChunked = "in.ReceiveACGChunked"
)

// ReceiveACGStreamMeta opens a chunked ACG transfer: the fields of
// ReceiveACGReq that describe the move, minus the image payload — that
// follows as chunk frames of image records (see indexnode's record
// format). Semantics of Epoch, Follower and ReplSeq match ReceiveACGReq.
type ReceiveACGStreamMeta struct {
	ACG      ACGID
	Epoch    Epoch
	Follower bool
	ReplSeq  uint64
}

// IndexEntry is one (file, value) posting for a named index.
type IndexEntry struct {
	File  index.FileID
	Value attr.Value
	// KDCoords carries the point for KD indices (Value unused).
	KDCoords []float64
	// Delete marks a removal instead of an insertion.
	Delete bool
}

// UpdateReq appends file-indexing requests for one ACG. The Index Node
// acknowledges after the WAL append + cache insert — the paper's lazy
// indexing fast path.
type UpdateReq struct {
	ACG       ACGID
	IndexName string
	Entries   []IndexEntry
	// Client identifies the submitting tenant for per-client fairness in
	// the node's admission queue (empty = anonymous, pooled as one tenant).
	Client string
}

// UpdateResp acknowledges the update.
type UpdateResp struct {
	// Cached is the number of entries sitting in the index cache.
	Cached int
	// Epoch is the newest placement epoch the node has seen (clients use a
	// newer-than-cached epoch as a placement-cache invalidation signal).
	Epoch Epoch
}

// Consistency selects the read semantics of a search.
type Consistency uint8

// Consistency modes.
const (
	// ConsistencyStrict commits each group's lazy cache before querying it
	// (the paper's commit-on-search rule): results reflect every
	// acknowledged update. The default.
	ConsistencyStrict Consistency = iota
	// ConsistencyLazy skips the cache commit and queries the durable
	// indices as-is: faster, but acknowledged-yet-uncommitted updates (up
	// to one commit timeout old) may be missing.
	ConsistencyLazy
)

// String implements fmt.Stringer.
func (c Consistency) String() string {
	switch c {
	case ConsistencyStrict:
		return "strict"
	case ConsistencyLazy:
		return "lazy"
	default:
		return "unknown"
	}
}

// SearchReq queries the named index on a set of ACGs held by this node.
// The predicate arrives either structured in Preds (preferred: no re-parse,
// no string-escaping pitfalls) or textual in Query (package query syntax;
// used when Preds is empty). NowUnixNano anchors relative mtime predicates
// in the textual form.
//
// Pagination: when Limit > 0 the node returns at most Limit files, the
// smallest matching FileIDs first. When AfterSet, only files with
// FileID > After are considered — because responses are ascending, the last
// FileID of one page is the resume cursor for the next, and the same cursor
// value is valid on every node of the fan-out.
type SearchReq struct {
	ACGs        []ACGID
	IndexName   string
	Query       string
	Preds       []query.Predicate
	NowUnixNano int64
	// Limit bounds the response size (0 = unlimited, the v1 behavior).
	Limit int
	// After / AfterSet form the resume cursor (exclusive lower bound).
	After    index.FileID
	AfterSet bool
	// Consistency selects strict (commit-on-search) or lazy reads.
	Consistency Consistency
	// Client identifies the submitting tenant for per-client fairness in
	// the node's admission queue (empty = anonymous, pooled as one tenant).
	Client string
}

// SearchResp returns matching files in ascending FileID order.
type SearchResp struct {
	Files []index.FileID
	// CommitLatencyNanos reports the virtual time spent committing cached
	// updates before the search (consistency cost; Figure 10). A serial
	// pass sums the per-group commit windows exactly; a parallel fan-out
	// reports the slowest worker's window (overlapped windows on the
	// shared clock cannot be summed without double-counting). The
	// experiment harness pins the serial pass, so figures always see the
	// exact sum.
	CommitLatencyNanos int64
	// More reports that matches beyond Limit exist (resume with the last
	// returned FileID as the cursor).
	More bool
	// MaxRetained is the peak number of postings any single collector
	// buffered while serving this request. Every access path — B-tree
	// range scan, hash point lookup, KD box query — streams candidates
	// one at a time into a bounded collector, so with Limit > 0 this
	// never exceeds the page size (how tests verify the per-page budget).
	// A multi-ACG search may fan out over a bounded worker pool with one
	// collector per worker; aggregate transient buffering is then at most
	// the fan-out width (<= 8) times this value.
	MaxRetained int
	// Epoch is the newest placement epoch the node has seen. A value newer
	// than the epoch the client resolved its fan-out at proves the cached
	// fan-out may be incomplete (a split, merge or migration moved groups
	// since); the client refetches and retries once.
	Epoch Epoch
}

// ACGEdge is one weighted causality edge.
type ACGEdge struct {
	Src, Dst index.FileID
	Weight   int64
}

// FlushACGReq merges a client-captured ACG fragment into the node's
// authoritative graph for the group (weak consistency).
type FlushACGReq struct {
	ACG   ACGID
	Edges []ACGEdge
	// Vertices lists files with no edges yet.
	Vertices []index.FileID
}

// FlushACGResp acknowledges the merge.
type FlushACGResp struct {
	OK bool
}

// CreateACGReq provisions an empty group on the node.
type CreateACGReq struct {
	ACG ACGID
	// Files pre-declares group membership.
	Files []index.FileID
}

// CreateACGResp acknowledges creation.
type CreateACGResp struct {
	OK bool
}

// MigratedIndex carries one index's full contents during ACG migration.
type MigratedIndex struct {
	Spec    IndexSpec
	Entries []IndexEntry
}

// ReceiveACGReq transfers an ACG to its new home node: the destination of a
// background split, or of a live migration (TransferACG). The same gob
// image doubles as the group's shared-storage checkpoint — what a
// failure-driven recovery loads before replaying the group's WAL.
type ReceiveACGReq struct {
	ACG     ACGID
	Files   []index.FileID
	Edges   []ACGEdge
	Indexes []MigratedIndex
	// WAL carries the group's framed, un-checkpointed log so acknowledged-
	// but-uncommitted entries survive the move (empty when the sender
	// committed the group before imaging it).
	WAL []byte
	// Epoch stamps the placement move that shipped this group.
	Epoch Epoch
	// Follower marks a replica-seeding transfer: the receiver installs the
	// image as a follower copy — serves Lazy reads, rejects updates and
	// strict searches with ErrStalePlacement, and never writes the group's
	// shared-store mirror (that remains the primary's) — instead of taking
	// primary ownership.
	Follower bool
	// ReplSeq is the sender's replication stream position at image time;
	// the receiver's follower stream resumes from it. Non-follower
	// transfers carry it too so a migrated primary's sequence stays
	// monotonic across moves.
	ReplSeq uint64
}

// ReceiveACGResp acknowledges the transfer.
type ReceiveACGResp struct {
	OK bool
}

// SplitACGReq instructs the node to background-partition an oversized group.
type SplitACGReq struct {
	ACG ACGID
}

// SplitACGResp reports the result of the split.
type SplitACGResp struct {
	// Moved is the number of files migrated to the new group.
	Moved int
	// NewACG is the id the Master assigned.
	NewACG ACGID
	// CutWeight is the partition cut (inter-group accesses).
	CutWeight int64
}

// FollowerAppendReq streams one acknowledged WAL frame from a group's
// primary to one follower. Appends are synchronous on the update path:
// acknowledged durability is primary WAL append + shared-store mirror +
// follower appends. Seq numbers frames contiguously; a follower seeing a
// gap (it missed frames) refuses, the primary cuts it from the ack set, and
// the Master re-seeds it.
type FollowerAppendReq struct {
	ACG ACGID
	// Frames is one framed WAL record (the exact bytes the primary
	// appended locally and mirrored to shared storage).
	Frames []byte
	// Seq is this frame's sequence; the follower accepts iff its applied
	// position is exactly Seq-1 (== Seq is an idempotent duplicate).
	Seq uint64
	// Epoch is the newest placement epoch the primary has seen.
	Epoch Epoch
}

// FollowerAppendResp acknowledges the append.
type FollowerAppendResp struct {
	// Seq is the follower's applied stream position after the append.
	Seq uint64
	// Epoch is the newest placement epoch the follower has seen.
	Epoch Epoch
}

// NodeStatsReq asks an Index Node for its local stats.
type NodeStatsReq struct{}

// NodeStatsResp summarizes an Index Node.
type NodeStatsResp struct {
	Node       NodeID
	ACGs       int
	Files      int64
	CachedOps  int
	WALRecords int
	PoolHits   int64
	PoolMisses int64
	IndexSpecs []IndexSpec
	// Commits counts lazy-cache commits since the node started;
	// CommitEntries counts the cached entries those commits merged into
	// durable indices (acknowledged arrivals — entries superseded by
	// coalescing still count here and additionally in CoalescedEntries).
	Commits       int64
	CommitEntries int64
	// CommitFailures counts commits that returned an error. The tick
	// sweep keeps committing the remaining groups past a wedged one, so a
	// steadily growing value means some group's cache cannot drain.
	CommitFailures int64
	// KDRebuilds counts full K-D tree reconstructions. The batch commit
	// engine performs at most one per (KD index, commit) — deletes and
	// re-indexed points are folded into the postings map first and the
	// tree is rebuilt once, instead of once per entry.
	KDRebuilds int64
	// CoalescedEntries counts acknowledged entries superseded in the lazy
	// cache before their commit (last-write-wins per (index, file)): the
	// index mutations the commit window saved.
	CoalescedEntries int64
	// HashScanFallbacks counts per-group scans where a search named a
	// hash index but was not a point query and degraded to a full-table
	// scan of that group's index (a request spanning N groups counts N).
	// A growing value means a query mix the hash index cannot serve — the
	// field wants a B-tree.
	HashScanFallbacks int64
	// PerACGCommits breaks Commits down by group, exposing per-partition
	// commit activity (independent partitions should commit independently).
	// Groups merged away have their counts folded into the merge
	// destination, so the values always sum to Commits.
	PerACGCommits map[ACGID]int64
	// WALBatches / WALBatchedRecords / MaxWALBatch summarize WAL group
	// commit: how many sequential device writes absorbed how many appends,
	// and the largest single batch.
	WALBatches        int64
	WALBatchedRecords int64
	MaxWALBatch       int64
	// PlacementEpoch is the newest placement epoch the node has seen
	// (heartbeat replies, split/merge/migrate reports, received groups).
	PlacementEpoch Epoch
	// StalePlacementRejects counts requests refused with ErrStalePlacement
	// because they targeted a group this node released (migrated away or
	// recovered elsewhere).
	StalePlacementRejects int64
	// GroupsMigratedOut counts groups this node transferred to peers under
	// Master migration orders.
	GroupsMigratedOut int64
	// GroupsRecovered counts groups this node adopted from shared storage
	// after their previous owner died.
	GroupsRecovered int64
	// QueueDepth is the current admission-queue depth (in-flight
	// Update/Search handlers).
	QueueDepth int
	// UpdatesShed / SearchesShed count requests rejected with
	// ErrOverloaded because the node was at its admission limit.
	UpdatesShed  int64
	SearchesShed int64
	// FairnessSheds counts the subset of sheds issued below the hard limit
	// because one tenant exceeded its fair share of the queue.
	FairnessSheds int64
	// FollowerGroups is the number of groups this node currently holds as a
	// follower replica.
	FollowerGroups int
	// FollowerAppends counts WAL frames this node applied from primaries'
	// replication streams.
	FollowerAppends int64
	// FollowerCuts counts followers this node (as primary) dropped from an
	// ack set after a failed or refused stream append.
	FollowerCuts int64
	// Promotions counts follower groups this node promoted to primary under
	// Master promote orders.
	Promotions int64
	// SearchesServed counts search requests this node admitted and served —
	// the per-replica load signal the follower-read scaling bench reads.
	SearchesServed int64
	// LeaseRejects counts updates and strict searches refused with
	// ErrStalePlacement because the node's primary lease had expired (it
	// could not reach the Master long enough that a peer may have been
	// promoted over it).
	LeaseRejects int64
	// PeerConnEvictions counts peer connections the node's LRU conn cache
	// closed to stay under its cap. A steadily growing value means the
	// node talks to more distinct peers than the cap — replication and
	// migration then pay a reconnect per stream.
	PeerConnEvictions int64
}
