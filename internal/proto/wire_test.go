package proto

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/query"
)

// wireMsg is the marshal/unmarshal pair every hot-path message implements
// (rpc.WireMarshaler + rpc.WireUnmarshaler, restated locally to keep the
// proto tests free of an rpc import).
type wireMsg interface {
	MarshalWire(dst []byte) []byte
	UnmarshalWire(data []byte) error
}

// wireFixtures returns one populated value per binary message type. Slices
// left empty are nil (UnmarshalWire's convention), so DeepEqual round-trips
// exactly.
func wireFixtures() map[string]wireMsg {
	return map[string]wireMsg{
		"UpdateReq": &UpdateReq{
			ACG: 42, IndexName: "size", Client: "tenant-7",
			Entries: []IndexEntry{
				{File: 1, Value: attr.Int(-9)},
				{File: 9, Value: attr.Str("x/y z")},
				{File: 12, Delete: true},
				{File: 900, KDCoords: []float64{3.5, -0.25, math.MaxFloat64}},
				{File: 901, Value: attr.Time(time.Unix(1402617600, 12)), KDCoords: []float64{0}},
				{File: 1 << 60, Value: attr.Float(-2.75)},
			},
		},
		"UpdateReq/empty": &UpdateReq{},
		"UpdateResp":      &UpdateResp{Cached: -3, Epoch: 77},
		"SearchReq": &SearchReq{
			ACGs: []ACGID{1, 5, 1 << 40}, IndexName: "inode",
			Query: "size>8m & mtime<1week",
			Preds: []query.Predicate{
				{Field: "size", Op: query.OpGt, Value: attr.Int(8 << 20)},
				{Field: "name", Op: query.OpEq, Value: attr.Str("a.log")},
				{Field: "bad", Op: query.OpLe}, // zero Value survives
			},
			NowUnixNano: -1234567, Limit: 128, After: 77, AfterSet: true,
			Consistency: ConsistencyStrict, Client: "t9",
		},
		"SearchReq/empty": &SearchReq{},
		"SearchResp": &SearchResp{
			Files:              []index.FileID{3, 4, 9, 1000, 1 << 50},
			CommitLatencyNanos: 12345, More: true, MaxRetained: -1, Epoch: 8,
		},
		"SearchResp/empty":   &SearchResp{},
		"FollowerAppendReq":  &FollowerAppendReq{ACG: 6, Seq: 19, Epoch: 2, Frames: []byte{0, 1, 2, 0xFF}},
		"FollowerAppendResp": &FollowerAppendResp{Seq: 20, Epoch: 3},
		"ReceiveACGStreamMeta": &ReceiveACGStreamMeta{
			ACG: 11, Epoch: 4, Follower: true, ReplSeq: 999,
		},
	}
}

func TestWireRoundTrip(t *testing.T) {
	for name, msg := range wireFixtures() {
		raw := msg.MarshalWire(nil)
		got := reflect.New(reflect.TypeOf(msg).Elem()).Interface().(wireMsg)
		if err := got.UnmarshalWire(raw); err != nil {
			t.Errorf("%s: unmarshal: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("%s: round trip mismatch\n got %+v\nwant %+v", name, got, msg)
		}
		// Trailing bytes are future appended fields: tolerated, not state.
		withTail := append(append([]byte{}, raw...), 0xEE, 0xEE)
		if err := got.UnmarshalWire(withTail); err != nil {
			t.Errorf("%s: trailing bytes rejected: %v", name, err)
		}
	}
}

// TestWireTruncationNeverPanics feeds every strict prefix of each encoded
// message to its decoder: errors are expected, panics and hangs are not.
func TestWireTruncationNeverPanics(t *testing.T) {
	for name, msg := range wireFixtures() {
		raw := msg.MarshalWire(nil)
		for cut := 0; cut < len(raw); cut++ {
			got := reflect.New(reflect.TypeOf(msg).Elem()).Interface().(wireMsg)
			_ = got.UnmarshalWire(raw[:cut]) // must simply not panic
		}
		if name == "" {
			t.Fatal("unreachable")
		}
	}
}

// TestWireBitFlipsNeverPanic flips each bit of each encoded message. The
// decoder may error or may produce a different valid message (frame CRC
// catches corruption in transit; this guards the parser itself), but it
// must not panic or over-allocate.
func TestWireBitFlipsNeverPanic(t *testing.T) {
	for _, msg := range wireFixtures() {
		raw := msg.MarshalWire(nil)
		for i := 0; i < len(raw); i++ {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte{}, raw...)
				mut[i] ^= 1 << bit
				got := reflect.New(reflect.TypeOf(msg).Elem()).Interface().(wireMsg)
				_ = got.UnmarshalWire(mut)
			}
		}
	}
}

func TestWireRejectsUnknownVersion(t *testing.T) {
	raw := (&UpdateResp{Cached: 1}).MarshalWire(nil)
	raw[0] = 0x7F
	var r UpdateResp
	if err := r.UnmarshalWire(raw); err == nil {
		t.Fatal("decoder accepted an unknown message version")
	}
	if err := r.UnmarshalWire(nil); err == nil {
		t.Fatal("decoder accepted an empty message")
	}
}

// fuzzTags maps a leading tag byte to a fresh message of each binary type,
// so one fuzz corpus covers every decoder.
func fuzzMsgFor(tag byte) wireMsg {
	switch tag {
	case 0:
		return &UpdateReq{}
	case 1:
		return &UpdateResp{}
	case 2:
		return &SearchReq{}
	case 3:
		return &SearchResp{}
	case 4:
		return &FollowerAppendReq{}
	case 5:
		return &FollowerAppendResp{}
	case 6:
		return &ReceiveACGStreamMeta{}
	default:
		return nil
	}
}

// FuzzWireDecode holds every binary decoder to two properties under
// arbitrary input: never panic, and when input does decode, the decoded
// message re-encodes canonically (marshal∘unmarshal is a fixpoint after
// one round — byte comparison, so NaN floats and other DeepEqual hazards
// don't matter).
func FuzzWireDecode(f *testing.F) {
	tags := map[string]byte{
		"UpdateReq": 0, "UpdateReq/empty": 0, "UpdateResp": 1,
		"SearchReq": 2, "SearchReq/empty": 2, "SearchResp": 3,
		"SearchResp/empty": 3, "FollowerAppendReq": 4,
		"FollowerAppendResp": 5, "ReceiveACGStreamMeta": 6,
	}
	for name, msg := range wireFixtures() {
		f.Add(append([]byte{tags[name]}, msg.MarshalWire(nil)...))
	}
	f.Add([]byte{})
	f.Add([]byte{2, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		msg := fuzzMsgFor(data[0])
		if msg == nil {
			return
		}
		if err := msg.UnmarshalWire(data[1:]); err != nil {
			return
		}
		first := msg.MarshalWire(nil)
		again := fuzzMsgFor(data[0])
		if err := again.UnmarshalWire(first); err != nil {
			t.Fatalf("canonical bytes failed to decode: %v\nbytes: %x", err, first)
		}
		second := again.MarshalWire(nil)
		if !bytes.Equal(first, second) {
			t.Fatalf("re-marshal is not canonical\nfirst:  %x\nsecond: %x", first, second)
		}
	})
}
