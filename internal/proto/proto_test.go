package proto

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"

	"propeller/internal/attr"
	"propeller/internal/index"
)

func roundTrip[T any](t *testing.T, in T) T {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out T
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestIndexTypeString(t *testing.T) {
	tests := []struct {
		ty   IndexType
		want string
	}{
		{IndexBTree, "btree"},
		{IndexHash, "hash"},
		{IndexKD, "kdtree"},
		{IndexType(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.ty.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.ty, got, tt.want)
		}
	}
}

func TestIndexSpecDims(t *testing.T) {
	kd := IndexSpec{Name: "x", Type: IndexKD, Fields: []string{"a", "b", "c"}}
	if kd.Dims() != 3 {
		t.Errorf("Dims = %d, want 3", kd.Dims())
	}
	bt := IndexSpec{Name: "y", Type: IndexBTree, Field: "a"}
	if bt.Dims() != 0 {
		t.Errorf("btree Dims = %d, want 0", bt.Dims())
	}
}

func TestUpdateReqGobRoundTrip(t *testing.T) {
	in := UpdateReq{
		ACG:       7,
		IndexName: "size",
		Entries: []IndexEntry{
			{File: 1, Value: attr.Int(42)},
			{File: 2, Value: attr.Str("keyword")},
			{File: 3, Value: attr.Time(time.Unix(1700000000, 1))},
			{File: 4, KDCoords: []float64{1.5, -2.5}},
			{File: 5, Delete: true},
		},
	}
	out := roundTrip(t, in)
	if out.ACG != in.ACG || out.IndexName != in.IndexName || len(out.Entries) != len(in.Entries) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if !out.Entries[0].Value.Equal(attr.Int(42)) {
		t.Error("int value lost")
	}
	if !out.Entries[1].Value.Equal(attr.Str("keyword")) {
		t.Error("string value lost")
	}
	if !out.Entries[2].Value.Equal(attr.Time(time.Unix(1700000000, 1))) {
		t.Error("time value lost")
	}
	if len(out.Entries[3].KDCoords) != 2 || out.Entries[3].KDCoords[1] != -2.5 {
		t.Error("kd coords lost")
	}
	if !out.Entries[4].Delete {
		t.Error("delete flag lost")
	}
	// Invalid (zero) values survive too — entry 4 and 5 carry none.
	if out.Entries[4].Value.IsValid() {
		t.Error("zero value should stay invalid")
	}
}

func TestSearchAndLookupGobRoundTrip(t *testing.T) {
	sr := roundTrip(t, SearchReq{
		ACGs: []ACGID{1, 2, 3}, IndexName: "size",
		Query: "size>16m", NowUnixNano: 123456789,
	})
	if len(sr.ACGs) != 3 || sr.Query != "size>16m" {
		t.Errorf("search req = %+v", sr)
	}
	lr := roundTrip(t, LookupIndexResp{
		Spec: IndexSpec{Name: "size", Type: IndexBTree, Field: "size"},
		Targets: []IndexTarget{
			{Node: "in-00", Addr: "pipe:in-00", ACGs: []ACGID{1, 2}},
		},
	})
	if lr.Spec.Name != "size" || len(lr.Targets) != 1 || len(lr.Targets[0].ACGs) != 2 {
		t.Errorf("lookup resp = %+v", lr)
	}
}

func TestReceiveACGGobRoundTrip(t *testing.T) {
	in := ReceiveACGReq{
		ACG:   9,
		Files: []index.FileID{1, 2},
		Edges: []ACGEdge{{Src: 1, Dst: 2, Weight: 5}},
		Indexes: []MigratedIndex{{
			Spec:    IndexSpec{Name: "size", Type: IndexBTree, Field: "size"},
			Entries: []IndexEntry{{File: 1, Value: attr.Int(7)}},
		}},
	}
	out := roundTrip(t, in)
	if out.ACG != 9 || len(out.Files) != 2 || out.Edges[0].Weight != 5 {
		t.Errorf("receive req = %+v", out)
	}
	if len(out.Indexes) != 1 || !out.Indexes[0].Entries[0].Value.Equal(attr.Int(7)) {
		t.Error("migrated index lost")
	}
}
