// Hand-rolled binary wire codec for the hot-path messages. Every request
// the data plane sends millions of times — updates, searches, follower
// appends — implements rpc's MarshalWire/UnmarshalWire pair here, so the
// transport picks the binary form automatically; the cold control plane
// (registration, heartbeats, placement) stays on gob and nothing breaks if
// one side has not learned a message's binary form yet (the rpc codec byte
// keeps both decodable on one connection).
//
// Layout conventions: each message starts with a version byte (wireV1);
// unsigned integers are uvarints, signed ones zigzag varints; strings and
// byte slices carry a uvarint length prefix; attr.Values are their
// order-preserving Encode bytes behind a uvarint length (they are not
// self-delimiting — a string value runs to the end of its buffer);
// ascending FileID lists (search results) are delta-coded so dense result
// pages cost ~1 byte per id. Decoders must survive arbitrary bytes without
// panicking — FuzzWireDecode holds them to that — so every read is
// bounds-checked and every claimed element count is validated against the
// remaining buffer before allocation.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/query"
)

// wireV1 versions each message's binary layout. A decoder seeing a newer
// version refuses (the sender should have fallen back to gob for a peer
// this old); trailing bytes after the known fields are ignored so future
// appended fields stay compatible.
const wireV1 = 1

// ErrWire reports a binary message that does not parse.
var ErrWire = errors.New("proto: malformed wire message")

func wireErr(what string) error {
	return fmt.Errorf("%w: %s", ErrWire, what)
}

// --- primitive helpers -------------------------------------------------

func getUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, wireErr("bad uvarint")
	}
	return v, b[n:], nil
}

func getVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, wireErr("bad varint")
	}
	return v, b[n:], nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func getString(b []byte) (string, []byte, error) {
	raw, rest, err := getBytesRef(b)
	if err != nil {
		return "", nil, err
	}
	return string(raw), rest, nil
}

func appendBytes(dst, p []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p)))
	return append(dst, p...)
}

// getBytesRef returns a slice aliasing b — callers that retain it past the
// buffer's lifetime copy it (getBytes).
func getBytesRef(b []byte) ([]byte, []byte, error) {
	n, rest, err := getUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, wireErr("length prefix exceeds buffer")
	}
	return rest[:n], rest[n:], nil
}

func getBytes(b []byte) ([]byte, []byte, error) {
	raw, rest, err := getBytesRef(b)
	if err != nil {
		return nil, nil, err
	}
	if len(raw) == 0 {
		return nil, rest, nil
	}
	out := make([]byte, len(raw))
	copy(out, raw)
	return out, rest, nil
}

// countGuard validates a claimed element count against the bytes left:
// every element costs at least min bytes, so a count the buffer cannot
// possibly hold is rejected before any allocation (a fuzzer's favorite
// way to ask for a 2^60-element slice).
func countGuard(n uint64, b []byte, min int) error {
	if min < 1 {
		min = 1
	}
	if n > uint64(len(b)/min)+1 && n > uint64(len(b)) {
		return wireErr("element count exceeds buffer")
	}
	return nil
}

// appendValue encodes an attr.Value behind a uvarint length. The zero
// (invalid) Value encodes as the single byte 0, mirroring its gob form.
func appendValue(dst []byte, v attr.Value) []byte {
	if !v.IsValid() {
		dst = binary.AppendUvarint(dst, 1)
		return append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(v.EncodedLen()))
	return v.Encode(dst)
}

func getValue(b []byte) (attr.Value, []byte, error) {
	raw, rest, err := getBytesRef(b)
	if err != nil {
		return attr.Value{}, nil, err
	}
	if len(raw) == 1 && raw[0] == 0 {
		return attr.Value{}, rest, nil
	}
	v, err := attr.Decode(raw)
	if err != nil {
		return attr.Value{}, nil, fmt.Errorf("%w: %v", ErrWire, err)
	}
	return v, rest, nil
}

func checkVersion(b []byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, wireErr("empty message")
	}
	if b[0] != wireV1 {
		return nil, wireErr(fmt.Sprintf("unknown message version %d", b[0]))
	}
	return b[1:], nil
}

// --- IndexEntry --------------------------------------------------------

// Entry flag bits.
const (
	entryDelete byte = 1 << 0
	entryHasKD  byte = 1 << 1
)

// AppendWire appends e's binary encoding to dst. Exported because the ACG
// image record streams (indexnode) reuse the exact entry layout, so a
// migrated index and an update batch are byte-compatible.
func (e IndexEntry) AppendWire(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(e.File))
	var flags byte
	if e.Delete {
		flags |= entryDelete
	}
	if len(e.KDCoords) > 0 {
		flags |= entryHasKD
	}
	dst = append(dst, flags)
	dst = appendValue(dst, e.Value)
	if flags&entryHasKD != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(e.KDCoords)))
		for _, c := range e.KDCoords {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c))
		}
	}
	return dst
}

// DecodeIndexEntryWire parses one entry, returning the remaining buffer.
func DecodeIndexEntryWire(b []byte) (IndexEntry, []byte, error) {
	var e IndexEntry
	f, b, err := getUvarint(b)
	if err != nil {
		return e, nil, err
	}
	e.File = index.FileID(f)
	if len(b) == 0 {
		return e, nil, wireErr("truncated entry flags")
	}
	flags := b[0]
	b = b[1:]
	e.Delete = flags&entryDelete != 0
	if e.Value, b, err = getValue(b); err != nil {
		return e, nil, err
	}
	if flags&entryHasKD != 0 {
		n, rest, err := getUvarint(b)
		if err != nil {
			return e, nil, err
		}
		if n > uint64(len(rest)/8) {
			return e, nil, wireErr("kd coord count exceeds buffer")
		}
		e.KDCoords = make([]float64, n)
		for i := range e.KDCoords {
			e.KDCoords[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest))
			rest = rest[8:]
		}
		b = rest
	}
	return e, b, nil
}

// --- UpdateReq / UpdateResp --------------------------------------------

// MarshalWire implements rpc.WireMarshaler.
func (r *UpdateReq) MarshalWire(dst []byte) []byte {
	dst = append(dst, wireV1)
	dst = binary.AppendUvarint(dst, uint64(r.ACG))
	dst = appendString(dst, r.IndexName)
	dst = appendString(dst, r.Client)
	dst = binary.AppendUvarint(dst, uint64(len(r.Entries)))
	for _, e := range r.Entries {
		dst = e.AppendWire(dst)
	}
	return dst
}

// UnmarshalWire implements rpc.WireUnmarshaler.
func (r *UpdateReq) UnmarshalWire(data []byte) error {
	*r = UpdateReq{}
	b, err := checkVersion(data)
	if err != nil {
		return err
	}
	var acg uint64
	if acg, b, err = getUvarint(b); err != nil {
		return err
	}
	r.ACG = ACGID(acg)
	if r.IndexName, b, err = getString(b); err != nil {
		return err
	}
	if r.Client, b, err = getString(b); err != nil {
		return err
	}
	n, b, err := getUvarint(b)
	if err != nil {
		return err
	}
	if err := countGuard(n, b, 3); err != nil {
		return err
	}
	if n > 0 {
		r.Entries = make([]IndexEntry, 0, n)
		for i := uint64(0); i < n; i++ {
			var e IndexEntry
			if e, b, err = DecodeIndexEntryWire(b); err != nil {
				return err
			}
			r.Entries = append(r.Entries, e)
		}
	}
	return nil
}

// MarshalWire implements rpc.WireMarshaler.
func (r *UpdateResp) MarshalWire(dst []byte) []byte {
	dst = append(dst, wireV1)
	dst = binary.AppendVarint(dst, int64(r.Cached))
	dst = binary.AppendUvarint(dst, uint64(r.Epoch))
	return dst
}

// UnmarshalWire implements rpc.WireUnmarshaler.
func (r *UpdateResp) UnmarshalWire(data []byte) error {
	*r = UpdateResp{}
	b, err := checkVersion(data)
	if err != nil {
		return err
	}
	var cached int64
	if cached, b, err = getVarint(b); err != nil {
		return err
	}
	r.Cached = int(cached)
	var epoch uint64
	if epoch, _, err = getUvarint(b); err != nil {
		return err
	}
	r.Epoch = Epoch(epoch)
	return nil
}

// --- SearchReq / SearchResp --------------------------------------------

// Search flag bits.
const searchAfterSet byte = 1 << 0

// MarshalWire implements rpc.WireMarshaler.
func (r *SearchReq) MarshalWire(dst []byte) []byte {
	dst = append(dst, wireV1)
	dst = binary.AppendUvarint(dst, uint64(len(r.ACGs)))
	for _, g := range r.ACGs {
		dst = binary.AppendUvarint(dst, uint64(g))
	}
	dst = appendString(dst, r.IndexName)
	dst = appendString(dst, r.Query)
	dst = binary.AppendUvarint(dst, uint64(len(r.Preds)))
	for _, p := range r.Preds {
		dst = appendString(dst, p.Field)
		dst = append(dst, byte(p.Op))
		dst = appendValue(dst, p.Value)
	}
	dst = binary.AppendVarint(dst, r.NowUnixNano)
	dst = binary.AppendVarint(dst, int64(r.Limit))
	dst = binary.AppendUvarint(dst, uint64(r.After))
	var flags byte
	if r.AfterSet {
		flags |= searchAfterSet
	}
	dst = append(dst, flags, byte(r.Consistency))
	dst = appendString(dst, r.Client)
	return dst
}

// UnmarshalWire implements rpc.WireUnmarshaler.
func (r *SearchReq) UnmarshalWire(data []byte) error {
	*r = SearchReq{}
	b, err := checkVersion(data)
	if err != nil {
		return err
	}
	n, b, err := getUvarint(b)
	if err != nil {
		return err
	}
	if err := countGuard(n, b, 1); err != nil {
		return err
	}
	if n > 0 {
		r.ACGs = make([]ACGID, 0, n)
		for i := uint64(0); i < n; i++ {
			var g uint64
			if g, b, err = getUvarint(b); err != nil {
				return err
			}
			r.ACGs = append(r.ACGs, ACGID(g))
		}
	}
	if r.IndexName, b, err = getString(b); err != nil {
		return err
	}
	if r.Query, b, err = getString(b); err != nil {
		return err
	}
	if n, b, err = getUvarint(b); err != nil {
		return err
	}
	if err := countGuard(n, b, 4); err != nil {
		return err
	}
	if n > 0 {
		r.Preds = make([]query.Predicate, 0, n)
		for i := uint64(0); i < n; i++ {
			var p query.Predicate
			if p.Field, b, err = getString(b); err != nil {
				return err
			}
			if len(b) == 0 {
				return wireErr("truncated predicate op")
			}
			p.Op = query.Op(b[0])
			b = b[1:]
			if p.Value, b, err = getValue(b); err != nil {
				return err
			}
			r.Preds = append(r.Preds, p)
		}
	}
	if r.NowUnixNano, b, err = getVarint(b); err != nil {
		return err
	}
	var limit int64
	if limit, b, err = getVarint(b); err != nil {
		return err
	}
	r.Limit = int(limit)
	var after uint64
	if after, b, err = getUvarint(b); err != nil {
		return err
	}
	r.After = index.FileID(after)
	if len(b) < 2 {
		return wireErr("truncated search flags")
	}
	r.AfterSet = b[0]&searchAfterSet != 0
	r.Consistency = Consistency(b[1])
	if r.Client, _, err = getString(b[2:]); err != nil {
		return err
	}
	return nil
}

// Response flag bits.
const searchMore byte = 1 << 0

// MarshalWire implements rpc.WireMarshaler. Files arrive in ascending
// FileID order (the SearchResp contract), so ids are delta-coded; the
// zigzag form stays correct even for an out-of-order producer, it just
// stops being small.
func (r *SearchResp) MarshalWire(dst []byte) []byte {
	dst = append(dst, wireV1)
	dst = binary.AppendUvarint(dst, uint64(len(r.Files)))
	prev := int64(0)
	for _, f := range r.Files {
		dst = binary.AppendVarint(dst, int64(f)-prev)
		prev = int64(f)
	}
	dst = binary.AppendVarint(dst, r.CommitLatencyNanos)
	var flags byte
	if r.More {
		flags |= searchMore
	}
	dst = append(dst, flags)
	dst = binary.AppendVarint(dst, int64(r.MaxRetained))
	dst = binary.AppendUvarint(dst, uint64(r.Epoch))
	return dst
}

// UnmarshalWire implements rpc.WireUnmarshaler.
func (r *SearchResp) UnmarshalWire(data []byte) error {
	*r = SearchResp{}
	b, err := checkVersion(data)
	if err != nil {
		return err
	}
	n, b, err := getUvarint(b)
	if err != nil {
		return err
	}
	if err := countGuard(n, b, 1); err != nil {
		return err
	}
	if n > 0 {
		r.Files = make([]index.FileID, 0, n)
		prev := int64(0)
		for i := uint64(0); i < n; i++ {
			var d int64
			if d, b, err = getVarint(b); err != nil {
				return err
			}
			prev += d
			r.Files = append(r.Files, index.FileID(prev))
		}
	}
	if r.CommitLatencyNanos, b, err = getVarint(b); err != nil {
		return err
	}
	if len(b) == 0 {
		return wireErr("truncated response flags")
	}
	r.More = b[0]&searchMore != 0
	b = b[1:]
	var retained int64
	if retained, b, err = getVarint(b); err != nil {
		return err
	}
	r.MaxRetained = int(retained)
	var epoch uint64
	if epoch, _, err = getUvarint(b); err != nil {
		return err
	}
	r.Epoch = Epoch(epoch)
	return nil
}

// --- FollowerAppendReq / FollowerAppendResp ----------------------------

// MarshalWire implements rpc.WireMarshaler.
func (r *FollowerAppendReq) MarshalWire(dst []byte) []byte {
	dst = append(dst, wireV1)
	dst = binary.AppendUvarint(dst, uint64(r.ACG))
	dst = binary.AppendUvarint(dst, r.Seq)
	dst = binary.AppendUvarint(dst, uint64(r.Epoch))
	dst = appendBytes(dst, r.Frames)
	return dst
}

// UnmarshalWire implements rpc.WireUnmarshaler.
func (r *FollowerAppendReq) UnmarshalWire(data []byte) error {
	*r = FollowerAppendReq{}
	b, err := checkVersion(data)
	if err != nil {
		return err
	}
	var acg uint64
	if acg, b, err = getUvarint(b); err != nil {
		return err
	}
	r.ACG = ACGID(acg)
	if r.Seq, b, err = getUvarint(b); err != nil {
		return err
	}
	var epoch uint64
	if epoch, b, err = getUvarint(b); err != nil {
		return err
	}
	r.Epoch = Epoch(epoch)
	if r.Frames, _, err = getBytes(b); err != nil {
		return err
	}
	return nil
}

// MarshalWire implements rpc.WireMarshaler.
func (r *FollowerAppendResp) MarshalWire(dst []byte) []byte {
	dst = append(dst, wireV1)
	dst = binary.AppendUvarint(dst, r.Seq)
	dst = binary.AppendUvarint(dst, uint64(r.Epoch))
	return dst
}

// UnmarshalWire implements rpc.WireUnmarshaler.
func (r *FollowerAppendResp) UnmarshalWire(data []byte) error {
	*r = FollowerAppendResp{}
	b, err := checkVersion(data)
	if err != nil {
		return err
	}
	if r.Seq, b, err = getUvarint(b); err != nil {
		return err
	}
	var epoch uint64
	if epoch, _, err = getUvarint(b); err != nil {
		return err
	}
	r.Epoch = Epoch(epoch)
	return nil
}

// --- ReceiveACGStreamMeta ----------------------------------------------

// MarshalWire implements rpc.WireMarshaler.
func (r *ReceiveACGStreamMeta) MarshalWire(dst []byte) []byte {
	dst = append(dst, wireV1)
	dst = binary.AppendUvarint(dst, uint64(r.ACG))
	dst = binary.AppendUvarint(dst, uint64(r.Epoch))
	var flags byte
	if r.Follower {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, r.ReplSeq)
	return dst
}

// UnmarshalWire implements rpc.WireUnmarshaler.
func (r *ReceiveACGStreamMeta) UnmarshalWire(data []byte) error {
	*r = ReceiveACGStreamMeta{}
	b, err := checkVersion(data)
	if err != nil {
		return err
	}
	var acg uint64
	if acg, b, err = getUvarint(b); err != nil {
		return err
	}
	r.ACG = ACGID(acg)
	var epoch uint64
	if epoch, b, err = getUvarint(b); err != nil {
		return err
	}
	r.Epoch = Epoch(epoch)
	if len(b) == 0 {
		return wireErr("truncated stream meta flags")
	}
	r.Follower = b[0]&1 != 0
	if r.ReplSeq, _, err = getUvarint(b[1:]); err != nil {
		return err
	}
	return nil
}
