// Package simdisk models a rotational hard disk with deterministic virtual
// latency.
//
// The paper's evaluation runs on Seagate Barracuda 7200.12 drives and its
// headline effects (partition-size sensitivity, inter-partition access cost,
// cold/warm gaps, global-index degradation) are all seek-count effects.
// Rather than depending on host hardware, every simulated I/O charges a
// deterministic cost to a vclock.Clock:
//
//	cost = seek (if the access is not sequential) + rotational latency +
//	       size / transferRate
//
// The model tracks the head position (last accessed byte offset) to decide
// whether an access is sequential. A short-stroke seek (nearby offset) costs
// less than a full-stroke seek, mirroring real drives.
//
// Entry points: New builds a Disk from a Profile (Barracuda7200 and
// Laptop5400 reproduce the paper's two machines); Read and Write charge
// positioned I/O; AppendLog charges the sequential tail write that makes
// the WAL fast path cheap (Index Nodes batch those charges through
// wal.GroupCommitter); Flush charges a barrier; Stats exposes the
// seek/sequential counters the experiments report. All methods are safe
// for concurrent use — requests serialize on the single head, which is
// exactly the behaviour that makes random multi-partition I/O expensive in
// the paper's Figure 2(b).
package simdisk
