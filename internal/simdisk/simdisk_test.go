package simdisk

import (
	"errors"
	"testing"
	"time"

	"propeller/internal/vclock"
)

func testProfile() Profile {
	return Profile{
		SeekAvg:             8 * time.Millisecond,
		SeekTrack:           1 * time.Millisecond,
		RotationalHalf:      4 * time.Millisecond,
		TransferBytesPerSec: 100 << 20,
		NearbyWindow:        1 << 20,
	}
}

func TestSequentialReadPaysNoSeek(t *testing.T) {
	clk := vclock.New()
	d := New(testProfile(), clk)

	// First access seeks (head at 0, offset 4096 is nearby -> track seek).
	if _, err := d.Read(4096, 4096); err != nil {
		t.Fatal(err)
	}
	before := clk.Now()
	// Next access continues at 8192: sequential.
	lat, err := d.Read(8192, 4096)
	if err != nil {
		t.Fatal(err)
	}
	wantTransfer := time.Duration(4096 * int64(time.Second) / (100 << 20))
	if lat != wantTransfer {
		t.Errorf("sequential latency = %v, want transfer-only %v", lat, wantTransfer)
	}
	if got := clk.Now() - before; got != lat {
		t.Errorf("clock advanced %v, want %v", got, lat)
	}
	st := d.Stats()
	if st.Sequential != 1 || st.Seeks != 1 {
		t.Errorf("stats seq=%d seeks=%d, want 1/1", st.Sequential, st.Seeks)
	}
}

func TestRandomReadPaysFullSeek(t *testing.T) {
	clk := vclock.New()
	d := New(testProfile(), clk)
	lat, err := d.Read(500<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if lat < 12*time.Millisecond {
		t.Errorf("random read latency = %v, want >= seek+rotational (12ms)", lat)
	}
}

func TestNearbySeekCheaperThanFar(t *testing.T) {
	clk := vclock.New()
	d := New(testProfile(), clk)
	if _, err := d.Read(0, 4096); err != nil {
		t.Fatal(err)
	}
	near, err := d.Read(4096+512<<10, 4096) // within nearby window of head
	if err != nil {
		t.Fatal(err)
	}
	far, err := d.Read(800<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if near >= far {
		t.Errorf("nearby seek (%v) should be cheaper than far seek (%v)", near, far)
	}
}

func TestAppendLogIsSequential(t *testing.T) {
	clk := vclock.New()
	d := New(testProfile(), clk)
	l1, err := d.AppendLog(4096)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := d.AppendLog(4096)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Errorf("append latencies differ: %v vs %v", l1, l2)
	}
	if l1 >= time.Millisecond {
		t.Errorf("append should be transfer-only, got %v", l1)
	}
}

func TestWriteAccounting(t *testing.T) {
	clk := vclock.New()
	d := New(testProfile(), clk)
	if _, err := d.Write(1<<30, 8192); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Writes != 1 || st.BytesWrite != 8192 {
		t.Errorf("write stats = %+v", st)
	}
	if st.PeakOffset != 1<<30+8192 {
		t.Errorf("peak offset = %d", st.PeakOffset)
	}
}

func TestFlushChargesRotational(t *testing.T) {
	clk := vclock.New()
	d := New(testProfile(), clk)
	lat, err := d.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if lat != 4*time.Millisecond {
		t.Errorf("flush latency = %v, want 4ms", lat)
	}
}

func TestNegativeArgs(t *testing.T) {
	d := New(testProfile(), vclock.New())
	if _, err := d.Read(-1, 10); err == nil {
		t.Error("negative offset should error")
	}
	if _, err := d.Write(0, -10); err == nil {
		t.Error("negative size should error")
	}
}

func TestClosedDisk(t *testing.T) {
	d := New(testProfile(), vclock.New())
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(0, 1); !errors.Is(err, ErrClosed) {
		t.Errorf("read after close = %v, want ErrClosed", err)
	}
	if _, err := d.AppendLog(1); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close = %v, want ErrClosed", err)
	}
	if _, err := d.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("flush after close = %v, want ErrClosed", err)
	}
}

func TestResetStats(t *testing.T) {
	d := New(testProfile(), vclock.New())
	if _, err := d.Read(0, 4096); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	if st := d.Stats(); st.Reads != 0 || st.BusyTime != 0 {
		t.Errorf("stats not reset: %+v", st)
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range []Profile{Barracuda7200(), Laptop5400()} {
		if p.SeekAvg <= p.SeekTrack {
			t.Errorf("profile %+v: avg seek should exceed track seek", p)
		}
		if p.TransferBytesPerSec <= 0 {
			t.Errorf("profile %+v: transfer rate must be positive", p)
		}
	}
	if Laptop5400().SeekAvg <= Barracuda7200().SeekAvg {
		t.Error("laptop 5400rpm drive should be slower than 7200rpm")
	}
}
