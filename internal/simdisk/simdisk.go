package simdisk

import (
	"errors"
	"sync"
	"time"

	"propeller/internal/vclock"
)

// Profile holds the latency parameters of a disk model.
type Profile struct {
	// SeekAvg is the average random-seek time.
	SeekAvg time.Duration
	// SeekTrack is the track-to-track (nearby) seek time.
	SeekTrack time.Duration
	// RotationalHalf is half a platter rotation (average rotational delay).
	RotationalHalf time.Duration
	// TransferBytesPerSec is the sequential media transfer rate.
	TransferBytesPerSec int64
	// NearbyWindow is the byte distance under which a seek counts as
	// track-to-track rather than average.
	NearbyWindow int64
}

// Barracuda7200 approximates the Seagate Barracuda ST31000524AS used in the
// paper's cluster nodes (7,200 RPM, ~8.5 ms average seek, ~125 MB/s).
func Barracuda7200() Profile {
	return Profile{
		SeekAvg:             8500 * time.Microsecond,
		SeekTrack:           800 * time.Microsecond,
		RotationalHalf:      4160 * time.Microsecond, // 60s/7200rpm/2
		TransferBytesPerSec: 125 << 20,
		NearbyWindow:        2 << 20,
	}
}

// Laptop5400 approximates the 5,400 RPM laptop drive in the paper's Mac Mini
// (used for the Spotlight comparison).
func Laptop5400() Profile {
	return Profile{
		SeekAvg:             12000 * time.Microsecond,
		SeekTrack:           1500 * time.Microsecond,
		RotationalHalf:      5550 * time.Microsecond, // 60s/5400rpm/2
		TransferBytesPerSec: 90 << 20,
		NearbyWindow:        2 << 20,
	}
}

// ErrClosed is returned for operations on a closed disk.
var ErrClosed = errors.New("simdisk: disk is closed")

// Stats summarizes the I/O a Disk has served.
type Stats struct {
	Reads       int64
	Writes      int64
	BytesRead   int64
	BytesWrite  int64
	Seeks       int64 // non-sequential accesses (charged a seek)
	Sequential  int64 // sequential accesses (no seek charged)
	BusyTime    time.Duration
	PeakOffset  int64
	TotalOpsLat time.Duration // same as BusyTime; kept for clarity in reports
}

// Disk is a virtual-time rotational disk. All methods are safe for
// concurrent use; concurrent requests serialize on the (single) head, which
// is the behaviour that makes random multi-partition I/O expensive in the
// paper's Figure 2(b).
type Disk struct {
	profile Profile
	clock   *vclock.Clock

	mu     sync.Mutex
	head   int64
	stats  Stats
	closed bool
}

// New returns a Disk charging its I/O time to clock.
func New(profile Profile, clock *vclock.Clock) *Disk {
	return &Disk{profile: profile, clock: clock}
}

// Clock returns the virtual clock this disk charges.
func (d *Disk) Clock() *vclock.Clock { return d.clock }

// Profile returns the latency profile of the disk.
func (d *Disk) Profile() Profile { return d.profile }

// Read charges the virtual cost of reading size bytes at offset and returns
// the per-operation latency.
func (d *Disk) Read(offset, size int64) (time.Duration, error) {
	return d.access(offset, size, false)
}

// Write charges the virtual cost of writing size bytes at offset and returns
// the per-operation latency.
func (d *Disk) Write(offset, size int64) (time.Duration, error) {
	return d.access(offset, size, true)
}

// AppendLog charges the cost of a sequential log append of size bytes. The
// head is assumed to stay at the log tail, so repeated appends pay only
// transfer time. This models the write-ahead-log fast path.
func (d *Disk) AppendLog(size int64) (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	lat := d.transferTime(size)
	d.stats.Writes++
	d.stats.BytesWrite += size
	d.stats.Sequential++
	d.stats.BusyTime += lat
	d.stats.TotalOpsLat += lat
	d.clock.Advance(lat)
	return lat, nil
}

// Flush charges the cost of a cache flush / barrier (one rotational wait).
func (d *Disk) Flush() (time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	lat := d.profile.RotationalHalf
	d.stats.BusyTime += lat
	d.stats.TotalOpsLat += lat
	d.clock.Advance(lat)
	return lat, nil
}

// Stats returns a snapshot of the disk statistics.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats clears the accumulated statistics (head position is kept).
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// Close marks the disk closed; subsequent I/O fails with ErrClosed.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}

func (d *Disk) access(offset, size int64, write bool) (time.Duration, error) {
	if offset < 0 || size < 0 {
		return 0, errors.New("simdisk: negative offset or size")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}

	var lat time.Duration
	switch dist := abs64(offset - d.head); {
	case dist == 0:
		// Perfectly sequential: pay transfer only.
		d.stats.Sequential++
	case dist <= d.profile.NearbyWindow:
		lat += d.profile.SeekTrack + d.profile.RotationalHalf
		d.stats.Seeks++
	default:
		lat += d.profile.SeekAvg + d.profile.RotationalHalf
		d.stats.Seeks++
	}
	lat += d.transferTime(size)

	d.head = offset + size
	if d.head > d.stats.PeakOffset {
		d.stats.PeakOffset = d.head
	}
	if write {
		d.stats.Writes++
		d.stats.BytesWrite += size
	} else {
		d.stats.Reads++
		d.stats.BytesRead += size
	}
	d.stats.BusyTime += lat
	d.stats.TotalOpsLat += lat
	d.clock.Advance(lat)
	return lat, nil
}

func (d *Disk) transferTime(size int64) time.Duration {
	if size <= 0 || d.profile.TransferBytesPerSec <= 0 {
		return 0
	}
	return time.Duration(size * int64(time.Second) / d.profile.TransferBytesPerSec)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
