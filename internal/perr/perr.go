// Package perr defines Propeller's typed error taxonomy and its wire
// representation.
//
// Every layer of the request path (public API, client, RPC, master, index
// node) wraps failures in one of the sentinel errors below instead of
// minting ad-hoc fmt.Errorf strings, so callers can dispatch with
// errors.Is at any distance from the fault. Because RPC responses cross
// process boundaries as strings, the rpc package carries a compact
// taxonomy code alongside the message: CodeOf flattens an error chain to
// its code on the serving side and FromWire re-attaches the matching
// sentinel on the calling side, making errors.Is work end to end across
// the wire.
package perr

import (
	"context"
	"errors"
)

// Sentinel errors of the public taxonomy.
var (
	// ErrIndexNotFound reports a search or update against an index name
	// the cluster does not know.
	ErrIndexNotFound = errors.New("propeller: index not found")
	// ErrBadQuery reports a malformed or unsatisfiable query: syntax
	// errors, bad units, unknown operators, empty predicates.
	ErrBadQuery = errors.New("propeller: bad query")
	// ErrTimeout reports a request that exceeded its context deadline at
	// any point of the fan-out.
	ErrTimeout = errors.New("propeller: timeout")
	// ErrStalePlacement reports a request routed by an out-of-date placement
	// map: the target Index Node released the group (it migrated, or was
	// recovered elsewhere after a failure). The message carries the node's
	// current placement epoch; clients invalidate the moved cache entries,
	// re-resolve through the Master, and retry.
	ErrStalePlacement = errors.New("propeller: stale placement")
	// ErrOverloaded reports a request shed by an admission queue: the node
	// is above capacity (or the caller above its fair share) and rejected
	// the op before doing any work. Placement is still correct, so clients
	// must NOT invalidate their cache — the op was never accepted and can
	// be retried after backoff with no risk of data loss.
	ErrOverloaded = errors.New("propeller: overloaded")
)

// Wire codes. Code 0 is a generic error with no taxonomy mapping.
const (
	codeGeneric        uint8 = 0
	codeIndexNotFound  uint8 = 1
	codeBadQuery       uint8 = 2
	codeTimeout        uint8 = 3
	codeStalePlacement uint8 = 4
	codeOverloaded     uint8 = 5
)

// CodeOf flattens err to its taxonomy wire code (0 when the chain carries
// no sentinel).
func CodeOf(err error) uint8 {
	switch {
	case err == nil:
		return codeGeneric
	case errors.Is(err, ErrIndexNotFound):
		return codeIndexNotFound
	case errors.Is(err, ErrBadQuery):
		return codeBadQuery
	case errors.Is(err, ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		return codeTimeout
	case errors.Is(err, ErrStalePlacement):
		return codeStalePlacement
	case errors.Is(err, ErrOverloaded):
		return codeOverloaded
	default:
		return codeGeneric
	}
}

// wireError is a remote error re-attached to its local sentinel: Error()
// preserves the remote message, Unwrap restores errors.Is dispatch.
type wireError struct {
	sentinel error
	msg      string
}

func (e *wireError) Error() string { return e.msg }
func (e *wireError) Unwrap() error { return e.sentinel }

// FromWire reconstructs a typed error from a taxonomy code and remote
// message. A remote timeout matches both ErrTimeout and
// context.DeadlineExceeded, the same as a locally-expired deadline.
func FromWire(code uint8, msg string) error {
	switch code {
	case codeIndexNotFound:
		return &wireError{ErrIndexNotFound, msg}
	case codeBadQuery:
		return &wireError{ErrBadQuery, msg}
	case codeTimeout:
		return &wireTimeout{msg}
	case codeStalePlacement:
		return &wireError{ErrStalePlacement, msg}
	case codeOverloaded:
		return &wireError{ErrOverloaded, msg}
	default:
		return errors.New(msg)
	}
}

// wireTimeout is a remote deadline expiry: the message is preserved and
// the chain matches the same sentinels as a local expiry.
type wireTimeout struct{ msg string }

func (e *wireTimeout) Error() string { return e.msg }
func (e *wireTimeout) Unwrap() []error {
	return []error{ErrTimeout, context.DeadlineExceeded}
}

// Ctx wraps a context error in the taxonomy: deadline expiry becomes
// ErrTimeout (keeping context.DeadlineExceeded in the chain), cancellation
// passes through as context.Canceled.
func Ctx(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &ctxTimeout{err}
	}
	return err
}

// ctxTimeout makes a context deadline error match both ErrTimeout and
// context.DeadlineExceeded.
type ctxTimeout struct{ cause error }

func (e *ctxTimeout) Error() string { return ErrTimeout.Error() + ": " + e.cause.Error() }
func (e *ctxTimeout) Unwrap() []error {
	return []error{ErrTimeout, e.cause}
}
