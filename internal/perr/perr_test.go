package perr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestCodeRoundTrip(t *testing.T) {
	cases := []struct {
		sentinel error
	}{
		{ErrIndexNotFound},
		{ErrBadQuery},
		{ErrTimeout},
		{ErrStalePlacement},
		{ErrOverloaded},
	}
	for _, c := range cases {
		wrapped := fmt.Errorf("layer context: %w", c.sentinel)
		code := CodeOf(wrapped)
		if code == 0 {
			t.Fatalf("CodeOf(%v) = 0, want taxonomy code", wrapped)
		}
		back := FromWire(code, wrapped.Error())
		if !errors.Is(back, c.sentinel) {
			t.Errorf("FromWire(%d) does not match %v", code, c.sentinel)
		}
		if back.Error() != wrapped.Error() {
			t.Errorf("message lost: %q vs %q", back.Error(), wrapped.Error())
		}
	}
}

func TestGenericErrorsPassThrough(t *testing.T) {
	if CodeOf(errors.New("whatever")) != 0 {
		t.Error("generic error should map to code 0")
	}
	if CodeOf(nil) != 0 {
		t.Error("nil should map to code 0")
	}
	back := FromWire(0, "plain message")
	if back.Error() != "plain message" {
		t.Errorf("generic reconstruction = %q", back.Error())
	}
	if errors.Is(back, ErrBadQuery) || errors.Is(back, ErrTimeout) {
		t.Error("generic error must not match taxonomy sentinels")
	}
}

func TestOverloadedDistinctFromStalePlacement(t *testing.T) {
	// The client's cache logic depends on these never aliasing: stale
	// placement invalidates mappings, overload must not.
	code := CodeOf(fmt.Errorf("shed: %w", ErrOverloaded))
	back := FromWire(code, "shed")
	if !errors.Is(back, ErrOverloaded) {
		t.Fatal("overload code must round-trip to ErrOverloaded")
	}
	if errors.Is(back, ErrStalePlacement) || errors.Is(back, ErrTimeout) {
		t.Error("overload must not match placement or timeout sentinels")
	}
}

func TestCtxMapsDeadlineToTimeout(t *testing.T) {
	err := Ctx(context.DeadlineExceeded)
	if !errors.Is(err, ErrTimeout) {
		t.Error("deadline should match ErrTimeout")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("deadline should still match context.DeadlineExceeded")
	}
	if CodeOf(context.DeadlineExceeded) != codeTimeout {
		t.Error("raw deadline error should map to the timeout code")
	}
	if got := Ctx(context.Canceled); !errors.Is(got, context.Canceled) {
		t.Error("cancellation should pass through")
	}
	if errors.Is(Ctx(context.Canceled), ErrTimeout) {
		t.Error("cancellation must not look like a timeout")
	}
	if Ctx(nil) != nil {
		t.Error("Ctx(nil) must be nil")
	}
}
