package searchbench

import (
	"context"
	"reflect"
	"testing"
)

// TestScenarioTableStable pins the benchmark scenario table: the committed
// BENCH_search.json baseline is only comparable across commits if the
// names keep measuring the same workload shape. A harness refactor that
// renames, drops, or re-pages a scenario must show up here, not as a
// silent baseline shift.
func TestScenarioTableStable(t *testing.T) {
	type row struct {
		AccessPath string
		Fanout     int
		Page       int
	}
	want := map[string]row{
		"btree_paged_eq_page1":  {AccessPath: "btree", Page: 1},
		"btree_paged_eq_page10": {AccessPath: "btree", Page: 10},
		"hash_point_paged":      {AccessPath: "hash", Page: 1},
		"kd_box_paged":          {AccessPath: "kd", Page: 1},
		"fanout_serial_8acg":    {AccessPath: "fanout", Fanout: 1, Page: 1},
		"fanout_parallel_8acg":  {AccessPath: "fanout", Fanout: FanoutACGs, Page: 1},
	}
	got := make(map[string]row)
	for _, s := range Scenarios() {
		got[s.Name] = row{AccessPath: s.AccessPath, Fanout: s.Fanout, Page: s.Page}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("scenario table = %+v, want %+v", got, want)
	}
}

// TestScenariosDeterministic prepares every scenario twice and requires the
// timed request to return the identical page both times: the fixture
// loaders are seedless generators, so two preparations must be the same
// experiment down to the file list.
func TestScenariosDeterministic(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			run := func() ([]uint64, bool) {
				n, req, err := s.Prepare()
				if err != nil {
					t.Fatal(err)
				}
				resp, err := n.Search(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				files := make([]uint64, len(resp.Files))
				for i, f := range resp.Files {
					files[i] = uint64(f)
				}
				return files, resp.More
			}
			f1, m1 := run()
			f2, m2 := run()
			if len(f1) == 0 {
				t.Fatal("scenario page is empty; nothing is being measured")
			}
			if !reflect.DeepEqual(f1, f2) || m1 != m2 {
				t.Errorf("two preparations returned different pages:\n%v (more=%v)\n%v (more=%v)", f1, m1, f2, m2)
			}
		})
	}
}

// TestByName round-trips every table entry and rejects unknowns.
func TestByName(t *testing.T) {
	for _, s := range Scenarios() {
		got, err := ByName(s.Name)
		if err != nil || got.Name != s.Name {
			t.Errorf("ByName(%q) = %q, %v", s.Name, got.Name, err)
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("ByName(nosuch) did not fail")
	}
}
