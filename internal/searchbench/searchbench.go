// Package searchbench builds the standard Index Node fixtures behind the
// read-path benchmarks, shared by the root bench_test.go suite and
// tools/benchjson (which emits BENCH_search.json in CI). Keeping the
// fixtures in one place makes the JSON numbers and the `go test -bench`
// numbers the same experiment.
package searchbench

import (
	"context"
	"fmt"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/indexnode"
	"propeller/internal/pagestore"
	"propeller/internal/proto"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

// NewNode builds a standalone Index Node with an effectively unbounded
// lazy cache (commits are driven by the first search) and the given
// search fan-out (0 = default).
func NewNode(fanout int) (*indexnode.Node, error) {
	clk := vclock.New()
	disk := simdisk.New(simdisk.Barracuda7200(), clk)
	store, err := pagestore.New(disk, 1<<16)
	if err != nil {
		return nil, err
	}
	return indexnode.New(indexnode.Config{
		ID: "searchbench", Store: store, Disk: disk, Clock: clk,
		CacheLimit: 1 << 30, SearchFanout: fanout,
	})
}

// LoadBTreeRuns declares a B-tree "size" index and loads values 1..values,
// each carrying runs postings (file ids v, values+v, 2·values+v, …),
// spread round-robin across the ACGs. Duplicate-heavy runs are the
// workload where paged-scan cursor seek matters.
func LoadBTreeRuns(n *indexnode.Node, acgs []proto.ACGID, values, runs int) error {
	n.DeclareIndex(proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"})
	ctx := context.Background()
	for g, id := range acgs {
		entries := make([]proto.IndexEntry, 0, values*runs/len(acgs)+values)
		for v := 1; v <= values; v++ {
			for r := 0; r < runs; r++ {
				if (r+v)%len(acgs) != g {
					continue // every value's run spans every group
				}
				entries = append(entries, proto.IndexEntry{File: index.FileID(r*values + v), Value: attr.Int(int64(v))})
			}
		}
		if _, err := n.Update(ctx, proto.UpdateReq{ACG: id, IndexName: "size", Entries: entries}); err != nil {
			return err
		}
	}
	return nil
}

// LoadHashDup declares a hash "tag" index with dup postings of value 7
// plus distinct singleton values, all in ACG 1.
func LoadHashDup(n *indexnode.Node, dup, distinct int) error {
	n.DeclareIndex(proto.IndexSpec{Name: "tag", Type: proto.IndexHash, Field: "tag"})
	entries := make([]proto.IndexEntry, 0, dup+distinct)
	for i := 0; i < dup; i++ {
		entries = append(entries, proto.IndexEntry{File: index.FileID(i), Value: attr.Int(7)})
	}
	for i := 0; i < distinct; i++ {
		entries = append(entries, proto.IndexEntry{File: index.FileID(dup + i), Value: attr.Int(int64(1000 + i))})
	}
	_, err := n.Update(context.Background(), proto.UpdateReq{ACG: 1, IndexName: "tag", Entries: entries})
	return err
}

// LoadKDDiagonal declares a 2-D KD "pt" index with total points on the
// x=y diagonal in ACG 1.
func LoadKDDiagonal(n *indexnode.Node, total int) error {
	n.DeclareIndex(proto.IndexSpec{Name: "pt", Type: proto.IndexKD, Fields: []string{"x", "y"}})
	entries := make([]proto.IndexEntry, 0, total)
	for i := 0; i < total; i++ {
		entries = append(entries, proto.IndexEntry{
			File: index.FileID(i), KDCoords: []float64{float64(i), float64(i)},
		})
	}
	_, err := n.Update(context.Background(), proto.UpdateReq{ACG: 1, IndexName: "pt", Entries: entries})
	return err
}

// CursorForPage pages req forward and returns the request positioned at
// the given 1-based page (its After cursor filled in), committing the
// groups along the way so timed runs measure pure read cost.
func CursorForPage(n *indexnode.Node, req proto.SearchReq, page int) (proto.SearchReq, error) {
	for p := 1; p < page; p++ {
		resp, err := n.Search(context.Background(), req)
		if err != nil {
			return req, err
		}
		if len(resp.Files) == 0 || !resp.More {
			return req, fmt.Errorf("searchbench: fixture exhausted at page %d/%d", p, page)
		}
		req.After, req.AfterSet = resp.Files[len(resp.Files)-1], true
	}
	return req, nil
}

// Standard fixture sizes. Both bench_test.go and tools/benchjson consume
// these through Scenarios, so the committed BENCH_search.json baseline and
// the `go test -bench` numbers always measure the same workload.
const (
	// BTreeValues/BTreeRuns: values 1..BTreeValues each carrying BTreeRuns
	// postings (value 7's run is the paged-equality target).
	BTreeValues = 20
	BTreeRuns   = 2000
	// HashDup/HashDistinct: duplicate chain length and distinct filler.
	HashDup      = 2000
	HashDistinct = 500
	// KDPoints is the diagonal point count.
	KDPoints = 20000
	// PageLimit is the page size every paged scenario requests.
	PageLimit = 100
	// FanoutACGs is the group count of the fan-out scenarios.
	FanoutACGs = 8
)

// Scenario is one benchmarked request shape against a prepared node.
type Scenario struct {
	Name string
	// AccessPath is the primary index structure exercised: btree, hash,
	// kd, or fanout (multi-ACG pass).
	AccessPath string
	// Fanout is the node's SearchFanout (0 = default, 1 = serial).
	Fanout int
	Load   func(*indexnode.Node) error
	Req    proto.SearchReq
	// Page positions the cursor at this 1-based page before timing.
	Page int
}

// Scenarios returns the standard read-path benchmark set: the cursor-seek
// page pair, one paged request per access path, and the serial/parallel
// fan-out comparison.
func Scenarios() []Scenario {
	twoACGs := []proto.ACGID{1, 2}
	eightACGs := make([]proto.ACGID, FanoutACGs)
	for i := range eightACGs {
		eightACGs[i] = proto.ACGID(i + 1)
	}
	btree := func(n *indexnode.Node) error { return LoadBTreeRuns(n, twoACGs, BTreeValues, BTreeRuns) }
	wide := func(n *indexnode.Node) error { return LoadBTreeRuns(n, eightACGs, BTreeValues, BTreeRuns) }
	eqReq := proto.SearchReq{ACGs: twoACGs, IndexName: "size", Query: "size=7", Limit: PageLimit}
	fanReq := proto.SearchReq{ACGs: eightACGs, IndexName: "size", Query: "size>0", Limit: PageLimit}
	return []Scenario{
		{Name: "btree_paged_eq_page1", AccessPath: "btree", Load: btree, Req: eqReq, Page: 1},
		{Name: "btree_paged_eq_page10", AccessPath: "btree", Load: btree, Req: eqReq, Page: 10},
		{Name: "hash_point_paged", AccessPath: "hash",
			Load: func(n *indexnode.Node) error { return LoadHashDup(n, HashDup, HashDistinct) },
			Req:  proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "tag", Query: "tag=7", Limit: PageLimit}, Page: 1},
		{Name: "kd_box_paged", AccessPath: "kd",
			Load: func(n *indexnode.Node) error { return LoadKDDiagonal(n, KDPoints) },
			Req:  proto.SearchReq{ACGs: []proto.ACGID{1}, IndexName: "pt", Query: "x>=100 & y<15000", Limit: PageLimit}, Page: 1},
		{Name: "fanout_serial_8acg", AccessPath: "fanout", Fanout: 1, Load: wide, Req: fanReq, Page: 1},
		{Name: "fanout_parallel_8acg", AccessPath: "fanout", Fanout: FanoutACGs, Load: wide, Req: fanReq, Page: 1},
	}
}

// ByName returns the named scenario.
func ByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("searchbench: unknown scenario %q", name)
}

// Prepare builds the scenario's node, loads and commits its fixture, and
// returns the request positioned at the scenario's page, ready for timed
// Search calls.
func (s Scenario) Prepare() (*indexnode.Node, proto.SearchReq, error) {
	n, err := NewNode(s.Fanout)
	if err != nil {
		return nil, proto.SearchReq{}, err
	}
	if err := s.Load(n); err != nil {
		return nil, proto.SearchReq{}, err
	}
	if _, err := n.Search(context.Background(), s.Req); err != nil { // commit every group
		return nil, proto.SearchReq{}, err
	}
	req, err := CursorForPage(n, s.Req, s.Page)
	if err != nil {
		return nil, proto.SearchReq{}, err
	}
	return n, req, nil
}
