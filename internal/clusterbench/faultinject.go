package clusterbench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"propeller/internal/cluster"
)

// FaultKind classifies a scheduled fault.
type FaultKind uint8

// Fault kinds.
const (
	// FaultKill crashes a node: RAM, local disk, and every in-flight
	// connection are gone; only the shared store survives.
	FaultKill FaultKind = iota
	// FaultRestart brings the most recently killed node back as a fresh
	// empty process under its old identity.
	FaultRestart
)

func (k FaultKind) String() string {
	if k == FaultRestart {
		return "restart"
	}
	return "kill"
}

// FaultEvent is one scheduled fault, pinned to an offset in an update
// workload: it fires just before acknowledged update number At.
type FaultEvent struct {
	At   int
	Kind FaultKind
	// Node is the victim's index in cluster.Nodes(). Kill events are
	// scheduled with -1 ("whoever matters then") and resolved at fire
	// time by the injector's victim picker; restart events resolve to the
	// most recently killed node.
	Node int
}

// Injector executes a seeded kill/restart schedule against a cluster as a
// workload advances. The schedule is fixed at construction from the seed,
// so a run is reproducible: same seed, same faults at the same offsets.
// Victims are resolved live (the primary worth killing moves as the
// Master re-places groups), which is deterministic given deterministic
// placement.
type Injector struct {
	c          *cluster.Cluster
	pickVictim func(ctx context.Context) (int, error)
	events     []FaultEvent
	next       int
	lastKilled int
}

// NewInjector builds a seeded schedule of kills (and restarts of the
// killed nodes) spread over updates [updates/5, updates): the workload
// always gets a warm fault-free prefix. Events alternate kill → restart →
// kill …, so at most one scheduled victim is down at a time; extra kills
// beyond restarts leave nodes down at the end. pickVictim chooses the
// kill target at fire time (e.g. "current primary of the probe group").
func NewInjector(c *cluster.Cluster, seed int64, updates, kills, restarts int,
	pickVictim func(ctx context.Context) (int, error)) (*Injector, error) {
	if restarts > kills {
		return nil, fmt.Errorf("faultinject: %d restarts need at least as many kills (got %d)", restarts, kills)
	}
	total := kills + restarts
	lo := updates / 5
	if updates-lo < total {
		return nil, fmt.Errorf("faultinject: %d events do not fit in updates [%d,%d)", total, lo, updates)
	}
	rng := rand.New(rand.NewSource(seed))
	offsets := make(map[int]bool, total)
	for len(offsets) < total {
		offsets[lo+rng.Intn(updates-lo)] = true
	}
	ats := make([]int, 0, total)
	for at := range offsets {
		ats = append(ats, at)
	}
	sort.Ints(ats)
	in := &Injector{c: c, pickVictim: pickVictim, lastKilled: -1}
	restartsLeft, downSince := restarts, false
	for _, at := range ats {
		kind := FaultKill
		if downSince && restartsLeft > 0 {
			kind = FaultRestart
			restartsLeft--
			downSince = false
		} else {
			downSince = true
		}
		in.events = append(in.events, FaultEvent{At: at, Kind: kind, Node: -1})
	}
	return in, nil
}

// Events returns the full schedule (victims unresolved until fired).
func (in *Injector) Events() []FaultEvent { return in.events }

// Advance fires every event scheduled at or before update number
// updateNo and returns the fired events with victims resolved. The
// caller owns what happens next (heartbeat rounds, settling, timing) —
// the injector only injects.
func (in *Injector) Advance(ctx context.Context, updateNo int) ([]FaultEvent, error) {
	var fired []FaultEvent
	for in.next < len(in.events) && in.events[in.next].At <= updateNo {
		ev := in.events[in.next]
		in.next++
		switch ev.Kind {
		case FaultKill:
			v, err := in.pickVictim(ctx)
			if err != nil {
				return fired, fmt.Errorf("faultinject: pick victim for kill@%d: %w", ev.At, err)
			}
			if err := in.c.KillNode(v); err != nil {
				return fired, fmt.Errorf("faultinject: kill node %d @%d: %w", v, ev.At, err)
			}
			ev.Node = v
			in.lastKilled = v
		case FaultRestart:
			ev.Node = in.lastKilled
			if err := in.c.RestartNode(ev.Node); err != nil {
				return fired, fmt.Errorf("faultinject: restart node %d @%d: %w", ev.Node, ev.At, err)
			}
			in.lastKilled = -1
		}
		fired = append(fired, ev)
	}
	return fired, nil
}
