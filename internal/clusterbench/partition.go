package clusterbench

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"propeller/internal/attr"
	"propeller/internal/chaosnet"
	"propeller/internal/client"
	"propeller/internal/cluster"
	"propeller/internal/index"
	"propeller/internal/perr"
	"propeller/internal/proto"
)

// PartitionResult is the committed baseline for the partition-tolerance
// scenario: chaos-injected network faults (full and asymmetric partitions,
// frame corruption, slow links) driven against a replicated cluster, with
// the safety invariants — zero acknowledged-then-lost updates, zero dual
// acks past the lease fence, typed errors only — measured rather than
// assumed.
type PartitionResult struct {
	// Phase A: full partition of a replicated group's primary. The zombie
	// keeps acking in-flight work until its lease lapses (those acks must
	// survive the follower's promotion via shared-store reconciliation),
	// then must refuse everything; the client's traffic re-routes onto the
	// promoted follower with only typed errors along the way.
	PartitionAcked          int   `json:"partition_acked"`
	ZombieAcksPreFence      int   `json:"zombie_acks_pre_fence"`
	AckedLostAfterPartition int   `json:"acked_lost_after_partition"` // gate: 0
	DualAcks                int   `json:"dual_acks"`                  // gate: 0
	UntypedErrors           int   `json:"untyped_errors"`             // gate: 0
	PartitionPromotions     int64 `json:"partition_promotions"`
	LeaseRejects            int64 `json:"lease_rejects"` // gate: > 0

	// Phase B: control-plane-only isolation. A node that can serve clients
	// but not reach the Master must self-fence at the lease bound — before
	// the Master's strictly-longer sweep could promote over it — and a
	// healed control link revives it by lease renewal, not failover.
	SelfFenceRejects          int64 `json:"self_fence_rejects"`          // gate: > 0
	PromotionsDuringIsolation int64 `json:"promotions_during_isolation"` // gate: 0
	HealedAfterLeaseRenewal   bool  `json:"healed_after_lease_renewal"`  // gate: true

	// Phase C: byte corruption on the client's data links (torn frames
	// tear connections, never acks) and a bit-flipped checkpoint during
	// recovery (served from the previous generation, never a wedge).
	CorruptedFrames         int64 `json:"corrupted_frames"` // gate: > 0
	CorruptionRetryErrors   int   `json:"corruption_retry_errors"`
	CorruptionAckedLost     int   `json:"corruption_acked_lost"`     // gate: 0
	CheckpointFallbackLoads int64 `json:"checkpoint_fallback_loads"` // gate: > 0
	CheckpointRecoveryLost  int   `json:"checkpoint_recovery_lost"`  // gate: 0

	// Phase D: hedged lazy reads racing a wall-clock-slow replica link
	// against an unhedged control on the same link.
	HedgedRounds   int     `json:"hedged_rounds"`
	HedgedSearches int64   `json:"hedged_searches"` // gate: > 0
	HedgedP99Us    float64 `json:"hedged_p99_us"`   // gate: < unhedged
	UnhedgedP99Us  float64 `json:"unhedged_p99_us"`
}

const (
	partitionSeed      = 71
	partitionWarm      = 40 // files acked before the cut
	partitionWorkload  = 40 // files acked across the partition
	partitionZombieOps = 5  // in-flight acks the zombie absorbs pre-fence
	partitionRetries   = 6
	corruptFiles       = 60
	corruptProb        = 0.3
	hedgeRounds        = 100
	hedgeLinkDelay     = 25 * time.Millisecond
	hedgeDelay         = 2 * time.Millisecond
)

// RunPartition executes the partition-tolerance scenario and returns the
// measured baseline.
func RunPartition() (PartitionResult, error) {
	var r PartitionResult
	if err := runPartitionFailover(&r); err != nil {
		return r, fmt.Errorf("partition failover: %w", err)
	}
	if err := runControlPlaneIsolation(&r); err != nil {
		return r, fmt.Errorf("control-plane isolation: %w", err)
	}
	if err := runFrameCorruption(&r); err != nil {
		return r, fmt.Errorf("frame corruption: %w", err)
	}
	if err := runCheckpointCorruption(&r); err != nil {
		return r, fmt.Errorf("checkpoint corruption: %w", err)
	}
	if err := runHedgedReads(&r); err != nil {
		return r, fmt.Errorf("hedged reads: %w", err)
	}
	return r, nil
}

// heartbeatTolerant runs one heartbeat round expecting some nodes to be
// unreachable: every node reports individually and a partitioned node's
// failure never aborts the survivors' round (the round IS the failure
// detector). Only for phases without killed nodes.
func heartbeatTolerant(ctx context.Context, c *cluster.Cluster) {
	for _, n := range c.Nodes() {
		_ = n.Heartbeat(ctx)
	}
}

func chaosClusterConfig(k int, net *chaosnet.Network) cluster.Config {
	cfg := replClusterConfig(k)
	cfg.Chaos = net
	return cfg
}

// runPartitionFailover is phase A: fully partition a replicated group's
// primary mid-workload, let the sweep promote its follower, heal, and
// verify the safety ledger.
func runPartitionFailover(r *PartitionResult) error {
	ctx := context.Background()
	net := chaosnet.New(partitionSeed)
	c, err := cluster.New(chaosClusterConfig(2, net))
	if err != nil {
		return err
	}
	defer c.Close() //nolint:errcheck // best-effort teardown
	cl, err := c.NewClient(benchNow)
	if err != nil {
		return err
	}
	defer cl.Close() //nolint:errcheck

	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		return err
	}
	indexOne := func(file int) error {
		return cl.Index(ctx, "size", []client.FileUpdate{{
			File:      index.FileID(file),
			Value:     attr.Int(int64(file) + 1),
			GroupHint: uint64(file%2) + 1,
		}})
	}
	var ackedFiles []index.FileID
	for i := 0; i < partitionWarm; i++ {
		if err := indexOne(i); err != nil {
			return fmt.Errorf("warm update %d: %w", i, err)
		}
		ackedFiles = append(ackedFiles, index.FileID(i))
	}
	if err := c.Heartbeat(ctx); err != nil { // seed followers, grant leases
		return err
	}

	look, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: []index.FileID{0}})
	if err != nil {
		return err
	}
	probeACG, primID := look.Mappings[0].ACG, look.Mappings[0].Node
	var zombie = c.Nodes()[0]
	for _, n := range c.Nodes() {
		if n.ID() == primID {
			zombie = n
		}
	}

	// Full partition: every direction of the primary's connectivity cut at
	// the write boundary. Its process stays alive — the zombie scenario.
	net.Partition(string(primID))

	// Acks in flight at cut time: requests that already reached the zombie
	// keep acking while its lease is fresh (correct — no successor can
	// exist yet). They land in the shared WAL mirror, which is what the
	// promotion's tail reconciliation must replay: losing any of them is
	// the acked-then-lost failure this phase gates on.
	for i := 0; i < partitionZombieOps; i++ {
		file := 5000 + i
		if _, err := zombie.Update(ctx, proto.UpdateReq{
			ACG: probeACG, IndexName: "size",
			Entries: []proto.IndexEntry{{File: index.FileID(file), Value: attr.Int(int64(file))}},
		}); err == nil {
			r.ZombieAcksPreFence++
			ackedFiles = append(ackedFiles, index.FileID(file))
		}
	}

	// Failure detection: the zombie misses one round at live cadence, then
	// the round at 40s of silence sweeps it (> 30s timeout) and promotes
	// its follower. By then its 30s lease has provably lapsed.
	c.Clock().Advance(heartbeatPace)
	heartbeatTolerant(ctx, c)
	c.Clock().Advance(heartbeatPace)
	heartbeatTolerant(ctx, c)

	// Dual-ack probe: a successful zombie ack after the promotion means
	// two primaries acked the same group — the split-brain the lease fence
	// exists to prevent.
	if _, err := zombie.Update(ctx, proto.UpdateReq{
		ACG: probeACG, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 9000, Value: attr.Int(9000)}},
	}); err == nil {
		r.DualAcks++
	} else if !errors.Is(err, perr.ErrStalePlacement) {
		r.UntypedErrors++
	}
	// Strict reads must fence identically (they promise every ack, and the
	// successor's acks are invisible here).
	if _, err := zombie.Search(ctx, proto.SearchReq{
		IndexName: "size", ACGs: []proto.ACGID{probeACG}, Query: "size>0",
	}); !errors.Is(err, perr.ErrStalePlacement) {
		r.UntypedErrors++
	}

	// The workload resumes against the reshaped cluster: the client's
	// cached placement still names the zombie, so the first attempts hit
	// cut links and stale routes — all of which must surface typed (or
	// heal inside the client's own retry rounds).
	for u := 0; u < partitionWorkload; u++ {
		if u%5 == 0 {
			c.Clock().Advance(heartbeatPace)
			heartbeatTolerant(ctx, c)
		}
		file := partitionWarm + u
		for attempt := 0; attempt < partitionRetries; attempt++ {
			err := indexOne(file)
			if err == nil {
				ackedFiles = append(ackedFiles, index.FileID(file))
				break
			}
			if !errors.Is(err, perr.ErrStalePlacement) && !errors.Is(err, perr.ErrOverloaded) {
				r.UntypedErrors++
			}
			c.Clock().Advance(heartbeatPace)
			heartbeatTolerant(ctx, c)
		}
	}
	r.PartitionAcked = len(ackedFiles)

	// Heal. The zombie's next heartbeat reports a group owned elsewhere;
	// the Master's double-ownership guard tombstones its stale copy rather
	// than forking ownership back.
	net.HealAll()
	for i := 0; i < 2; i++ {
		c.Clock().Advance(heartbeatPace)
		heartbeatTolerant(ctx, c)
	}
	if err := c.Heartbeat(ctx); err != nil {
		return fmt.Errorf("settle heartbeat after heal: %w", err)
	}

	res, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		return fmt.Errorf("verification search: %w", err)
	}
	found := make(map[index.FileID]bool, len(res.Files))
	for _, f := range res.Files {
		found[f] = true
	}
	for _, f := range ackedFiles {
		if !found[f] {
			r.AckedLostAfterPartition++
		}
	}
	stats, err := c.Master().ClusterStats(ctx, proto.ClusterStatsReq{})
	if err != nil {
		return err
	}
	r.PartitionPromotions = stats.Promotions
	for _, n := range c.Nodes() {
		st, err := n.NodeStats(ctx, proto.NodeStatsReq{})
		if err != nil {
			return err
		}
		r.LeaseRejects += st.LeaseRejects
	}
	return nil
}

// runControlPlaneIsolation is phase B: cut only the primary→Master control
// link, leaving the data path up. The healthy-but-isolated node must
// self-fence at the lease bound — strictly before the sweep could promote
// — and a healed link revives it with a renewal, zero placement changes.
func runControlPlaneIsolation(r *PartitionResult) error {
	ctx := context.Background()
	net := chaosnet.New(partitionSeed + 1)
	c, err := cluster.New(chaosClusterConfig(2, net))
	if err != nil {
		return err
	}
	defer c.Close() //nolint:errcheck
	cl, err := c.NewClient(benchNow)
	if err != nil {
		return err
	}
	defer cl.Close() //nolint:errcheck

	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		return err
	}
	for i := 0; i < 20; i++ {
		if err := cl.Index(ctx, "size", []client.FileUpdate{{
			File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: 1,
		}}); err != nil {
			return err
		}
	}
	if err := c.Heartbeat(ctx); err != nil {
		return err
	}
	look, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: []index.FileID{0}})
	if err != nil {
		return err
	}
	primID := look.Mappings[0].Node
	var prim = c.Nodes()[0]
	for _, n := range c.Nodes() {
		if n.ID() == primID {
			prim = n
		}
	}

	net.CutLink(string(primID), "master")
	// One missed round at cadence, then silence to exactly the lease
	// bound: 30s is >= the node's lease (it fences) but not > the Master's
	// timeout (no promotion) — the edge the safety argument lives on.
	c.Clock().Advance(heartbeatPace)
	heartbeatTolerant(ctx, c)
	c.Clock().Advance(heartbeatLimit - heartbeatPace)

	update := proto.UpdateReq{
		ACG: look.Mappings[0].ACG, IndexName: "size",
		Entries: []proto.IndexEntry{{File: 7000, Value: attr.Int(7000)}},
	}
	if _, err := prim.Update(ctx, update); !errors.Is(err, perr.ErrStalePlacement) {
		return fmt.Errorf("isolated primary at the lease bound returned %v, want ErrStalePlacement", err)
	}
	stats, err := c.Master().ClusterStats(ctx, proto.ClusterStatsReq{})
	if err != nil {
		return err
	}
	r.PromotionsDuringIsolation = stats.Promotions

	// Heal the control link: the node's own heartbeat renews its lease and
	// it resumes as primary — availability restored by renewal, not
	// failover.
	net.HealLink(string(primID), "master")
	if err := prim.Heartbeat(ctx); err != nil {
		return fmt.Errorf("heartbeat after control-link heal: %w", err)
	}
	if _, err := prim.Update(ctx, update); err == nil {
		r.HealedAfterLeaseRenewal = true
	}
	st, err := prim.NodeStats(ctx, proto.NodeStatsReq{})
	if err != nil {
		return err
	}
	r.SelfFenceRejects = st.LeaseRejects
	return nil
}

// runFrameCorruption is phase C's wire half: probabilistic byte corruption
// on every client→node data link. A corrupt frame tears the connection at
// the server's decoder — it can never half-apply — so the client redials
// and retries, and no acknowledged update is ever lost.
func runFrameCorruption(r *PartitionResult) error {
	ctx := context.Background()
	net := chaosnet.New(partitionSeed + 2)
	c, err := cluster.New(chaosClusterConfig(1, net))
	if err != nil {
		return err
	}
	defer c.Close() //nolint:errcheck
	cl, err := c.NewClient(benchNow)
	if err != nil {
		return err
	}
	defer cl.Close() //nolint:errcheck

	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		return err
	}
	var ackedFiles []index.FileID
	indexOne := func(file int) error {
		return cl.Index(ctx, "size", []client.FileUpdate{{
			File:      index.FileID(file),
			Value:     attr.Int(int64(file) + 1),
			GroupHint: uint64(file%2) + 1,
		}})
	}
	for i := 0; i < 10; i++ { // clean warm-up: groups exist, conns dialed
		if err := indexOne(i); err != nil {
			return err
		}
		ackedFiles = append(ackedFiles, index.FileID(i))
	}
	if err := c.Heartbeat(ctx); err != nil {
		return err
	}
	for _, n := range c.Nodes() {
		net.SetLink("client", string(n.ID()), chaosnet.Faults{CorruptProb: corruptProb})
	}
	for u := 0; u < corruptFiles; u++ {
		file := 10 + u
		for attempt := 0; attempt < partitionRetries; attempt++ {
			err := indexOne(file)
			if err == nil {
				ackedFiles = append(ackedFiles, index.FileID(file))
				break
			}
			// Torn connections surface transport-typed errors once the
			// client's own redial rounds are exhausted; they are retried,
			// recorded, and must never cost an acked update.
			r.CorruptionRetryErrors++
			c.Clock().Advance(heartbeatPace)
			_ = c.Heartbeat(ctx)
		}
	}
	net.ClearLinks()
	res, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		return fmt.Errorf("verification search: %w", err)
	}
	found := make(map[index.FileID]bool, len(res.Files))
	for _, f := range res.Files {
		found[f] = true
	}
	for _, f := range ackedFiles {
		if !found[f] {
			r.CorruptionAckedLost++
		}
	}
	r.CorruptedFrames = net.Stats().Corrupts
	return nil
}

// runCheckpointCorruption is phase C's storage half: bit-flip a group's
// shared-store checkpoint, kill its owner, and prove recovery degrades to
// the previous checkpoint generation plus full WAL replay — slower, never
// wrong, never wedged.
func runCheckpointCorruption(r *PartitionResult) error {
	ctx := context.Background()
	c, err := cluster.New(replClusterConfig(1))
	if err != nil {
		return err
	}
	defer c.Close() //nolint:errcheck
	cl, err := c.NewClient(benchNow)
	if err != nil {
		return err
	}
	defer cl.Close() //nolint:errcheck

	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		return err
	}
	var ackedFiles []index.FileID
	for i := 0; i < 20; i++ {
		if err := cl.Index(ctx, "size", []client.FileUpdate{{
			File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: 1,
		}}); err != nil {
			return err
		}
		ackedFiles = append(ackedFiles, index.FileID(i))
	}
	look, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: []index.FileID{0}})
	if err != nil {
		return err
	}
	probeACG := look.Mappings[0].ACG
	owner := -1
	for i, n := range c.Nodes() {
		if n.ID() == look.Mappings[0].Node {
			owner = i
		}
	}
	dest := (owner + 1) % len(c.Nodes())
	// A migration is a placement event: the receiver checkpoints the group,
	// rotating the previous generation into the fallback slot.
	if err := c.ForceMigrate(ctx, probeACG, dest); err != nil {
		return err
	}
	// Fresh WAL tail on top of the checkpoint.
	for i := 20; i < 30; i++ {
		if err := cl.Index(ctx, "size", []client.FileUpdate{{
			File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: 1,
		}}); err != nil {
			return err
		}
		ackedFiles = append(ackedFiles, index.FileID(i))
	}
	// Torn checkpoint write, then the owner dies: recovery must fall back.
	c.Shared().TamperCheckpoint(probeACG, func(raw []byte) []byte {
		raw[len(raw)/2] ^= 0xFF
		return raw
	})
	if err := c.KillNode(dest); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		c.Clock().Advance(heartbeatPace)
		_ = c.Heartbeat(ctx)
	}
	if err := c.Heartbeat(ctx); err != nil {
		return fmt.Errorf("recovery heartbeat: %w", err)
	}
	res, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		return fmt.Errorf("verification search: %w", err)
	}
	found := make(map[index.FileID]bool, len(res.Files))
	for _, f := range res.Files {
		found[f] = true
	}
	for _, f := range ackedFiles {
		if !found[f] {
			r.CheckpointRecoveryLost++
		}
	}
	r.CheckpointFallbackLoads = c.Shared().FallbackLoads()
	return nil
}

// runHedgedReads is phase D: wall-clock latency on the client's link to
// one replica; an unhedged control eats the link delay on every round that
// rotates onto the slow replica, a hedging client races past it.
func runHedgedReads(r *PartitionResult) error {
	ctx := context.Background()
	net := chaosnet.New(partitionSeed + 3)
	c, err := cluster.New(chaosClusterConfig(2, net))
	if err != nil {
		return err
	}
	defer c.Close() //nolint:errcheck
	cl, err := c.NewClient(benchNow)
	if err != nil {
		return err
	}
	defer cl.Close() //nolint:errcheck

	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		return err
	}
	updates := make([]client.FileUpdate, 0, fanoutFiles)
	for i := 0; i < fanoutFiles; i++ {
		updates = append(updates, client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: 1,
		})
	}
	if err := cl.Index(ctx, "size", updates); err != nil {
		return err
	}
	if err := c.Heartbeat(ctx); err != nil { // seed the follower
		return err
	}
	// Commit everywhere so lazy rounds return the full set: primary via a
	// strict search, follower via its tick.
	if _, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"}); err != nil {
		return err
	}
	c.Clock().Advance(10 * time.Second)
	if err := c.Tick(); err != nil {
		return err
	}
	if err := c.Heartbeat(ctx); err != nil { // renew leases after the advance
		return err
	}

	look, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: []index.FileID{0}})
	if err != nil {
		return err
	}
	net.SetLink("client", string(look.Mappings[0].Node), chaosnet.Faults{Latency: hedgeLinkDelay})

	measure := func(hcl *client.Client) (float64, error) {
		durs := make([]time.Duration, 0, hedgeRounds)
		for round := 0; round < hedgeRounds; round++ {
			t0 := time.Now()
			res, err := hcl.Search(ctx, client.Query{
				Index: "size", Text: "size>0", Consistency: proto.ConsistencyLazy,
			})
			if err != nil {
				return 0, err
			}
			if len(res.Files) != fanoutFiles {
				return 0, fmt.Errorf("lazy round %d returned %d files, want %d", round, len(res.Files), fanoutFiles)
			}
			durs = append(durs, time.Since(t0))
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		p99 := durs[(len(durs)*99+99)/100-1]
		return float64(p99) / float64(time.Microsecond), nil
	}

	plain, err := c.NewClientWith(client.Config{Now: benchNow})
	if err != nil {
		return err
	}
	defer plain.Close() //nolint:errcheck
	if r.UnhedgedP99Us, err = measure(plain); err != nil {
		return fmt.Errorf("unhedged control: %w", err)
	}
	hedged, err := c.NewClientWith(client.Config{Now: benchNow, HedgeDelay: hedgeDelay})
	if err != nil {
		return err
	}
	defer hedged.Close() //nolint:errcheck
	if r.HedgedP99Us, err = measure(hedged); err != nil {
		return fmt.Errorf("hedged run: %w", err)
	}
	r.HedgedRounds = hedgeRounds
	r.HedgedSearches = hedged.CacheStats().HedgedSearches
	return nil
}
