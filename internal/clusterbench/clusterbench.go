// Package clusterbench measures the placement control plane end to end on
// a small virtual-time cluster: the warm data path's Master RPC count
// (which must be zero — the epoch-keyed client cache makes steady-state
// traffic Master-free), the virtual cost of a live ACG migration and how
// surgically it invalidates the client cache, and the virtual time and
// completeness of a failure-driven recovery. tools/benchjson runs it and
// commits the result as BENCH_cluster.json; CI gates on the two
// correctness columns (warm_master_lookups == 0, lost_updates == 0).
//
// All durations are virtual (vclock) — disk and network charges on the
// simulated hardware — so the baseline is deterministic across machines.
package clusterbench

import (
	"context"
	"fmt"
	"time"

	"propeller/internal/attr"
	"propeller/internal/client"
	"propeller/internal/cluster"
	"propeller/internal/index"
	"propeller/internal/proto"
	"propeller/internal/rpc"
)

// Result is the committed baseline row set.
type Result struct {
	// Warm phase: steady-state rounds over fully resolved placement.
	WarmRounds        int   `json:"warm_rounds"`
	WarmUpdates       int   `json:"warm_updates"`
	WarmSearches      int   `json:"warm_searches"`
	WarmMasterLookups int64 `json:"warm_master_lookups"` // CI gate: 0

	// Forced migration of one group.
	MigrationVirtualUs    float64 `json:"migration_virtual_us"`
	MigrationStaleRetries int64   `json:"migration_stale_retries"`
	MovedMappingsReloaded int64   `json:"moved_mappings_reloaded"` // == files of the moved group

	// Node kill + heartbeat-driven recovery.
	RecoveryVirtualUs float64 `json:"recovery_virtual_us"`
	RecoveredFiles    int     `json:"recovered_files"`
	LostUpdates       int     `json:"lost_updates"` // CI gate: 0
}

const (
	groups         = 6
	filesPerGroup  = 50
	totalFiles     = groups * filesPerGroup
	warmRounds     = 10
	heartbeatPace  = 20 * time.Second
	heartbeatLimit = 30 * time.Second
)

// Run executes the scenario and returns the measured baseline.
func Run() (Result, error) {
	ctx := context.Background()
	c, err := cluster.New(cluster.Config{
		IndexNodes:       3,
		HeartbeatTimeout: heartbeatLimit,
		NetProfile:       rpc.GigabitLAN(),
		CacheLimit:       1 << 20, // keep updates pending so recovery replays WALs
	})
	if err != nil {
		return Result{}, err
	}
	defer c.Close() //nolint:errcheck // best-effort teardown
	cl, err := c.NewClient(func() time.Time { return time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC) })
	if err != nil {
		return Result{}, err
	}
	defer cl.Close() //nolint:errcheck

	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		return Result{}, err
	}
	updates := make([]client.FileUpdate, 0, totalFiles)
	for i := 0; i < totalFiles; i++ {
		updates = append(updates, client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: uint64(i/filesPerGroup) + 1,
		})
	}
	if err := cl.Index(ctx, "size", updates); err != nil {
		return Result{}, err
	}
	if _, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"}); err != nil {
		return Result{}, err
	}
	if err := c.Heartbeat(ctx); err != nil {
		return Result{}, err
	}

	var r Result

	// Warm phase: every mapping and the fan-out are cached; the Master
	// must see zero lookups.
	warmStart := cl.CacheStats()
	r.WarmRounds = warmRounds
	for round := 0; round < warmRounds; round++ {
		for i := range updates {
			updates[i].Value = attr.Int(int64(i + round + 2))
		}
		if err := cl.Index(ctx, "size", updates); err != nil {
			return Result{}, err
		}
		r.WarmUpdates += len(updates)
		if _, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"}); err != nil {
			return Result{}, err
		}
		r.WarmSearches++
	}
	warmEnd := cl.CacheStats()
	r.WarmMasterLookups = warmEnd.MasterLookups - warmStart.MasterLookups

	// Forced migration: move group 1 to whichever node doesn't hold it and
	// measure the virtual cost of the transfer (commit + checkpoint + ship
	// + rebind riding one heartbeat round).
	look, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: []index.FileID{0}})
	if err != nil {
		return Result{}, err
	}
	dest := 0
	for i, n := range c.Nodes() {
		if n.ID() != look.Mappings[0].Node {
			dest = i
			break
		}
	}
	preMig := cl.CacheStats()
	t0 := c.Clock().Now()
	if err := c.ForceMigrate(ctx, look.Mappings[0].ACG, dest); err != nil {
		return Result{}, err
	}
	r.MigrationVirtualUs = float64(c.Clock().Now()-t0) / float64(time.Microsecond)
	// One update round over everything: only the moved group's mappings may
	// re-resolve.
	if err := cl.Index(ctx, "size", updates); err != nil {
		return Result{}, err
	}
	postMig := cl.CacheStats()
	r.MigrationStaleRetries = postMig.StalePlacementRetries - preMig.StalePlacementRetries
	r.MovedMappingsReloaded = postMig.FileMisses - preMig.FileMisses

	// Failure: kill a node that still holds groups, run two heartbeat
	// rounds at a live cadence, and measure the round that performs the
	// sweep + recovery. Zero acknowledged updates may be lost.
	victim := -1
	for i, n := range c.Nodes() {
		st, err := n.NodeStats(ctx, proto.NodeStatsReq{})
		if err != nil {
			return Result{}, err
		}
		if st.ACGs > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		return Result{}, fmt.Errorf("clusterbench: no node holds groups")
	}
	if err := c.KillNode(victim); err != nil {
		return Result{}, err
	}
	c.Clock().Advance(heartbeatPace)
	if err := c.Heartbeat(ctx); err != nil {
		return Result{}, err
	}
	c.Clock().Advance(heartbeatPace)
	t1 := c.Clock().Now()
	if err := c.Heartbeat(ctx); err != nil {
		return Result{}, err
	}
	r.RecoveryVirtualUs = float64(c.Clock().Now()-t1) / float64(time.Microsecond)
	res, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		return Result{}, err
	}
	r.RecoveredFiles = len(res.Files)
	r.LostUpdates = totalFiles - len(res.Files)
	return r, nil
}
