package clusterbench

import "testing"

// TestRunDeterministicCorrectness runs the full control-plane scenario
// twice and requires every correctness column to agree — the columns CI
// gates BENCH_cluster.json on, plus the cache-surgery counters. (The
// virtual-duration columns are excluded: fan-out goroutine interleavings
// can reorder identical disk charges, which never changes what happened,
// only when the virtual clock says it finished.)
func TestRunDeterministicCorrectness(t *testing.T) {
	r1, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	type correctness struct {
		WarmRounds, WarmUpdates, WarmSearches int
		WarmMasterLookups                     int64
		MigrationStaleRetries                 int64
		MovedMappingsReloaded                 int64
		RecoveredFiles, LostUpdates           int
	}
	c := func(r Result) correctness {
		return correctness{
			WarmRounds: r.WarmRounds, WarmUpdates: r.WarmUpdates, WarmSearches: r.WarmSearches,
			WarmMasterLookups:     r.WarmMasterLookups,
			MigrationStaleRetries: r.MigrationStaleRetries,
			MovedMappingsReloaded: r.MovedMappingsReloaded,
			RecoveredFiles:        r.RecoveredFiles, LostUpdates: r.LostUpdates,
		}
	}
	if c1, c2 := c(r1), c(r2); c1 != c2 {
		t.Errorf("two runs disagree on correctness columns:\n%+v\n%+v", c1, c2)
	}
	// The committed gates themselves.
	if r1.WarmMasterLookups != 0 {
		t.Errorf("warm master lookups = %d, want 0", r1.WarmMasterLookups)
	}
	if r1.LostUpdates != 0 {
		t.Errorf("lost updates = %d, want 0", r1.LostUpdates)
	}
}

// TestRunReplicationDeterministicCorrectness runs the fault-injected
// replication scenario twice and requires the committed correctness
// columns to agree and to pass the CI gates: zero acknowledged updates
// lost, zero untyped errors, failover by promotion (never replay), and
// lazy reads that actually scale past the single-owner baseline.
func TestRunReplicationDeterministicCorrectness(t *testing.T) {
	r1, err := RunReplication()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunReplication()
	if err != nil {
		t.Fatal(err)
	}
	type correctness struct {
		ReplicationFactor, AckedUpdates, AckedLost, Untyped int
		ReplayRecoveries                                    int64
		FollowerScaling, SingleScaling                      float64
	}
	c := func(r ReplicationResult) correctness {
		return correctness{
			ReplicationFactor: r.ReplicationFactor, AckedUpdates: r.AckedUpdates,
			AckedLost: r.AckedLostAfterPromotion, Untyped: r.UntypedErrors,
			ReplayRecoveries: r.ReplayRecoveries,
			FollowerScaling:  r.FollowerReadScaling, SingleScaling: r.SingleOwnerScaling,
		}
	}
	if c1, c2 := c(r1), c(r2); c1 != c2 {
		t.Errorf("two runs disagree on correctness columns:\n%+v\n%+v", c1, c2)
	}
	if r1.AckedLostAfterPromotion != 0 {
		t.Errorf("acked updates lost = %d, want 0", r1.AckedLostAfterPromotion)
	}
	if r1.UntypedErrors != 0 {
		t.Errorf("untyped errors = %d, want 0", r1.UntypedErrors)
	}
	if r1.ReplayRecoveries != 0 {
		t.Errorf("replay recoveries = %d, want 0 (failover must promote)", r1.ReplayRecoveries)
	}
	if r1.Promotions == 0 {
		t.Error("promotions = 0, want > 0 (the schedule kills primaries)")
	}
	if r1.FollowerReadScaling <= r1.SingleOwnerScaling {
		t.Errorf("follower-read scaling %.2f does not beat single-owner %.2f",
			r1.FollowerReadScaling, r1.SingleOwnerScaling)
	}
}
