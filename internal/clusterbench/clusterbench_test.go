package clusterbench

import "testing"

// TestRunDeterministicCorrectness runs the full control-plane scenario
// twice and requires every correctness column to agree — the columns CI
// gates BENCH_cluster.json on, plus the cache-surgery counters. (The
// virtual-duration columns are excluded: fan-out goroutine interleavings
// can reorder identical disk charges, which never changes what happened,
// only when the virtual clock says it finished.)
func TestRunDeterministicCorrectness(t *testing.T) {
	r1, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	type correctness struct {
		WarmRounds, WarmUpdates, WarmSearches int
		WarmMasterLookups                     int64
		MigrationStaleRetries                 int64
		MovedMappingsReloaded                 int64
		RecoveredFiles, LostUpdates           int
	}
	c := func(r Result) correctness {
		return correctness{
			WarmRounds: r.WarmRounds, WarmUpdates: r.WarmUpdates, WarmSearches: r.WarmSearches,
			WarmMasterLookups:     r.WarmMasterLookups,
			MigrationStaleRetries: r.MigrationStaleRetries,
			MovedMappingsReloaded: r.MovedMappingsReloaded,
			RecoveredFiles:        r.RecoveredFiles, LostUpdates: r.LostUpdates,
		}
	}
	if c1, c2 := c(r1), c(r2); c1 != c2 {
		t.Errorf("two runs disagree on correctness columns:\n%+v\n%+v", c1, c2)
	}
	// The committed gates themselves.
	if r1.WarmMasterLookups != 0 {
		t.Errorf("warm master lookups = %d, want 0", r1.WarmMasterLookups)
	}
	if r1.LostUpdates != 0 {
		t.Errorf("lost updates = %d, want 0", r1.LostUpdates)
	}
}
