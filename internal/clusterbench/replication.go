package clusterbench

import (
	"context"
	"errors"
	"fmt"
	"time"

	"propeller/internal/attr"
	"propeller/internal/client"
	"propeller/internal/cluster"
	"propeller/internal/index"
	"propeller/internal/perr"
	"propeller/internal/proto"
	"propeller/internal/rpc"
)

// ReplicationResult is the committed baseline for the replicated-cluster
// scenario: a seeded fault-injection run that kills the probe group's
// primary mid-workload (twice, with a restart in between), plus a
// follower-read fan-out measurement against a single-owner baseline.
type ReplicationResult struct {
	ReplicationFactor int `json:"replication_factor"`

	// Fault-injected workload. Every surfaced error must be typed
	// (ErrStalePlacement / ErrOverloaded) and every acknowledged update
	// must survive failover via promotion, not shared-store replay.
	AckedUpdates            int   `json:"acked_updates"`
	AckedLostAfterPromotion int   `json:"acked_lost_after_promotion"` // CI gate: 0
	UntypedErrors           int   `json:"untyped_errors"`             // CI gate: 0
	Promotions              int64 `json:"promotions"`
	ReplayRecoveries        int64 `json:"replay_recoveries"` // CI gate: 0

	// PromotionVirtualUs is the virtual cost of the heartbeat round that
	// swept the first dead primary and promoted its follower.
	PromotionVirtualUs float64 `json:"promotion_virtual_us"`

	// Follower-read fan-out on one hot fully-replicated group, versus the
	// same workload on a single-owner cluster. Scaling is rounds divided
	// by the busiest node's share — 1.0 when one owner serves everything,
	// approaching the replica count as rotation spreads the load.
	FollowerReadRounds    int     `json:"follower_read_rounds"`
	FollowerReadScaling   float64 `json:"follower_read_scaling"`    // CI gate: > single-owner
	SingleOwnerScaling    float64 `json:"single_owner_scaling"`     // baseline: 1.0
	FollowerReadsSpread   []int64 `json:"follower_reads_spread"`    // per-node lazy searches served
	SingleOwnerReadSpread []int64 `json:"single_owner_read_spread"` // same, unreplicated
}

const (
	replFactor     = 2
	replGroups     = 4
	replWarmFiles  = 60  // files acked before any fault
	replWorkload   = 100 // new files acked across the fault schedule
	replSeed       = 42
	replKills      = 2
	replRestarts   = 1
	replRetries    = 6
	fanoutFiles    = 30
	fanoutRounds   = 30
	fanoutHotGroup = 1
	fanoutReplicas = 3
)

func replClusterConfig(k int) cluster.Config {
	return cluster.Config{
		IndexNodes:        3,
		HeartbeatTimeout:  heartbeatLimit,
		ReplicationFactor: k,
		NetProfile:        rpc.GigabitLAN(),
		CacheLimit:        1 << 20,
	}
}

func benchNow() time.Time { return time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC) }

// RunReplication executes the replicated-cluster scenario and returns the
// measured baseline.
func RunReplication() (ReplicationResult, error) {
	r := ReplicationResult{ReplicationFactor: replFactor}
	if err := runReplicationFaults(&r); err != nil {
		return r, err
	}
	if err := runFollowerReads(&r); err != nil {
		return r, err
	}
	return r, nil
}

// runReplicationFaults drives the seeded kill/restart schedule through an
// update workload and verifies the durability contract afterwards.
func runReplicationFaults(r *ReplicationResult) error {
	ctx := context.Background()
	c, err := cluster.New(replClusterConfig(replFactor))
	if err != nil {
		return err
	}
	defer c.Close() //nolint:errcheck // best-effort teardown
	cl, err := c.NewClient(benchNow)
	if err != nil {
		return err
	}
	defer cl.Close() //nolint:errcheck

	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		return err
	}
	indexOne := func(file int) error {
		return cl.Index(ctx, "size", []client.FileUpdate{{
			File:      index.FileID(file),
			Value:     attr.Int(int64(file) + 1),
			GroupHint: uint64(file%replGroups) + 1,
		}})
	}
	ackedFiles := make([]index.FileID, 0, replWarmFiles+replWorkload)
	for i := 0; i < replWarmFiles; i++ {
		if err := indexOne(i); err != nil {
			return fmt.Errorf("warm update %d: %w", i, err)
		}
		ackedFiles = append(ackedFiles, index.FileID(i))
	}
	// Seed the followers before the faults start.
	if err := c.Heartbeat(ctx); err != nil {
		return err
	}

	// The kill target is always the node that matters: the current
	// primary of the group owning file 0.
	pickVictim := func(ctx context.Context) (int, error) {
		look, err := c.Master().LookupFiles(ctx, proto.LookupFilesReq{Files: []index.FileID{0}})
		if err != nil {
			return 0, err
		}
		for i, n := range c.Nodes() {
			if n.ID() == look.Mappings[0].Node {
				return i, nil
			}
		}
		return 0, fmt.Errorf("no cluster node with id %s", look.Mappings[0].Node)
	}
	inj, err := NewInjector(c, replSeed, replWorkload, replKills, replRestarts, pickVictim)
	if err != nil {
		return err
	}

	for u := 0; u < replWorkload; u++ {
		// Live heartbeat cadence: every few updates a round runs, keeping
		// liveness fresh and delivering any pending re-seed orders (a
		// group whose follower died stays follower-less until a round
		// hands its primary a new replicate order). Tolerated: rounds
		// overlapping a failover surface transient errors and the Master
		// re-issues the orders.
		if u%5 == 0 {
			c.Clock().Advance(heartbeatPace)
			_ = c.Heartbeat(ctx)
		}
		fired, err := inj.Advance(ctx, u)
		if err != nil {
			return err
		}
		for _, ev := range fired {
			if ev.Kind != FaultKill {
				continue
			}
			// Let the Master detect the death and promote: one round at
			// live cadence (the victim just misses it), then the round
			// that sweeps and issues the promote order. The first such
			// round is the committed promotion cost. Transient errors are
			// tolerated — orders toward the dying node fail until the
			// sweep, and the Master re-issues them.
			c.Clock().Advance(heartbeatPace)
			_ = c.Heartbeat(ctx)
			c.Clock().Advance(heartbeatPace)
			t0 := c.Clock().Now()
			err := c.Heartbeat(ctx)
			if r.PromotionVirtualUs == 0 {
				r.PromotionVirtualUs = float64(c.Clock().Now()-t0) / float64(time.Microsecond)
			}
			_ = err
		}
		file := replWarmFiles + u
		for attempt := 0; attempt < replRetries; attempt++ {
			err := indexOne(file)
			if err == nil {
				ackedFiles = append(ackedFiles, index.FileID(file))
				break
			}
			if !errors.Is(err, perr.ErrStalePlacement) && !errors.Is(err, perr.ErrOverloaded) {
				r.UntypedErrors++
			}
			// Give the control plane a round to converge, then retry.
			c.Clock().Advance(heartbeatPace)
			_ = c.Heartbeat(ctx)
		}
	}
	r.AckedUpdates = len(ackedFiles)

	// Settle, then verify: every acknowledged file must be present, and
	// the failovers must have been promotions, not replays.
	for i := 0; i < 3; i++ {
		c.Clock().Advance(heartbeatPace)
		_ = c.Heartbeat(ctx)
	}
	if err := c.Heartbeat(ctx); err != nil {
		return fmt.Errorf("settle heartbeat: %w", err)
	}
	res, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"})
	if err != nil {
		return fmt.Errorf("verification search: %w", err)
	}
	found := make(map[index.FileID]bool, len(res.Files))
	for _, f := range res.Files {
		found[f] = true
	}
	for _, f := range ackedFiles {
		if !found[f] {
			r.AckedLostAfterPromotion++
		}
	}
	stats, err := c.Master().ClusterStats(ctx, proto.ClusterStatsReq{})
	if err != nil {
		return err
	}
	r.Promotions = stats.Promotions
	r.ReplayRecoveries = stats.Recoveries
	return nil
}

// runFollowerReads measures lazy-read fan-out over one hot fully
// replicated group, and the same workload on a single-owner cluster.
func runFollowerReads(r *ReplicationResult) error {
	scale := func(k int) (float64, []int64, error) {
		ctx := context.Background()
		c, err := cluster.New(replClusterConfig(k))
		if err != nil {
			return 0, nil, err
		}
		defer c.Close() //nolint:errcheck
		cl, err := c.NewClient(benchNow)
		if err != nil {
			return 0, nil, err
		}
		defer cl.Close() //nolint:errcheck
		if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
			return 0, nil, err
		}
		updates := make([]client.FileUpdate, 0, fanoutFiles)
		for i := 0; i < fanoutFiles; i++ {
			updates = append(updates, client.FileUpdate{
				File: index.FileID(i), Value: attr.Int(int64(i) + 1), GroupHint: fanoutHotGroup,
			})
		}
		if err := cl.Index(ctx, "size", updates); err != nil {
			return 0, nil, err
		}
		if err := c.Heartbeat(ctx); err != nil { // seed followers (no-op at k<=1)
			return 0, nil, err
		}
		// Commit everywhere: the primary via a strict search, the
		// followers via their tick.
		if _, err := cl.Search(ctx, client.Query{Index: "size", Text: "size>0"}); err != nil {
			return 0, nil, err
		}
		c.Clock().Advance(10 * time.Second)
		if err := c.Tick(); err != nil {
			return 0, nil, err
		}
		before := make([]int64, len(c.Nodes()))
		for i, n := range c.Nodes() {
			st, err := n.NodeStats(ctx, proto.NodeStatsReq{})
			if err != nil {
				return 0, nil, err
			}
			before[i] = st.SearchesServed
		}
		for round := 0; round < fanoutRounds; round++ {
			res, err := cl.Search(ctx, client.Query{
				Index: "size", Text: "size>0", Consistency: proto.ConsistencyLazy,
			})
			if err != nil {
				return 0, nil, err
			}
			if len(res.Files) != fanoutFiles {
				return 0, nil, fmt.Errorf("lazy round %d returned %d files, want %d", round, len(res.Files), fanoutFiles)
			}
		}
		spread := make([]int64, len(c.Nodes()))
		var busiest int64
		for i, n := range c.Nodes() {
			st, err := n.NodeStats(ctx, proto.NodeStatsReq{})
			if err != nil {
				return 0, nil, err
			}
			spread[i] = st.SearchesServed - before[i]
			if spread[i] > busiest {
				busiest = spread[i]
			}
		}
		if busiest == 0 {
			return 0, spread, fmt.Errorf("no node served any lazy search")
		}
		return float64(fanoutRounds) / float64(busiest), spread, nil
	}

	var err error
	r.FollowerReadRounds = fanoutRounds
	if r.FollowerReadScaling, r.FollowerReadsSpread, err = scale(fanoutReplicas); err != nil {
		return fmt.Errorf("replicated fan-out: %w", err)
	}
	if r.SingleOwnerScaling, r.SingleOwnerReadSpread, err = scale(1); err != nil {
		return fmt.Errorf("single-owner baseline: %w", err)
	}
	return nil
}
