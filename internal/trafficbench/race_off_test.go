//go:build !race

package trafficbench

const raceEnabled = false
