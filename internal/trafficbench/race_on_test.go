//go:build race

package trafficbench

// raceEnabled reports whether the race detector instrumented this build.
// The end-to-end fairness ratio is timing-sensitive: under the detector's
// slowdown the tenant-blind transport backstop, not the tenant-aware
// admission queue, does most of the shedding, so the ratio is unobservable.
const raceEnabled = true
