// Package trafficbench is the open-loop traffic harness: it generates a
// deterministic, pre-timestamped operation schedule (Poisson or bursty
// arrivals, configurable read/write mix, Zipf key skew, multi-tenant) and
// replays it against a live cluster at the intended instants regardless of
// how fast the cluster answers. Latency is measured from each op's
// *intended* arrival time, not from when a caller got around to sending it,
// so a slow server cannot hide queueing delay by back-pressuring the
// generator (the coordinated-omission trap closed-loop harnesses fall
// into). On top of the driver it measures the overload reflexes: shed
// rates under saturation, per-tenant fairness, the max-sustainable-QPS
// ladder, and — the hard gate — that an acknowledged write is never lost
// no matter how violently the cluster sheds.
//
// Generation is split from execution on purpose: GenOps is pure and seeded
// (same seed ⇒ byte-identical schedule, the determinism smoke tests pin
// this), while RunTrial owns all wall-clock nondeterminism.
package trafficbench

import (
	"math/rand"
	"time"

	"propeller/internal/index"
)

// Arrival selects the arrival process.
type Arrival string

const (
	// ArrivalPoisson draws i.i.d. exponential inter-arrival gaps at the
	// mean rate — the classic open-system model.
	ArrivalPoisson Arrival = "poisson"
	// ArrivalBurst concentrates the same mean rate into periodic on-windows
	// (BurstDuty of each BurstPeriod), so the instantaneous rate is
	// 1/BurstDuty times the mean — the schedule that actually trips
	// admission control.
	ArrivalBurst Arrival = "burst"
)

// Kind is an operation type.
type Kind uint8

const (
	// Write indexes one file (an Update RPC).
	Write Kind = iota
	// Read searches the index (a Search fan-out).
	Read
)

// Op is one scheduled operation. At is the intended arrival offset from the
// trial's start; the executor fires it then and measures completion − At.
type Op struct {
	At     time.Duration
	Kind   Kind
	File   index.FileID
	Tenant int
	// Seq is the value a Write carries (distinct per op, so the audit can
	// tell writes apart); unused for reads.
	Seq int64
}

// GenConfig parameterizes a schedule.
type GenConfig struct {
	// Seed makes the schedule reproducible.
	Seed int64
	// Ops is the number of operations to generate.
	Ops int
	// QPS is the mean offered rate (ops per second of schedule time).
	QPS float64
	// Arrival selects the process (default ArrivalPoisson).
	Arrival Arrival
	// BurstDuty is the on fraction of each burst period (default 0.1).
	BurstDuty float64
	// BurstPeriod is the burst cycle length (default 20ms).
	BurstPeriod time.Duration
	// ReadFraction is the probability an op is a Read (default 0.3).
	ReadFraction float64
	// Files is the key-space size (default 256).
	Files int
	// ZipfS is the Zipf skew exponent over the key space; values ≤ 1 select
	// a uniform draw (default 1.2 — a hot head, a long tail).
	ZipfS float64
	// Tenants is the number of distinct client identities (default 1).
	Tenants int
	// HotTenantShare is the probability an op belongs to tenant 0; the
	// remainder spreads uniformly over the others. 0 means uniform across
	// all tenants. Use > 1/Tenants to model one flooding tenant for the
	// fairness experiments.
	HotTenantShare float64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Ops <= 0 {
		c.Ops = 1000
	}
	if c.QPS <= 0 {
		c.QPS = 1000
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.BurstDuty <= 0 || c.BurstDuty > 1 {
		c.BurstDuty = 0.1
	}
	if c.BurstPeriod <= 0 {
		c.BurstPeriod = 20 * time.Millisecond
	}
	if c.ReadFraction < 0 || c.ReadFraction > 1 {
		c.ReadFraction = 0.3
	}
	if c.Files <= 0 {
		c.Files = 256
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
	return c
}

// GenOps produces the schedule: Ops operations with non-decreasing At.
// Deterministic — the same config (seed included) yields the same slice.
func GenOps(cfg GenConfig) []Op {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.ZipfS > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Files-1))
	}

	ops := make([]Op, 0, cfg.Ops)
	// The accumulator is an integer Duration so the burst fold is exact —
	// float schedule time rounds the on-window edges and leaks arrivals
	// into the off-window.
	var at time.Duration
	onLen := time.Duration(float64(cfg.BurstPeriod) * cfg.BurstDuty)
	for i := 0; i < cfg.Ops; i++ {
		switch cfg.Arrival {
		case ArrivalBurst:
			// Draw at the compressed on-rate, then fold any overshoot past
			// the current on-window into the next window's start.
			at += time.Duration(rng.ExpFloat64() / (cfg.QPS / cfg.BurstDuty) * float64(time.Second))
			if into := at % cfg.BurstPeriod; into > onLen {
				at += cfg.BurstPeriod - into
			}
		default:
			at += time.Duration(rng.ExpFloat64() / cfg.QPS * float64(time.Second))
		}

		var file index.FileID
		if zipf != nil {
			file = index.FileID(zipf.Uint64())
		} else {
			file = index.FileID(rng.Intn(cfg.Files))
		}

		tenant := 0
		if cfg.Tenants > 1 {
			switch {
			case cfg.HotTenantShare > 0:
				if rng.Float64() >= cfg.HotTenantShare {
					tenant = 1 + rng.Intn(cfg.Tenants-1)
				}
			default:
				tenant = rng.Intn(cfg.Tenants)
			}
		}

		op := Op{At: at, File: file, Tenant: tenant}
		if rng.Float64() < cfg.ReadFraction {
			op.Kind = Read
		} else {
			op.Seq = int64(i) + 1
		}
		ops = append(ops, op)
	}
	return ops
}
