package trafficbench

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// TestGenOpsDeterministic pins the generator contract the whole harness
// rests on: same config ⇒ byte-identical schedule.
func TestGenOpsDeterministic(t *testing.T) {
	for _, arrival := range []Arrival{ArrivalPoisson, ArrivalBurst} {
		cfg := GenConfig{
			Seed: 7, Ops: 2000, QPS: 5000, Arrival: arrival,
			ReadFraction: 0.4, Files: 128, Tenants: 3, HotTenantShare: 0.6,
		}
		a, b := GenOps(cfg), GenOps(cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different schedules", arrival)
		}
		cfg.Seed = 8
		if reflect.DeepEqual(a, GenOps(cfg)) {
			t.Fatalf("%s: different seeds produced the same schedule", arrival)
		}
	}
}

func TestGenOpsSchedule(t *testing.T) {
	cfg := GenConfig{
		Seed: 3, Ops: 5000, QPS: 10000, ReadFraction: 0.3,
		Files: 100, Tenants: 4, HotTenantShare: 0.7, ZipfS: 1.3,
	}
	ops := GenOps(cfg)
	if len(ops) != cfg.Ops {
		t.Fatalf("len = %d, want %d", len(ops), cfg.Ops)
	}
	reads, hot := 0, 0
	fileFreq := make(map[int]int)
	seqs := make(map[int64]bool)
	for i, op := range ops {
		if i > 0 && op.At < ops[i-1].At {
			t.Fatalf("op %d arrives before its predecessor", i)
		}
		if op.Kind == Read {
			reads++
		} else {
			if op.Seq == 0 || seqs[op.Seq] {
				t.Fatalf("write %d has non-unique seq %d", i, op.Seq)
			}
			seqs[op.Seq] = true
		}
		if op.Tenant == 0 {
			hot++
		}
		if op.Tenant < 0 || op.Tenant >= cfg.Tenants {
			t.Fatalf("op %d tenant %d out of range", i, op.Tenant)
		}
		if int(op.File) < 0 || int(op.File) >= cfg.Files {
			t.Fatalf("op %d file %d out of range", i, op.File)
		}
		fileFreq[int(op.File)]++
	}
	if frac := float64(reads) / float64(len(ops)); frac < 0.25 || frac > 0.35 {
		t.Errorf("read fraction = %.3f, want ~0.3", frac)
	}
	if frac := float64(hot) / float64(len(ops)); frac < 0.65 || frac > 0.75 {
		t.Errorf("hot tenant share = %.3f, want ~0.7", frac)
	}
	// Zipf skew: the hottest key must far exceed the uniform share.
	maxFreq := 0
	for _, n := range fileFreq {
		if n > maxFreq {
			maxFreq = n
		}
	}
	if uniform := len(ops) / cfg.Files; maxFreq < 4*uniform {
		t.Errorf("hottest key hit %d times, want ≥ 4× the uniform share %d", maxFreq, uniform)
	}
	// Mean rate: the schedule must span roughly Ops/QPS seconds.
	span := ops[len(ops)-1].At.Seconds()
	want := float64(cfg.Ops) / cfg.QPS
	if span < want*0.8 || span > want*1.2 {
		t.Errorf("schedule spans %.3fs, want ~%.3fs", span, want)
	}
}

func TestGenOpsBurstCompressesArrivals(t *testing.T) {
	cfg := GenConfig{
		Seed: 5, Ops: 4000, QPS: 10000,
		Arrival: ArrivalBurst, BurstDuty: 0.1, BurstPeriod: 20 * time.Millisecond,
	}
	ops := GenOps(cfg)
	period, onLen := cfg.BurstPeriod, time.Duration(float64(cfg.BurstPeriod)*cfg.BurstDuty)
	for i, op := range ops {
		if into := op.At % period; into > onLen {
			t.Fatalf("op %d at %v lands %v into the period, outside the %v on-window", i, op.At, into, onLen)
		}
	}
	// Same op count in a tenth of the wall: mean rate is preserved, so the
	// schedule spans about as long as the Poisson one would.
	span := ops[len(ops)-1].At.Seconds()
	want := float64(cfg.Ops) / cfg.QPS
	if span < want*0.8 || span > want*1.3 {
		t.Errorf("burst schedule spans %.3fs, want ~%.3fs", span, want)
	}
}

// TestTrafficOverloadGraceful is the end-to-end overload gate in miniature:
// a burst schedule far past the admission limit must shed (the reflex
// engages), complete real work, and lose nothing it acknowledged.
func TestTrafficOverloadGraceful(t *testing.T) {
	ctx := context.Background()
	h, err := NewHarness(ctx, HarnessConfig{
		IndexNodes: 2, MaxInflight: 4, Tenants: 2, Files: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	r, err := h.RunTrial(ctx, GenOps(GenConfig{
		Seed: 11, Ops: 1500, QPS: 20000,
		Arrival: ArrivalBurst, BurstDuty: 0.05,
		ReadFraction: 0.3, Files: 64, Tenants: 2,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if r.Shed == 0 {
		t.Error("a 20× burst over a 4-deep queue must shed")
	}
	if r.Completed == 0 {
		t.Error("overload must degrade, not halt: zero ops completed")
	}
	if r.AckedLost != 0 {
		t.Errorf("acked writes lost under overload = %d, want 0", r.AckedLost)
	}
	if r.Errors > r.OfferedOps/10 {
		t.Errorf("non-shed errors = %d of %d: overload must surface as typed sheds", r.Errors, r.OfferedOps)
	}
	if r.Completed > 0 && r.P99us == 0 {
		t.Error("histogram recorded no latency for completed ops")
	}
}

// TestTrafficFairnessProtectsLightTenant drives a flooding tenant against a
// light one through the full stack and checks admission fairness holds at
// the trial level: the light tenant is shed no harder than the flooder.
func TestTrafficFairnessProtectsLightTenant(t *testing.T) {
	ctx := context.Background()
	h, err := NewHarness(ctx, HarnessConfig{
		IndexNodes: 1, MaxInflight: 8, Tenants: 3, Files: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	r, err := h.RunTrial(ctx, GenOps(GenConfig{
		Seed: 13, Ops: 2000, QPS: 20000,
		Arrival: ArrivalBurst, BurstDuty: 0.05,
		ReadFraction: 0.3, Files: 64, Tenants: 3, HotTenantShare: 0.8,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if r.AckedLost != 0 {
		t.Fatalf("acked writes lost = %d, want 0", r.AckedLost)
	}
	if r.Shed == 0 {
		t.Skip("no sheds this run; fairness unobservable (machine outran the burst)")
	}
	hot := r.Tenants[0]
	t.Logf("flooder: offered=%d completed=%d shedRate=%.3f", hot.Offered, hot.Completed, hot.ShedRate)
	for i, cold := range r.Tenants[1:] {
		t.Logf("light %d: offered=%d completed=%d shedRate=%.3f", i+1, cold.Offered, cold.Completed, cold.ShedRate)
		if cold.Offered == 0 {
			continue
		}
		if cold.Completed == 0 {
			t.Errorf("light tenant %d completed nothing while the flooder completed %d", i+1, hot.Completed)
		}
		// Application admission sheds the flooder preferentially; the
		// transport backstop is tenant-blind, so allow sampling noise
		// around equality — the invariant is the light tenant is never
		// shed *harder*. Under the race detector the host is starved
		// enough that the blind backstop does most of the shedding and
		// the ratio is unobservable (the queue-level fairness tests in
		// internal/indexnode cover the mechanism under race instead).
		if raceEnabled {
			continue
		}
		if cold.ShedRate > hot.ShedRate+0.10 {
			t.Errorf("light tenant %d shed rate %.3f exceeds flooder's %.3f", i+1, cold.ShedRate, hot.ShedRate)
		}
	}
}

// TestTrafficFixedLoadCompletes sanity-checks the absorbing regime: a rate
// well inside capacity completes (almost) everything with no audit loss.
func TestTrafficFixedLoadCompletes(t *testing.T) {
	ctx := context.Background()
	h, err := NewHarness(ctx, HarnessConfig{
		IndexNodes: 2, MaxInflight: 32, Tenants: 1, Files: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	r, err := h.RunTrial(ctx, GenOps(GenConfig{
		Seed: 17, Ops: 300, QPS: 500, ReadFraction: 0.3, Files: 64,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if r.AckedLost != 0 {
		t.Errorf("acked lost = %d, want 0", r.AckedLost)
	}
	if float64(r.Completed) < 0.95*float64(r.OfferedOps) {
		t.Errorf("completed %d of %d at a trivial rate", r.Completed, r.OfferedOps)
	}
	if r.AckedWrites == 0 {
		t.Error("no writes acked at a trivial rate")
	}
}
