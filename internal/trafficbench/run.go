package trafficbench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"propeller/internal/attr"
	"propeller/internal/client"
	"propeller/internal/cluster"
	"propeller/internal/index"
	"propeller/internal/metrics"
	"propeller/internal/perr"
	"propeller/internal/proto"
)

// HarnessConfig sizes the cluster under test.
type HarnessConfig struct {
	// IndexNodes is the cluster width (default 2).
	IndexNodes int
	// MaxInflight is each node's admission-queue bound (default 8; this is
	// the knob the overload trials exist to exercise). Negative disables
	// admission entirely — the unbounded control clusters use it.
	MaxInflight int
	// Tenants is how many distinct client identities to wire (default 1).
	// Trial clients disable overload retries so every shed is observed.
	Tenants int
	// Files preloads the key space so trials run over warm placements.
	Files int
	// IndexName is the index under test (default "size").
	IndexName string
	// OpTimeout bounds each operation (default 5s; a hung op counts as an
	// error, never blocks the trial).
	OpTimeout time.Duration
	// SearchLimit pages trial reads (default 32) so a read's cost doesn't
	// grow with the key space.
	SearchLimit int
}

func (c HarnessConfig) withDefaults() HarnessConfig {
	if c.IndexNodes <= 0 {
		c.IndexNodes = 2
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 8
	}
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
	if c.Files <= 0 {
		c.Files = 256
	}
	if c.IndexName == "" {
		c.IndexName = "size"
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 5 * time.Second
	}
	if c.SearchLimit <= 0 {
		c.SearchLimit = 32
	}
	return c
}

// Harness is a booted cluster plus one shed-surfacing client per tenant.
type Harness struct {
	cfg     HarnessConfig
	Cluster *cluster.Cluster
	// Clients are the per-tenant trial clients (overload retries disabled:
	// the harness counts sheds instead of hiding them).
	Clients []*client.Client
}

// NewHarness boots the cluster, declares the index, preloads every file
// once per tenant (warming each client's placement cache so trials measure
// the data path, not cold resolution), and returns the harness.
func NewHarness(ctx context.Context, cfg HarnessConfig) (*Harness, error) {
	cfg = cfg.withDefaults()
	// TCP, not pipes: net.Pipe is a synchronous rendezvous, so a pipe
	// cluster self-clocks — callers can only submit as fast as handlers
	// drain, queueing invisibly in the client and never building the
	// server-side depth admission control watches. Kernel socket buffers
	// decouple submission from service, which is what overload *is*.
	inflight := cfg.MaxInflight
	if inflight < 0 {
		inflight = 0 // cluster semantics: 0 = unbounded
	}
	cl, err := cluster.New(cluster.Config{
		IndexNodes:  cfg.IndexNodes,
		MaxInflight: inflight,
		UseTCP:      true,
	})
	if err != nil {
		return nil, err
	}
	h := &Harness{cfg: cfg, Cluster: cl}
	first, err := cl.NewClientWith(client.Config{ID: "t0", OverloadRetries: -1})
	if err != nil {
		h.Close()
		return nil, err
	}
	h.Clients = append(h.Clients, first)
	if err := first.CreateIndex(ctx, proto.IndexSpec{
		Name: cfg.IndexName, Type: proto.IndexBTree, Field: "size",
	}); err != nil {
		h.Close()
		return nil, err
	}
	for t := 1; t < cfg.Tenants; t++ {
		c, err := cl.NewClientWith(client.Config{
			ID: fmt.Sprintf("t%d", t), OverloadRetries: -1,
		})
		if err != nil {
			h.Close()
			return nil, err
		}
		h.Clients = append(h.Clients, c)
	}
	// Preload: every tenant resolves every file and the search fan-out.
	ups := make([]client.FileUpdate, cfg.Files)
	for i := range ups {
		ups[i] = client.FileUpdate{
			File: index.FileID(i), Value: attr.Int(1), GroupHint: uint64(i/64) + 1,
		}
	}
	for _, c := range h.Clients {
		if err := c.Index(ctx, cfg.IndexName, ups); err != nil {
			h.Close()
			return nil, err
		}
		if _, err := c.Search(ctx, client.Query{Index: cfg.IndexName, Text: "size>0", Limit: 1}); err != nil {
			h.Close()
			return nil, err
		}
	}
	return h, nil
}

// Close tears the harness down.
func (h *Harness) Close() {
	for _, c := range h.Clients {
		_ = c.Close()
	}
	if h.Cluster != nil {
		_ = h.Cluster.Close()
	}
}

// TenantStats is one tenant's slice of a trial.
type TenantStats struct {
	Offered   int     `json:"offered"`
	Completed int     `json:"completed"`
	Shed      int     `json:"shed"`
	ShedRate  float64 `json:"shed_rate"`
}

// TrialResult is one open-loop run's measurement.
type TrialResult struct {
	OfferedOps  int     `json:"offered_ops"`
	OfferedQPS  float64 `json:"offered_qps"`
	WallSeconds float64 `json:"wall_seconds"`

	Completed    int     `json:"completed"`
	Shed         int     `json:"shed"`
	Errors       int     `json:"errors"`
	SustainedQPS float64 `json:"sustained_qps"`
	ShedRate     float64 `json:"shed_rate"`

	// Latency of completed ops, measured from intended arrival (µs).
	P50us  float64 `json:"p50_us"`
	P95us  float64 `json:"p95_us"`
	P99us  float64 `json:"p99_us"`
	P999us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`

	// AckedWrites counts writes that returned success; AckedLost counts
	// acked files missing from the post-trial strict audit. The hard
	// invariant: AckedLost == 0, always, at any overload level.
	AckedWrites int `json:"acked_writes"`
	AckedLost   int `json:"acked_lost"`

	// Tenants breaks the trial down per client identity (fairness view).
	Tenants []TenantStats `json:"tenants,omitempty"`
}

// RunTrial replays ops open-loop against the harness: each op fires at
// start+op.At on its own goroutine whether or not earlier ops finished, and
// a completed op records (completion − intended arrival) — dispatch delay
// included — in an HDR histogram. Sheds (perr.ErrOverloaded) are counted,
// not retried. After the run it audits every acked write against a strict
// search and fills AckedLost.
func (h *Harness) RunTrial(ctx context.Context, ops []Op) (TrialResult, error) {
	if len(ops) == 0 {
		return TrialResult{}, errors.New("trafficbench: empty schedule")
	}
	hist := metrics.NewHistogram()
	var mu sync.Mutex
	var completed, shed, errCount int
	acked := make(map[index.FileID]bool)
	perTenant := make([]TenantStats, len(h.Clients))

	var wg sync.WaitGroup
	start := time.Now()
	for i := range ops {
		op := ops[i]
		if op.Tenant >= len(h.Clients) {
			op.Tenant = op.Tenant % len(h.Clients)
		}
		// Open loop: wait for the intended instant, never for predecessors.
		if d := time.Until(start.Add(op.At)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(op Op) {
			defer wg.Done()
			opCtx, cancel := context.WithTimeout(ctx, h.cfg.OpTimeout)
			defer cancel()
			cl := h.Clients[op.Tenant]
			var err error
			if op.Kind == Write {
				err = cl.Index(opCtx, h.cfg.IndexName, []client.FileUpdate{
					{File: op.File, Value: attr.Int(op.Seq)},
				})
			} else {
				_, err = cl.Search(opCtx, client.Query{
					Index: h.cfg.IndexName, Text: "size>0", Limit: h.cfg.SearchLimit,
				})
			}
			lat := time.Since(start.Add(op.At))
			mu.Lock()
			defer mu.Unlock()
			perTenant[op.Tenant].Offered++
			switch {
			case err == nil:
				completed++
				perTenant[op.Tenant].Completed++
				hist.Record(lat)
				if op.Kind == Write {
					acked[op.File] = true
				}
			case errors.Is(err, perr.ErrOverloaded):
				shed++
				perTenant[op.Tenant].Shed++
			default:
				errCount++
			}
		}(op)
	}
	wg.Wait()
	wall := time.Since(start)

	r := TrialResult{
		OfferedOps:  len(ops),
		OfferedQPS:  float64(len(ops)) / ops[len(ops)-1].At.Seconds(),
		WallSeconds: wall.Seconds(),
		Completed:   completed,
		Shed:        shed,
		Errors:      errCount,
		ShedRate:    float64(shed) / float64(len(ops)),
		AckedWrites: len(acked),
	}
	if wall > 0 {
		r.SustainedQPS = float64(completed) / wall.Seconds()
	}
	s := hist.Summarize()
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	r.P50us, r.P95us, r.P99us, r.P999us, r.MaxUs = us(s.P50), us(s.P95), us(s.P99), us(s.P999), us(s.Max)
	for t := range perTenant {
		if perTenant[t].Offered > 0 {
			perTenant[t].ShedRate = float64(perTenant[t].Shed) / float64(perTenant[t].Offered)
		}
	}
	r.Tenants = perTenant

	lost, err := h.audit(ctx, acked)
	if err != nil {
		return r, err
	}
	r.AckedLost = lost
	return r, nil
}

// audit verifies every acked file is visible to a strict (commit-on-search)
// read after the storm. The auditing client retries through residual load —
// overload may delay the audit, never excuse a loss.
func (h *Harness) audit(ctx context.Context, acked map[index.FileID]bool) (int, error) {
	if len(acked) == 0 {
		return 0, nil
	}
	auditor, err := h.Cluster.NewClientWith(client.Config{ID: "audit", OverloadRetries: 10})
	if err != nil {
		return 0, err
	}
	defer auditor.Close() //nolint:errcheck
	res, err := auditor.Search(ctx, client.Query{
		Index: h.cfg.IndexName, Text: "size>0", Consistency: proto.ConsistencyStrict,
	})
	if err != nil {
		return 0, fmt.Errorf("trafficbench audit: %w", err)
	}
	seen := make(map[index.FileID]bool, len(res.Files))
	for _, f := range res.Files {
		seen[f] = true
	}
	lost := 0
	for f := range acked {
		if !seen[f] {
			lost++
		}
	}
	return lost, nil
}

// SweepPoint is one rung of the max-sustainable-QPS ladder.
type SweepPoint struct {
	OfferedQPS   float64 `json:"offered_qps"`
	SustainedQPS float64 `json:"sustained_qps"`
	ShedRate     float64 `json:"shed_rate"`
	P99us        float64 `json:"p99_us"`
	Sustainable  bool    `json:"sustainable"`
}

// SweepMaxQPS runs the schedule template at each offered rate and reports
// the shed-rate curve plus the highest rate the cluster sustained (shed
// rate ≤ maxShed and p99 ≤ p99Limit). Each rung reuses gen with only QPS
// (and proportionally Ops, holding schedule length fixed) swapped, so the
// rungs differ in rate, not in shape.
func (h *Harness) SweepMaxQPS(ctx context.Context, gen GenConfig, ladder []float64, maxShed float64, p99Limit time.Duration) ([]SweepPoint, float64, error) {
	gen = gen.withDefaults()
	seconds := float64(gen.Ops) / gen.QPS
	points := make([]SweepPoint, 0, len(ladder))
	best := 0.0
	for _, qps := range ladder {
		g := gen
		g.QPS = qps
		g.Ops = int(qps * seconds)
		r, err := h.RunTrial(ctx, GenOps(g))
		if err != nil {
			return points, best, err
		}
		if r.AckedLost > 0 {
			return points, best, fmt.Errorf("trafficbench sweep at %.0f qps: %d acked writes lost", qps, r.AckedLost)
		}
		p := SweepPoint{
			OfferedQPS:   qps,
			SustainedQPS: r.SustainedQPS,
			ShedRate:     r.ShedRate,
			P99us:        r.P99us,
			Sustainable:  r.ShedRate <= maxShed && r.P99us <= float64(p99Limit)/float64(time.Microsecond),
		}
		if p.Sustainable && qps > best {
			best = qps
		}
		points = append(points, p)
	}
	return points, best, nil
}
