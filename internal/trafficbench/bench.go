package trafficbench

import (
	"context"
	"time"
)

// Result is the committed BENCH_traffic.json shape. Wall-clock numbers vary
// by machine, so the CI gate checks the run's internal invariants — zero
// acked-then-lost writes anywhere, sheds actually engaging under the
// overload schedule, and the overload p99 staying within a bounded factor
// of the same run's fixed-load p99 — rather than absolute latencies.
type Result struct {
	Seed int64 `json:"seed"`

	// FixedLoad is a Poisson run at a rate the cluster absorbs.
	FixedLoad TrialResult `json:"fixed_load"`
	// Overload is a bursty run whose instantaneous rate far exceeds the
	// admission limit: graceful degradation means bounded p99 on completed
	// ops, a non-zero shed rate, and no acked write lost.
	Overload TrialResult `json:"overload"`
	// OverloadUnbounded is the control: the identical schedule against a
	// cluster with admission control disabled. On a saturated host every
	// op completes by queueing, so its tail is the "ungraceful" yardstick
	// the gated run must beat — a comparison within one run on one
	// machine, immune to cross-runner variance.
	OverloadUnbounded TrialResult `json:"overload_unbounded"`

	// ShedCurve is the max-sustainable-QPS ladder.
	ShedCurve         []SweepPoint `json:"shed_curve"`
	MaxSustainableQPS float64      `json:"max_sustainable_qps"`
}

const benchSeed = 42

// Run executes the committed scenario: fixed load, 8× burst overload with a
// hot tenant, then the QPS ladder. Sized to finish in a few seconds of wall
// time so CI can afford it.
func Run() (Result, error) {
	ctx := context.Background()
	h, err := NewHarness(ctx, HarnessConfig{
		IndexNodes:  2,
		MaxInflight: 8,
		Tenants:     4,
		Files:       256,
	})
	if err != nil {
		return Result{}, err
	}
	defer h.Close()

	r := Result{Seed: benchSeed}

	// Fixed load: 1s of Poisson traffic at 2k QPS, mixed read/write.
	r.FixedLoad, err = h.RunTrial(ctx, GenOps(GenConfig{
		Seed: benchSeed, Ops: 2000, QPS: 2000,
		Arrival: ArrivalPoisson, ReadFraction: 0.3,
		Files: 256, Tenants: 4,
	}))
	if err != nil {
		return r, err
	}

	// Overload: the same mean rate times eight, compressed into 5% duty
	// bursts (160× instantaneous), with tenant 0 flooding at 70% share.
	overloadSchedule := GenOps(GenConfig{
		Seed: benchSeed + 1, Ops: 4000, QPS: 16000,
		Arrival: ArrivalBurst, BurstDuty: 0.05, ReadFraction: 0.3,
		Files: 256, Tenants: 4, HotTenantShare: 0.7,
	})
	r.Overload, err = h.RunTrial(ctx, overloadSchedule)
	if err != nil {
		return r, err
	}

	// Control: the identical schedule, admission disabled. Runs on a fresh
	// cluster so the gated run's state cannot leak into the yardstick.
	hu, err := NewHarness(ctx, HarnessConfig{
		IndexNodes:  2,
		MaxInflight: -1, // explicit: no admission, no transport backstop
		Tenants:     4,
		Files:       256,
	})
	if err != nil {
		return r, err
	}
	r.OverloadUnbounded, err = hu.RunTrial(ctx, overloadSchedule)
	hu.Close()
	if err != nil {
		return r, err
	}

	// Ladder: 0.4s rungs at doubling rates; sustainable = shed rate ≤ 1%
	// and p99 within 50ms (generous — in-process ops are µs–ms).
	r.ShedCurve, r.MaxSustainableQPS, err = h.SweepMaxQPS(ctx,
		GenConfig{
			Seed: benchSeed + 2, Ops: 400, QPS: 1000,
			Arrival: ArrivalPoisson, ReadFraction: 0.3, Files: 256, Tenants: 4,
		},
		[]float64{1000, 2000, 4000, 8000},
		0.01, 50*time.Millisecond)
	return r, err
}
