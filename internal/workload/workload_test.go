package workload

import (
	"testing"

	"propeller/internal/acg"
)

func TestPathIDsDenseAndStable(t *testing.T) {
	reg := NewPathIDs()
	a := reg.ID("/x")
	b := reg.ID("/y")
	if a != 0 || b != 1 {
		t.Errorf("ids = %d,%d, want 0,1", a, b)
	}
	if reg.ID("/x") != a {
		t.Error("repeated ID() must be stable")
	}
	if reg.Path(a) != "/x" || reg.Path(99) != "" {
		t.Error("Path lookup wrong")
	}
	if reg.Len() != 2 {
		t.Errorf("Len = %d, want 2", reg.Len())
	}
}

func TestAccessSetsMatchTableI(t *testing.T) {
	apps := TableIApps()
	sets, err := AccessSets(apps)
	if err != nil {
		t.Fatal(err)
	}
	// Totals match.
	for _, a := range apps {
		if got := len(sets[a.Name]); got != a.TotalFiles {
			t.Errorf("%s: %d files, want %d", a.Name, got, a.TotalFiles)
		}
	}
	// Pairwise overlaps match the paper's Table I exactly.
	wantOverlap := map[[2]string]int{
		{"aptget", "firefox"}:     31,
		{"aptget", "openoffice"}:  62,
		{"aptget", "linux"}:       29,
		{"firefox", "openoffice"}: 464,
		{"firefox", "linux"}:      48,
		{"openoffice", "linux"}:   45,
	}
	for pair, want := range wantOverlap {
		if got := Overlap(sets[pair[0]], sets[pair[1]]); got != want {
			t.Errorf("overlap(%s,%s) = %d, want %d", pair[0], pair[1], got, want)
		}
	}
	// Overlaps are small fractions: the paper's key observation.
	for pair := range wantOverlap {
		frac := float64(Overlap(sets[pair[0]], sets[pair[1]])) / float64(len(sets[pair[0]]))
		if frac > 0.25 {
			t.Errorf("overlap fraction %s/%s = %f too large", pair[0], pair[1], frac)
		}
	}
}

func TestAccessSetsRejectImpossibleProfile(t *testing.T) {
	apps := []AppProfile{
		{Name: "a", TotalFiles: 1, PairShared: map[string]int{"b": 5}},
		{Name: "b", TotalFiles: 10, PairShared: map[string]int{"a": 5}},
	}
	if _, err := AccessSets(apps); err == nil {
		t.Fatal("overlap larger than total should be rejected")
	}
}

func TestOverlap(t *testing.T) {
	a := []string{"a", "b", "c", "d"}
	b := []string{"b", "d", "e"}
	if got := Overlap(a, b); got != 2 {
		t.Errorf("Overlap = %d, want 2", got)
	}
	if Overlap(nil, a) != 0 {
		t.Error("nil overlap should be 0")
	}
}

func TestCompileProfileFiles(t *testing.T) {
	for _, p := range []CompileProfile{ThriftProfile(), GitProfile(), LinuxProfile(0.15)} {
		if p.Files() < 100 {
			t.Errorf("%s: suspiciously few files %d", p.Name, p.Files())
		}
	}
	// Thrift is in the right ballpark of the paper's 775 vertices.
	f := ThriftProfile().Files()
	if f < 400 || f > 1200 {
		t.Errorf("thrift files = %d, want ~775", f)
	}
}

func TestCompileTraceComponents(t *testing.T) {
	reg := NewPathIDs()
	b := acg.NewBuilder()
	p := ThriftProfile()
	touched := p.Trace(b, reg)
	g := b.Graph()

	if len(touched) != p.Files() {
		t.Errorf("touched %d files, Files() = %d", len(touched), p.Files())
	}
	if g.NumVertices() != p.Files() {
		t.Errorf("graph vertices = %d, want %d", g.NumVertices(), p.Files())
	}
	comps := g.ConnectedComponents()
	if len(comps) != p.Modules {
		t.Errorf("components = %d, want %d (one per module, Fig. 7)", len(comps), p.Modules)
	}
}

func TestCompileTraceWeightsAccumulate(t *testing.T) {
	// Two iterations double the total edge weight but not the edge count.
	one := ThriftProfile()
	one.Iterations = 1
	two := ThriftProfile()
	two.Iterations = 2

	regA, regB := NewPathIDs(), NewPathIDs()
	bA, bB := acg.NewBuilder(), acg.NewBuilder()
	one.Trace(bA, regA)
	two.Trace(bB, regB)
	gA, gB := bA.Graph(), bB.Graph()
	if gB.NumEdges() != gA.NumEdges() {
		t.Errorf("edge count changed across iterations: %d vs %d", gA.NumEdges(), gB.NumEdges())
	}
	if gB.TotalWeight() != 2*gA.TotalWeight() {
		t.Errorf("weight %d, want 2x %d", gB.TotalWeight(), gA.TotalWeight())
	}
}

func TestCompileTraceDataflowDirection(t *testing.T) {
	reg := NewPathIDs()
	b := acg.NewBuilder()
	p := CompileProfile{Name: "t", Modules: 1, DirsPerModule: 1,
		SourcesPerDir: 1, HeadersPerDir: 1, SharedHeaders: 0, Iterations: 1}
	p.Trace(b, reg)
	g := b.Graph()
	src := reg.ID("/src/t/mod00/dir00/unit000.c")
	obj := reg.ID("/src/t/mod00/dir00/unit000.o")
	if g.EdgeWeight(src, obj) != 1 {
		t.Error("source should produce object")
	}
	if g.EdgeWeight(obj, src) != 0 {
		t.Error("dataflow must be directed")
	}
	target := reg.ID("/src/t/mod00/t-mod00.a")
	if g.EdgeWeight(obj, target) != 1 {
		t.Error("object should produce link target")
	}
}

func TestLinuxProfileScales(t *testing.T) {
	small := LinuxProfile(0.1)
	big := LinuxProfile(0.5)
	if big.Files() <= small.Files() {
		t.Errorf("scale should grow the tree: %d vs %d", big.Files(), small.Files())
	}
	def := LinuxProfile(0)
	if def.Modules < 2 {
		t.Error("default scale must give at least 2 modules")
	}
}
