// Package workload generates the application file-access traces the paper's
// motivation and evaluation rely on: real-execution access sets with small
// cross-application overlap (Table I), and compile traces whose ACGs show
// per-module disconnected components (Figure 7, Table II).
//
// The generators are deterministic for a given seed. They reproduce the
// *statistical* structure of the paper's monitored executions — per-app
// private file universes, a handful of shared system libraries, and
// module-local compile dataflow — which is all the ACG experiments depend
// on.
package workload

import (
	"fmt"
	"sort"
	"sync"

	"propeller/internal/index"
)

// PathIDs assigns dense FileIDs to paths (the client's view of the inode
// table). Safe for concurrent use.
type PathIDs struct {
	mu    sync.Mutex
	ids   map[string]index.FileID
	paths []string
}

// NewPathIDs returns an empty registry.
func NewPathIDs() *PathIDs {
	return &PathIDs{ids: make(map[string]index.FileID)}
}

// ID returns the stable id for path, assigning the next dense id on first
// use.
func (p *PathIDs) ID(path string) index.FileID {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id, ok := p.ids[path]; ok {
		return id
	}
	id := index.FileID(len(p.paths))
	p.ids[path] = id
	p.paths = append(p.paths, path)
	return id
}

// Path returns the path of id (empty if unknown).
func (p *PathIDs) Path(id index.FileID) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) < len(p.paths) {
		return p.paths[id]
	}
	return ""
}

// Len returns the number of registered paths.
func (p *PathIDs) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.paths)
}

// AppProfile describes one monitored application execution for the Table I
// reproduction. PairShared holds the number of files shared with each other
// app; the generator materialises exactly those overlaps.
type AppProfile struct {
	Name       string
	TotalFiles int
	PairShared map[string]int
}

// TableIApps reproduces the four applications of Table I with the paper's
// access-set sizes and pairwise overlaps.
func TableIApps() []AppProfile {
	return []AppProfile{
		{Name: "aptget", TotalFiles: 279, PairShared: map[string]int{
			"firefox": 31, "openoffice": 62, "linux": 29}},
		{Name: "firefox", TotalFiles: 2279, PairShared: map[string]int{
			"aptget": 31, "openoffice": 464, "linux": 48}},
		{Name: "openoffice", TotalFiles: 2696, PairShared: map[string]int{
			"aptget": 62, "firefox": 464, "linux": 45}},
		{Name: "linux", TotalFiles: 19715, PairShared: map[string]int{
			"aptget": 29, "firefox": 48, "openoffice": 45}},
	}
}

// AccessSets materialises the file sets accessed by each app: pairwise
// shared pools (system libraries) plus app-private files, with sizes and
// overlaps matching the profiles exactly. The returned map is
// app -> sorted paths.
func AccessSets(apps []AppProfile) (map[string][]string, error) {
	sets := make(map[string]map[string]bool, len(apps))
	for _, a := range apps {
		sets[a.Name] = make(map[string]bool, a.TotalFiles)
	}
	// Pairwise shared files (deterministic names).
	done := map[string]bool{}
	for _, a := range apps {
		names := make([]string, 0, len(a.PairShared))
		for other := range a.PairShared {
			names = append(names, other)
		}
		sort.Strings(names)
		for _, other := range names {
			lo, hi := a.Name, other
			if lo > hi {
				lo, hi = hi, lo
			}
			key := lo + "/" + hi
			if done[key] {
				continue
			}
			done[key] = true
			n := a.PairShared[other]
			if m, ok := sets[other]; ok {
				for i := 0; i < n; i++ {
					p := fmt.Sprintf("/usr/lib/shared/%s-%s/lib%04d.so", lo, hi, i)
					sets[a.Name][p] = true
					m[p] = true
				}
			}
		}
	}
	// Private remainder.
	for _, a := range apps {
		priv := a.TotalFiles - len(sets[a.Name])
		if priv < 0 {
			return nil, fmt.Errorf("workload: app %q overlaps (%d) exceed total %d",
				a.Name, len(sets[a.Name]), a.TotalFiles)
		}
		for i := 0; i < priv; i++ {
			sets[a.Name][fmt.Sprintf("/opt/%s/private/f%06d", a.Name, i)] = true
		}
	}
	out := make(map[string][]string, len(sets))
	for name, m := range sets {
		paths := make([]string, 0, len(m))
		for p := range m {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		out[name] = paths
	}
	return out, nil
}

// Overlap returns |a ∩ b| for two sorted path slices.
func Overlap(a, b []string) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
