package workload

import (
	"fmt"

	"propeller/internal/acg"
	"propeller/internal/index"
)

// CompileProfile describes a software build whose file accesses Propeller's
// FUSE client would capture (§V-A compiles Git, Thrift and the Linux kernel
// on the Propeller file system). Modules are independent build targets —
// their ACG components are disconnected, which is what Figure 7 shows for
// Thrift.
type CompileProfile struct {
	Name string
	// Modules is the number of independent top-level build targets.
	Modules int
	// DirsPerModule controls source-tree fan-out.
	DirsPerModule int
	// SourcesPerDir is the number of compilation units per directory.
	SourcesPerDir int
	// HeadersPerDir is the number of directory-local headers.
	HeadersPerDir int
	// SharedHeaders is the number of module-wide headers every unit reads.
	SharedHeaders int
	// Iterations replays the build (repeated builds accumulate edge weight,
	// Figure 4).
	Iterations int
}

// ThriftProfile approximates compiling Apache Thrift: two disjoint build
// targets (the compiler and the libraries), ~775 files.
func ThriftProfile() CompileProfile {
	return CompileProfile{
		Name: "thrift", Modules: 2, DirsPerModule: 8,
		SourcesPerDir: 18, HeadersPerDir: 6, SharedHeaders: 4, Iterations: 6,
	}
}

// GitProfile approximates building Git: a flat tree, ~1000 files, sparse
// edges.
func GitProfile() CompileProfile {
	return CompileProfile{
		Name: "git", Modules: 3, DirsPerModule: 4,
		SourcesPerDir: 28, HeadersPerDir: 4, SharedHeaders: 2, Iterations: 1,
	}
}

// LinuxProfile approximates a kernel build scaled by factor (1.0 would be
// the paper's 62k-file graph with ~6M edges; the default harness runs
// scale 0.15 to keep the graph laptop-sized while preserving its shape —
// see DESIGN.md §3).
func LinuxProfile(scale float64) CompileProfile {
	if scale <= 0 {
		scale = 0.15
	}
	mods := int(24 * scale)
	if mods < 2 {
		mods = 2
	}
	return CompileProfile{
		Name: "linux", Modules: mods, DirsPerModule: 14,
		SourcesPerDir: 22, HeadersPerDir: 8, SharedHeaders: 12, Iterations: 2,
	}
}

// Files returns the number of distinct files one build touches.
func (p CompileProfile) Files() int {
	perDir := p.SourcesPerDir*2 + p.HeadersPerDir             // sources + objects + headers
	perModule := p.DirsPerModule*perDir + p.SharedHeaders + 1 // + linked artifact
	return p.Modules * perModule
}

// Trace replays the build into builder, registering paths in reg, and
// returns the set of files touched. Build dataflow per compilation unit:
// the compiler process reads the source, its directory headers and the
// module's shared headers, then writes the object file; a final link step
// per module reads every object and writes the module artifact.
func (p CompileProfile) Trace(builder *acg.Builder, reg *PathIDs) []index.FileID {
	touched := make(map[index.FileID]bool)
	var proc acg.PID = 1
	for iter := 0; iter < max(1, p.Iterations); iter++ {
		for m := 0; m < p.Modules; m++ {
			shared := make([]index.FileID, 0, p.SharedHeaders)
			for h := 0; h < p.SharedHeaders; h++ {
				shared = append(shared, reg.ID(fmt.Sprintf("/src/%s/mod%02d/include/common%02d.h", p.Name, m, h)))
			}
			var objects []index.FileID
			for d := 0; d < p.DirsPerModule; d++ {
				headers := make([]index.FileID, 0, p.HeadersPerDir)
				for h := 0; h < p.HeadersPerDir; h++ {
					headers = append(headers, reg.ID(fmt.Sprintf("/src/%s/mod%02d/dir%02d/local%02d.h", p.Name, m, d, h)))
				}
				for s := 0; s < p.SourcesPerDir; s++ {
					src := reg.ID(fmt.Sprintf("/src/%s/mod%02d/dir%02d/unit%03d.c", p.Name, m, d, s))
					obj := reg.ID(fmt.Sprintf("/src/%s/mod%02d/dir%02d/unit%03d.o", p.Name, m, d, s))
					// One compiler process per unit.
					builder.Open(proc, src, acg.OpenRead)
					for _, h := range headers {
						builder.Open(proc, h, acg.OpenRead)
					}
					for _, h := range shared {
						builder.Open(proc, h, acg.OpenRead)
					}
					builder.Open(proc, obj, acg.OpenWrite)
					touched[src] = true
					touched[obj] = true
					for _, h := range headers {
						touched[h] = true
					}
					builder.EndProcess(proc)
					proc++
					objects = append(objects, obj)
				}
			}
			for _, h := range shared {
				touched[h] = true
			}
			// Link step: one process reads all objects, writes the target.
			target := reg.ID(fmt.Sprintf("/src/%s/mod%02d/%s-mod%02d.a", p.Name, m, p.Name, m))
			for _, o := range objects {
				builder.Open(proc, o, acg.OpenRead)
			}
			builder.Open(proc, target, acg.OpenWrite)
			builder.EndProcess(proc)
			proc++
			touched[target] = true
		}
	}
	out := make([]index.FileID, 0, len(touched))
	for f := range touched {
		out = append(out, f)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
