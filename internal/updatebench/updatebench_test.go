package updatebench

import (
	"context"
	"reflect"
	"testing"

	"propeller/internal/proto"
)

// TestScenarioTableStable pins the write-path scenario table the committed
// BENCH_update.json baseline is built from: names, dominant index kind,
// and the ns/entry denominator. Changing any of these silently re-scales
// the baseline, so the change has to be visible here.
func TestScenarioTableStable(t *testing.T) {
	type row struct {
		Kind         string
		EntriesPerOp int
	}
	want := map[string]row{
		"append_only_btree":   {Kind: "btree", EntriesPerOp: AppendBatch},
		"reindex_heavy_btree": {Kind: "btree", EntriesPerOp: ReindexFiles * ReindexRounds},
		"delete_heavy_kd":     {Kind: "kd", EntriesPerOp: 2 * KDDeletes},
		"mixed":               {Kind: "mixed", EntriesPerOp: MixedAppend + 3*MixedReindex + MixedHash + 2*MixedKD},
	}
	got := make(map[string]row)
	for _, s := range Scenarios() {
		got[s.Name] = row{Kind: s.Kind, EntriesPerOp: s.EntriesPerOp}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("scenario table = %+v, want %+v", got, want)
	}
}

// checkQueries is the post-op probe per scenario: a full scan of every
// index the scenario mutates, so two runs that diverge anywhere in the
// committed state diverge here.
var checkQueries = map[string][]proto.SearchReq{
	"append_only_btree": {
		{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>0", Limit: 1 << 20},
	},
	"reindex_heavy_btree": {
		{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>=0", Limit: 1 << 20},
	},
	"delete_heavy_kd": {
		{ACGs: []proto.ACGID{1}, IndexName: "pt", Query: "x>=0 & y<=1e9", Limit: 1 << 20},
	},
	"mixed": {
		{ACGs: []proto.ACGID{1}, IndexName: "size", Query: "size>=0", Limit: 1 << 20},
		{ACGs: []proto.ACGID{1}, IndexName: "tag", Query: "tag>=0", Limit: 1 << 20},
		{ACGs: []proto.ACGID{2}, IndexName: "pt", Query: "x>=0 & y<=1e9", Limit: 1 << 20},
	},
}

// TestScenariosDeterministic prepares each scenario twice, applies one op
// to each, and requires the resulting committed index state to be
// identical: the op generators are seedless counters, so same sequence ⇒
// same state, and a refactor that changes what an op writes must fail
// here rather than silently move the benchmark.
func TestScenariosDeterministic(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			probes, ok := checkQueries[s.Name]
			if !ok {
				t.Fatalf("no post-op probe declared for scenario %q", s.Name)
			}
			run := func() [][]uint64 {
				r, err := s.Prepare()
				if err != nil {
					t.Fatal(err)
				}
				if r.EntriesPerOp != s.EntriesPerOp {
					t.Fatalf("run EntriesPerOp = %d, table says %d", r.EntriesPerOp, s.EntriesPerOp)
				}
				if err := r.Op(); err != nil {
					t.Fatal(err)
				}
				var out [][]uint64
				for _, req := range probes {
					resp, err := r.Node.Search(context.Background(), req)
					if err != nil {
						t.Fatal(err)
					}
					if resp.More {
						t.Fatalf("probe %q overflowed its page; raise the limit", req.Query)
					}
					files := make([]uint64, len(resp.Files))
					for i, f := range resp.Files {
						files[i] = uint64(f)
					}
					out = append(out, files)
				}
				return out
			}
			a, b := run(), run()
			for i := range a {
				if len(a[i]) == 0 {
					t.Fatalf("probe %d found an empty index after the op", i)
				}
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("two runs left different committed state:\n%v\n%v", a, b)
			}
		})
	}
}
