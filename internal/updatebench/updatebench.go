// Package updatebench builds the standard Index Node fixtures behind the
// write-path (commit) benchmarks, shared by the root bench_test.go suite
// and tools/benchjson (which emits BENCH_update.json in CI). It mirrors
// internal/searchbench for the read path: keeping the fixtures in one
// place makes the committed JSON baseline and the `go test -bench`
// numbers the same experiment.
//
// Every scenario measures the cost of absorbing one commit window of
// acknowledged updates into the durable indices — the batch the lazy
// index cache (§IV) exists to amortize. The headline metric is
// ns/entry: wall time per acknowledged entry, because wall time is where
// the CPU cost of per-entry index descents and K-D rebuilds shows up
// (virtual disk charges advance the simulated clock, not the benchmark
// timer).
package updatebench

import (
	"context"
	"fmt"
	"time"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/indexnode"
	"propeller/internal/pagestore"
	"propeller/internal/proto"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

// Standard fixture sizes. Both bench_test.go and tools/benchjson consume
// these through Scenarios, so the committed BENCH_update.json baseline
// and the `go test -bench` numbers always measure the same workload.
const (
	// AppendInit/AppendBatch: committed B-tree volume before timing, and
	// fresh postings appended per commit window.
	AppendInit  = 10000
	AppendBatch = 1000
	// ReindexFiles/ReindexRounds: distinct files and how many times each
	// is re-indexed inside one commit window (coalescing collapses the
	// window to one index mutation per file).
	ReindexFiles  = 200
	ReindexRounds = 10
	// KDPoints/KDDeletes: committed K-D volume and the points deleted
	// (then re-inserted) per op. Per-entry rebuilds make this quadratic:
	// every delete pays a full O(n log n) rebuild.
	KDPoints  = 5000
	KDDeletes = 200
	// Mixed-scenario slice sizes.
	MixedAppend  = 200
	MixedReindex = 100
	MixedHash    = 100
	MixedKD      = 100
)

// commitTimeout must exceed the node's lazy-cache timeout so an op's
// clock advance always triggers the Tick commit.
const commitTimeout = 6 * time.Second

// Run is a prepared scenario: a node with its committed fixture plus an
// Op that enqueues one commit window of updates and commits it.
type Run struct {
	Node *indexnode.Node
	// EntriesPerOp is the number of acknowledged entries each Op absorbs
	// (the ns/entry denominator).
	EntriesPerOp int
	// Op enqueues the window and commits; scenarios are steady-state (or
	// append-only), so it can be called any number of times.
	Op func() error
}

// Scenario is one benchmarked commit workload.
type Scenario struct {
	Name string
	// Kind is the dominant index structure exercised: btree, hash, kd,
	// or mixed.
	Kind string
	// EntriesPerOp is the acknowledged-entry count per op (also on Run).
	EntriesPerOp int
	Prepare      func() (*Run, error)
}

// NewNode builds a standalone Index Node with an effectively unbounded
// lazy cache (commits are driven by the benchmark's Tick) and returns
// its virtual clock for timeout-driven commits.
func NewNode() (*indexnode.Node, *vclock.Clock, error) {
	clk := vclock.New()
	disk := simdisk.New(simdisk.Barracuda7200(), clk)
	store, err := pagestore.New(disk, 1<<16)
	if err != nil {
		return nil, nil, err
	}
	n, err := indexnode.New(indexnode.Config{
		ID: "updatebench", Store: store, Disk: disk, Clock: clk,
		CacheLimit: 1 << 30,
	})
	if err != nil {
		return nil, nil, err
	}
	return n, clk, nil
}

// commit advances virtual time past the lazy-cache timeout and ticks, so
// every pending entry on the node is absorbed in one commit per group.
func commit(n *indexnode.Node, clk *vclock.Clock) error {
	clk.Advance(commitTimeout)
	return n.Tick()
}

func update(n *indexnode.Node, acg proto.ACGID, name string, entries []proto.IndexEntry) error {
	_, err := n.Update(context.Background(), proto.UpdateReq{ACG: acg, IndexName: name, Entries: entries})
	return err
}

// diagPoint returns the i-th fixture K-D point (the x=y diagonal).
func diagPoint(i int) proto.IndexEntry {
	return proto.IndexEntry{File: index.FileID(i), KDCoords: []float64{float64(i), float64(i)}}
}

// appendOnly seeds AppendInit committed B-tree postings; each op appends
// AppendBatch fresh postings and commits.
func appendOnly() (*Run, error) {
	n, clk, err := NewNode()
	if err != nil {
		return nil, err
	}
	n.DeclareIndex(proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"})
	seed := make([]proto.IndexEntry, AppendInit)
	for i := range seed {
		seed[i] = proto.IndexEntry{File: index.FileID(i + 1), Value: attr.Int(int64(i + 1))}
	}
	if err := update(n, 1, "size", seed); err != nil {
		return nil, err
	}
	if err := commit(n, clk); err != nil {
		return nil, err
	}
	next := AppendInit + 1
	op := func() error {
		entries := make([]proto.IndexEntry, AppendBatch)
		for i := range entries {
			entries[i] = proto.IndexEntry{File: index.FileID(next), Value: attr.Int(int64(next))}
			next++
		}
		if err := update(n, 1, "size", entries); err != nil {
			return err
		}
		return commit(n, clk)
	}
	return &Run{Node: n, EntriesPerOp: AppendBatch, Op: op}, nil
}

// reindexHeavy seeds ReindexFiles committed postings; each op re-indexes
// every file ReindexRounds times inside one commit window — the workload
// per-(index, file) coalescing exists for.
func reindexHeavy() (*Run, error) {
	n, clk, err := NewNode()
	if err != nil {
		return nil, err
	}
	n.DeclareIndex(proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"})
	seed := make([]proto.IndexEntry, ReindexFiles)
	for i := range seed {
		seed[i] = proto.IndexEntry{File: index.FileID(i + 1), Value: attr.Int(int64(i))}
	}
	if err := update(n, 1, "size", seed); err != nil {
		return nil, err
	}
	if err := commit(n, clk); err != nil {
		return nil, err
	}
	gen := int64(1)
	op := func() error {
		for r := 0; r < ReindexRounds; r++ {
			entries := make([]proto.IndexEntry, ReindexFiles)
			for i := range entries {
				entries[i] = proto.IndexEntry{
					File:  index.FileID(i + 1),
					Value: attr.Int(gen*int64(ReindexFiles+1) + int64(i)),
				}
			}
			gen++
			if err := update(n, 1, "size", entries); err != nil {
				return err
			}
		}
		return commit(n, clk)
	}
	return &Run{Node: n, EntriesPerOp: ReindexFiles * ReindexRounds, Op: op}, nil
}

// deleteHeavyKD seeds KDPoints committed K-D points; each op deletes
// KDDeletes of them in one commit window, commits, then re-inserts them
// and commits — returning to the initial state. Per-entry K-D apply pays
// one full rebuild per delete; the batch engine pays one per commit.
func deleteHeavyKD() (*Run, error) {
	n, clk, err := NewNode()
	if err != nil {
		return nil, err
	}
	n.DeclareIndex(proto.IndexSpec{Name: "pt", Type: proto.IndexKD, Fields: []string{"x", "y"}})
	seed := make([]proto.IndexEntry, KDPoints)
	for i := range seed {
		seed[i] = diagPoint(i + 1)
	}
	if err := update(n, 1, "pt", seed); err != nil {
		return nil, err
	}
	if err := commit(n, clk); err != nil {
		return nil, err
	}
	stride := KDPoints / KDDeletes
	op := func() error {
		dels := make([]proto.IndexEntry, KDDeletes)
		for i := range dels {
			dels[i] = proto.IndexEntry{File: index.FileID(i*stride + 1), Delete: true}
		}
		if err := update(n, 1, "pt", dels); err != nil {
			return err
		}
		if err := commit(n, clk); err != nil {
			return err
		}
		ins := make([]proto.IndexEntry, KDDeletes)
		for i := range ins {
			ins[i] = diagPoint(i*stride + 1)
		}
		if err := update(n, 1, "pt", ins); err != nil {
			return err
		}
		return commit(n, clk)
	}
	return &Run{Node: n, EntriesPerOp: 2 * KDDeletes, Op: op}, nil
}

// mixed drives all three index structures across two groups in one op:
// B-tree appends and re-index churn plus hash re-index churn on ACG 1,
// K-D deletes and re-inserts on ACG 2.
func mixed() (*Run, error) {
	n, clk, err := NewNode()
	if err != nil {
		return nil, err
	}
	n.DeclareIndex(proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"})
	n.DeclareIndex(proto.IndexSpec{Name: "tag", Type: proto.IndexHash, Field: "tag"})
	n.DeclareIndex(proto.IndexSpec{Name: "pt", Type: proto.IndexKD, Fields: []string{"x", "y"}})
	bt := make([]proto.IndexEntry, 2000)
	for i := range bt {
		bt[i] = proto.IndexEntry{File: index.FileID(i + 1), Value: attr.Int(int64(i))}
	}
	ht := make([]proto.IndexEntry, 1000)
	for i := range ht {
		ht[i] = proto.IndexEntry{File: index.FileID(i + 1), Value: attr.Int(int64(i % 50))}
	}
	kd := make([]proto.IndexEntry, 2000)
	for i := range kd {
		kd[i] = diagPoint(i + 1)
	}
	if err := update(n, 1, "size", bt); err != nil {
		return nil, err
	}
	if err := update(n, 1, "tag", ht); err != nil {
		return nil, err
	}
	if err := update(n, 2, "pt", kd); err != nil {
		return nil, err
	}
	if err := commit(n, clk); err != nil {
		return nil, err
	}
	nextFile := 1 << 20
	gen := int64(1)
	op := func() error {
		// Window 1: appends + re-index churn + KD deletes, one commit.
		app := make([]proto.IndexEntry, MixedAppend)
		for i := range app {
			app[i] = proto.IndexEntry{File: index.FileID(nextFile), Value: attr.Int(int64(nextFile))}
			nextFile++
		}
		if err := update(n, 1, "size", app); err != nil {
			return err
		}
		for r := 0; r < 3; r++ {
			re := make([]proto.IndexEntry, MixedReindex)
			for i := range re {
				re[i] = proto.IndexEntry{File: index.FileID(i + 1), Value: attr.Int(gen*4096 + int64(i))}
			}
			gen++
			if err := update(n, 1, "size", re); err != nil {
				return err
			}
		}
		hre := make([]proto.IndexEntry, MixedHash)
		for i := range hre {
			hre[i] = proto.IndexEntry{File: index.FileID(i + 1), Value: attr.Int(gen%97 + int64(i%50))}
		}
		if err := update(n, 1, "tag", hre); err != nil {
			return err
		}
		dels := make([]proto.IndexEntry, MixedKD)
		for i := range dels {
			dels[i] = proto.IndexEntry{File: index.FileID(i*20 + 1), Delete: true}
		}
		if err := update(n, 2, "pt", dels); err != nil {
			return err
		}
		if err := commit(n, clk); err != nil {
			return err
		}
		// Window 2: restore the deleted KD points, one commit.
		ins := make([]proto.IndexEntry, MixedKD)
		for i := range ins {
			ins[i] = diagPoint(i*20 + 1)
		}
		if err := update(n, 2, "pt", ins); err != nil {
			return err
		}
		return commit(n, clk)
	}
	entries := MixedAppend + 3*MixedReindex + MixedHash + 2*MixedKD
	return &Run{Node: n, EntriesPerOp: entries, Op: op}, nil
}

// Scenarios returns the standard write-path benchmark set.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "append_only_btree", Kind: "btree", EntriesPerOp: AppendBatch, Prepare: appendOnly},
		{Name: "reindex_heavy_btree", Kind: "btree", EntriesPerOp: ReindexFiles * ReindexRounds, Prepare: reindexHeavy},
		{Name: "delete_heavy_kd", Kind: "kd", EntriesPerOp: 2 * KDDeletes, Prepare: deleteHeavyKD},
		{Name: "mixed", Kind: "mixed", EntriesPerOp: MixedAppend + 3*MixedReindex + MixedHash + 2*MixedKD, Prepare: mixed},
	}
}

// ByName returns the named scenario.
func ByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("updatebench: unknown scenario %q", name)
}
