// Package bruteforce is the paper's baseline search (§V-E): a full
// namespace walk evaluating the predicate on every file, the "find /x -size
// +16M" of Table V. It always returns exact results (recall 100%) but pays
// dataset-scale cost on every query: per-file CPU always, plus metadata
// disk reads when cold.
package bruteforce

import (
	"sort"
	"time"

	"propeller/internal/index"
	"propeller/internal/query"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
	"propeller/internal/vfs"
)

// Scanner performs brute-force searches over a namespace.
type Scanner struct {
	ns    *vfs.Namespace
	clock *vclock.Clock
	disk  *simdisk.Disk
	// CPUPerFile is the per-file predicate-evaluation cost.
	CPUPerFile time.Duration
	// FilesPerRead is how many directory entries one metadata read returns
	// (cold scans issue Len/FilesPerRead random reads).
	FilesPerRead int

	warm bool
}

// New returns a Scanner. disk may be nil (no cold I/O model).
func New(ns *vfs.Namespace, clock *vclock.Clock, disk *simdisk.Disk) *Scanner {
	return &Scanner{
		ns:           ns,
		clock:        clock,
		disk:         disk,
		CPUPerFile:   30 * time.Microsecond,
		FilesPerRead: 16,
	}
}

// DropCaches makes the next scan cold again.
func (s *Scanner) DropCaches() { s.warm = false }

// Search walks every file, charging the cost model, and returns exact
// matches sorted by id.
func (s *Scanner) Search(q query.Query) []index.FileID {
	files := s.ns.Files()
	if !s.warm && s.disk != nil {
		reads := len(files) / s.FilesPerRead
		for i := 0; i < reads; i++ {
			// Directory metadata is scattered: random 4 KiB reads.
			//nolint:errcheck // latency charge only
			s.disk.Read(int64(i)*7919*4096%(1<<37), 4096)
		}
	}
	s.warm = true
	s.clock.Advance(time.Duration(len(files)) * s.CPUPerFile)

	var out []index.FileID
	for _, fa := range files {
		if q.MatchesFile(fa) {
			out = append(out, fa.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
