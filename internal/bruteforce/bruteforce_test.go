package bruteforce

import (
	"fmt"
	"testing"
	"time"

	"propeller/internal/query"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
	"propeller/internal/vfs"
)

var testNow = time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)

func TestSearchExactAndOrdered(t *testing.T) {
	ns := vfs.NewNamespace()
	for i := 0; i < 200; i++ {
		if _, err := ns.Create(fmt.Sprintf("/f%03d", i), int64(i)<<20, testNow, 1); err != nil {
			t.Fatal(err)
		}
	}
	clk := vclock.New()
	s := New(ns, clk, nil)
	q, err := query.Parse("size>100m", testNow)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Search(q)
	if len(got) != 99 {
		t.Fatalf("got %d, want 99", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("results not sorted")
		}
	}
}

func TestColdWarmCosts(t *testing.T) {
	ns := vfs.NewNamespace()
	for i := 0; i < 2000; i++ {
		if _, err := ns.Create(fmt.Sprintf("/f%04d", i), 1<<20, testNow, 1); err != nil {
			t.Fatal(err)
		}
	}
	clk := vclock.New()
	s := New(ns, clk, simdisk.New(simdisk.Laptop5400(), clk))
	q, err := query.Parse("size>0", testNow)
	if err != nil {
		t.Fatal(err)
	}
	before := clk.Now()
	s.Search(q)
	cold := clk.Now() - before

	before = clk.Now()
	s.Search(q)
	warm := clk.Now() - before
	if cold <= warm {
		t.Errorf("cold (%v) should exceed warm (%v)", cold, warm)
	}
	if warm != time.Duration(2000)*s.CPUPerFile {
		t.Errorf("warm = %v, want pure CPU cost", warm)
	}

	s.DropCaches()
	before = clk.Now()
	s.Search(q)
	coldAgain := clk.Now() - before
	if coldAgain <= warm {
		t.Error("DropCaches should restore the cold cost")
	}
}
