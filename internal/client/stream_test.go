package client

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/indexnode"
	"propeller/internal/master"
	"propeller/internal/pagestore"
	"propeller/internal/perr"
	"propeller/internal/proto"
	"propeller/internal/rpc"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

// newMultiRig wires a master plus len(searchDelays) index nodes over
// pipes; node i's Search handler sleeps searchDelays[i] (respecting the
// caller's context) before serving, modeling a slow or overloaded node.
func newMultiRig(t testing.TB, searchDelays []time.Duration) *Client {
	t.Helper()
	m := master.New(master.Config{})
	masterSrv := rpc.NewServer()
	m.RegisterRPC(masterSrv)
	dialMaster := func() *rpc.Client {
		cc, sc := rpc.Pipe()
		masterSrv.ServeConn(sc)
		return rpc.NewClient(cc)
	}

	srvs := make(map[string]*rpc.Server)
	for i, delay := range searchDelays {
		clk := vclock.New()
		disk := simdisk.New(simdisk.Barracuda7200(), clk)
		store, err := pagestore.New(disk, 4096)
		if err != nil {
			t.Fatal(err)
		}
		id := proto.NodeID(fmt.Sprintf("in-%02d", i))
		node, err := indexnode.New(indexnode.Config{
			ID: id, Store: store, Disk: disk, Clock: clk, Master: dialMaster(),
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer()
		node.RegisterRPC(srv)
		if delay > 0 {
			// Override the Search handler with a delayed wrapper.
			d := delay
			rpc.HandleTyped(srv, proto.MethodSearch, func(ctx context.Context, req proto.SearchReq) (proto.SearchResp, error) {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return proto.SearchResp{}, perr.Ctx(ctx.Err())
				}
				return node.Search(ctx, req)
			})
		}
		addr := "pipe:" + string(id)
		srvs[addr] = srv
		if _, err := m.RegisterNode(context.Background(), proto.RegisterNodeReq{
			Node: id, Addr: addr, CapacityFiles: 1 << 30,
		}); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
	}
	t.Cleanup(func() { _ = masterSrv.Close() })

	dial := func(_ context.Context, addr string) (*rpc.Client, error) {
		srv, ok := srvs[addr]
		if !ok {
			return nil, errors.New("unknown addr " + addr)
		}
		cc, sc := rpc.Pipe()
		srv.ServeConn(sc)
		return rpc.NewClient(cc), nil
	}
	cl, err := New(Config{
		Master: dialMaster(),
		Dial:   dial,
		Now:    func() time.Time { return time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	return cl
}

// seedTwoNodeIndex ingests files alternating between two group hints so
// both nodes own postings.
func seedTwoNodeIndex(t testing.TB, cl *Client, files int) {
	t.Helper()
	ctx := context.Background()
	if err := cl.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	var updates []FileUpdate
	for i := 0; i < files; i++ {
		updates = append(updates, FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i + 1)), GroupHint: uint64(i%2) + 1,
		})
	}
	if err := cl.Index(ctx, "size", updates); err != nil {
		t.Fatal(err)
	}
}

// TestSearchStreamFirstBatchBeforeSlowest is the acceptance check for
// streaming: with one node delayed, the first batch arrives well before
// the slow node responds, while the barriering Search waits out the
// stragglers.
func TestSearchStreamFirstBatchBeforeSlowest(t *testing.T) {
	const slow = 300 * time.Millisecond
	cl := newMultiRig(t, []time.Duration{0, slow})
	seedTwoNodeIndex(t, cl, 40)
	ctx := context.Background()
	q := Query{Index: "size", Text: "size>0"}

	// Barrier path: bounded below by the slow node.
	start := time.Now()
	res, err := cl.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	barrier := time.Since(start)
	if len(res.Files) != 40 {
		t.Fatalf("search = %d files, want 40", len(res.Files))
	}
	if barrier < slow {
		t.Fatalf("barrier search took %v, expected at least the slow node's %v", barrier, slow)
	}

	// Streaming path: first batch from the fast node, long before slow.
	start = time.Now()
	st, err := cl.SearchStream(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	first, ok := st.Next()
	firstLatency := time.Since(start)
	if !ok {
		t.Fatalf("no first batch: %v", st.Err())
	}
	if len(first.Files) == 0 {
		t.Error("first batch is empty")
	}
	if firstLatency >= slow {
		t.Errorf("first batch took %v, want < slow node's %v", firstLatency, slow)
	}
	second, ok := st.Next()
	if !ok {
		t.Fatalf("no second batch: %v", st.Err())
	}
	total := time.Since(start)
	if total < slow {
		t.Errorf("stream completed in %v, slow node should take %v", total, slow)
	}
	if len(first.Files)+len(second.Files) != 40 {
		t.Errorf("streamed %d+%d files, want 40", len(first.Files), len(second.Files))
	}
	if _, ok := st.Next(); ok {
		t.Error("stream should be exhausted after one batch per node")
	}
	if firstLatency*2 >= total {
		t.Logf("note: first-batch latency %v vs total %v (slow machine?)", firstLatency, total)
	}
}

// TestSearchCancelMidFanout cancels a search while one node is still
// serving and asserts (a) the call returns promptly with the taxonomy
// error and (b) no goroutines leak — the per-node workers and the delayed
// server handler all unwind. Run under -race in CI.
func TestSearchCancelMidFanout(t *testing.T) {
	const slow = 5 * time.Second
	const deadline = 100 * time.Millisecond
	cl := newMultiRig(t, []time.Duration{0, slow})
	seedTwoNodeIndex(t, cl, 40)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, err := cl.Search(ctx, Query{Index: "size", Text: "size>0"})
	elapsed := time.Since(start)
	if !errors.Is(err, perr.ErrTimeout) {
		t.Fatalf("cancelled search err = %v, want perr.ErrTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded in chain", err)
	}
	if elapsed > slow/2 {
		t.Fatalf("cancelled search took %v — it waited out the slow node instead of aborting", elapsed)
	}

	// The deadline propagated to the server: its delayed handler unblocks
	// on ctx.Done, so goroutine counts return to baseline well before the
	// 5 s sleep would have ended.
	settleDeadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(settleDeadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Streaming: a cancelled stream surfaces the error and also unwinds.
	ctx2, cancel2 := context.WithTimeout(context.Background(), deadline)
	defer cancel2()
	st, err := cl.SearchStream(ctx2, Query{Index: "size", Text: "size>0"})
	if err != nil {
		t.Fatal(err)
	}
	sawErr := false
	for {
		if _, ok := st.Next(); !ok {
			sawErr = st.Err() != nil
			break
		}
	}
	if !sawErr || !errors.Is(st.Err(), perr.ErrTimeout) {
		t.Errorf("stream err = %v, want perr.ErrTimeout", st.Err())
	}
}

// TestSearchPagedAcrossNodes pages through a two-node index via the
// client-level cursor and checks the global merge stays exact.
func TestSearchPagedAcrossNodes(t *testing.T) {
	cl := newMultiRig(t, []time.Duration{0, 0})
	seedTwoNodeIndex(t, cl, 200)
	ctx := context.Background()
	q := Query{Index: "size", Text: "size>0", Limit: 30}
	seen := make(map[index.FileID]bool)
	pages := 0
	for {
		res, err := cl.Search(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Files) > q.Limit {
			t.Fatalf("page %d has %d files, limit %d", pages, len(res.Files), q.Limit)
		}
		for _, f := range res.Files {
			if seen[f] {
				t.Fatalf("file %d on two pages", f)
			}
			seen[f] = true
		}
		pages++
		if !res.More {
			break
		}
		q.After, q.AfterSet = res.Next, res.NextSet
		if pages > 20 {
			t.Fatal("pagination does not terminate")
		}
	}
	if len(seen) != 200 {
		t.Fatalf("paged union = %d, want 200", len(seen))
	}
}

// BenchmarkSearchStreamFirstBatch is the CI smoke benchmark: time to the
// first streamed batch on a healthy two-node cluster.
func BenchmarkSearchStreamFirstBatch(b *testing.B) {
	cl := newMultiRig(b, []time.Duration{0, 0})
	seedTwoNodeIndex(b, cl, 2000)
	ctx := context.Background()
	q := Query{Index: "size", Text: "size>0", Limit: 256}
	// Warm: commit caches so the measurement is the serving path.
	if _, err := cl.Search(ctx, q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var firstTotal time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		st, err := cl.SearchStream(ctx, q)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := st.Next(); !ok {
			b.Fatal(st.Err())
		}
		firstTotal += time.Since(start)
		// Drain the stream so node goroutines finish inside the iteration.
		for _, ok := st.Next(); ok; _, ok = st.Next() {
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(firstTotal.Nanoseconds())/float64(b.N), "first-batch-ns")
}
