package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/master"
	"propeller/internal/perr"
	"propeller/internal/proto"
	"propeller/internal/rpc"
)

// flakyOutcome scripts one Update handler response.
type flakyOutcome uint8

const (
	outcomeOK flakyOutcome = iota
	outcomeOverloaded
	outcomeStale
)

// flakyNode serves a scripted sequence of outcomes per Update call (success
// once the script runs out) across the real RPC boundary, and counts what
// it actually served so the test can hold the client's cache counters
// against ground truth.
type flakyNode struct {
	mu             sync.Mutex
	script         []flakyOutcome
	calls          int
	servedOverload int
	servedStale    int
}

func (n *flakyNode) register(srv *rpc.Server) {
	rpc.HandleTyped(srv, proto.MethodUpdate, func(_ context.Context, req proto.UpdateReq) (proto.UpdateResp, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.calls++
		if len(n.script) == 0 {
			return proto.UpdateResp{Cached: len(req.Entries)}, nil
		}
		out := n.script[0]
		n.script = n.script[1:]
		switch out {
		case outcomeOverloaded:
			n.servedOverload++
			return proto.UpdateResp{}, fmt.Errorf("flaky node: %w", perr.ErrOverloaded)
		case outcomeStale:
			n.servedStale++
			return proto.UpdateResp{}, fmt.Errorf("flaky node: %w", perr.ErrStalePlacement)
		default:
			return proto.UpdateResp{Cached: len(req.Entries)}, nil
		}
	})
}

func (n *flakyNode) setScript(s []flakyOutcome) {
	n.mu.Lock()
	n.script = append([]flakyOutcome(nil), s...)
	n.mu.Unlock()
}

func (n *flakyNode) snapshot() (calls, overload, stale int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.calls, n.servedOverload, n.servedStale
}

func newFlakyRig(t *testing.T, cfg Config) (*Client, *flakyNode) {
	t.Helper()
	m := master.New(master.Config{})
	masterSrv := rpc.NewServer()
	m.RegisterRPC(masterSrv)

	node := &flakyNode{}
	nodeSrv := rpc.NewServer()
	node.register(nodeSrv)
	if _, err := m.RegisterNode(context.Background(), proto.RegisterNodeReq{
		Node: "in-00", Addr: "pipe:in-00", CapacityFiles: 1 << 30,
	}); err != nil {
		t.Fatal(err)
	}

	cc, sc := rpc.Pipe()
	masterSrv.ServeConn(sc)
	cfg.Master = rpc.NewClient(cc)
	cfg.Dial = func(_ context.Context, addr string) (*rpc.Client, error) {
		if addr != "pipe:in-00" {
			return nil, errors.New("unknown addr " + addr)
		}
		cc, sc := rpc.Pipe()
		nodeSrv.ServeConn(sc)
		return rpc.NewClient(cc), nil
	}
	cfg.Now = func() time.Time { return time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC) }
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cl.Close()
		_ = masterSrv.Close()
		_ = nodeSrv.Close()
	})
	if err := cl.CreateIndex(context.Background(), proto.IndexSpec{
		Name: "size", Type: proto.IndexBTree, Field: "size",
	}); err != nil {
		t.Fatal(err)
	}
	return cl, node
}

// TestPlacementCachePropertyUnderOverload drives the Index retry loop with
// randomized interleavings of overload sheds, stale-placement rejections,
// and successes, and checks the cache-discipline invariants on every call:
//
//   - termination: attempts are bounded by the two retry budgets;
//   - overload never invalidates: Master lookups and file-cache misses
//     move only with stale rejections, and by exactly one lookup (and at
//     most one mapping-set reload) per stale retry — never more entries
//     than the rejecting mapping covers;
//   - a surfaced error is typed as exactly one of ErrOverloaded or
//     ErrStalePlacement, matching which budget was exhausted.
func TestPlacementCachePropertyUnderOverload(t *testing.T) {
	const nFiles = 8
	const placementBudget = 3 // client-side placementRetries

	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		overloadBudget := 1 + rng.Intn(4)
		var backoffs int
		cl, node := newFlakyRig(t, Config{
			ID:              "prop-tenant",
			OverloadRetries: overloadBudget,
			Backoff:         func(int) { backoffs++ },
		})
		ctx := context.Background()
		ups := make([]FileUpdate, nFiles)
		for i := range ups {
			ups[i] = FileUpdate{File: index.FileID(1 + i), Value: attr.Int(int64(i)), GroupHint: 1}
		}
		// Warm round: resolve every mapping with no faults scripted.
		if err := cl.Index(ctx, "size", ups); err != nil {
			t.Fatalf("seed %d: warm index: %v", seed, err)
		}

		for round := 0; round < 8; round++ {
			script := make([]flakyOutcome, rng.Intn(7))
			for i := range script {
				switch r := rng.Float64(); {
				case r < 0.40:
					script[i] = outcomeOverloaded
				case r < 0.75:
					script[i] = outcomeStale
				default:
					script[i] = outcomeOK
				}
			}
			node.setScript(script)

			pre := cl.CacheStats()
			preCalls, _, preStale := node.snapshot()
			err := cl.Index(ctx, "size", ups)
			post := cl.CacheStats()
			postCalls, _, postStale := node.snapshot()

			calls := postCalls - preCalls
			staleServed := postStale - preStale
			staleRetries := post.StalePlacementRetries - pre.StalePlacementRetries
			overloadRetries := post.OverloadRetries - pre.OverloadRetries
			lookups := post.MasterLookups - pre.MasterLookups
			misses := post.FileMisses - pre.FileMisses

			tag := fmt.Sprintf("seed %d round %d script %v", seed, round, script)
			// Termination: the initial attempt, one per budgeted retry, and
			// at most one surfacing attempt.
			if calls > 1+placementBudget+overloadBudget+1 {
				t.Fatalf("%s: %d node calls exceed the retry budgets", tag, calls)
			}
			if staleRetries > placementBudget || int(overloadRetries) > overloadBudget {
				t.Fatalf("%s: retries %d/%d exceed budgets %d/%d",
					tag, staleRetries, overloadRetries, placementBudget, overloadBudget)
			}
			// Every stale actually served was either retried (counted) or
			// surfaced (the final one).
			if int64(staleServed) < staleRetries || int64(staleServed) > staleRetries+1 {
				t.Fatalf("%s: node served %d stales, client counted %d retries", tag, staleServed, staleRetries)
			}
			// The cache moves only with stale retries: one Master RPC per
			// retry, at most the rejecting mapping's entries reloaded.
			if lookups != staleRetries {
				t.Fatalf("%s: master lookups %d != stale retries %d (overload must not re-resolve)",
					tag, lookups, staleRetries)
			}
			if misses != staleRetries*nFiles {
				t.Fatalf("%s: file misses %d, want %d (exactly the rejecting mapping per stale retry)",
					tag, misses, staleRetries*nFiles)
			}
			// Surfaced errors are typed, mutually exclusive, and explained
			// by an exhausted budget.
			switch {
			case err == nil:
			case errors.Is(err, perr.ErrOverloaded):
				if errors.Is(err, perr.ErrStalePlacement) {
					t.Fatalf("%s: error aliases both overload and stale: %v", tag, err)
				}
				if int(overloadRetries) != overloadBudget {
					t.Fatalf("%s: overload surfaced with %d/%d retries spent: %v", tag, overloadRetries, overloadBudget, err)
				}
			case errors.Is(err, perr.ErrStalePlacement):
				if staleRetries != placementBudget {
					t.Fatalf("%s: stale surfaced with %d/%d retries spent: %v", tag, staleRetries, placementBudget, err)
				}
			default:
				t.Fatalf("%s: untyped error %v", tag, err)
			}
			// A clean return means the schedule drained: the node is back
			// to acking, so the next round starts from a warm cache.
			if err != nil {
				node.setScript(nil)
				if err := cl.Index(ctx, "size", ups); err != nil {
					t.Fatalf("%s: recovery index after surfaced error: %v", tag, err)
				}
			}
		}
	}
}
