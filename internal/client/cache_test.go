package client

import (
	"context"
	"testing"

	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/proto"
)

// TestWarmDataPathIsMasterFree is the placement-cache acceptance bar at the
// client level: once every file and the search fan-out have been resolved,
// a steady-state update/search workload issues zero Master RPCs.
func TestWarmDataPathIsMasterFree(t *testing.T) {
	r := newRig(t)
	ctx := context.Background()
	if err := r.client.CreateIndex(ctx, proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	var ups []FileUpdate
	for i := 0; i < 50; i++ {
		ups = append(ups, FileUpdate{File: index.FileID(i), Value: attr.Int(int64(i)), GroupHint: uint64(i/10) + 1})
	}
	// Cold round: resolves and caches every mapping and the fan-out.
	if err := r.client.Index(ctx, "size", ups); err != nil {
		t.Fatal(err)
	}
	if _, err := r.client.Search(ctx, Query{Index: "size", Text: "size>=0"}); err != nil {
		t.Fatal(err)
	}
	warm := r.client.CacheStats()
	if warm.MasterLookups == 0 {
		t.Fatal("cold round should have consulted the master")
	}

	// Steady state: the same files re-indexed and searched, many rounds.
	for round := 0; round < 5; round++ {
		for i := range ups {
			ups[i].Value = attr.Int(int64(i + round))
		}
		if err := r.client.Index(ctx, "size", ups); err != nil {
			t.Fatal(err)
		}
		res, err := r.client.Search(ctx, Query{Index: "size", Text: "size>=0"})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Files) != 50 {
			t.Fatalf("round %d: %d files, want 50", round, len(res.Files))
		}
	}
	after := r.client.CacheStats()
	if got := after.MasterLookups - warm.MasterLookups; got != 0 {
		t.Errorf("steady-state master lookups = %d, want 0 (warm path must be master-free)", got)
	}
	if after.FileHits == 0 || after.IndexHits == 0 {
		t.Errorf("cache hits = %+v, expected warm hits on both caches", after)
	}
	if after.StalePlacementRetries != 0 {
		t.Errorf("stale retries = %d, want 0 with no placement changes", after.StalePlacementRetries)
	}
}
