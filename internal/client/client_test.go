package client

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"propeller/internal/acg"
	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/indexnode"
	"propeller/internal/master"
	"propeller/internal/pagestore"
	"propeller/internal/perr"
	"propeller/internal/proto"
	"propeller/internal/rpc"
	"propeller/internal/simdisk"
	"propeller/internal/vclock"
)

// rig is a minimal master + one index node + client wiring over pipes.
type rig struct {
	master *master.Master
	node   *indexnode.Node
	client *Client
}

func newRig(t *testing.T) *rig {
	t.Helper()
	m := master.New(master.Config{})
	masterSrv := rpc.NewServer()
	m.RegisterRPC(masterSrv)
	dialMaster := func() *rpc.Client {
		cc, sc := rpc.Pipe()
		masterSrv.ServeConn(sc)
		return rpc.NewClient(cc)
	}

	clk := vclock.New()
	disk := simdisk.New(simdisk.Barracuda7200(), clk)
	store, err := pagestore.New(disk, 4096)
	if err != nil {
		t.Fatal(err)
	}
	node, err := indexnode.New(indexnode.Config{
		ID: "in-00", Store: store, Disk: disk, Clock: clk, Master: dialMaster(),
	})
	if err != nil {
		t.Fatal(err)
	}
	nodeSrv := rpc.NewServer()
	node.RegisterRPC(nodeSrv)
	if _, err := m.RegisterNode(context.Background(), proto.RegisterNodeReq{
		Node: "in-00", Addr: "pipe:in-00", CapacityFiles: 1 << 30,
	}); err != nil {
		t.Fatal(err)
	}

	dial := func(_ context.Context, addr string) (*rpc.Client, error) {
		switch addr {
		case "pipe:in-00":
			cc, sc := rpc.Pipe()
			nodeSrv.ServeConn(sc)
			return rpc.NewClient(cc), nil
		default:
			return nil, errors.New("unknown addr " + addr)
		}
	}
	cl, err := New(Config{
		Master: dialMaster(),
		Dial:   dial,
		Now:    func() time.Time { return time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cl.Close()
		_ = masterSrv.Close()
		_ = nodeSrv.Close()
	})
	return &rig{master: m, node: node, client: cl}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing master should be rejected")
	}
	cc, _ := rpc.Pipe()
	mc := rpc.NewClient(cc)
	defer mc.Close() //nolint:errcheck
	if _, err := New(Config{Master: mc}); err == nil {
		t.Error("missing dial should be rejected")
	}
}

func TestIndexAndSearchRoundTrip(t *testing.T) {
	r := newRig(t)
	if err := r.client.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	var updates []FileUpdate
	for i := 0; i < 30; i++ {
		updates = append(updates, FileUpdate{
			File: index.FileID(i), Value: attr.Int(int64(i) << 20), GroupHint: uint64(i/10) + 1,
		})
	}
	if err := r.client.Index(context.Background(), "size", updates); err != nil {
		t.Fatal(err)
	}
	res, err := r.client.Search(context.Background(), Query{Index: "size", Text: "size>25m"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) != 4 { // 26..29
		t.Errorf("files = %v, want 4", res.Files)
	}
	if res.Nodes != 1 {
		t.Errorf("nodes = %d", res.Nodes)
	}
}

func TestIndexEmptyBatchIsNoop(t *testing.T) {
	r := newRig(t)
	if err := r.client.Index(context.Background(), "size", nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

func TestSearchUnknownIndexFails(t *testing.T) {
	r := newRig(t)
	_, err := r.client.Search(context.Background(), Query{Index: "ghost", Text: "size>1"})
	if err == nil || !strings.Contains(err.Error(), "unknown index") {
		t.Errorf("err = %v, want unknown index", err)
	}
	// The taxonomy survives the wire: the master's ErrUnknownIndex arrives
	// as perr.ErrIndexNotFound.
	if !errors.Is(err, perr.ErrIndexNotFound) {
		t.Errorf("err = %v, want perr.ErrIndexNotFound via errors.Is", err)
	}
}

func TestFlushACGRoutesEdges(t *testing.T) {
	r := newRig(t)
	if err := r.client.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	// Empty flush is a no-op.
	if err := r.client.FlushACG(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Capture one causal chain and flush: the master maps the component
	// into a single group, the node receives the edges.
	r.client.Open(1, 100, acg.OpenRead)
	r.client.Open(1, 101, acg.OpenWrite)
	r.client.Open(1, 102, acg.OpenWrite)
	r.client.CloseFile(1, 100)
	r.client.EndProcess(1)
	if err := r.client.FlushACG(context.Background()); err != nil {
		t.Fatal(err)
	}

	lookup, err := r.master.LookupFiles(context.Background(), proto.LookupFilesReq{
		Files: []index.FileID{100, 101, 102},
	})
	if err != nil {
		t.Fatal(err)
	}
	first := lookup.Mappings[0].ACG
	for _, m := range lookup.Mappings {
		if m.ACG != first {
			t.Error("causally-connected files must share a group")
		}
	}
	st, err := r.node.NodeStats(context.Background(), proto.NodeStatsReq{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 3 {
		t.Errorf("node files = %d, want 3", st.Files)
	}
}

func TestFlushACGSeparateComponentsSeparateGroups(t *testing.T) {
	r := newRig(t)
	// Two isolated causal components.
	r.client.Open(1, 1, acg.OpenRead)
	r.client.Open(1, 2, acg.OpenWrite)
	r.client.EndProcess(1)
	r.client.Open(2, 10, acg.OpenRead)
	r.client.Open(2, 11, acg.OpenWrite)
	r.client.EndProcess(2)
	if err := r.client.FlushACG(context.Background()); err != nil {
		t.Fatal(err)
	}
	lookup, err := r.master.LookupFiles(context.Background(), proto.LookupFilesReq{
		Files: []index.FileID{1, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lookup.Mappings[0].ACG == lookup.Mappings[1].ACG {
		t.Error("disconnected components should land in different groups")
	}
}

func TestClusterStatsViaClient(t *testing.T) {
	r := newRig(t)
	if err := r.client.CreateIndex(context.Background(), proto.IndexSpec{Name: "size", Type: proto.IndexBTree, Field: "size"}); err != nil {
		t.Fatal(err)
	}
	if err := r.client.Index(context.Background(), "size", []FileUpdate{{File: 1, Value: attr.Int(1), GroupHint: 1}}); err != nil {
		t.Fatal(err)
	}
	st, err := r.client.ClusterStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 1 || st.ACGs != 1 || len(st.Indexes) != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestConnCaching(t *testing.T) {
	r := newRig(t)
	c1, err := r.client.conn(context.Background(), "pipe:in-00")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := r.client.conn(context.Background(), "pipe:in-00")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("connections must be cached per address")
	}
	if _, err := r.client.conn(context.Background(), "pipe:bogus"); err == nil {
		t.Error("unknown address should fail")
	}
	// A dead cached connection (peer loss, cancelled mid-write teardown)
	// is evicted and redialed rather than returned forever.
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	c3, err := r.client.conn(context.Background(), "pipe:in-00")
	if err != nil {
		t.Fatal(err)
	}
	if c3 == c1 {
		t.Error("closed connection must be evicted from the cache")
	}
	if c3.Closed() {
		t.Error("redialed connection should be live")
	}
}
