// Package client implements Propeller's distributed client (§IV): the File
// Access Management module that transparently captures open/close events
// into client-RAM ACGs (the FUSE interception point), and the File Query
// Engine that routes indexing and search requests through the Master Node
// and fans searches out to Index Nodes in parallel.
//
// All network-touching methods take a context.Context: its deadline travels
// with every RPC (index nodes see it and bound their own work) and its
// cancellation aborts an in-flight fan-out without leaking goroutines.
package client

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"propeller/internal/acg"
	"propeller/internal/attr"
	"propeller/internal/index"
	"propeller/internal/proto"
	"propeller/internal/query"
	"propeller/internal/rpc"
)

// ErrNoTargets is returned by the Master lookup when a search resolves to
// zero index nodes. Search and SearchStream translate it to an empty result
// — an empty cluster has no matches — so every caller (public API, cmd/
// binaries, tests) gets that behavior from one place.
var ErrNoTargets = errors.New("client: search resolved to no index nodes")

// Config wires a Client.
type Config struct {
	// Master is the Master Node connection.
	Master *rpc.Client
	// Dial opens connections to Index Nodes by address. Connections are
	// cached per address.
	Dial func(addr string) (*rpc.Client, error)
	// Now supplies the reference time for relative query predicates
	// (defaults to time.Now).
	Now func() time.Time
}

// Client is a Propeller client. Safe for concurrent use.
type Client struct {
	cfg     Config
	builder *acg.Builder

	mu    sync.Mutex
	conns map[string]*rpc.Client
}

// New returns a Client.
func New(cfg Config) (*Client, error) {
	if cfg.Master == nil {
		return nil, errors.New("client: Master connection is required")
	}
	if cfg.Dial == nil {
		return nil, errors.New("client: Dial is required")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Client{
		cfg:     cfg,
		builder: acg.NewBuilder(),
		conns:   make(map[string]*rpc.Client),
	}, nil
}

// Close closes all cached Index Node connections (the Master connection is
// owned by the caller).
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var firstErr error
	for addr, conn := range c.conns {
		if err := conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(c.conns, addr)
	}
	return firstErr
}

func (c *Client) conn(addr string) (*rpc.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if conn, ok := c.conns[addr]; ok {
		if !conn.Closed() {
			return conn, nil
		}
		// The cached connection died (peer loss, or torn down by a
		// cancelled mid-write call). Evict and redial — one expired
		// deadline must not make a healthy node unreachable forever.
		delete(c.conns, addr)
	}
	conn, err := c.cfg.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("client dial %s: %w", addr, err)
	}
	c.conns[addr] = conn
	return conn, nil
}

// --- File Access Management (ACG capture) ---

// Open records a file open (intercepted by the FUSE layer in the paper's
// prototype).
func (c *Client) Open(proc acg.PID, file index.FileID, mode acg.OpenMode) {
	c.builder.Open(proc, file, mode)
}

// CloseFile records a file close.
func (c *Client) CloseFile(proc acg.PID, file index.FileID) {
	c.builder.Close(proc, file)
}

// EndProcess discards the capture session of proc.
func (c *Client) EndProcess(proc acg.PID) {
	c.builder.EndProcess(proc)
}

// FlushACG ships the captured causality graph to the owning Index Nodes
// (called after the I/O process finishes). Captured components are used as
// group hints so the Master co-locates causally-related files.
func (c *Client) FlushACG(ctx context.Context) error {
	g := c.builder.TakeGraph()
	if g.NumVertices() == 0 {
		return nil
	}
	comps := g.ConnectedComponents()

	// One lookup for every vertex, hinted by component.
	var files []index.FileID
	var hints []uint64
	for _, comp := range comps {
		// Hints must be globally unique per component: derive from the
		// smallest member (stable across flushes of the same files).
		hint := uint64(comp[0]) + 1
		for _, f := range comp {
			files = append(files, f)
			hints = append(hints, hint)
		}
	}
	resp, err := rpc.Call[proto.LookupFilesReq, proto.LookupFilesResp](
		ctx, c.cfg.Master, proto.MethodLookupFiles,
		proto.LookupFilesReq{Files: files, GroupHints: hints, Allocate: true})
	if err != nil {
		return fmt.Errorf("client flush acg: %w", err)
	}
	where := make(map[index.FileID]proto.FileMapping, len(resp.Mappings))
	for _, m := range resp.Mappings {
		where[m.File] = m
	}

	// Partition edges and vertices by destination group.
	type dest struct {
		addr string
		req  proto.FlushACGReq
	}
	dests := make(map[proto.ACGID]*dest)
	for _, comp := range comps {
		for _, f := range comp {
			m := where[f]
			d := dests[m.ACG]
			if d == nil {
				d = &dest{addr: m.Addr, req: proto.FlushACGReq{ACG: m.ACG}}
				dests[m.ACG] = d
			}
			d.req.Vertices = append(d.req.Vertices, f)
		}
	}
	for _, src := range g.Vertices() {
		sm := where[src]
		for _, dst := range g.Vertices() {
			w := g.EdgeWeight(src, dst)
			if w == 0 {
				continue
			}
			dm := where[dst]
			// Weak consistency: cross-group edges (possible when the Master
			// already had the files in different groups) are dropped — they
			// only affect partition quality, never search results.
			if sm.ACG != dm.ACG {
				continue
			}
			dests[sm.ACG].req.Edges = append(dests[sm.ACG].req.Edges,
				proto.ACGEdge{Src: src, Dst: dst, Weight: w})
		}
	}
	for _, d := range dests {
		conn, err := c.conn(d.addr)
		if err != nil {
			return err
		}
		if _, err := rpc.Call[proto.FlushACGReq, proto.FlushACGResp](ctx, conn, proto.MethodFlushACG, d.req); err != nil {
			return fmt.Errorf("client flush acg: %w", err)
		}
	}
	return nil
}

// --- File Query Engine ---

// CreateIndex registers a named index cluster-wide.
func (c *Client) CreateIndex(ctx context.Context, spec proto.IndexSpec) error {
	if _, err := rpc.Call[proto.CreateIndexReq, proto.CreateIndexResp](
		ctx, c.cfg.Master, proto.MethodCreateIndex, proto.CreateIndexReq{Spec: spec}); err != nil {
		return fmt.Errorf("client create index %q: %w", spec.Name, err)
	}
	return nil
}

// FileUpdate is one indexing request from the application.
type FileUpdate struct {
	File index.FileID
	// Value is the attribute value for b-tree/hash indices.
	Value attr.Value
	// KDCoords is the point for KD indices.
	KDCoords []float64
	// Delete removes the posting.
	Delete bool
	// GroupHint co-locates unknown files (0 = none).
	GroupHint uint64
}

// Index sends a batch of indexing requests for the named index. Updates are
// routed through the Master, grouped by (Index Node, ACG) and sent in
// parallel — the paper's batched parallel file-indexing path.
func (c *Client) Index(ctx context.Context, indexName string, updates []FileUpdate) error {
	if len(updates) == 0 {
		return nil
	}
	files := make([]index.FileID, len(updates))
	hints := make([]uint64, len(updates))
	for i, u := range updates {
		files[i] = u.File
		hints[i] = u.GroupHint
	}
	resp, err := rpc.Call[proto.LookupFilesReq, proto.LookupFilesResp](
		ctx, c.cfg.Master, proto.MethodLookupFiles,
		proto.LookupFilesReq{Files: files, GroupHints: hints, Allocate: true})
	if err != nil {
		return fmt.Errorf("client index: %w", err)
	}
	type batch struct {
		addr string
		req  proto.UpdateReq
	}
	batches := make(map[proto.ACGID]*batch)
	for i, m := range resp.Mappings {
		b := batches[m.ACG]
		if b == nil {
			b = &batch{addr: m.Addr, req: proto.UpdateReq{ACG: m.ACG, IndexName: indexName}}
			batches[m.ACG] = b
		}
		u := updates[i]
		b.req.Entries = append(b.req.Entries, proto.IndexEntry{
			File: u.File, Value: u.Value, KDCoords: u.KDCoords, Delete: u.Delete,
		})
	}

	ids := make([]proto.ACGID, 0, len(batches))
	for id := range batches {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var wg sync.WaitGroup
	errCh := make(chan error, len(ids))
	for _, id := range ids {
		b := batches[id]
		conn, err := c.conn(b.addr)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(b *batch, conn *rpc.Client) {
			defer wg.Done()
			if _, err := rpc.Call[proto.UpdateReq, proto.UpdateResp](ctx, conn, proto.MethodUpdate, b.req); err != nil {
				errCh <- fmt.Errorf("client index acg %d: %w", b.req.ACG, err)
			}
		}(b, conn)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	return nil
}

// Query is one search request: the single entry point for global searches,
// scoped query-directory searches, paged reads and lazy reads.
type Query struct {
	// Index names the index to query.
	Index string
	// Text is the predicate in package query syntax ("size>16m &
	// mtime<1day"). Parsed client-side against the client's reference
	// time; parse failures surface as perr.ErrBadQuery before any RPC.
	Text string
	// Preds is the structured predicate (used by typed builders). Text
	// and Preds may be combined; the conjunction of both applies.
	Preds []query.Predicate
	// Path optionally scopes the search to a directory subtree (the
	// paper's query-directory namespace). Requires a B-tree index over
	// the "path" attribute unless Path is "" or "/".
	Path string
	// Limit bounds the files returned per page (0 = unlimited).
	Limit int
	// After / AfterSet resume a paged search: only files with
	// FileID > After are returned. Use SearchResult.Next / NextSet from
	// the previous page.
	After    index.FileID
	AfterSet bool
	// Anchor pins the reference time for relative predicates in Text
	// ("mtime<1day"). Zero means "now" (the client's clock); paged
	// searches carry the first page's anchor forward via
	// SearchResult.Anchor so the match window cannot drift between pages.
	Anchor time.Time
	// Consistency selects strict (commit-on-search, default) or lazy
	// reads.
	Consistency proto.Consistency
}

// compile resolves the query's predicate set — parsed text plus
// structured predicates plus the path scope — and the anchor time the
// text was parsed against (for cursor continuity across pages).
func (c *Client) compile(q Query) ([]query.Predicate, time.Time, error) {
	anchor := q.Anchor
	if anchor.IsZero() {
		anchor = c.cfg.Now()
	}
	preds := make([]query.Predicate, 0, len(q.Preds)+2)
	preds = append(preds, q.Preds...)
	if q.Text != "" {
		parsed, err := query.Parse(q.Text, anchor)
		if err != nil {
			return nil, anchor, err
		}
		preds = append(preds, parsed.Preds...)
	}
	if len(preds) == 0 {
		return nil, anchor, fmt.Errorf("%w: query has no predicates", query.ErrSyntax)
	}
	preds = append(preds, query.PathScopePreds(q.Path)...)
	return preds, anchor, nil
}

// lookupTargets asks the Master for the search fan-out. Zero targets
// yields ErrNoTargets, which Search and SearchStream translate to an empty
// result in one place.
func (c *Client) lookupTargets(ctx context.Context, indexName string) ([]proto.IndexTarget, error) {
	lookup, err := rpc.Call[proto.LookupIndexReq, proto.LookupIndexResp](
		ctx, c.cfg.Master, proto.MethodLookupIndex, proto.LookupIndexReq{IndexName: indexName})
	if err != nil {
		return nil, fmt.Errorf("client search: %w", err)
	}
	if len(lookup.Targets) == 0 {
		return nil, ErrNoTargets
	}
	return lookup.Targets, nil
}

// searchReq builds the per-node wire request for q.
func searchReq(q Query, preds []query.Predicate, tgt proto.IndexTarget) proto.SearchReq {
	return proto.SearchReq{
		ACGs:        tgt.ACGs,
		IndexName:   q.Index,
		Preds:       preds,
		Limit:       q.Limit,
		After:       q.After,
		AfterSet:    q.AfterSet,
		Consistency: q.Consistency,
	}
}

// SearchResult is the aggregated outcome of a distributed search.
type SearchResult struct {
	// Files are the matching file ids, ascending, de-duplicated. With
	// Query.Limit > 0 this is one page.
	Files []index.FileID
	// Nodes is the number of Index Nodes queried.
	Nodes int
	// CommitLatency is the summed virtual commit-on-search cost reported by
	// the nodes.
	CommitLatency time.Duration
	// More reports that matches beyond this page exist.
	More bool
	// Next / NextSet is the cursor for the following page (valid when
	// More).
	Next    index.FileID
	NextSet bool
	// Anchor is the reference time this page's relative predicates were
	// resolved against; pass it as Query.Anchor (with Next/NextSet) so
	// every page of one logical search shares the same match window.
	Anchor time.Time
}

// Search runs a query: the Master supplies the fan-out targets, every
// Index Node is queried in parallel, and the client merges the returned
// (ascending) file streams (§IV's parallel file-search). With q.Limit > 0
// each node returns at most one page and the merged result is cut to the
// page size; because per-node responses are ascending, the last FileID of
// the page is a valid resume cursor on every node.
//
// An empty cluster (no index nodes holding the index) yields an empty
// result, not an error. An unknown index name yields perr.ErrIndexNotFound.
func (c *Client) Search(ctx context.Context, q Query) (SearchResult, error) {
	preds, anchor, err := c.compile(q)
	if err != nil {
		return SearchResult{}, err
	}
	targets, err := c.lookupTargets(ctx, q.Index)
	if errors.Is(err, ErrNoTargets) {
		return SearchResult{}, nil // empty cluster: no matches
	}
	if err != nil {
		return SearchResult{}, err
	}

	var wg sync.WaitGroup
	type nodeResult struct {
		resp proto.SearchResp
		err  error
	}
	results := make([]nodeResult, len(targets))
	for i, tgt := range targets {
		conn, err := c.conn(tgt.Addr)
		if err != nil {
			return SearchResult{}, err
		}
		wg.Add(1)
		go func(i int, tgt proto.IndexTarget, conn *rpc.Client) {
			defer wg.Done()
			resp, err := rpc.Call[proto.SearchReq, proto.SearchResp](
				ctx, conn, proto.MethodSearch, searchReq(q, preds, tgt))
			results[i] = nodeResult{resp: resp, err: err}
		}(i, tgt, conn)
	}
	wg.Wait()

	out := SearchResult{Nodes: len(targets)}
	var merged []index.FileID
	for i, r := range results {
		if r.err != nil {
			return SearchResult{}, fmt.Errorf("client search node %s: %w", targets[i].Node, r.err)
		}
		out.CommitLatency += time.Duration(r.resp.CommitLatencyNanos)
		out.More = out.More || r.resp.More
		merged = append(merged, r.resp.Files...)
	}
	files := index.SortDedup(merged)
	if q.Limit > 0 && len(files) > q.Limit {
		// Nodes beyond the cut still have unconsumed matches; the cursor
		// re-covers them on the next page.
		files = files[:q.Limit]
		out.More = true
	}
	out.Files = files
	out.Anchor = anchor
	if out.More && len(out.Files) > 0 {
		out.Next, out.NextSet = out.Files[len(out.Files)-1], true
	}
	return out, nil
}

// Batch is one Index Node's contribution to a streaming search.
type Batch struct {
	// Node served this batch.
	Node proto.NodeID
	// Files are the node's matches, ascending, de-duplicated within the
	// node (not across batches).
	Files []index.FileID
	// More reports the node has matches beyond its page budget.
	More bool
	// CommitLatency is the node's commit-on-search cost.
	CommitLatency time.Duration
}

// Stream delivers per-node search batches in arrival order.
type Stream struct {
	ch        chan streamItem
	remaining int
	err       error
}

type streamItem struct {
	batch Batch
	err   error
}

// Next returns the next batch. ok is false when the stream is exhausted or
// failed; check Err afterwards.
func (s *Stream) Next() (Batch, bool) {
	if s.err != nil || s.remaining == 0 {
		return Batch{}, false
	}
	it := <-s.ch
	s.remaining--
	if it.err != nil {
		s.err = it.err
		return Batch{}, false
	}
	return it.batch, true
}

// Err returns the error that terminated the stream, if any.
func (s *Stream) Err() error { return s.err }

// SearchStream runs the same fan-out as Search but yields each Index
// Node's batch as soon as that node responds, instead of barriering on the
// slowest node — the first batch is available after the fastest node's
// round trip. Batches are de-duplicated per node only. Cancelling the
// context aborts outstanding node calls; the per-node goroutines always
// drain into a buffered channel, so an abandoned stream leaks nothing.
func (c *Client) SearchStream(ctx context.Context, q Query) (*Stream, error) {
	preds, _, err := c.compile(q)
	if err != nil {
		return nil, err
	}
	targets, err := c.lookupTargets(ctx, q.Index)
	if errors.Is(err, ErrNoTargets) {
		return &Stream{}, nil // empty cluster: stream with zero batches
	}
	if err != nil {
		return nil, err
	}
	s := &Stream{ch: make(chan streamItem, len(targets)), remaining: len(targets)}
	for _, tgt := range targets {
		conn, err := c.conn(tgt.Addr)
		if err != nil {
			return nil, err
		}
		go func(tgt proto.IndexTarget, conn *rpc.Client) {
			resp, err := rpc.Call[proto.SearchReq, proto.SearchResp](
				ctx, conn, proto.MethodSearch, searchReq(q, preds, tgt))
			if err != nil {
				s.ch <- streamItem{err: fmt.Errorf("client search node %s: %w", tgt.Node, err)}
				return
			}
			s.ch <- streamItem{batch: Batch{
				Node:          tgt.Node,
				Files:         resp.Files,
				More:          resp.More,
				CommitLatency: time.Duration(resp.CommitLatencyNanos),
			}}
		}(tgt, conn)
	}
	return s, nil
}

// ClusterStats fetches the Master's cluster summary.
func (c *Client) ClusterStats(ctx context.Context) (proto.ClusterStatsResp, error) {
	return rpc.Call[proto.ClusterStatsReq, proto.ClusterStatsResp](
		ctx, c.cfg.Master, proto.MethodClusterStats, proto.ClusterStatsReq{})
}
